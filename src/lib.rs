//! # cpufree — autonomous (CPU-free) execution for multi-GPU systems
//!
//! A full Rust reproduction of *"Autonomous Execution for Multi-GPU
//! Systems: CPU-Free Blueprint and Compiler Support"*: the CPU-Free
//! execution model, every substrate it runs on, the paper's stencil
//! workloads, and the data-centric compiler extensions — executing on a
//! deterministic virtual-time simulator of an 8×A100 NVLink node.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`sim_des`] — the deterministic discrete-event engine (agents, flags,
//!   barriers, traces);
//! * [`gpu_sim`] — the simulated multi-GPU node (devices, streams, host
//!   runtime latencies, cooperative kernels, cost model);
//! * [`nvshmem_sim`] — GPU-initiated PGAS communication (symmetric heap,
//!   put-with-signal, signal waits, strided puts);
//! * [`cpufree_core`] — **the paper's contribution**: persistent-kernel
//!   launch blueprint, thread-block specialization, device-side
//!   synchronization, run statistics;
//! * [`stencil_lab`] — 2D/3D Jacobi in all evaluated variants (4 CPU
//!   controlled baselines, CPU-Free, PERKS) with bitwise verification;
//! * [`dace_sim`] — the mini data-centric compiler: SDFG IR,
//!   transformations, MPI/NVSHMEM library nodes, discrete + CPU-Free
//!   backends;
//! * [`cpufree_solvers`] — a second application class: distributed
//!   Conjugate Gradient with device-side allreduces, CPU-Free vs
//!   CPU-controlled.
//!
//! ## Quickstart
//!
//! ```
//! use cpufree::prelude::*;
//!
//! // 2D Jacobi, 34x34 grid, 8 steps, 4 simulated GPUs, full arithmetic.
//! let cfg = StencilConfig::square2d(34, 8, 4);
//! let out = Variant::CpuFree.run(&cfg);
//! assert_eq!(out.max_err, Some(0.0));        // bitwise-exact vs reference
//! let base = Variant::BaselineCopy.run(&cfg);
//! assert!(out.total < base.total);           // and faster
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harness regenerating every figure of the paper.

pub use cpufree_core;
pub use cpufree_solvers;
pub use dace_sim;
pub use gpu_sim;
pub use nvshmem_sim;
pub use sim_des;
pub use stencil_lab;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use cpufree_core::{
        launch_cpu_free, launch_cpu_free_dual, persistent_loop, spawn_watchdog, LocalRendezvous,
        RunStats, TbAllocation, WatchdogSpec,
    };
    pub use gpu_sim::{
        BlockGroup, Buf, CheckReport, Checker, CostModel, CrashFault, DevId, DeviceSpec, DropFault,
        ExecMode, FaultPlan, FaultState, HostCtx, KernelCtx, LinkFault, Machine, StragglerFault,
        Topology, TopologyKind, Transport,
    };
    pub use nvshmem_sim::{ShmemCtx, ShmemWorld, SymArray, SymSignal};
    pub use sim_des::{
        ms, ns, us, Category, Cmp, DiagKind, Diagnostic, Engine, Flag, SignalOp, SimDur, SimTime,
    };
    pub use stencil_lab::{FtConfig, StencilConfig, Variant};
}
