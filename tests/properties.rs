//! Property-based tests (proptest) over the core data structures and
//! invariants of the stack.

use cpufree::dace_sim::{Bindings, Expr};
use cpufree::prelude::*;
use cpufree::sim_des::{Trace, TraceSpan};
use cpufree::stencil_lab::Slab;
use proptest::prelude::*;

proptest! {
    /// §4.1.2 allocation: conservation, minimums, and monotonicity in the
    /// boundary share.
    #[test]
    fn tb_allocation_invariants(
        total in 3u64..1024,
        inner in 0u64..1_000_000,
        boundary in 0u64..100_000,
    ) {
        let a = TbAllocation::proportional(total, inner, boundary);
        prop_assert_eq!(a.total, total);
        prop_assert_eq!(2 * a.boundary_tbs + a.inner_tbs, total);
        prop_assert!(a.boundary_tbs >= 1);
        prop_assert!(a.inner_tbs >= 1);
        let f = 2.0 * a.boundary_fraction() + a.inner_fraction();
        prop_assert!((f - 1.0).abs() < 1e-9);
    }

    /// Allocation monotonicity: growing the boundary workload never takes
    /// blocks AWAY from the boundary groups.
    #[test]
    fn tb_allocation_monotone_in_boundary(
        total in 5u64..512,
        inner in 1u64..1_000_000,
        boundary in 1u64..50_000,
    ) {
        let a = TbAllocation::proportional(total, inner, boundary);
        let b = TbAllocation::proportional(total, inner, boundary * 2);
        prop_assert!(b.boundary_tbs >= a.boundary_tbs);
    }

    /// Slab decomposition: partition exactness, contiguity, balance.
    #[test]
    fn slab_invariants(interior in 1usize..10_000, n in 1usize..64) {
        prop_assume!(interior >= n);
        let s = Slab::new(interior, n);
        let total: usize = (0..n).map(|p| s.layers(p)).sum();
        prop_assert_eq!(total, interior);
        let mut cursor = 0;
        for p in 0..n {
            prop_assert_eq!(s.start(p), cursor);
            cursor += s.layers(p);
            // Balance: never differ by more than one layer.
            prop_assert!(s.layers(p) + 1 >= s.layers(0));
            prop_assert!(s.layers(p) <= s.layers(0));
        }
    }

    /// Virtual time arithmetic: associativity/ordering survives conversion.
    #[test]
    fn simdur_arithmetic(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let (da, db) = (SimDur::from_nanos(a), SimDur::from_nanos(b));
        prop_assert_eq!((da + db).as_nanos(), a + b);
        prop_assert_eq!((SimTime::ZERO + da + db).since(SimTime::ZERO + da), db);
        prop_assert_eq!(da * 3, SimDur::from_nanos(a * 3));
        prop_assert!((da + db) >= da.max(db));
    }

    /// Trace algebra: overlap(a,b) <= min(busy(a), busy(b)); busy <= total.
    #[test]
    fn trace_overlap_bounds(spans in prop::collection::vec((0u64..10_000, 1u64..500, 0u8..2), 1..40)) {
        let mut t = Trace::new();
        for (start, len, cat) in spans {
            t.push(TraceSpan {
                agent: cpufree::sim_des::AgentId(0),
                agent_name: "p".into(),
                start: SimTime(start),
                end: SimTime(start + len),
                category: if cat == 0 { Category::Comm } else { Category::Compute },
                label: String::new(),
            });
        }
        let comm = t.busy(Category::Comm);
        let comp = t.busy(Category::Compute);
        let ov = t.overlap(Category::Comm, Category::Compute);
        prop_assert!(ov <= comm);
        prop_assert!(ov <= comp);
        prop_assert!(comm <= t.total(Category::Comm));
        let r = t.overlap_ratio(Category::Comm, Category::Compute);
        prop_assert!((0.0..=1.0).contains(&r));
    }

    /// Symbolic expressions evaluate compositionally.
    #[test]
    fn expr_compositionality(x in -1000i64..1000, y in 1i64..1000) {
        let mut b = Bindings::new();
        b.insert("x".into(), x);
        b.insert("y".into(), y);
        let e = Expr::s("x").mul(Expr::c(2)).add(Expr::s("y"));
        prop_assert_eq!(e.eval(&b), 2 * x + y);
        let d = Expr::s("x").div(Expr::s("y")).mul(Expr::s("y"))
            .add(Expr::s("x").rem(Expr::s("y")));
        prop_assert_eq!(d.eval(&b), x); // Euclid-ish identity for trunc div
    }

    /// Cost model sanity across random transfer sizes: device-initiated
    /// communication is never slower than the host MPI path, and both are
    /// monotone in size.
    #[test]
    fn cost_model_monotone(bytes in 8u64..(1 << 24)) {
        let m = CostModel::a100_hgx();
        prop_assert!(m.shmem_put(bytes) < m.mpi_msg(bytes));
        prop_assert!(m.shmem_put(bytes) <= m.shmem_put(bytes * 2));
        prop_assert!(m.p2p_copy(bytes) <= m.p2p_copy(bytes + 8));
        prop_assert!(m.pcie_copy(bytes) > m.p2p_copy(bytes));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// FUNCTIONAL END-TO-END PROPERTY: for random small configurations, the
    /// CPU-Free multi-GPU run is bitwise-identical to the sequential
    /// reference. (Few cases: each runs a full simulation.)
    #[test]
    fn cpu_free_exact_for_random_configs(
        nx in 8usize..40,
        layers_per_gpu in 2usize..8,
        gpus in 1usize..5,
        iters in 1u64..7,
    ) {
        let cfg = StencilConfig {
            nx,
            ny: layers_per_gpu * gpus + 2,
            nz: 1,
            iterations: iters,
            n_gpus: gpus,
            exec: ExecMode::Full,
            no_compute: false,
            threads_per_block: 1024,
            cost: None,
        };
        let out = Variant::CpuFree.run(&cfg);
        prop_assert_eq!(out.max_err, Some(0.0));
    }

    /// Same property for the discrete NVSHMEM baseline (different protocol,
    /// same numerics).
    #[test]
    fn nvshmem_baseline_exact_for_random_configs(
        nx in 8usize..32,
        layers_per_gpu in 2usize..6,
        gpus in 1usize..4,
        iters in 1u64..6,
    ) {
        let cfg = StencilConfig {
            nx,
            ny: layers_per_gpu * gpus + 2,
            nz: 1,
            iterations: iters,
            n_gpus: gpus,
            exec: ExecMode::Full,
            no_compute: false,
            threads_per_block: 1024,
            cost: None,
        };
        let out = Variant::BaselineNvshmem.run(&cfg);
        prop_assert_eq!(out.max_err, Some(0.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Collectives: the device-side allreduce equals the order-matched
    /// reference for random values and PE counts (each case runs a full
    /// simulation, so few cases).
    #[test]
    fn allreduce_matches_reference(
        n_pow in 0usize..4,
        seedvals in prop::collection::vec(-100.0f64..100.0, 8),
    ) {
        use cpufree::nvshmem_sim::{
            allreduce_scalar, reference_reduce, AllreduceWs, ReduceOp,
        };
        use std::sync::{Arc, Mutex};
        let n = 1usize << n_pow; // 1, 2, 4, 8
        let values: Vec<f64> = seedvals[..n].to_vec();
        let machine = Machine::new(n, CostModel::a100_hgx(), ExecMode::Full);
        let world = ShmemWorld::init(&machine);
        let ws = AllreduceWs::new(&world);
        let results = Arc::new(Mutex::new(vec![0.0f64; n]));
        let vals = values.clone();
        let res_l = Arc::clone(&results);
        launch_cpu_free(&machine, "ar", 1024, move |pe| {
            let world = world.clone();
            let mut ws = ws.clone();
            let v = vals[pe];
            let results = Arc::clone(&res_l);
            vec![BlockGroup::new("g", 1, move |k| {
                let mut sh = ShmemCtx::new(&world, k);
                let r = allreduce_scalar(&mut sh, k, &mut ws, v, ReduceOp::Sum);
                results.lock().unwrap()[pe] = r;
            })]
        })
        .unwrap();
        let expect = reference_reduce(&values, ReduceOp::Sum, true);
        let out = results.lock().unwrap();
        prop_assert!(out.iter().all(|r| *r == expect), "{out:?} != {expect}");
    }

    /// The 2D grid decomposition is exact for random shapes.
    #[test]
    fn grid2d_exact_for_random_shapes(
        rows in 2usize..7,
        cols in 2usize..7,
        pr in 1usize..3,
        pc in 1usize..3,
        iters in 1u64..4,
    ) {
        use cpufree::stencil_lab::{run_grid2d_cpu_free, Grid2DConfig};
        let cfg = Grid2DConfig::new(rows, cols, (pr, pc), iters);
        let out = run_grid2d_cpu_free(&cfg);
        prop_assert_eq!(out.max_err, Some(0.0));
    }
}
