//! Property-style tests over the core data structures and invariants of the
//! stack. Each test draws its cases from a seeded xorshift-style generator
//! (SplitMix64), so runs are deterministic and need no external crates.

use cpufree::dace_sim::{Bindings, Expr};
use cpufree::prelude::*;
use cpufree::sim_des::{Trace, TraceSpan};
use cpufree::stencil_lab::Slab;

/// SplitMix64: tiny, high-quality, deterministic case generator.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `lo..hi` (half-open, like proptest ranges).
    fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }

    fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    /// Uniform f64 in `lo..hi`.
    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next_u64() as f64 / u64::MAX as f64) * (hi - lo)
    }
}

/// §4.1.2 allocation: conservation, minimums, and monotonicity in the
/// boundary share.
#[test]
fn tb_allocation_invariants() {
    let mut g = Gen::new(0xA110C);
    for _ in 0..256 {
        let total = g.range_u64(3, 1024);
        let inner = g.range_u64(0, 1_000_000);
        let boundary = g.range_u64(0, 100_000);
        let a = TbAllocation::proportional(total, inner, boundary);
        assert_eq!(a.total, total);
        assert_eq!(2 * a.boundary_tbs + a.inner_tbs, total);
        assert!(a.boundary_tbs >= 1);
        assert!(a.inner_tbs >= 1);
        let f = 2.0 * a.boundary_fraction() + a.inner_fraction();
        assert!((f - 1.0).abs() < 1e-9);
    }
}

/// Allocation monotonicity: growing the boundary workload never takes
/// blocks AWAY from the boundary groups.
#[test]
fn tb_allocation_monotone_in_boundary() {
    let mut g = Gen::new(0xB07D);
    for _ in 0..256 {
        let total = g.range_u64(5, 512);
        let inner = g.range_u64(1, 1_000_000);
        let boundary = g.range_u64(1, 50_000);
        let a = TbAllocation::proportional(total, inner, boundary);
        let b = TbAllocation::proportional(total, inner, boundary * 2);
        assert!(b.boundary_tbs >= a.boundary_tbs);
    }
}

/// Slab decomposition: partition exactness, contiguity, balance.
#[test]
fn slab_invariants() {
    let mut g = Gen::new(0x51AB);
    let mut cases = 0;
    while cases < 256 {
        let interior = g.range_usize(1, 10_000);
        let n = g.range_usize(1, 64);
        if interior < n {
            continue; // proptest's prop_assume! equivalent
        }
        cases += 1;
        let s = Slab::new(interior, n);
        let total: usize = (0..n).map(|p| s.layers(p)).sum();
        assert_eq!(total, interior);
        let mut cursor = 0;
        for p in 0..n {
            assert_eq!(s.start(p), cursor);
            cursor += s.layers(p);
            // Balance: never differ by more than one layer.
            assert!(s.layers(p) + 1 >= s.layers(0));
            assert!(s.layers(p) <= s.layers(0));
        }
    }
}

/// Virtual time arithmetic: associativity/ordering survives conversion.
#[test]
fn simdur_arithmetic() {
    let mut g = Gen::new(0x7133);
    for _ in 0..512 {
        let a = g.range_u64(0, u32::MAX as u64);
        let b = g.range_u64(0, u32::MAX as u64);
        let (da, db) = (SimDur::from_nanos(a), SimDur::from_nanos(b));
        assert_eq!((da + db).as_nanos(), a + b);
        assert_eq!((SimTime::ZERO + da + db).since(SimTime::ZERO + da), db);
        assert_eq!(da * 3, SimDur::from_nanos(a * 3));
        assert!((da + db) >= da.max(db));
    }
}

/// Trace algebra: overlap(a,b) <= min(busy(a), busy(b)); busy <= total.
#[test]
fn trace_overlap_bounds() {
    let mut g = Gen::new(0x07AC3);
    for _ in 0..128 {
        let n_spans = g.range_usize(1, 40);
        let mut t = Trace::new();
        for _ in 0..n_spans {
            let start = g.range_u64(0, 10_000);
            let len = g.range_u64(1, 500);
            let cat = g.range_u64(0, 2);
            t.push(TraceSpan {
                agent: cpufree::sim_des::AgentId(0),
                agent_name: t.intern("p"),
                start: SimTime(start),
                end: SimTime(start + len),
                category: if cat == 0 {
                    Category::Comm
                } else {
                    Category::Compute
                },
                label: cpufree::sim_des::Sym::EMPTY,
            });
        }
        let comm = t.busy(Category::Comm);
        let comp = t.busy(Category::Compute);
        let ov = t.overlap(Category::Comm, Category::Compute);
        assert!(ov <= comm);
        assert!(ov <= comp);
        assert!(comm <= t.total(Category::Comm));
        let r = t.overlap_ratio(Category::Comm, Category::Compute);
        assert!((0.0..=1.0).contains(&r));
    }
}

/// Symbolic expressions evaluate compositionally.
#[test]
fn expr_compositionality() {
    let mut g = Gen::new(0xE49);
    for _ in 0..256 {
        let x = g.range_i64(-1000, 1000);
        let y = g.range_i64(1, 1000);
        let mut b = Bindings::new();
        b.insert("x".into(), x);
        b.insert("y".into(), y);
        let e = Expr::s("x").mul(Expr::c(2)).add(Expr::s("y"));
        assert_eq!(e.eval(&b), 2 * x + y);
        let d = Expr::s("x")
            .div(Expr::s("y"))
            .mul(Expr::s("y"))
            .add(Expr::s("x").rem(Expr::s("y")));
        assert_eq!(d.eval(&b), x); // Euclid-ish identity for trunc div
    }
}

/// Cost model sanity across random transfer sizes: device-initiated
/// communication is never slower than the host MPI path, and both are
/// monotone in size.
#[test]
fn cost_model_monotone() {
    let mut g = Gen::new(0xC057);
    let m = CostModel::a100_hgx();
    for _ in 0..512 {
        let bytes = g.range_u64(8, 1 << 24);
        assert!(m.shmem_put(bytes) < m.mpi_msg(bytes));
        assert!(m.shmem_put(bytes) <= m.shmem_put(bytes * 2));
        assert!(m.p2p_copy(bytes) <= m.p2p_copy(bytes + 8));
        assert!(m.pcie_copy(bytes) > m.p2p_copy(bytes));
    }
}

/// FUNCTIONAL END-TO-END PROPERTY: for random small configurations, the
/// CPU-Free multi-GPU run is bitwise-identical to the sequential
/// reference. (Few cases: each runs a full simulation.)
#[test]
fn cpu_free_exact_for_random_configs() {
    let mut g = Gen::new(0xF4EE);
    for _ in 0..8 {
        let nx = g.range_usize(8, 40);
        let layers_per_gpu = g.range_usize(2, 8);
        let gpus = g.range_usize(1, 5);
        let iters = g.range_u64(1, 7);
        let cfg = StencilConfig {
            nx,
            ny: layers_per_gpu * gpus + 2,
            nz: 1,
            iterations: iters,
            n_gpus: gpus,
            exec: ExecMode::Full,
            no_compute: false,
            threads_per_block: 1024,
            cost: None,
            topology: None,
            jitter: None,
            check: false,
        };
        let out = Variant::CpuFree.run(&cfg);
        assert_eq!(out.max_err, Some(0.0));
    }
}

/// Same property for the discrete NVSHMEM baseline (different protocol,
/// same numerics).
#[test]
fn nvshmem_baseline_exact_for_random_configs() {
    let mut g = Gen::new(0x5421);
    for _ in 0..8 {
        let nx = g.range_usize(8, 32);
        let layers_per_gpu = g.range_usize(2, 6);
        let gpus = g.range_usize(1, 4);
        let iters = g.range_u64(1, 6);
        let cfg = StencilConfig {
            nx,
            ny: layers_per_gpu * gpus + 2,
            nz: 1,
            iterations: iters,
            n_gpus: gpus,
            exec: ExecMode::Full,
            no_compute: false,
            threads_per_block: 1024,
            cost: None,
            topology: None,
            jitter: None,
            check: false,
        };
        let out = Variant::BaselineNvshmem.run(&cfg);
        assert_eq!(out.max_err, Some(0.0));
    }
}

/// Collectives: the device-side allreduce equals the order-matched
/// reference for random values and PE counts (each case runs a full
/// simulation, so few cases).
#[test]
fn allreduce_matches_reference() {
    use cpufree::nvshmem_sim::{allreduce_scalar, reference_reduce, AllreduceWs, ReduceOp};
    use std::sync::{Arc, Mutex};
    let mut g = Gen::new(0xA11);
    for _ in 0..6 {
        let n = 1usize << g.range_usize(0, 4); // 1, 2, 4, 8
        let values: Vec<f64> = (0..n).map(|_| g.range_f64(-100.0, 100.0)).collect();
        let machine = Machine::new(n, CostModel::a100_hgx(), ExecMode::Full);
        let world = ShmemWorld::init(&machine);
        let ws = AllreduceWs::new(&world);
        let results = Arc::new(Mutex::new(vec![0.0f64; n]));
        let vals = values.clone();
        let res_l = Arc::clone(&results);
        launch_cpu_free(&machine, "ar", 1024, move |pe| {
            let world = world.clone();
            let mut ws = ws.clone();
            let v = vals[pe];
            let results = Arc::clone(&res_l);
            vec![BlockGroup::new("g", 1, move |k| {
                let mut sh = ShmemCtx::new(&world, k);
                let r = allreduce_scalar(&mut sh, k, &mut ws, v, ReduceOp::Sum);
                results.lock().unwrap()[pe] = r;
            })]
        })
        .unwrap();
        let expect = reference_reduce(&values, ReduceOp::Sum, true);
        let out = results.lock().unwrap();
        assert!(out.iter().all(|r| *r == expect), "{out:?} != {expect}");
    }
}

/// The happens-before event stream is acyclic (every direct dependency
/// points at an earlier event id) and consistent with virtual time (a
/// dependency never happens at a later virtual time than its dependent),
/// for random ring-handshake schedules.
#[test]
fn hb_graph_acyclic_and_time_consistent() {
    let mut g = Gen::new(0x4B6);
    for _ in 0..16 {
        let n = g.range_usize(2, 6);
        let rounds = g.range_u64(1, 6);
        let engine = Engine::new();
        let hb = engine.enable_hb();
        let flags: Vec<Flag> = (0..n).map(|_| engine.flag(0)).collect();
        for i in 0..n {
            // Each agent signals its successor, then waits on its own flag
            // (set by its predecessor) — signal-before-wait, so no deadlock.
            let set_flag = flags[(i + 1) % n];
            let wait_flag = flags[i];
            let step = g.range_u64(1, 50);
            engine.spawn(format!("ring{i}"), move |ctx| {
                for r in 1..=rounds {
                    ctx.advance(SimDur::from_nanos(step));
                    ctx.signal(set_flag, SignalOp::Set, r);
                    ctx.wait_flag(wait_flag, Cmp::Ge, r);
                }
            });
        }
        engine.run().unwrap();
        let events = hb.events();
        assert!(!events.is_empty());
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev.id as usize, i, "event ids are the stream positions");
            for &d in &ev.deps {
                assert!(d < ev.id, "dep {d} does not precede event {}", ev.id);
                assert!(
                    events[d as usize].time <= ev.time,
                    "dep {d} at {:?} is later than event {} at {:?}",
                    events[d as usize].time,
                    ev.id,
                    ev.time
                );
            }
        }
        assert!(hb.is_clean(), "{:?}", hb.diagnostics());
    }
}

/// Trace overlap and overlap-ratio are functions of the span *set*: pushing
/// the same spans in a different order changes nothing.
#[test]
fn overlap_ratio_invariant_under_span_reordering() {
    let mut g = Gen::new(0x0B5);
    for _ in 0..64 {
        let n_spans = g.range_usize(2, 40);
        let mut spans = Vec::new();
        for _ in 0..n_spans {
            let start = g.range_u64(0, 10_000);
            let len = g.range_u64(1, 500);
            spans.push(TraceSpan {
                agent: cpufree::sim_des::AgentId(0),
                agent_name: cpufree::sim_des::Sym::EMPTY,
                start: SimTime(start),
                end: SimTime(start + len),
                category: if g.range_u64(0, 2) == 0 {
                    Category::Comm
                } else {
                    Category::Compute
                },
                label: cpufree::sim_des::Sym::EMPTY,
            });
        }
        let measure = |order: &[usize]| {
            let mut t = Trace::new();
            for &i in order {
                t.push(spans[i]);
            }
            (
                t.overlap(Category::Comm, Category::Compute),
                t.overlap_ratio(Category::Comm, Category::Compute),
            )
        };
        let ident: Vec<usize> = (0..n_spans).collect();
        let (ov0, r0) = measure(&ident);
        let mut perm = ident;
        for i in (1..n_spans).rev() {
            let j = g.range_usize(0, i + 1);
            perm.swap(i, j);
        }
        let (ov1, r1) = measure(&perm);
        assert_eq!(ov0, ov1);
        assert!(r0 == r1, "ratio changed under reordering: {r0} vs {r1}");
    }
}

/// The 2D grid decomposition is exact for random shapes.
#[test]
fn grid2d_exact_for_random_shapes() {
    use cpufree::stencil_lab::{run_grid2d_cpu_free, Grid2DConfig};
    let mut g = Gen::new(0x62D);
    for _ in 0..6 {
        let rows = g.range_usize(2, 7);
        let cols = g.range_usize(2, 7);
        let pr = g.range_usize(1, 3);
        let pc = g.range_usize(1, 3);
        let iters = g.range_u64(1, 4);
        let cfg = Grid2DConfig::new(rows, cols, (pr, pc), iters);
        let out = run_grid2d_cpu_free(&cfg);
        assert_eq!(out.max_err, Some(0.0));
    }
}
