//! Differential testing: the CPU-Free execution model must compute the
//! *bit-identical* field as every CPU-controlled baseline, on every
//! interconnect topology preset, under perturbed schedules. The protocols
//! may only change when data moves — never what arrives.
//!
//! Each (topology, seed) cell is a self-contained bundle of simulations,
//! so the cells fan out on the [`sim_des::par_map`] pool; assertions run
//! serially afterwards in deterministic cell order.

use cpufree_solvers::{run_baseline, run_cpu_free, PoissonProblem};
use gpu_sim::{ExecMode, TopologyKind};
use stencil_lab::{StencilConfig, Variant};

const SEEDS: [Option<u64>; 4] = [None, Some(3), Some(11), Some(0xFEED)];

const BASELINES: [Variant; 4] = [
    Variant::BaselineCopy,
    Variant::BaselineOverlap,
    Variant::BaselineP2P,
    Variant::BaselineNvshmem,
];

fn cells() -> Vec<(TopologyKind, Option<u64>)> {
    TopologyKind::presets()
        .into_iter()
        .flat_map(|t| SEEDS.into_iter().map(move |s| (t, s)))
        .collect()
}

/// What one stencil cell produced: the CPU-Free result plus every
/// baseline's, in [`BASELINES`] order.
struct StencilCell {
    free_checksum: u64,
    free_max_err: Option<f64>,
    baselines: Vec<(u64, Option<f64>)>,
}

#[test]
fn cpu_free_matches_every_baseline_on_every_topology() {
    let cases = cells();
    let results = sim_des::par_map(
        sim_des::default_jobs(),
        cases.clone(),
        |(topology, seed)| {
            let mut cfg = StencilConfig::square2d(34, 6, 4).with_topology(topology);
            if let Some(s) = seed {
                cfg = cfg.with_jitter(s);
            }
            let free = Variant::CpuFree.run(&cfg);
            let baselines = BASELINES
                .iter()
                .map(|b| {
                    let out = b.run(&cfg);
                    (out.checksum, out.max_err)
                })
                .collect();
            StencilCell {
                free_checksum: free.checksum,
                free_max_err: free.max_err,
                baselines,
            }
        },
    );
    // One global reference: the numerics are also invariant across
    // topologies and schedules.
    let reference = results[0].free_checksum;
    for (&(topology, seed), cell) in cases.iter().zip(&results) {
        assert_eq!(
            cell.free_max_err,
            Some(0.0),
            "CpuFree wrong on {} seed {seed:?}",
            topology.name()
        );
        assert_eq!(
            cell.free_checksum,
            reference,
            "CpuFree checksum drifted on {} seed {seed:?}",
            topology.name()
        );
        for (baseline, &(checksum, max_err)) in BASELINES.iter().zip(&cell.baselines) {
            assert_eq!(
                max_err,
                Some(0.0),
                "{} wrong on {} seed {seed:?}",
                baseline.label(),
                topology.name()
            );
            assert_eq!(
                checksum,
                cell.free_checksum,
                "{} differs from CpuFree on {} seed {seed:?}",
                baseline.label(),
                topology.name()
            );
        }
    }
}

/// The CG solver differential: CPU-Free (device-side recursive-doubling
/// allreduce) and the CPU-controlled baseline (host-staged linear combine)
/// intentionally use different reduction orders, so each is compared
/// bitwise against its own order-matched sequential reference instead of
/// against each other.
#[test]
fn cg_variants_match_order_matched_reference_everywhere() {
    let cases = cells();
    let results = sim_des::par_map(
        sim_des::default_jobs(),
        cases.clone(),
        |(topology, seed)| {
            let mut prob = PoissonProblem::new(18, 20, 6, 4).with_topology(topology);
            if let Some(s) = seed {
                prob = prob.with_jitter(s);
            }
            let free = run_cpu_free(&prob, ExecMode::Full);
            let base = run_baseline(&prob, ExecMode::Full);
            (free.verify(&prob), base.verify(&prob))
        },
    );
    for (&(topology, seed), &(free_err, base_err)) in cases.iter().zip(&results) {
        assert_eq!(
            free_err,
            0.0,
            "CPU-Free CG wrong on {} seed {seed:?}",
            topology.name()
        );
        assert_eq!(
            base_err,
            0.0,
            "baseline CG wrong on {} seed {seed:?}",
            topology.name()
        );
    }
}
