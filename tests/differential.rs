//! Differential testing: the CPU-Free execution model must compute the
//! *bit-identical* field as every CPU-controlled baseline, on every
//! interconnect topology preset, under perturbed schedules. The protocols
//! may only change when data moves — never what arrives.

use cpufree_solvers::{run_baseline, run_cpu_free, PoissonProblem};
use gpu_sim::{ExecMode, TopologyKind};
use stencil_lab::{StencilConfig, Variant};

const SEEDS: [Option<u64>; 4] = [None, Some(3), Some(11), Some(0xFEED)];

const BASELINES: [Variant; 4] = [
    Variant::BaselineCopy,
    Variant::BaselineOverlap,
    Variant::BaselineP2P,
    Variant::BaselineNvshmem,
];

#[test]
fn cpu_free_matches_every_baseline_on_every_topology() {
    let mut reference_checksum = None;
    for topology in TopologyKind::ALL {
        for seed in SEEDS {
            let mut cfg = StencilConfig::square2d(34, 6, 4).with_topology(topology);
            if let Some(s) = seed {
                cfg = cfg.with_jitter(s);
            }
            let free = Variant::CpuFree.run(&cfg);
            assert_eq!(
                free.max_err,
                Some(0.0),
                "CpuFree wrong on {} seed {seed:?}",
                topology.name()
            );
            // One global reference: the numerics are also invariant across
            // topologies and schedules.
            let reference = *reference_checksum.get_or_insert(free.checksum);
            assert_eq!(
                free.checksum,
                reference,
                "CpuFree checksum drifted on {} seed {seed:?}",
                topology.name()
            );
            for baseline in BASELINES {
                let out = baseline.run(&cfg);
                assert_eq!(
                    out.max_err,
                    Some(0.0),
                    "{} wrong on {} seed {seed:?}",
                    baseline.label(),
                    topology.name()
                );
                assert_eq!(
                    out.checksum,
                    free.checksum,
                    "{} differs from CpuFree on {} seed {seed:?}",
                    baseline.label(),
                    topology.name()
                );
            }
        }
    }
}

/// The CG solver differential: CPU-Free (device-side recursive-doubling
/// allreduce) and the CPU-controlled baseline (host-staged linear combine)
/// intentionally use different reduction orders, so each is compared
/// bitwise against its own order-matched sequential reference instead of
/// against each other.
#[test]
fn cg_variants_match_order_matched_reference_everywhere() {
    for topology in TopologyKind::ALL {
        for seed in SEEDS {
            let mut prob = PoissonProblem::new(18, 20, 6, 4).with_topology(topology);
            if let Some(s) = seed {
                prob = prob.with_jitter(s);
            }
            let free = run_cpu_free(&prob, ExecMode::Full);
            assert_eq!(
                free.verify(&prob),
                0.0,
                "CPU-Free CG wrong on {} seed {seed:?}",
                topology.name()
            );
            let base = run_baseline(&prob, ExecMode::Full);
            assert_eq!(
                base.verify(&prob),
                0.0,
                "baseline CG wrong on {} seed {seed:?}",
                topology.name()
            );
        }
    }
}
