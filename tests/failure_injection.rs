//! Failure injection: deliberately broken CPU-Free protocols must be
//! *diagnosed* by the engine — deadlock reports with agent context, or
//! panics with actionable messages — never silent hangs or wrong answers.

use cpufree::prelude::*;
use cpufree::sim_des::SimError;

fn two_pe_machine() -> (Machine, ShmemWorld) {
    let m = Machine::new(2, CostModel::a100_hgx(), ExecMode::Full);
    let w = ShmemWorld::init(&m);
    (m, w)
}

/// Missing put: the waiter blocks forever → deadlock diagnosis names it.
#[test]
fn missing_put_is_diagnosed() {
    let (machine, world) = two_pe_machine();
    let sig = world.signal(0);
    let w = world.clone();
    let result = launch_cpu_free(&machine, "missing_put", 1024, move |pe| {
        let w = w.clone();
        let sig = sig.clone();
        vec![BlockGroup::new("comm", 1, move |k| {
            let mut sh = ShmemCtx::new(&w, k);
            if pe == 1 {
                sh.signal_wait_until(k, &sig, Cmp::Ge, 1);
            }
            // pe 0 "forgets" to put/signal.
        })]
    });
    let Err(SimError::Deadlock { blocked, .. }) = result else {
        panic!("expected deadlock, got {result:?}");
    };
    // The report names the stuck kernel agent (plus the host ranks and
    // supervisor blocked downstream of it).
    assert!(
        blocked
            .iter()
            .any(|b| b.contains("missing_put") && b.contains("flag")),
        "diagnostic: {blocked:?}"
    );
}

/// Off-by-one signal values: waiting for iteration t+1's signal when the
/// sender only ever sends t — the classic semaphore bug.
#[test]
fn off_by_one_semaphore_deadlocks() {
    let (machine, world) = two_pe_machine();
    let sig = world.signal(0);
    let w = world.clone();
    let result = launch_cpu_free(&machine, "off_by_one", 1024, move |pe| {
        let w = w.clone();
        let sig = sig.clone();
        vec![BlockGroup::new("comm", 1, move |k| {
            let mut sh = ShmemCtx::new(&w, k);
            if pe == 0 {
                sh.signal_op(k, &sig, SignalOp::Set, 1, 1);
            } else {
                // BUG: waits for 2, sender sets 1.
                sh.signal_wait_until(k, &sig, Cmp::Ge, 2);
            }
        })]
    });
    assert!(matches!(result, Err(SimError::Deadlock { .. })));
}

/// Mismatched grid_sync counts: one block group syncs more often than the
/// other — barrier starves.
#[test]
fn mismatched_grid_sync_counts_deadlock() {
    let machine = Machine::new(1, CostModel::a100_hgx(), ExecMode::Full);
    let result = launch_cpu_free(&machine, "bad_sync", 1024, move |_pe| {
        vec![
            BlockGroup::new("a", 1, |k| {
                for _ in 0..3 {
                    k.grid_sync();
                }
            }),
            BlockGroup::new("b", 1, |k| {
                for _ in 0..2 {
                    k.grid_sync(); // BUG: one fewer sync
                }
            }),
        ]
    });
    assert!(matches!(result, Err(SimError::Deadlock { .. })));
}

/// Remote write past the end of a symmetric allocation: loud panic with
/// the array name.
#[test]
fn remote_overflow_is_loud() {
    let (machine, world) = two_pe_machine();
    let arr = world.malloc("small", 4);
    let w = world.clone();
    let result = launch_cpu_free(&machine, "overflow", 1024, move |pe| {
        let w = w.clone();
        let arr = arr.clone();
        vec![BlockGroup::new("comm", 1, move |k| {
            if pe == 0 {
                let mut sh = ShmemCtx::new(&w, k);
                let src = k.machine().alloc(DevId(0), "src", 8);
                sh.putmem(k, &arr, 2, &src, 0, 8, 1); // 2+8 > 4
            }
        })]
    });
    let Err(SimError::AgentPanic { message, .. }) = result else {
        panic!("expected panic, got {result:?}");
    };
    assert!(
        message.contains("small"),
        "should name the array: {message}"
    );
    assert!(message.contains("out of range"), "{message}");
}

/// A kernel launched non-cooperatively must not call grid_sync.
#[test]
fn grid_sync_outside_cooperative_launch_panics() {
    let machine = Machine::new(1, CostModel::a100_hgx(), ExecMode::Full);
    machine.spawn_host("rank0", |host| {
        let s = host.create_stream(DevId(0), "s");
        host.launch(&s, "bad", |k| {
            k.grid_sync(); // discrete kernel: no cooperative grid
        });
        host.sync_stream(&s);
    });
    let result = machine.run();
    let Err(SimError::AgentPanic { message, .. }) = result else {
        panic!("expected panic, got {result:?}");
    };
    assert!(message.contains("cooperative"), "{message}");
}

/// Two PEs waiting on each other's signal in the wrong order: cyclic wait.
/// Declaring the expected sender (`signal_wait_from`) turns the flat
/// blocked list into a wait-for graph, and the diagnosis names the cycle.
#[test]
fn cyclic_wait_diagnosed_with_both_agents() {
    let (machine, world) = two_pe_machine();
    let sig = world.signal(0);
    let w = world.clone();
    let result = launch_cpu_free(&machine, "cycle", 1024, move |pe| {
        let w = w.clone();
        let sig = sig.clone();
        vec![BlockGroup::new("comm", 1, move |k| {
            let mut sh = ShmemCtx::new(&w, k);
            // BUG: both wait before either signals — each names the peer
            // it expects the signal from, closing the wait-for cycle.
            sh.signal_wait_from(k, &sig, Cmp::Ge, 1, 1 - pe);
            sh.signal_op(k, &sig, SignalOp::Set, 1, 1 - pe);
        })]
    });
    let Err(SimError::Deadlock { blocked, cycle, .. }) = result else {
        panic!("expected deadlock, got {result:?}");
    };
    // Both kernel agents appear in the diagnosis.
    assert!(
        blocked.iter().any(|b| b.contains("gpu0.cycle")),
        "{blocked:?}"
    );
    assert!(
        blocked.iter().any(|b| b.contains("gpu1.cycle")),
        "{blocked:?}"
    );
    // And the wait-for graph names the full cycle, in order.
    assert_eq!(cycle.len(), 2, "cycle: {cycle:?}");
    assert!(cycle.iter().any(|a| a.contains("gpu0.cycle")), "{cycle:?}");
    assert!(cycle.iter().any(|a| a.contains("gpu1.cycle")), "{cycle:?}");
}

/// Engine-level: an agent panic in one PE is attributed to the right agent.
#[test]
fn panic_attribution_names_the_agent() {
    let machine = Machine::new(4, CostModel::a100_hgx(), ExecMode::Full);
    let result = launch_cpu_free(&machine, "blame", 1024, move |pe| {
        vec![BlockGroup::new("worker", 1, move |_k| {
            assert!(pe != 2, "injected failure on pe 2");
        })]
    });
    let Err(SimError::AgentPanic { agent, message }) = result else {
        panic!("expected panic, got {result:?}");
    };
    assert!(agent.contains("gpu2"), "agent was {agent}");
    assert!(message.contains("injected failure"));
}
