//! Fault injection & recovery, end to end: deterministic fault schedules
//! drive the fault-tolerant CPU-Free runners (Jacobi and CG), which must
//! recover *bit-identically* to the fault-free run; silent hangs must be
//! converted into attributed timeout diagnoses.

use cpufree::prelude::*;
use cpufree::sim_des::SimError;
use cpufree::{cpufree_solvers, stencil_lab};
use cpufree_solvers::{CgFtConfig, PoissonProblem};

fn jacobi_base() -> StencilConfig {
    StencilConfig {
        nx: 16,
        ny: 14,
        nz: 1,
        iterations: 10,
        n_gpus: 4,
        exec: ExecMode::Full,
        no_compute: false,
        threads_per_block: 1024,
        cost: None,
        topology: None,
        jitter: None,
        check: false,
    }
}

/// The three required fault scenarios, by name.
fn scenarios() -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "transient link degradation",
            FaultPlan::new().with_link(LinkFault {
                a: 0,
                b: 1,
                from: SimTime::ZERO,
                until: SimTime::ZERO + us(400.0),
                latency_mult: 5.0,
                bandwidth_mult: 0.25,
            }),
        ),
        (
            "dropped signal with retry",
            FaultPlan::new().with_drop(DropFault {
                from: 1,
                to: 2,
                first_attempt: 3,
                count: 2,
            }),
        ),
        (
            "agent crash with checkpoint/restart",
            FaultPlan::new().with_crash(CrashFault {
                node: 2,
                at_iteration: 6,
            }),
        ),
    ]
}

/// Same seed/plan, same config → identical virtual end time and checksum.
#[test]
fn fault_schedule_replay_is_deterministic() {
    let plan = FaultPlan::new().with_crash(CrashFault {
        node: 2,
        at_iteration: 6,
    });
    let cfg = FtConfig::new(jacobi_base(), plan);
    let a = stencil_lab::run_cpu_free_ft(&cfg).unwrap();
    let b = stencil_lab::run_cpu_free_ft(&cfg).unwrap();
    assert_eq!(a.exec.total, b.exec.total, "virtual time must replay");
    assert_eq!(a.exec.checksum, b.exec.checksum);
    assert_eq!(a.rollbacks, b.rollbacks);
    assert_eq!(a.retries, b.retries);
}

/// A generated schedule is a pure function of its seed.
#[test]
fn generated_plans_are_seed_deterministic() {
    let horizon = SimTime::ZERO + us(500.0);
    let a = FaultPlan::from_seed(42, 4, horizon, 10);
    let b = FaultPlan::from_seed(42, 4, horizon, 10);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    let c = FaultPlan::from_seed(43, 4, horizon, 10);
    assert_ne!(format!("{a:?}"), format!("{c:?}"));
}

/// Jacobi completes under every fault scenario with results bit-identical
/// to the fault-free run, and the recovery overhead is visible.
#[test]
fn jacobi_recovers_bit_identically_under_faults() {
    let clean = stencil_lab::run_cpu_free_ft(&FtConfig::new(jacobi_base(), FaultPlan::new()))
        .expect("fault-free run failed");
    assert_eq!(
        clean.exec.max_err,
        Some(0.0),
        "FT runner must match the reference"
    );
    for (name, plan) in scenarios() {
        let ex = stencil_lab::run_cpu_free_ft(&FtConfig::new(jacobi_base(), plan))
            .unwrap_or_else(|e| panic!("{name}: failed to recover: {e:?}"));
        assert_eq!(
            ex.exec.checksum, clean.exec.checksum,
            "{name}: bit-identity"
        );
        assert_eq!(ex.exec.max_err, Some(0.0), "{name}: reference match");
        assert!(
            ex.exec.total >= clean.exec.total,
            "{name}: recovery overhead must be non-negative"
        );
    }
}

/// Same property for CG — including the device-side allreduce replay.
#[test]
fn cg_recovers_bit_identically_under_faults() {
    let prob = PoissonProblem::new(16, 14, 10, 4);
    let clean = cpufree_solvers::run_cpu_free_ft(
        &CgFtConfig::new(prob.clone(), FaultPlan::new()),
        ExecMode::Full,
    )
    .expect("fault-free run failed");
    assert_eq!(clean.result.verify(&prob), 0.0);
    for (name, plan) in scenarios() {
        let ex =
            cpufree_solvers::run_cpu_free_ft(&CgFtConfig::new(prob.clone(), plan), ExecMode::Full)
                .unwrap_or_else(|e| panic!("{name}: failed to recover: {e:?}"));
        assert_eq!(
            ex.result.final_rho.to_bits(),
            clean.result.final_rho.to_bits(),
            "{name}: rho bit-identity"
        );
        assert_eq!(ex.result.verify(&prob), 0.0, "{name}: reference match");
        assert!(
            ex.result.total >= clean.result.total,
            "{name}: overhead >= 0"
        );
    }
}

/// The crash scenario actually rolls back, and the dropped-signal scenario
/// actually retries — the recovery machinery is exercised, not bypassed.
#[test]
fn recovery_machinery_is_exercised() {
    let crash = stencil_lab::run_cpu_free_ft(&FtConfig::new(
        jacobi_base(),
        FaultPlan::new().with_crash(CrashFault {
            node: 2,
            at_iteration: 6,
        }),
    ))
    .unwrap();
    assert!(crash.rollbacks >= 1, "crash must trigger a rollback");
    assert!(crash.checkpoints >= 1, "checkpoints must be taken");

    let drops = stencil_lab::run_cpu_free_ft(&FtConfig::new(
        jacobi_base(),
        FaultPlan::new().with_drop(DropFault {
            from: 1,
            to: 2,
            first_attempt: 3,
            count: 2,
        }),
    ))
    .unwrap();
    assert_eq!(drops.retries, 2, "both dropped deliveries must be retried");
}

/// A deadline-bounded wait times out at *exactly* the configured virtual
/// deadline — not a poll-granularity later.
#[test]
fn timeout_fires_at_exact_virtual_deadline() {
    let engine = Engine::new();
    let flag = engine.flag(0);
    let deadline = SimTime::ZERO + us(25.0);
    engine.spawn("waiter", move |ctx| {
        let r = ctx.wait_flag_until(flag, Cmp::Ge, 1, deadline);
        assert!(r.is_err(), "flag is never set");
        assert_eq!(ctx.now(), deadline, "resume at exactly the deadline");
    });
    let end = engine.run().unwrap();
    assert_eq!(end, deadline);
}

/// A spin-polling PE defeats the deadlock detector (it is always runnable);
/// the watchdog converts the silent hang into a [`SimError::Timeout`]
/// naming the stalled PEs.
#[test]
fn watchdog_converts_silent_hang_into_timeout() {
    let machine = Machine::new(2, CostModel::a100_hgx(), ExecMode::Full);
    let world = ShmemWorld::init(&machine);
    let never = world.signal(0);
    let heartbeats: Vec<Flag> = (0..2).map(|_| machine.flag(0)).collect();
    let done = machine.flag(0);
    spawn_watchdog(
        &machine,
        WatchdogSpec {
            heartbeats: heartbeats
                .iter()
                .enumerate()
                .map(|(pe, f)| (format!("pe{pe}"), *f))
                .collect(),
            done,
            target: 2,
            interval: us(200.0),
        },
    );
    let w = world.clone();
    let result = launch_cpu_free(&machine, "hang", 1024, move |_pe| {
        let w = w.clone();
        let never = never.clone();
        vec![BlockGroup::new("spin", 1, move |k| {
            let sh = ShmemCtx::new(&w, k);
            // BUG under test: spin-polling a signal nobody ever sends.
            // Always runnable, so the deadlock detector never triggers.
            loop {
                if sh.signal_fetch(k, &never) >= 1 {
                    break;
                }
                k.busy(Category::Compute, "spin", us(1.0));
            }
        })]
    });
    let Err(SimError::Timeout {
        agent, waiting_on, ..
    }) = result
    else {
        panic!("expected watchdog timeout, got {result:?}");
    };
    assert_eq!(agent, "watchdog");
    assert!(
        waiting_on.contains("pe0") && waiting_on.contains("pe1"),
        "{waiting_on}"
    );
}
