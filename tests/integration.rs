//! Cross-crate integration tests: the whole stack from the engine up
//! through the stencil workloads and the compiler, exercised together.

use cpufree::dace_sim::lower::{run_discrete, run_persistent};
use cpufree::dace_sim::programs::{Jacobi1dSetup, Jacobi2dSetup};
use cpufree::dace_sim::transform::{gpu_transform, to_cpu_free};
use cpufree::prelude::*;

/// The headline claim, end to end: on communication-bound configurations
/// the CPU-Free model beats every CPU-controlled baseline, and the ordering
/// of baselines matches their degree of host involvement.
#[test]
fn variant_ordering_matches_host_involvement() {
    let cfg = StencilConfig::square2d(130, 30, 8).timing_only();
    let copy = Variant::BaselineCopy.run(&cfg).total;
    let overlap = Variant::BaselineOverlap.run(&cfg).total;
    let p2p = Variant::BaselineP2P.run(&cfg).total;
    let nvshmem = Variant::BaselineNvshmem.run(&cfg).total;
    let free = Variant::CpuFree.run(&cfg).total;
    // On tiny domains the overlap version's extra launch can offset its
    // hiding; the two memcpy baselines stay within a small band.
    assert!(
        overlap.as_nanos() as f64 <= copy.as_nanos() as f64 * 1.1,
        "overlap {overlap} vs copy {copy}"
    );
    assert!(p2p < copy, "p2p {p2p} vs copy {copy}");
    assert!(nvshmem < p2p, "nvshmem {nvshmem} vs p2p {p2p}");
    assert!(
        free.as_nanos() * 2 < nvshmem.as_nanos(),
        "free {free} vs nvshmem {nvshmem}"
    );
}

/// Weak scaling flatness: CPU-Free per-iteration time must stay within a
/// small factor from 2 to 8 GPUs while the fully CPU-controlled baseline
/// degrades (host barrier growth).
#[test]
fn cpu_free_scales_flat_baselines_degrade() {
    let per_iter = |v: Variant, g: usize| {
        let interior = 254 * g + 2;
        let cfg = StencilConfig {
            nx: 256,
            ny: interior,
            nz: 1,
            iterations: 30,
            n_gpus: g,
            exec: ExecMode::TimingOnly,
            no_compute: false,
            threads_per_block: 1024,
            cost: None,
            topology: None,
            jitter: None,
            check: false,
        };
        v.run(&cfg).stats.per_iter.as_nanos() as f64
    };
    let free_growth = per_iter(Variant::CpuFree, 8) / per_iter(Variant::CpuFree, 2);
    let copy_growth = per_iter(Variant::BaselineCopy, 8) / per_iter(Variant::BaselineCopy, 2);
    assert!(free_growth < 1.25, "CPU-Free grew {free_growth}");
    assert!(copy_growth > free_growth, "baseline should degrade faster");
}

/// The stencil stack and the compiler stack implement the same protocol:
/// both CPU-Free paths beat both CPU-controlled paths on the same class of
/// communication-bound workload.
#[test]
fn handwritten_and_generated_cpu_free_agree_directionally() {
    // Handwritten.
    let cfg = StencilConfig::square2d(130, 10, 4).timing_only();
    let hand_base = Variant::BaselineNvshmem.run(&cfg).total;
    let hand_free = Variant::CpuFree.run(&cfg).total;
    // Generated.
    let setup = Jacobi2dSetup::new(64, 64, 10, 4);
    let mut b = setup.sdfg.clone();
    gpu_transform(&mut b);
    let gen_base = run_discrete(
        &b,
        4,
        &setup.user_bindings(),
        10,
        ExecMode::TimingOnly,
        &|pe, a| setup.init_local(pe, a),
    )
    .unwrap()
    .total;
    let mut f = setup.sdfg.clone();
    to_cpu_free(&mut f).unwrap();
    let gen_free = run_persistent(
        &f,
        4,
        &setup.user_bindings(),
        10,
        ExecMode::TimingOnly,
        &|pe, a| setup.init_local(pe, a),
    )
    .unwrap()
    .total;
    assert!(hand_free < hand_base);
    assert!(gen_free < gen_base);
}

/// Full determinism across the stack: identical checksums and virtual end
/// times on repeated runs of every layer.
#[test]
fn whole_stack_determinism() {
    let run_stencil = || {
        let cfg = StencilConfig::square2d(34, 7, 4);
        let e = Variant::CpuFree.run(&cfg);
        (e.total, e.checksum)
    };
    assert_eq!(run_stencil(), run_stencil());

    let run_dace = || {
        let setup = Jacobi1dSetup::new(16, 5, 4);
        let mut f = setup.sdfg.clone();
        to_cpu_free(&mut f).unwrap();
        let out = run_persistent(
            &f,
            4,
            &setup.user_bindings(),
            5,
            ExecMode::Full,
            &|pe, a| setup.init_local(pe, a),
        )
        .unwrap();
        (out.total, out.checksum)
    };
    assert_eq!(run_dace(), run_dace());
}

/// Failure injection: a broken signaling protocol must be *diagnosed* as a
/// deadlock by the engine, not hang the process.
#[test]
fn broken_protocol_is_diagnosed() {
    let machine = Machine::new(2, CostModel::a100_hgx(), ExecMode::Full);
    let world = ShmemWorld::init(&machine);
    let sig = world.signal(0);
    let w = world.clone();
    let result = launch_cpu_free(&machine, "broken", 1024, move |pe| {
        let w = w.clone();
        let sig = sig.clone();
        vec![BlockGroup::new("g", 1, move |k| {
            let mut sh = ShmemCtx::new(&w, k);
            if pe == 0 {
                // PE 0 waits for a signal PE 1 never sends (wrong value).
                sh.signal_wait_until(k, &sig, Cmp::Ge, 5);
            } else {
                sh.signal_op(k, &sig, SignalOp::Set, 1, 0);
            }
        })]
    });
    match result {
        Err(sim_des::SimError::Deadlock { blocked, .. }) => {
            assert!(blocked
                .iter()
                .any(|b| b.contains("rank0") || b.contains("broken")));
        }
        other => panic!("expected deadlock diagnosis, got {other:?}"),
    }
}

/// The co-residency limitation (§4.1.4) surfaces as a launch error through
/// the whole stack.
#[test]
fn oversubscribed_cooperative_launch_fails_loud() {
    let machine = Machine::new(1, CostModel::a100_hgx(), ExecMode::Full);
    let result = launch_cpu_free(&machine, "too_big", 1024, move |_pe| {
        vec![BlockGroup::new("huge", 10_000, |_k| {})]
    });
    assert!(matches!(result, Err(sim_des::SimError::AgentPanic { .. })));
}

/// Large paper-scale domains are sweepable in timing-only mode without
/// allocating their memory (virtual buffers).
#[test]
fn paper_scale_domains_run_in_timing_mode() {
    let cfg = StencilConfig {
        nx: 8192,
        ny: 8190 * 8 + 2, // 64k x 8k = 537M points: ~4 GB if materialized
        nz: 1,
        iterations: 3,
        n_gpus: 8,
        exec: ExecMode::TimingOnly,
        no_compute: false,
        threads_per_block: 1024,
        cost: None,
        topology: None,
        jitter: None,
        check: false,
    };
    let out = Variant::CpuFree.run(&cfg);
    assert!(out.total.as_nanos() > 0);
    assert!(out.max_err.is_none(), "no verification in timing mode");
}

/// The TB-allocation ablation: the proportional split must not be slower
/// than the naive fixed split on boundary-heavy domains.
#[test]
fn proportional_split_helps_unbalanced_domains() {
    let cfg = StencilConfig::cube3d(514, 514, 34, 20, 4).timing_only();
    let prop = Variant::CpuFree.run(&cfg).total;
    let fixed = Variant::CpuFreeFixedSplit.run(&cfg).total;
    assert!(
        prop <= fixed,
        "proportional {prop} should be <= fixed {fixed}"
    );
}

/// RunStats overlap measurement is consistent with its parts.
#[test]
fn run_stats_internally_consistent() {
    let cfg = StencilConfig::square2d(258, 20, 4).timing_only();
    let ex = Variant::BaselineOverlap.run(&cfg);
    let s = &ex.stats;
    assert!(s.comm_overlap_ratio >= 0.0 && s.comm_overlap_ratio <= 1.0);
    assert!(s.exposed_comm <= s.comm_busy + s.sync_busy);
    assert!(s.per_iter.as_nanos() * 20 <= s.total.as_nanos() + 20);
}
