//! Negative-path tests for the happens-before / conformance checker: each
//! fixture breaks the CPU-Free communication protocol in a specific,
//! historically-plausible way and asserts the checker raises a diagnostic
//! that names both endpoints of the violation.

use gpu_sim::{BlockGroup, CostModel, DevId, ExecMode, Machine};
use nvshmem_sim::ShmemCtx;
use sim_des::{Cmp, DiagKind, SignalOp};

fn two_pe_machine() -> Machine {
    Machine::new(2, CostModel::a100_hgx(), ExecMode::Full).with_checker()
}

/// Regression fixture for the scratch-cell race the allreduce workspace
/// once had: both PEs exchange values through a **single** scratch cell and
/// a **single** slot, with *no* consumption acknowledgement. A fast PE can
/// overwrite the scratch while its previous nbi put is still reading it,
/// and overwrite the partner's slot before the partner consumed it. The
/// production collective closes both holes with per-round ack signals
/// (see `AllreduceWs::acks`); this fixture reintroduces the bug and proves
/// the checker sees it.
#[test]
fn detects_scratch_cell_reuse_race() {
    let machine = two_pe_machine();
    let world = nvshmem_sim::ShmemWorld::init(&machine);
    let slots = world.malloc("slots", 1);
    let sig = world.signal(0);
    for pe in 0..2usize {
        let world = world.clone();
        let slots = slots.clone();
        let sig = sig.clone();
        machine.spawn_host(format!("rank{pe}"), move |host| {
            let k = host.launch_cooperative(
                DevId(pe),
                "racy-exchange",
                1024,
                vec![BlockGroup::new("g", 1, move |kc| {
                    let mut sh = ShmemCtx::new(&world, kc);
                    let scratch = kc.machine().alloc(kc.device(), "scratch", 1);
                    let mut acc = pe as f64 + 1.0;
                    for round in 1..=2u64 {
                        // BUG (on purpose): no ack wait before reusing the
                        // scratch cell or the partner's slot.
                        kc.check_write(&scratch, 0, 1, "scratch fill");
                        scratch.set(0, acc);
                        sh.putmem_signal_nbi(
                            kc,
                            &slots,
                            0,
                            &scratch,
                            0,
                            1,
                            &sig,
                            SignalOp::Set,
                            round,
                            1 - pe,
                        );
                        sh.signal_wait_until(kc, &sig, Cmp::Ge, round);
                        kc.check_read(slots.local(pe), 0, 1, "slot read");
                        acc += slots.local(pe).get(0);
                    }
                })],
            );
            host.wait_cooperative(&k);
        });
    }
    machine.run().expect("the racy exchange still terminates");
    let report = machine.checker().unwrap().report();
    assert!(!report.clean(), "checker missed the reintroduced race");
    let racy: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| matches!(d.kind, DiagKind::DataRace | DiagKind::NbiSourceReuse))
        .collect();
    assert!(!racy.is_empty(), "no race diagnostic: {report}");
    for d in &racy {
        // Both endpoints are named: "<access A> vs <access B>", each with
        // its agent and label.
        assert!(d.message.contains("unordered conflicting accesses"), "{d}");
        assert_eq!(
            d.message.matches("by `").count(),
            2,
            "diagnostic does not name both endpoints: {d}"
        );
    }
}

/// A signal_wait whose matching put-with-signal never happens must surface
/// as a LostSignal diagnostic naming the waiter and what it waited on —
/// not just a generic deadlock.
#[test]
fn detects_lost_signal() {
    let machine = two_pe_machine();
    let world = nvshmem_sim::ShmemWorld::init(&machine);
    let sig = world.signal(0);
    {
        let world = world.clone();
        machine.spawn_host("rank0", move |host| {
            let k = host.launch_cooperative(
                DevId(0),
                "orphan-wait",
                1024,
                vec![BlockGroup::new("g", 1, move |kc| {
                    let mut sh = ShmemCtx::new(&world, kc);
                    // Nobody ever sets this signal.
                    sh.signal_wait_until(kc, &sig, Cmp::Ge, 1);
                })],
            );
            host.wait_cooperative(&k);
        });
    }
    machine.spawn_host("rank1", move |_host| {
        // This rank "forgets" its put-with-signal and exits.
    });
    let err = machine.run();
    assert!(err.is_err(), "the orphaned wait must deadlock");
    let report = machine.checker().unwrap().report();
    let lost: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.kind == DiagKind::LostSignal)
        .collect();
    assert!(!lost.is_empty(), "no LostSignal diagnostic: {report}");
    // Both endpoints: the waiting PE and the wait it is parked on.
    assert!(
        lost.iter()
            .any(|d| d.message.contains("pe0") && d.message.contains("flag #")),
        "diagnostic does not name waiter and wait: {report}"
    );
}

/// Two PEs put into overlapping ranges of a third PE's symmetric array with
/// no ordering between them: a write-write race on the destination.
#[test]
fn detects_unordered_conflicting_puts() {
    let machine = Machine::new(3, CostModel::a100_hgx(), ExecMode::Full).with_checker();
    let world = nvshmem_sim::ShmemWorld::init(&machine);
    let dst = world.malloc("dst", 4);
    for pe in 0..2usize {
        let world = world.clone();
        let dst = dst.clone();
        machine.spawn_host(format!("rank{pe}"), move |host| {
            let k = host.launch_cooperative(
                DevId(pe),
                "blind-put",
                1024,
                vec![BlockGroup::new("g", 1, move |kc| {
                    let mut sh = ShmemCtx::new(&world, kc);
                    let src = kc.machine().alloc(kc.device(), "src", 4);
                    src.set(0, pe as f64);
                    // Overlapping destination ranges: [0..4) vs [2..4).
                    let (off, len) = if pe == 0 { (0, 4) } else { (2, 2) };
                    sh.putmem(kc, &dst, off, &src, 0, len, 2);
                })],
            );
            host.wait_cooperative(&k);
        });
    }
    machine.spawn_host("rank2", move |_host| {});
    machine.run().unwrap();
    let report = machine.checker().unwrap().report();
    let races: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.kind == DiagKind::DataRace)
        .collect();
    assert!(!races.is_empty(), "no DataRace diagnostic: {report}");
    assert!(
        races
            .iter()
            .any(|d| { d.message.contains("dst") && d.message.matches("by `").count() == 2 }),
        "diagnostic does not name the buffer and both writers: {report}"
    );
}

/// Reusing the source buffer of an nbi put before `quiet` is a protocol
/// violation (the DMA may still be reading it) and must be classified as
/// NbiSourceReuse, naming the in-flight source read.
#[test]
fn detects_nbi_source_reuse() {
    let machine = two_pe_machine();
    let world = nvshmem_sim::ShmemWorld::init(&machine);
    let dst = world.malloc("dst", 4);
    {
        let world = world.clone();
        machine.spawn_host("rank0", move |host| {
            let k = host.launch_cooperative(
                DevId(0),
                "hasty-reuse",
                1024,
                vec![BlockGroup::new("g", 1, move |kc| {
                    let mut sh = ShmemCtx::new(&world, kc);
                    let src = kc.machine().alloc(kc.device(), "src", 4);
                    sh.putmem_nbi(kc, &dst, 0, &src, 0, 4, 1);
                    // BUG (on purpose): refill the source without quiet.
                    kc.check_write(&src, 0, 4, "refill src");
                })],
            );
            host.wait_cooperative(&k);
        });
    }
    machine.spawn_host("rank1", move |_host| {});
    machine.run().unwrap();
    let report = machine.checker().unwrap().report();
    let reuse: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.kind == DiagKind::NbiSourceReuse)
        .collect();
    assert!(!reuse.is_empty(), "no NbiSourceReuse diagnostic: {report}");
    assert!(
        reuse.iter().any(|d| {
            d.message.contains("nbi-source") && d.message.matches("by `").count() == 2
        }),
        "diagnostic does not name both endpoints: {report}"
    );
}

/// Positive control for the fixture above: the same reuse *after* `quiet`
/// is race-free — the completion edge orders the refill behind the DMA.
#[test]
fn quiet_makes_source_reuse_clean() {
    let machine = two_pe_machine();
    let world = nvshmem_sim::ShmemWorld::init(&machine);
    let dst = world.malloc("dst", 4);
    {
        let world = world.clone();
        machine.spawn_host("rank0", move |host| {
            let k = host.launch_cooperative(
                DevId(0),
                "patient-reuse",
                1024,
                vec![BlockGroup::new("g", 1, move |kc| {
                    let mut sh = ShmemCtx::new(&world, kc);
                    let src = kc.machine().alloc(kc.device(), "src", 4);
                    sh.putmem_nbi(kc, &dst, 0, &src, 0, 4, 1);
                    sh.quiet(kc);
                    kc.check_write(&src, 0, 4, "refill src");
                })],
            );
            host.wait_cooperative(&k);
        });
    }
    machine.spawn_host("rank1", move |_host| {});
    machine.run().unwrap();
    let report = machine.checker().unwrap().report();
    assert!(report.clean(), "false positive after quiet: {report}");
    assert!(report.accesses > 0);
}
