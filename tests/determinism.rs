//! Determinism: the same configuration run twice produces a bit-identical
//! final virtual time AND a bit-identical trace span list — at the DES
//! layer (agents contending on a shared link `Resource`) and through the
//! full stencil stack (persistent kernels, topology-routed transfers).

use sim_des::{us, Category, Engine, Resource, SimTime};
use std::sync::Arc;
use stencil_lab::{StencilConfig, Variant};

/// Render a trace as comparable lines (every field that could differ).
fn span_lines(trace: &sim_des::Trace) -> Vec<String> {
    trace
        .spans()
        .iter()
        .map(|s| {
            format!(
                "{}|{:?}|{}|{}|{}",
                trace.resolve(s.agent_name),
                s.category,
                s.start.as_nanos(),
                s.end.as_nanos(),
                trace.resolve(s.label)
            )
        })
        .collect()
}

fn des_contention_run() -> (SimTime, Vec<String>) {
    let engine = Engine::new();
    let link = Arc::new(Resource::default());
    for a in 0..4u64 {
        let link = Arc::clone(&link);
        engine.spawn(format!("sender{a}"), move |ctx| {
            ctx.advance(us(a as f64));
            for r in 0..3 {
                let res = link.reserve(ctx.now(), us(5.0));
                ctx.advance(res.end.since(ctx.now()));
                ctx.record(Category::Comm, format!("xfer {a}.{r}"), res.start, res.end);
            }
        });
    }
    let end = engine.run().expect("des run failed");
    (end, span_lines(&engine.trace()))
}

#[test]
fn des_layer_is_deterministic() {
    let (end1, spans1) = des_contention_run();
    let (end2, spans2) = des_contention_run();
    assert_eq!(end1, end2);
    assert!(!spans1.is_empty());
    assert_eq!(spans1, spans2);
}

#[test]
fn stencil_stack_is_deterministic() {
    let cfg = StencilConfig::square2d(64, 6, 4);
    let run = || {
        let ex = Variant::CpuFree.run(&cfg);
        (ex.total, ex.checksum, span_lines(&ex.trace))
    };
    let (t1, c1, s1) = run();
    let (t2, c2, s2) = run();
    assert_eq!(t1, t2, "end-to-end virtual time drifted between runs");
    assert_eq!(c1, c2, "final field checksum drifted between runs");
    assert!(!s1.is_empty());
    assert_eq!(s1, s2, "trace span lists differ between identical runs");
}
