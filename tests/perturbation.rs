//! Schedule-perturbation suite: rerun the CPU-Free workloads under seeded
//! wake-order jitter and assert that (a) the happens-before / conformance
//! checker stays clean and (b) the numerics are bit-identical to the
//! unperturbed schedule. Any divergence would mean the protocols depend on
//! a particular interleaving of simultaneously-woken agents — i.e. a race.
//!
//! On failure, the checker diagnostics are dumped to
//! `target/checker_diagnostics/` so CI can upload them as an artifact.

use cpufree_solvers::{run_cpu_free, CgResult, PoissonProblem};
use gpu_sim::{CheckReport, ExecMode, TopologyKind};
use stencil_lab::{StencilConfig, Variant};

const SEEDS: [u64; 5] = [1, 7, 42, 0xDEAD_BEEF, 0x5EED_5EED];
const TOPOLOGIES: [TopologyKind; 2] = [TopologyKind::NvlinkAllToAll, TopologyKind::PcieTree];

/// Write a failing report to `target/checker_diagnostics/<name>.txt` so CI
/// can attach it to the run, then return the formatted report for the
/// assertion message.
fn dump_if_dirty(name: &str, report: &CheckReport) -> String {
    let text = format!("{report}");
    if !report.clean() {
        let dir = std::path::Path::new("target/checker_diagnostics");
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(dir.join(format!("{name}.txt")), &text);
    }
    text
}

#[test]
fn jacobi_perturbed_schedules_clean_and_bit_identical() {
    for topology in TOPOLOGIES {
        let base_cfg = StencilConfig::square2d(34, 6, 4)
            .with_topology(topology)
            .with_check();
        let base = Variant::CpuFree.run(&base_cfg);
        let report = base.check.as_ref().expect("checker was enabled");
        let name = format!("jacobi-{}-unjittered", topology.name());
        let text = dump_if_dirty(&name, report);
        assert!(report.clean(), "{name}:\n{text}");
        assert!(report.accesses > 0, "checker saw no memory effects");
        assert_eq!(base.max_err, Some(0.0));

        for seed in SEEDS {
            let cfg = base_cfg.clone().with_jitter(seed);
            let out = Variant::CpuFree.run(&cfg);
            let report = out.check.as_ref().expect("checker was enabled");
            let name = format!("jacobi-{}-seed{seed}", topology.name());
            let text = dump_if_dirty(&name, report);
            assert!(report.clean(), "{name}:\n{text}");
            assert_eq!(out.max_err, Some(0.0), "{name}: numerics diverged");
            assert_eq!(
                out.checksum, base.checksum,
                "{name}: checksum differs from unjittered schedule"
            );
        }
    }
}

fn checked_cg(prob: &PoissonProblem) -> CgResult {
    let r = run_cpu_free(prob, ExecMode::Full);
    assert!(
        r.check.is_some(),
        "checker report missing on a checked CG run"
    );
    r
}

#[test]
fn cg_perturbed_schedules_clean_and_bit_identical() {
    // 4 PEs exercises recursive doubling, 3 the ring allreduce.
    for n_pes in [4usize, 3] {
        for topology in TOPOLOGIES {
            let base_prob = PoissonProblem::new(18, 20, 6, n_pes)
                .with_topology(topology)
                .with_check();
            let base = checked_cg(&base_prob);
            let report = base.check.as_ref().unwrap();
            let name = format!("cg-{}pe-{}-unjittered", n_pes, topology.name());
            let text = dump_if_dirty(&name, report);
            assert!(report.clean(), "{name}:\n{text}");
            assert!(report.accesses > 0, "checker saw no memory effects");
            assert_eq!(base.verify(&base_prob), 0.0, "{name}: wrong answer");

            for seed in SEEDS {
                let prob = base_prob.clone().with_jitter(seed);
                let out = checked_cg(&prob);
                let report = out.check.as_ref().unwrap();
                let name = format!("cg-{}pe-{}-seed{seed}", n_pes, topology.name());
                let text = dump_if_dirty(&name, report);
                assert!(report.clean(), "{name}:\n{text}");
                assert_eq!(
                    out.final_rho.to_bits(),
                    base.final_rho.to_bits(),
                    "{name}: final rho diverged"
                );
                assert_eq!(
                    out.x_owned, base.x_owned,
                    "{name}: solution diverged from unjittered schedule"
                );
            }
        }
    }
}

/// Jitter must also leave the CPU-controlled CG baseline bit-identical:
/// host barriers release whole cohorts at once, which is exactly the batch
/// the perturbation permutes.
#[test]
fn cg_baseline_jitter_invariant() {
    let base_prob = PoissonProblem::new(16, 18, 4, 4);
    let base = cpufree_solvers::run_baseline(&base_prob, ExecMode::Full);
    for seed in SEEDS {
        let out =
            cpufree_solvers::run_baseline(&base_prob.clone().with_jitter(seed), ExecMode::Full);
        assert_eq!(out.final_rho.to_bits(), base.final_rho.to_bits());
        assert_eq!(out.x_owned, base.x_owned, "seed {seed} diverged");
    }
}
