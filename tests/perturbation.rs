//! Schedule-perturbation suite: rerun the CPU-Free workloads under seeded
//! wake-order jitter and assert that (a) the happens-before / conformance
//! checker stays clean and (b) the numerics are bit-identical to the
//! unperturbed schedule. Any divergence would mean the protocols depend on
//! a particular interleaving of simultaneously-woken agents — i.e. a race.
//!
//! The (topology, seed) cases are independent whole simulations, so they
//! fan out on the [`sim_des::par_map`] pool; results come back in
//! deterministic case order and every assertion runs serially afterwards.
//!
//! On failure, the checker diagnostics are dumped to
//! `target/checker_diagnostics/` so CI can upload them as an artifact.

use cpufree_solvers::{run_cpu_free, CgResult, PoissonProblem};
use gpu_sim::{CheckReport, ExecMode, TopologyKind};
use stencil_lab::{StencilConfig, Variant};

const SEEDS: [u64; 5] = [1, 7, 42, 0xDEAD_BEEF, 0x5EED_5EED];
const TOPOLOGIES: [TopologyKind; 2] = [TopologyKind::NvlinkAllToAll, TopologyKind::PcieTree];

/// Write a failing report to `target/checker_diagnostics/<name>.txt` so CI
/// can attach it to the run, then return the formatted report for the
/// assertion message.
fn dump_if_dirty(name: &str, report: &CheckReport) -> String {
    let text = format!("{report}");
    if !report.clean() {
        let dir = std::path::Path::new("target/checker_diagnostics");
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(dir.join(format!("{name}.txt")), &text);
    }
    text
}

/// `None` = the unjittered reference schedule of a topology cell.
fn cases_for<T: Copy>(cells: &[T]) -> Vec<(T, Option<u64>)> {
    cells
        .iter()
        .flat_map(|&c| std::iter::once((c, None)).chain(SEEDS.iter().map(move |&s| (c, Some(s)))))
        .collect()
}

#[test]
fn jacobi_perturbed_schedules_clean_and_bit_identical() {
    let cases = cases_for(&TOPOLOGIES);
    let results = sim_des::par_map(
        sim_des::default_jobs(),
        cases.clone(),
        |(topology, seed)| {
            let mut cfg = StencilConfig::square2d(34, 6, 4)
                .with_topology(topology)
                .with_check();
            if let Some(s) = seed {
                cfg = cfg.with_jitter(s);
            }
            Variant::CpuFree.run(&cfg)
        },
    );
    for (&(topology, seed), out) in cases.iter().zip(&results) {
        let report = out.check.as_ref().expect("checker was enabled");
        let tag = match seed {
            None => "unjittered".to_string(),
            Some(s) => format!("seed{s}"),
        };
        let name = format!("jacobi-{}-{tag}", topology.name());
        let text = dump_if_dirty(&name, report);
        assert!(report.clean(), "{name}:\n{text}");
        assert!(report.accesses > 0, "checker saw no memory effects");
        assert_eq!(out.max_err, Some(0.0), "{name}: numerics diverged");
        let base = &results[cases
            .iter()
            .position(|c| *c == (topology, None))
            .expect("reference case")];
        assert_eq!(
            out.checksum, base.checksum,
            "{name}: checksum differs from unjittered schedule"
        );
    }
}

fn checked_cg(prob: &PoissonProblem) -> CgResult {
    let r = run_cpu_free(prob, ExecMode::Full);
    assert!(
        r.check.is_some(),
        "checker report missing on a checked CG run"
    );
    r
}

#[test]
fn cg_perturbed_schedules_clean_and_bit_identical() {
    // 4 PEs exercises recursive doubling, 3 the ring allreduce.
    let cells: Vec<(usize, TopologyKind)> = [4usize, 3]
        .into_iter()
        .flat_map(|n| TOPOLOGIES.into_iter().map(move |t| (n, t)))
        .collect();
    let cases = cases_for(&cells);
    let results = sim_des::par_map(
        sim_des::default_jobs(),
        cases.clone(),
        |((n_pes, topology), seed)| {
            let mut prob = PoissonProblem::new(18, 20, 6, n_pes)
                .with_topology(topology)
                .with_check();
            if let Some(s) = seed {
                prob = prob.with_jitter(s);
            }
            let out = checked_cg(&prob);
            let verify = out.verify(&prob);
            (out, verify)
        },
    );
    for (&((n_pes, topology), seed), (out, verify)) in cases.iter().zip(&results) {
        let report = out.check.as_ref().unwrap();
        let tag = match seed {
            None => "unjittered".to_string(),
            Some(s) => format!("seed{s}"),
        };
        let name = format!("cg-{}pe-{}-{tag}", n_pes, topology.name());
        let text = dump_if_dirty(&name, report);
        assert!(report.clean(), "{name}:\n{text}");
        assert!(report.accesses > 0, "checker saw no memory effects");
        assert_eq!(*verify, 0.0, "{name}: wrong answer");
        let (base, _) = &results[cases
            .iter()
            .position(|c| *c == ((n_pes, topology), None))
            .expect("reference case")];
        assert_eq!(
            out.final_rho.to_bits(),
            base.final_rho.to_bits(),
            "{name}: final rho diverged"
        );
        assert_eq!(
            out.x_owned, base.x_owned,
            "{name}: solution diverged from unjittered schedule"
        );
    }
}

/// Jitter must also leave the CPU-controlled CG baseline bit-identical:
/// host barriers release whole cohorts at once, which is exactly the batch
/// the perturbation permutes.
#[test]
fn cg_baseline_jitter_invariant() {
    let base_prob = PoissonProblem::new(16, 18, 4, 4);
    let base = cpufree_solvers::run_baseline(&base_prob, ExecMode::Full);
    let outs = sim_des::par_map(sim_des::default_jobs(), SEEDS.to_vec(), |seed| {
        let prob = base_prob.clone().with_jitter(seed);
        cpufree_solvers::run_baseline(&prob, ExecMode::Full)
    });
    for (seed, out) in SEEDS.iter().zip(&outs) {
        assert_eq!(out.final_rho.to_bits(), base.final_rho.to_bits());
        assert_eq!(out.x_owned, base.x_owned, "seed {seed} diverged");
    }
}
