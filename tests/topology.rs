//! Cross-preset conformance harness: the interconnect decides *when*
//! data moves, never *what* arrives. For every [`TopologyKind`] preset —
//! single-node, two-node and the cluster fabrics — routes must be
//! symmetric and total, per-route delivery must stay FIFO even under
//! fault-stretched reordering pressure, and Jacobi + CG numerics must be
//! bit-identical; only virtual time may differ. The preset list itself is
//! locked by [`preset_list_is_locked_by_the_conformance_harness`], so a
//! new preset that skips this harness fails loudly. (Bit-identical
//! sharded reports at shards {1,2,4,8} are asserted by
//! `crates/bench/tests/shard_identity.rs` over the same preset list.)

use cpufree_solvers::{run_cpu_free, PoissonProblem};
use gpu_sim::{CostModel, ExecMode, Topology, TopologyKind, Transport};
use sim_des::{us, FaultPlan, FaultState, LinkFault, SimTime};
use stencil_lab::{StencilConfig, Variant};

#[test]
fn preset_list_is_locked_by_the_conformance_harness() {
    let names: Vec<String> = TopologyKind::presets()
        .into_iter()
        .map(|k| k.name())
        .collect();
    assert_eq!(
        names,
        [
            "nvlink-all-to-all",
            "nvlink-ring",
            "pcie-tree",
            "two-node",
            "fat-tree-64r16",
            "dragonfly-6x3x4",
            "rail-optimized-8x8r4",
        ],
        "the preset list changed: extend the conformance harness (route \
         symmetry, FIFO delivery, shard identity, Jacobi/CG checksums, \
         chaos degraded cases) for the new preset, then update this list"
    );
}

#[test]
fn routes_are_symmetric_and_total_on_every_preset() {
    let cost = CostModel::a100_hgx();
    for kind in TopologyKind::presets() {
        // Small partial occupancy for every preset, plus full capacity on
        // the sized cluster fabrics.
        let sizes = match kind.capacity() {
            Some(cap) => vec![8, cap],
            None => vec![8],
        };
        for n in sizes {
            let topo = Topology::build(kind, n, &cost);
            for s in 0..n {
                for d in 0..n {
                    if s == d {
                        continue;
                    }
                    let fwd = topo.route_hops(s, d);
                    assert!(fwd >= 1, "{}: no route {s}->{d} at n={n}", kind.name());
                    assert_eq!(
                        fwd,
                        topo.route_hops(d, s),
                        "{}: asymmetric route {s}<->{d} at n={n}",
                        kind.name()
                    );
                }
            }
        }
    }
}

#[test]
fn per_route_delivery_is_fifo_on_every_preset() {
    // A degradation window stretches early deliveries; later small puts on
    // the same route must still never complete before their predecessors
    // (the per-route FIFO clamp — the exact race the chaos sweep caught on
    // the node presets, now locked down across the cluster fabrics too).
    let cost = CostModel::a100_hgx();
    for kind in TopologyKind::presets() {
        let topo = Topology::build(kind, 8, &cost);
        let t = Transport::new(topo, cost.clone());
        let plan = FaultPlan::new().with_link(LinkFault {
            a: 0,
            b: 5,
            from: SimTime::ZERO,
            until: SimTime::ZERO + us(50.0),
            latency_mult: 40.0,
            bandwidth_mult: 0.02,
        });
        let faults = FaultState::new(plan);
        let mut prev_done = SimTime::ZERO;
        for (i, bytes) in [8u64 << 20, 8, 1 << 20, 8, 64].into_iter().enumerate() {
            let now = SimTime::ZERO + us(i as f64);
            let dur = t.put_signal_delivery(&faults, 0, 5, bytes, now, false);
            let done = now + dur;
            assert!(
                done >= prev_done,
                "{}: put {i} completed at {done:?}, before its predecessor \
                 at {prev_done:?}",
                kind.name()
            );
            prev_done = done;
        }
    }
}

#[test]
fn halo_exchange_numerics_topology_invariant() {
    let mut results = Vec::new();
    for kind in TopologyKind::presets() {
        let cfg = StencilConfig::square2d(64, 8, 4).with_topology(kind);
        let ex = Variant::CpuFree.run(&cfg);
        results.push((kind.name(), ex.checksum, ex.max_err, ex.total));
    }
    let (_, checksum0, max_err0, _) = results[0];
    for (name, checksum, max_err, _) in &results {
        assert_eq!(*checksum, checksum0, "checksum differs on {name}");
        assert_eq!(*max_err, max_err0, "max_err differs on {name}");
    }
    // The routed PCIe tree really is a different machine: its virtual time
    // must differ from the all-to-all NVLink preset.
    let t_nvl = results
        .iter()
        .find(|r| r.0 == "nvlink-all-to-all")
        .unwrap()
        .3;
    let t_pcie = results.iter().find(|r| r.0 == "pcie-tree").unwrap().3;
    assert_ne!(t_nvl, t_pcie, "pcie-tree should not match nvlink timing");
}

#[test]
fn allreduce_numerics_topology_invariant() {
    // 4 PEs exercises the recursive-doubling branch, 3 PEs the ring branch.
    for n_pes in [4usize, 3] {
        let mut results = Vec::new();
        for kind in TopologyKind::presets() {
            let prob = PoissonProblem::new(18, 20, 8, n_pes).with_topology(kind);
            let r = run_cpu_free(&prob, ExecMode::Full);
            results.push((kind.name(), r.final_rho, r.x_owned.clone()));
        }
        let (_, rho0, x0) = results[0].clone();
        for (name, rho, x) in &results {
            assert_eq!(
                rho.to_bits(),
                rho0.to_bits(),
                "final rho differs on {name} with {n_pes} PEs"
            );
            assert_eq!(*x, x0, "solution differs on {name} with {n_pes} PEs");
        }
    }
}
