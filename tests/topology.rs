//! Topology invariance: the interconnect decides *when* data moves, never
//! *what* arrives. Allreduce and halo-exchange numerics must be
//! bit-identical across every topology preset; only virtual time may
//! differ.

use cpufree_solvers::{run_cpu_free, PoissonProblem};
use gpu_sim::{ExecMode, TopologyKind};
use stencil_lab::{StencilConfig, Variant};

#[test]
fn halo_exchange_numerics_topology_invariant() {
    let mut results = Vec::new();
    for kind in TopologyKind::ALL {
        let cfg = StencilConfig::square2d(64, 8, 4).with_topology(kind);
        let ex = Variant::CpuFree.run(&cfg);
        results.push((kind.name(), ex.checksum, ex.max_err, ex.total));
    }
    let (_, checksum0, max_err0, _) = results[0];
    for (name, checksum, max_err, _) in &results {
        assert_eq!(*checksum, checksum0, "checksum differs on {name}");
        assert_eq!(*max_err, max_err0, "max_err differs on {name}");
    }
    // The routed PCIe tree really is a different machine: its virtual time
    // must differ from the all-to-all NVLink preset.
    let t_nvl = results
        .iter()
        .find(|r| r.0 == "nvlink-all-to-all")
        .unwrap()
        .3;
    let t_pcie = results.iter().find(|r| r.0 == "pcie-tree").unwrap().3;
    assert_ne!(t_nvl, t_pcie, "pcie-tree should not match nvlink timing");
}

#[test]
fn allreduce_numerics_topology_invariant() {
    // 4 PEs exercises the recursive-doubling branch, 3 PEs the ring branch.
    for n_pes in [4usize, 3] {
        let mut results = Vec::new();
        for kind in TopologyKind::ALL {
            let prob = PoissonProblem::new(18, 20, 8, n_pes).with_topology(kind);
            let r = run_cpu_free(&prob, ExecMode::Full);
            results.push((kind.name(), r.final_rho, r.x_owned.clone()));
        }
        let (_, rho0, x0) = results[0].clone();
        for (name, rho, x) in &results {
            assert_eq!(
                rho.to_bits(),
                rho0.to_bits(),
                "final rho differs on {name} with {n_pes} PEs"
            );
            assert_eq!(*x, x0, "solution differs on {name} with {n_pes} PEs");
        }
    }
}
