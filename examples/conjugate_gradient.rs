//! Distributed Conjugate Gradient on the CPU-Free model — the PERKS-cited
//! application class with global reductions every iteration: per step, one
//! halo exchange + two allreduces. The CPU-controlled version stages every
//! dot product through the host (D2H copy, barrier, combine); the CPU-Free
//! version does it all with device-side recursive-doubling collectives.
//!
//! ```text
//! cargo run --release --example conjugate_gradient
//! ```

use cpufree::cpufree_solvers::{run_baseline, run_cpu_free, PoissonProblem};
use cpufree::prelude::*;

fn main() {
    // Verifiable small run first.
    let small = PoissonProblem::new(18, 22, 15, 4);
    let free = run_cpu_free(&small, ExecMode::Full);
    let base = run_baseline(&small, ExecMode::Full);
    println!("verification (18x22 grid, 15 CG iterations, 4 GPUs):");
    println!(
        "  CPU-Free  max |err| vs order-matched reference: {:e}",
        free.verify(&small)
    );
    println!(
        "  Baseline  max |err| vs order-matched reference: {:e}",
        base.verify(&small)
    );
    assert_eq!(free.verify(&small), 0.0);
    assert_eq!(base.verify(&small), 0.0);
    println!("  final residual^2: {:.3e}\n", free.final_rho);

    // Performance sweep at scale (timing-only: identical protocol).
    println!("performance — 1024x(128*n) grid, 50 CG iterations:");
    println!(
        "{:>6} {:>14} {:>14} {:>9} {:>22}",
        "gpus", "baseline", "cpu-free", "speedup", "baseline launches+sync"
    );
    for n in [2usize, 4, 8] {
        let prob = PoissonProblem::new(1026, 128 * n + 2, 50, n);
        let b = run_baseline(&prob, ExecMode::TimingOnly);
        let f = run_cpu_free(&prob, ExecMode::TimingOnly);
        println!(
            "{:>6} {:>14} {:>14} {:>8.1}% {:>12} {:>9}",
            n,
            format!("{}", b.total),
            format!("{}", f.total),
            RunStats::speedup_pct(b.total, f.total),
            format!("{}", b.stats.launch_total),
            format!("{}", b.stats.sync_busy),
        );
    }
    println!("\nPer CG iteration the baseline pays 5 kernel launches, 2 host-staged");
    println!("allreduces (D2H copy + two barriers each) and a halo-exchange sync;");
    println!("the CPU-Free kernel replaces all of it with device-side signaling.");
}
