//! Render the simulator's replacement for the paper's Nsight screenshots
//! (Fig 2.1b): ASCII activity timelines of the CPU-controlled overlap
//! baseline next to the CPU-Free kernel, on the same small workload.
//!
//! ```text
//! cargo run --release --example timeline
//! ```

use cpufree::prelude::*;

fn main() {
    let cfg = StencilConfig::square2d(258, 4, 4).timing_only();

    let base = Variant::BaselineOverlap.run(&cfg);
    println!(
        "=== Baseline Copy Overlap — 4 GPUs, 4 iterations (total {}) ===",
        base.total
    );
    println!("{}", base.trace.render_timeline(110));

    let free = Variant::CpuFree.run(&cfg);
    println!("=== CPU-Free — same workload (total {}) ===", free.total);
    println!("{}", free.trace.render_timeline(110));

    // Interactive version: Chrome tracing JSON, for chrome://tracing or
    // https://ui.perfetto.dev.
    let path = std::env::temp_dir().join("cpufree_baseline_trace.json");
    std::fs::write(&path, base.trace.to_chrome_json()).expect("write trace");
    println!(
        "Chrome-tracing export of the baseline run: {}",
        path.display()
    );
    println!();

    println!("Read the rows: the baseline's host ranks (rank*) are busy every");
    println!("iteration with launches (L), API calls (a) and blocking syncs (.),");
    println!("while its streams serialize compute (#) and copies (~). The");
    println!("CPU-Free run launches once; all activity lives in the persistent");
    println!("kernel's block groups, and the host rows stay empty after t=0.");
}
