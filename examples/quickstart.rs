//! Quickstart: solve a 2D Laplace problem with the CPU-Free execution model
//! on a simulated 4-GPU node, verify the numerics bitwise against a
//! sequential reference, and compare against a CPU-controlled baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cpufree::prelude::*;

fn main() {
    // A 258x258 grid (65k points), 200 Jacobi steps, 4 GPUs, with the real
    // arithmetic executed so the result is verifiable.
    let cfg = StencilConfig::square2d(258, 200, 4);

    println!(
        "running CPU-Free 2D Jacobi: {}x{} grid, {} steps, {} GPUs",
        cfg.nx, cfg.ny, cfg.iterations, cfg.n_gpus
    );
    let free = Variant::CpuFree.run(&cfg);

    println!("running CPU-controlled baseline (Copy Overlap) on the same problem");
    let base = Variant::BaselineOverlap.run(&cfg);

    println!();
    println!("correctness:");
    println!(
        "  CPU-Free  max |error| vs sequential reference: {:?}",
        free.max_err
    );
    println!(
        "  Baseline  max |error| vs sequential reference: {:?}",
        base.max_err
    );
    assert_eq!(free.max_err, Some(0.0), "CPU-Free result must be exact");
    assert_eq!(base.max_err, Some(0.0), "baseline result must be exact");

    println!();
    println!("performance (virtual time on the simulated A100 node):");
    println!(
        "  CPU-Free : {:>12} total, {:>10}/iter, comm+sync exposed {:>10}",
        format!("{}", free.total),
        format!("{}", free.stats.per_iter),
        format!("{}", free.stats.exposed_comm)
    );
    println!(
        "  Baseline : {:>12} total, {:>10}/iter, comm+sync exposed {:>10}",
        format!("{}", base.total),
        format!("{}", base.stats.per_iter),
        format!("{}", base.stats.exposed_comm)
    );
    println!();
    println!(
        "  speedup (paper formula): {:.1}%",
        RunStats::speedup_pct(base.total, free.total)
    );
    println!(
        "  baseline comm overlap: {:.1}%   CPU-Free comm overlap: {:.1}%",
        base.stats.comm_overlap_ratio * 100.0,
        free.stats.comm_overlap_ratio * 100.0
    );
}
