//! The compiler path end-to-end: build the distributed Jacobi-2D program
//! the way the DaCe Python frontend would, print its SDFG, apply the
//! CPU-Free transformation pipeline, and run both backends — verifying that
//! the generated CPU-Free code computes the identical field.
//!
//! ```text
//! cargo run --release --example dace_frontend
//! ```

use cpufree::dace_sim::lower::{run_discrete, run_persistent};
use cpufree::dace_sim::programs::Jacobi2dSetup;
use cpufree::dace_sim::transform::{gpu_transform, to_cpu_free};
use cpufree::dace_sim::verify::verify_sdfg;
use cpufree::dace_sim::Sdfg;
use cpufree::prelude::*;

/// Statically verify `sdfg` and print the outcome; a diagnostic here means
/// the program (or a transformation) broke the CPU-Free protocol, so don't
/// lower it.
fn verify_or_die(label: &str, sdfg: &Sdfg, setup: &Jacobi2dSetup) {
    let report = verify_sdfg(sdfg, setup.n_pes, &setup.user_bindings());
    if report.clean() {
        println!("static verification [{label}]: clean");
    } else {
        eprintln!("static verification [{label}] FAILED:\n{report}");
        std::process::exit(1);
    }
}

fn main() {
    let setup = Jacobi2dSetup::new(6, 8, 4, 4);
    println!(
        "baseline program (as built by the frontend):\n{}\n",
        setup.sdfg
    );
    verify_or_die("frontend", &setup.sdfg, &setup);

    // ---- CPU-controlled path: just port to GPU (GPUTransform) ----
    let mut baseline = setup.sdfg.clone();
    gpu_transform(&mut baseline);
    verify_or_die("gpu_transform", &baseline, &setup);
    let b = run_discrete(
        &baseline,
        setup.n_pes,
        &setup.user_bindings(),
        setup.tsteps,
        ExecMode::Full,
        &|pe, a| setup.init_local(pe, a),
    )
    .expect("discrete run");

    // ---- CPU-Free path: MPI→NVSHMEM, NVSHMEMArray, GPUPersistentKernel ----
    let mut cpufree = setup.sdfg.clone();
    to_cpu_free(&mut cpufree).expect("transformation pipeline");
    println!("after the CPU-Free pipeline:\n{cpufree}\n");
    verify_or_die("to_cpu_free", &cpufree, &setup);
    let c = run_persistent(
        &cpufree,
        setup.n_pes,
        &setup.user_bindings(),
        setup.tsteps,
        ExecMode::Full,
        &|pe, a| setup.init_local(pe, a),
    )
    .expect("persistent run");

    // ---- identical numerics ----
    let gathered_b = setup.gather(&b.finals["A"]);
    let gathered_c = setup.gather(&c.finals["A"]);
    let reference = setup.reference();
    let err_b = max_diff(&gathered_b, &reference);
    let err_c = max_diff(&gathered_c, &reference);
    println!("max |error| vs sequential reference: baseline {err_b:e}, cpu-free {err_c:e}");
    assert_eq!(err_b, 0.0);
    assert_eq!(err_c, 0.0);

    // ---- performance ----
    println!(
        "\nvirtual time ({} ranks, {} steps, {}x{} per rank):",
        setup.n_pes, setup.tsteps, setup.rows, setup.cols
    );
    println!("  MPI baseline (discrete kernels):  {}", b.total);
    println!("  generated CPU-Free (persistent):  {}", c.total);
    println!(
        "  improvement: {:.1}%",
        RunStats::speedup_pct(b.total, c.total)
    );
}

fn max_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}
