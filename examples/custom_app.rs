//! Building a NEW application directly on the CPU-Free blueprint — not a
//! stencil: an iterative distributed **power-method step** (y = normalize(x)
//! broadcast around a ring), showing the model generalizes beyond halo
//! exchange: persistent kernels, specialized communication blocks, and
//! flag-semaphore synchronization with zero host involvement after launch.
//!
//! ```text
//! cargo run --release --example custom_app
//! ```

use cpufree::prelude::*;
use std::sync::Arc;

fn main() {
    let n_pes = 4usize;
    let per_pe = 1024usize;
    let iterations = 30u64;

    let machine = Machine::new(n_pes, CostModel::a100_hgx(), ExecMode::Full);
    let world = ShmemWorld::init(&machine);

    // Symmetric cells: each PE exposes its partial sum to the ring.
    let partials = world.malloc("partials", 1);
    let sig = world.signal(0);
    // Every PE's local vector (ordinary device memory).
    let vectors: Vec<Buf> = (0..n_pes)
        .map(|pe| {
            let v = machine.alloc(DevId(pe), format!("x@{pe}"), per_pe);
            v.with_mut(|d| {
                for (i, x) in d.iter_mut().enumerate() {
                    *x = 1.0 + ((pe * per_pe + i) % 7) as f64;
                }
            });
            v
        })
        .collect();

    let world_l = world.clone();
    let partials_l = partials.clone();
    let vectors_l: Arc<Vec<Buf>> = Arc::new(vectors.clone());
    let end = launch_cpu_free(&machine, "power_step", 1024, move |pe| {
        let world = world_l.clone();
        let partials = partials_l.clone();
        let sig = sig.clone();
        let vectors = Arc::clone(&vectors_l);
        let right = (pe + 1) % n_pes;
        vec![
            // One comm group drives the ring reduction; the compute group
            // does the local vector work. grid.sync joins them per step.
            BlockGroup::new("ring", 4, move |k| {
                let mut sh = ShmemCtx::new(&world, k);
                let x = &vectors[pe];
                let scratch = k.machine().alloc(k.device(), "partial", 1);
                for t in 1..=iterations {
                    // Local partial sum of squares (small compute).
                    let local: f64 = x.with(|d| d.iter().map(|v| v * v).sum());
                    scratch.set(0, local);
                    // Accumulate around the ring: n-1 hops of put+signal.
                    sh.putmem_signal_nbi(
                        k,
                        &partials,
                        0,
                        &scratch,
                        0,
                        1,
                        &sig,
                        SignalOp::Set,
                        t,
                        right,
                    );
                    sh.signal_wait_until(k, &sig, Cmp::Ge, t);
                    k.grid_sync();
                }
            }),
            BlockGroup::new("compute", 100, move |k| {
                for _t in 1..=iterations {
                    // The bulk vector update, overlapped with the ring.
                    k.compute(
                        "axpy",
                        (per_pe * 16) as u64,
                        (per_pe * 2) as u64,
                        0.9,
                        || {},
                    );
                    k.grid_sync();
                }
            }),
        ]
    })
    .expect("custom app run");

    let stats = RunStats::from_trace(&machine.trace(), end.since(SimTime::ZERO), iterations);
    println!("distributed iterative app on the CPU-Free blueprint:");
    println!(
        "  {} PEs x {} elements, {} iterations",
        n_pes, per_pe, iterations
    );
    println!(
        "  total {} | per-iter {} | comm overlap {:.0}%",
        stats.total,
        stats.per_iter,
        stats.comm_overlap_ratio * 100.0
    );
    // Every PE received its left neighbor's final partial.
    for pe in 0..n_pes {
        let got = partials.local(pe).get(0);
        let left = (pe + n_pes - 1) % n_pes;
        let expect: f64 = vectors[left].with(|d| d.iter().map(|v| v * v).sum());
        assert_eq!(got, expect, "ring value mismatch at pe {pe}");
    }
    println!("  ring-communicated partial sums verified on every PE");
}
