//! A 3D heat-diffusion study: weak- and strong-scaling of the 3D7pt Jacobi
//! solver across 1–8 simulated GPUs, comparing the CPU-Free model against
//! the best CPU-controlled baseline — the workload class the paper's
//! introduction motivates (PDE solvers with per-step halo exchange).
//!
//! ```text
//! cargo run --release --example heat_diffusion_3d
//! ```

use cpufree::prelude::*;

fn weak_cfg(gpus: usize) -> StencilConfig {
    // 128^3 interior per GPU, timing-only (the protocol is identical to
    // functional mode; arithmetic is elided so the sweep is fast).
    StencilConfig::cube3d(130, 130, 126 * gpus + 2, 100, gpus).timing_only()
}

fn strong_cfg(gpus: usize) -> StencilConfig {
    StencilConfig::cube3d(258, 258, 258, 100, gpus).timing_only()
}

fn main() {
    // Small functional run first: prove the 3D solver is exact.
    let check = Variant::CpuFree.run(&StencilConfig::cube3d(18, 18, 18, 6, 4));
    assert_eq!(check.max_err, Some(0.0));
    println!("3D7pt verification vs sequential reference: exact (max err 0)\n");

    println!("weak scaling — 128^3 per GPU, 100 steps (per-iteration time):");
    println!(
        "{:>6} {:>16} {:>16} {:>10}",
        "gpus", "baseline nvshmem", "cpu-free", "speedup"
    );
    for gpus in [1usize, 2, 4, 8] {
        let cfg = weak_cfg(gpus);
        let base = Variant::BaselineNvshmem.run(&cfg);
        let free = Variant::CpuFree.run(&cfg);
        println!(
            "{:>6} {:>16} {:>16} {:>9.1}%",
            gpus,
            format!("{}", base.stats.per_iter),
            format!("{}", free.stats.per_iter),
            RunStats::speedup_pct(base.stats.per_iter, free.stats.per_iter)
        );
    }

    println!("\nstrong scaling — constant 258^3 domain (per-iteration time):");
    println!(
        "{:>6} {:>16} {:>16} {:>10}",
        "gpus", "baseline nvshmem", "cpu-free", "speedup"
    );
    for gpus in [1usize, 2, 4, 8] {
        let cfg = strong_cfg(gpus);
        let base = Variant::BaselineNvshmem.run(&cfg);
        let free = Variant::CpuFree.run(&cfg);
        println!(
            "{:>6} {:>16} {:>16} {:>9.1}%",
            gpus,
            format!("{}", base.stats.per_iter),
            format!("{}", free.stats.per_iter),
            RunStats::speedup_pct(base.stats.per_iter, free.stats.per_iter)
        );
    }
    println!("\nAs GPU count grows the per-GPU chunk shrinks: communication and");
    println!("control-path latency dominate, and the CPU-Free model's advantage");
    println!("widens — the strong-scaling story of the paper's Fig 6.2.");
}
