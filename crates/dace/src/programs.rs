//! The distributed benchmark programs of Ziogas et al. used in §6.2 —
//! Jacobi 1D and Jacobi 2D — built programmatically the way the `@dc.program`
//! Python frontend would build them, plus their sequential references.
//!
//! Both programs are SPMD with MPI library nodes (the baselines); the
//! CPU-Free versions are derived by transformation
//! ([`crate::transform::mpi_to_nvshmem`] + [`crate::transform::gpu_persistent_kernel`]),
//! not rewritten — mirroring the paper's "no further changes are made to the
//! program structure" methodology.

use crate::expr::{Bindings, Cond, CondOp, Expr};
use crate::ir::*;

/// The canonical 1D update, shared by tasklet execution and the reference.
#[inline(always)]
pub fn jacobi1d_point(left: f64, center: f64, right: f64) -> f64 {
    (left + center + right) * (1.0 / 3.0)
}

/// The canonical 2D update, shared by tasklet execution and the reference.
#[inline(always)]
pub fn jacobi2d_point(c: f64, n: f64, s: f64, e: f64, w: f64) -> f64 {
    (c + ((n + s) + (e + w))) * 0.2
}

/// Deterministic initial value of global 1D cell `g`.
pub fn init1d_value(g: usize) -> f64 {
    ((g * g + 7 * g) % 101) as f64 / 101.0
}

/// Deterministic initial value of global 2D cell `(gi, gj)`.
pub fn init2d_value(gi: usize, gj: usize) -> f64 {
    ((gi * 31 + gj * 17 + gi * gj) % 103) as f64 / 103.0
}

/// A built distributed Jacobi-1D experiment: SDFG + everything needed to
/// initialize, run and verify it.
pub struct Jacobi1dSetup {
    /// The baseline (MPI) SDFG.
    pub sdfg: Sdfg,
    /// Interior elements per PE.
    pub chunk: usize,
    /// Time steps.
    pub tsteps: u64,
    /// Number of PEs.
    pub n_pes: usize,
}

impl Jacobi1dSetup {
    /// Build the MPI baseline program: per time step, exchange `A` halos,
    /// sweep into `B`, exchange `B` halos, sweep back into `A`.
    pub fn new(chunk: usize, tsteps: u64, n_pes: usize) -> Jacobi1dSetup {
        assert!(chunk >= 2 && n_pes >= 1);
        let rank = Expr::s("rank");
        let size = Expr::s("size");
        let chunk_e = Expr::s("chunk");
        let left_guard = Cond::new(rank.clone(), CondOp::Gt, Expr::c(0));
        let right_guard = Cond::new(rank.clone(), CondOp::Lt, size.clone().sub(Expr::c(1)));

        let exchange = |arr: &str, tag_left: u32, tag_right: u32| -> State {
            State {
                name: format!("exchange_{arr}"),
                ops: vec![
                    GuardedOp::when(
                        left_guard.clone(),
                        Op::Lib(LibNode::MpiIsend {
                            buf: DataRef::new(arr, vec![DimRange::idx(Expr::c(1))]),
                            dest: rank.clone().sub(Expr::c(1)),
                            tag: tag_left,
                        }),
                    ),
                    GuardedOp::when(
                        right_guard.clone(),
                        Op::Lib(LibNode::MpiIsend {
                            buf: DataRef::new(arr, vec![DimRange::idx(chunk_e.clone())]),
                            dest: rank.clone().add(Expr::c(1)),
                            tag: tag_right,
                        }),
                    ),
                    GuardedOp::when(
                        left_guard.clone(),
                        Op::Lib(LibNode::MpiIrecv {
                            buf: DataRef::new(arr, vec![DimRange::idx(Expr::c(0))]),
                            src: rank.clone().sub(Expr::c(1)),
                            tag: tag_right,
                        }),
                    ),
                    GuardedOp::when(
                        right_guard.clone(),
                        Op::Lib(LibNode::MpiIrecv {
                            buf: DataRef::new(
                                arr,
                                vec![DimRange::idx(chunk_e.clone().add(Expr::c(1)))],
                            ),
                            src: rank.clone().add(Expr::c(1)),
                            tag: tag_left,
                        }),
                    ),
                    GuardedOp::new(Op::Lib(LibNode::MpiWaitall)),
                ],
            }
        };
        let update = |src: &str, dst: &str| -> State {
            State {
                name: format!("update_{dst}"),
                ops: vec![GuardedOp::new(Op::Map(MapOp {
                    name: format!("sweep_{dst}"),
                    schedule: Schedule::Sequential,
                    range: vec![("i".into(), Expr::c(1), chunk_e.clone())],
                    tasklet: TaskletKind::Jacobi1d {
                        src: src.into(),
                        dst: dst.into(),
                    },
                }))],
            }
        };

        let sdfg = Sdfg {
            name: "jacobi_1d".into(),
            symbols: vec!["chunk".into(), "T".into()],
            derived: vec![],
            arrays: ["A", "B"]
                .iter()
                .map(|n| ArrayDecl {
                    name: (*n).into(),
                    shape: vec![chunk_e.clone().add(Expr::c(2))],
                    storage: Storage::CpuHeap,
                })
                .collect(),
            body: vec![Cf::Loop {
                var: "t".into(),
                start: Expr::c(1),
                end: Expr::s("T"),
                body: vec![
                    Cf::State(exchange("A", 0, 1)),
                    Cf::State(update("A", "B")),
                    Cf::State(exchange("B", 2, 3)),
                    Cf::State(update("B", "A")),
                ],
                persistent: false,
            }],
        };
        Jacobi1dSetup {
            sdfg,
            chunk,
            tsteps,
            n_pes,
        }
    }

    /// The free-symbol bindings for this experiment.
    pub fn user_bindings(&self) -> Bindings {
        [
            ("chunk".to_string(), self.chunk as i64),
            ("T".to_string(), self.tsteps as i64),
        ]
        .into_iter()
        .collect()
    }

    /// Initial contents of `pe`'s local copy of an array: global cells
    /// `pe*chunk .. pe*chunk + chunk+1` (both generations start equal).
    pub fn init_local(&self, pe: usize, _array: &str) -> Vec<f64> {
        (0..self.chunk + 2)
            .map(|l| init1d_value(pe * self.chunk + l))
            .collect()
    }

    /// Sequential reference: the full `A` array after all time steps.
    pub fn reference(&self) -> Vec<f64> {
        let n = self.n_pes * self.chunk;
        let mut a: Vec<f64> = (0..n + 2).map(init1d_value).collect();
        let mut b = a.clone();
        for _ in 0..self.tsteps {
            for i in 1..=n {
                b[i] = jacobi1d_point(a[i - 1], a[i], a[i + 1]);
            }
            for i in 1..=n {
                a[i] = jacobi1d_point(b[i - 1], b[i], b[i + 1]);
            }
        }
        a
    }

    /// Assemble the global `A` array from per-PE finals.
    pub fn gather(&self, locals: &[Vec<f64>]) -> Vec<f64> {
        let n = self.n_pes * self.chunk;
        let mut full: Vec<f64> = (0..n + 2).map(init1d_value).collect();
        for (pe, local) in locals.iter().enumerate() {
            full[pe * self.chunk + 1..pe * self.chunk + 1 + self.chunk]
                .copy_from_slice(&local[1..=self.chunk]);
        }
        full
    }
}

/// Pick the paper's process grid: powers of two split as squarely as
/// possible, preferring more columns (n=2 → 1×2, n=8 → 2×4 — the
/// rectangular splits behind Fig 6.3b's bumps at non-multiples of 4).
pub fn process_grid(n: usize) -> (usize, usize) {
    assert!(
        n.is_power_of_two(),
        "process grid needs a power-of-two PE count"
    );
    let log = n.trailing_zeros();
    let pc = 1usize << log.div_ceil(2);
    (n / pc, pc)
}

/// A built distributed Jacobi-2D experiment.
pub struct Jacobi2dSetup {
    /// The baseline (MPI) SDFG.
    pub sdfg: Sdfg,
    /// Interior rows per PE.
    pub rows: usize,
    /// Interior columns per PE.
    pub cols: usize,
    /// Process grid (rows of ranks, columns of ranks).
    pub pgrid: (usize, usize),
    /// Time steps.
    pub tsteps: u64,
    /// Number of PEs.
    pub n_pes: usize,
}

impl Jacobi2dSetup {
    /// Build the MPI baseline: per time step and per generation, exchange
    /// north/south rows (contiguous) and east/west columns (strided,
    /// `MPI_Type_vector`), then sweep.
    pub fn new(rows: usize, cols: usize, tsteps: u64, n_pes: usize) -> Jacobi2dSetup {
        assert!(rows >= 1 && cols >= 1);
        let pgrid = process_grid(n_pes);
        let rank = Expr::s("rank");
        let pc = Expr::s("pc");
        let rows_e = Expr::s("rows");
        let cols_e = Expr::s("cols");
        let north_g = Cond::new(Expr::s("prow"), CondOp::Gt, Expr::c(0));
        let south_g = Cond::new(Expr::s("prow"), CondOp::Lt, Expr::s("pr").sub(Expr::c(1)));
        let west_g = Cond::new(Expr::s("pcol"), CondOp::Gt, Expr::c(0));
        let east_g = Cond::new(Expr::s("pcol"), CondOp::Lt, pc.clone().sub(Expr::c(1)));
        let north = rank.clone().sub(pc.clone());
        let south = rank.clone().add(pc.clone());
        let west = rank.clone().sub(Expr::c(1));
        let east = rank.clone().add(Expr::c(1));

        // Subsets of the local (rows+2) x (cols+2) array.
        let row = |i: Expr| -> Vec<DimRange> {
            vec![
                DimRange::idx(i),
                DimRange::range(Expr::c(1), cols_e.clone()),
            ]
        };
        let col = |j: Expr| -> Vec<DimRange> {
            vec![
                DimRange::range(Expr::c(1), rows_e.clone()),
                DimRange::idx(j),
            ]
        };

        let exchange = |arr: &str, base: u32| -> State {
            let mut ops = Vec::new();
            let mut send = |g: &Cond, subset: Vec<DimRange>, dest: Expr, tag: u32| {
                ops.push(GuardedOp::when(
                    g.clone(),
                    Op::Lib(LibNode::MpiIsend {
                        buf: DataRef::new(arr, subset),
                        dest,
                        tag,
                    }),
                ));
            };
            send(&north_g, row(Expr::c(1)), north.clone(), base);
            send(&south_g, row(rows_e.clone()), south.clone(), base + 1);
            send(&west_g, col(Expr::c(1)), west.clone(), base + 2);
            send(&east_g, col(cols_e.clone()), east.clone(), base + 3);
            let mut recv = |g: &Cond, subset: Vec<DimRange>, src: Expr, tag: u32| {
                ops.push(GuardedOp::when(
                    g.clone(),
                    Op::Lib(LibNode::MpiIrecv {
                        buf: DataRef::new(arr, subset),
                        src,
                        tag,
                    }),
                ));
            };
            recv(&north_g, row(Expr::c(0)), north.clone(), base + 1);
            recv(
                &south_g,
                row(rows_e.clone().add(Expr::c(1))),
                south.clone(),
                base,
            );
            recv(&west_g, col(Expr::c(0)), west.clone(), base + 3);
            recv(
                &east_g,
                col(cols_e.clone().add(Expr::c(1))),
                east.clone(),
                base + 2,
            );
            ops.push(GuardedOp::new(Op::Lib(LibNode::MpiWaitall)));
            State {
                name: format!("exchange_{arr}"),
                ops,
            }
        };
        let update = |src: &str, dst: &str| -> State {
            State {
                name: format!("update_{dst}"),
                ops: vec![GuardedOp::new(Op::Map(MapOp {
                    name: format!("sweep_{dst}"),
                    schedule: Schedule::Sequential,
                    range: vec![
                        ("i".into(), Expr::c(1), rows_e.clone()),
                        ("j".into(), Expr::c(1), cols_e.clone()),
                    ],
                    tasklet: TaskletKind::Jacobi2d {
                        src: src.into(),
                        dst: dst.into(),
                    },
                }))],
            }
        };

        let sdfg = Sdfg {
            name: "jacobi_2d".into(),
            symbols: vec!["rows".into(), "cols".into(), "pc".into(), "T".into()],
            derived: vec![
                ("pr".into(), Expr::s("size").div(Expr::s("pc"))),
                ("prow".into(), Expr::s("rank").div(Expr::s("pc"))),
                ("pcol".into(), Expr::s("rank").rem(Expr::s("pc"))),
            ],
            arrays: ["A", "B"]
                .iter()
                .map(|n| ArrayDecl {
                    name: (*n).into(),
                    shape: vec![
                        rows_e.clone().add(Expr::c(2)),
                        cols_e.clone().add(Expr::c(2)),
                    ],
                    storage: Storage::CpuHeap,
                })
                .collect(),
            body: vec![Cf::Loop {
                var: "t".into(),
                start: Expr::c(1),
                end: Expr::s("T"),
                body: vec![
                    Cf::State(exchange("A", 0)),
                    Cf::State(update("A", "B")),
                    Cf::State(exchange("B", 4)),
                    Cf::State(update("B", "A")),
                ],
                persistent: false,
            }],
        };
        Jacobi2dSetup {
            sdfg,
            rows,
            cols,
            pgrid,
            tsteps,
            n_pes,
        }
    }

    /// The free-symbol bindings for this experiment.
    pub fn user_bindings(&self) -> Bindings {
        [
            ("rows".to_string(), self.rows as i64),
            ("cols".to_string(), self.cols as i64),
            ("pc".to_string(), self.pgrid.1 as i64),
            ("T".to_string(), self.tsteps as i64),
        ]
        .into_iter()
        .collect()
    }

    /// Global grid extents including the fixed boundary ring.
    pub fn global_extents(&self) -> (usize, usize) {
        (self.pgrid.0 * self.rows + 2, self.pgrid.1 * self.cols + 2)
    }

    fn pe_coords(&self, pe: usize) -> (usize, usize) {
        (pe / self.pgrid.1, pe % self.pgrid.1)
    }

    /// Initial contents of `pe`'s local array (both generations equal):
    /// local `(i, j)` is global `(prow*rows + i, pcol*cols + j)`.
    pub fn init_local(&self, pe: usize, _array: &str) -> Vec<f64> {
        let (prow, pcol) = self.pe_coords(pe);
        let (lr, lc) = (self.rows + 2, self.cols + 2);
        let mut v = vec![0.0; lr * lc];
        for i in 0..lr {
            for j in 0..lc {
                v[i * lc + j] = init2d_value(prow * self.rows + i, pcol * self.cols + j);
            }
        }
        v
    }

    /// Sequential reference: the full grid after all time steps.
    pub fn reference(&self) -> Vec<f64> {
        let (gr, gc) = self.global_extents();
        let mut a = vec![0.0; gr * gc];
        for i in 0..gr {
            for j in 0..gc {
                a[i * gc + j] = init2d_value(i, j);
            }
        }
        let mut b = a.clone();
        let sweep = |src: &Vec<f64>, dst: &mut Vec<f64>| {
            for i in 1..gr - 1 {
                for j in 1..gc - 1 {
                    dst[i * gc + j] = jacobi2d_point(
                        src[i * gc + j],
                        src[(i - 1) * gc + j],
                        src[(i + 1) * gc + j],
                        src[i * gc + j + 1],
                        src[i * gc + j - 1],
                    );
                }
            }
        };
        for _ in 0..self.tsteps {
            sweep(&a, &mut b);
            sweep(&b, &mut a);
        }
        a
    }

    /// Assemble the global grid from per-PE final `A` arrays.
    pub fn gather(&self, locals: &[Vec<f64>]) -> Vec<f64> {
        let (gr, gc) = self.global_extents();
        let mut full = vec![0.0; gr * gc];
        for i in 0..gr {
            for j in 0..gc {
                full[i * gc + j] = init2d_value(i, j);
            }
        }
        let lc = self.cols + 2;
        for (pe, local) in locals.iter().enumerate() {
            let (prow, pcol) = self.pe_coords(pe);
            for i in 1..=self.rows {
                for j in 1..=self.cols {
                    full[(prow * self.rows + i) * gc + (pcol * self.cols + j)] = local[i * lc + j];
                }
            }
        }
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_grid_matches_paper_splits() {
        assert_eq!(process_grid(1), (1, 1));
        assert_eq!(process_grid(2), (1, 2));
        assert_eq!(process_grid(4), (2, 2));
        assert_eq!(process_grid(8), (2, 4));
        assert_eq!(process_grid(16), (4, 4));
    }

    #[test]
    fn jacobi1d_sdfg_structure() {
        let s = Jacobi1dSetup::new(16, 3, 4);
        let text = format!("{}", s.sdfg);
        assert!(text.contains("for t in 1..=T"));
        let mut states = 0;
        s.sdfg.visit_states(&mut |_s| states += 1);
        assert_eq!(states, 4);
    }

    #[test]
    fn jacobi1d_reference_is_smooth() {
        let s = Jacobi1dSetup::new(8, 10, 2);
        let r = s.reference();
        assert_eq!(r.len(), 18);
        // Fixed endpoints.
        assert_eq!(r[0], init1d_value(0));
        assert_eq!(r[17], init1d_value(17));
        // Interior changed from init.
        assert_ne!(r[5], init1d_value(5));
    }

    #[test]
    fn jacobi1d_gather_reassembles_init_when_unrun() {
        let s = Jacobi1dSetup::new(8, 0, 2);
        let locals: Vec<Vec<f64>> = (0..2).map(|pe| s.init_local(pe, "A")).collect();
        let g = s.gather(&locals);
        let expect: Vec<f64> = (0..18).map(init1d_value).collect();
        assert_eq!(g, expect);
    }

    #[test]
    fn jacobi2d_local_init_consistent_with_global() {
        let s = Jacobi2dSetup::new(4, 6, 1, 8);
        assert_eq!(s.pgrid, (2, 4));
        let local = s.init_local(5, "A");
        // PE 5 is (prow=1, pcol=1); local (1,1) = global (1*4+1, 1*6+1).
        assert_eq!(local[8 + 1], init2d_value(5, 7));
    }

    #[test]
    fn jacobi2d_reference_boundary_fixed() {
        let s = Jacobi2dSetup::new(3, 3, 4, 4);
        let (gr, gc) = s.global_extents();
        let r = s.reference();
        for j in 0..gc {
            assert_eq!(r[j], init2d_value(0, j));
            assert_eq!(r[(gr - 1) * gc + j], init2d_value(gr - 1, j));
        }
    }

    #[test]
    fn jacobi2d_sdfg_has_strided_subsets() {
        let s = Jacobi2dSetup::new(4, 4, 1, 4);
        let mut strided = 0;
        s.sdfg.visit_states(&mut |st| {
            for op in &st.ops {
                if let Op::Lib(LibNode::MpiIsend { buf, .. }) = &op.op {
                    if !buf.is_structurally_contiguous() {
                        strided += 1;
                    }
                }
            }
        });
        // East + west sends on both A and B exchanges.
        assert_eq!(strided, 4);
    }
}
