//! # dace-sim — a mini data-centric compiler with CPU-Free code generation
//!
//! A compact reimplementation of the DaCe machinery the paper extends
//! (§2.3, §5), targeting the simulated multi-GPU node:
//!
//! * an **SDFG-style IR** ([`ir`]): states of maps/tasklets/copies plus
//!   **library nodes** for MPI (the Ziogas et al. distributed baseline) and
//!   NVSHMEM (this work's contribution), with symbolic sizes ([`expr`]);
//! * **transformations** ([`transform`]): `GPUTransform`, `MapFusion`,
//!   `GPUPersistentKernel`, `NVSHMEMArray`, and the **MPI → NVSHMEM
//!   conversion** that rewrites `Isend`/`Irecv`/`Waitall` into
//!   `PutmemSignal`/`SignalWait` (contiguous) or `Iput`+`Quiet`+`SignalOp`
//!   (strided, §5.3.1) without touching program structure;
//! * two **backends** ([`lower`]): the discrete host-driven MPI workflow
//!   (Fig 5.1's stream-sync-heavy pattern) and the persistent CPU-Free
//!   kernel with conservatively scheduled in-kernel communication (§5.3.2);
//! * the **benchmark programs** ([`programs`]): distributed Jacobi 1D
//!   (single-element messages) and Jacobi 2D (four neighbors, strided
//!   east/west columns) with sequential references;
//! * a **static protocol verifier** ([`analysis`], [`verify`]): walks the
//!   SDFG under symbolic rank bindings and proves CPU-Free conformance
//!   (signal ↔ wait balance, nbi source reuse, halo coverage, storage
//!   classes, wait cycles) for *all* schedules before anything runs,
//!   sharing diagnostic vocabulary with the dynamic happens-before checker
//!   and gating both backends and the transform pipeline;
//! * a **static cost predictor** ([`cost`]): closed-form virtual-time
//!   prediction of the persistent backend on any topology preset — exact
//!   on uncontended routes, conservatively bounded on shared links — with
//!   a per-kernel/per-route cost ledger, no simulation required.

#![warn(missing_docs)]

pub mod analysis;
pub mod cost;
pub mod expr;
pub mod ir;
pub mod lower;
pub mod mpi;
pub mod programs;
pub mod transform;
pub mod verify;

pub use analysis::{CommGraph, IntervalSet};
pub use cost::{predict_cost, verify_and_predict, CostError, CostReport, KernelCost, RouteCost};
pub use expr::{Bindings, Cond, CondOp, Expr};
pub use ir::{Schedule, Sdfg, Storage};
pub use lower::{
    run_discrete, run_persistent, run_persistent_checked, run_persistent_on, CheckedRun,
    LowerError, Lowered,
};
pub use programs::{Jacobi1dSetup, Jacobi2dSetup};
pub use transform::{
    gpu_persistent_kernel, gpu_transform, map_fusion, mpi_to_nvshmem, mpi_to_nvshmem_with,
    nvshmem_array, to_cpu_free, PutGranularity, TransformError,
};
pub use verify::{verify_sdfg, verify_structure, StaticDiag, VerifyError, VerifyReport};
