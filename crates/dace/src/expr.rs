//! Symbolic integer expressions — the `N`, `rank*pc + 1`, `TSTEPS` values
//! that parameterize SDFG maps, subsets and guards, resolved per PE at
//! lowering time.

use std::collections::BTreeMap;
use std::fmt;

/// A symbolic integer expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Literal.
    Const(i64),
    /// Symbol reference (`"rank"`, `"N"`, ...).
    Sym(String),
    /// `lhs + rhs`.
    Add(Box<Expr>, Box<Expr>),
    /// `lhs - rhs`.
    Sub(Box<Expr>, Box<Expr>),
    /// `lhs * rhs`.
    Mul(Box<Expr>, Box<Expr>),
    /// Euclidean-ish integer division (`lhs / rhs`, truncating).
    Div(Box<Expr>, Box<Expr>),
    /// Remainder (`lhs % rhs`).
    Rem(Box<Expr>, Box<Expr>),
}

/// Symbol table used to evaluate expressions.
pub type Bindings = BTreeMap<String, i64>;

impl Expr {
    /// Literal constructor.
    pub fn c(v: i64) -> Expr {
        Expr::Const(v)
    }

    /// Symbol constructor.
    pub fn s(name: &str) -> Expr {
        Expr::Sym(name.to_string())
    }

    /// Evaluate with the given bindings. Panics on unbound symbols — an
    /// unbound symbol at lowering time is a program bug worth failing loud.
    pub fn eval(&self, b: &Bindings) -> i64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Sym(name) => *b
                .get(name)
                .unwrap_or_else(|| panic!("unbound symbol `{name}`")),
            Expr::Add(l, r) => l.eval(b) + r.eval(b),
            Expr::Sub(l, r) => l.eval(b) - r.eval(b),
            Expr::Mul(l, r) => l.eval(b) * r.eval(b),
            Expr::Div(l, r) => l.eval(b) / r.eval(b),
            Expr::Rem(l, r) => l.eval(b) % r.eval(b),
        }
    }

    /// `self + rhs` (builder).
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs` (builder).
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs` (builder).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// `self / rhs` (builder).
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }

    /// `self % rhs` (builder).
    #[allow(clippy::should_implement_trait)]
    pub fn rem(self, rhs: Expr) -> Expr {
        Expr::Rem(Box::new(self), Box::new(rhs))
    }

    /// Decompose the expression as `slope * var + intercept`, with every
    /// symbol other than `var` looked up in `b`. Returns `None` when the
    /// expression is not affine in `var` (a product of two `var`-dependent
    /// factors, `var` under division/remainder) or references a symbol
    /// bound neither by `b` nor equal to `var`.
    ///
    /// The static verifier uses this to reason about how signal counters
    /// and loop-carried subsets progress across iterations without
    /// enumerating every iteration.
    pub fn affine(&self, var: &str, b: &Bindings) -> Option<(i64, i64)> {
        match self {
            Expr::Const(v) => Some((0, *v)),
            Expr::Sym(name) if name == var => Some((1, 0)),
            Expr::Sym(name) => b.get(name).map(|v| (0, *v)),
            Expr::Add(l, r) => {
                let (s1, c1) = l.affine(var, b)?;
                let (s2, c2) = r.affine(var, b)?;
                Some((s1 + s2, c1 + c2))
            }
            Expr::Sub(l, r) => {
                let (s1, c1) = l.affine(var, b)?;
                let (s2, c2) = r.affine(var, b)?;
                Some((s1 - s2, c1 - c2))
            }
            Expr::Mul(l, r) => {
                let (s1, c1) = l.affine(var, b)?;
                let (s2, c2) = r.affine(var, b)?;
                match (s1, s2) {
                    (0, _) => Some((c1 * s2, c1 * c2)),
                    (_, 0) => Some((s1 * c2, c1 * c2)),
                    _ => None, // quadratic in `var`
                }
            }
            Expr::Div(l, r) | Expr::Rem(l, r) => {
                // Only constant-folds: division does not distribute over the
                // affine form.
                let (s1, c1) = l.affine(var, b)?;
                let (s2, c2) = r.affine(var, b)?;
                if s1 != 0 || s2 != 0 || c2 == 0 {
                    return None;
                }
                let v = if matches!(self, Expr::Div(..)) {
                    c1 / c2
                } else {
                    c1 % c2
                };
                Some((0, v))
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Sym(s) => write!(f, "{s}"),
            Expr::Add(l, r) => write!(f, "({l} + {r})"),
            Expr::Sub(l, r) => write!(f, "({l} - {r})"),
            Expr::Mul(l, r) => write!(f, "({l} * {r})"),
            Expr::Div(l, r) => write!(f, "({l} / {r})"),
            Expr::Rem(l, r) => write!(f, "({l} % {r})"),
        }
    }
}

/// Comparison operator in guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CondOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A guard condition on an operation (e.g. `rank > 0`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cond {
    /// Left-hand side.
    pub lhs: Expr,
    /// Operator.
    pub op: CondOp,
    /// Right-hand side.
    pub rhs: Expr,
}

impl Cond {
    /// Build `lhs <op> rhs`.
    pub fn new(lhs: Expr, op: CondOp, rhs: Expr) -> Cond {
        Cond { lhs, op, rhs }
    }

    /// Evaluate under bindings.
    pub fn eval(&self, b: &Bindings) -> bool {
        let (l, r) = (self.lhs.eval(b), self.rhs.eval(b));
        match self.op {
            CondOp::Eq => l == r,
            CondOp::Ne => l != r,
            CondOp::Lt => l < r,
            CondOp::Le => l <= r,
            CondOp::Gt => l > r,
            CondOp::Ge => l >= r,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.op {
            CondOp::Eq => "==",
            CondOp::Ne => "!=",
            CondOp::Lt => "<",
            CondOp::Le => "<=",
            CondOp::Gt => ">",
            CondOp::Ge => ">=",
        };
        write!(f, "{} {} {}", self.lhs, op, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(pairs: &[(&str, i64)]) -> Bindings {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn arithmetic_evaluates() {
        let e = Expr::s("rank").mul(Expr::c(4)).add(Expr::c(1));
        assert_eq!(e.eval(&b(&[("rank", 3)])), 13);
        let d = Expr::s("rank").div(Expr::c(2)).rem(Expr::c(3));
        assert_eq!(d.eval(&b(&[("rank", 7)])), 0);
        assert_eq!(Expr::c(10).sub(Expr::c(4)).eval(&b(&[])), 6);
    }

    #[test]
    #[should_panic(expected = "unbound symbol")]
    fn unbound_symbol_panics() {
        Expr::s("nope").eval(&b(&[]));
    }

    #[test]
    fn conditions_evaluate() {
        let c = Cond::new(Expr::s("rank"), CondOp::Gt, Expr::c(0));
        assert!(!c.eval(&b(&[("rank", 0)])));
        assert!(c.eval(&b(&[("rank", 1)])));
        let c2 = Cond::new(Expr::s("rank"), CondOp::Lt, Expr::s("size").sub(Expr::c(1)));
        assert!(c2.eval(&b(&[("rank", 2), ("size", 4)])));
        assert!(!c2.eval(&b(&[("rank", 3), ("size", 4)])));
    }

    #[test]
    fn affine_decomposition() {
        let binds = b(&[("chunk", 16), ("size", 4)]);
        // t*2 + chunk - 1  ->  slope 2, intercept 15.
        let e = Expr::s("t")
            .mul(Expr::c(2))
            .add(Expr::s("chunk"))
            .sub(Expr::c(1));
        assert_eq!(e.affine("t", &binds), Some((2, 15)));
        // Pure constant and pure variable.
        assert_eq!(Expr::c(7).affine("t", &binds), Some((0, 7)));
        assert_eq!(Expr::s("t").affine("t", &binds), Some((1, 0)));
        // Constant-folded division of bound symbols.
        assert_eq!(
            Expr::s("size").div(Expr::c(2)).affine("t", &binds),
            Some((0, 2))
        );
        // Not affine: t*t, t/2, unbound symbol.
        assert_eq!(Expr::s("t").mul(Expr::s("t")).affine("t", &binds), None);
        assert_eq!(Expr::s("t").div(Expr::c(2)).affine("t", &binds), None);
        assert_eq!(Expr::s("nope").affine("t", &binds), None);
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::s("rank").mul(Expr::c(4));
        assert_eq!(format!("{e}"), "(rank * 4)");
        let c = Cond::new(Expr::s("rank"), CondOp::Ge, Expr::c(1));
        assert_eq!(format!("{c}"), "rank >= 1");
    }
}
