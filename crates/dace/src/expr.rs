//! Symbolic integer expressions — the `N`, `rank*pc + 1`, `TSTEPS` values
//! that parameterize SDFG maps, subsets and guards, resolved per PE at
//! lowering time.

use std::collections::BTreeMap;
use std::fmt;

/// A symbolic integer expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Literal.
    Const(i64),
    /// Symbol reference (`"rank"`, `"N"`, ...).
    Sym(String),
    /// `lhs + rhs`.
    Add(Box<Expr>, Box<Expr>),
    /// `lhs - rhs`.
    Sub(Box<Expr>, Box<Expr>),
    /// `lhs * rhs`.
    Mul(Box<Expr>, Box<Expr>),
    /// Euclidean-ish integer division (`lhs / rhs`, truncating).
    Div(Box<Expr>, Box<Expr>),
    /// Remainder (`lhs % rhs`).
    Rem(Box<Expr>, Box<Expr>),
}

/// Symbol table used to evaluate expressions.
pub type Bindings = BTreeMap<String, i64>;

impl Expr {
    /// Literal constructor.
    pub fn c(v: i64) -> Expr {
        Expr::Const(v)
    }

    /// Symbol constructor.
    pub fn s(name: &str) -> Expr {
        Expr::Sym(name.to_string())
    }

    /// Evaluate with the given bindings. Panics on unbound symbols — an
    /// unbound symbol at lowering time is a program bug worth failing loud.
    pub fn eval(&self, b: &Bindings) -> i64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Sym(name) => *b
                .get(name)
                .unwrap_or_else(|| panic!("unbound symbol `{name}`")),
            Expr::Add(l, r) => l.eval(b) + r.eval(b),
            Expr::Sub(l, r) => l.eval(b) - r.eval(b),
            Expr::Mul(l, r) => l.eval(b) * r.eval(b),
            Expr::Div(l, r) => l.eval(b) / r.eval(b),
            Expr::Rem(l, r) => l.eval(b) % r.eval(b),
        }
    }

    /// `self + rhs` (builder).
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs` (builder).
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs` (builder).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// `self / rhs` (builder).
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }

    /// `self % rhs` (builder).
    #[allow(clippy::should_implement_trait)]
    pub fn rem(self, rhs: Expr) -> Expr {
        Expr::Rem(Box::new(self), Box::new(rhs))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Sym(s) => write!(f, "{s}"),
            Expr::Add(l, r) => write!(f, "({l} + {r})"),
            Expr::Sub(l, r) => write!(f, "({l} - {r})"),
            Expr::Mul(l, r) => write!(f, "({l} * {r})"),
            Expr::Div(l, r) => write!(f, "({l} / {r})"),
            Expr::Rem(l, r) => write!(f, "({l} % {r})"),
        }
    }
}

/// Comparison operator in guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CondOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A guard condition on an operation (e.g. `rank > 0`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cond {
    /// Left-hand side.
    pub lhs: Expr,
    /// Operator.
    pub op: CondOp,
    /// Right-hand side.
    pub rhs: Expr,
}

impl Cond {
    /// Build `lhs <op> rhs`.
    pub fn new(lhs: Expr, op: CondOp, rhs: Expr) -> Cond {
        Cond { lhs, op, rhs }
    }

    /// Evaluate under bindings.
    pub fn eval(&self, b: &Bindings) -> bool {
        let (l, r) = (self.lhs.eval(b), self.rhs.eval(b));
        match self.op {
            CondOp::Eq => l == r,
            CondOp::Ne => l != r,
            CondOp::Lt => l < r,
            CondOp::Le => l <= r,
            CondOp::Gt => l > r,
            CondOp::Ge => l >= r,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.op {
            CondOp::Eq => "==",
            CondOp::Ne => "!=",
            CondOp::Lt => "<",
            CondOp::Le => "<=",
            CondOp::Gt => ">",
            CondOp::Ge => ">=",
        };
        write!(f, "{} {} {}", self.lhs, op, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(pairs: &[(&str, i64)]) -> Bindings {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn arithmetic_evaluates() {
        let e = Expr::s("rank").mul(Expr::c(4)).add(Expr::c(1));
        assert_eq!(e.eval(&b(&[("rank", 3)])), 13);
        let d = Expr::s("rank").div(Expr::c(2)).rem(Expr::c(3));
        assert_eq!(d.eval(&b(&[("rank", 7)])), 0);
        assert_eq!(Expr::c(10).sub(Expr::c(4)).eval(&b(&[])), 6);
    }

    #[test]
    #[should_panic(expected = "unbound symbol")]
    fn unbound_symbol_panics() {
        Expr::s("nope").eval(&b(&[]));
    }

    #[test]
    fn conditions_evaluate() {
        let c = Cond::new(Expr::s("rank"), CondOp::Gt, Expr::c(0));
        assert!(!c.eval(&b(&[("rank", 0)])));
        assert!(c.eval(&b(&[("rank", 1)])));
        let c2 = Cond::new(Expr::s("rank"), CondOp::Lt, Expr::s("size").sub(Expr::c(1)));
        assert!(c2.eval(&b(&[("rank", 2), ("size", 4)])));
        assert!(!c2.eval(&b(&[("rank", 3), ("size", 4)])));
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::s("rank").mul(Expr::c(4));
        assert_eq!(format!("{e}"), "(rank * 4)");
        let c = Cond::new(Expr::s("rank"), CondOp::Ge, Expr::c(1));
        assert_eq!(format!("{c}"), "rank >= 1");
    }
}
