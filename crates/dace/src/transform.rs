//! SDFG transformations (§5): the passes that turn the distributed-MPI
//! baseline into CPU-Free code without touching the program's structure.

use crate::expr::Expr;
use crate::ir::*;
use crate::verify::{verify_structure, VerifyError};
use std::collections::BTreeSet;
use std::fmt;

/// Errors raised by transformation pattern/legality checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// `GPUPersistentKernel` found an op that cannot run device-side.
    NotDeviceSchedulable(String),
    /// `GPUPersistentKernel` found no loop to make persistent.
    NoLoop,
    /// `MPIToNVSHMEM` could not match a send with a receive.
    UnmatchedMessage(u32),
    /// The structural protocol verifier rejected the transform's output —
    /// a rewrite bug would otherwise surface as a runtime deadlock.
    ProtocolViolation(VerifyError),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::NotDeviceSchedulable(what) => {
                write!(f, "cannot schedule `{what}` inside a persistent GPU kernel")
            }
            TransformError::NoLoop => write!(f, "no time loop found to make persistent"),
            TransformError::UnmatchedMessage(tag) => {
                write!(f, "MPI message with tag {tag} has no matching receive")
            }
            TransformError::ProtocolViolation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TransformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransformError::ProtocolViolation(e) => Some(e),
            _ => None,
        }
    }
}

/// Post-transform structural gate: fail the transform (instead of
/// deadlocking later in gpu-sim) when its output is not protocol-conformant.
fn structural_gate(sdfg: &Sdfg, require_symmetric: bool) -> Result<(), TransformError> {
    let report = verify_structure(sdfg, require_symmetric);
    if report.clean() {
        Ok(())
    } else {
        Err(TransformError::ProtocolViolation(VerifyError { report }))
    }
}

/// `GPUTransformSDFG`: schedule every sequential map on the GPU and move
/// host arrays to device global memory — the paper's "trivially port to
/// CUDA" step for the Ziogas et al. benchmarks.
pub fn gpu_transform(sdfg: &mut Sdfg) {
    for a in &mut sdfg.arrays {
        if a.storage == Storage::CpuHeap {
            a.storage = Storage::Gpu;
        }
    }
    sdfg.visit_states_mut(&mut |state| {
        for op in &mut state.ops {
            if let Op::Map(m) = &mut op.op {
                if m.schedule == Schedule::Sequential {
                    m.schedule = Schedule::GpuDevice;
                }
            }
        }
    });
}

/// `MapFusion`: fuse consecutive maps with identical ranges and schedules
/// within a state into one kernel (saving a launch). Returns the number of
/// fusions performed.
///
/// Legality here is structural: identical iteration spaces, and the second
/// map's source is not the first map's destination written at shifted
/// indices — for the stencil tasklets that means *different* dst arrays
/// feeding forward are NOT fusable (a Jacobi sweep reads neighbors), so
/// only independent same-space maps fuse.
pub fn map_fusion(sdfg: &mut Sdfg) -> usize {
    let mut fused = 0;
    sdfg.visit_states_mut(&mut |state| {
        let mut i = 0;
        while i + 1 < state.ops.len() {
            let fusable = {
                let (a, b) = (&state.ops[i], &state.ops[i + 1]);
                match (&a.op, &b.op, &a.guard, &b.guard) {
                    (Op::Map(ma), Op::Map(mb), None, None) => {
                        // Already-fused maps share their predecessor's
                        // kernel; fusing across them again would double-count
                        // (and rename endlessly) — this keeps the pass
                        // idempotent.
                        let fresh = !ma.name.ends_with(".fused") && !mb.name.ends_with(".fused");
                        let same_space = ma.schedule == mb.schedule
                            && ma.range.len() == mb.range.len()
                            && ma
                                .range
                                .iter()
                                .zip(&mb.range)
                                .all(|(ra, rb)| ra.1 == rb.1 && ra.2 == rb.2);
                        let independent = !matches!(
                            (&ma.tasklet, &mb.tasklet),
                            (
                                TaskletKind::Jacobi1d { dst: d, .. },
                                TaskletKind::Jacobi1d { src: s, .. }
                            ) if d == s
                        ) && !matches!(
                            (&ma.tasklet, &mb.tasklet),
                            (
                                TaskletKind::Jacobi2d { dst: d, .. },
                                TaskletKind::Jacobi2d { src: s, .. }
                            ) if d == s
                        );
                        fresh && same_space && independent
                    }
                    _ => false,
                }
            };
            if fusable {
                // Merge by chaining the second tasklet onto the first map's
                // kernel: represented as keeping both ops but marking the
                // second as fused (no separate launch). For this IR we fold
                // the fusion by renaming — both tasklets execute in one
                // kernel, so we move op i+1 into a fused marker name.
                if let Op::Map(mb) = &mut state.ops[i + 1].op {
                    mb.name = format!("{}.fused", mb.name);
                }
                fused += 1;
                i += 2;
            } else {
                i += 1;
            }
        }
    });
    fused
}

/// `GPUPersistentKernel` (§5.1): fuse the outermost time loop into a single
/// persistent GPU kernel. Fails when the loop body contains host-only
/// operations — in particular **MPI library nodes**, which is why
/// `mpi_to_nvshmem` must run first.
pub fn gpu_persistent_kernel(sdfg: &mut Sdfg) -> Result<(), TransformError> {
    let mut found = false;
    for cf in &mut sdfg.body {
        if let Cf::Loop {
            body, persistent, ..
        } = cf
        {
            // Legality: everything inside must be device-schedulable.
            fn check(body: &[Cf]) -> Result<(), TransformError> {
                for cf in body {
                    match cf {
                        Cf::Loop { body, .. } => check(body)?,
                        Cf::State(s) => {
                            for op in &s.ops {
                                match &op.op {
                                    Op::Lib(LibNode::MpiIsend { .. })
                                    | Op::Lib(LibNode::MpiIrecv { .. })
                                    | Op::Lib(LibNode::MpiWaitall) => {
                                        return Err(TransformError::NotDeviceSchedulable(
                                            "MPI library node".into(),
                                        ))
                                    }
                                    Op::Map(m) if m.schedule == Schedule::Sequential => {
                                        return Err(TransformError::NotDeviceSchedulable(format!(
                                            "sequential map `{}`",
                                            m.name
                                        )))
                                    }
                                    _ => {}
                                }
                            }
                        }
                    }
                }
                Ok(())
            }
            check(body)?;
            // Reschedule contained maps and mark the loop persistent.
            fn reschedule(body: &mut [Cf]) {
                for cf in body {
                    match cf {
                        Cf::Loop { body, .. } => reschedule(body),
                        Cf::State(s) => {
                            for op in &mut s.ops {
                                if let Op::Map(m) = &mut op.op {
                                    m.schedule = Schedule::GpuPersistent;
                                }
                            }
                        }
                    }
                }
            }
            reschedule(body);
            *persistent = true;
            found = true;
        }
    }
    if found {
        Ok(())
    } else {
        Err(TransformError::NoLoop)
    }
}

/// `NVSHMEMArray` (§5.3.3): set the storage of every array referenced by an
/// NVSHMEM library node's remote side to `GPU_NVSHMEM`. Returns how many
/// arrays were retargeted.
pub fn nvshmem_array(sdfg: &mut Sdfg) -> usize {
    let mut remote: BTreeSet<String> = BTreeSet::new();
    sdfg.visit_states(&mut |state| {
        for op in &state.ops {
            if let Op::Lib(
                LibNode::PutmemSignal { dst, .. }
                | LibNode::PutmemSignalBlock { dst, .. }
                | LibNode::PutMapped { dst, .. }
                | LibNode::Iput { dst, .. }
                | LibNode::PutSingle { dst, .. },
            ) = &op.op
            {
                remote.insert(dst.array.clone());
            }
        }
    });
    let mut changed = 0;
    for name in remote {
        let a = sdfg.array_mut(&name);
        if a.storage != Storage::GpuNvshmem {
            a.storage = Storage::GpuNvshmem;
            changed += 1;
        }
    }
    changed
}

/// Transfer granularity for converted contiguous puts (§5.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PutGranularity {
    /// Single-thread scheduled `putmem_signal_nbi` (the paper's reported
    /// configuration).
    #[default]
    SingleThread,
    /// Block-cooperative `putmem_signal_block`.
    Block,
}

/// The MPI → NVSHMEM conversion (§5.3, Listing 5.2): within each state,
/// pair every `Isend(tag)` with the `Irecv(tag)` describing where the data
/// lands on the destination PE, then
///
/// * contiguous sends become `PutmemSignal` (put + completion signal),
/// * strided sends become `Iput` followed by generated `Quiet` +
///   `SignalOp` (no combined signaling variant exists, §5.3.1),
/// * receives become `SignalWait(tag, t)`,
/// * `Waitall` is dropped in favor of the flag-based synchronization.
///
/// `loop_var` is the enclosing time-loop variable used as the signal value.
pub fn mpi_to_nvshmem(sdfg: &mut Sdfg) -> Result<(), TransformError> {
    mpi_to_nvshmem_with(sdfg, PutGranularity::SingleThread)
}

/// [`mpi_to_nvshmem`] with an explicit transfer granularity for contiguous
/// messages.
pub fn mpi_to_nvshmem_with(
    sdfg: &mut Sdfg,
    granularity: PutGranularity,
) -> Result<(), TransformError> {
    // Find the time-loop variable (outermost loop).
    let loop_var = sdfg
        .body
        .iter()
        .find_map(|cf| match cf {
            Cf::Loop { var, .. } => Some(var.clone()),
            _ => None,
        })
        .ok_or(TransformError::NoLoop)?;
    let mut error = None;
    sdfg.visit_states_mut(&mut |state| {
        if error.is_some() {
            return;
        }
        let has_mpi = state.ops.iter().any(|op| {
            matches!(
                op.op,
                Op::Lib(LibNode::MpiIsend { .. })
                    | Op::Lib(LibNode::MpiIrecv { .. })
                    | Op::Lib(LibNode::MpiWaitall)
            )
        });
        if !has_mpi {
            return;
        }
        // Collect receive subsets by tag (the destination-side landing spot).
        let mut recv_by_tag: Vec<(u32, DataRef)> = Vec::new();
        for op in &state.ops {
            if let Op::Lib(LibNode::MpiIrecv { buf, tag, .. }) = &op.op {
                recv_by_tag.push((*tag, buf.clone()));
            }
        }
        let mut new_ops = Vec::with_capacity(state.ops.len());
        for op in state.ops.drain(..) {
            let guard = op.guard.clone();
            match op.op {
                Op::Lib(LibNode::MpiIsend { buf, dest, tag }) => {
                    let Some((_, recv_buf)) = recv_by_tag.iter().find(|(t, _)| *t == tag) else {
                        error = Some(TransformError::UnmatchedMessage(tag));
                        return;
                    };
                    if buf.is_structurally_contiguous() {
                        let op = match granularity {
                            PutGranularity::SingleThread => LibNode::PutmemSignal {
                                dst: recv_buf.clone(),
                                src: buf,
                                sig: tag,
                                val: Expr::s(&loop_var),
                                pe: dest,
                            },
                            PutGranularity::Block => LibNode::PutmemSignalBlock {
                                dst: recv_buf.clone(),
                                src: buf,
                                sig: tag,
                                val: Expr::s(&loop_var),
                                pe: dest,
                            },
                        };
                        new_ops.push(GuardedOp {
                            guard,
                            op: Op::Lib(op),
                        });
                    } else {
                        // iput + quiet + manual signal (§5.3.1).
                        new_ops.push(GuardedOp {
                            guard: guard.clone(),
                            op: Op::Lib(LibNode::Iput {
                                dst: recv_buf.clone(),
                                src: buf,
                                pe: dest.clone(),
                            }),
                        });
                        new_ops.push(GuardedOp {
                            guard: guard.clone(),
                            op: Op::Lib(LibNode::Quiet),
                        });
                        new_ops.push(GuardedOp {
                            guard,
                            op: Op::Lib(LibNode::SignalOp {
                                sig: tag,
                                val: Expr::s(&loop_var),
                                pe: dest,
                            }),
                        });
                    }
                }
                Op::Lib(LibNode::MpiIrecv { tag, .. }) => {
                    new_ops.push(GuardedOp {
                        guard,
                        op: Op::Lib(LibNode::SignalWait {
                            sig: tag,
                            val: Expr::s(&loop_var),
                        }),
                    });
                }
                Op::Lib(LibNode::MpiWaitall) => { /* dropped */ }
                other => new_ops.push(GuardedOp { guard, op: other }),
            }
        }
        state.ops = new_ops;
    });
    match error {
        Some(e) => Err(e),
        None => {
            // Storage is not retargeted here (NVSHMEMArray does that), so
            // only the signal balance is checkable at this point.
            structural_gate(sdfg, false)
        }
    }
}

/// Convenience pipeline: the full baseline → CPU-Free conversion the paper
/// applies (GPUTransform → MPIToNVSHMEM → NVSHMEMArray →
/// GPUPersistentKernel).
pub fn to_cpu_free(sdfg: &mut Sdfg) -> Result<(), TransformError> {
    gpu_transform(sdfg);
    mpi_to_nvshmem(sdfg)?;
    nvshmem_array(sdfg);
    gpu_persistent_kernel(sdfg)?;
    structural_gate(sdfg, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{Jacobi1dSetup, Jacobi2dSetup};

    #[test]
    fn gpu_transform_moves_maps_and_arrays() {
        let mut s = Jacobi1dSetup::new(8, 1, 2).sdfg;
        gpu_transform(&mut s);
        assert!(s.arrays.iter().all(|a| a.storage == Storage::Gpu));
        s.visit_states(&mut |st| {
            for op in &st.ops {
                if let Op::Map(m) = &op.op {
                    assert_eq!(m.schedule, Schedule::GpuDevice);
                }
            }
        });
    }

    #[test]
    fn persistent_rejects_mpi_nodes() {
        let mut s = Jacobi1dSetup::new(8, 1, 2).sdfg;
        gpu_transform(&mut s);
        let err = gpu_persistent_kernel(&mut s).unwrap_err();
        assert!(matches!(err, TransformError::NotDeviceSchedulable(_)));
    }

    #[test]
    fn persistent_rejects_sequential_maps() {
        let mut s = Jacobi1dSetup::new(8, 1, 2).sdfg;
        mpi_to_nvshmem(&mut s).unwrap();
        let err = gpu_persistent_kernel(&mut s).unwrap_err();
        assert!(matches!(err, TransformError::NotDeviceSchedulable(_)));
    }

    #[test]
    fn conversion_replaces_all_mpi_nodes() {
        let mut s = Jacobi1dSetup::new(8, 1, 2).sdfg;
        gpu_transform(&mut s);
        mpi_to_nvshmem(&mut s).unwrap();
        let mut mpi = 0;
        let mut puts = 0;
        let mut waits = 0;
        s.visit_states(&mut |st| {
            for op in &st.ops {
                match &op.op {
                    Op::Lib(LibNode::MpiIsend { .. })
                    | Op::Lib(LibNode::MpiIrecv { .. })
                    | Op::Lib(LibNode::MpiWaitall) => mpi += 1,
                    Op::Lib(LibNode::PutmemSignal { .. }) => puts += 1,
                    Op::Lib(LibNode::SignalWait { .. }) => waits += 1,
                    _ => {}
                }
            }
        });
        assert_eq!(mpi, 0);
        assert_eq!(puts, 4, "2 sends per exchange x 2 exchanges");
        assert_eq!(waits, 4);
    }

    #[test]
    fn strided_sends_become_iput_quiet_signal() {
        let mut s = Jacobi2dSetup::new(4, 4, 1, 4).sdfg;
        gpu_transform(&mut s);
        mpi_to_nvshmem(&mut s).unwrap();
        let (mut iputs, mut quiets, mut sigs, mut puts) = (0, 0, 0, 0);
        s.visit_states(&mut |st| {
            for op in &st.ops {
                match &op.op {
                    Op::Lib(LibNode::Iput { .. }) => iputs += 1,
                    Op::Lib(LibNode::Quiet) => quiets += 1,
                    Op::Lib(LibNode::SignalOp { .. }) => sigs += 1,
                    Op::Lib(LibNode::PutmemSignal { .. }) => puts += 1,
                    _ => {}
                }
            }
        });
        assert_eq!(iputs, 4, "east+west per exchange x 2");
        assert_eq!(quiets, 4);
        assert_eq!(sigs, 4);
        assert_eq!(puts, 4, "north+south per exchange x 2");
    }

    #[test]
    fn nvshmem_array_marks_remote_targets() {
        let mut s = Jacobi1dSetup::new(8, 1, 2).sdfg;
        gpu_transform(&mut s);
        mpi_to_nvshmem(&mut s).unwrap();
        let changed = nvshmem_array(&mut s);
        assert_eq!(changed, 2, "A and B are both remote-written");
        assert_eq!(s.array("A").storage, Storage::GpuNvshmem);
    }

    #[test]
    fn full_pipeline_marks_loop_persistent() {
        let mut s = Jacobi2dSetup::new(4, 4, 2, 4).sdfg;
        to_cpu_free(&mut s).unwrap();
        let Cf::Loop { persistent, .. } = &s.body[0] else {
            panic!("expected loop")
        };
        assert!(*persistent);
        s.visit_states(&mut |st| {
            for op in &st.ops {
                if let Op::Map(m) = &op.op {
                    assert_eq!(m.schedule, Schedule::GpuPersistent);
                }
            }
        });
    }

    #[test]
    fn map_fusion_requires_independence() {
        // Jacobi's B=f(A); A=f(B) chains are NOT fusable (dst feeds src).
        let mut s = Jacobi1dSetup::new(8, 1, 2).sdfg;
        let fused = map_fusion(&mut s);
        assert_eq!(fused, 0, "dependent sweeps must not fuse");
    }
}
