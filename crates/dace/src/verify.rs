//! The static protocol verifier: compile-time CPU-Free conformance checks
//! over an [`Sdfg`], sharing diagnostic vocabulary with the dynamic
//! happens-before checker (`sim_des::DiagKind`).
//!
//! Where the dynamic checker (PR 3) reports only the races and lost signals
//! the *chosen* schedule happens to expose, [`verify_sdfg`] reasons over the
//! symbolic communication graph of [`crate::analysis::CommGraph`] and proves
//! conformance for **all** schedules:
//!
//! * **Signal ↔ wait balance** — every `signal_wait` must have a producer
//!   targeting its PE whose counter value reaches the waited threshold in
//!   the same or an earlier iteration phase ([`DiagKind::UnmatchedSignalWait`],
//!   with [`DiagKind::LostSignal`] when no schedule can satisfy the wait).
//! * **Nbi source reuse** — a write to the source cells of a non-blocking
//!   put is only safe after a `quiet` or an acknowledging signal round trip
//!   proves remote completion ([`DiagKind::NbiSourceReuse`]). Tracked by a
//!   token-propagation fixpoint mirroring the dynamic checker's vector
//!   clocks: each nbi put mints a token, waits absorb the intersection of
//!   their satisfying producers' stamps, and `quiet` absorbs the issuing
//!   PE's own outstanding tokens.
//! * **Halo coverage** — incoming puts must cover the remote-fed cells each
//!   consumer tasklet reads; a put whose aligned run only partially covers
//!   a contiguous halo region is flagged ([`DiagKind::HaloCoverageGap`]).
//! * **Storage classes** — puts must target `GpuNvshmem` (symmetric-heap)
//!   arrays ([`DiagKind::StorageClassViolation`]).
//! * **Wait cycles** — a cross-PE cycle of sole-producer waits deadlocks on
//!   every schedule ([`DiagKind::WaitCycle`]).
//! * **Iteration throttling** — rank-adjacent partners must mutually bound
//!   each other's iteration counters ([`DiagKind::IterationDivergence`]).

use crate::analysis::{CommGraph, Ev, IntervalSet};
use crate::expr::Bindings;
use crate::ir::{LibNode, Op, Sdfg, Storage};
use sim_des::DiagKind;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Maximum fixpoint passes for the token-propagation nbi analysis. The
/// stamps are monotone and bounded by the token universe, so convergence is
/// guaranteed; real protocols settle in two or three passes.
const MAX_FIXPOINT_PASSES: usize = 10;

/// One structured static diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticDiag {
    /// Shared vocabulary with the dynamic checker.
    pub kind: DiagKind,
    /// Primary PE (waiter / writer / consumer / issuer), when rank-specific.
    pub pe: Option<usize>,
    /// The other endpoint (producer / target), when known.
    pub peer: Option<usize>,
    /// The array or flag the diagnostic is about (e.g. `A` or `flag #3`).
    pub subject: String,
    /// Human-readable description naming both endpoints.
    pub message: String,
}

impl fmt::Display for StaticDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.message)
    }
}

/// The result of statically verifying one SDFG instantiation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Name of the verified program.
    pub program: String,
    /// Number of rank instantiations checked.
    pub n_pes: usize,
    /// All diagnostics, in check order.
    pub diags: Vec<StaticDiag>,
}

impl VerifyReport {
    /// `true` when no diagnostic was produced.
    pub fn clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// The diagnostics of one kind.
    pub fn of_kind(&self, kind: DiagKind) -> Vec<&StaticDiag> {
        self.diags.iter().filter(|d| d.kind == kind).collect()
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "static verification of `{}` over {} PEs: {}",
            self.program,
            self.n_pes,
            if self.clean() {
                "clean".to_string()
            } else {
                format!("{} diagnostic(s)", self.diags.len())
            }
        )?;
        for d in &self.diags {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// A failed verification, embeddable in error chains ([`std::error::Error`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The full report that caused the failure.
    pub report: VerifyReport,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "static protocol verification failed for `{}` ({} diagnostic(s)); first: {}",
            self.report.program,
            self.report.diags.len(),
            self.report
                .diags
                .first()
                .map(|d| d.to_string())
                .unwrap_or_default()
        )
    }
}

impl std::error::Error for VerifyError {}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Statically verify `sdfg` instantiated over `n_pes` ranks under the given
/// user symbol bindings. Runs every check family and returns the combined
/// report; [`VerifyReport::clean`] gates lowering.
pub fn verify_sdfg(sdfg: &Sdfg, n_pes: usize, user: &Bindings) -> VerifyReport {
    let graph = CommGraph::build(sdfg, n_pes, user);
    let mut v = Verifier::new(sdfg, &graph);
    v.check_storage_classes();
    v.check_signal_balance();
    v.check_mpi_pairing();
    v.check_wait_cycles();
    v.check_nbi_source_reuse();
    v.check_halo_coverage();
    v.check_iteration_throttle();
    VerifyReport {
        program: sdfg.name.clone(),
        n_pes,
        diags: v.diags,
    }
}

/// Rank-independent structural conformance, used as the post-transform gate
/// where no concrete PE count is available: every waited signal must have a
/// producing node, every produced signal a wait, and (when
/// `require_symmetric`) every put must target a `GpuNvshmem` array.
pub fn verify_structure(sdfg: &Sdfg, require_symmetric: bool) -> VerifyReport {
    let mut waited: BTreeSet<u32> = BTreeSet::new();
    let mut produced: BTreeSet<u32> = BTreeSet::new();
    let mut put_targets: Vec<(u32, String)> = Vec::new();
    sdfg.visit_states(&mut |s| {
        for gop in &s.ops {
            if let Op::Lib(lib) = &gop.op {
                match lib {
                    LibNode::PutmemSignal { dst, sig, .. }
                    | LibNode::PutmemSignalBlock { dst, sig, .. } => {
                        produced.insert(*sig);
                        put_targets.push((*sig, dst.array.clone()));
                    }
                    LibNode::SignalOp { sig, .. } => {
                        produced.insert(*sig);
                    }
                    LibNode::SignalWait { sig, .. } => {
                        waited.insert(*sig);
                    }
                    LibNode::Iput { dst, .. }
                    | LibNode::PutSingle { dst, .. }
                    | LibNode::PutMapped { dst, .. } => {
                        put_targets.push((u32::MAX, dst.array.clone()));
                    }
                    _ => {}
                }
            }
        }
    });
    let mut diags = Vec::new();
    for sig in waited.difference(&produced) {
        diags.push(StaticDiag {
            kind: DiagKind::UnmatchedSignalWait,
            pe: None,
            peer: None,
            subject: format!("flag #{sig}"),
            message: format!(
                "signal_wait on flag #{sig} has no producing put-with-signal or signal_op \
                 anywhere in `{}`",
                sdfg.name
            ),
        });
    }
    for sig in produced.difference(&waited) {
        diags.push(StaticDiag {
            kind: DiagKind::UnmatchedSignalWait,
            pe: None,
            peer: None,
            subject: format!("flag #{sig}"),
            message: format!(
                "flag #{sig} is set by a put or signal_op but no PE ever waits on it in `{}`",
                sdfg.name
            ),
        });
    }
    if require_symmetric {
        let mut seen = BTreeSet::new();
        for (_, array) in &put_targets {
            if sdfg.array(array).storage != Storage::GpuNvshmem && seen.insert(array.clone()) {
                diags.push(StaticDiag {
                    kind: DiagKind::StorageClassViolation,
                    pe: None,
                    peer: None,
                    subject: array.clone(),
                    message: format!(
                        "put targets `{array}` whose storage class is {:?}, not the GpuNvshmem \
                         symmetric heap",
                        sdfg.array(array).storage
                    ),
                });
            }
        }
    }
    VerifyReport {
        program: sdfg.name.clone(),
        n_pes: 0,
        diags,
    }
}

// ---------------------------------------------------------------------------
// Internal: flattened producer / wait views over the comm graph
// ---------------------------------------------------------------------------

/// A signal producer: a put-with-signal or a bare `signal_op`.
struct Prod {
    pe: usize,
    idx: usize,
    phase: usize,
    target: usize,
    sig: u32,
    val: i64,
    /// Token of the carrying nbi put, if this producer is a put.
    token: Option<usize>,
}

struct WaitInfo {
    pe: usize,
    idx: usize,
    phase: usize,
    sig: u32,
    val: i64,
}

/// An outstanding (un-quiesced) nbi put issued by the PE being walked.
struct Outstanding {
    token: usize,
    dst_pe: usize,
    src_array: String,
    src_cells: IntervalSet,
}

struct Verifier<'a> {
    sdfg: &'a Sdfg,
    g: &'a CommGraph,
    prods: Vec<Prod>,
    waits: Vec<WaitInfo>,
    /// `(pe, trace idx)` of a wait → indices into `prods` that satisfy it.
    sat: BTreeMap<(usize, usize), Vec<usize>>,
    /// `(pe, trace idx)` of an nbi put → its token.
    tokens: BTreeMap<(usize, usize), usize>,
    /// `(pe, trace idx)` of a producer → its index in `prods`.
    prod_ids: BTreeMap<(usize, usize), usize>,
    diags: Vec<StaticDiag>,
    dedup: BTreeSet<String>,
}

impl<'a> Verifier<'a> {
    fn new(sdfg: &'a Sdfg, g: &'a CommGraph) -> Verifier<'a> {
        let mut prods = Vec::new();
        let mut waits = Vec::new();
        let mut tokens = BTreeMap::new();
        let mut prod_ids = BTreeMap::new();
        let mut next_token = 0usize;
        for (pe, trace) in g.traces.iter().enumerate() {
            for (idx, tev) in trace.evs.iter().enumerate() {
                match &tev.ev {
                    Ev::Put {
                        dst_pe, sig, nbi, ..
                    } => {
                        let token = nbi.then(|| {
                            let t = next_token;
                            next_token += 1;
                            tokens.insert((pe, idx), t);
                            t
                        });
                        if let Some((s, v)) = sig {
                            prod_ids.insert((pe, idx), prods.len());
                            prods.push(Prod {
                                pe,
                                idx,
                                phase: tev.phase,
                                target: *dst_pe,
                                sig: *s,
                                val: *v,
                                token,
                            });
                        }
                    }
                    Ev::Signal { dst_pe, sig, val } => {
                        prod_ids.insert((pe, idx), prods.len());
                        prods.push(Prod {
                            pe,
                            idx,
                            phase: tev.phase,
                            target: *dst_pe,
                            sig: *sig,
                            val: *val,
                            token: None,
                        });
                    }
                    Ev::Wait { sig, val } => waits.push(WaitInfo {
                        pe,
                        idx,
                        phase: tev.phase,
                        sig: *sig,
                        val: *val,
                    }),
                    _ => {}
                }
            }
        }
        let mut sat = BTreeMap::new();
        for w in &waits {
            let s: Vec<usize> = prods
                .iter()
                .enumerate()
                .filter(|(_, p)| {
                    p.target == w.pe && p.sig == w.sig && p.phase <= w.phase && p.val >= w.val
                })
                .map(|(i, _)| i)
                .collect();
            sat.insert((w.pe, w.idx), s);
        }
        Verifier {
            sdfg,
            g,
            prods,
            waits,
            sat,
            tokens,
            prod_ids,
            diags: Vec::new(),
            dedup: BTreeSet::new(),
        }
    }

    fn diag(
        &mut self,
        key: String,
        kind: DiagKind,
        pe: Option<usize>,
        peer: Option<usize>,
        subject: String,
        message: String,
    ) {
        if self.dedup.insert(key) {
            self.diags.push(StaticDiag {
                kind,
                pe,
                peer,
                subject,
                message,
            });
        }
    }

    // -- check 1: storage classes ------------------------------------------

    fn check_storage_classes(&mut self) {
        let mut found = Vec::new();
        for (pe, trace) in self.g.traces.iter().enumerate() {
            for tev in &trace.evs {
                if let Ev::Put {
                    dst_pe,
                    array,
                    label,
                    ..
                } = &tev.ev
                {
                    let storage = self.sdfg.array(array).storage;
                    if storage != Storage::GpuNvshmem {
                        found.push((pe, *dst_pe, array.clone(), *label, storage));
                    }
                }
            }
        }
        for (pe, dst_pe, array, label, storage) in found {
            self.diag(
                format!("storage:{pe}:{dst_pe}:{array}"),
                DiagKind::StorageClassViolation,
                Some(pe),
                Some(dst_pe),
                array.clone(),
                format!(
                    "{label} from pe{pe} targets `{array}` on pe{dst_pe}, whose storage class \
                     is {storage:?} — the remote side has no symmetric allocation"
                ),
            );
        }
    }

    // -- check 2 + 3: signal ↔ wait balance --------------------------------

    fn check_signal_balance(&mut self) {
        // Waits without a satisfying producer.
        let wait_views: Vec<(usize, usize, usize, u32, i64)> = self
            .waits
            .iter()
            .map(|w| (w.pe, w.idx, w.phase, w.sig, w.val))
            .collect();
        for (pe, idx, phase, sig, val) in wait_views {
            if !self.sat[&(pe, idx)].is_empty() {
                continue;
            }
            let all_to: Vec<&Prod> = self
                .prods
                .iter()
                .filter(|p| p.target == pe && p.sig == sig)
                .collect();
            if all_to.is_empty() {
                let subject = format!("flag #{sig}");
                self.diag(
                    format!("wait-none:{pe}:{sig}"),
                    DiagKind::UnmatchedSignalWait,
                    Some(pe),
                    None,
                    subject.clone(),
                    format!(
                        "signal_wait on flag #{sig} (>= {val}) at pe{pe} has no producing \
                         put-with-signal or signal_op targeting pe{pe}"
                    ),
                );
                self.diag(
                    format!("wait-none-lost:{pe}:{sig}"),
                    DiagKind::LostSignal,
                    Some(pe),
                    None,
                    subject,
                    format!(
                        "unsatisfied signal_wait: pe{pe} blocks forever on flag #{sig} >= {val} \
                         — no peer ever sets that flag"
                    ),
                );
                continue;
            }
            let max_val = all_to.iter().map(|p| p.val).max().unwrap();
            let peer = all_to
                .iter()
                .max_by_key(|p| p.val)
                .map(|p| p.pe)
                .unwrap_or(pe);
            if max_val < val {
                let subject = format!("flag #{sig}");
                self.diag(
                    format!("wait-low:{pe}:{sig}"),
                    DiagKind::UnmatchedSignalWait,
                    Some(pe),
                    Some(peer),
                    subject.clone(),
                    format!(
                        "signal_wait on flag #{sig} >= {val} at pe{pe} can never be satisfied: \
                         producers (e.g. from pe{peer}) only ever reach value {max_val}"
                    ),
                );
                self.diag(
                    format!("wait-low-lost:{pe}:{sig}"),
                    DiagKind::LostSignal,
                    Some(pe),
                    Some(peer),
                    subject,
                    format!(
                        "unsatisfied signal_wait: pe{pe} blocks forever on flag #{sig} >= {val} \
                         — expected matching put-with-signal from pe{peer} never reaches it"
                    ),
                );
            } else {
                self.diag(
                    format!("wait-skew:{pe}:{sig}"),
                    DiagKind::UnmatchedSignalWait,
                    Some(pe),
                    Some(peer),
                    format!("flag #{sig}"),
                    format!(
                        "signal_wait on flag #{sig} >= {val} at pe{pe} in iteration phase \
                         {phase} is only satisfied by producers from pe{peer} in later \
                         iterations — signal counter skew between put and wait"
                    ),
                );
            }
        }
        // Producers whose target never waits on the flag.
        let mut orphans = Vec::new();
        for p in &self.prods {
            let target_waits = self
                .waits
                .iter()
                .any(|w| w.pe == p.target && w.sig == p.sig);
            if !target_waits {
                orphans.push((p.pe, p.target, p.sig));
            }
        }
        for (from, to, sig) in orphans {
            self.diag(
                format!("orphan:{from}:{to}:{sig}"),
                DiagKind::UnmatchedSignalWait,
                Some(to),
                Some(from),
                format!("flag #{sig}"),
                format!(
                    "put-with-signal from pe{from} sets flag #{sig} on pe{to}, but pe{to} \
                     never waits on that flag"
                ),
            );
        }
    }

    // -- check 4: MPI two-sided pairing ------------------------------------

    fn check_mpi_pairing(&mut self) {
        let mut sends: Vec<(usize, usize, u32, usize, usize)> = Vec::new(); // from,to,tag,count,phase
        let mut recvs: Vec<(usize, usize, u32, usize, usize)> = Vec::new(); // at,from,tag,count,phase
        for (pe, trace) in self.g.traces.iter().enumerate() {
            for tev in &trace.evs {
                match &tev.ev {
                    Ev::Send { dst_pe, tag, count } => {
                        sends.push((pe, *dst_pe, *tag, *count, tev.phase));
                    }
                    Ev::Recv { src_pe, tag, count } => {
                        recvs.push((pe, *src_pe, *tag, *count, tev.phase));
                    }
                    _ => {}
                }
            }
        }
        for &(at, from, tag, rcount, phase) in &recvs {
            let same_phase: Vec<_> = sends
                .iter()
                .filter(|&&(f, t, g, _, p)| f == from && t == at && g == tag && p == phase)
                .collect();
            if let Some(&&(_, _, _, scount, _)) = same_phase.first() {
                if scount != rcount {
                    self.diag(
                        format!("mpi-count:{from}:{at}:{tag}"),
                        DiagKind::HaloCoverageGap,
                        Some(at),
                        Some(from),
                        format!("tag {tag}"),
                        format!(
                            "message size mismatch on tag {tag}: Isend from pe{from} carries \
                             {scount} cells but the Irecv at pe{at} expects {rcount}"
                        ),
                    );
                }
            } else if sends
                .iter()
                .any(|&(f, t, g, _, _)| f == from && t == at && g == tag)
            {
                self.diag(
                    format!("mpi-skew:{from}:{at}:{tag}"),
                    DiagKind::UnmatchedSignalWait,
                    Some(at),
                    Some(from),
                    format!("tag {tag}"),
                    format!(
                        "Irecv at pe{at} on tag {tag} only matches Isends from pe{from} in \
                         other iteration phases — message skew"
                    ),
                );
            } else {
                self.diag(
                    format!("mpi-none:{from}:{at}:{tag}"),
                    DiagKind::UnmatchedSignalWait,
                    Some(at),
                    Some(from),
                    format!("tag {tag}"),
                    format!(
                        "Irecv at pe{at} expects a message from pe{from} on tag {tag}, but \
                         pe{from} never sends one"
                    ),
                );
                self.diag(
                    format!("mpi-none-lost:{from}:{at}:{tag}"),
                    DiagKind::LostSignal,
                    Some(at),
                    Some(from),
                    format!("tag {tag}"),
                    format!(
                        "unsatisfied receive: pe{at} blocks forever waiting for tag {tag} from \
                         pe{from}"
                    ),
                );
            }
        }
        for &(from, to, tag, _, _) in &sends {
            if !recvs
                .iter()
                .any(|&(at, f, g, _, _)| at == to && f == from && g == tag)
            {
                self.diag(
                    format!("mpi-orphan:{from}:{to}:{tag}"),
                    DiagKind::UnmatchedSignalWait,
                    Some(to),
                    Some(from),
                    format!("tag {tag}"),
                    format!(
                        "Isend from pe{from} to pe{to} on tag {tag} has no matching Irecv at \
                         pe{to}"
                    ),
                );
            }
        }
    }

    // -- check 5: cross-PE wait cycles -------------------------------------

    fn check_wait_cycles(&mut self) {
        let n_phases = self.g.loop_value.len();
        for phase in 0..n_phases {
            // Nodes: waits in this phase whose satisfying producers are all
            // in this phase (cross-phase satisfaction breaks any cycle).
            let nodes: Vec<usize> = (0..self.waits.len())
                .filter(|&wi| {
                    let w = &self.waits[wi];
                    if w.phase != phase {
                        return false;
                    }
                    let s = &self.sat[&(w.pe, w.idx)];
                    !s.is_empty() && s.iter().all(|&p| self.prods[p].phase == phase)
                })
                .collect();
            if nodes.is_empty() {
                continue;
            }
            // Edges: W depends on every wait that sits *before* W's sole
            // producer in the producer PE's trace.
            let mut edges: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for &wi in &nodes {
                let w = &self.waits[wi];
                let s = &self.sat[&(w.pe, w.idx)];
                if s.len() != 1 {
                    continue;
                }
                let p = &self.prods[s[0]];
                let deps: Vec<usize> = (0..self.waits.len())
                    .filter(|&oi| {
                        let o = &self.waits[oi];
                        o.pe == p.pe && o.phase == phase && o.idx < p.idx
                    })
                    .collect();
                edges.insert(wi, deps);
            }
            if let Some(cycle) = find_cycle(&edges) {
                let pes: BTreeSet<usize> = cycle.iter().map(|&wi| self.waits[wi].pe).collect();
                let pe_list = pes
                    .iter()
                    .map(|p| format!("pe{p}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                let first = cycle[0];
                let (first_pe, first_sig) = (self.waits[first].pe, self.waits[first].sig);
                self.diag(
                    format!("cycle:{phase}:{pes:?}"),
                    DiagKind::WaitCycle,
                    Some(first_pe),
                    pes.iter().find(|&&p| p != first_pe).copied(),
                    format!("flag #{first_sig}"),
                    format!(
                        "cyclic signal_wait dependency across {pe_list} in iteration phase \
                         {phase}: every wait's sole producer sits behind the next wait — \
                         guaranteed deadlock on all schedules"
                    ),
                );
                for &wi in &cycle {
                    let (wpe, wsig, wval) = {
                        let w = &self.waits[wi];
                        (w.pe, w.sig, w.val)
                    };
                    self.diag(
                        format!("cycle-lost:{wpe}:{wsig}"),
                        DiagKind::LostSignal,
                        Some(wpe),
                        None,
                        format!("flag #{wsig}"),
                        format!(
                            "unsatisfied signal_wait: pe{wpe} blocks on flag #{wsig} >= {wval} \
                             inside a cross-PE wait cycle"
                        ),
                    );
                }
            }
        }
    }

    // -- check 6: nbi source reuse (token-propagation fixpoint) ------------

    fn check_nbi_source_reuse(&mut self) {
        let n_prods = self.prods.len();
        let mut stamps: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n_prods];
        for _ in 0..MAX_FIXPOINT_PASSES {
            let mut changed = false;
            for (pe, trace) in self.g.traces.iter().enumerate() {
                let mut absorbed: BTreeSet<usize> = BTreeSet::new();
                let mut outstanding: Vec<usize> = Vec::new(); // tokens only
                for (idx, tev) in trace.evs.iter().enumerate() {
                    match &tev.ev {
                        Ev::Put { nbi, sig, .. } => {
                            if sig.is_some() {
                                let pid = self.prod_ids[&(pe, idx)];
                                if stamps[pid] != absorbed {
                                    stamps[pid] = absorbed.clone();
                                    changed = true;
                                }
                            }
                            if *nbi {
                                outstanding.push(self.tokens[&(pe, idx)]);
                            }
                        }
                        Ev::Signal { .. } => {
                            let pid = self.prod_ids[&(pe, idx)];
                            if stamps[pid] != absorbed {
                                stamps[pid] = absorbed.clone();
                                changed = true;
                            }
                        }
                        Ev::Quiet => absorbed.extend(outstanding.drain(..)),
                        Ev::Wait { .. } => {
                            self.absorb_at_wait(pe, idx, &stamps, &mut absorbed);
                        }
                        _ => {}
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Final pass: report writes overlapping un-acknowledged put sources.
        let mut found = Vec::new();
        for (pe, trace) in self.g.traces.iter().enumerate() {
            let mut absorbed: BTreeSet<usize> = BTreeSet::new();
            let mut outstanding: Vec<Outstanding> = Vec::new();
            for (idx, tev) in trace.evs.iter().enumerate() {
                match &tev.ev {
                    Ev::Put {
                        dst_pe,
                        src_array,
                        src_cells,
                        nbi: true,
                        ..
                    } => {
                        outstanding.push(Outstanding {
                            token: self.tokens[&(pe, idx)],
                            dst_pe: *dst_pe,
                            src_array: src_array.clone(),
                            src_cells: src_cells.clone(),
                        });
                    }
                    Ev::Quiet => {
                        for o in outstanding.drain(..) {
                            absorbed.insert(o.token);
                        }
                    }
                    Ev::Wait { .. } => {
                        self.absorb_at_wait(pe, idx, &stamps, &mut absorbed);
                    }
                    Ev::Write {
                        array,
                        cells,
                        label,
                    } => {
                        for o in &outstanding {
                            if o.src_array == *array
                                && !absorbed.contains(&o.token)
                                && cells.overlaps(&o.src_cells)
                            {
                                found.push((
                                    pe,
                                    o.dst_pe,
                                    array.clone(),
                                    label.clone(),
                                    cells.intervals().first().copied().unwrap_or((0, 0)),
                                ));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        for (pe, dst_pe, array, label, (lo, hi)) in found {
            self.diag(
                format!("nbi:{pe}:{dst_pe}:{array}"),
                DiagKind::NbiSourceReuse,
                Some(pe),
                Some(dst_pe),
                array.clone(),
                format!(
                    "`{label}` at pe{pe} overwrites cells [{lo}..{hi}) of `{array}` while a \
                     non-blocking put to pe{dst_pe} may still be reading them — no quiet or \
                     acknowledging signal round trip orders the reuse"
                ),
            );
        }
    }

    /// Absorb the intersection of the satisfying producers' stamps (plus
    /// their carrying tokens) at a wait, mirroring the dynamic checker's
    /// clock-join on `signal_wait` completion.
    fn absorb_at_wait(
        &self,
        pe: usize,
        idx: usize,
        stamps: &[BTreeSet<usize>],
        absorbed: &mut BTreeSet<usize>,
    ) {
        let sat = &self.sat[&(pe, idx)];
        if sat.is_empty() {
            return;
        }
        let mut acc: Option<BTreeSet<usize>> = None;
        for &pid in sat {
            let mut s = stamps[pid].clone();
            if let Some(tok) = self.prods[pid].token {
                s.insert(tok);
            }
            acc = Some(match acc {
                None => s,
                Some(a) => a.intersection(&s).copied().collect(),
            });
        }
        if let Some(a) = acc {
            absorbed.extend(a);
        }
    }

    // -- check 7: halo coverage --------------------------------------------

    fn check_halo_coverage(&mut self) {
        // Per (consumer pe, array): union of reads and of local writes.
        let mut reads: BTreeMap<(usize, String), IntervalSet> = BTreeMap::new();
        let mut writes: BTreeMap<(usize, String), IntervalSet> = BTreeMap::new();
        // Incoming puts per (dst pe, array), deduped across phases.
        type PutKey = (usize, usize, usize, usize); // src, offset, count, stride
        let mut puts: BTreeMap<(usize, String), BTreeSet<PutKey>> = BTreeMap::new();
        for (pe, trace) in self.g.traces.iter().enumerate() {
            for tev in &trace.evs {
                match &tev.ev {
                    Ev::Read { array, cells, .. } => reads
                        .entry((pe, array.clone()))
                        .or_default()
                        .union_with(cells),
                    Ev::Write { array, cells, .. } => writes
                        .entry((pe, array.clone()))
                        .or_default()
                        .union_with(cells),
                    Ev::Put {
                        dst_pe, array, dst, ..
                    } => {
                        puts.entry((*dst_pe, array.clone())).or_default().insert((
                            pe,
                            dst.offset,
                            dst.count,
                            dst.stride.max(1),
                        ));
                    }
                    _ => {}
                }
            }
        }
        let mut found = Vec::new();
        for ((pe, array), rd) in &reads {
            let halo = match writes.get(&(*pe, array.clone())) {
                Some(w) => rd.minus(w),
                None => rd.clone(),
            };
            if halo.is_empty() {
                continue;
            }
            let Some(incoming) = puts.get(&(*pe, array.clone())) else {
                // No puts feed this array: all halo cells are domain
                // boundary (initial condition), nothing to check.
                continue;
            };
            // First: which halo cells does some put fully cover?
            let mut covered = IntervalSet::new();
            for &(_, off, count, stride) in incoming {
                let hit: Vec<(usize, usize)> = halo
                    .cells()
                    .filter_map(|c| {
                        let d = c as i64 - off as i64;
                        (d % stride as i64 == 0 && (0..count as i64).contains(&(d / stride as i64)))
                            .then_some((c, c + 1))
                    })
                    .collect();
                covered.union_with(&IntervalSet::from_intervals(hit));
            }
            // Second: flag puts whose aligned run straddles the put window —
            // a contiguous halo region only partially covered. Runs that do
            // not meet any window are boundary cells, not gaps.
            for &(src, off, count, stride) in incoming {
                let mut ks: Vec<(i64, usize)> = halo
                    .cells()
                    .filter_map(|c| {
                        let d = c as i64 - off as i64;
                        (d % stride as i64 == 0).then(|| (d / stride as i64, c))
                    })
                    .collect();
                ks.sort_unstable();
                let mut run: Vec<(i64, usize)> = Vec::new();
                let flush = |run: &mut Vec<(i64, usize)>, found: &mut Vec<_>| {
                    if run.is_empty() {
                        return;
                    }
                    let (klo, khi) = (run[0].0, run[run.len() - 1].0);
                    let meets = klo < count as i64 && khi >= 0;
                    let inside = klo >= 0 && khi < count as i64;
                    if meets && !inside {
                        let miss: Vec<usize> = run
                            .iter()
                            .filter(|(k, c)| {
                                !(0..count as i64).contains(k) && !covered.contains(*c)
                            })
                            .map(|&(_, c)| c)
                            .collect();
                        if !miss.is_empty() {
                            found.push((*pe, src, array.clone(), miss[0], miss.len()));
                        }
                    }
                    run.clear();
                };
                for (k, c) in ks {
                    if let Some(&(prev, _)) = run.last() {
                        if k != prev + 1 {
                            flush(&mut run, &mut found);
                        }
                    }
                    run.push((k, c));
                }
                flush(&mut run, &mut found);
            }
        }
        for (pe, src, array, first_cell, n_miss) in found {
            self.diag(
                format!("halo:{pe}:{src}:{array}"),
                DiagKind::HaloCoverageGap,
                Some(pe),
                Some(src),
                array.clone(),
                format!(
                    "halo coverage gap on `{array}`: pe{pe} reads {n_miss} remote-fed cell(s) \
                     (first: index {first_cell}) that the put from pe{src} does not cover — \
                     they would hold stale data on every schedule"
                ),
            );
        }
    }

    // -- check 8: iteration throttling -------------------------------------

    fn check_iteration_throttle(&mut self) {
        // A loop with fewer than two iterations cannot diverge, and without
        // a loop there is no iteration counter at all.
        let distinct: BTreeSet<i64> = self.g.loop_value.iter().flatten().copied().collect();
        if distinct.len() < 2 {
            return;
        }
        let n = self.g.n_pes();
        for p in 0..n.saturating_sub(1) {
            let q = p + 1;
            let coupled = {
                let partners = self.g.partners(p);
                partners.contains(&q)
            };
            if !coupled {
                // The dynamic monitor skips non-communicating rank neighbors
                // for the same reason (see `CommGraph::iteration_eligible`).
                continue;
            }
            for (a, b) in [(p, q), (q, p)] {
                let mut leads: Vec<i64> = Vec::new();
                for w in &self.waits {
                    if w.pe != a {
                        continue;
                    }
                    let Some(wv) = self.g.loop_value[w.phase] else {
                        continue;
                    };
                    let sat = &self.sat[&(w.pe, w.idx)];
                    if sat.is_empty() || !sat.iter().all(|&pi| self.prods[pi].pe == b) {
                        continue;
                    }
                    let earliest = sat
                        .iter()
                        .filter_map(|&pi| self.g.loop_value[self.prods[pi].phase])
                        .min();
                    if let Some(pv) = earliest {
                        leads.push(wv - pv);
                    }
                }
                // Two-sided MPI throttles both ways: a receive blocks until
                // the same-iteration send arrives (lead 0), and the
                // rendezvous ack stalls the sender one message behind the
                // receiver (lead 1).
                for tev in &self.g.traces[a].evs {
                    if self.g.loop_value[tev.phase].is_none() {
                        continue;
                    }
                    match &tev.ev {
                        Ev::Recv { src_pe, .. } if *src_pe == b => leads.push(0),
                        Ev::Send { dst_pe, .. } if *dst_pe == b => leads.push(1),
                        _ => {}
                    }
                }
                if leads.is_empty() {
                    self.diag(
                        format!("iter:{p}:{q}"),
                        DiagKind::IterationDivergence,
                        Some(a),
                        Some(b),
                        format!("pe{a}/pe{b}"),
                        format!(
                            "iteration counters can diverge without bound: pe{a} exchanges \
                             data with pe{b} but never waits on pe{b}'s per-iteration signal \
                             — nothing throttles pe{a}'s progress"
                        ),
                    );
                    break;
                }
                let min_lead = *leads.iter().min().unwrap();
                if min_lead >= 2 {
                    self.diag(
                        format!("iter:{p}:{q}"),
                        DiagKind::IterationDivergence,
                        Some(a),
                        Some(b),
                        format!("pe{a}/pe{b}"),
                        format!(
                            "iteration counters can diverge by {min_lead}: the tightest wait \
                             at pe{a} only requires pe{b} to be {min_lead} iterations behind"
                        ),
                    );
                    break;
                }
            }
        }
    }
}

/// Find one cycle in a dependency graph, returned as the list of nodes on
/// it, or `None` when the graph is acyclic.
fn find_cycle(edges: &BTreeMap<usize, Vec<usize>>) -> Option<Vec<usize>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color: BTreeMap<usize, Color> = BTreeMap::new();
    let mut stack: Vec<usize> = Vec::new();

    fn dfs(
        u: usize,
        edges: &BTreeMap<usize, Vec<usize>>,
        color: &mut BTreeMap<usize, Color>,
        stack: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        color.insert(u, Color::Grey);
        stack.push(u);
        for &v in edges.get(&u).map(|d| d.as_slice()).unwrap_or(&[]) {
            match color.get(&v).copied().unwrap_or(Color::White) {
                Color::Grey => {
                    let pos = stack.iter().position(|&x| x == v).unwrap();
                    return Some(stack[pos..].to_vec());
                }
                Color::White => {
                    if let Some(c) = dfs(v, edges, color, stack) {
                        return Some(c);
                    }
                }
                Color::Black => {}
            }
        }
        stack.pop();
        color.insert(u, Color::Black);
        None
    }

    for &u in edges.keys() {
        if color.get(&u).copied().unwrap_or(Color::White) == Color::White {
            if let Some(c) = dfs(u, edges, &mut color, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{Jacobi1dSetup, Jacobi2dSetup};
    use crate::transform::to_cpu_free;

    #[test]
    fn shipped_jacobi1d_mpi_verifies_clean() {
        let setup = Jacobi1dSetup::new(8, 4, 4);
        let report = verify_sdfg(&setup.sdfg, 4, &setup.user_bindings());
        assert!(report.clean(), "unexpected diagnostics:\n{report}");
    }

    #[test]
    fn shipped_jacobi1d_cpu_free_verifies_clean() {
        for n_pes in [1, 2, 3, 4] {
            let setup = Jacobi1dSetup::new(8, 4, n_pes);
            let user = setup.user_bindings();
            let mut sdfg = setup.sdfg;
            to_cpu_free(&mut sdfg).unwrap();
            let report = verify_sdfg(&sdfg, n_pes, &user);
            assert!(
                report.clean(),
                "n_pes={n_pes}: unexpected diagnostics:\n{report}"
            );
        }
    }

    #[test]
    fn shipped_jacobi2d_cpu_free_verifies_clean() {
        for n_pes in [1, 2, 4, 8] {
            let setup = Jacobi2dSetup::new(8, 8, 3, n_pes);
            let user = setup.user_bindings();
            let mut sdfg = setup.sdfg;
            to_cpu_free(&mut sdfg).unwrap();
            let report = verify_sdfg(&sdfg, n_pes, &user);
            assert!(
                report.clean(),
                "n_pes={n_pes}: unexpected diagnostics:\n{report}"
            );
        }
    }

    #[test]
    fn structural_gate_accepts_transformed_jacobi() {
        let mut sdfg = Jacobi1dSetup::new(8, 3, 4).sdfg;
        to_cpu_free(&mut sdfg).unwrap();
        let report = verify_structure(&sdfg, true);
        assert!(report.clean(), "{report}");
    }
}
