//! Static communication analysis: symbolic per-PE traces and the
//! communication graph the protocol verifier reasons over.
//!
//! [`CommGraph::build`] instantiates an [`Sdfg`] once per rank (the same
//! SPMD expansion the backends perform) but *without executing anything*:
//! each PE's control flow is linearized into a trace of communication and
//! memory **events** — puts, signals, waits, quiets, and the read/write
//! footprints of maps and copies. Loops are not unrolled in full; the outer
//! (time) loop is sampled at its first, second and last iteration, which is
//! faithful for the affine counter progressions the CPU-Free protocols use
//! (a signal value like `t` advances by the same stride every iteration, so
//! three samples pin down the whole progression — see
//! [`Expr::affine`](crate::expr::Expr::affine)).
//!
//! The verifier ([`crate::verify`]) consumes these traces to check signal ↔
//! wait balance, nbi source reuse, halo coverage and cross-PE wait cycles
//! for **every** rank instantiation, mirroring the vocabulary of the
//! dynamic happens-before checker in `sim-des`.

use crate::expr::Bindings;
use crate::ir::{Cf, LibNode, MapOp, Op, Resolved, Sdfg, State, TaskletKind};
use std::collections::BTreeSet;

/// Maximum trip count at which an *inner* loop is expanded in full rather
/// than sampled at its first/second/last iteration.
const INNER_LOOP_EXPAND_LIMIT: i64 = 64;

// ---------------------------------------------------------------------------
// Interval sets
// ---------------------------------------------------------------------------

/// A set of flat array cells, stored as sorted disjoint half-open intervals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IntervalSet {
    iv: Vec<(usize, usize)>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> IntervalSet {
        IntervalSet::default()
    }

    /// Build from arbitrary (possibly overlapping, unsorted) intervals.
    pub fn from_intervals(mut raw: Vec<(usize, usize)>) -> IntervalSet {
        raw.retain(|(lo, hi)| lo < hi);
        raw.sort_unstable();
        let mut iv: Vec<(usize, usize)> = Vec::with_capacity(raw.len());
        for (lo, hi) in raw {
            match iv.last_mut() {
                Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
                _ => iv.push((lo, hi)),
            }
        }
        IntervalSet { iv }
    }

    /// The cells touched by a resolved (possibly strided) subset.
    pub fn from_resolved(r: &Resolved) -> IntervalSet {
        if r.stride <= 1 {
            IntervalSet::from_intervals(vec![(r.offset, r.offset + r.count)])
        } else {
            IntervalSet::from_intervals(
                (0..r.count)
                    .map(|k| (r.offset + k * r.stride, r.offset + k * r.stride + 1))
                    .collect(),
            )
        }
    }

    /// `true` when no cell is in the set.
    pub fn is_empty(&self) -> bool {
        self.iv.is_empty()
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.iv.iter().map(|(lo, hi)| hi - lo).sum()
    }

    /// The sorted disjoint intervals.
    pub fn intervals(&self) -> &[(usize, usize)] {
        &self.iv
    }

    /// Is `c` in the set?
    pub fn contains(&self, c: usize) -> bool {
        self.iv
            .binary_search_by(|&(lo, hi)| {
                if c < lo {
                    std::cmp::Ordering::Greater
                } else if c >= hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Union in place.
    pub fn union_with(&mut self, other: &IntervalSet) {
        if other.is_empty() {
            return;
        }
        let mut raw = std::mem::take(&mut self.iv);
        raw.extend_from_slice(&other.iv);
        *self = IntervalSet::from_intervals(raw);
    }

    /// Do the two sets share any cell?
    pub fn overlaps(&self, other: &IntervalSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.iv.len() && j < other.iv.len() {
            let (alo, ahi) = self.iv[i];
            let (blo, bhi) = other.iv[j];
            if alo < bhi && blo < ahi {
                return true;
            }
            if ahi <= bhi {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// Set difference `self − other`.
    pub fn minus(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        for &(lo, hi) in &self.iv {
            let mut cur = lo;
            for &(blo, bhi) in &other.iv {
                if bhi <= cur {
                    continue;
                }
                if blo >= hi {
                    break;
                }
                if blo > cur {
                    out.push((cur, blo.min(hi)));
                }
                cur = cur.max(bhi);
                if cur >= hi {
                    break;
                }
            }
            if cur < hi {
                out.push((cur, hi));
            }
        }
        IntervalSet { iv: out }
    }

    /// Iterate all cells (ascending).
    pub fn cells(&self) -> impl Iterator<Item = usize> + '_ {
        self.iv.iter().flat_map(|&(lo, hi)| lo..hi)
    }
}

// ---------------------------------------------------------------------------
// Tasklet / op footprints
// ---------------------------------------------------------------------------

/// Per-array read and write cell sets of one operation.
#[derive(Debug, Clone, Default)]
pub(crate) struct Footprint {
    pub reads: Vec<(String, IntervalSet)>,
    pub writes: Vec<(String, IntervalSet)>,
}

fn shape_of(sdfg: &Sdfg, name: &str, b: &Bindings) -> Vec<i64> {
    sdfg.array(name).shape.iter().map(|e| e.eval(b)).collect()
}

/// Exact cell footprint of a map's tasklet under bindings. The 2D stencil
/// footprint is the center block plus four *edge strips* (no corners) —
/// bounding boxes would claim halo corners the tasklet never reads and
/// break halo-coverage reasoning.
pub(crate) fn map_footprint(sdfg: &Sdfg, m: &MapOp, b: &Bindings) -> Footprint {
    let mut fp = Footprint::default();
    match &m.tasklet {
        TaskletKind::Jacobi1d { src, dst } => {
            let (_, lo, hi) = &m.range[0];
            let (lo, hi) = (lo.eval(b), hi.eval(b));
            if hi < lo {
                return fp;
            }
            let (lo, hi) = (lo as usize, hi as usize);
            fp.reads.push((
                src.clone(),
                IntervalSet::from_intervals(vec![(lo - 1, hi + 2)]),
            ));
            fp.writes
                .push((dst.clone(), IntervalSet::from_intervals(vec![(lo, hi + 1)])));
        }
        TaskletKind::Jacobi2d { src, dst } => {
            let (_, ilo, ihi) = &m.range[0];
            let (_, jlo, jhi) = &m.range[1];
            let (ilo, ihi) = (ilo.eval(b), ihi.eval(b));
            let (jlo, jhi) = (jlo.eval(b), jhi.eval(b));
            if ihi < ilo || jhi < jlo {
                return fp;
            }
            let lc = shape_of(sdfg, src, b)[1] as usize;
            let (ilo, ihi, jlo, jhi) = (ilo as usize, ihi as usize, jlo as usize, jhi as usize);
            let mut reads = Vec::with_capacity(ihi - ilo + 3);
            // Center rows widened one column either side (west/east strips).
            for i in ilo..=ihi {
                reads.push((i * lc + jlo - 1, i * lc + jhi + 2));
            }
            // North and south strips, corners excluded.
            reads.push(((ilo - 1) * lc + jlo, (ilo - 1) * lc + jhi + 1));
            reads.push(((ihi + 1) * lc + jlo, (ihi + 1) * lc + jhi + 1));
            fp.reads
                .push((src.clone(), IntervalSet::from_intervals(reads)));
            let lcd = shape_of(sdfg, dst, b)[1] as usize;
            let writes = (ilo..=ihi)
                .map(|i| (i * lcd + jlo, i * lcd + jhi + 1))
                .collect();
            fp.writes
                .push((dst.clone(), IntervalSet::from_intervals(writes)));
        }
    }
    fp
}

// ---------------------------------------------------------------------------
// Events and traces
// ---------------------------------------------------------------------------

/// One symbolic event in a PE's linearized trace.
#[derive(Debug, Clone)]
pub(crate) enum Ev {
    /// A put (any flavor) into `dst_pe`'s copy of `array`.
    Put {
        dst_pe: usize,
        array: String,
        /// Destination placement, kept raw for coverage alignment.
        dst: Resolved,
        src_array: String,
        src_cells: IntervalSet,
        /// Combined completion signal (flag id, value), if any.
        sig: Option<(u32, i64)>,
        /// Non-blocking: the source stays in flight until quiet/round-trip.
        nbi: bool,
        label: &'static str,
    },
    /// A bare remote signal (`signal_op`).
    Signal { dst_pe: usize, sig: u32, val: i64 },
    /// `signal_wait(sig >= val)`.
    Wait { sig: u32, val: i64 },
    /// `quiet()` — completes this PE's outstanding nbi effects.
    Quiet,
    /// Local read footprint (maps, copies, send payloads).
    Read { array: String, cells: IntervalSet },
    /// Local write footprint (maps, copies, recv landings).
    Write {
        array: String,
        cells: IntervalSet,
        label: String,
    },
    /// MPI `Isend` of `count` cells.
    Send {
        dst_pe: usize,
        tag: u32,
        count: usize,
    },
    /// MPI `Irecv` of `count` cells.
    Recv {
        src_pe: usize,
        tag: u32,
        count: usize,
    },
}

/// An event tagged with the phase (iteration sample) it belongs to.
#[derive(Debug, Clone)]
pub(crate) struct TraceEv {
    pub phase: usize,
    pub ev: Ev,
}

/// One PE's linearized symbolic trace.
#[derive(Debug, Clone, Default)]
pub(crate) struct PeTrace {
    pub evs: Vec<TraceEv>,
}

/// The per-iteration symbolic communication graph of an SDFG: one trace per
/// rank instantiation plus the shared phase structure.
///
/// A **phase** is one sampled iteration of a top-level loop (or a run of
/// top-level states outside any loop). All PEs share the phase numbering —
/// the SPMD programs the backends accept have rank-uniform loop bounds — so
/// "the wait in phase 3" and "the put in phase 3" refer to the same
/// iteration on every rank.
#[derive(Debug, Clone)]
pub struct CommGraph {
    n_pes: usize,
    pub(crate) traces: Vec<PeTrace>,
    /// Per phase: the outer-loop variable's sampled value, if a loop phase.
    pub(crate) loop_value: Vec<Option<i64>>,
}

impl CommGraph {
    /// Instantiate the graph for `n_pes` ranks under `user` symbol bindings.
    pub fn build(sdfg: &Sdfg, n_pes: usize, user: &Bindings) -> CommGraph {
        let mut traces = Vec::with_capacity(n_pes);
        let mut loop_value: Vec<Option<i64>> = Vec::new();
        for pe in 0..n_pes {
            let mut w = Walker {
                sdfg,
                n: n_pes,
                evs: Vec::new(),
                phase: 0,
                loop_value: Vec::new(),
            };
            let mut b = sdfg.bindings(pe, n_pes, user);
            w.note_phase(None);
            w.walk(&sdfg.body, &mut b, 0);
            if pe == 0 {
                loop_value = w.loop_value;
            }
            traces.push(PeTrace { evs: w.evs });
        }
        CommGraph {
            n_pes,
            traces,
            loop_value,
        }
    }

    /// Number of rank instantiations.
    pub fn n_pes(&self) -> usize {
        self.n_pes
    }

    /// The PEs `pe` exchanges data with (puts, signals or messages, in
    /// either direction).
    pub fn partners(&self, pe: usize) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for (p, trace) in self.traces.iter().enumerate() {
            for tev in &trace.evs {
                let target = match &tev.ev {
                    Ev::Put { dst_pe, .. }
                    | Ev::Signal { dst_pe, .. }
                    | Ev::Send { dst_pe, .. } => Some(*dst_pe),
                    _ => None,
                };
                if let Some(q) = target {
                    if p == pe && q != pe {
                        out.insert(q);
                    } else if q == pe && p != pe {
                        out.insert(p);
                    }
                }
            }
        }
        out
    }

    /// Which PEs may safely report iteration commits to the dynamic
    /// checker's divergence monitor: a PE is eligible only when **every**
    /// rank-adjacent PE (`pe ± 1`) is also a communication partner —
    /// otherwise the pair has no protocol reason to stay in lockstep and
    /// the monitor would report spurious divergence (e.g. the row-wrap
    /// neighbors of a 2D process grid).
    pub fn iteration_eligible(&self) -> Vec<bool> {
        (0..self.n_pes)
            .map(|pe| {
                let partners = self.partners(pe);
                let mut nbs = Vec::new();
                if pe > 0 {
                    nbs.push(pe - 1);
                }
                if pe + 1 < self.n_pes {
                    nbs.push(pe + 1);
                }
                !nbs.is_empty() && nbs.iter().all(|q| partners.contains(q))
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// The trace walker
// ---------------------------------------------------------------------------

struct Walker<'a> {
    sdfg: &'a Sdfg,
    n: usize,
    evs: Vec<TraceEv>,
    phase: usize,
    loop_value: Vec<Option<i64>>,
}

impl Walker<'_> {
    fn note_phase(&mut self, value: Option<i64>) {
        while self.loop_value.len() <= self.phase {
            self.loop_value.push(None);
        }
        self.loop_value[self.phase] = value;
    }

    fn emit(&mut self, ev: Ev) {
        self.evs.push(TraceEv {
            phase: self.phase,
            ev,
        });
    }

    /// Sample values for a loop `lo..=hi`: first, second and last iteration.
    fn samples(lo: i64, hi: i64) -> Vec<i64> {
        let mut s = vec![lo];
        if hi > lo {
            s.push(lo + 1);
        }
        if hi > lo + 1 {
            s.push(hi);
        }
        s
    }

    fn walk(&mut self, body: &[Cf], b: &mut Bindings, depth: usize) {
        for cf in body {
            match cf {
                Cf::State(s) => self.state(s, b),
                Cf::Loop {
                    var,
                    start,
                    end,
                    body,
                    ..
                } => {
                    let (lo, hi) = (start.eval(b), end.eval(b));
                    if hi < lo {
                        continue;
                    }
                    if depth == 0 {
                        // Top-level (time) loop: each sample is a phase.
                        for v in Self::samples(lo, hi) {
                            self.phase += 1;
                            self.note_phase(Some(v));
                            b.insert(var.clone(), v);
                            self.walk(body, b, depth + 1);
                        }
                        b.remove(var);
                        // States after the loop get their own phase.
                        self.phase += 1;
                        self.note_phase(None);
                    } else {
                        // Inner loop: expand (bounded) within the phase.
                        let values: Vec<i64> = if hi - lo < INNER_LOOP_EXPAND_LIMIT {
                            (lo..=hi).collect()
                        } else {
                            Self::samples(lo, hi)
                        };
                        for v in values {
                            b.insert(var.clone(), v);
                            self.walk(body, b, depth + 1);
                        }
                        b.remove(var);
                    }
                }
            }
        }
    }

    fn state(&mut self, s: &State, b: &Bindings) {
        for gop in &s.ops {
            if !gop.active(b) {
                continue;
            }
            match &gop.op {
                Op::Map(m) => {
                    let fp = map_footprint(self.sdfg, m, b);
                    for (array, cells) in fp.reads {
                        self.emit(Ev::Read { array, cells });
                    }
                    for (array, cells) in fp.writes {
                        self.emit(Ev::Write {
                            array,
                            cells,
                            label: m.name.clone(),
                        });
                    }
                }
                Op::Copy { dst, src } => {
                    let rs = src.resolve(&shape_of(self.sdfg, &src.array, b), b);
                    let rd = dst.resolve(&shape_of(self.sdfg, &dst.array, b), b);
                    self.emit(Ev::Read {
                        array: src.array.clone(),
                        cells: IntervalSet::from_resolved(&rs),
                    });
                    self.emit(Ev::Write {
                        array: dst.array.clone(),
                        cells: IntervalSet::from_resolved(&rd),
                        label: "copy".into(),
                    });
                }
                Op::Lib(lib) => self.lib(lib, b),
            }
        }
    }

    fn target(&self, e: &crate::expr::Expr, b: &Bindings) -> Option<usize> {
        let t = e.eval(b);
        (t >= 0 && (t as usize) < self.n).then_some(t as usize)
    }

    #[allow(clippy::too_many_arguments)]
    fn put(
        &mut self,
        dst: &crate::ir::DataRef,
        src: &crate::ir::DataRef,
        pe: &crate::expr::Expr,
        sig: Option<(u32, i64)>,
        nbi: bool,
        label: &'static str,
        b: &Bindings,
    ) {
        let Some(target) = self.target(pe, b) else {
            return; // out-of-range target: the wait side will be flagged
        };
        let rd = dst.resolve(&shape_of(self.sdfg, &dst.array, b), b);
        let rs = src.resolve(&shape_of(self.sdfg, &src.array, b), b);
        self.emit(Ev::Put {
            dst_pe: target,
            array: dst.array.clone(),
            dst: rd,
            src_array: src.array.clone(),
            src_cells: IntervalSet::from_resolved(&rs),
            sig,
            nbi,
            label,
        });
    }

    fn lib(&mut self, lib: &LibNode, b: &Bindings) {
        match lib {
            LibNode::PutmemSignal {
                dst,
                src,
                sig,
                val,
                pe,
            } => {
                self.put(
                    dst,
                    src,
                    pe,
                    Some((*sig, val.eval(b))),
                    true,
                    "putmem_signal",
                    b,
                );
            }
            LibNode::PutmemSignalBlock {
                dst,
                src,
                sig,
                val,
                pe,
            } => {
                self.put(
                    dst,
                    src,
                    pe,
                    Some((*sig, val.eval(b))),
                    true,
                    "putmem_signal_block",
                    b,
                );
            }
            LibNode::PutMapped { dst, src, pe } => {
                // Blocking in-kernel mapped put: the source read completes
                // before the op returns.
                self.put(dst, src, pe, None, false, "put_mapped", b);
            }
            LibNode::Iput { dst, src, pe } => {
                self.put(dst, src, pe, None, true, "iput", b);
            }
            LibNode::PutSingle { dst, src, pe } => {
                self.put(dst, src, pe, None, true, "p", b);
            }
            LibNode::SignalOp { sig, val, pe } => {
                if let Some(target) = self.target(pe, b) {
                    self.emit(Ev::Signal {
                        dst_pe: target,
                        sig: *sig,
                        val: val.eval(b),
                    });
                }
            }
            LibNode::SignalWait { sig, val } => {
                self.emit(Ev::Wait {
                    sig: *sig,
                    val: val.eval(b),
                });
            }
            LibNode::Quiet => self.emit(Ev::Quiet),
            LibNode::MpiIsend { buf, dest, tag } => {
                let r = buf.resolve(&shape_of(self.sdfg, &buf.array, b), b);
                self.emit(Ev::Read {
                    array: buf.array.clone(),
                    cells: IntervalSet::from_resolved(&r),
                });
                if let Some(target) = self.target(dest, b) {
                    self.emit(Ev::Send {
                        dst_pe: target,
                        tag: *tag,
                        count: r.count,
                    });
                }
            }
            LibNode::MpiIrecv { buf, src, tag } => {
                let r = buf.resolve(&shape_of(self.sdfg, &buf.array, b), b);
                if let Some(from) = self.target(src, b) {
                    self.emit(Ev::Recv {
                        src_pe: from,
                        tag: *tag,
                        count: r.count,
                    });
                }
                // The landing cells are locally (remotely-sourced) written.
                self.emit(Ev::Write {
                    array: buf.array.clone(),
                    cells: IntervalSet::from_resolved(&r),
                    label: format!("Irecv tag {tag}"),
                });
            }
            LibNode::MpiWaitall => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::Jacobi1dSetup;
    use crate::transform::to_cpu_free;

    #[test]
    fn interval_set_algebra() {
        let a = IntervalSet::from_intervals(vec![(5, 9), (0, 3), (8, 12)]);
        assert_eq!(a.intervals(), &[(0, 3), (5, 12)]);
        assert_eq!(a.len(), 10);
        assert!(a.contains(0) && a.contains(11) && !a.contains(4));
        let b = IntervalSet::from_intervals(vec![(2, 6)]);
        assert!(a.overlaps(&b));
        let d = a.minus(&b);
        assert_eq!(d.intervals(), &[(0, 2), (6, 12)]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.intervals(), &[(0, 12)]);
        assert!(!IntervalSet::new().overlaps(&a));
    }

    #[test]
    fn strided_resolved_cells() {
        let r = Resolved {
            offset: 10,
            count: 3,
            stride: 10,
        };
        let s = IntervalSet::from_resolved(&r);
        assert_eq!(s.intervals(), &[(10, 11), (20, 21), (30, 31)]);
    }

    #[test]
    fn jacobi1d_graph_partners_are_rank_neighbors() {
        let mut sdfg = Jacobi1dSetup::new(8, 3, 4).sdfg;
        to_cpu_free(&mut sdfg).unwrap();
        let user = Jacobi1dSetup::new(8, 3, 4).user_bindings();
        let g = CommGraph::build(&sdfg, 4, &user);
        assert_eq!(g.partners(0), [1].into_iter().collect());
        assert_eq!(g.partners(1), [0, 2].into_iter().collect());
        assert_eq!(g.partners(3), [2].into_iter().collect());
        assert_eq!(g.iteration_eligible(), vec![true; 4]);
        // Three samples of t in 1..=3 plus the pre/post phases.
        assert!(g.loop_value.contains(&Some(1)));
        assert!(g.loop_value.contains(&Some(2)));
        assert!(g.loop_value.contains(&Some(3)));
    }

    #[test]
    fn single_pe_has_no_events_but_builds() {
        let mut sdfg = Jacobi1dSetup::new(8, 2, 1).sdfg;
        to_cpu_free(&mut sdfg).unwrap();
        let user = Jacobi1dSetup::new(8, 2, 1).user_bindings();
        let g = CommGraph::build(&sdfg, 1, &user);
        assert!(g.partners(0).is_empty());
        assert_eq!(g.iteration_eligible(), vec![false]);
    }
}
