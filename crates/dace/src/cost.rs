//! Static virtual-time cost prediction for the CPU-Free backend.
//!
//! [`predict_cost`] computes, **without running the simulator**, the
//! end-to-end virtual time [`lower::run_persistent_on`] would report for a
//! persistent-schedule SDFG on a given topology preset, along with a
//! per-kernel/per-collective cost ledger and per-route byte accounting.
//!
//! # Model
//!
//! The predictor walks the SDFG exactly as the persistent backend executes
//! it — same guards, same loop trip counts, same conservative
//! communication schedule (single comm thread + grid sync, §5.3.2) — but
//! against *scalar clocks* instead of a discrete-event engine:
//!
//! * one virtual clock per PE, advanced by the same closed-form charges
//!   the simulator's [`gpu_sim::Transport`]/[`gpu_sim::CostModel`] apply
//!   (map roofline sweeps, put/signal issue latencies, grid syncs);
//! * one mirrored busy-until clock per interconnect link
//!   ([`gpu_sim::LinkClocks`]), replaying the cut-through FCFS wire
//!   charging so queueing behind earlier traffic on shared links is
//!   accounted;
//! * flags and signal deliveries resolved through a miniature `(time,
//!   seq)` run queue replicating the engine's determinism contract: every
//!   suspension point of an agent (`advance`, `wait_flag`, barrier
//!   arrival, scheduled delivery) is one queue round trip, and
//!   simultaneous events pop in push order.
//!
//! Because link reservations replay in the engine's own event order —
//! including its tie-breaks — the `base` recurrence reproduces the
//! simulated virtual time exactly on every corpus cell, contended or not.
//! On contended fabrics (a link shared between two ordered PE pairs) the
//! report still carries a conservative `margin` (twice the total
//! serialization time on shared links): the queue mirror elides
//! zero-duration bookkeeping events (`schedule_call` side effects, host
//! agents parked on kernel completion), which provably cannot reorder
//! charges for the modeled op set but could for future ops, and the
//! margin keeps `total = base + margin` never-underestimating under such
//! drift. Uncontended fabrics take no margin, so `total` stays exact
//! there.
//!
//! Long persistent loops are not walked iteration by iteration: once the
//! per-PE iteration period is observed stable (steady state), the
//! remaining iterations are composed in closed form (`warmup + n × Δ`).
//!
//! # Known error sources
//!
//! * The run-queue mirror skips events with no timing effect
//!   (`schedule_call` data materialization, parked host agents); an op
//!   whose charges depend on such an event's relative order would drift
//!   (covered by `margin` on contended fabrics).
//! * Signal application mirrors `SignalOp::Set` — the only op the
//!   persistent lowering emits; programs hand-built with `Add` signals
//!   would resolve waits at the wrong arrival.
//! * Steady-state extrapolation assumes the warmup window reaches the
//!   periodic regime; if it does not, the walk falls back to full
//!   enumeration.

use crate::expr::Bindings;
use crate::ir::{Cf, LibNode, Op, Sdfg, State};
use crate::lower::{self, LowerError};
use crate::verify::{verify_sdfg, VerifyReport};
use gpu_sim::{CostModel, Topology, TopologyKind};
use sim_des::{us, SimDur, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::fmt;

/// Iterations walked before attempting steady-state extrapolation.
const WARMUP_ITERS: i64 = 12;

/// Errors from [`predict_cost`].
#[derive(Debug)]
pub enum CostError {
    /// The program failed persistent-backend legality or the static
    /// protocol verifier — the same gates [`lower::run_persistent`] applies.
    Illegal(LowerError),
    /// The walk deadlocked: a wait can never be satisfied. Unreachable for
    /// verifier-clean programs (wait-cycle and lost-signal checks).
    Stuck {
        /// The blocked PE.
        pe: usize,
        /// The signal id it waits on.
        sig: u32,
        /// The value the wait requires.
        val: u64,
    },
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::Illegal(e) => write!(f, "{e}"),
            CostError::Stuck { pe, sig, val } => write!(
                f,
                "cost walk stuck: pe{pe} waits forever on signal {sig} >= {val}"
            ),
        }
    }
}

impl std::error::Error for CostError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CostError::Illegal(e) => Some(e),
            CostError::Stuck { .. } => None,
        }
    }
}

/// One line item of the cost ledger: a kernel, collective, or runtime
/// charge aggregated over all PEs and iterations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelCost {
    /// Stable label, prefixed by kind: `map:`, `put:`, `put_block:`,
    /// `iput:`, `put_mapped:`, `p:`, `signal:`, `wait:`, `copy:`,
    /// `grid_sync`, `quiet`, `launch`, `stream_sync`.
    pub label: String,
    /// Number of executions across all PEs.
    pub count: u64,
    /// Total issuing-agent busy/wait time attributed to this item.
    pub busy: SimDur,
}

/// Per-ordered-pair communication accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteCost {
    /// Source PE.
    pub src: usize,
    /// Destination PE.
    pub dst: usize,
    /// Data-bearing transfers charged on this route (puts, iputs, mapped
    /// puts; pure signals ride the route but are not counted here).
    pub puts: u64,
    /// Total payload bytes.
    pub bytes: u64,
    /// Total cut-through wire time, including queueing behind earlier
    /// traffic on shared links.
    pub wire: SimDur,
    /// Whether any link on this route also carries another ordered pair's
    /// traffic in this program.
    pub contended: bool,
}

/// The static cost prediction for one (program, PE count, topology).
#[derive(Debug, Clone)]
pub struct CostReport {
    /// Program name (from [`Sdfg::name`]).
    pub program: String,
    /// Number of PEs the prediction is for.
    pub n_pes: usize,
    /// The topology preset the route/link model came from.
    pub topology: TopologyKind,
    /// The contention-ordered recurrence value: exact when `!contended`.
    pub base: SimDur,
    /// Conservative surcharge covering FCFS tie-break divergence on shared
    /// links (zero when `!contended`).
    pub margin: SimDur,
    /// The prediction: `base + margin`. Never underestimates the simulated
    /// virtual time (property-tested across the corpus × presets).
    pub total: SimDur,
    /// Whether any link carries traffic of two or more ordered PE pairs.
    pub contended: bool,
    /// Whether the persistent loop was composed in closed form after a
    /// steady-state warmup instead of walked in full.
    pub extrapolated: bool,
    /// Per-kernel/per-collective ledger, in first-execution order.
    pub kernels: Vec<KernelCost>,
    /// Per-ordered-pair byte/wire accounting.
    pub routes: Vec<RouteCost>,
}

impl CostReport {
    /// The `k` most expensive ledger items by total busy time.
    #[must_use]
    pub fn top_kernels(&self, k: usize) -> Vec<&KernelCost> {
        let mut v: Vec<&KernelCost> = self.kernels.iter().collect();
        v.sort_by(|a, b| b.busy.cmp(&a.busy).then_with(|| a.label.cmp(&b.label)));
        v.truncate(k);
        v
    }

    /// Relative error of the prediction against a simulated total,
    /// `(total - simulated) / simulated` (0 when both are zero).
    // Corpus totals are well under 2^52 ns, so the f64 casts are exact.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn rel_err(&self, simulated: SimDur) -> f64 {
        if simulated == SimDur::ZERO {
            return 0.0;
        }
        (self.total.as_nanos() as f64 - simulated.as_nanos() as f64) / simulated.as_nanos() as f64
    }
}

/// Predict the end-to-end virtual time of running `sdfg` on `n_pes` PEs of
/// the `topology` preset with the persistent CPU-Free backend, without
/// simulating it.
///
/// Applies the same legality and static-verification gates as
/// [`lower::run_persistent`]; the prediction models
/// [`lower::run_persistent_on`] with the default
/// [`CostModel::a100_hgx`] calibration.
///
/// # Errors
///
/// [`CostError::Illegal`] when the SDFG fails the persistent-lowering
/// legality check or the static protocol verifier (the same gates
/// `run_persistent` applies), and [`CostError::Stuck`] when the walk
/// parks on a `signal_wait` no modeled event can satisfy — the static
/// analogue of a deadlocked run.
pub fn predict_cost(
    sdfg: &Sdfg,
    n_pes: usize,
    user: &Bindings,
    topology: TopologyKind,
) -> Result<CostReport, CostError> {
    lower::persistent_legality(sdfg).map_err(CostError::Illegal)?;
    lower::verify_gate(sdfg, n_pes, user).map_err(CostError::Illegal)?;
    let cost = CostModel::a100_hgx();
    let topo = Topology::build(topology, n_pes, &cost);
    // Steady-state composition: walk a warmup window, then extend the
    // periodic regime in closed form. Falls back to the full walk when the
    // loop is short or the window has not stabilized.
    if let Some(iters) = top_persistent_trip_count(sdfg, n_pes, user) {
        if iters > WARMUP_ITERS + 2 {
            let mut w = walk(sdfg, n_pes, user, &cost, &topo, Some(WARMUP_ITERS))?;
            if w.extrapolate(iters - WARMUP_ITERS) {
                return Ok(assemble(sdfg, n_pes, topology, &cost, &topo, w, true));
            }
        }
    }
    let w = walk(sdfg, n_pes, user, &cost, &topo, None)?;
    Ok(assemble(sdfg, n_pes, topology, &cost, &topo, w, false))
}

/// Run the static protocol verifier and, when it passes, the cost
/// predictor — the "cost report alongside verification" entry point used
/// by tooling that wants both artifacts from one call.
#[must_use]
pub fn verify_and_predict(
    sdfg: &Sdfg,
    n_pes: usize,
    user: &Bindings,
    topology: TopologyKind,
) -> (VerifyReport, Option<CostReport>) {
    let report = verify_sdfg(sdfg, n_pes, user);
    if !report.clean() {
        return (report, None);
    }
    let predicted = predict_cost(sdfg, n_pes, user, topology).ok();
    (report, predicted)
}

/// Trip count of the single top-level persistent loop, when the body is
/// exactly that loop and its bounds agree across PEs.
fn top_persistent_trip_count(sdfg: &Sdfg, n_pes: usize, user: &Bindings) -> Option<i64> {
    let [Cf::Loop {
        start,
        end,
        persistent: true,
        ..
    }] = sdfg.body.as_slice()
    else {
        return None;
    };
    let b0 = sdfg.bindings(0, n_pes, user);
    let (lo, hi) = (start.eval(&b0), end.eval(&b0));
    for pe in 1..n_pes {
        let b = sdfg.bindings(pe, n_pes, user);
        if (start.eval(&b), end.eval(&b)) != (lo, hi) {
            return None;
        }
    }
    (hi >= lo).then(|| hi - lo + 1)
}

// ------------------------------------------------------------------
// Program flattening
// ------------------------------------------------------------------

/// One step of a PE's predicted execution.
#[derive(Clone, Copy)]
enum PredOp {
    /// Unconditional local charge (maps, copies, launch).
    Busy { dur: SimDur, item: usize },
    /// Grid-wide barrier + sync charge (one block group per PE, so the
    /// barrier itself is local and free; only the sync latency is paid).
    GridSync,
    /// `putmem_signal_nbi` / `putmem_signal_block`.
    PutSignal {
        dst: usize,
        bytes: u64,
        sig: u32,
        val: u64,
        block: bool,
        item: usize,
    },
    /// Strided `iput` (blocking in the simulator's model).
    Iput { dst: usize, elems: u64, item: usize },
    /// Mapped single-element put wave (blocking).
    PutMapped { dst: usize, count: u64, item: usize },
    /// Single-element `p` (non-blocking store).
    PutSingle { dst: usize, item: usize },
    /// Bare `signal_op` Set.
    SignalSet {
        dst: usize,
        sig: u32,
        val: u64,
        item: usize,
    },
    /// `signal_wait_until(sig, Ge, val)`.
    Wait { sig: u32, val: u64, item: usize },
    /// `quiet`: drain outstanding non-blocking deliveries.
    Quiet { item: usize },
    /// Zero-cost marker: one persistent-loop iteration finished on this PE.
    IterEnd,
}

/// Interned ledger labels with accumulated counts/busy time.
#[derive(Default)]
struct ItemTable {
    labels: Vec<String>,
    index: BTreeMap<String, usize>,
}

impl ItemTable {
    fn get(&mut self, label: String) -> usize {
        if let Some(&i) = self.index.get(&label) {
            return i;
        }
        let i = self.labels.len();
        self.index.insert(label.clone(), i);
        self.labels.push(label);
        i
    }
}

/// Timing-dependent accumulators, snapshotted at iteration boundaries so
/// the steady-state extrapolation can scale per-iteration deltas.
#[derive(Clone, PartialEq, Eq)]
struct Tally {
    item_busy: Vec<SimDur>,
    item_count: Vec<u64>,
    /// `(src, dst)` → (data transfers, payload bytes, wire incl. queueing).
    routes: BTreeMap<(usize, usize), (u64, u64, SimDur)>,
    /// Per link: pure serialization time charged (no queueing) — the
    /// margin's raw material.
    link_wire: Vec<SimDur>,
}

impl Tally {
    fn new(items: usize, links: usize) -> Tally {
        Tally {
            item_busy: vec![SimDur::ZERO; items],
            item_count: vec![0; items],
            routes: BTreeMap::new(),
            link_wire: vec![SimDur::ZERO; links],
        }
    }

    fn charge_item(&mut self, item: usize, dur: SimDur) {
        self.item_busy[item] += dur;
        self.item_count[item] += 1;
    }

    /// The per-window increment `self - prev` (keys only ever grow).
    fn diff(&self, prev: &Tally) -> Tally {
        let mut d = self.clone();
        for i in 0..d.item_busy.len() {
            d.item_busy[i] = self.item_busy[i] - prev.item_busy[i];
            d.item_count[i] = self.item_count[i] - prev.item_count[i];
        }
        for (k, v) in &mut d.routes {
            let (pp, pb, pw) = prev.routes.get(k).copied().unwrap_or((0, 0, SimDur::ZERO));
            v.0 -= pp;
            v.1 -= pb;
            v.2 -= pw;
        }
        for i in 0..d.link_wire.len() {
            d.link_wire[i] = self.link_wire[i] - prev.link_wire[i];
        }
        d
    }

    /// Add `times` copies of the per-iteration `delta`.
    fn add_scaled(&mut self, delta: &Tally, times: u64) {
        for i in 0..self.item_busy.len() {
            self.item_busy[i] += delta.item_busy[i] * times;
            self.item_count[i] += delta.item_count[i] * times;
        }
        for (k, &(p, b, w)) in &delta.routes {
            let e = self.routes.entry(*k).or_insert((0, 0, SimDur::ZERO));
            e.0 += p * times;
            e.1 += b * times;
            e.2 += w * times;
        }
        for i in 0..self.link_wire.len() {
            self.link_wire[i] += delta.link_wire[i] * times;
        }
    }
}

struct Flattener<'a> {
    sdfg: &'a Sdfg,
    shapes: BTreeMap<String, Vec<i64>>,
    cost: &'a CostModel,
    /// Clamp on the top-level persistent loop's trip count (warmup walks).
    limit: Option<i64>,
}

impl Flattener<'_> {
    fn flatten_pe(
        &self,
        pe: usize,
        n: usize,
        user: &Bindings,
        items: &mut ItemTable,
    ) -> Vec<PredOp> {
        let mut b = self.sdfg.bindings(pe, n, user);
        let mut out = Vec::new();
        // Launch skeleton: host enqueue then device start delay — the body
        // begins on every PE after both (see `launch_cooperative`).
        let item = items.get("launch".into());
        out.push(PredOp::Busy {
            dur: self.cost.kernel_launch_host() + self.cost.kernel_launch_device(),
            item,
        });
        self.flatten_cf(&self.sdfg.body, &mut b, true, items, &mut out);
        out
    }

    fn flatten_cf(
        &self,
        body: &[Cf],
        b: &mut Bindings,
        top: bool,
        items: &mut ItemTable,
        out: &mut Vec<PredOp>,
    ) {
        for cf in body {
            match cf {
                Cf::Loop {
                    var,
                    start,
                    end,
                    body,
                    persistent,
                } => {
                    let lo = start.eval(b);
                    let mut hi = end.eval(b);
                    let mark = top && *persistent;
                    if mark {
                        if let Some(limit) = self.limit {
                            hi = hi.min(lo + limit - 1);
                        }
                    }
                    for v in lo..=hi {
                        b.insert(var.clone(), v);
                        self.flatten_cf(body, b, false, items, out);
                        if mark {
                            out.push(PredOp::IterEnd);
                        }
                    }
                }
                Cf::State(state) => self.flatten_state(state, b, items, out),
            }
        }
    }

    fn flatten_state(
        &self,
        state: &State,
        b: &Bindings,
        items: &mut ItemTable,
        out: &mut Vec<PredOp>,
    ) {
        let mut comm_since_sync = false;
        for gop in &state.ops {
            if !gop.active(b) {
                continue;
            }
            match &gop.op {
                Op::Map(m) => {
                    if comm_since_sync {
                        out.push(PredOp::GridSync);
                        comm_since_sync = false;
                    }
                    let item = items.get(format!("map:{}", m.name));
                    out.push(PredOp::Busy {
                        dur: lower::map_cost(self.cost, m.volume(b), false),
                        item,
                    });
                }
                Op::Copy { dst, .. } => {
                    let rd = dst.resolve(&self.shapes[&dst.array], b);
                    let item = items.get(format!("copy:{}", dst.array));
                    out.push(PredOp::Busy {
                        dur: self.cost.local_copy((rd.count * 8) as u64),
                        item,
                    });
                }
                Op::Lib(lib) => {
                    comm_since_sync = true;
                    self.flatten_lib(lib, b, items, out);
                }
            }
        }
        if comm_since_sync {
            out.push(PredOp::GridSync);
        }
    }

    // Pedantic cast triage: `eval` returns i64, but the verify gate has
    // already bounded PE expressions to [0, n_pes) and signal values to
    // non-negative counters, so the narrowing casts cannot truncate here.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    fn flatten_lib(
        &self,
        lib: &LibNode,
        b: &Bindings,
        items: &mut ItemTable,
        out: &mut Vec<PredOp>,
    ) {
        match lib {
            LibNode::PutmemSignal {
                dst,
                sig,
                val,
                pe: pex,
                ..
            } => {
                let rd = dst.resolve(&self.shapes[&dst.array], b);
                let item = items.get(format!("put:{}->s{sig}", dst.array));
                out.push(PredOp::PutSignal {
                    dst: pex.eval(b) as usize,
                    bytes: (rd.count * 8) as u64,
                    sig: *sig,
                    val: val.eval(b) as u64,
                    block: false,
                    item,
                });
            }
            LibNode::PutmemSignalBlock {
                dst,
                sig,
                val,
                pe: pex,
                ..
            } => {
                let rd = dst.resolve(&self.shapes[&dst.array], b);
                let item = items.get(format!("put_block:{}->s{sig}", dst.array));
                out.push(PredOp::PutSignal {
                    dst: pex.eval(b) as usize,
                    bytes: (rd.count * 8) as u64,
                    sig: *sig,
                    val: val.eval(b) as u64,
                    block: true,
                    item,
                });
            }
            LibNode::PutMapped { dst, pe: pex, .. } => {
                let rd = dst.resolve(&self.shapes[&dst.array], b);
                let item = items.get(format!("put_mapped:{}", dst.array));
                out.push(PredOp::PutMapped {
                    dst: pex.eval(b) as usize,
                    count: rd.count as u64,
                    item,
                });
            }
            LibNode::SignalWait { sig, val } => {
                let item = items.get(format!("wait:s{sig}"));
                out.push(PredOp::Wait {
                    sig: *sig,
                    val: val.eval(b) as u64,
                    item,
                });
            }
            LibNode::Iput { dst, pe: pex, .. } => {
                let rd = dst.resolve(&self.shapes[&dst.array], b);
                if rd.count == 0 {
                    return;
                }
                let item = items.get(format!("iput:{}", dst.array));
                out.push(PredOp::Iput {
                    dst: pex.eval(b) as usize,
                    elems: rd.count as u64,
                    item,
                });
            }
            LibNode::PutSingle { dst, pe: pex, .. } => {
                let item = items.get(format!("p:{}", dst.array));
                out.push(PredOp::PutSingle {
                    dst: pex.eval(b) as usize,
                    item,
                });
            }
            LibNode::SignalOp { sig, val, pe: pex } => {
                let item = items.get(format!("signal:s{sig}"));
                out.push(PredOp::SignalSet {
                    dst: pex.eval(b) as usize,
                    sig: *sig,
                    val: val.eval(b) as u64,
                    item,
                });
            }
            LibNode::Quiet => {
                let item = items.get("quiet".into());
                out.push(PredOp::Quiet { item });
            }
            LibNode::MpiIsend { .. } | LibNode::MpiIrecv { .. } | LibNode::MpiWaitall => {
                unreachable!("persistent legality rejects MPI nodes")
            }
        }
    }
}

// ------------------------------------------------------------------
// The walk
// ------------------------------------------------------------------

/// Micro-position of a PE inside its current op, mirroring the simulator
/// agent's suspension points: every `advance`, `wait_flag`, and barrier
/// arrival is one round trip through the engine's `(time, seq)` run queue,
/// and charge order at equal times follows that queue order.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// About to run `ops[idx]`'s pre-advance code (link charges, FIFO
    /// clamp, delivery computation) and suspend on its advance.
    Start,
    /// Passed back through the run queue (grid-sync barrier release or a
    /// wait that just resolved); about to charge the trailing advance.
    Requeued,
    /// Just resumed from the op's advance: run its post-code (delivery
    /// pushes, `outstanding` updates, ledger charge) and fall through to
    /// the next op within the same event.
    Resumed,
}

struct PeWalk {
    ops: Vec<PredOp>,
    idx: usize,
    phase: Phase,
    clock: SimTime,
    /// `outstanding_until` mirror for `quiet`.
    outstanding: SimTime,
    /// Start of the op in flight (the ledger charge is the span it covers,
    /// exactly like the simulator's trace spans).
    busy_start: SimTime,
    /// Absolute delivery completion of the put in flight (`done_at`).
    pending_done: SimTime,
    /// Clock at each persistent-loop iteration boundary.
    iter_ends: Vec<SimTime>,
    done: bool,
}

/// One pending run-queue event. Ordered `(time, seq)` exactly like the
/// engine's heap: `seq` is assigned at push time, so simultaneous events
/// pop in push order — the tie-break the DES's determinism contract
/// guarantees, and the one thing scalar per-PE clocks cannot reproduce.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// Resume PE `pe`'s continuation.
    Resume(usize),
    /// A scheduled signal delivery lands (`SignalOp::Set`).
    Signal {
        /// Signal id.
        sig: u32,
        /// Destination PE whose flag copy is written.
        dst: usize,
        /// Value the flag is set to.
        val: u64,
    },
}

struct Walk {
    n: usize,
    clocks: Vec<SimTime>,
    iter_ends: Vec<Vec<SimTime>>,
    tally: Tally,
    /// Tally snapshots after each globally-completed iteration.
    snaps: Vec<Tally>,
    /// Per link: ordered pairs whose traffic crossed it.
    link_pairs: Vec<BTreeSet<(usize, usize)>>,
    items: ItemTable,
    extrapolated_iters: u64,
    /// Per-PE steady-state period (filled by `extrapolate`).
    deltas: Vec<SimDur>,
}

impl Walk {
    /// Extend the walked warmup window by `remaining` iterations of the
    /// observed steady state. Returns false (leaving the walk unusable for
    /// reporting) when the window has not stabilized.
    fn extrapolate(&mut self, remaining: i64) -> bool {
        if remaining <= 0 || self.snaps.len() < 5 {
            return false;
        }
        let mut deltas = Vec::with_capacity(self.n);
        for ends in &self.iter_ends {
            let k = ends.len();
            if k < 3 {
                return false;
            }
            let d1 = ends[k - 1].since(ends[k - 2]);
            let d2 = ends[k - 2].since(ends[k - 3]);
            if d1 != d2 {
                return false;
            }
            deltas.push(d1);
        }
        // Tally deltas come from *mid*-warmup windows: the final snapshot
        // windows under-count because PEs running ahead of the slowest one
        // hit the warmup cap and stop contributing look-ahead work.
        let k = self.snaps.len();
        let d_a = self.snaps[k - 3].diff(&self.snaps[k - 4]);
        let d_b = self.snaps[k - 2].diff(&self.snaps[k - 3]);
        if d_a != d_b {
            return false;
        }
        let r = remaining.cast_unsigned();
        for (pe, d) in deltas.iter().enumerate() {
            self.clocks[pe] += *d * r;
        }
        self.tally.add_scaled(&d_b, r);
        self.extrapolated_iters = r;
        self.deltas = deltas;
        true
    }
}

#[allow(clippy::too_many_lines)]
fn walk(
    sdfg: &Sdfg,
    n_pes: usize,
    user: &Bindings,
    cost: &CostModel,
    topo: &Topology,
    limit: Option<i64>,
) -> Result<Walk, CostError> {
    // Resolve shapes once (uniform across PEs per lowering's own check).
    let b0 = sdfg.bindings(0, n_pes, user);
    let shapes: BTreeMap<String, Vec<i64>> = sdfg
        .arrays
        .iter()
        .map(|a| {
            (
                a.name.clone(),
                a.shape.iter().map(|e| e.eval(&b0)).collect(),
            )
        })
        .collect();
    let flat = Flattener {
        sdfg,
        shapes,
        cost,
        limit,
    };
    let mut items = ItemTable::default();
    let mut pes: Vec<PeWalk> = (0..n_pes)
        .map(|pe| PeWalk {
            ops: flat.flatten_pe(pe, n_pes, user, &mut items),
            idx: 0,
            phase: Phase::Start,
            clock: SimTime::ZERO,
            outstanding: SimTime::ZERO,
            busy_start: SimTime::ZERO,
            pending_done: SimTime::ZERO,
            iter_ends: Vec::new(),
            done: false,
        })
        .collect();

    // Pre-intern runtime labels so the tally vectors never resize mid-walk.
    let grid_item = items.get("grid_sync".into());
    items.get("stream_sync".into());
    let links = topo.links();
    let mut tally = Tally::new(items.labels.len(), links.len());
    let mut snaps: Vec<Tally> = Vec::new();
    let mut link_pairs: Vec<BTreeSet<(usize, usize)>> = vec![BTreeSet::new(); links.len()];
    let mut clocks = topo.clocks();
    // Engine-mirror state: the `(time, seq)` run queue, flag values,
    // parked waiters, and the transport's per-route delivery FIFO clamp
    // (a fault-free no-op kept for fidelity).
    let mut queue: BinaryHeap<Reverse<(SimTime, u64, Ev)>> = BinaryHeap::new();
    let mut seq: u64 = 0;
    let mut flags: BTreeMap<(u32, usize), u64> = BTreeMap::new();
    let mut parked: BTreeMap<usize, (u32, u64)> = BTreeMap::new();
    let mut fifo: BTreeMap<(usize, usize), SimTime> = BTreeMap::new();
    let poll = cost.shmem_poll();
    let issue = cost.shmem_signal();

    // Kernels start in PE order (hosts launch in spawn order), so seed the
    // queue that way.
    for pe in 0..n_pes {
        queue.push(Reverse((SimTime::ZERO, seq, Ev::Resume(pe))));
        seq += 1;
    }

    while let Some(Reverse((t, _, ev))) = queue.pop() {
        let pe = match ev {
            Ev::Signal { sig, dst, val } => {
                // The persistent lowering only emits `SignalOp::Set`.
                flags.insert((sig, dst), val);
                if let Some(&(wsig, wval)) = parked.get(&dst) {
                    if wsig == sig && val >= wval {
                        parked.remove(&dst);
                        queue.push(Reverse((t, seq, Ev::Resume(dst))));
                        seq += 1;
                    }
                }
                continue;
            }
            Ev::Resume(pe) => pe,
        };
        pes[pe].clock = t;
        // Run this PE's continuation until its next suspension: the
        // post-code of the op that just resumed, then pre-code + handoff
        // of following ops.
        loop {
            let st = &mut pes[pe];
            if st.idx >= st.ops.len() {
                st.done = true;
                break;
            }
            let op = st.ops[st.idx];
            match st.phase {
                Phase::Resumed => {
                    match op {
                        PredOp::PutSignal { dst, sig, val, .. } => {
                            // Post-busy: `schedule_signal` pushes the
                            // delivery only after the issue advance.
                            queue.push(Reverse((
                                st.pending_done,
                                seq,
                                Ev::Signal { sig, dst, val },
                            )));
                            seq += 1;
                            st.outstanding = st.outstanding.max(st.pending_done);
                        }
                        PredOp::PutSingle { .. } => {
                            st.outstanding = st.outstanding.max(st.pending_done);
                        }
                        PredOp::SignalSet { dst, sig, val, .. } => {
                            // `signal_op` lands the flag at the end of its
                            // busy (zero-delay schedule_signal).
                            queue.push(Reverse((st.clock, seq, Ev::Signal { sig, dst, val })));
                            seq += 1;
                        }
                        _ => {}
                    }
                    let item = match op {
                        PredOp::Busy { item, .. }
                        | PredOp::PutSignal { item, .. }
                        | PredOp::Iput { item, .. }
                        | PredOp::PutMapped { item, .. }
                        | PredOp::PutSingle { item, .. }
                        | PredOp::SignalSet { item, .. }
                        | PredOp::Wait { item, .. }
                        | PredOp::Quiet { item } => item,
                        PredOp::GridSync => grid_item,
                        PredOp::IterEnd => unreachable!("IterEnd never suspends"),
                    };
                    tally.charge_item(item, st.clock.since(st.busy_start));
                    st.idx += 1;
                    st.phase = Phase::Start;
                }
                Phase::Requeued => match op {
                    PredOp::GridSync => {
                        queue.push(Reverse((st.clock + cost.grid_sync(), seq, Ev::Resume(pe))));
                        seq += 1;
                        st.phase = Phase::Resumed;
                        break;
                    }
                    PredOp::Wait { .. } => {
                        queue.push(Reverse((st.clock + poll, seq, Ev::Resume(pe))));
                        seq += 1;
                        st.phase = Phase::Resumed;
                        break;
                    }
                    _ => unreachable!("only grid syncs and waits requeue"),
                },
                Phase::Start => {
                    st.busy_start = st.clock;
                    match op {
                        PredOp::Busy { dur, .. } => {
                            if dur.is_zero() {
                                // `busy(0)` neither suspends nor records.
                                st.idx += 1;
                                continue;
                            }
                            queue.push(Reverse((st.clock + dur, seq, Ev::Resume(pe))));
                            seq += 1;
                            st.phase = Phase::Resumed;
                            break;
                        }
                        PredOp::GridSync => {
                            // One block group per PE: the barrier releases
                            // immediately, but still passes through the
                            // run queue before the sync-latency advance.
                            queue.push(Reverse((st.clock, seq, Ev::Resume(pe))));
                            seq += 1;
                            st.phase = Phase::Requeued;
                            break;
                        }
                        PredOp::PutSignal {
                            dst, bytes, block, ..
                        } => {
                            let bw = if block {
                                cost.shmem_block_bw_scale
                            } else {
                                1.0
                            };
                            let wire = clocks.charge_dev(topo, pe, dst, bytes, st.clock, bw);
                            let raw = us(cost.shmem_put_us) + wire + us(cost.shmem_signal_us);
                            let done = {
                                let e = fifo.entry((pe, dst)).or_insert(SimTime::ZERO);
                                let d = (st.clock + raw).max(*e);
                                *e = d;
                                d
                            };
                            st.pending_done = done;
                            record_route(
                                &mut tally,
                                &mut link_pairs,
                                topo,
                                pe,
                                dst,
                                bytes,
                                bw,
                                wire,
                                true,
                            );
                            queue.push(Reverse((st.clock + issue, seq, Ev::Resume(pe))));
                            seq += 1;
                            st.phase = Phase::Resumed;
                            break;
                        }
                        PredOp::Iput { dst, elems, .. } => {
                            let bytes = elems * 8;
                            let wire = clocks.charge_dev(topo, pe, dst, bytes, st.clock, 1.0);
                            let dur =
                                us(cost.shmem_put_us) + us(cost.shmem_iput_elem_us) * elems + wire;
                            record_route(
                                &mut tally,
                                &mut link_pairs,
                                topo,
                                pe,
                                dst,
                                bytes,
                                1.0,
                                wire,
                                true,
                            );
                            queue.push(Reverse((st.clock + dur, seq, Ev::Resume(pe))));
                            seq += 1;
                            st.phase = Phase::Resumed;
                            break;
                        }
                        PredOp::PutMapped { dst, count, .. } => {
                            let bytes = count * 8;
                            let waves = count.div_ceil(1024).max(1);
                            let wire = clocks.charge_dev(topo, pe, dst, bytes, st.clock, 1.0);
                            let dur = us(cost.shmem_p_us) * waves + wire;
                            record_route(
                                &mut tally,
                                &mut link_pairs,
                                topo,
                                pe,
                                dst,
                                bytes,
                                1.0,
                                wire,
                                true,
                            );
                            queue.push(Reverse((st.clock + dur, seq, Ev::Resume(pe))));
                            seq += 1;
                            st.phase = Phase::Resumed;
                            break;
                        }
                        PredOp::PutSingle { dst, .. } => {
                            let wire = clocks.charge_dev(topo, pe, dst, 0, st.clock, 1.0);
                            let delivery = us(cost.shmem_p_us) + wire;
                            // The store completes `delivery - issue` after
                            // the issue busy ends (`ShmemCtx::p`).
                            st.pending_done = st.clock + issue + delivery.saturating_sub(issue);
                            record_route(
                                &mut tally,
                                &mut link_pairs,
                                topo,
                                pe,
                                dst,
                                0,
                                1.0,
                                wire,
                                false,
                            );
                            queue.push(Reverse((st.clock + issue, seq, Ev::Resume(pe))));
                            seq += 1;
                            st.phase = Phase::Resumed;
                            break;
                        }
                        PredOp::SignalSet { dst, .. } => {
                            let wire = clocks.charge_dev(topo, pe, dst, 0, st.clock, 1.0);
                            let dur = us(cost.shmem_signal_us) + wire;
                            record_route(
                                &mut tally,
                                &mut link_pairs,
                                topo,
                                pe,
                                dst,
                                0,
                                1.0,
                                wire,
                                false,
                            );
                            queue.push(Reverse((st.clock + dur, seq, Ev::Resume(pe))));
                            seq += 1;
                            st.phase = Phase::Resumed;
                            break;
                        }
                        PredOp::Wait { sig, val, .. } => {
                            if flags.get(&(sig, pe)).copied().unwrap_or(0) >= val {
                                // A satisfied wait still yields through
                                // the run queue before the poll advance.
                                queue.push(Reverse((st.clock, seq, Ev::Resume(pe))));
                                seq += 1;
                            } else {
                                parked.insert(pe, (sig, val));
                            }
                            st.phase = Phase::Requeued;
                            break;
                        }
                        PredOp::Quiet { .. } => {
                            let dur =
                                st.outstanding.saturating_since(st.clock) + cost.shmem_quiet();
                            queue.push(Reverse((st.clock + dur, seq, Ev::Resume(pe))));
                            seq += 1;
                            st.phase = Phase::Resumed;
                            break;
                        }
                        PredOp::IterEnd => {
                            st.iter_ends.push(st.clock);
                            st.idx += 1;
                            let completed =
                                pes.iter().map(|p| p.iter_ends.len()).min().unwrap_or(0);
                            while snaps.len() < completed {
                                snaps.push(tally.clone());
                            }
                        }
                    }
                }
            }
        }
    }

    if let Some((&pe, &(sig, val))) = parked.first_key_value() {
        return Err(CostError::Stuck { pe, sig, val });
    }

    Ok(Walk {
        n: n_pes,
        clocks: pes.iter().map(|p| p.clock).collect(),
        iter_ends: pes.into_iter().map(|p| p.iter_ends).collect(),
        tally,
        snaps,
        link_pairs,
        items,
        extrapolated_iters: 0,
        deltas: Vec::new(),
    })
}

/// Record a transfer's route bookkeeping: per-pair accounting plus
/// per-link serialization time and pair sharing (contention evidence).
#[allow(clippy::too_many_arguments)]
fn record_route(
    tally: &mut Tally,
    link_pairs: &mut [BTreeSet<(usize, usize)>],
    topo: &Topology,
    src: usize,
    dst: usize,
    bytes: u64,
    bw_scale: f64,
    wire: SimDur,
    data: bool,
) {
    if src == dst {
        return;
    }
    if data {
        let e = tally
            .routes
            .entry((src, dst))
            .or_insert((0, 0, SimDur::ZERO));
        e.0 += 1;
        e.1 += bytes;
        e.2 += wire;
    }
    let links = topo.links();
    for &idx in topo.route_links(src, dst) {
        tally.link_wire[idx] += CostModel::bw_time(bytes, links[idx].gbps() * bw_scale);
        link_pairs[idx].insert((src, dst));
    }
}

fn assemble(
    sdfg: &Sdfg,
    n_pes: usize,
    topology: TopologyKind,
    cost: &CostModel,
    topo: &Topology,
    mut w: Walk,
    extrapolated: bool,
) -> CostReport {
    // End-to-end: every host waits for its kernel, then pays the stream
    // sync; the machine ends at the latest host.
    let body_end = w.clocks.iter().copied().max().unwrap_or(SimTime::ZERO);
    let base = body_end.since(SimTime::ZERO) + cost.stream_sync();
    let drain = w.items.get("stream_sync".into());
    w.tally.item_busy[drain] += cost.stream_sync() * n_pes as u64;
    w.tally.item_count[drain] += n_pes as u64;

    // Contention: a link is shared when two distinct ordered pairs charged
    // it. The margin bounds FCFS tie-break divergence: each tie can shift
    // a completion by at most the competing serialization time, so twice
    // the shared-link serialization total is a comfortable envelope (and
    // property-tested to never underestimate).
    let mut shared_wire = SimDur::ZERO;
    let mut contended_links: BTreeSet<usize> = BTreeSet::new();
    for (idx, pairs) in w.link_pairs.iter().enumerate() {
        if pairs.len() >= 2 {
            contended_links.insert(idx);
            shared_wire += w.tally.link_wire[idx];
        }
    }
    let contended = !contended_links.is_empty();
    let margin = shared_wire * 2;

    let kernels = w
        .items
        .labels
        .iter()
        .enumerate()
        .map(|(i, label)| KernelCost {
            label: label.clone(),
            count: w.tally.item_count[i],
            busy: w.tally.item_busy[i],
        })
        .filter(|k| k.count > 0)
        .collect();
    let routes = w
        .tally
        .routes
        .iter()
        .map(|(&(src, dst), &(puts, bytes, wire))| RouteCost {
            src,
            dst,
            puts,
            bytes,
            wire,
            contended: topo
                .route_links(src, dst)
                .iter()
                .any(|i| contended_links.contains(i)),
        })
        .collect();

    CostReport {
        program: sdfg.name.clone(),
        n_pes,
        topology,
        base,
        margin,
        total: base + margin,
        contended,
        extrapolated,
        kernels,
        routes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::run_persistent_on;
    use crate::programs::{Jacobi1dSetup, Jacobi2dSetup};
    use crate::transform::{
        gpu_persistent_kernel, gpu_transform, mpi_to_nvshmem_with, nvshmem_array, to_cpu_free,
        PutGranularity,
    };
    use gpu_sim::ExecMode;

    fn jacobi1d(chunk: usize, tsteps: u64, n: usize) -> (Sdfg, Bindings) {
        let setup = Jacobi1dSetup::new(chunk, tsteps, n);
        let mut sdfg = setup.sdfg.clone();
        to_cpu_free(&mut sdfg).expect("to_cpu_free");
        (sdfg, setup.user_bindings())
    }

    fn jacobi2d(rows: usize, cols: usize, tsteps: u64, n: usize) -> (Sdfg, Bindings) {
        let setup = Jacobi2dSetup::new(rows, cols, tsteps, n);
        let mut sdfg = setup.sdfg.clone();
        to_cpu_free(&mut sdfg).expect("to_cpu_free");
        (sdfg, setup.user_bindings())
    }

    fn simulate(sdfg: &Sdfg, n: usize, user: &Bindings, tsteps: u64, kind: TopologyKind) -> SimDur {
        run_persistent_on(
            sdfg,
            n,
            user,
            tsteps,
            kind,
            ExecMode::TimingOnly,
            &|_, _| vec![],
        )
        .expect("persistent run")
        .total
    }

    /// 2-PE Jacobi-1D: per time step each PE sends its boundary element to
    /// the other twice (once per generation array) — route accounting is
    /// hand-computable: `2·T` puts of 8 bytes each per ordered pair.
    #[test]
    fn route_bytes_hand_computed_2pe() {
        let t = 3u64;
        let (sdfg, user) = jacobi1d(8, t, 2);
        let rep = predict_cost(&sdfg, 2, &user, TopologyKind::NvlinkAllToAll).expect("predict");
        assert_eq!(rep.routes.len(), 2);
        for r in &rep.routes {
            assert_eq!(
                (r.puts, r.bytes),
                (2 * t, 2 * t * 8),
                "route {:?}",
                (r.src, r.dst)
            );
            assert!(!r.contended);
        }
        let waits: u64 = rep
            .kernels
            .iter()
            .filter(|k| k.label.starts_with("wait:"))
            .map(|k| k.count)
            .sum();
        assert_eq!(waits, 2 * 2 * t, "one wait per put, both PEs");
    }

    /// 4-PE Jacobi-1D on the all-to-all fabric (dedicated link per ordered
    /// pair): the walk must reproduce the DES total exactly.
    #[test]
    fn exact_uncontended_1d() {
        for n in [2usize, 4] {
            let t = 5u64;
            let (sdfg, user) = jacobi1d(16, t, n);
            let rep = predict_cost(&sdfg, n, &user, TopologyKind::NvlinkAllToAll).expect("predict");
            let sim = simulate(&sdfg, n, &user, t, TopologyKind::NvlinkAllToAll);
            assert!(!rep.contended);
            assert_eq!(rep.margin, SimDur::ZERO);
            assert_eq!(rep.total, sim, "n={n}");
        }
    }

    /// 4-PE Jacobi-2D (2×2 grid: contiguous north/south puts plus strided
    /// east/west iput+quiet+signal triples) — exact on the all-to-all fabric.
    #[test]
    fn exact_uncontended_2d() {
        let t = 4u64;
        let (sdfg, user) = jacobi2d(6, 6, t, 4);
        let rep = predict_cost(&sdfg, 4, &user, TopologyKind::NvlinkAllToAll).expect("predict");
        let sim = simulate(&sdfg, 4, &user, t, TopologyKind::NvlinkAllToAll);
        assert!(!rep.contended);
        assert_eq!(rep.total, sim);
        assert!(rep.kernels.iter().any(|k| k.label.starts_with("iput:")));
    }

    /// Block-cooperative puts use a different bandwidth scale; the mirror
    /// must still be exact.
    #[test]
    fn exact_block_granularity() {
        let t = 4u64;
        let setup = Jacobi1dSetup::new(16, t, 2);
        let mut sdfg = setup.sdfg.clone();
        gpu_transform(&mut sdfg);
        mpi_to_nvshmem_with(&mut sdfg, PutGranularity::Block).expect("mpi_to_nvshmem");
        nvshmem_array(&mut sdfg);
        gpu_persistent_kernel(&mut sdfg).expect("gpu_persistent_kernel");
        let user = setup.user_bindings();
        let rep = predict_cost(&sdfg, 2, &user, TopologyKind::NvlinkAllToAll).expect("predict");
        let sim = simulate(&sdfg, 2, &user, t, TopologyKind::NvlinkAllToAll);
        assert_eq!(rep.total, sim);
        assert!(rep
            .kernels
            .iter()
            .any(|k| k.label.starts_with("put_block:")));
    }

    /// Long persistent loops take the steady-state shortcut — and must
    /// still land on the DES total exactly on an uncontended fabric.
    #[test]
    fn extrapolation_exact() {
        let t = 40u64;
        let (sdfg, user) = jacobi1d(16, t, 4);
        let rep = predict_cost(&sdfg, 4, &user, TopologyKind::NvlinkAllToAll).expect("predict");
        assert!(rep.extrapolated, "T=40 should extrapolate");
        let sim = simulate(&sdfg, 4, &user, t, TopologyKind::NvlinkAllToAll);
        assert_eq!(rep.total, sim);
        // The ledger must scale with the extrapolated iterations too.
        let puts: u64 = rep.routes.iter().map(|r| r.puts).sum();
        let exact = predict_with_full_walk(&sdfg, 4, &user);
        assert_eq!(puts, exact, "extrapolated route counts");
    }

    fn predict_with_full_walk(sdfg: &Sdfg, n: usize, user: &Bindings) -> u64 {
        let cost = CostModel::a100_hgx();
        let topo = Topology::build(TopologyKind::NvlinkAllToAll, n, &cost);
        let w = walk(sdfg, n, user, &cost, &topo, None).expect("walk");
        w.tally.routes.values().map(|&(p, _, _)| p).sum()
    }

    /// On fabrics with shared links the prediction must never
    /// underestimate, and stay within the documented 10% bound.
    #[test]
    fn contended_never_underestimates() {
        let t = 5u64;
        let (sdfg, user) = jacobi2d(6, 6, t, 4);
        for kind in [TopologyKind::PcieTree, TopologyKind::TwoNode] {
            let rep = predict_cost(&sdfg, 4, &user, kind).expect("predict");
            let sim = simulate(&sdfg, 4, &user, t, kind);
            assert!(rep.total >= sim, "{kind:?}: under-estimate");
            assert!(
                rep.rel_err(sim) <= 0.10,
                "{kind:?}: err {}",
                rep.rel_err(sim)
            );
        }
    }

    /// Ledger ordering helper.
    #[test]
    fn top_kernels_sorted() {
        let (sdfg, user) = jacobi1d(16, 3, 2);
        let rep = predict_cost(&sdfg, 2, &user, TopologyKind::NvlinkAllToAll).expect("predict");
        let top = rep.top_kernels(3);
        assert_eq!(top.len(), 3);
        assert!(top[0].busy >= top[1].busy && top[1].busy >= top[2].busy);
    }

    /// MPI programs fail the same legality gate as the backend.
    #[test]
    fn rejects_mpi_program() {
        let setup = Jacobi1dSetup::new(8, 2, 2);
        let err = predict_cost(
            &setup.sdfg,
            2,
            &setup.user_bindings(),
            TopologyKind::NvlinkAllToAll,
        )
        .unwrap_err();
        assert!(matches!(err, CostError::Illegal(_)));
    }

    /// `verify_and_predict` returns both artifacts for clean programs.
    #[test]
    fn verify_and_predict_clean() {
        let (sdfg, user) = jacobi1d(8, 2, 2);
        let (report, cost) = verify_and_predict(&sdfg, 2, &user, TopologyKind::NvlinkAllToAll);
        assert!(report.clean());
        assert!(cost.is_some());
    }
}
