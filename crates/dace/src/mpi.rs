//! The GPU-aware MPI substrate the *discrete* lowering targets.
//!
//! Models single-node GPU-aware MPI the way the paper's Fig 5.1 observes it
//! behaving under DaCe: every message goes through a staging buffer on the
//! destination device (the pipelined D2D copy inside the MPI library),
//! stream synchronizations bracket the calls, and strided datatypes
//! (`MPI_Type_vector`) pay a host-side pack/unpack cost. Flow control is a
//! rendezvous: a sender may not overwrite the staging buffer until the
//! receiver has consumed the previous message.

use crate::expr::Bindings;
use crate::ir::{Cf, LibNode, Op, Sdfg};
use gpu_sim::{Buf, DevId, Machine};
use sim_des::Flag;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One point-to-point channel `(src, dst, tag)`.
pub struct Channel {
    /// Sender PE.
    pub src: usize,
    /// Receiver PE.
    pub dst: usize,
    /// Message tag.
    pub tag: u32,
    /// Elements per message.
    pub count: usize,
    /// Landing buffer on the destination device.
    pub staging: Buf,
    /// Count of delivered messages (sender signals, receiver waits).
    pub msg: Flag,
    /// Count of consumed messages (receiver signals, sender waits).
    pub ack: Flag,
}

/// Channel key.
pub type ChanKey = (usize, usize, u32);

/// All channels of one program instance.
pub struct MpiSim {
    channels: BTreeMap<ChanKey, Arc<Channel>>,
}

impl MpiSim {
    /// Scan the program and create one channel per active `(src, dst, tag)`
    /// send. `bindings_of(pe)` supplies each PE's symbol table; subset
    /// counts are resolved against the (uniform) array shapes.
    pub fn build(
        sdfg: &Sdfg,
        n_pes: usize,
        machine: &Machine,
        bindings_of: &dyn Fn(usize) -> Bindings,
        shape_of: &dyn Fn(&str) -> Vec<i64>,
    ) -> MpiSim {
        let mut channels = BTreeMap::new();
        for pe in 0..n_pes {
            let b = bindings_of(pe);
            // Guards never reference the loop variable; scanning the loop
            // body once per PE enumerates every channel.
            fn walk(
                cfs: &[Cf],
                pe: usize,
                b: &Bindings,
                machine: &Machine,
                shape_of: &dyn Fn(&str) -> Vec<i64>,
                channels: &mut BTreeMap<ChanKey, Arc<Channel>>,
            ) {
                for cf in cfs {
                    match cf {
                        Cf::Loop { body, .. } => walk(body, pe, b, machine, shape_of, channels),
                        Cf::State(state) => {
                            for op in &state.ops {
                                if !op.active(b) {
                                    continue;
                                }
                                if let Op::Lib(LibNode::MpiIsend { buf, dest, tag }) = &op.op {
                                    let dst = dest.eval(b);
                                    assert!(dst >= 0, "negative destination rank on tag {tag}");
                                    let dst = dst as usize;
                                    let resolved = buf.resolve(&shape_of(&buf.array), b);
                                    let key = (pe, dst, *tag);
                                    channels.entry(key).or_insert_with(|| {
                                        Arc::new(Channel {
                                            src: pe,
                                            dst,
                                            tag: *tag,
                                            count: resolved.count,
                                            staging: machine.alloc(
                                                DevId(dst),
                                                format!("mpi.stage.{pe}->{dst}.t{tag}"),
                                                resolved.count,
                                            ),
                                            msg: machine.flag(0),
                                            ack: machine.flag(0),
                                        })
                                    });
                                }
                            }
                        }
                    }
                }
            }
            walk(&sdfg.body, pe, &b, machine, shape_of, &mut channels);
        }
        MpiSim { channels }
    }

    /// Look up a channel; panics with context when the program sends on an
    /// unregistered route (a matching bug).
    pub fn channel(&self, src: usize, dst: usize, tag: u32) -> &Arc<Channel> {
        self.channels
            .get(&(src, dst, tag))
            .unwrap_or_else(|| panic!("no MPI channel {src} -> {dst} tag {tag}"))
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// True when no channels exist.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::Jacobi1dSetup;
    use gpu_sim::{CostModel, ExecMode};

    #[test]
    fn jacobi1d_channel_enumeration() {
        let setup = Jacobi1dSetup::new(8, 2, 4);
        let machine = Machine::new(4, CostModel::a100_hgx(), ExecMode::Full);
        let user = setup.user_bindings();
        let sdfg = setup.sdfg.clone();
        let shapes = |name: &str| -> Vec<i64> {
            let b = sdfg.bindings(0, 4, &user);
            sdfg.array(name).shape.iter().map(|e| e.eval(&b)).collect()
        };
        let mpi = MpiSim::build(
            &setup.sdfg,
            4,
            &machine,
            &|pe| setup.sdfg.bindings(pe, 4, &user),
            &shapes,
        );
        // Interior links: 3 neighbor pairs x 2 directions x 2 arrays.
        assert_eq!(mpi.len(), 12);
        let ch = mpi.channel(1, 0, 0);
        assert_eq!(ch.count, 1);
        assert_eq!(ch.staging.place().device(), Some(DevId(0)));
    }

    #[test]
    #[should_panic(expected = "no MPI channel")]
    fn unknown_channel_panics() {
        let setup = Jacobi1dSetup::new(8, 1, 2);
        let machine = Machine::new(2, CostModel::a100_hgx(), ExecMode::Full);
        let user = setup.user_bindings();
        let sdfg = setup.sdfg.clone();
        let shapes = |name: &str| -> Vec<i64> {
            let b = sdfg.bindings(0, 2, &user);
            sdfg.array(name).shape.iter().map(|e| e.eval(&b)).collect()
        };
        let mpi = MpiSim::build(
            &setup.sdfg,
            2,
            &machine,
            &|pe| setup.sdfg.bindings(pe, 2, &user),
            &shapes,
        );
        let _ = mpi.channel(0, 0, 99);
    }
}
