//! Code generation: execute an SDFG on the simulated multi-GPU node.
//!
//! Two backends, mirroring the paper's comparison:
//!
//! * [`run_discrete`] — the existing DaCe distributed workflow (§5.2):
//!   per-state discrete kernel launches, MPI library nodes expanded to
//!   GPU-aware MPI with staging copies, stream synchronizations around
//!   every communication call (the Fig 5.1 pattern with "little to no
//!   overlap");
//! * [`run_persistent`] — the CPU-Free backend (§5.3): one persistent
//!   cooperative kernel per PE, NVSHMEM library nodes expanded in-kernel,
//!   communication scheduled conservatively (single thread followed by a
//!   grid sync, §5.3.2).

use crate::analysis::{map_footprint, CommGraph, IntervalSet};
use crate::expr::Bindings;
use crate::ir::*;
use crate::mpi::{ChanKey, MpiSim};
use crate::programs::{jacobi1d_point, jacobi2d_point};
use crate::verify::{verify_sdfg, VerifyError};
use cpufree_core::{launch_cpu_free, RunStats};
use gpu_sim::{
    BlockGroup, Buf, CheckReport, CostModel, DevId, ExecMode, HostCtx, KernelCtx, Machine, Stream,
    TopologyKind,
};
use nvshmem_sim::{ShmemCtx, ShmemWorld, SymArray, SymSignal};
use sim_des::{us, Category, Cmp, SignalOp, SimDur, SimTime};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// Lowering/legality errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// A map is not scheduled for the requested backend.
    MapNotScheduled(String),
    /// MPI library nodes cannot run inside a persistent kernel.
    MpiInPersistent,
    /// A put targets an array not on the symmetric heap (§5.3.3).
    PutTargetNotSymmetric(String),
    /// `PutmemSignal` used on a strided subset (must be `Iput`).
    StridedPutmemSignal(String),
    /// Array shape differs across PEs.
    NonUniformShape(String),
    /// NVSHMEM nodes are not supported by the discrete backend.
    NvshmemInDiscrete,
    /// The static protocol verifier rejected the program (lost signals,
    /// nbi source reuse, halo gaps, ... — see the embedded report).
    ProtocolViolation(VerifyError),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::MapNotScheduled(m) => {
                write!(f, "map `{m}` is not scheduled for this backend")
            }
            LowerError::MpiInPersistent => {
                write!(f, "MPI library nodes cannot run inside a persistent kernel")
            }
            LowerError::PutTargetNotSymmetric(a) => write!(
                f,
                "array `{a}` is a put target but not GPU_NVSHMEM storage \
                 (run the NVSHMEMArray transformation)"
            ),
            LowerError::StridedPutmemSignal(a) => write!(
                f,
                "PutmemSignal on strided subset of `{a}` (expand to iput + signal)"
            ),
            LowerError::NonUniformShape(a) => {
                write!(f, "array `{a}` resolves to different shapes across PEs")
            }
            LowerError::NvshmemInDiscrete => {
                write!(f, "NVSHMEM nodes are not supported by the discrete backend")
            }
            LowerError::ProtocolViolation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LowerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LowerError::ProtocolViolation(e) => Some(e),
            _ => None,
        }
    }
}

/// A lowered-and-executed program's results.
#[derive(Debug)]
pub struct Lowered {
    /// End-to-end virtual time.
    pub total: SimDur,
    /// Trace-derived measurements.
    pub stats: RunStats,
    /// Final per-PE contents of every array.
    pub finals: BTreeMap<String, Vec<Vec<f64>>>,
    /// Deterministic checksum of all finals.
    pub checksum: u64,
}

/// Per-array instantiation.
enum ArrInst {
    Plain(Vec<Buf>),
    Sym(SymArray),
}

impl ArrInst {
    fn local(&self, pe: usize) -> &Buf {
        match self {
            ArrInst::Plain(v) => &v[pe],
            ArrInst::Sym(s) => s.local(pe),
        }
    }

    fn sym(&self) -> Option<&SymArray> {
        match self {
            ArrInst::Sym(s) => Some(s),
            ArrInst::Plain(_) => None,
        }
    }
}

/// Everything the per-PE executors share.
struct Instance {
    sdfg: Sdfg,
    n: usize,
    user: Bindings,
    machine: Machine,
    arrays: BTreeMap<String, ArrInst>,
    shapes: BTreeMap<String, Vec<i64>>,
    sigs: BTreeMap<u32, SymSignal>,
    world: ShmemWorld,
    /// Dynamic checker enabled: annotate map/copy footprints and iteration
    /// commits so the happens-before tracker sees SDFG-level accesses.
    checked: bool,
    /// Per PE: may this rank report iteration commits to the divergence
    /// monitor? (See [`CommGraph::iteration_eligible`].)
    iter_eligible: Vec<bool>,
}

impl Instance {
    fn bindings(&self, pe: usize) -> Bindings {
        self.sdfg.bindings(pe, self.n, &self.user)
    }

    fn buf(&self, name: &str, pe: usize) -> &Buf {
        self.arrays
            .get(name)
            .unwrap_or_else(|| panic!("unknown array `{name}`"))
            .local(pe)
    }

    fn shape(&self, name: &str) -> &[i64] {
        &self.shapes[name]
    }
}

fn build_instance(
    sdfg: &Sdfg,
    n_pes: usize,
    user: &Bindings,
    exec: ExecMode,
    init: &dyn Fn(usize, &str) -> Vec<f64>,
) -> Result<Arc<Instance>, LowerError> {
    let machine = Machine::new(n_pes, CostModel::a100_hgx(), exec);
    build_instance_on(sdfg, n_pes, user, machine, init)
}

/// Like [`build_instance`] but on a caller-provided machine (custom
/// topology, checker enabled, ...). The machine's device count must match
/// `n_pes`.
fn build_instance_on(
    sdfg: &Sdfg,
    n_pes: usize,
    user: &Bindings,
    machine: Machine,
    init: &dyn Fn(usize, &str) -> Vec<f64>,
) -> Result<Arc<Instance>, LowerError> {
    let exec = machine.exec_mode();
    let checked = machine.checker().is_some();
    let iter_eligible = if checked {
        CommGraph::build(sdfg, n_pes, user).iteration_eligible()
    } else {
        vec![false; n_pes]
    };
    let world = ShmemWorld::init(&machine);
    // Resolve shapes; require uniformity across PEs.
    let mut shapes = BTreeMap::new();
    for a in &sdfg.arrays {
        let b0 = sdfg.bindings(0, n_pes, user);
        let s0: Vec<i64> = a.shape.iter().map(|e| e.eval(&b0)).collect();
        for pe in 1..n_pes {
            let b = sdfg.bindings(pe, n_pes, user);
            let s: Vec<i64> = a.shape.iter().map(|e| e.eval(&b)).collect();
            if s != s0 {
                return Err(LowerError::NonUniformShape(a.name.clone()));
            }
        }
        shapes.insert(a.name.clone(), s0);
    }
    // Allocate and initialize.
    let mut arrays = BTreeMap::new();
    for a in &sdfg.arrays {
        let len: i64 = shapes[&a.name].iter().product();
        let len = len as usize;
        let inst = match a.storage {
            Storage::GpuNvshmem => ArrInst::Sym(world.malloc(a.name.clone(), len)),
            _ => ArrInst::Plain(
                (0..n_pes)
                    .map(|pe| machine.alloc(DevId(pe), format!("{}@{pe}", a.name), len))
                    .collect(),
            ),
        };
        if exec == ExecMode::Full {
            for pe in 0..n_pes {
                let data = init(pe, &a.name);
                assert_eq!(data.len(), len, "init size mismatch on `{}`", a.name);
                inst.local(pe).write_slice(0, &data);
            }
        }
        arrays.insert(a.name.clone(), inst);
    }
    // Signal cells used by NVSHMEM nodes.
    let mut sigs = BTreeMap::new();
    sdfg.visit_states(&mut |state| {
        for op in &state.ops {
            if let Op::Lib(lib) = &op.op {
                let id = match lib {
                    LibNode::PutmemSignal { sig, .. }
                    | LibNode::PutmemSignalBlock { sig, .. }
                    | LibNode::SignalWait { sig, .. }
                    | LibNode::SignalOp { sig, .. } => Some(*sig),
                    _ => None,
                };
                if let Some(id) = id {
                    sigs.entry(id).or_insert_with(|| world.signal(0));
                }
            }
        }
    });
    Ok(Arc::new(Instance {
        sdfg: sdfg.clone(),
        n: n_pes,
        user: user.clone(),
        machine,
        arrays,
        shapes,
        sigs,
        world,
        checked,
        iter_eligible,
    }))
}

/// The static verification gate both backends run after their structural
/// legality checks: malformed or mis-transformed programs fail here, at
/// lowering time, instead of deadlocking (or silently racing) in gpu-sim.
pub(crate) fn verify_gate(sdfg: &Sdfg, n_pes: usize, user: &Bindings) -> Result<(), LowerError> {
    let report = verify_sdfg(sdfg, n_pes, user);
    if report.clean() {
        Ok(())
    } else {
        Err(LowerError::ProtocolViolation(VerifyError { report }))
    }
}

/// Execute a map's tasklet functionally (Full mode only).
fn exec_map(inst: &Instance, m: &MapOp, pe: usize, b: &Bindings) {
    match &m.tasklet {
        TaskletKind::Jacobi1d { src, dst } => {
            let (_, lo, hi) = &m.range[0];
            let (lo, hi) = (lo.eval(b) as usize, hi.eval(b) as usize);
            let s = inst.buf(src, pe);
            let d = inst.buf(dst, pe);
            s.with(|sv| {
                d.with_mut(|dv| {
                    for i in lo..=hi {
                        dv[i] = jacobi1d_point(sv[i - 1], sv[i], sv[i + 1]);
                    }
                })
            });
        }
        TaskletKind::Jacobi2d { src, dst } => {
            let (_, ilo, ihi) = &m.range[0];
            let (_, jlo, jhi) = &m.range[1];
            let (ilo, ihi) = (ilo.eval(b) as usize, ihi.eval(b) as usize);
            let (jlo, jhi) = (jlo.eval(b) as usize, jhi.eval(b) as usize);
            let st = inst.shape(src)[1] as usize;
            let s = inst.buf(src, pe);
            let d = inst.buf(dst, pe);
            s.with(|sv| {
                d.with_mut(|dv| {
                    for i in ilo..=ihi {
                        for j in jlo..=jhi {
                            dv[i * st + j] = jacobi2d_point(
                                sv[i * st + j],
                                sv[(i - 1) * st + j],
                                sv[(i + 1) * st + j],
                                sv[i * st + j + 1],
                                sv[i * st + j - 1],
                            );
                        }
                    }
                })
            });
        }
    }
}

/// Roofline cost of a map execution; discrete kernels pay the cold-cache
/// relaunch penalty (persistent kernels retain cache/shared-memory state).
/// Shared with the static cost predictor ([`crate::cost`]) so predicted
/// and simulated map charges come from one formula.
pub(crate) fn map_cost(cost: &CostModel, points: u64, discrete: bool) -> SimDur {
    let base = cost.sweep(points * 16, points * 5, 1.0);
    if discrete {
        base * cost.discrete_cache_penalty
    } else {
        base
    }
}

// ------------------------------------------------------------------
// Discrete backend
// ------------------------------------------------------------------

/// Validate and run the CPU-controlled (discrete, MPI) backend.
pub fn run_discrete(
    sdfg: &Sdfg,
    n_pes: usize,
    user: &Bindings,
    iterations: u64,
    exec: ExecMode,
    init: &dyn Fn(usize, &str) -> Vec<f64>,
) -> Result<Lowered, LowerError> {
    // Legality: all maps on GpuDevice, no NVSHMEM nodes.
    let mut err = None;
    sdfg.visit_states(&mut |state| {
        for op in &state.ops {
            match &op.op {
                Op::Map(m) if m.schedule != Schedule::GpuDevice => {
                    err.get_or_insert(LowerError::MapNotScheduled(m.name.clone()));
                }
                Op::Lib(
                    LibNode::PutmemSignal { .. }
                    | LibNode::PutmemSignalBlock { .. }
                    | LibNode::PutMapped { .. }
                    | LibNode::SignalWait { .. }
                    | LibNode::Iput { .. }
                    | LibNode::PutSingle { .. }
                    | LibNode::SignalOp { .. }
                    | LibNode::Quiet,
                ) => {
                    err.get_or_insert(LowerError::NvshmemInDiscrete);
                }
                _ => {}
            }
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    verify_gate(sdfg, n_pes, user)?;
    let inst = build_instance(sdfg, n_pes, user, exec, init)?;
    let shapes = inst.shapes.clone();
    let mpi = Arc::new(MpiSim::build(
        sdfg,
        n_pes,
        &inst.machine,
        &|pe| inst.bindings(pe),
        &|name| shapes[name].clone(),
    ));
    for pe in 0..n_pes {
        let inst = Arc::clone(&inst);
        let mpi = Arc::clone(&mpi);
        inst.machine
            .clone()
            .spawn_host(format!("rank{pe}"), move |host| {
                let mut b = inst.bindings(pe);
                let stream = host.create_stream(DevId(pe), "comp");
                let mut counters: HashMap<ChanKey, u64> = HashMap::new();
                let body = inst.sdfg.body.clone();
                exec_cf_discrete(host, &stream, &inst, &mpi, pe, &mut b, &mut counters, &body);
                // Final device synchronization at program end.
                host.sync_stream(&stream);
            });
    }
    let end = inst
        .machine
        .run()
        .unwrap_or_else(|e| panic!("discrete lowering run failed: {e}"));
    Ok(collect(&inst, end, iterations))
}

#[allow(clippy::too_many_arguments)]
fn exec_cf_discrete(
    host: &mut HostCtx<'_>,
    stream: &Stream,
    inst: &Arc<Instance>,
    mpi: &MpiSim,
    pe: usize,
    b: &mut Bindings,
    counters: &mut HashMap<ChanKey, u64>,
    body: &[Cf],
) {
    for cf in body {
        match cf {
            Cf::Loop {
                var,
                start,
                end,
                body,
                ..
            } => {
                let (lo, hi) = (start.eval(b), end.eval(b));
                for v in lo..=hi {
                    b.insert(var.clone(), v);
                    exec_cf_discrete(host, stream, inst, mpi, pe, b, counters, body);
                }
            }
            Cf::State(state) => {
                exec_state_discrete(host, stream, inst, mpi, pe, b, counters, state);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_state_discrete(
    host: &mut HostCtx<'_>,
    stream: &Stream,
    inst: &Arc<Instance>,
    mpi: &MpiSim,
    pe: usize,
    b: &Bindings,
    counters: &mut HashMap<ChanKey, u64>,
    state: &State,
) {
    let cost = inst.machine.cost().clone();
    let mut pending: Vec<(ChanKey, DataRef)> = Vec::new();
    for gop in &state.ops {
        if !gop.active(b) {
            continue;
        }
        match &gop.op {
            Op::Map(m) => {
                let points = m.volume(b);
                let dur = map_cost(&cost, points, true);
                let inst2 = Arc::clone(inst);
                let m2 = m.clone();
                let b2 = b.clone();
                host.launch(stream, m.name.clone(), move |k| {
                    k.busy(Category::Compute, m2.name.clone(), dur);
                    if k.exec_mode() == ExecMode::Full {
                        exec_map(&inst2, &m2, pe, &b2);
                    }
                });
            }
            Op::Copy { dst, src } => {
                let rd = dst.resolve(inst.shape(&dst.array), b);
                let rs = src.resolve(inst.shape(&src.array), b);
                assert_eq!(rd.count, rs.count, "copy size mismatch");
                assert!(
                    rd.stride == 1 && rs.stride == 1,
                    "strided Copy not supported in discrete backend"
                );
                let dbuf = inst.buf(&dst.array, pe).clone();
                let sbuf = inst.buf(&src.array, pe).clone();
                host.memcpy_async(stream, &dbuf, rd.offset, &sbuf, rs.offset, rs.count);
            }
            Op::Lib(LibNode::MpiIsend { buf, dest, tag }) => {
                // Fig 5.1: generated code synchronizes the stream before
                // every communication call.
                host.sync_stream(stream);
                let dst = dest.eval(b) as usize;
                let ch = Arc::clone(mpi.channel(pe, dst, *tag));
                let cnt = counters.entry((pe, dst, *tag)).or_insert(0);
                *cnt += 1;
                let cnt = *cnt;
                // Rendezvous: the receiver must have consumed the previous
                // message before the staging buffer is reused.
                host.wait_flag(ch.ack, Cmp::Ge, cnt - 1, "MPI send rendezvous");
                let r = buf.resolve(inst.shape(&buf.array), b);
                let bytes = (r.count * 8) as u64;
                let sbuf = inst.buf(&buf.array, pe).clone();
                if r.stride == 1 {
                    host.memcpy_async(stream, &ch.staging, 0, &sbuf, r.offset, r.count);
                    host.sync_stream(stream);
                } else {
                    // MPI_Type_vector: host-path pack, then a D2D copy to
                    // the remote staging buffer over the routed link.
                    let dur = cost.mpi_vector_pack(r.count as u64)
                        + inst
                            .machine
                            .transport()
                            .p2p(DevId(pe), DevId(dst), bytes, host.now());
                    host.agent_mut().busy(
                        Category::Comm,
                        format!("MPI_Type_vector pack x{}", r.count),
                        dur,
                    );
                    ch.staging
                        .copy_strided_from(0, 1, &sbuf, r.offset, r.stride, r.count);
                }
                host.agent_mut()
                    .busy(Category::Api, "MPI_Isend", cost.api_call());
                let msg_dur = inst.machine.transport().mpi_msg(pe, dst, bytes, host.now());
                host.agent_mut()
                    .schedule_signal(ch.msg, SignalOp::Add, 1, msg_dur);
            }
            Op::Lib(LibNode::MpiIrecv { buf, src, tag }) => {
                host.agent_mut()
                    .busy(Category::Api, "MPI_Irecv", cost.api_call());
                let from = src.eval(b) as usize;
                pending.push(((from, pe, *tag), buf.clone()));
            }
            Op::Lib(LibNode::MpiWaitall) => {
                for (key, buf) in pending.drain(..) {
                    let ch = Arc::clone(mpi.channel(key.0, key.1, key.2));
                    let cnt = counters.entry(key).or_insert(0);
                    *cnt += 1;
                    let cnt = *cnt;
                    host.wait_flag(ch.msg, Cmp::Ge, cnt, "MPI_Waitall");
                    host.agent_mut()
                        .busy(Category::Comm, "MPI recv path", us(cost.mpi_msg_us));
                    let r = buf.resolve(inst.shape(&buf.array), b);
                    let bytes = (r.count * 8) as u64;
                    let dbuf = inst.buf(&buf.array, pe).clone();
                    if r.stride == 1 {
                        host.memcpy_async(stream, &dbuf, r.offset, &ch.staging, 0, r.count);
                        host.sync_stream(stream);
                    } else {
                        // Unpack: the pipelined D2D copy inside the MPI
                        // library crosses the sender's route once more.
                        let dur = cost.mpi_vector_pack(r.count as u64)
                            + inst.machine.transport().p2p(
                                DevId(key.0),
                                DevId(pe),
                                bytes,
                                host.now(),
                            );
                        host.agent_mut().busy(
                            Category::Comm,
                            format!("MPI_Type_vector unpack x{}", r.count),
                            dur,
                        );
                        dbuf.copy_strided_from(r.offset, r.stride, &ch.staging, 0, 1, r.count);
                    }
                    host.agent_mut().signal(ch.ack, SignalOp::Add, 1);
                }
            }
            Op::Lib(_) => unreachable!("validated: no NVSHMEM nodes in discrete backend"),
        }
    }
}

// ------------------------------------------------------------------
// Persistent (CPU-Free) backend
// ------------------------------------------------------------------

/// Structural legality of an SDFG for the persistent backend: all maps on
/// the persistent schedule, no MPI nodes, symmetric put targets,
/// contiguous `PutmemSignal` subsets.
pub(crate) fn persistent_legality(sdfg: &Sdfg) -> Result<(), LowerError> {
    let mut err: Option<LowerError> = None;
    sdfg.visit_states(&mut |state| {
        for op in &state.ops {
            match &op.op {
                Op::Map(m) if m.schedule != Schedule::GpuPersistent => {
                    err.get_or_insert(LowerError::MapNotScheduled(m.name.clone()));
                }
                Op::Lib(
                    LibNode::MpiIsend { .. } | LibNode::MpiIrecv { .. } | LibNode::MpiWaitall,
                ) => {
                    err.get_or_insert(LowerError::MpiInPersistent);
                }
                Op::Lib(
                    LibNode::PutmemSignal { dst, src, .. }
                    | LibNode::PutmemSignalBlock { dst, src, .. },
                ) => {
                    if sdfg.array(&dst.array).storage != Storage::GpuNvshmem {
                        err.get_or_insert(LowerError::PutTargetNotSymmetric(dst.array.clone()));
                    }
                    if !dst.is_structurally_contiguous() || !src.is_structurally_contiguous() {
                        err.get_or_insert(LowerError::StridedPutmemSignal(dst.array.clone()));
                    }
                }
                Op::Lib(
                    LibNode::Iput { dst, .. }
                    | LibNode::PutSingle { dst, .. }
                    | LibNode::PutMapped { dst, .. },
                ) if sdfg.array(&dst.array).storage != Storage::GpuNvshmem => {
                    err.get_or_insert(LowerError::PutTargetNotSymmetric(dst.array.clone()));
                }
                _ => {}
            }
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    Ok(())
}

/// Spawn the per-PE persistent control kernels and run the machine.
fn launch_persistent(inst: &Arc<Instance>, name: &str) -> Result<SimTime, sim_des::SimError> {
    let sm = inst.machine.spec().sm_count as u64;
    let inst_l = Arc::clone(inst);
    launch_cpu_free(&inst.machine.clone(), name, 1024, move |pe| {
        let inst = Arc::clone(&inst_l);
        vec![BlockGroup::new("ctrl", sm, move |k| {
            let mut b = inst.bindings(pe);
            let world = inst.world.clone();
            let mut sh = ShmemCtx::new(&world, k);
            let body = inst.sdfg.body.clone();
            exec_cf_persistent(k, &mut sh, &inst, pe, &mut b, &body);
        })]
    })
}

/// Validate and run the CPU-Free (persistent, NVSHMEM) backend.
pub fn run_persistent(
    sdfg: &Sdfg,
    n_pes: usize,
    user: &Bindings,
    iterations: u64,
    exec: ExecMode,
    init: &dyn Fn(usize, &str) -> Vec<f64>,
) -> Result<Lowered, LowerError> {
    persistent_legality(sdfg)?;
    verify_gate(sdfg, n_pes, user)?;
    let inst = build_instance(sdfg, n_pes, user, exec, init)?;
    let end = launch_persistent(&inst, &sdfg.name)
        .unwrap_or_else(|e| panic!("persistent lowering run failed: {e}"));
    Ok(collect(&inst, end, iterations))
}

/// [`run_persistent`] on an explicit topology preset, without the dynamic
/// checker — the configuration the static cost predictor
/// ([`crate::cost::predict_cost`]) is validated against: identical timing
/// to [`run_persistent`] (the checker adds no virtual time, but this
/// avoids its bookkeeping), with the interconnect selectable.
pub fn run_persistent_on(
    sdfg: &Sdfg,
    n_pes: usize,
    user: &Bindings,
    iterations: u64,
    topology: TopologyKind,
    exec: ExecMode,
    init: &dyn Fn(usize, &str) -> Vec<f64>,
) -> Result<Lowered, LowerError> {
    persistent_legality(sdfg)?;
    verify_gate(sdfg, n_pes, user)?;
    let machine = Machine::with_topology(n_pes, CostModel::a100_hgx(), topology, exec);
    let inst = build_instance_on(sdfg, n_pes, user, machine, init)?;
    let end = launch_persistent(&inst, &sdfg.name)
        .unwrap_or_else(|e| panic!("persistent lowering run failed: {e}"));
    Ok(collect(&inst, end, iterations))
}

/// The result of a dynamically-checked persistent run: the happens-before
/// checker's report alongside the (possibly absent, on deadlock) execution
/// results.
#[derive(Debug)]
pub struct CheckedRun {
    /// Execution results; `None` when the simulated run deadlocked.
    pub lowered: Option<Lowered>,
    /// The dynamic checker's findings (races, lost signals, divergence).
    pub report: CheckReport,
    /// Did the run deadlock or time out instead of completing?
    pub deadlocked: bool,
}

/// Run the CPU-Free backend under the dynamic happens-before checker, with
/// SDFG-level map/copy footprints and per-iteration commits annotated.
///
/// With `gate` set, the static verifier runs first and rejects
/// non-conforming programs as [`LowerError::ProtocolViolation`] — the
/// production configuration. The differential test harness passes
/// `gate: false` to execute known-bad programs and compare the dynamic
/// findings against the static report.
pub fn run_persistent_checked(
    sdfg: &Sdfg,
    n_pes: usize,
    user: &Bindings,
    iterations: u64,
    topology: TopologyKind,
    gate: bool,
    init: &dyn Fn(usize, &str) -> Vec<f64>,
) -> Result<CheckedRun, LowerError> {
    persistent_legality(sdfg)?;
    if gate {
        verify_gate(sdfg, n_pes, user)?;
    }
    let machine = Machine::with_topology(n_pes, CostModel::a100_hgx(), topology, ExecMode::Full)
        .with_checker();
    let inst = build_instance_on(sdfg, n_pes, user, machine, init)?;
    let (lowered, deadlocked) = match launch_persistent(&inst, &sdfg.name) {
        Ok(end) => (Some(collect(&inst, end, iterations)), false),
        // Deadlock/timeout: the machine already converted still-blocked
        // waits into lost-signal diagnostics on the checker.
        Err(_) => (None, true),
    };
    let report = inst.machine.checker().expect("checker enabled").report();
    Ok(CheckedRun {
        lowered,
        report,
        deadlocked,
    })
}

fn exec_cf_persistent(
    k: &mut KernelCtx<'_>,
    sh: &mut ShmemCtx,
    inst: &Instance,
    pe: usize,
    b: &mut Bindings,
    body: &[Cf],
) {
    for cf in body {
        match cf {
            Cf::Loop {
                var,
                start,
                end,
                body,
                persistent,
            } => {
                let (lo, hi) = (start.eval(b), end.eval(b));
                for v in lo..=hi {
                    b.insert(var.clone(), v);
                    exec_cf_persistent(k, sh, inst, pe, b, body);
                    // Report the iteration commit to the divergence monitor
                    // (eligible ranks only — see `iteration_eligible`).
                    if *persistent && inst.checked && inst.iter_eligible[pe] {
                        if let Some(chk) = inst.machine.checker() {
                            chk.iteration(pe, v.max(0) as u64, &format!("pe{pe}"), k.now());
                        }
                    }
                }
            }
            Cf::State(state) => exec_state_persistent(k, sh, inst, pe, b, state),
        }
    }
}

fn exec_state_persistent(
    k: &mut KernelCtx<'_>,
    sh: &mut ShmemCtx,
    inst: &Instance,
    pe: usize,
    b: &Bindings,
    state: &State,
) {
    let cost = k.cost().clone();
    // §5.3.2: communication is scheduled in a single thread; a grid-wide
    // barrier separates it from data-parallel maps.
    let mut comm_since_sync = false;
    for gop in &state.ops {
        if !gop.active(b) {
            continue;
        }
        match &gop.op {
            Op::Map(m) => {
                if comm_since_sync {
                    k.grid_sync();
                    comm_since_sync = false;
                }
                if inst.checked {
                    // Exact per-interval footprints: a bounding box would
                    // falsely race with concurrently-landing halo puts.
                    let fp = map_footprint(&inst.sdfg, m, b);
                    for (array, cells) in &fp.reads {
                        let buf = inst.buf(array, pe).clone();
                        for &(lo, hi) in cells.intervals() {
                            k.check_read(&buf, lo, hi, &m.name);
                        }
                    }
                    for (array, cells) in &fp.writes {
                        let buf = inst.buf(array, pe).clone();
                        for &(lo, hi) in cells.intervals() {
                            k.check_write(&buf, lo, hi, &m.name);
                        }
                    }
                }
                let dur = map_cost(&cost, m.volume(b), false);
                k.busy(Category::Compute, m.name.clone(), dur);
                if k.exec_mode() == ExecMode::Full {
                    exec_map(inst, m, pe, b);
                }
            }
            Op::Copy { dst, src } => {
                let rd = dst.resolve(inst.shape(&dst.array), b);
                let rs = src.resolve(inst.shape(&src.array), b);
                assert_eq!(rd.count, rs.count, "copy size mismatch");
                if inst.checked {
                    let sbuf = inst.buf(&src.array, pe).clone();
                    for &(lo, hi) in IntervalSet::from_resolved(&rs).intervals() {
                        k.check_read(&sbuf, lo, hi, "copy");
                    }
                    let dbuf = inst.buf(&dst.array, pe).clone();
                    for &(lo, hi) in IntervalSet::from_resolved(&rd).intervals() {
                        k.check_write(&dbuf, lo, hi, "copy");
                    }
                }
                let bytes = (rd.count * 8) as u64;
                k.busy(Category::Comm, "in-kernel copy", cost.local_copy(bytes));
                if k.exec_mode() == ExecMode::Full {
                    let dbuf = inst.buf(&dst.array, pe);
                    let sbuf = inst.buf(&src.array, pe);
                    if rd.stride == 1 && rs.stride == 1 {
                        dbuf.copy_from(rd.offset, sbuf, rs.offset, rd.count);
                    } else {
                        dbuf.copy_strided_from(
                            rd.offset, rd.stride, sbuf, rs.offset, rs.stride, rd.count,
                        );
                    }
                }
            }
            Op::Lib(lib) => {
                comm_since_sync = true;
                exec_lib_persistent(k, sh, inst, pe, b, lib);
            }
        }
    }
    if comm_since_sync {
        k.grid_sync();
    }
}

fn exec_lib_persistent(
    k: &mut KernelCtx<'_>,
    sh: &mut ShmemCtx,
    inst: &Instance,
    pe: usize,
    b: &Bindings,
    lib: &LibNode,
) {
    match lib {
        LibNode::PutmemSignal {
            dst,
            src,
            sig,
            val,
            pe: pex,
        } => {
            let target = pex.eval(b) as usize;
            let rd = dst.resolve(inst.shape(&dst.array), b);
            let rs = src.resolve(inst.shape(&src.array), b);
            assert_eq!(rd.count, rs.count, "put size mismatch");
            let sym = inst.arrays[&dst.array]
                .sym()
                .expect("validated symmetric storage");
            let srcbuf = inst.buf(&src.array, pe).clone();
            sh.putmem_signal_nbi(
                k,
                sym,
                rd.offset,
                &srcbuf,
                rs.offset,
                rd.count,
                &inst.sigs[sig],
                SignalOp::Set,
                val.eval(b) as u64,
                target,
            );
        }
        LibNode::PutmemSignalBlock {
            dst,
            src,
            sig,
            val,
            pe: pex,
        } => {
            let target = pex.eval(b) as usize;
            let rd = dst.resolve(inst.shape(&dst.array), b);
            let rs = src.resolve(inst.shape(&src.array), b);
            assert_eq!(rd.count, rs.count, "put size mismatch");
            let sym = inst.arrays[&dst.array]
                .sym()
                .expect("validated symmetric storage");
            let srcbuf = inst.buf(&src.array, pe).clone();
            sh.putmem_signal_block(
                k,
                sym,
                rd.offset,
                &srcbuf,
                rs.offset,
                rd.count,
                &inst.sigs[sig],
                SignalOp::Set,
                val.eval(b) as u64,
                target,
            );
        }
        LibNode::PutMapped { dst, src, pe: pex } => {
            let target = pex.eval(b) as usize;
            let rd = dst.resolve(inst.shape(&dst.array), b);
            let rs = src.resolve(inst.shape(&src.array), b);
            assert_eq!(rd.count, rs.count, "put size mismatch");
            assert!(
                rd.stride == 1 && rs.stride == 1,
                "PutMapped requires contiguous subsets"
            );
            let sym = inst.arrays[&dst.array]
                .sym()
                .expect("validated symmetric storage");
            let srcbuf = inst.buf(&src.array, pe).clone();
            sh.put_mapped(
                k, sym, rd.offset, &srcbuf, rs.offset, rd.count, 1024, target,
            );
        }
        LibNode::SignalWait { sig, val } => {
            sh.signal_wait_until(k, &inst.sigs[sig], Cmp::Ge, val.eval(b) as u64);
        }
        LibNode::Iput { dst, src, pe: pex } => {
            let target = pex.eval(b) as usize;
            let rd = dst.resolve(inst.shape(&dst.array), b);
            let rs = src.resolve(inst.shape(&src.array), b);
            assert_eq!(rd.count, rs.count, "iput size mismatch");
            let sym = inst.arrays[&dst.array]
                .sym()
                .expect("validated symmetric storage");
            let srcbuf = inst.buf(&src.array, pe).clone();
            sh.iput(
                k, sym, rd.offset, rd.stride, &srcbuf, rs.offset, rs.stride, rd.count, target,
            );
        }
        LibNode::PutSingle { dst, src, pe: pex } => {
            let target = pex.eval(b) as usize;
            let rd = dst.resolve(inst.shape(&dst.array), b);
            let rs = src.resolve(inst.shape(&src.array), b);
            assert_eq!(rd.count, 1, "PutSingle requires a single element");
            let sym = inst.arrays[&dst.array]
                .sym()
                .expect("validated symmetric storage");
            let value = inst.buf(&src.array, pe).get(rs.offset);
            sh.p(k, sym, rd.offset, value, target);
        }
        LibNode::SignalOp { sig, val, pe: pex } => {
            let target = pex.eval(b) as usize;
            sh.signal_op(
                k,
                &inst.sigs[sig],
                SignalOp::Set,
                val.eval(b) as u64,
                target,
            );
        }
        LibNode::Quiet => sh.quiet(k),
        LibNode::MpiIsend { .. } | LibNode::MpiIrecv { .. } | LibNode::MpiWaitall => {
            unreachable!("validated: no MPI nodes in persistent backend")
        }
    }
}

// ------------------------------------------------------------------

fn collect(inst: &Instance, end: SimTime, iterations: u64) -> Lowered {
    let total = end.since(SimTime::ZERO);
    let stats = RunStats::from_trace(&inst.machine.trace(), total, iterations);
    let mut finals = BTreeMap::new();
    let mut checksum = 0u64;
    for (name, arr) in &inst.arrays {
        let per_pe: Vec<Vec<f64>> = (0..inst.n).map(|pe| arr.local(pe).to_vec()).collect();
        for pe in 0..inst.n {
            checksum = checksum
                .wrapping_mul(1_000_003)
                .wrapping_add(arr.local(pe).checksum());
        }
        finals.insert(name.clone(), per_pe);
    }
    Lowered {
        total,
        stats,
        finals,
        checksum,
    }
}
