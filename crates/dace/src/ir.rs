//! The SDFG-style intermediate representation.
//!
//! A deliberately compact rendering of DaCe's Stateful Dataflow multiGraph:
//! **states** hold topologically-ordered dataflow operations (data-parallel
//! *maps* applying *tasklets*, array-to-array *copies*, and *library nodes*
//! for MPI / NVSHMEM communication); a structured control-flow tree
//! sequences states and **loops** (the iterative solvers' time loop, which
//! the `GPUPersistentKernel` transformation turns device-resident).
//! Programs are SPMD: every PE executes the same SDFG under its own symbol
//! bindings (`rank`, derived symbols like `prow`/`pcol`).

use crate::expr::{Bindings, Cond, Expr};
use std::fmt;

/// Where an array lives — the paper adds `GPU_NVSHMEM` for symmetric-heap
/// storage (§5.3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Storage {
    /// Host memory (pre-GPUTransform).
    CpuHeap,
    /// Ordinary device global memory.
    Gpu,
    /// NVSHMEM symmetric heap (PGAS-addressable).
    GpuNvshmem,
}

/// An array declaration (per-PE local array; shapes are symbolic).
#[derive(Debug, Clone)]
pub struct ArrayDecl {
    /// Array name.
    pub name: String,
    /// Per-dimension extents.
    pub shape: Vec<Expr>,
    /// Storage class.
    pub storage: Storage,
}

/// One dimension of a subset: `start .. start+count` (step 1).
#[derive(Debug, Clone)]
pub struct DimRange {
    /// First index.
    pub start: Expr,
    /// Number of indices.
    pub count: Expr,
}

impl DimRange {
    /// A single index.
    pub fn idx(start: Expr) -> DimRange {
        DimRange {
            start,
            count: Expr::c(1),
        }
    }

    /// A contiguous range.
    pub fn range(start: Expr, count: Expr) -> DimRange {
        DimRange { start, count }
    }
}

/// A (possibly strided) reference to part of an array — what memlets carry.
#[derive(Debug, Clone)]
pub struct DataRef {
    /// Referenced array.
    pub array: String,
    /// Per-dimension subset (must match the array's rank).
    pub subset: Vec<DimRange>,
}

/// A `DataRef` resolved to flat element coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolved {
    /// Flat offset of the first element.
    pub offset: usize,
    /// Number of elements.
    pub count: usize,
    /// Flat stride between consecutive elements.
    pub stride: usize,
}

impl DataRef {
    /// Build a reference.
    pub fn new(array: &str, subset: Vec<DimRange>) -> DataRef {
        DataRef {
            array: array.to_string(),
            subset,
        }
    }

    /// Structural contiguity check (§5.3.1's compile-time shape check):
    /// true when the only dimension allowed to vary is the innermost one.
    /// Conservative — a `Const(1)` count is "not varying".
    pub fn is_structurally_contiguous(&self) -> bool {
        let last = self.subset.len() - 1;
        self.subset
            .iter()
            .enumerate()
            .all(|(i, d)| i == last || d.count == Expr::c(1))
    }

    /// Resolve to flat `(offset, count, stride)` under bindings, given the
    /// array's resolved shape. At most one dimension may have `count > 1`.
    pub fn resolve(&self, shape: &[i64], b: &Bindings) -> Resolved {
        assert_eq!(
            self.subset.len(),
            shape.len(),
            "subset rank mismatch on `{}`",
            self.array
        );
        // Row-major strides.
        let mut strides = vec![1i64; shape.len()];
        for i in (0..shape.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * shape[i + 1];
        }
        let mut offset = 0i64;
        let mut varying: Option<(i64, i64)> = None; // (count, stride)
        for (i, d) in self.subset.iter().enumerate() {
            let start = d.start.eval(b);
            let count = d.count.eval(b);
            assert!(
                start >= 0 && start + count <= shape[i],
                "subset out of bounds on `{}` dim {i}: {start}+{count} > {}",
                self.array,
                shape[i]
            );
            offset += start * strides[i];
            if count > 1 {
                assert!(
                    varying.is_none(),
                    "multi-dimensional subsets not supported on `{}`",
                    self.array
                );
                varying = Some((count, strides[i]));
            }
        }
        let (count, stride) = varying.unwrap_or((1, 1));
        Resolved {
            offset: offset as usize,
            count: count as usize,
            stride: stride as usize,
        }
    }
}

/// Map schedule, following DaCe's schedule types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// CPU loop (pre-GPUTransform).
    Sequential,
    /// Discrete GPU kernel.
    GpuDevice,
    /// Inside a persistent GPU kernel (post-GPUPersistentKernel).
    GpuPersistent,
}

/// The computation a map applies — DaCe tasklets are opaque code; here they
/// are drawn from the workloads the paper evaluates.
#[derive(Debug, Clone)]
pub enum TaskletKind {
    /// `dst[i] = (src[i-1] + src[i] + src[i+1]) / 3` over map var `i`.
    Jacobi1d {
        /// Source array.
        src: String,
        /// Destination array.
        dst: String,
    },
    /// `dst[i,j] = 0.2*(src[i,j] + src[i±1,j] + src[i,j±1])` over `(i,j)`.
    Jacobi2d {
        /// Source array.
        src: String,
        /// Destination array.
        dst: String,
    },
}

/// A data-parallel map node (entry/exit pair + tasklet, collapsed).
#[derive(Debug, Clone)]
pub struct MapOp {
    /// Name (for traces).
    pub name: String,
    /// Where the map runs.
    pub schedule: Schedule,
    /// Iteration variables with inclusive ranges.
    pub range: Vec<(String, Expr, Expr)>,
    /// The computation applied at each point.
    pub tasklet: TaskletKind,
}

impl MapOp {
    /// Number of points under bindings.
    pub fn volume(&self, b: &Bindings) -> u64 {
        self.range
            .iter()
            .map(|(_, lo, hi)| (hi.eval(b) - lo.eval(b) + 1).max(0) as u64)
            .product()
    }
}

/// Communication library nodes (§5.2–5.3).
#[derive(Debug, Clone)]
pub enum LibNode {
    /// `dace.comm.Isend(buf, dest, tag)` — MPI library node.
    MpiIsend {
        /// Data to send.
        buf: DataRef,
        /// Destination rank.
        dest: Expr,
        /// Message tag (also the channel id).
        tag: u32,
    },
    /// `dace.comm.Irecv(buf, src, tag)`.
    MpiIrecv {
        /// Where received data lands.
        buf: DataRef,
        /// Source rank.
        src: Expr,
        /// Message tag.
        tag: u32,
    },
    /// `dace.comm.Waitall(req)` — completes the state's outstanding
    /// requests.
    MpiWaitall,
    /// `nvshmem.PutmemSignal(dst, src, sig, val, pe)` — contiguous put with
    /// completion signal at the destination.
    PutmemSignal {
        /// Remote destination subset (evaluated at PE `pe`).
        dst: DataRef,
        /// Local source subset.
        src: DataRef,
        /// Signal cell id.
        sig: u32,
        /// Signal value (usually the loop variable).
        val: Expr,
        /// Destination PE.
        pe: Expr,
    },
    /// `nvshmem.SignalWait(sig, val)` — wait until the local signal copy
    /// reaches `val`.
    SignalWait {
        /// Signal cell id.
        sig: u32,
        /// Value to wait for (>=).
        val: Expr,
    },
    /// `nvshmemx_putmem_signal_block` — like [`LibNode::PutmemSignal`] but
    /// issued cooperatively by a whole thread block (§5.3.2).
    PutmemSignalBlock {
        /// Remote destination subset (evaluated at PE `pe`).
        dst: DataRef,
        /// Local source subset.
        src: DataRef,
        /// Signal cell id.
        sig: u32,
        /// Signal value (usually the loop variable).
        val: Expr,
        /// Destination PE.
        pe: Expr,
    },
    /// Mapped single-element specialization (§5.3.2): the subset is
    /// transferred as parallel `nvshmem_<T>_p` calls inside a Map.
    PutMapped {
        /// Remote destination subset.
        dst: DataRef,
        /// Local source subset.
        src: DataRef,
        /// Destination PE.
        pe: Expr,
    },
    /// `nvshmem_<T>_iput` — strided put (no combined signal variant).
    Iput {
        /// Remote destination subset.
        dst: DataRef,
        /// Local source subset.
        src: DataRef,
        /// Destination PE.
        pe: Expr,
    },
    /// `nvshmem_<T>_p` — single-element put.
    PutSingle {
        /// Remote destination element.
        dst: DataRef,
        /// Local source element.
        src: DataRef,
        /// Destination PE.
        pe: Expr,
    },
    /// `nvshmemx_signal_op(sig, val, SET, pe)` — manual remote signal.
    SignalOp {
        /// Signal cell id.
        sig: u32,
        /// Value to set.
        val: Expr,
        /// Destination PE.
        pe: Expr,
    },
    /// `nvshmem_quiet()` — complete outstanding non-blocking operations.
    Quiet,
}

/// A dataflow operation inside a state.
#[derive(Debug, Clone)]
pub enum Op {
    /// A (collapsed) map node.
    Map(MapOp),
    /// DaCe's array-to-array copy routine.
    Copy {
        /// Destination subset.
        dst: DataRef,
        /// Source subset.
        src: DataRef,
    },
    /// A communication library node.
    Lib(LibNode),
}

/// An operation with an optional symbolic guard (edge-rank conditionals).
#[derive(Debug, Clone)]
pub struct GuardedOp {
    /// Execute only when the guard holds (or unconditionally when `None`).
    pub guard: Option<Cond>,
    /// The operation.
    pub op: Op,
}

impl GuardedOp {
    /// Unguarded op.
    pub fn new(op: Op) -> GuardedOp {
        GuardedOp { guard: None, op }
    }

    /// Guarded op.
    pub fn when(guard: Cond, op: Op) -> GuardedOp {
        GuardedOp {
            guard: Some(guard),
            op,
        }
    }

    /// Does this op execute under the bindings?
    pub fn active(&self, b: &Bindings) -> bool {
        self.guard.as_ref().is_none_or(|g| g.eval(b))
    }
}

/// A dataflow state: operations in topological (execution) order.
#[derive(Debug, Clone)]
pub struct State {
    /// State name.
    pub name: String,
    /// Ordered operations.
    pub ops: Vec<GuardedOp>,
}

/// Structured control flow.
#[derive(Debug, Clone)]
pub enum Cf {
    /// A single dataflow state.
    State(State),
    /// A counted loop (`for var in start..=end`).
    Loop {
        /// Loop variable (bound in the body).
        var: String,
        /// First value.
        start: Expr,
        /// Last value (inclusive).
        end: Expr,
        /// Body.
        body: Vec<Cf>,
        /// Set by `GPUPersistentKernel`: the loop lives inside one
        /// persistent device kernel.
        persistent: bool,
    },
}

/// The top-level program.
#[derive(Debug, Clone)]
pub struct Sdfg {
    /// Program name.
    pub name: String,
    /// Free symbols the caller must bind (plus the implicit `rank`/`size`).
    pub symbols: Vec<String>,
    /// Derived symbols, evaluated in order after the free ones.
    pub derived: Vec<(String, Expr)>,
    /// Array declarations.
    pub arrays: Vec<ArrayDecl>,
    /// Control flow.
    pub body: Vec<Cf>,
}

impl Sdfg {
    /// Find an array declaration.
    pub fn array(&self, name: &str) -> &ArrayDecl {
        self.arrays
            .iter()
            .find(|a| a.name == name)
            .unwrap_or_else(|| panic!("unknown array `{name}`"))
    }

    /// Mutable lookup.
    pub fn array_mut(&mut self, name: &str) -> &mut ArrayDecl {
        self.arrays
            .iter_mut()
            .find(|a| a.name == name)
            .unwrap_or_else(|| panic!("unknown array `{name}`"))
    }

    /// Build the full bindings for one PE: user symbols, `rank`, `size`,
    /// then the derived symbols in declaration order.
    pub fn bindings(&self, rank: usize, size: usize, user: &Bindings) -> Bindings {
        let mut b = user.clone();
        b.insert("rank".into(), rank as i64);
        b.insert("size".into(), size as i64);
        for (name, expr) in &self.derived {
            let v = expr.eval(&b);
            b.insert(name.clone(), v);
        }
        for s in &self.symbols {
            assert!(
                b.contains_key(s),
                "symbol `{s}` not bound for `{}`",
                self.name
            );
        }
        b
    }

    /// Visit every state mutably (transformation helper).
    pub fn visit_states_mut(&mut self, f: &mut impl FnMut(&mut State)) {
        fn walk(cf: &mut Cf, f: &mut impl FnMut(&mut State)) {
            match cf {
                Cf::State(s) => f(s),
                Cf::Loop { body, .. } => {
                    for c in body {
                        walk(c, f);
                    }
                }
            }
        }
        for c in &mut self.body {
            walk(c, f);
        }
    }

    /// Visit every state immutably.
    pub fn visit_states(&self, f: &mut impl FnMut(&State)) {
        fn walk(cf: &Cf, f: &mut impl FnMut(&State)) {
            match cf {
                Cf::State(s) => f(s),
                Cf::Loop { body, .. } => {
                    for c in body {
                        walk(c, f);
                    }
                }
            }
        }
        for c in &self.body {
            walk(c, f);
        }
    }
}

impl fmt::Display for Sdfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "sdfg {} {{", self.name)?;
        for a in &self.arrays {
            let dims: Vec<String> = a.shape.iter().map(|e| e.to_string()).collect();
            writeln!(
                f,
                "  array {}[{}] @{:?}",
                a.name,
                dims.join(", "),
                a.storage
            )?;
        }
        fn walk(cf: &Cf, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
            let pad = "  ".repeat(depth);
            match cf {
                Cf::State(s) => {
                    writeln!(f, "{pad}state {} ({} ops)", s.name, s.ops.len())
                }
                Cf::Loop {
                    var,
                    start,
                    end,
                    body,
                    persistent,
                } => {
                    let p = if *persistent { " [persistent]" } else { "" };
                    writeln!(f, "{pad}for {var} in {start}..={end}{p} {{")?;
                    for c in body {
                        walk(c, f, depth + 1)?;
                    }
                    writeln!(f, "{pad}}}")
                }
            }
        }
        for c in &self.body {
            walk(c, f, 1)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(pairs: &[(&str, i64)]) -> Bindings {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn resolve_contiguous_row() {
        // A[(rows+2) x (cols+2)], subset A[1, 1..=cols].
        let r = DataRef::new(
            "A",
            vec![
                DimRange::idx(Expr::c(1)),
                DimRange::range(Expr::c(1), Expr::s("cols")),
            ],
        );
        let shape = [6, 10]; // rows=4, cols=8
        let res = r.resolve(&shape, &b(&[("cols", 8)]));
        assert_eq!(
            res,
            Resolved {
                offset: 11,
                count: 8,
                stride: 1
            }
        );
        assert!(r.is_structurally_contiguous());
    }

    #[test]
    fn resolve_strided_column() {
        // A[1..=rows, 0] — a column: stride = row length.
        let r = DataRef::new(
            "A",
            vec![
                DimRange::range(Expr::c(1), Expr::s("rows")),
                DimRange::idx(Expr::c(0)),
            ],
        );
        let res = r.resolve(&[6, 10], &b(&[("rows", 4)]));
        assert_eq!(
            res,
            Resolved {
                offset: 10,
                count: 4,
                stride: 10
            }
        );
        assert!(!r.is_structurally_contiguous());
    }

    #[test]
    fn resolve_single_element() {
        let r = DataRef::new("A", vec![DimRange::idx(Expr::s("chunk").add(Expr::c(1)))]);
        let res = r.resolve(&[18], &b(&[("chunk", 16)]));
        assert_eq!(
            res,
            Resolved {
                offset: 17,
                count: 1,
                stride: 1
            }
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn resolve_checks_bounds() {
        let r = DataRef::new("A", vec![DimRange::range(Expr::c(0), Expr::c(20))]);
        r.resolve(&[10], &b(&[]));
    }

    #[test]
    fn map_volume() {
        let m = MapOp {
            name: "u".into(),
            schedule: Schedule::Sequential,
            range: vec![
                ("i".into(), Expr::c(1), Expr::s("rows")),
                ("j".into(), Expr::c(1), Expr::s("cols")),
            ],
            tasklet: TaskletKind::Jacobi2d {
                src: "A".into(),
                dst: "B".into(),
            },
        };
        assert_eq!(m.volume(&b(&[("rows", 4), ("cols", 8)])), 32);
    }

    #[test]
    fn bindings_derive_in_order() {
        let sdfg = Sdfg {
            name: "t".into(),
            symbols: vec!["pc".into()],
            derived: vec![
                ("prow".into(), Expr::s("rank").div(Expr::s("pc"))),
                ("pcol".into(), Expr::s("rank").rem(Expr::s("pc"))),
            ],
            arrays: vec![],
            body: vec![],
        };
        let bind = sdfg.bindings(5, 8, &b(&[("pc", 2)]));
        assert_eq!(bind["prow"], 2);
        assert_eq!(bind["pcol"], 1);
        assert_eq!(bind["rank"], 5);
        assert_eq!(bind["size"], 8);
    }

    #[test]
    fn display_renders_structure() {
        let sdfg = Sdfg {
            name: "demo".into(),
            symbols: vec![],
            derived: vec![],
            arrays: vec![ArrayDecl {
                name: "A".into(),
                shape: vec![Expr::s("N")],
                storage: Storage::CpuHeap,
            }],
            body: vec![Cf::Loop {
                var: "t".into(),
                start: Expr::c(1),
                end: Expr::s("T"),
                body: vec![Cf::State(State {
                    name: "s".into(),
                    ops: vec![],
                })],
                persistent: false,
            }],
        };
        let text = format!("{sdfg}");
        assert!(text.contains("for t in 1..=T"));
        assert!(text.contains("array A[N]"));
    }
}
