// Not every fixture is used by every test binary that includes this module.
#![allow(dead_code)]

//! Hand-built non-conforming SDFGs shared by the static-verifier and
//! differential test suites. Each fixture violates exactly one protocol
//! rule, so the expected diagnostic set is a singleton (plus the
//! `LostSignal` shadow where the wait can never complete).

use dace_sim::expr::{Bindings, Cond, CondOp, Expr};
use dace_sim::ir::*;

/// `rank == r` guard.
pub fn on_rank(r: i64) -> Cond {
    Cond::new(Expr::s("rank"), CondOp::Eq, Expr::c(r))
}

fn arr(name: &str, len: i64, storage: Storage) -> ArrayDecl {
    ArrayDecl {
        name: name.into(),
        shape: vec![Expr::c(len)],
        storage,
    }
}

fn idx(i: Expr) -> Vec<DimRange> {
    vec![DimRange::idx(i)]
}

fn span(start: i64, count: i64) -> Vec<DimRange> {
    vec![DimRange::range(Expr::c(start), Expr::c(count))]
}

fn time_loop(trip: i64, body: Vec<Cf>) -> Vec<Cf> {
    vec![Cf::Loop {
        var: "t".into(),
        start: Expr::c(1),
        end: Expr::c(trip),
        body,
        persistent: true,
    }]
}

/// Fixture (a): pe0 waits on flag 7 every iteration, but no PE ever sets
/// it. Expected: `UnmatchedSignalWait` + `LostSignal` at pe0.
pub fn unmatched_wait() -> Sdfg {
    Sdfg {
        name: "unmatched_wait".into(),
        symbols: vec![],
        derived: vec![],
        arrays: vec![arr("A", 4, Storage::GpuNvshmem)],
        body: time_loop(
            2,
            vec![Cf::State(State {
                name: "wait".into(),
                ops: vec![GuardedOp::when(
                    on_rank(0),
                    Op::Lib(LibNode::SignalWait {
                        sig: 7,
                        val: Expr::s("t"),
                    }),
                )],
            })],
        ),
    }
}

/// Fixture (b): pe0 puts `A[1]` to pe1 with a non-blocking put, then a map
/// overwrites `A[1]` *before* the acknowledging signal round trip (the ack
/// wait sits after the map). Expected: `NbiSourceReuse` at pe0 vs pe1.
pub fn nbi_reuse() -> Sdfg {
    Sdfg {
        name: "nbi_reuse".into(),
        symbols: vec![],
        derived: vec![],
        arrays: vec![
            arr("A", 4, Storage::GpuNvshmem),
            arr("B", 4, Storage::GpuNvshmem),
        ],
        body: time_loop(
            2,
            vec![
                Cf::State(State {
                    name: "halo".into(),
                    ops: vec![
                        GuardedOp::when(
                            on_rank(0),
                            Op::Lib(LibNode::PutmemSignal {
                                dst: DataRef::new("A", idx(Expr::c(2))),
                                src: DataRef::new("A", idx(Expr::c(1))),
                                sig: 0,
                                val: Expr::s("t"),
                                pe: Expr::c(1),
                            }),
                        ),
                        GuardedOp::when(
                            on_rank(1),
                            Op::Lib(LibNode::SignalWait {
                                sig: 0,
                                val: Expr::s("t"),
                            }),
                        ),
                        GuardedOp::when(
                            on_rank(1),
                            Op::Lib(LibNode::SignalOp {
                                sig: 1,
                                val: Expr::s("t"),
                                pe: Expr::c(0),
                            }),
                        ),
                    ],
                }),
                // The bug: this map writes A[1] while the put may still be
                // reading it — the ack wait comes one state too late.
                Cf::State(State {
                    name: "update".into(),
                    ops: vec![GuardedOp::when(
                        on_rank(0),
                        Op::Map(MapOp {
                            name: "overwrite".into(),
                            schedule: Schedule::GpuPersistent,
                            range: vec![("i".into(), Expr::c(1), Expr::c(1))],
                            tasklet: TaskletKind::Jacobi1d {
                                src: "B".into(),
                                dst: "A".into(),
                            },
                        }),
                    )],
                }),
                Cf::State(State {
                    name: "ack".into(),
                    ops: vec![GuardedOp::when(
                        on_rank(0),
                        Op::Lib(LibNode::SignalWait {
                            sig: 1,
                            val: Expr::s("t"),
                        }),
                    )],
                }),
            ],
        ),
    }
}

/// Fixture (c): pe0's put covers only `A[0]` on pe1, but pe1 copies
/// `A[0..2)` — cell 1 is remote-fed yet never written by any put.
/// Expected: `HaloCoverageGap` at pe1 (producer pe0).
pub fn halo_gap() -> Sdfg {
    Sdfg {
        name: "halo_gap".into(),
        symbols: vec![],
        derived: vec![],
        arrays: vec![arr("A", 4, Storage::GpuNvshmem), arr("C", 2, Storage::Gpu)],
        body: time_loop(
            1,
            vec![
                Cf::State(State {
                    name: "halo".into(),
                    ops: vec![GuardedOp::when(
                        on_rank(0),
                        Op::Lib(LibNode::PutmemSignal {
                            dst: DataRef::new("A", idx(Expr::c(0))),
                            src: DataRef::new("A", idx(Expr::c(0))),
                            sig: 0,
                            val: Expr::s("t"),
                            pe: Expr::c(1),
                        }),
                    )],
                }),
                Cf::State(State {
                    name: "consume".into(),
                    ops: vec![
                        GuardedOp::when(
                            on_rank(1),
                            Op::Lib(LibNode::SignalWait {
                                sig: 0,
                                val: Expr::s("t"),
                            }),
                        ),
                        GuardedOp::when(
                            on_rank(1),
                            Op::Copy {
                                dst: DataRef::new("C", span(0, 2)),
                                src: DataRef::new("A", span(0, 2)),
                            },
                        ),
                    ],
                }),
            ],
        ),
    }
}

/// Fixture (d): a put targeting `G`, whose storage class is plain `Gpu` —
/// the remote side has no symmetric allocation. Expected:
/// `StorageClassViolation` at pe0 targeting pe1.
pub fn bad_storage() -> Sdfg {
    Sdfg {
        name: "bad_storage".into(),
        symbols: vec![],
        derived: vec![],
        arrays: vec![arr("G", 2, Storage::Gpu)],
        body: time_loop(
            1,
            vec![Cf::State(State {
                name: "push".into(),
                ops: vec![
                    GuardedOp::when(
                        on_rank(0),
                        Op::Lib(LibNode::PutmemSignal {
                            dst: DataRef::new("G", idx(Expr::c(0))),
                            src: DataRef::new("G", idx(Expr::c(1))),
                            sig: 0,
                            val: Expr::s("t"),
                            pe: Expr::c(1),
                        }),
                    ),
                    GuardedOp::when(
                        on_rank(1),
                        Op::Lib(LibNode::SignalWait {
                            sig: 0,
                            val: Expr::s("t"),
                        }),
                    ),
                ],
            })],
        ),
    }
}

/// Fixture (e): pe0 pushes one cell per iteration and pe1 consumes it, but
/// pe0 never waits on anything — its iteration counter is unthrottled.
/// Expected: `IterationDivergence` (pe0 vs pe1), statically and (because
/// put issue is much cheaper than transfer delivery) dynamically.
pub fn one_sided_throttle() -> Sdfg {
    Sdfg {
        name: "one_sided_throttle".into(),
        symbols: vec![],
        derived: vec![],
        arrays: vec![arr("A", 8, Storage::GpuNvshmem)],
        body: time_loop(
            4,
            vec![Cf::State(State {
                name: "push".into(),
                ops: vec![
                    GuardedOp::when(
                        on_rank(0),
                        Op::Lib(LibNode::PutmemSignal {
                            dst: DataRef::new("A", idx(Expr::s("t"))),
                            src: DataRef::new("A", idx(Expr::c(0))),
                            sig: 0,
                            val: Expr::s("t"),
                            pe: Expr::c(1),
                        }),
                    ),
                    GuardedOp::when(
                        on_rank(1),
                        Op::Lib(LibNode::SignalWait {
                            sig: 0,
                            val: Expr::s("t"),
                        }),
                    ),
                ],
            })],
        ),
    }
}

/// Zero-initialize every local array of `sdfg` (fixture shapes are
/// constant, so empty bindings suffice to size them).
pub fn zero_init(sdfg: &Sdfg) -> impl Fn(usize, &str) -> Vec<f64> + '_ {
    move |_pe, name| {
        let b = Bindings::default();
        let len: i64 = sdfg.array(name).shape.iter().map(|e| e.eval(&b)).product();
        vec![0.0; len as usize]
    }
}

/// The trip count of each fixture's time loop (used as the `iterations`
/// argument when running).
pub fn trip(sdfg: &Sdfg) -> u64 {
    match sdfg.body.first() {
        Some(Cf::Loop { end, .. }) => end.eval(&Bindings::default()) as u64,
        _ => 0,
    }
}
