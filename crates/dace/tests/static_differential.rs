//! Differential tests between the static protocol verifier and the dynamic
//! happens-before checker.
//!
//! The guarantee under test (the PR's acceptance bar): **every diagnostic
//! the dynamic checker reports on the lowered test corpus is also reported
//! statically**, with the same `DiagKind` and the same array/signal
//! endpoints. The converse need not hold — the static verifier also proves
//! schedule-independent properties (stale halo reads, counter skew) that no
//! single execution exposes.

mod fixtures;

use dace_sim::lower::{run_persistent_checked, CheckedRun, LowerError};
use dace_sim::programs::{Jacobi1dSetup, Jacobi2dSetup};
use dace_sim::transform::to_cpu_free;
use dace_sim::verify::{verify_sdfg, StaticDiag, VerifyReport};
use dace_sim::Bindings;
use gpu_sim::{Diagnostic, TopologyKind};
use sim_des::DiagKind;

/// Run one fixture under the dynamic checker (ungated, so known-bad
/// programs actually execute).
fn run_checked(sdfg: &dace_sim::Sdfg, topology: TopologyKind) -> CheckedRun {
    run_persistent_checked(
        sdfg,
        2,
        &Bindings::default(),
        fixtures::trip(sdfg),
        topology,
        false,
        &fixtures::zero_init(sdfg),
    )
    .expect("fixture must pass structural lowering legality")
}

/// Does a static diagnostic describe the same finding as a dynamic one?
/// Same kind, and the dynamic message names the static diag's endpoints —
/// the subject (array name or flag number) or the primary PE label.
fn describes(s: &StaticDiag, d: &Diagnostic) -> bool {
    if s.kind != d.kind {
        return false;
    }
    let subject_hit = if let Some(flag) = s.subject.strip_prefix("flag #") {
        d.message.contains(&format!("#{flag}")) || d.message.contains(&format!("flag {flag}"))
    } else {
        d.message.contains(&format!("`{}`", s.subject))
            || d.message.contains(&format!("{}@", s.subject))
    };
    // The lowering names its persistent host agents `rank{pe}`, so accept
    // either spelling of the PE endpoint.
    let pe_hit = s.pe.is_some_and(|p| {
        d.message.contains(&format!("pe{p}")) || d.message.contains(&format!("rank{p}"))
    });
    // A deadlock cascades: once one rank blocks forever, infrastructure
    // agents (supervisor, barrier) starve on their own flags too. Those
    // secondary lost signals are consequences of the statically-predicted
    // root cause, not independent findings.
    let cascade = s.kind == DiagKind::LostSignal && !d.message.contains("rank");
    subject_hit || pe_hit || cascade
}

/// The differential guarantee for one program: every dynamic finding has a
/// static counterpart.
fn assert_dynamic_subset_of_static(report: &VerifyReport, run: &CheckedRun) {
    for d in &run.report.diagnostics {
        assert!(
            report.diags.iter().any(|s| describes(s, d)),
            "dynamic diagnostic not statically predicted for `{}`:\n  dynamic: {d}\n  static report:\n{report}",
            report.program
        );
    }
}

// ---------------------------------------------------------------------------
// Non-conforming fixtures: dynamic findings ⊆ static findings
// ---------------------------------------------------------------------------

#[test]
fn unmatched_wait_dynamic_deadlock_is_statically_predicted() {
    let sdfg = fixtures::unmatched_wait();
    let report = verify_sdfg(&sdfg, 2, &Bindings::default());
    let run = run_checked(&sdfg, TopologyKind::NvlinkAllToAll);
    assert!(run.deadlocked, "pe0's wait can never complete");
    assert!(
        run.report
            .diagnostics
            .iter()
            .any(|d| d.kind == DiagKind::LostSignal),
        "deadlocked checked run reports the lost signal:\n{}",
        run.report
    );
    assert_dynamic_subset_of_static(&report, &run);
}

#[test]
fn nbi_reuse_dynamic_race_is_statically_predicted() {
    let sdfg = fixtures::nbi_reuse();
    let report = verify_sdfg(&sdfg, 2, &Bindings::default());
    let run = run_checked(&sdfg, TopologyKind::NvlinkAllToAll);
    assert!(!run.deadlocked, "the protocol completes — it is just racy");
    assert!(
        run.report
            .diagnostics
            .iter()
            .any(|d| d.kind == DiagKind::NbiSourceReuse),
        "dynamic checker must observe the source overwrite:\n{}",
        run.report
    );
    assert_dynamic_subset_of_static(&report, &run);
}

#[test]
fn halo_gap_is_static_only() {
    // A stale read is not a data race — no write ever touches the uncovered
    // cell, so the dynamic checker has nothing to flag. Only the static
    // verifier catches this class of bug (the differential inclusion holds
    // vacuously).
    let sdfg = fixtures::halo_gap();
    let report = verify_sdfg(&sdfg, 2, &Bindings::default());
    assert_eq!(report.of_kind(DiagKind::HaloCoverageGap).len(), 1);
    let run = run_checked(&sdfg, TopologyKind::NvlinkAllToAll);
    assert!(!run.deadlocked);
    assert_dynamic_subset_of_static(&report, &run);
}

#[test]
fn one_sided_throttle_diverges_both_ways() {
    let sdfg = fixtures::one_sided_throttle();
    let report = verify_sdfg(&sdfg, 2, &Bindings::default());
    assert_eq!(report.of_kind(DiagKind::IterationDivergence).len(), 1);
    // Cross-node NIC latency dwarfs put-issue cost, so pe0 outruns pe1 far
    // enough for the runtime throttle check to fire too.
    let run = run_checked(&sdfg, TopologyKind::TwoNode);
    assert!(!run.deadlocked);
    assert!(
        run.report
            .diagnostics
            .iter()
            .any(|d| d.kind == DiagKind::IterationDivergence),
        "put issue is much cheaper than delivery, so pe0 must outrun pe1:\n{}",
        run.report
    );
    assert_dynamic_subset_of_static(&report, &run);
}

#[test]
fn storage_violation_matches_lowering_legality() {
    // Both layers reject a put into non-symmetric storage, just at
    // different stages: the static verifier as `StorageClassViolation`, the
    // lowering pipeline as `PutTargetNotSymmetric` (its structural legality
    // runs before the verify gate, so it wins the race to report).
    let sdfg = fixtures::bad_storage();
    let report = verify_sdfg(&sdfg, 2, &Bindings::default());
    let static_diags = report.of_kind(DiagKind::StorageClassViolation);
    assert_eq!(static_diags.len(), 1);
    assert_eq!(static_diags[0].subject, "G");
    let err = run_persistent_checked(
        &sdfg,
        2,
        &Bindings::default(),
        fixtures::trip(&sdfg),
        TopologyKind::NvlinkAllToAll,
        false,
        &fixtures::zero_init(&sdfg),
    )
    .expect_err("non-symmetric put target must not lower");
    match err {
        LowerError::PutTargetNotSymmetric(array) => assert_eq!(array, "G"),
        other => panic!("expected PutTargetNotSymmetric, got: {other}"),
    }
}

// ---------------------------------------------------------------------------
// The verify gate in production configuration
// ---------------------------------------------------------------------------

#[test]
fn gated_run_rejects_nonconforming_fixtures() {
    for (sdfg, expected) in [
        (fixtures::unmatched_wait(), DiagKind::UnmatchedSignalWait),
        (fixtures::nbi_reuse(), DiagKind::NbiSourceReuse),
        (fixtures::halo_gap(), DiagKind::HaloCoverageGap),
        (
            fixtures::one_sided_throttle(),
            DiagKind::IterationDivergence,
        ),
    ] {
        let err = run_persistent_checked(
            &sdfg,
            2,
            &Bindings::default(),
            fixtures::trip(&sdfg),
            TopologyKind::NvlinkAllToAll,
            true,
            &fixtures::zero_init(&sdfg),
        )
        .expect_err("gate must reject the fixture before anything runs");
        match err {
            LowerError::ProtocolViolation(v) => {
                assert!(
                    v.report.diags.iter().any(|d| d.kind == expected),
                    "`{}`: expected {expected:?} in gate report:\n{}",
                    sdfg.name,
                    v.report
                );
                // The error chain exposes the verification failure.
                let err = LowerError::ProtocolViolation(v.clone());
                let source = std::error::Error::source(&err)
                    .expect("ProtocolViolation carries its report as source");
                assert!(source.to_string().contains(&sdfg.name));
            }
            other => panic!("`{}`: expected ProtocolViolation, got: {other}", sdfg.name),
        }
    }
}

// ---------------------------------------------------------------------------
// Shipped programs: clean statically AND dynamically, on every topology
// ---------------------------------------------------------------------------

#[test]
fn shipped_jacobi1d_clean_on_all_topologies() {
    let setup = Jacobi1dSetup::new(6, 3, 2);
    let user = setup.user_bindings();
    let mut sdfg = setup.sdfg.clone();
    to_cpu_free(&mut sdfg).unwrap();
    assert!(verify_sdfg(&sdfg, setup.n_pes, &user).clean());
    for topology in TopologyKind::presets() {
        let run = run_persistent_checked(
            &sdfg,
            setup.n_pes,
            &user,
            setup.tsteps,
            topology,
            true,
            &|pe, a| setup.init_local(pe, a),
        )
        .unwrap();
        assert!(!run.deadlocked, "{topology:?}: deadlocked");
        assert!(
            run.report.clean(),
            "{topology:?}: dynamic findings on a verified-clean program:\n{}",
            run.report
        );
        // The checked run still computes the right field.
        let lowered = run.lowered.expect("completed");
        let gathered = setup.gather(&lowered.finals["A"]);
        let reference = setup.reference();
        assert_eq!(gathered, reference, "{topology:?}: numerics drifted");
    }
}

#[test]
fn shipped_jacobi2d_clean_on_all_topologies() {
    let setup = Jacobi2dSetup::new(4, 4, 2, 4);
    let user = setup.user_bindings();
    let mut sdfg = setup.sdfg.clone();
    to_cpu_free(&mut sdfg).unwrap();
    assert!(verify_sdfg(&sdfg, setup.n_pes, &user).clean());
    for topology in TopologyKind::presets() {
        let run = run_persistent_checked(
            &sdfg,
            setup.n_pes,
            &user,
            setup.tsteps,
            topology,
            true,
            &|pe, a| setup.init_local(pe, a),
        )
        .unwrap();
        assert!(!run.deadlocked, "{topology:?}: deadlocked");
        assert!(
            run.report.clean(),
            "{topology:?}: dynamic findings on a verified-clean program:\n{}",
            run.report
        );
        let lowered = run.lowered.expect("completed");
        let gathered = setup.gather(&lowered.finals["A"]);
        assert_eq!(
            gathered,
            setup.reference(),
            "{topology:?}: numerics drifted"
        );
    }
}
