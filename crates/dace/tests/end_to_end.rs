//! End-to-end tests: build the distributed programs, transform them, run
//! both backends, and verify numerics against the sequential references.

use dace_sim::lower::{run_discrete, run_persistent, LowerError};
use dace_sim::programs::{Jacobi1dSetup, Jacobi2dSetup};
use dace_sim::transform::{gpu_transform, to_cpu_free};
use gpu_sim::ExecMode;

fn max_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn jacobi1d_discrete_matches_reference() {
    let setup = Jacobi1dSetup::new(12, 5, 4);
    let mut sdfg = setup.sdfg.clone();
    gpu_transform(&mut sdfg);
    let out = run_discrete(
        &sdfg,
        4,
        &setup.user_bindings(),
        setup.tsteps,
        ExecMode::Full,
        &|pe, arr| setup.init_local(pe, arr),
    )
    .unwrap();
    let gathered = setup.gather(&out.finals["A"]);
    assert_eq!(max_diff(&gathered, &setup.reference()), 0.0);
}

#[test]
fn jacobi1d_cpu_free_matches_reference() {
    let setup = Jacobi1dSetup::new(12, 5, 4);
    let mut sdfg = setup.sdfg.clone();
    to_cpu_free(&mut sdfg).unwrap();
    let out = run_persistent(
        &sdfg,
        4,
        &setup.user_bindings(),
        setup.tsteps,
        ExecMode::Full,
        &|pe, arr| setup.init_local(pe, arr),
    )
    .unwrap();
    let gathered = setup.gather(&out.finals["A"]);
    assert_eq!(max_diff(&gathered, &setup.reference()), 0.0);
}

#[test]
fn jacobi1d_both_backends_agree_bitwise() {
    let setup = Jacobi1dSetup::new(10, 7, 2);
    let mut base = setup.sdfg.clone();
    gpu_transform(&mut base);
    let d = run_discrete(
        &base,
        2,
        &setup.user_bindings(),
        setup.tsteps,
        ExecMode::Full,
        &|pe, arr| setup.init_local(pe, arr),
    )
    .unwrap();
    let mut free = setup.sdfg.clone();
    to_cpu_free(&mut free).unwrap();
    let p = run_persistent(
        &free,
        2,
        &setup.user_bindings(),
        setup.tsteps,
        ExecMode::Full,
        &|pe, arr| setup.init_local(pe, arr),
    )
    .unwrap();
    assert_eq!(d.finals["A"], p.finals["A"]);
}

#[test]
fn jacobi2d_discrete_matches_reference() {
    let setup = Jacobi2dSetup::new(5, 7, 3, 4);
    let mut sdfg = setup.sdfg.clone();
    gpu_transform(&mut sdfg);
    let out = run_discrete(
        &sdfg,
        4,
        &setup.user_bindings(),
        setup.tsteps,
        ExecMode::Full,
        &|pe, arr| setup.init_local(pe, arr),
    )
    .unwrap();
    let gathered = setup.gather(&out.finals["A"]);
    assert_eq!(max_diff(&gathered, &setup.reference()), 0.0);
}

#[test]
fn jacobi2d_cpu_free_matches_reference() {
    let setup = Jacobi2dSetup::new(5, 7, 3, 4);
    let mut sdfg = setup.sdfg.clone();
    to_cpu_free(&mut sdfg).unwrap();
    let out = run_persistent(
        &sdfg,
        4,
        &setup.user_bindings(),
        setup.tsteps,
        ExecMode::Full,
        &|pe, arr| setup.init_local(pe, arr),
    )
    .unwrap();
    let gathered = setup.gather(&out.finals["A"]);
    assert_eq!(max_diff(&gathered, &setup.reference()), 0.0);
}

#[test]
fn jacobi2d_rectangular_grids_verify() {
    // n=2 (2x1) and n=8 (4x2): the paper's "rectangular split" cases.
    for n in [2usize, 8] {
        let setup = Jacobi2dSetup::new(4, 4, 2, n);
        let mut sdfg = setup.sdfg.clone();
        to_cpu_free(&mut sdfg).unwrap();
        let out = run_persistent(
            &sdfg,
            n,
            &setup.user_bindings(),
            setup.tsteps,
            ExecMode::Full,
            &|pe, arr| setup.init_local(pe, arr),
        )
        .unwrap();
        let gathered = setup.gather(&out.finals["A"]);
        assert_eq!(max_diff(&gathered, &setup.reference()), 0.0, "n={n}");
    }
}

#[test]
fn single_pe_runs_without_communication() {
    let setup = Jacobi1dSetup::new(16, 4, 1);
    let mut sdfg = setup.sdfg.clone();
    to_cpu_free(&mut sdfg).unwrap();
    let out = run_persistent(
        &sdfg,
        1,
        &setup.user_bindings(),
        setup.tsteps,
        ExecMode::Full,
        &|pe, arr| setup.init_local(pe, arr),
    )
    .unwrap();
    let gathered = setup.gather(&out.finals["A"]);
    assert_eq!(max_diff(&gathered, &setup.reference()), 0.0);
}

#[test]
fn cpu_free_beats_discrete_baseline_1d() {
    // Fig 6.3a's shape: the persistent/NVSHMEM version wins because the
    // baseline pays per-call stream syncs and MPI host latencies.
    let setup = Jacobi1dSetup::new(4096, 20, 4);
    let mut base = setup.sdfg.clone();
    gpu_transform(&mut base);
    let d = run_discrete(
        &base,
        4,
        &setup.user_bindings(),
        setup.tsteps,
        ExecMode::TimingOnly,
        &|pe, arr| setup.init_local(pe, arr),
    )
    .unwrap();
    let mut free = setup.sdfg.clone();
    to_cpu_free(&mut free).unwrap();
    let p = run_persistent(
        &free,
        4,
        &setup.user_bindings(),
        setup.tsteps,
        ExecMode::TimingOnly,
        &|pe, arr| setup.init_local(pe, arr),
    )
    .unwrap();
    assert!(
        p.total < d.total,
        "CPU-Free {} should beat discrete {}",
        p.total,
        d.total
    );
}

#[test]
fn cpu_free_improvement_larger_in_2d_strided() {
    // Fig 6.3b: the strided east/west exchange makes the baseline far
    // worse (MPI_Type_vector on the host path), so the 2D improvement
    // exceeds the 1D improvement.
    let t = 6u64;
    let s1 = Jacobi1dSetup::new(4096, t, 4);
    let mut b1 = s1.sdfg.clone();
    gpu_transform(&mut b1);
    let d1 = run_discrete(
        &b1,
        4,
        &s1.user_bindings(),
        t,
        ExecMode::TimingOnly,
        &|pe, a| s1.init_local(pe, a),
    )
    .unwrap();
    let mut f1 = s1.sdfg.clone();
    to_cpu_free(&mut f1).unwrap();
    let p1 = run_persistent(
        &f1,
        4,
        &s1.user_bindings(),
        t,
        ExecMode::TimingOnly,
        &|pe, a| s1.init_local(pe, a),
    )
    .unwrap();

    let s2 = Jacobi2dSetup::new(256, 256, t, 4);
    let mut b2 = s2.sdfg.clone();
    gpu_transform(&mut b2);
    let d2 = run_discrete(
        &b2,
        4,
        &s2.user_bindings(),
        t,
        ExecMode::TimingOnly,
        &|pe, a| s2.init_local(pe, a),
    )
    .unwrap();
    let mut f2 = s2.sdfg.clone();
    to_cpu_free(&mut f2).unwrap();
    let p2 = run_persistent(
        &f2,
        4,
        &s2.user_bindings(),
        t,
        ExecMode::TimingOnly,
        &|pe, a| s2.init_local(pe, a),
    )
    .unwrap();

    let imp1 = 1.0 - p1.total.as_nanos() as f64 / d1.total.as_nanos() as f64;
    let imp2 = 1.0 - p2.total.as_nanos() as f64 / d2.total.as_nanos() as f64;
    assert!(
        imp2 > imp1,
        "2D improvement {imp2:.2} should exceed 1D improvement {imp1:.2}"
    );
}

#[test]
fn persistent_rejects_untransformed_program() {
    let setup = Jacobi1dSetup::new(8, 1, 2);
    let mut sdfg = setup.sdfg.clone();
    gpu_transform(&mut sdfg);
    // MPI nodes still present: persistent lowering must refuse.
    let err = run_persistent(
        &sdfg,
        2,
        &setup.user_bindings(),
        1,
        ExecMode::Full,
        &|pe, arr| setup.init_local(pe, arr),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        LowerError::MpiInPersistent | LowerError::MapNotScheduled(_)
    ));
}

#[test]
fn persistent_requires_symmetric_put_targets() {
    use dace_sim::transform::{gpu_persistent_kernel, mpi_to_nvshmem};
    let setup = Jacobi1dSetup::new(8, 1, 2);
    let mut sdfg = setup.sdfg.clone();
    gpu_transform(&mut sdfg);
    mpi_to_nvshmem(&mut sdfg).unwrap();
    // Deliberately skip NVSHMEMArray.
    gpu_persistent_kernel(&mut sdfg).unwrap();
    let err = run_persistent(
        &sdfg,
        2,
        &setup.user_bindings(),
        1,
        ExecMode::Full,
        &|pe, arr| setup.init_local(pe, arr),
    )
    .unwrap_err();
    assert!(matches!(err, LowerError::PutTargetNotSymmetric(_)));
}

#[test]
fn discrete_rejects_sequential_maps() {
    let setup = Jacobi1dSetup::new(8, 1, 2);
    let err = run_discrete(
        &setup.sdfg,
        2,
        &setup.user_bindings(),
        1,
        ExecMode::Full,
        &|pe, arr| setup.init_local(pe, arr),
    )
    .unwrap_err();
    assert!(matches!(err, LowerError::MapNotScheduled(_)));
}

#[test]
fn determinism_of_both_backends() {
    let setup = Jacobi2dSetup::new(4, 4, 3, 4);
    let mut free = setup.sdfg.clone();
    to_cpu_free(&mut free).unwrap();
    let run = || {
        run_persistent(
            &free,
            4,
            &setup.user_bindings(),
            setup.tsteps,
            ExecMode::Full,
            &|pe, arr| setup.init_local(pe, arr),
        )
        .unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.total, b.total);
    assert_eq!(a.checksum, b.checksum);
}

#[test]
fn block_granularity_verifies_and_is_not_slower() {
    use dace_sim::transform::{
        gpu_persistent_kernel, mpi_to_nvshmem_with, nvshmem_array, PutGranularity,
    };
    let setup = Jacobi2dSetup::new(6, 6, 3, 4);
    let build = |g: PutGranularity| {
        let mut sdfg = setup.sdfg.clone();
        gpu_transform(&mut sdfg);
        mpi_to_nvshmem_with(&mut sdfg, g).unwrap();
        nvshmem_array(&mut sdfg);
        gpu_persistent_kernel(&mut sdfg).unwrap();
        run_persistent(
            &sdfg,
            4,
            &setup.user_bindings(),
            setup.tsteps,
            ExecMode::Full,
            &|pe, a| setup.init_local(pe, a),
        )
        .unwrap()
    };
    let thread = build(PutGranularity::SingleThread);
    let block = build(PutGranularity::Block);
    // Identical numerics.
    assert_eq!(thread.finals["A"], block.finals["A"]);
    let gathered = setup.gather(&block.finals["A"]);
    let reference = setup.reference();
    assert_eq!(max_diff(&gathered, &reference), 0.0);
    // Cooperative transfers are never slower.
    assert!(block.total <= thread.total);
}

#[test]
fn put_mapped_node_transfers_correctly() {
    use dace_sim::expr::{Cond, CondOp, Expr};
    use dace_sim::ir::*;
    // Hand-built program: PE0 sends 4 elements to PE1's halo via the
    // Mapped single-element specialization.
    let sdfg = Sdfg {
        name: "mapped".into(),
        symbols: vec![],
        derived: vec![],
        arrays: vec![ArrayDecl {
            name: "A".into(),
            shape: vec![Expr::c(8)],
            storage: Storage::GpuNvshmem,
        }],
        body: vec![Cf::Loop {
            var: "t".into(),
            start: Expr::c(1),
            end: Expr::c(1),
            body: vec![Cf::State(State {
                name: "put".into(),
                ops: vec![GuardedOp::when(
                    Cond::new(Expr::s("rank"), CondOp::Eq, Expr::c(0)),
                    Op::Lib(LibNode::PutMapped {
                        dst: DataRef::new("A", vec![DimRange::range(Expr::c(4), Expr::c(4))]),
                        src: DataRef::new("A", vec![DimRange::range(Expr::c(0), Expr::c(4))]),
                        pe: Expr::c(1),
                    }),
                )],
            })],
            persistent: true,
        }],
    };
    let out = run_persistent(
        &sdfg,
        2,
        &Default::default(),
        1,
        ExecMode::Full,
        &|pe, _| {
            if pe == 0 {
                vec![1.0, 2.0, 3.0, 4.0, 0.0, 0.0, 0.0, 0.0]
            } else {
                vec![0.0; 8]
            }
        },
    )
    .unwrap();
    assert_eq!(&out.finals["A"][1][4..8], &[1.0, 2.0, 3.0, 4.0]);
}
