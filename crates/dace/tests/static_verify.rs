//! Negative-path and property tests for the static protocol verifier:
//! each hand-built non-conforming SDFG must produce exactly the expected
//! `DiagKind` naming both endpoints, and the transform pipeline's outputs
//! must always verify clean.

mod fixtures;

use dace_sim::expr::Expr;
use dace_sim::ir::{
    ArrayDecl, Cf, GuardedOp, MapOp, Op, Schedule, Sdfg, State, Storage, TaskletKind,
};
use dace_sim::programs::{Jacobi1dSetup, Jacobi2dSetup};
use dace_sim::transform::{
    gpu_persistent_kernel, gpu_transform, map_fusion, mpi_to_nvshmem_with, nvshmem_array,
    to_cpu_free, PutGranularity,
};
use dace_sim::verify::verify_sdfg;
use dace_sim::Bindings;
use sim_des::DiagKind;

// ---------------------------------------------------------------------------
// Negative paths: one fixture per check family
// ---------------------------------------------------------------------------

#[test]
fn unmatched_wait_yields_unmatched_and_lost() {
    let sdfg = fixtures::unmatched_wait();
    let report = verify_sdfg(&sdfg, 2, &Bindings::default());
    let mut kinds: Vec<DiagKind> = report.diags.iter().map(|d| d.kind).collect();
    kinds.sort_by_key(|k| format!("{k}"));
    assert_eq!(
        kinds,
        vec![DiagKind::LostSignal, DiagKind::UnmatchedSignalWait],
        "unexpected diagnostic set:\n{report}"
    );
    for d in &report.diags {
        assert_eq!(d.pe, Some(0), "waiter endpoint: {d}");
        assert_eq!(d.subject, "flag #7", "subject: {d}");
        assert!(d.message.contains("pe0"), "message names the waiter: {d}");
    }
}

#[test]
fn nbi_source_overwrite_before_ack_is_flagged() {
    let sdfg = fixtures::nbi_reuse();
    let report = verify_sdfg(&sdfg, 2, &Bindings::default());
    assert_eq!(
        report.diags.len(),
        1,
        "expected exactly one diag:\n{report}"
    );
    let d = &report.diags[0];
    assert_eq!(d.kind, DiagKind::NbiSourceReuse);
    assert_eq!(d.pe, Some(0), "writer endpoint: {d}");
    assert_eq!(d.peer, Some(1), "put target endpoint: {d}");
    assert_eq!(d.subject, "A");
    assert!(
        d.message.contains("pe0") && d.message.contains("pe1") && d.message.contains("`A`"),
        "message names both endpoints and the array: {d}"
    );
}

#[test]
fn nbi_reuse_fixture_is_clean_with_quiet_before_write() {
    // Moving the ack wait in front of the overwrite (swap the last two
    // states) makes the same program conforming — the diagnostic really is
    // about ordering, not about the put itself.
    let mut sdfg = fixtures::nbi_reuse();
    if let Some(Cf::Loop { body, .. }) = sdfg.body.first_mut() {
        body.swap(1, 2);
    }
    let report = verify_sdfg(&sdfg, 2, &Bindings::default());
    assert!(report.clean(), "reordered fixture should verify:\n{report}");
}

#[test]
fn halo_put_undercovering_reads_is_flagged() {
    let sdfg = fixtures::halo_gap();
    let report = verify_sdfg(&sdfg, 2, &Bindings::default());
    assert_eq!(
        report.diags.len(),
        1,
        "expected exactly one diag:\n{report}"
    );
    let d = &report.diags[0];
    assert_eq!(d.kind, DiagKind::HaloCoverageGap);
    assert_eq!(d.pe, Some(1), "consumer endpoint: {d}");
    assert_eq!(d.peer, Some(0), "producer endpoint: {d}");
    assert_eq!(d.subject, "A");
    assert!(
        d.message.contains("pe1") && d.message.contains("pe0") && d.message.contains("`A`"),
        "message names both endpoints and the array: {d}"
    );
}

#[test]
fn put_to_non_symmetric_array_is_flagged() {
    let sdfg = fixtures::bad_storage();
    let report = verify_sdfg(&sdfg, 2, &Bindings::default());
    assert_eq!(
        report.diags.len(),
        1,
        "expected exactly one diag:\n{report}"
    );
    let d = &report.diags[0];
    assert_eq!(d.kind, DiagKind::StorageClassViolation);
    assert_eq!(d.pe, Some(0), "issuer endpoint: {d}");
    assert_eq!(d.peer, Some(1), "target endpoint: {d}");
    assert_eq!(d.subject, "G");
    assert!(
        d.message.contains("pe0") && d.message.contains("pe1") && d.message.contains("`G`"),
        "message names both endpoints and the array: {d}"
    );
}

#[test]
fn unthrottled_producer_is_flagged() {
    let sdfg = fixtures::one_sided_throttle();
    let report = verify_sdfg(&sdfg, 2, &Bindings::default());
    assert_eq!(
        report.diags.len(),
        1,
        "expected exactly one diag:\n{report}"
    );
    let d = &report.diags[0];
    assert_eq!(d.kind, DiagKind::IterationDivergence);
    assert_eq!(d.pe, Some(0));
    assert_eq!(d.peer, Some(1));
    assert!(
        d.message.contains("pe0") && d.message.contains("pe1"),
        "message names the pair: {d}"
    );
}

// ---------------------------------------------------------------------------
// Property: map_fusion is idempotent
// ---------------------------------------------------------------------------

/// A state with two adjacent fusable maps: independent (disjoint arrays),
/// same range, same schedule, no guards. The shipped programs keep their
/// sweeps in separate states, so exercise the fusion path explicitly.
fn two_sweep_sdfg(points: i64) -> Sdfg {
    let sweep = |name: &str, src: &str, dst: &str| {
        GuardedOp::new(Op::Map(MapOp {
            name: name.into(),
            schedule: Schedule::GpuDevice,
            range: vec![("i".into(), Expr::c(1), Expr::c(points))],
            tasklet: TaskletKind::Jacobi1d {
                src: src.into(),
                dst: dst.into(),
            },
        }))
    };
    Sdfg {
        name: "two_sweeps".into(),
        symbols: vec![],
        derived: vec![],
        arrays: ["A", "B", "C", "D"]
            .iter()
            .map(|n| ArrayDecl {
                name: (*n).into(),
                shape: vec![Expr::c(points + 2)],
                storage: Storage::Gpu,
            })
            .collect(),
        body: vec![Cf::State(State {
            name: "sweeps".into(),
            ops: vec![sweep("first", "A", "B"), sweep("second", "C", "D")],
        })],
    }
}

#[test]
fn map_fusion_is_idempotent() {
    for points in [2, 8, 33] {
        let mut sdfg = two_sweep_sdfg(points);
        let first = map_fusion(&mut sdfg);
        assert_eq!(first, 1, "points={points}: two fusable maps fuse once");
        let after_first = format!("{sdfg:?}");
        let second = map_fusion(&mut sdfg);
        assert_eq!(second, 0, "points={points}: second pass finds nothing");
        assert_eq!(
            format!("{sdfg:?}"),
            after_first,
            "points={points}: second pass must not change the SDFG"
        );
    }
    // Also on the shipped programs, transformed or not.
    for n_pes in [1, 4] {
        let mut sdfg = Jacobi1dSetup::new(8, 3, n_pes).sdfg;
        gpu_transform(&mut sdfg);
        let first = map_fusion(&mut sdfg);
        let snapshot = format!("{sdfg:?}");
        assert_eq!(map_fusion(&mut sdfg), 0, "first pass fused {first}");
        assert_eq!(format!("{sdfg:?}"), snapshot);
    }
}

// ---------------------------------------------------------------------------
// Property: transform outputs always pass the static verifier
// ---------------------------------------------------------------------------

#[test]
fn to_cpu_free_outputs_verify_clean_on_seeded_1d_variants() {
    for chunk in [4, 8, 16] {
        for tsteps in [1, 2, 5] {
            for n_pes in [1, 2, 3, 4] {
                let setup = Jacobi1dSetup::new(chunk, tsteps, n_pes);
                let user = setup.user_bindings();
                let mut sdfg = setup.sdfg;
                to_cpu_free(&mut sdfg).unwrap();
                let report = verify_sdfg(&sdfg, n_pes, &user);
                assert!(
                    report.clean(),
                    "chunk={chunk} T={tsteps} n_pes={n_pes}:\n{report}"
                );
            }
        }
    }
}

#[test]
fn to_cpu_free_outputs_verify_clean_on_seeded_2d_variants() {
    for (rows, cols) in [(4, 4), (2, 6), (8, 4)] {
        for n_pes in [1, 2, 4, 8] {
            let setup = Jacobi2dSetup::new(rows, cols, 3, n_pes);
            let user = setup.user_bindings();
            let mut sdfg = setup.sdfg;
            to_cpu_free(&mut sdfg).unwrap();
            let report = verify_sdfg(&sdfg, n_pes, &user);
            assert!(
                report.clean(),
                "rows={rows} cols={cols} n_pes={n_pes}:\n{report}"
            );
        }
    }
}

#[test]
fn block_granularity_pipeline_verifies_clean() {
    for n_pes in [2, 4] {
        let setup = Jacobi1dSetup::new(8, 3, n_pes);
        let user = setup.user_bindings();
        let mut sdfg = setup.sdfg;
        gpu_transform(&mut sdfg);
        mpi_to_nvshmem_with(&mut sdfg, PutGranularity::Block).unwrap();
        nvshmem_array(&mut sdfg);
        gpu_persistent_kernel(&mut sdfg).unwrap();
        let report = verify_sdfg(&sdfg, n_pes, &user);
        assert!(report.clean(), "n_pes={n_pes}:\n{report}");
    }
}
