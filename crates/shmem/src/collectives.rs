//! Device-side collectives built on the RMA + signaling primitives —
//! what applications beyond stencils (iterative solvers with global
//! reductions, §PERKS-style CG) need from the communication layer.
//!
//! The scalar allreduce uses **recursive doubling** for power-of-two PE
//! counts (log₂ n rounds of pairwise exchange) and a **ring** otherwise.
//! Floating-point combination order is fixed by PE index (lower PE's value
//! is always the left operand), so every PE computes the *bitwise
//! identical* result — and so can a reference implementation.
//!
//! Neighbor selection is **topology-derived**: the ring walks the
//! machine's [`gpu_sim::Topology::ring_order`] embedding (route-nearest
//! neighbors) and the broadcast fans out in
//! [`gpu_sim::Topology::bcast_order`] (closest PEs first), instead of
//! hardcoded rank arithmetic. Numerical results do not depend on the
//! topology — only the virtual time does.

use crate::{ShmemCtx, ShmemWorld, SymArray, SymSignal};
use gpu_sim::{Buf, KernelCtx};
use sim_des::{Cmp, SignalOp, SimDur};

/// Reduction operator for collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum (left-to-right by PE index).
    Sum,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
}

impl ReduceOp {
    /// Combine two values with a fixed operand order.
    #[inline]
    pub fn combine(self, left: f64, right: f64) -> f64 {
        match self {
            ReduceOp::Sum => left + right,
            ReduceOp::Max => left.max(right),
            ReduceOp::Min => left.min(right),
        }
    }
}

/// Collectively-allocated workspace for scalar all-reductions.
///
/// One instance per kernel role: every PE's participating agent clones the
/// workspace and keeps a private sequence counter, so the same workspace
/// can be reused every iteration of a persistent kernel.
#[derive(Clone)]
pub struct AllreduceWs {
    /// One slot per round (recursive doubling / ring).
    slots: SymArray,
    /// One data-arrival signal per round.
    sigs: Vec<SymSignal>,
    /// One consumption-acknowledgement signal per round: a writer may not
    /// reuse a slot for epoch `e` until the reader acked epoch `e-1`
    /// (otherwise a fast PE can overwrite a slot the slow PE has not read).
    acks: Vec<SymSignal>,
    /// Local call counter (signal epochs).
    seq: u64,
    n_pes: usize,
    rounds: usize,
}

impl AllreduceWs {
    /// Collective allocation over the world.
    pub fn new(world: &ShmemWorld) -> AllreduceWs {
        let n = world.n_pes();
        let rounds = if n.is_power_of_two() {
            n.trailing_zeros() as usize
        } else {
            n.saturating_sub(1)
        };
        let rounds = rounds.max(1);
        AllreduceWs {
            slots: world.malloc("allreduce.slots", rounds),
            sigs: world.signals(rounds, 0),
            acks: world.signals(rounds, 0),
            seq: 0,
            n_pes: n,
            rounds,
        }
    }

    /// Collective allocation sized for **ring** collectives over *any*
    /// member subset: always `n - 1` round slots, regardless of whether
    /// the world size is a power of two. Required by
    /// [`allreduce_scalar_quorum`], whose quorum size is not known at
    /// allocation time (a quorum of `m` members needs `m - 1` distinct
    /// slots, and `m` can be as large as `n`).
    pub fn new_ring(world: &ShmemWorld) -> AllreduceWs {
        let n = world.n_pes();
        let rounds = n.saturating_sub(1).max(1);
        AllreduceWs {
            slots: world.malloc("allreduce.slots", rounds),
            sigs: world.signals(rounds, 0),
            acks: world.signals(rounds, 0),
            seq: 0,
            n_pes: n,
            rounds,
        }
    }

    /// Number of communication rounds per allreduce call.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The local call counter (signal epoch of the last completed call).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Rewind the local call counter — checkpoint/restart support. The
    /// counter is a pure function of how many allreduces completed, so a
    /// recovery protocol can recompute it from the checkpoint iteration.
    pub fn set_seq(&mut self, seq: u64) {
        self.seq = seq;
    }

    /// Reset this PE's *local* arrival and ack flags to the epoch `seq` —
    /// the value they hold in a fault-free run after `seq` completed calls.
    /// Part of rollback: wipes any flag advance from an abandoned call so a
    /// post-restart wait cannot be satisfied by stale state. Only safe when
    /// nothing is in flight toward this PE (quiet + barrier first).
    pub fn reset_local(&self, ctx: &mut KernelCtx<'_>, me: usize, seq: u64) {
        for k in 0..self.rounds {
            ctx.agent_mut()
                .signal(self.sigs[k].flag(me), SignalOp::Set, seq);
            ctx.agent_mut()
                .signal(self.acks[k].flag(me), SignalOp::Set, seq);
        }
    }
}

/// All-reduce a scalar across every PE. Exactly one agent per PE must call
/// this per "epoch"; all PEs receive the identical result.
pub fn allreduce_scalar(
    sh: &mut ShmemCtx,
    ctx: &mut KernelCtx<'_>,
    ws: &mut AllreduceWs,
    value: f64,
    op: ReduceOp,
) -> f64 {
    let n = ws.n_pes;
    if n == 1 {
        return value;
    }
    ws.seq += 1;
    let me = sh.my_pe();
    let topo = std::sync::Arc::clone(sh.world().topology());
    let order = topo.ring_order();
    let pos = topo.ring_position(me);
    // One scratch cell per round: an nbi put reads its source at delivery
    // time, so a cell must stay untouched while its put is in flight
    // (NVSHMEM's source-buffer reuse rule). Reuse across *calls* is safe:
    // the ack handshake orders it behind the consumption of the delivery.
    let scratch = ctx
        .machine()
        .alloc(ctx.device(), "allreduce.src", ws.rounds);
    let mut acc = value;
    if n.is_power_of_two() {
        // Recursive doubling over ring *positions*: at round k exchange
        // with the PE whose position is pos ^ 2^k (identity ranks on every
        // preset, but derived from the topology's embedding).
        for k in 0..ws.rounds {
            let partner = order[pos ^ (1 << k)];
            // Flow control: the partner must have consumed my previous
            // epoch's value in this slot before I overwrite it.
            sh.signal_wait_until(ctx, &ws.acks[k], Cmp::Ge, ws.seq - 1);
            ctx.check_write(&scratch, k, k + 1, "allreduce scratch");
            scratch.set(k, acc);
            sh.putmem_signal_nbi(
                ctx,
                &ws.slots,
                k,
                &scratch,
                k,
                1,
                &ws.sigs[k],
                SignalOp::Set,
                ws.seq,
                partner,
            );
            sh.signal_wait_until(ctx, &ws.sigs[k], Cmp::Ge, ws.seq);
            ctx.check_read(ws.slots.local(me), k, k + 1, "allreduce slot");
            let theirs = ws.slots.local(me).get(k);
            // Acknowledge consumption so the partner may reuse the slot.
            sh.signal_op(ctx, &ws.acks[k], SignalOp::Set, ws.seq, partner);
            // Fixed operand order: lower PE index on the left.
            acc = if partner < me {
                op.combine(theirs, acc)
            } else {
                op.combine(acc, theirs)
            };
        }
        acc
    } else {
        // Ring: accumulate PE 0..n in order at every PE simultaneously —
        // n-1 rounds, each PE forwards its running prefix to the right.
        // Round r: receive prefix of values [0..=r] if it's my turn.
        // Simple (and deterministic): everyone sends its ORIGINAL value
        // around the ring; each PE accumulates in global PE order.
        let mut values = vec![0.0f64; n];
        values[me] = value;
        let right = order[(pos + 1) % n];
        let left = order[(pos + n - 1) % n];
        let mut forwarding = value;
        for r in 0..n - 1 {
            let slot = r.min(ws.rounds - 1);
            // Flow control: my RIGHT neighbor must have consumed my
            // previous write to this slot (ring has no inherent
            // backpressure toward the writer).
            sh.signal_wait_until(ctx, &ws.acks[slot], Cmp::Ge, ws.seq - 1);
            ctx.check_write(&scratch, slot, slot + 1, "allreduce scratch");
            scratch.set(slot, forwarding);
            sh.putmem_signal_nbi(
                ctx,
                &ws.slots,
                slot,
                &scratch,
                slot,
                1,
                &ws.sigs[slot],
                SignalOp::Set,
                ws.seq,
                right,
            );
            sh.signal_wait_until(ctx, &ws.sigs[slot], Cmp::Ge, ws.seq);
            ctx.check_read(ws.slots.local(me), slot, slot + 1, "allreduce slot");
            let got = ws.slots.local(me).get(slot);
            // Acknowledge to my LEFT neighbor (the slot's writer).
            sh.signal_op(ctx, &ws.acks[slot], SignalOp::Set, ws.seq, left);
            // The value received at round r originated r+1 ring positions
            // to my left.
            let origin = order[(pos + n - r - 1) % n];
            values[origin] = got;
            forwarding = got;
        }
        // Combination stays in global PE-index order regardless of the
        // ring embedding, so results are topology-invariant.
        let mut acc = values[0];
        for v in &values[1..] {
            acc = op.combine(acc, *v);
        }
        acc
    }
}

/// Fault-tolerant scalar allreduce: the same fixed-order recursive-doubling
/// / ring exchange as [`allreduce_scalar`], hardened for fault-injected
/// runs —
///
/// * every wait is **deadline-sliced**: between `poll`-long slices the
///   `interrupted` predicate runs, and a `true` abandons the call (`None`),
///   letting the caller join a rollback instead of waiting on a peer that
///   restarted;
/// * every put is **retried** ([`ShmemCtx::putmem_signal_reliable`]), so a
///   dropped delivery inside the collective cannot hang the partner —
///   extra attempts are accumulated into `retries`.
///
/// On `None` the workspace counter may have advanced past the abandoned
/// epoch; recovery must rewind it ([`AllreduceWs::set_seq`]) and reset the
/// local flags ([`AllreduceWs::reset_local`]) after the rollback barrier.
#[allow(clippy::too_many_arguments)]
pub fn allreduce_scalar_ft(
    sh: &mut ShmemCtx,
    ctx: &mut KernelCtx<'_>,
    ws: &mut AllreduceWs,
    value: f64,
    op: ReduceOp,
    poll: SimDur,
    retries: &mut u64,
    interrupted: &mut dyn FnMut(&ShmemCtx, &KernelCtx<'_>) -> bool,
) -> Option<f64> {
    let n = ws.n_pes;
    if n == 1 {
        return Some(value);
    }
    ws.seq += 1;
    let me = sh.my_pe();
    let topo = std::sync::Arc::clone(sh.world().topology());
    let order = topo.ring_order();
    let pos = topo.ring_position(me);
    // Per-round scratch cells — see `allreduce_scalar` for why.
    let scratch = ctx
        .machine()
        .alloc(ctx.device(), "allreduce.src", ws.rounds);
    // Interruptible wait on one of the workspace signals.
    macro_rules! wait {
        ($sig:expr, $val:expr) => {
            loop {
                if interrupted(sh, ctx) {
                    return None;
                }
                let deadline = ctx.now() + poll;
                if sh
                    .signal_wait_until_deadline(ctx, $sig, Cmp::Ge, $val, deadline)
                    .is_ok()
                {
                    break;
                }
            }
        };
    }
    if n.is_power_of_two() {
        let mut acc = value;
        for k in 0..ws.rounds {
            let partner = order[pos ^ (1 << k)];
            wait!(&ws.acks[k], ws.seq - 1);
            scratch.set(k, acc);
            *retries += (sh.putmem_signal_reliable(
                ctx,
                &ws.slots,
                k,
                &scratch,
                k,
                1,
                &ws.sigs[k],
                SignalOp::Set,
                ws.seq,
                partner,
            ) - 1) as u64;
            wait!(&ws.sigs[k], ws.seq);
            let theirs = ws.slots.local(me).get(k);
            sh.signal_op(ctx, &ws.acks[k], SignalOp::Set, ws.seq, partner);
            acc = if partner < me {
                op.combine(theirs, acc)
            } else {
                op.combine(acc, theirs)
            };
        }
        Some(acc)
    } else {
        let mut values = vec![0.0f64; n];
        values[me] = value;
        let right = order[(pos + 1) % n];
        let left = order[(pos + n - 1) % n];
        let mut forwarding = value;
        for r in 0..n - 1 {
            let slot = r.min(ws.rounds - 1);
            wait!(&ws.acks[slot], ws.seq - 1);
            scratch.set(slot, forwarding);
            *retries += (sh.putmem_signal_reliable(
                ctx,
                &ws.slots,
                slot,
                &scratch,
                slot,
                1,
                &ws.sigs[slot],
                SignalOp::Set,
                ws.seq,
                right,
            ) - 1) as u64;
            wait!(&ws.sigs[slot], ws.seq);
            let got = ws.slots.local(me).get(slot);
            sh.signal_op(ctx, &ws.acks[slot], SignalOp::Set, ws.seq, left);
            let origin = order[(pos + n - r - 1) % n];
            values[origin] = got;
            forwarding = got;
        }
        let mut acc = values[0];
        for v in &values[1..] {
            acc = op.combine(acc, *v);
        }
        Some(acc)
    }
}

/// Self-healing scalar allreduce over a **quorum**: the surviving members
/// of a degraded run complete the reduction among themselves, skipping
/// crashed PEs entirely.
///
/// The exchange is a ring over the quorum's embedding in the topology's
/// base ring ([`gpu_sim::Topology::ring_order_among`]) — the healed ring
/// simply closes the gap a dead PE leaves. Every put is retried
/// ([`ShmemCtx::putmem_signal_reliable`], extra attempts accumulated into
/// `retries`), and every wait declares its peer
/// ([`ShmemCtx::signal_wait_from`]) so a non-completing degraded run is
/// always attributed with a wait-for edge.
///
/// Returns the reduced value together with the **deterministic
/// contribution report**: the ascending PE ids whose values entered the
/// reduction. The combination order is global PE-index order over the
/// members, so the result is bitwise identical on every member and
/// topology-invariant — and reproducible by a sequential reference that
/// folds the members' values in ascending order.
///
/// Contract (asserted):
/// * `members` is sorted ascending, non-empty, and contains the caller;
/// * the workspace was allocated with [`AllreduceWs::new_ring`]
///   (`ws.rounds() >= members.len() - 1`);
/// * exactly one agent per *member* calls this per epoch — non-members
///   must not call;
/// * across consecutive epochs on the same workspace, membership only
///   **shrinks** (deaths are permanent), so every slot in use this epoch
///   carries a flow-control ack from the previous one.
#[allow(clippy::too_many_arguments)]
pub fn allreduce_scalar_quorum(
    sh: &mut ShmemCtx,
    ctx: &mut KernelCtx<'_>,
    ws: &mut AllreduceWs,
    value: f64,
    op: ReduceOp,
    members: &[usize],
    retries: &mut u64,
) -> (f64, Vec<usize>) {
    let me = sh.my_pe();
    assert!(
        members.windows(2).all(|w| w[0] < w[1]),
        "quorum must be sorted ascending: {members:?}"
    );
    assert!(
        members.contains(&me),
        "pe{me} called allreduce_scalar_quorum but is not in {members:?}"
    );
    let m = members.len();
    let report = members.to_vec();
    if m == 1 {
        ws.seq += 1;
        return (value, report);
    }
    assert!(
        ws.rounds >= m - 1,
        "workspace has {} round slots but quorum of {m} needs {} — allocate with AllreduceWs::new_ring",
        ws.rounds,
        m - 1
    );
    ws.seq += 1;
    let topo = std::sync::Arc::clone(sh.world().topology());
    let order = topo.ring_order_among(members);
    let pos = order
        .iter()
        .position(|&p| p == me)
        .expect("member missing from healed ring order");
    let right = order[(pos + 1) % m];
    let left = order[(pos + m - 1) % m];
    // Per-round scratch cells — see `allreduce_scalar` for why.
    let scratch = ctx
        .machine()
        .alloc(ctx.device(), "allreduce.src", ws.rounds);
    // Everyone circulates its ORIGINAL value around the healed ring; each
    // member records arrivals keyed by origin PE id.
    let mut values = vec![0.0f64; ws.n_pes];
    values[me] = value;
    let mut forwarding = value;
    for r in 0..m - 1 {
        let slot = r;
        // Flow control: my RIGHT neighbor (this slot's reader) must have
        // consumed my previous epoch's write. Membership only shrinks, so
        // the previous epoch used this slot too and acked it.
        sh.signal_wait_from(ctx, &ws.acks[slot], Cmp::Ge, ws.seq - 1, right);
        ctx.check_write(&scratch, slot, slot + 1, "allreduce scratch");
        scratch.set(slot, forwarding);
        *retries += (sh.putmem_signal_reliable(
            ctx,
            &ws.slots,
            slot,
            &scratch,
            slot,
            1,
            &ws.sigs[slot],
            SignalOp::Set,
            ws.seq,
            right,
        ) - 1) as u64;
        sh.signal_wait_from(ctx, &ws.sigs[slot], Cmp::Ge, ws.seq, left);
        ctx.check_read(ws.slots.local(me), slot, slot + 1, "allreduce slot");
        let got = ws.slots.local(me).get(slot);
        // Acknowledge to my LEFT neighbor (the slot's writer).
        sh.signal_op(ctx, &ws.acks[slot], SignalOp::Set, ws.seq, left);
        // The value received at round r originated r+1 healed-ring
        // positions to my left.
        let origin = order[(pos + m - r - 1) % m];
        values[origin] = got;
        forwarding = got;
    }
    // Combine in global PE-index order over the members — independent of
    // the ring embedding, hence topology-invariant and bitwise identical
    // on every member.
    let mut acc = values[members[0]];
    for &pe in &members[1..] {
        acc = op.combine(acc, values[pe]);
    }
    (acc, report)
}

/// Broadcast `len` elements of `arr` from `root`'s copy to every PE.
/// Exactly one agent per PE must call this; blocking.
pub fn broadcast(
    sh: &mut ShmemCtx,
    ctx: &mut KernelCtx<'_>,
    arr: &SymArray,
    sig: &SymSignal,
    epoch: u64,
    root: usize,
    len: usize,
) {
    let me = sh.my_pe();
    if me == root {
        // Fan out in topology order (closest PEs first) so near neighbors
        // are unblocked before far ones on routed topologies.
        let order = sh.world().topology().bcast_order(root);
        for pe in order {
            if pe == root {
                continue;
            }
            let src = arr.local(root).clone();
            sh.putmem_signal_nbi(ctx, arr, 0, &src, 0, len, sig, SignalOp::Set, epoch, pe);
        }
        sh.quiet(ctx);
    } else {
        sh.signal_wait_until(ctx, sig, Cmp::Ge, epoch);
    }
}

/// Collectively-allocated workspace for the **hierarchical** allreduce —
/// ring all-gather within each physical node, node-slice exchange around
/// the leader ring, leader fan-out to node members.
///
/// Sized from the machine's [`gpu_sim::Topology::node_groups`]: enough
/// round slots for the largest node's intra-node ring and for the
/// leader-ring slice exchange. One instance per kernel role; every PE's
/// agent clones it and keeps a private sequence counter, so the workspace
/// is reusable across epochs of a persistent kernel.
#[derive(Clone)]
pub struct HierAllreduceWs {
    /// Intra-node ring slots, one scalar per round.
    slots_a: SymArray,
    sigs_a: Vec<SymSignal>,
    acks_a: Vec<SymSignal>,
    /// Leader-ring slice slots, `stride_b` cells per round.
    slots_b: SymArray,
    sigs_b: Vec<SymSignal>,
    acks_b: Vec<SymSignal>,
    /// Leader fan-out landing zone: the full gathered vector (`n` cells).
    slots_c: SymArray,
    sig_c: SymSignal,
    /// Per-member consumption acks for the fan-out source, indexed by the
    /// member's position within its node.
    acks_c: Vec<SymSignal>,
    /// Cells per leader-ring round (largest node size).
    stride_b: usize,
    /// Per-agent persistent source scratch (phase A, leader ring,
    /// fan-out), lazily allocated on the agent's first call. An nbi put
    /// reads its source at delivery time, so source buffers must outlive
    /// the call that issued them; owning them here also keeps their
    /// allocation identities stable across epochs — a per-call buffer
    /// dropped at return could be reallocated at the same heap address
    /// while a previous epoch's reads are still in flight, colliding two
    /// distinct locations in the happens-before checker.
    scratch: Option<(Buf, Buf, Buf)>,
    seq: u64,
    n_pes: usize,
}

impl HierAllreduceWs {
    /// Collective allocation over the world, sized for the machine's node
    /// grouping.
    pub fn new(world: &ShmemWorld) -> HierAllreduceWs {
        let n = world.n_pes();
        let groups = world.topology().node_groups();
        let max_m = groups.iter().map(Vec::len).max().unwrap_or(1);
        let rounds_a = max_m.saturating_sub(1).max(1);
        let rounds_b = groups.len().saturating_sub(1).max(1);
        HierAllreduceWs {
            slots_a: world.malloc("hier.slots_a", rounds_a),
            sigs_a: world.signals(rounds_a, 0),
            acks_a: world.signals(rounds_a, 0),
            slots_b: world.malloc("hier.slots_b", rounds_b * max_m),
            sigs_b: world.signals(rounds_b, 0),
            acks_b: world.signals(rounds_b, 0),
            slots_c: world.malloc("hier.slots_c", n),
            sig_c: world.signal(0),
            acks_c: world.signals(max_m, 0),
            stride_b: max_m,
            scratch: None,
            seq: 0,
            n_pes: n,
        }
    }

    /// The local call counter (signal epoch of the last completed call).
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// Hierarchical scalar allreduce: ring **all-gather within each physical
/// node**, whole-node-slice exchange around the **leader ring**, then a
/// leader **fan-out** of the full vector to its node members. Exactly one
/// agent per PE must call this per epoch.
///
/// Only *values* move hierarchically — no partial sums are formed in
/// flight (floating-point combination is not associative), so every PE
/// ends holding all `n` original values and folds them in **global
/// PE-index order**, exactly the flat ring's combine order. The result is
/// therefore bitwise identical to [`allreduce_scalar`]'s ring path (and to
/// [`reference_reduce`] with `power_of_two = false`) on every topology
/// preset; only the virtual time differs. Node slices are contiguous PE
/// ranges ([`gpu_sim::Topology::node_groups`] guarantees it), so the
/// leader ring forwards each node's contribution as one contiguous put.
pub fn allreduce_scalar_hier(
    sh: &mut ShmemCtx,
    ctx: &mut KernelCtx<'_>,
    ws: &mut HierAllreduceWs,
    value: f64,
    op: ReduceOp,
) -> f64 {
    let n = ws.n_pes;
    ws.seq += 1;
    if n == 1 {
        return value;
    }
    let me = sh.my_pe();
    let topo = std::sync::Arc::clone(sh.world().topology());
    let groups = topo.node_groups();
    let g = groups
        .iter()
        .position(|grp| grp.contains(&me))
        .expect("PE missing from node grouping");
    let members = &groups[g];
    let m = members.len();
    let lpos = me - members[0];
    let leader = members[0];
    let n_nodes = groups.len();

    // gathered[i] = PE i's original contribution, filled phase by phase.
    let mut gathered = vec![0.0f64; n];
    gathered[me] = value;

    // Persistent per-phase scratch (see the `scratch` field): reuse
    // across calls is ordered by each phase's ack handshake. `Buf` is an
    // `Arc` handle, so the clones share the workspace's allocation.
    if ws.scratch.is_none() {
        ws.scratch = Some((
            ctx.machine()
                .alloc(ctx.device(), "hier.src_a", ws.sigs_a.len()),
            ctx.machine()
                .alloc(ctx.device(), "hier.src_b", ws.sigs_b.len() * ws.stride_b),
            ctx.machine().alloc(ctx.device(), "hier.src_c", n),
        ));
    }
    let (scratch_a, scratch_b, scratch_c) = ws.scratch.as_ref().unwrap().clone();

    // Phase A — ring all-gather within the node (members ascending, wrap):
    // everyone circulates its ORIGINAL value.
    if m > 1 {
        let scratch = &scratch_a;
        let right = members[(lpos + 1) % m];
        let left = members[(lpos + m - 1) % m];
        let mut forwarding = value;
        for r in 0..m - 1 {
            // Flow control: my RIGHT neighbor must have consumed my
            // previous epoch's write to this slot.
            sh.signal_wait_until(ctx, &ws.acks_a[r], Cmp::Ge, ws.seq - 1);
            ctx.check_write(scratch, r, r + 1, "hier intra scratch");
            scratch.set(r, forwarding);
            sh.putmem_signal_nbi(
                ctx,
                &ws.slots_a,
                r,
                scratch,
                r,
                1,
                &ws.sigs_a[r],
                SignalOp::Set,
                ws.seq,
                right,
            );
            sh.signal_wait_until(ctx, &ws.sigs_a[r], Cmp::Ge, ws.seq);
            ctx.check_read(ws.slots_a.local(me), r, r + 1, "hier intra slot");
            let got = ws.slots_a.local(me).get(r);
            sh.signal_op(ctx, &ws.acks_a[r], SignalOp::Set, ws.seq, left);
            // The value received at round r originated r+1 positions left.
            let origin = members[(lpos + m - r - 1) % m];
            gathered[origin] = got;
            forwarding = got;
        }
    }

    if n_nodes > 1 {
        if me == leader {
            // Phase B — leaders circulate whole node slices around the
            // leader ring (ascending node index). The slice forwarded at
            // round r originated r node-ring hops to our left.
            let scratch = &scratch_b;
            let right = groups[(g + 1) % n_nodes][0];
            let left = groups[(g + n_nodes - 1) % n_nodes][0];
            let mut fwd_node = g;
            for r in 0..n_nodes - 1 {
                let src_first = groups[fwd_node][0];
                let src_len = groups[fwd_node].len();
                let base = r * ws.stride_b;
                sh.signal_wait_until(ctx, &ws.acks_b[r], Cmp::Ge, ws.seq - 1);
                ctx.check_write(scratch, base, base + src_len, "hier leader scratch");
                scratch.write_slice(base, &gathered[src_first..src_first + src_len]);
                sh.putmem_signal_nbi(
                    ctx,
                    &ws.slots_b,
                    base,
                    scratch,
                    base,
                    src_len,
                    &ws.sigs_b[r],
                    SignalOp::Set,
                    ws.seq,
                    right,
                );
                sh.signal_wait_until(ctx, &ws.sigs_b[r], Cmp::Ge, ws.seq);
                // The slice arriving at round r originated r+1 hops left.
                let origin = (g + n_nodes - r - 1) % n_nodes;
                let dst_first = groups[origin][0];
                let dst_len = groups[origin].len();
                ctx.check_read(
                    ws.slots_b.local(me),
                    base,
                    base + dst_len,
                    "hier leader slot",
                );
                ws.slots_b
                    .local(me)
                    .read_slice(base, &mut gathered[dst_first..dst_first + dst_len]);
                sh.signal_op(ctx, &ws.acks_b[r], SignalOp::Set, ws.seq, left);
                fwd_node = origin;
            }
            // Phase C — hand each node member the full gathered vector.
            if m > 1 {
                let src = &scratch_c;
                // Every member must have consumed the previous epoch's
                // fan-out before the source is overwritten.
                for i in 1..m {
                    sh.signal_wait_until(ctx, &ws.acks_c[i], Cmp::Ge, ws.seq - 1);
                }
                ctx.check_write(src, 0, n, "hier bcast src");
                src.write_slice(0, &gathered);
                for &member in &members[1..] {
                    sh.putmem_signal_nbi(
                        ctx,
                        &ws.slots_c,
                        0,
                        src,
                        0,
                        n,
                        &ws.sig_c,
                        SignalOp::Set,
                        ws.seq,
                        member,
                    );
                }
            }
        } else {
            // Non-leader: the leader delivers all remote contributions.
            sh.signal_wait_until(ctx, &ws.sig_c, Cmp::Ge, ws.seq);
            ctx.check_read(ws.slots_c.local(me), 0, n, "hier bcast slot");
            ws.slots_c.local(me).read_slice(0, &mut gathered);
            sh.signal_op(ctx, &ws.acks_c[lpos], SignalOp::Set, ws.seq, leader);
        }
    }

    // Fold in global PE-index order — the flat ring's combine order, so
    // the result is bitwise identical on every PE and every preset.
    let mut acc = gathered[0];
    for v in &gathered[1..] {
        acc = op.combine(acc, *v);
    }
    acc
}

/// Collectively-allocated workspace for the personalized all-to-all
/// exchange (expert-parallel dispatch). One instance per kernel role;
/// clone per agent, reusable across epochs.
#[derive(Clone)]
pub struct AllToAllWs {
    /// `slots[i]` on PE `j` = the element PE `i` sent to `j`.
    slots: SymArray,
    /// `sigs[i]` = "PE `i`'s element has landed" (flag at the receiver).
    sigs: Vec<SymSignal>,
    /// `acks[j]` = "PE `j` consumed your element" (flag at the sender).
    acks: Vec<SymSignal>,
    /// Per-agent persistent send scratch, lazily allocated on first call
    /// (same lifetime/identity reasoning as [`HierAllreduceWs::scratch`]).
    scratch: Option<Buf>,
    seq: u64,
    n_pes: usize,
}

impl AllToAllWs {
    /// Collective allocation over the world.
    pub fn new(world: &ShmemWorld) -> AllToAllWs {
        let n = world.n_pes();
        AllToAllWs {
            slots: world.malloc("alltoall.slots", n),
            sigs: world.signals(n, 0),
            acks: world.signals(n, 0),
            scratch: None,
            seq: 0,
            n_pes: n,
        }
    }

    /// The local call counter (signal epoch of the last completed call).
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// Personalized all-to-all: PE `i`'s `src[j]` lands in PE `j`'s result
/// slot `i` (the expert-parallel dispatch pattern — every PE scatters one
/// element to each peer and gathers one from each). Exactly one agent per
/// PE must call this per epoch; `src.len()` must equal the PE count.
///
/// All sends are issued non-blocking in ascending destination order before
/// any arrival is drained, so the exchange overlaps fully; arrival slots
/// are single-writer (per-sender slot + per-sender signal) and reuse
/// across epochs is guarded by per-pair consumption acks. The returned
/// vector is indexed by source PE — folding it in index order gives the
/// same bits on every PE, which is how the expert-parallel property test
/// cross-checks it against the allreduce paths.
pub fn alltoall_scalar(
    sh: &mut ShmemCtx,
    ctx: &mut KernelCtx<'_>,
    ws: &mut AllToAllWs,
    src: &[f64],
) -> Vec<f64> {
    let n = ws.n_pes;
    assert_eq!(
        src.len(),
        n,
        "alltoall needs exactly one element per destination PE"
    );
    ws.seq += 1;
    let me = sh.my_pe();
    if n == 1 {
        return vec![src[0]];
    }
    // Per-destination scratch: an nbi put reads its source at delivery
    // time, so each cell stays untouched until the receiver acks the
    // previous epoch's element. Persistent across calls (see the
    // `scratch` field).
    let scratch = ws
        .scratch
        .get_or_insert_with(|| ctx.machine().alloc(ctx.device(), "alltoall.src", n))
        .clone();
    for (dst, &val) in src.iter().enumerate() {
        if dst == me {
            continue;
        }
        sh.signal_wait_until(ctx, &ws.acks[dst], Cmp::Ge, ws.seq - 1);
        ctx.check_write(&scratch, dst, dst + 1, "alltoall scratch");
        scratch.set(dst, val);
        sh.putmem_signal_nbi(
            ctx,
            &ws.slots,
            me,
            &scratch,
            dst,
            1,
            &ws.sigs[me],
            SignalOp::Set,
            ws.seq,
            dst,
        );
    }
    let mut out = vec![0.0f64; n];
    out[me] = src[me];
    for (from, slot) in out.iter_mut().enumerate() {
        if from == me {
            continue;
        }
        sh.signal_wait_until(ctx, &ws.sigs[from], Cmp::Ge, ws.seq);
        ctx.check_read(ws.slots.local(me), from, from + 1, "alltoall slot");
        *slot = ws.slots.local(me).get(from);
        sh.signal_op(ctx, &ws.acks[me], SignalOp::Set, ws.seq, from);
    }
    out
}

/// Reference combine over a slice in the same fixed order the distributed
/// allreduce uses — for bitwise verification of solver results.
pub fn reference_reduce(values: &[f64], op: ReduceOp, power_of_two: bool) -> f64 {
    let n = values.len();
    if n == 1 {
        return values[0];
    }
    if power_of_two && n.is_power_of_two() {
        // Recursive doubling combines pairwise by blocks.
        let mut vals = values.to_vec();
        let mut stride = 1;
        while stride < n {
            let mut next = vals.clone();
            for (i, slot) in next.iter_mut().enumerate() {
                let partner = i ^ stride;
                let (lo, hi) = if partner < i {
                    (partner, i)
                } else {
                    (i, partner)
                };
                *slot = op.combine(vals[lo], vals[hi]);
            }
            // All entries in a block of 2*stride now agree.
            vals = next;
            stride *= 2;
        }
        vals[0]
    } else {
        let mut acc = values[0];
        for v in &values[1..] {
            acc = op.combine(acc, *v);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{BlockGroup, CostModel, DevId, ExecMode, Machine};
    use sim_des::lock::Mutex;
    use std::sync::Arc;

    fn run_allreduce(n: usize, values: Vec<f64>, op: ReduceOp) -> Vec<f64> {
        run_allreduce_on(gpu_sim::TopologyKind::NvlinkAllToAll, n, values, op)
    }

    fn run_allreduce_on(
        kind: gpu_sim::TopologyKind,
        n: usize,
        values: Vec<f64>,
        op: ReduceOp,
    ) -> Vec<f64> {
        let machine = Machine::with_topology(n, CostModel::a100_hgx(), kind, ExecMode::Full);
        let world = ShmemWorld::init(&machine);
        let ws = AllreduceWs::new(&world);
        let results = Arc::new(Mutex::new(vec![0.0; n]));
        for (pe, &value) in values.iter().enumerate().take(n) {
            let world = world.clone();
            let mut ws = ws.clone();
            let results = Arc::clone(&results);
            machine.spawn_host(format!("rank{pe}"), move |host| {
                let k = host.launch_cooperative(
                    DevId(pe),
                    "allreduce",
                    1024,
                    vec![BlockGroup::new("g", 1, move |kc| {
                        let mut sh = ShmemCtx::new(&world, kc);
                        let r = allreduce_scalar(&mut sh, kc, &mut ws, value, op);
                        results.lock()[pe] = r;
                    })],
                );
                host.wait_cooperative(&k);
            });
        }
        machine.run().unwrap();
        Arc::try_unwrap(results).unwrap().into_inner()
    }

    #[test]
    fn allreduce_sum_power_of_two() {
        let vals = vec![1.0, 2.5, -3.0, 10.0];
        let out = run_allreduce(4, vals.clone(), ReduceOp::Sum);
        let expect = reference_reduce(&vals, ReduceOp::Sum, true);
        for (pe, r) in out.iter().enumerate() {
            assert_eq!(*r, expect, "pe {pe}");
        }
        assert_eq!(expect, 10.5);
    }

    #[test]
    fn allreduce_sum_eight_pes_identical_everywhere() {
        let vals: Vec<f64> = (0..8).map(|i| (i as f64) * 0.1 + 1.0).collect();
        let out = run_allreduce(8, vals.clone(), ReduceOp::Sum);
        let expect = reference_reduce(&vals, ReduceOp::Sum, true);
        assert!(out.iter().all(|r| *r == expect), "{out:?} != {expect}");
    }

    #[test]
    fn allreduce_max_and_min() {
        let vals = vec![3.0, -7.0, 11.0, 0.5];
        let mx = run_allreduce(4, vals.clone(), ReduceOp::Max);
        assert!(mx.iter().all(|r| *r == 11.0));
        let mn = run_allreduce(4, vals, ReduceOp::Min);
        assert!(mn.iter().all(|r| *r == -7.0));
    }

    #[test]
    fn allreduce_results_topology_invariant() {
        for n in [3usize, 4, 6, 8] {
            let vals: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) * 1.1).collect();
            let base = run_allreduce_on(
                gpu_sim::TopologyKind::NvlinkAllToAll,
                n,
                vals.clone(),
                ReduceOp::Sum,
            );
            for kind in gpu_sim::TopologyKind::presets() {
                let out = run_allreduce_on(kind, n, vals.clone(), ReduceOp::Sum);
                assert_eq!(out, base, "n={n} kind={}", kind.name());
            }
        }
    }

    #[test]
    fn allreduce_ring_non_power_of_two() {
        let vals = vec![1.0, 2.0, 4.0];
        let out = run_allreduce(3, vals.clone(), ReduceOp::Sum);
        let expect = reference_reduce(&vals, ReduceOp::Sum, false);
        assert_eq!(expect, 7.0);
        assert!(out.iter().all(|r| *r == expect), "{out:?}");
    }

    #[test]
    fn allreduce_single_pe_is_identity() {
        let out = run_allreduce(1, vec![42.0], ReduceOp::Sum);
        assert_eq!(out, vec![42.0]);
    }

    #[test]
    fn allreduce_reusable_across_epochs() {
        // Two consecutive allreduces in one kernel: counters must not clash.
        let n = 4;
        let machine = Machine::new(n, CostModel::a100_hgx(), ExecMode::Full);
        let world = ShmemWorld::init(&machine);
        let ws = AllreduceWs::new(&world);
        let results = Arc::new(Mutex::new(vec![(0.0, 0.0); n]));
        for pe in 0..n {
            let world = world.clone();
            let mut ws = ws.clone();
            let results = Arc::clone(&results);
            machine.spawn_host(format!("rank{pe}"), move |host| {
                let k = host.launch_cooperative(
                    DevId(pe),
                    "twice",
                    1024,
                    vec![BlockGroup::new("g", 1, move |kc| {
                        let mut sh = ShmemCtx::new(&world, kc);
                        let a = allreduce_scalar(&mut sh, kc, &mut ws, pe as f64, ReduceOp::Sum);
                        let b =
                            allreduce_scalar(&mut sh, kc, &mut ws, pe as f64 * 2.0, ReduceOp::Sum);
                        results.lock()[pe] = (a, b);
                    })],
                );
                host.wait_cooperative(&k);
            });
        }
        machine.run().unwrap();
        let out = results.lock();
        assert!(out.iter().all(|&(a, b)| a == 6.0 && b == 12.0), "{out:?}");
    }

    fn run_quorum_on(
        kind: gpu_sim::TopologyKind,
        n: usize,
        members: Vec<usize>,
        values: Vec<f64>,
        op: ReduceOp,
    ) -> Vec<(f64, Vec<usize>)> {
        let machine = Machine::with_topology(n, CostModel::a100_hgx(), kind, ExecMode::Full);
        let world = ShmemWorld::init(&machine);
        let ws = AllreduceWs::new_ring(&world);
        let results = Arc::new(Mutex::new(vec![(0.0, Vec::new()); n]));
        for &pe in &members {
            let world = world.clone();
            let mut ws = ws.clone();
            let members = members.clone();
            let value = values[pe];
            let results = Arc::clone(&results);
            machine.spawn_host(format!("rank{pe}"), move |host| {
                let k = host.launch_cooperative(
                    DevId(pe),
                    "quorum",
                    1024,
                    vec![BlockGroup::new("g", 1, move |kc| {
                        let mut sh = ShmemCtx::new(&world, kc);
                        let mut retries = 0u64;
                        let r = allreduce_scalar_quorum(
                            &mut sh,
                            kc,
                            &mut ws,
                            value,
                            op,
                            &members,
                            &mut retries,
                        );
                        results.lock()[pe] = r;
                    })],
                );
                host.wait_cooperative(&k);
            });
        }
        machine.run().unwrap();
        Arc::try_unwrap(results).unwrap().into_inner()
    }

    #[test]
    fn quorum_allreduce_skips_dead_pe_and_reports_members() {
        let members = vec![0usize, 1, 3]; // PE 2 is "dead"
        let vals = vec![1.5, -2.0, 999.0, 4.25];
        let out = run_quorum_on(
            gpu_sim::TopologyKind::NvlinkAllToAll,
            4,
            members.clone(),
            vals.clone(),
            ReduceOp::Sum,
        );
        let expect = 1.5 + -2.0 + 4.25; // ascending member order, PE 2 excluded
        for &pe in &members {
            assert_eq!(out[pe].0, expect, "pe {pe}");
            assert_eq!(out[pe].1, members, "pe {pe} contribution report");
        }
        // The dead PE's slot was never written.
        assert_eq!(out[2], (0.0, Vec::new()));
    }

    #[test]
    fn quorum_allreduce_topology_invariant() {
        let members = vec![0usize, 2, 3, 5];
        let vals: Vec<f64> = (0..6).map(|i| (i as f64) * 0.7 - 1.3).collect();
        let base = run_quorum_on(
            gpu_sim::TopologyKind::NvlinkAllToAll,
            6,
            members.clone(),
            vals.clone(),
            ReduceOp::Sum,
        );
        for kind in gpu_sim::TopologyKind::presets() {
            let out = run_quorum_on(kind, 6, members.clone(), vals.clone(), ReduceOp::Sum);
            assert_eq!(out, base, "kind={}", kind.name());
        }
        // And it matches the sequential fold over members in ascending order.
        let member_vals: Vec<f64> = members.iter().map(|&pe| vals[pe]).collect();
        let expect = reference_reduce(&member_vals, ReduceOp::Sum, false);
        assert!(base
            .iter()
            .enumerate()
            .all(|(pe, (v, _))| { !members.contains(&pe) || *v == expect }));
    }

    #[test]
    fn quorum_of_one_is_identity() {
        let out = run_quorum_on(
            gpu_sim::TopologyKind::NvlinkRing,
            4,
            vec![1],
            vec![0.0, 7.5, 0.0, 0.0],
            ReduceOp::Max,
        );
        assert_eq!(out[1], (7.5, vec![1]));
    }

    #[test]
    fn quorum_allreduce_reusable_as_membership_shrinks() {
        // Epoch 1 over {0,1,2,3}, epoch 2 over {0,1,3}: the flow-control
        // ack chain must stay satisfiable as the quorum shrinks.
        let n = 4;
        let machine = Machine::new(n, CostModel::a100_hgx(), ExecMode::Full);
        let world = ShmemWorld::init(&machine);
        let ws = AllreduceWs::new_ring(&world);
        let survivors = vec![0usize, 1, 3];
        let results = Arc::new(Mutex::new(vec![(0.0, 0.0); n]));
        for pe in 0..n {
            let world = world.clone();
            let mut ws = ws.clone();
            let survivors = survivors.clone();
            let results = Arc::clone(&results);
            machine.spawn_host(format!("rank{pe}"), move |host| {
                let k = host.launch_cooperative(
                    DevId(pe),
                    "shrink",
                    1024,
                    vec![BlockGroup::new("g", 1, move |kc| {
                        let mut sh = ShmemCtx::new(&world, kc);
                        let mut retries = 0u64;
                        let all = vec![0usize, 1, 2, 3];
                        let (a, _) = allreduce_scalar_quorum(
                            &mut sh,
                            kc,
                            &mut ws,
                            pe as f64,
                            ReduceOp::Sum,
                            &all,
                            &mut retries,
                        );
                        // PE 2 "dies" after epoch 1.
                        if pe == 2 {
                            results.lock()[pe] = (a, f64::NAN);
                            return;
                        }
                        let (b, _) = allreduce_scalar_quorum(
                            &mut sh,
                            kc,
                            &mut ws,
                            pe as f64 * 10.0,
                            ReduceOp::Sum,
                            &survivors,
                            &mut retries,
                        );
                        results.lock()[pe] = (a, b);
                    })],
                );
                host.wait_cooperative(&k);
            });
        }
        machine.run().unwrap();
        let out = results.lock();
        for &pe in &survivors {
            assert_eq!(out[pe], (6.0, 40.0), "pe {pe}");
        }
        assert_eq!(out[2].0, 6.0);
    }

    #[test]
    fn broadcast_delivers_to_all() {
        let n = 4;
        let machine = Machine::new(n, CostModel::a100_hgx(), ExecMode::Full);
        let world = ShmemWorld::init(&machine);
        let arr = world.malloc("bcast", 8);
        arr.local(2).write_slice(0, &[9.0; 8]); // root = 2
        let sig = world.signal(0);
        for pe in 0..n {
            let world = world.clone();
            let arr = arr.clone();
            let sig = sig.clone();
            machine.spawn_host(format!("rank{pe}"), move |host| {
                let k = host.launch_cooperative(
                    DevId(pe),
                    "bcast",
                    1024,
                    vec![BlockGroup::new("g", 1, move |kc| {
                        let mut sh = ShmemCtx::new(&world, kc);
                        broadcast(&mut sh, kc, &arr, &sig, 1, 2, 8);
                        assert_eq!(arr.local(pe).get(7), 9.0);
                    })],
                );
                host.wait_cooperative(&k);
            });
        }
        machine.run().unwrap();
    }

    #[test]
    fn reference_reduce_matches_simple_sum_for_associative_ints() {
        let vals: Vec<f64> = (1..=8).map(|v| v as f64).collect();
        assert_eq!(reference_reduce(&vals, ReduceOp::Sum, true), 36.0);
        assert_eq!(reference_reduce(&vals, ReduceOp::Sum, false), 36.0);
    }

    // -----------------------------------------------------------------
    // Hierarchical + all-to-all property suite: seeded values x every
    // preset x {flat ring, hierarchical, all-to-all} agree bitwise, with
    // the HB checker clean on every combination.
    // -----------------------------------------------------------------

    /// Seeded pseudo-random values in (-1, 1) — an LCG, so the suite needs
    /// no external randomness and every failure is replayable by seed.
    fn seeded_vals(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    /// Run the hierarchical allreduce (`epochs` back-to-back calls) on a
    /// checked machine; returns per-PE per-epoch results + the HB report.
    fn run_hier_checked(
        kind: gpu_sim::TopologyKind,
        n: usize,
        values: Vec<f64>,
        op: ReduceOp,
        epochs: usize,
    ) -> (Vec<Vec<f64>>, gpu_sim::CheckReport) {
        let machine =
            Machine::with_topology(n, CostModel::a100_hgx(), kind, ExecMode::Full).with_checker();
        let world = ShmemWorld::init(&machine);
        let ws = HierAllreduceWs::new(&world);
        let results = Arc::new(Mutex::new(vec![vec![0.0; epochs]; n]));
        for (pe, &value) in values.iter().enumerate().take(n) {
            let world = world.clone();
            let mut ws = ws.clone();
            let results = Arc::clone(&results);
            machine.spawn_host(format!("rank{pe}"), move |host| {
                let k = host.launch_cooperative(
                    DevId(pe),
                    "hier",
                    1024,
                    vec![BlockGroup::new("g", 1, move |kc| {
                        let mut sh = ShmemCtx::new(&world, kc);
                        for e in 0..epochs {
                            let v = value * (e as f64 + 1.0);
                            let r = allreduce_scalar_hier(&mut sh, kc, &mut ws, v, op);
                            results.lock()[pe][e] = r;
                        }
                    })],
                );
                host.wait_cooperative(&k);
            });
        }
        machine.run().unwrap();
        let report = machine.checker().unwrap().report();
        (Arc::try_unwrap(results).unwrap().into_inner(), report)
    }

    /// Run the personalized all-to-all on a checked machine: PE `i`
    /// scatters row `i` of `rows`; returns each PE's gathered vector.
    fn run_alltoall_checked(
        kind: gpu_sim::TopologyKind,
        n: usize,
        rows: Vec<Vec<f64>>,
    ) -> (Vec<Vec<f64>>, gpu_sim::CheckReport) {
        let machine =
            Machine::with_topology(n, CostModel::a100_hgx(), kind, ExecMode::Full).with_checker();
        let world = ShmemWorld::init(&machine);
        let ws = AllToAllWs::new(&world);
        let results = Arc::new(Mutex::new(vec![Vec::new(); n]));
        for (pe, row) in rows.iter().enumerate() {
            let world = world.clone();
            let mut ws = ws.clone();
            let row = row.clone();
            let results = Arc::clone(&results);
            machine.spawn_host(format!("rank{pe}"), move |host| {
                let k = host.launch_cooperative(
                    DevId(pe),
                    "alltoall",
                    1024,
                    vec![BlockGroup::new("g", 1, move |kc| {
                        let mut sh = ShmemCtx::new(&world, kc);
                        let out = alltoall_scalar(&mut sh, kc, &mut ws, &row);
                        results.lock()[pe] = out;
                    })],
                );
                host.wait_cooperative(&k);
            });
        }
        machine.run().unwrap();
        let report = machine.checker().unwrap().report();
        (Arc::try_unwrap(results).unwrap().into_inner(), report)
    }

    #[test]
    fn hierarchical_matches_flat_ring_and_alltoall_on_every_preset() {
        // n = 6 is not a power of two, so the flat allreduce genuinely
        // takes its ring path — all three collectives must then agree
        // bitwise with the sequential PE-order fold, on every fabric.
        let n = 6;
        for seed in [7u64, 42] {
            let vals = seeded_vals(seed, n);
            let expect = reference_reduce(&vals, ReduceOp::Sum, false);
            for kind in gpu_sim::TopologyKind::presets() {
                let flat = run_allreduce_on(kind, n, vals.clone(), ReduceOp::Sum);
                assert!(
                    flat.iter().all(|r| *r == expect),
                    "flat ring diverged: seed={seed} kind={}",
                    kind.name()
                );
                let (hier, report) = run_hier_checked(kind, n, vals.clone(), ReduceOp::Sum, 1);
                assert!(
                    report.clean(),
                    "hier checker dirty on {}:\n{report}",
                    kind.name()
                );
                assert!(
                    hier.iter().all(|r| r[0] == expect),
                    "hier diverged: seed={seed} kind={} {hier:?} != {expect}",
                    kind.name()
                );
                // Expert-parallel dispatch: every PE scatters its value to
                // all peers; the column fold is exactly the allreduce.
                let rows: Vec<Vec<f64>> = vals.iter().map(|&v| vec![v; n]).collect();
                let (a2a, report) = run_alltoall_checked(kind, n, rows);
                assert!(
                    report.clean(),
                    "alltoall checker dirty on {}:\n{report}",
                    kind.name()
                );
                for (pe, got) in a2a.iter().enumerate() {
                    let fold = reference_reduce(got, ReduceOp::Sum, false);
                    assert!(
                        fold == expect,
                        "alltoall fold diverged: seed={seed} kind={} pe={pe}",
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn hierarchical_is_reusable_across_epochs_on_cluster_fabrics() {
        // Two back-to-back epochs exercise the slot/ack flow control on
        // genuinely multi-node fabrics (n = 8 spans 2 fat-tree leaves,
        // 2 dragonfly routers, 1 rail node + partial occupancy).
        let n = 8;
        let vals = seeded_vals(3, n);
        for kind in gpu_sim::TopologyKind::cluster_presets() {
            let (out, report) = run_hier_checked(kind, n, vals.clone(), ReduceOp::Sum, 2);
            assert!(report.clean(), "{}:\n{report}", kind.name());
            for e in 0..2 {
                let scaled: Vec<f64> = vals.iter().map(|v| v * (e as f64 + 1.0)).collect();
                let expect = reference_reduce(&scaled, ReduceOp::Sum, false);
                assert!(
                    out.iter().all(|r| r[e] == expect),
                    "{} epoch {e}: {out:?}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn hierarchical_max_and_min_agree_with_reference() {
        let n = 6;
        let vals = seeded_vals(11, n);
        for op in [ReduceOp::Max, ReduceOp::Min] {
            let expect = reference_reduce(&vals, op, false);
            let (out, report) = run_hier_checked(
                gpu_sim::TopologyKind::Dragonfly {
                    groups: 6,
                    routers_per_group: 3,
                    gpus_per_router: 4,
                },
                n,
                vals.clone(),
                op,
                1,
            );
            assert!(report.clean(), "{report}");
            assert!(out.iter().all(|r| r[0] == expect), "{op:?}: {out:?}");
        }
    }

    #[test]
    fn alltoall_delivers_personalized_elements() {
        // PE i's element j must land exactly in PE j's slot i.
        let n = 4;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| (i * 10 + j) as f64).collect())
            .collect();
        let (out, report) = run_alltoall_checked(
            gpu_sim::TopologyKind::RailOptimized {
                nodes: 8,
                gpus_per_node: 8,
                rails: 4,
            },
            n,
            rows,
        );
        assert!(report.clean(), "{report}");
        for (j, gathered) in out.iter().enumerate() {
            for (i, &v) in gathered.iter().enumerate() {
                assert_eq!(v, (i * 10 + j) as f64, "slot ({i},{j})");
            }
        }
    }
}
