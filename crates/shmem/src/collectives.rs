//! Device-side collectives built on the RMA + signaling primitives —
//! what applications beyond stencils (iterative solvers with global
//! reductions, §PERKS-style CG) need from the communication layer.
//!
//! The scalar allreduce uses **recursive doubling** for power-of-two PE
//! counts (log₂ n rounds of pairwise exchange) and a **ring** otherwise.
//! Floating-point combination order is fixed by PE index (lower PE's value
//! is always the left operand), so every PE computes the *bitwise
//! identical* result — and so can a reference implementation.
//!
//! Neighbor selection is **topology-derived**: the ring walks the
//! machine's [`gpu_sim::Topology::ring_order`] embedding (route-nearest
//! neighbors) and the broadcast fans out in
//! [`gpu_sim::Topology::bcast_order`] (closest PEs first), instead of
//! hardcoded rank arithmetic. Numerical results do not depend on the
//! topology — only the virtual time does.

use crate::{ShmemCtx, ShmemWorld, SymArray, SymSignal};
use gpu_sim::KernelCtx;
use sim_des::{Cmp, SignalOp, SimDur};

/// Reduction operator for collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum (left-to-right by PE index).
    Sum,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
}

impl ReduceOp {
    /// Combine two values with a fixed operand order.
    #[inline]
    pub fn combine(self, left: f64, right: f64) -> f64 {
        match self {
            ReduceOp::Sum => left + right,
            ReduceOp::Max => left.max(right),
            ReduceOp::Min => left.min(right),
        }
    }
}

/// Collectively-allocated workspace for scalar all-reductions.
///
/// One instance per kernel role: every PE's participating agent clones the
/// workspace and keeps a private sequence counter, so the same workspace
/// can be reused every iteration of a persistent kernel.
#[derive(Clone)]
pub struct AllreduceWs {
    /// One slot per round (recursive doubling / ring).
    slots: SymArray,
    /// One data-arrival signal per round.
    sigs: Vec<SymSignal>,
    /// One consumption-acknowledgement signal per round: a writer may not
    /// reuse a slot for epoch `e` until the reader acked epoch `e-1`
    /// (otherwise a fast PE can overwrite a slot the slow PE has not read).
    acks: Vec<SymSignal>,
    /// Local call counter (signal epochs).
    seq: u64,
    n_pes: usize,
    rounds: usize,
}

impl AllreduceWs {
    /// Collective allocation over the world.
    pub fn new(world: &ShmemWorld) -> AllreduceWs {
        let n = world.n_pes();
        let rounds = if n.is_power_of_two() {
            n.trailing_zeros() as usize
        } else {
            n.saturating_sub(1)
        };
        let rounds = rounds.max(1);
        AllreduceWs {
            slots: world.malloc("allreduce.slots", rounds),
            sigs: world.signals(rounds, 0),
            acks: world.signals(rounds, 0),
            seq: 0,
            n_pes: n,
            rounds,
        }
    }

    /// Collective allocation sized for **ring** collectives over *any*
    /// member subset: always `n - 1` round slots, regardless of whether
    /// the world size is a power of two. Required by
    /// [`allreduce_scalar_quorum`], whose quorum size is not known at
    /// allocation time (a quorum of `m` members needs `m - 1` distinct
    /// slots, and `m` can be as large as `n`).
    pub fn new_ring(world: &ShmemWorld) -> AllreduceWs {
        let n = world.n_pes();
        let rounds = n.saturating_sub(1).max(1);
        AllreduceWs {
            slots: world.malloc("allreduce.slots", rounds),
            sigs: world.signals(rounds, 0),
            acks: world.signals(rounds, 0),
            seq: 0,
            n_pes: n,
            rounds,
        }
    }

    /// Number of communication rounds per allreduce call.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The local call counter (signal epoch of the last completed call).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Rewind the local call counter — checkpoint/restart support. The
    /// counter is a pure function of how many allreduces completed, so a
    /// recovery protocol can recompute it from the checkpoint iteration.
    pub fn set_seq(&mut self, seq: u64) {
        self.seq = seq;
    }

    /// Reset this PE's *local* arrival and ack flags to the epoch `seq` —
    /// the value they hold in a fault-free run after `seq` completed calls.
    /// Part of rollback: wipes any flag advance from an abandoned call so a
    /// post-restart wait cannot be satisfied by stale state. Only safe when
    /// nothing is in flight toward this PE (quiet + barrier first).
    pub fn reset_local(&self, ctx: &mut KernelCtx<'_>, me: usize, seq: u64) {
        for k in 0..self.rounds {
            ctx.agent_mut()
                .signal(self.sigs[k].flag(me), SignalOp::Set, seq);
            ctx.agent_mut()
                .signal(self.acks[k].flag(me), SignalOp::Set, seq);
        }
    }
}

/// All-reduce a scalar across every PE. Exactly one agent per PE must call
/// this per "epoch"; all PEs receive the identical result.
pub fn allreduce_scalar(
    sh: &mut ShmemCtx,
    ctx: &mut KernelCtx<'_>,
    ws: &mut AllreduceWs,
    value: f64,
    op: ReduceOp,
) -> f64 {
    let n = ws.n_pes;
    if n == 1 {
        return value;
    }
    ws.seq += 1;
    let me = sh.my_pe();
    let topo = std::sync::Arc::clone(sh.world().topology());
    let order = topo.ring_order();
    let pos = topo.ring_position(me);
    // One scratch cell per round: an nbi put reads its source at delivery
    // time, so a cell must stay untouched while its put is in flight
    // (NVSHMEM's source-buffer reuse rule). Reuse across *calls* is safe:
    // the ack handshake orders it behind the consumption of the delivery.
    let scratch = ctx
        .machine()
        .alloc(ctx.device(), "allreduce.src", ws.rounds);
    let mut acc = value;
    if n.is_power_of_two() {
        // Recursive doubling over ring *positions*: at round k exchange
        // with the PE whose position is pos ^ 2^k (identity ranks on every
        // preset, but derived from the topology's embedding).
        for k in 0..ws.rounds {
            let partner = order[pos ^ (1 << k)];
            // Flow control: the partner must have consumed my previous
            // epoch's value in this slot before I overwrite it.
            sh.signal_wait_until(ctx, &ws.acks[k], Cmp::Ge, ws.seq - 1);
            ctx.check_write(&scratch, k, k + 1, "allreduce scratch");
            scratch.set(k, acc);
            sh.putmem_signal_nbi(
                ctx,
                &ws.slots,
                k,
                &scratch,
                k,
                1,
                &ws.sigs[k],
                SignalOp::Set,
                ws.seq,
                partner,
            );
            sh.signal_wait_until(ctx, &ws.sigs[k], Cmp::Ge, ws.seq);
            ctx.check_read(ws.slots.local(me), k, k + 1, "allreduce slot");
            let theirs = ws.slots.local(me).get(k);
            // Acknowledge consumption so the partner may reuse the slot.
            sh.signal_op(ctx, &ws.acks[k], SignalOp::Set, ws.seq, partner);
            // Fixed operand order: lower PE index on the left.
            acc = if partner < me {
                op.combine(theirs, acc)
            } else {
                op.combine(acc, theirs)
            };
        }
        acc
    } else {
        // Ring: accumulate PE 0..n in order at every PE simultaneously —
        // n-1 rounds, each PE forwards its running prefix to the right.
        // Round r: receive prefix of values [0..=r] if it's my turn.
        // Simple (and deterministic): everyone sends its ORIGINAL value
        // around the ring; each PE accumulates in global PE order.
        let mut values = vec![0.0f64; n];
        values[me] = value;
        let right = order[(pos + 1) % n];
        let left = order[(pos + n - 1) % n];
        let mut forwarding = value;
        for r in 0..n - 1 {
            let slot = r.min(ws.rounds - 1);
            // Flow control: my RIGHT neighbor must have consumed my
            // previous write to this slot (ring has no inherent
            // backpressure toward the writer).
            sh.signal_wait_until(ctx, &ws.acks[slot], Cmp::Ge, ws.seq - 1);
            ctx.check_write(&scratch, slot, slot + 1, "allreduce scratch");
            scratch.set(slot, forwarding);
            sh.putmem_signal_nbi(
                ctx,
                &ws.slots,
                slot,
                &scratch,
                slot,
                1,
                &ws.sigs[slot],
                SignalOp::Set,
                ws.seq,
                right,
            );
            sh.signal_wait_until(ctx, &ws.sigs[slot], Cmp::Ge, ws.seq);
            ctx.check_read(ws.slots.local(me), slot, slot + 1, "allreduce slot");
            let got = ws.slots.local(me).get(slot);
            // Acknowledge to my LEFT neighbor (the slot's writer).
            sh.signal_op(ctx, &ws.acks[slot], SignalOp::Set, ws.seq, left);
            // The value received at round r originated r+1 ring positions
            // to my left.
            let origin = order[(pos + n - r - 1) % n];
            values[origin] = got;
            forwarding = got;
        }
        // Combination stays in global PE-index order regardless of the
        // ring embedding, so results are topology-invariant.
        let mut acc = values[0];
        for v in &values[1..] {
            acc = op.combine(acc, *v);
        }
        acc
    }
}

/// Fault-tolerant scalar allreduce: the same fixed-order recursive-doubling
/// / ring exchange as [`allreduce_scalar`], hardened for fault-injected
/// runs —
///
/// * every wait is **deadline-sliced**: between `poll`-long slices the
///   `interrupted` predicate runs, and a `true` abandons the call (`None`),
///   letting the caller join a rollback instead of waiting on a peer that
///   restarted;
/// * every put is **retried** ([`ShmemCtx::putmem_signal_reliable`]), so a
///   dropped delivery inside the collective cannot hang the partner —
///   extra attempts are accumulated into `retries`.
///
/// On `None` the workspace counter may have advanced past the abandoned
/// epoch; recovery must rewind it ([`AllreduceWs::set_seq`]) and reset the
/// local flags ([`AllreduceWs::reset_local`]) after the rollback barrier.
#[allow(clippy::too_many_arguments)]
pub fn allreduce_scalar_ft(
    sh: &mut ShmemCtx,
    ctx: &mut KernelCtx<'_>,
    ws: &mut AllreduceWs,
    value: f64,
    op: ReduceOp,
    poll: SimDur,
    retries: &mut u64,
    interrupted: &mut dyn FnMut(&ShmemCtx, &KernelCtx<'_>) -> bool,
) -> Option<f64> {
    let n = ws.n_pes;
    if n == 1 {
        return Some(value);
    }
    ws.seq += 1;
    let me = sh.my_pe();
    let topo = std::sync::Arc::clone(sh.world().topology());
    let order = topo.ring_order();
    let pos = topo.ring_position(me);
    // Per-round scratch cells — see `allreduce_scalar` for why.
    let scratch = ctx
        .machine()
        .alloc(ctx.device(), "allreduce.src", ws.rounds);
    // Interruptible wait on one of the workspace signals.
    macro_rules! wait {
        ($sig:expr, $val:expr) => {
            loop {
                if interrupted(sh, ctx) {
                    return None;
                }
                let deadline = ctx.now() + poll;
                if sh
                    .signal_wait_until_deadline(ctx, $sig, Cmp::Ge, $val, deadline)
                    .is_ok()
                {
                    break;
                }
            }
        };
    }
    if n.is_power_of_two() {
        let mut acc = value;
        for k in 0..ws.rounds {
            let partner = order[pos ^ (1 << k)];
            wait!(&ws.acks[k], ws.seq - 1);
            scratch.set(k, acc);
            *retries += (sh.putmem_signal_reliable(
                ctx,
                &ws.slots,
                k,
                &scratch,
                k,
                1,
                &ws.sigs[k],
                SignalOp::Set,
                ws.seq,
                partner,
            ) - 1) as u64;
            wait!(&ws.sigs[k], ws.seq);
            let theirs = ws.slots.local(me).get(k);
            sh.signal_op(ctx, &ws.acks[k], SignalOp::Set, ws.seq, partner);
            acc = if partner < me {
                op.combine(theirs, acc)
            } else {
                op.combine(acc, theirs)
            };
        }
        Some(acc)
    } else {
        let mut values = vec![0.0f64; n];
        values[me] = value;
        let right = order[(pos + 1) % n];
        let left = order[(pos + n - 1) % n];
        let mut forwarding = value;
        for r in 0..n - 1 {
            let slot = r.min(ws.rounds - 1);
            wait!(&ws.acks[slot], ws.seq - 1);
            scratch.set(slot, forwarding);
            *retries += (sh.putmem_signal_reliable(
                ctx,
                &ws.slots,
                slot,
                &scratch,
                slot,
                1,
                &ws.sigs[slot],
                SignalOp::Set,
                ws.seq,
                right,
            ) - 1) as u64;
            wait!(&ws.sigs[slot], ws.seq);
            let got = ws.slots.local(me).get(slot);
            sh.signal_op(ctx, &ws.acks[slot], SignalOp::Set, ws.seq, left);
            let origin = order[(pos + n - r - 1) % n];
            values[origin] = got;
            forwarding = got;
        }
        let mut acc = values[0];
        for v in &values[1..] {
            acc = op.combine(acc, *v);
        }
        Some(acc)
    }
}

/// Self-healing scalar allreduce over a **quorum**: the surviving members
/// of a degraded run complete the reduction among themselves, skipping
/// crashed PEs entirely.
///
/// The exchange is a ring over the quorum's embedding in the topology's
/// base ring ([`gpu_sim::Topology::ring_order_among`]) — the healed ring
/// simply closes the gap a dead PE leaves. Every put is retried
/// ([`ShmemCtx::putmem_signal_reliable`], extra attempts accumulated into
/// `retries`), and every wait declares its peer
/// ([`ShmemCtx::signal_wait_from`]) so a non-completing degraded run is
/// always attributed with a wait-for edge.
///
/// Returns the reduced value together with the **deterministic
/// contribution report**: the ascending PE ids whose values entered the
/// reduction. The combination order is global PE-index order over the
/// members, so the result is bitwise identical on every member and
/// topology-invariant — and reproducible by a sequential reference that
/// folds the members' values in ascending order.
///
/// Contract (asserted):
/// * `members` is sorted ascending, non-empty, and contains the caller;
/// * the workspace was allocated with [`AllreduceWs::new_ring`]
///   (`ws.rounds() >= members.len() - 1`);
/// * exactly one agent per *member* calls this per epoch — non-members
///   must not call;
/// * across consecutive epochs on the same workspace, membership only
///   **shrinks** (deaths are permanent), so every slot in use this epoch
///   carries a flow-control ack from the previous one.
#[allow(clippy::too_many_arguments)]
pub fn allreduce_scalar_quorum(
    sh: &mut ShmemCtx,
    ctx: &mut KernelCtx<'_>,
    ws: &mut AllreduceWs,
    value: f64,
    op: ReduceOp,
    members: &[usize],
    retries: &mut u64,
) -> (f64, Vec<usize>) {
    let me = sh.my_pe();
    assert!(
        members.windows(2).all(|w| w[0] < w[1]),
        "quorum must be sorted ascending: {members:?}"
    );
    assert!(
        members.contains(&me),
        "pe{me} called allreduce_scalar_quorum but is not in {members:?}"
    );
    let m = members.len();
    let report = members.to_vec();
    if m == 1 {
        ws.seq += 1;
        return (value, report);
    }
    assert!(
        ws.rounds >= m - 1,
        "workspace has {} round slots but quorum of {m} needs {} — allocate with AllreduceWs::new_ring",
        ws.rounds,
        m - 1
    );
    ws.seq += 1;
    let topo = std::sync::Arc::clone(sh.world().topology());
    let order = topo.ring_order_among(members);
    let pos = order
        .iter()
        .position(|&p| p == me)
        .expect("member missing from healed ring order");
    let right = order[(pos + 1) % m];
    let left = order[(pos + m - 1) % m];
    // Per-round scratch cells — see `allreduce_scalar` for why.
    let scratch = ctx
        .machine()
        .alloc(ctx.device(), "allreduce.src", ws.rounds);
    // Everyone circulates its ORIGINAL value around the healed ring; each
    // member records arrivals keyed by origin PE id.
    let mut values = vec![0.0f64; ws.n_pes];
    values[me] = value;
    let mut forwarding = value;
    for r in 0..m - 1 {
        let slot = r;
        // Flow control: my RIGHT neighbor (this slot's reader) must have
        // consumed my previous epoch's write. Membership only shrinks, so
        // the previous epoch used this slot too and acked it.
        sh.signal_wait_from(ctx, &ws.acks[slot], Cmp::Ge, ws.seq - 1, right);
        ctx.check_write(&scratch, slot, slot + 1, "allreduce scratch");
        scratch.set(slot, forwarding);
        *retries += (sh.putmem_signal_reliable(
            ctx,
            &ws.slots,
            slot,
            &scratch,
            slot,
            1,
            &ws.sigs[slot],
            SignalOp::Set,
            ws.seq,
            right,
        ) - 1) as u64;
        sh.signal_wait_from(ctx, &ws.sigs[slot], Cmp::Ge, ws.seq, left);
        ctx.check_read(ws.slots.local(me), slot, slot + 1, "allreduce slot");
        let got = ws.slots.local(me).get(slot);
        // Acknowledge to my LEFT neighbor (the slot's writer).
        sh.signal_op(ctx, &ws.acks[slot], SignalOp::Set, ws.seq, left);
        // The value received at round r originated r+1 healed-ring
        // positions to my left.
        let origin = order[(pos + m - r - 1) % m];
        values[origin] = got;
        forwarding = got;
    }
    // Combine in global PE-index order over the members — independent of
    // the ring embedding, hence topology-invariant and bitwise identical
    // on every member.
    let mut acc = values[members[0]];
    for &pe in &members[1..] {
        acc = op.combine(acc, values[pe]);
    }
    (acc, report)
}

/// Broadcast `len` elements of `arr` from `root`'s copy to every PE.
/// Exactly one agent per PE must call this; blocking.
pub fn broadcast(
    sh: &mut ShmemCtx,
    ctx: &mut KernelCtx<'_>,
    arr: &SymArray,
    sig: &SymSignal,
    epoch: u64,
    root: usize,
    len: usize,
) {
    let me = sh.my_pe();
    if me == root {
        // Fan out in topology order (closest PEs first) so near neighbors
        // are unblocked before far ones on routed topologies.
        let order = sh.world().topology().bcast_order(root);
        for pe in order {
            if pe == root {
                continue;
            }
            let src = arr.local(root).clone();
            sh.putmem_signal_nbi(ctx, arr, 0, &src, 0, len, sig, SignalOp::Set, epoch, pe);
        }
        sh.quiet(ctx);
    } else {
        sh.signal_wait_until(ctx, sig, Cmp::Ge, epoch);
    }
}

/// Reference combine over a slice in the same fixed order the distributed
/// allreduce uses — for bitwise verification of solver results.
pub fn reference_reduce(values: &[f64], op: ReduceOp, power_of_two: bool) -> f64 {
    let n = values.len();
    if n == 1 {
        return values[0];
    }
    if power_of_two && n.is_power_of_two() {
        // Recursive doubling combines pairwise by blocks.
        let mut vals = values.to_vec();
        let mut stride = 1;
        while stride < n {
            let mut next = vals.clone();
            for (i, slot) in next.iter_mut().enumerate() {
                let partner = i ^ stride;
                let (lo, hi) = if partner < i {
                    (partner, i)
                } else {
                    (i, partner)
                };
                *slot = op.combine(vals[lo], vals[hi]);
            }
            // All entries in a block of 2*stride now agree.
            vals = next;
            stride *= 2;
        }
        vals[0]
    } else {
        let mut acc = values[0];
        for v in &values[1..] {
            acc = op.combine(acc, *v);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{BlockGroup, CostModel, DevId, ExecMode, Machine};
    use sim_des::lock::Mutex;
    use std::sync::Arc;

    fn run_allreduce(n: usize, values: Vec<f64>, op: ReduceOp) -> Vec<f64> {
        run_allreduce_on(gpu_sim::TopologyKind::NvlinkAllToAll, n, values, op)
    }

    fn run_allreduce_on(
        kind: gpu_sim::TopologyKind,
        n: usize,
        values: Vec<f64>,
        op: ReduceOp,
    ) -> Vec<f64> {
        let machine = Machine::with_topology(n, CostModel::a100_hgx(), kind, ExecMode::Full);
        let world = ShmemWorld::init(&machine);
        let ws = AllreduceWs::new(&world);
        let results = Arc::new(Mutex::new(vec![0.0; n]));
        for (pe, &value) in values.iter().enumerate().take(n) {
            let world = world.clone();
            let mut ws = ws.clone();
            let results = Arc::clone(&results);
            machine.spawn_host(format!("rank{pe}"), move |host| {
                let k = host.launch_cooperative(
                    DevId(pe),
                    "allreduce",
                    1024,
                    vec![BlockGroup::new("g", 1, move |kc| {
                        let mut sh = ShmemCtx::new(&world, kc);
                        let r = allreduce_scalar(&mut sh, kc, &mut ws, value, op);
                        results.lock()[pe] = r;
                    })],
                );
                host.wait_cooperative(&k);
            });
        }
        machine.run().unwrap();
        Arc::try_unwrap(results).unwrap().into_inner()
    }

    #[test]
    fn allreduce_sum_power_of_two() {
        let vals = vec![1.0, 2.5, -3.0, 10.0];
        let out = run_allreduce(4, vals.clone(), ReduceOp::Sum);
        let expect = reference_reduce(&vals, ReduceOp::Sum, true);
        for (pe, r) in out.iter().enumerate() {
            assert_eq!(*r, expect, "pe {pe}");
        }
        assert_eq!(expect, 10.5);
    }

    #[test]
    fn allreduce_sum_eight_pes_identical_everywhere() {
        let vals: Vec<f64> = (0..8).map(|i| (i as f64) * 0.1 + 1.0).collect();
        let out = run_allreduce(8, vals.clone(), ReduceOp::Sum);
        let expect = reference_reduce(&vals, ReduceOp::Sum, true);
        assert!(out.iter().all(|r| *r == expect), "{out:?} != {expect}");
    }

    #[test]
    fn allreduce_max_and_min() {
        let vals = vec![3.0, -7.0, 11.0, 0.5];
        let mx = run_allreduce(4, vals.clone(), ReduceOp::Max);
        assert!(mx.iter().all(|r| *r == 11.0));
        let mn = run_allreduce(4, vals, ReduceOp::Min);
        assert!(mn.iter().all(|r| *r == -7.0));
    }

    #[test]
    fn allreduce_results_topology_invariant() {
        for n in [3usize, 4, 6, 8] {
            let vals: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) * 1.1).collect();
            let base = run_allreduce_on(
                gpu_sim::TopologyKind::NvlinkAllToAll,
                n,
                vals.clone(),
                ReduceOp::Sum,
            );
            for kind in gpu_sim::TopologyKind::ALL {
                let out = run_allreduce_on(kind, n, vals.clone(), ReduceOp::Sum);
                assert_eq!(out, base, "n={n} kind={}", kind.name());
            }
        }
    }

    #[test]
    fn allreduce_ring_non_power_of_two() {
        let vals = vec![1.0, 2.0, 4.0];
        let out = run_allreduce(3, vals.clone(), ReduceOp::Sum);
        let expect = reference_reduce(&vals, ReduceOp::Sum, false);
        assert_eq!(expect, 7.0);
        assert!(out.iter().all(|r| *r == expect), "{out:?}");
    }

    #[test]
    fn allreduce_single_pe_is_identity() {
        let out = run_allreduce(1, vec![42.0], ReduceOp::Sum);
        assert_eq!(out, vec![42.0]);
    }

    #[test]
    fn allreduce_reusable_across_epochs() {
        // Two consecutive allreduces in one kernel: counters must not clash.
        let n = 4;
        let machine = Machine::new(n, CostModel::a100_hgx(), ExecMode::Full);
        let world = ShmemWorld::init(&machine);
        let ws = AllreduceWs::new(&world);
        let results = Arc::new(Mutex::new(vec![(0.0, 0.0); n]));
        for pe in 0..n {
            let world = world.clone();
            let mut ws = ws.clone();
            let results = Arc::clone(&results);
            machine.spawn_host(format!("rank{pe}"), move |host| {
                let k = host.launch_cooperative(
                    DevId(pe),
                    "twice",
                    1024,
                    vec![BlockGroup::new("g", 1, move |kc| {
                        let mut sh = ShmemCtx::new(&world, kc);
                        let a = allreduce_scalar(&mut sh, kc, &mut ws, pe as f64, ReduceOp::Sum);
                        let b =
                            allreduce_scalar(&mut sh, kc, &mut ws, pe as f64 * 2.0, ReduceOp::Sum);
                        results.lock()[pe] = (a, b);
                    })],
                );
                host.wait_cooperative(&k);
            });
        }
        machine.run().unwrap();
        let out = results.lock();
        assert!(out.iter().all(|&(a, b)| a == 6.0 && b == 12.0), "{out:?}");
    }

    fn run_quorum_on(
        kind: gpu_sim::TopologyKind,
        n: usize,
        members: Vec<usize>,
        values: Vec<f64>,
        op: ReduceOp,
    ) -> Vec<(f64, Vec<usize>)> {
        let machine = Machine::with_topology(n, CostModel::a100_hgx(), kind, ExecMode::Full);
        let world = ShmemWorld::init(&machine);
        let ws = AllreduceWs::new_ring(&world);
        let results = Arc::new(Mutex::new(vec![(0.0, Vec::new()); n]));
        for &pe in &members {
            let world = world.clone();
            let mut ws = ws.clone();
            let members = members.clone();
            let value = values[pe];
            let results = Arc::clone(&results);
            machine.spawn_host(format!("rank{pe}"), move |host| {
                let k = host.launch_cooperative(
                    DevId(pe),
                    "quorum",
                    1024,
                    vec![BlockGroup::new("g", 1, move |kc| {
                        let mut sh = ShmemCtx::new(&world, kc);
                        let mut retries = 0u64;
                        let r = allreduce_scalar_quorum(
                            &mut sh,
                            kc,
                            &mut ws,
                            value,
                            op,
                            &members,
                            &mut retries,
                        );
                        results.lock()[pe] = r;
                    })],
                );
                host.wait_cooperative(&k);
            });
        }
        machine.run().unwrap();
        Arc::try_unwrap(results).unwrap().into_inner()
    }

    #[test]
    fn quorum_allreduce_skips_dead_pe_and_reports_members() {
        let members = vec![0usize, 1, 3]; // PE 2 is "dead"
        let vals = vec![1.5, -2.0, 999.0, 4.25];
        let out = run_quorum_on(
            gpu_sim::TopologyKind::NvlinkAllToAll,
            4,
            members.clone(),
            vals.clone(),
            ReduceOp::Sum,
        );
        let expect = 1.5 + -2.0 + 4.25; // ascending member order, PE 2 excluded
        for &pe in &members {
            assert_eq!(out[pe].0, expect, "pe {pe}");
            assert_eq!(out[pe].1, members, "pe {pe} contribution report");
        }
        // The dead PE's slot was never written.
        assert_eq!(out[2], (0.0, Vec::new()));
    }

    #[test]
    fn quorum_allreduce_topology_invariant() {
        let members = vec![0usize, 2, 3, 5];
        let vals: Vec<f64> = (0..6).map(|i| (i as f64) * 0.7 - 1.3).collect();
        let base = run_quorum_on(
            gpu_sim::TopologyKind::NvlinkAllToAll,
            6,
            members.clone(),
            vals.clone(),
            ReduceOp::Sum,
        );
        for kind in gpu_sim::TopologyKind::ALL {
            let out = run_quorum_on(kind, 6, members.clone(), vals.clone(), ReduceOp::Sum);
            assert_eq!(out, base, "kind={}", kind.name());
        }
        // And it matches the sequential fold over members in ascending order.
        let member_vals: Vec<f64> = members.iter().map(|&pe| vals[pe]).collect();
        let expect = reference_reduce(&member_vals, ReduceOp::Sum, false);
        assert!(base
            .iter()
            .enumerate()
            .all(|(pe, (v, _))| { !members.contains(&pe) || *v == expect }));
    }

    #[test]
    fn quorum_of_one_is_identity() {
        let out = run_quorum_on(
            gpu_sim::TopologyKind::NvlinkRing,
            4,
            vec![1],
            vec![0.0, 7.5, 0.0, 0.0],
            ReduceOp::Max,
        );
        assert_eq!(out[1], (7.5, vec![1]));
    }

    #[test]
    fn quorum_allreduce_reusable_as_membership_shrinks() {
        // Epoch 1 over {0,1,2,3}, epoch 2 over {0,1,3}: the flow-control
        // ack chain must stay satisfiable as the quorum shrinks.
        let n = 4;
        let machine = Machine::new(n, CostModel::a100_hgx(), ExecMode::Full);
        let world = ShmemWorld::init(&machine);
        let ws = AllreduceWs::new_ring(&world);
        let survivors = vec![0usize, 1, 3];
        let results = Arc::new(Mutex::new(vec![(0.0, 0.0); n]));
        for pe in 0..n {
            let world = world.clone();
            let mut ws = ws.clone();
            let survivors = survivors.clone();
            let results = Arc::clone(&results);
            machine.spawn_host(format!("rank{pe}"), move |host| {
                let k = host.launch_cooperative(
                    DevId(pe),
                    "shrink",
                    1024,
                    vec![BlockGroup::new("g", 1, move |kc| {
                        let mut sh = ShmemCtx::new(&world, kc);
                        let mut retries = 0u64;
                        let all = vec![0usize, 1, 2, 3];
                        let (a, _) = allreduce_scalar_quorum(
                            &mut sh,
                            kc,
                            &mut ws,
                            pe as f64,
                            ReduceOp::Sum,
                            &all,
                            &mut retries,
                        );
                        // PE 2 "dies" after epoch 1.
                        if pe == 2 {
                            results.lock()[pe] = (a, f64::NAN);
                            return;
                        }
                        let (b, _) = allreduce_scalar_quorum(
                            &mut sh,
                            kc,
                            &mut ws,
                            pe as f64 * 10.0,
                            ReduceOp::Sum,
                            &survivors,
                            &mut retries,
                        );
                        results.lock()[pe] = (a, b);
                    })],
                );
                host.wait_cooperative(&k);
            });
        }
        machine.run().unwrap();
        let out = results.lock();
        for &pe in &survivors {
            assert_eq!(out[pe], (6.0, 40.0), "pe {pe}");
        }
        assert_eq!(out[2].0, 6.0);
    }

    #[test]
    fn broadcast_delivers_to_all() {
        let n = 4;
        let machine = Machine::new(n, CostModel::a100_hgx(), ExecMode::Full);
        let world = ShmemWorld::init(&machine);
        let arr = world.malloc("bcast", 8);
        arr.local(2).write_slice(0, &[9.0; 8]); // root = 2
        let sig = world.signal(0);
        for pe in 0..n {
            let world = world.clone();
            let arr = arr.clone();
            let sig = sig.clone();
            machine.spawn_host(format!("rank{pe}"), move |host| {
                let k = host.launch_cooperative(
                    DevId(pe),
                    "bcast",
                    1024,
                    vec![BlockGroup::new("g", 1, move |kc| {
                        let mut sh = ShmemCtx::new(&world, kc);
                        broadcast(&mut sh, kc, &arr, &sig, 1, 2, 8);
                        assert_eq!(arr.local(pe).get(7), 9.0);
                    })],
                );
                host.wait_cooperative(&k);
            });
        }
        machine.run().unwrap();
    }

    #[test]
    fn reference_reduce_matches_simple_sum_for_associative_ints() {
        let vals: Vec<f64> = (1..=8).map(|v| v as f64).collect();
        assert_eq!(reference_reduce(&vals, ReduceOp::Sum, true), 36.0);
        assert_eq!(reference_reduce(&vals, ReduceOp::Sum, false), 36.0);
    }
}
