//! # nvshmem-sim — GPU-initiated PGAS communication over `gpu-sim`
//!
//! A faithful-in-shape reimplementation of the NVSHMEM API surface the
//! CPU-Free paper uses, executing on the simulated multi-GPU node:
//!
//! * a **symmetric heap**: [`ShmemWorld::malloc`] allocates one buffer per
//!   PE (device), remotely addressable through the RMA calls;
//! * **signals**: 64-bit symmetric cells updated atomically by
//!   [`ShmemCtx::signal_op`] / the put-with-signal calls, waited on with
//!   [`ShmemCtx::signal_wait_until`] (the §4.1.1 semaphore protocol);
//! * **RMA**: blocking and non-blocking contiguous puts
//!   ([`ShmemCtx::putmem`], [`ShmemCtx::putmem_nbi`]), the composite
//!   [`ShmemCtx::putmem_signal_nbi`] (the paper's
//!   `nvshmemx_putmem_signal_nbi_block`), strided [`ShmemCtx::iput`] and
//!   single-element [`ShmemCtx::p`];
//! * **ordering**: [`ShmemCtx::quiet`] / [`ShmemCtx::fence`] complete
//!   outstanding non-blocking operations;
//! * **collectives**: [`ShmemCtx::barrier_all`] across all PEs.
//!
//! Non-blocking transfers cost the issuing thread block only the issue
//! latency; the payload lands in the destination buffer — and the optional
//! signal fires — at the modeled delivery time, so waiters always observe
//! the data *after* it exists (enforced by engine event ordering).
//!
//! All wire time is charged through the machine's [`gpu_sim::Transport`]:
//! a transfer occupies every link on its `(src, dst)` route, queueing
//! behind concurrent traffic on shared hops, and fault link-degradation is
//! applied inside that one path. Collectives derive their neighbor
//! selection from the machine's [`gpu_sim::Topology`] rather than raw rank
//! arithmetic.

#![warn(missing_docs)]

pub mod collectives;

pub use collectives::{
    allreduce_scalar, allreduce_scalar_ft, allreduce_scalar_quorum, broadcast, reference_reduce,
    AllreduceWs, ReduceOp,
};

use gpu_sim::{Buf, Checker, DevId, FaultState, KernelCtx, Machine, Transport};
use sim_des::{AsyncClock, Category, Cmp, Flag, SignalOp, SimDur, SimTime, WaitTimedOut};
use std::sync::Arc;

/// A symmetric array: one same-sized buffer per PE on the symmetric heap.
#[derive(Clone)]
pub struct SymArray {
    name: String,
    bufs: Arc<Vec<Buf>>,
}

impl SymArray {
    /// The allocation's debug name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The local buffer of `pe`.
    pub fn local(&self, pe: usize) -> &Buf {
        &self.bufs[pe]
    }

    /// Elements per PE.
    pub fn len(&self) -> usize {
        self.bufs[0].len()
    }

    /// True when the per-PE length is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of PEs.
    pub fn n_pes(&self) -> usize {
        self.bufs.len()
    }
}

/// A symmetric 64-bit signal cell: one engine flag per PE.
#[derive(Clone)]
pub struct SymSignal {
    flags: Arc<Vec<Flag>>,
}

impl SymSignal {
    /// The flag backing `pe`'s copy of the cell.
    pub fn flag(&self, pe: usize) -> Flag {
        self.flags[pe]
    }

    /// Number of PEs.
    pub fn n_pes(&self) -> usize {
        self.flags.len()
    }
}

/// The NVSHMEM "world": PE numbering, symmetric allocation, collectives.
#[derive(Clone)]
pub struct ShmemWorld {
    machine: Machine,
    device_barrier: sim_des::Barrier,
}

impl ShmemWorld {
    /// Initialize over a machine: every device becomes a PE.
    pub fn init(machine: &Machine) -> ShmemWorld {
        ShmemWorld {
            machine: machine.clone(),
            device_barrier: machine.barrier(machine.num_devices()),
        }
    }

    /// Number of PEs.
    pub fn n_pes(&self) -> usize {
        self.machine.num_devices()
    }

    /// The machine underneath.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The interconnect graph collectives derive their neighbor selection
    /// from (ring embedding, broadcast fan-out order).
    pub fn topology(&self) -> &Arc<gpu_sim::Topology> {
        self.machine.topology()
    }

    /// Collective symmetric allocation (`nvshmem_malloc`): `len` f64
    /// elements on every PE, zero-initialized.
    pub fn malloc(&self, name: impl Into<String>, len: usize) -> SymArray {
        let name = name.into();
        let bufs = (0..self.n_pes())
            .map(|pe| {
                self.machine
                    .alloc_symmetric(DevId(pe), format!("{name}@pe{pe}"), len)
            })
            .collect();
        SymArray {
            name,
            bufs: Arc::new(bufs),
        }
    }

    /// Allocate a symmetric signal cell, initialized to `init` on every PE.
    pub fn signal(&self, init: u64) -> SymSignal {
        let flags = (0..self.n_pes()).map(|_| self.machine.flag(init)).collect();
        SymSignal {
            flags: Arc::new(flags),
        }
    }

    /// Allocate `count` signal cells (e.g. the four per-PE halo flags of the
    /// 2D stencil: top-in, top-out, bottom-in, bottom-out).
    pub fn signals(&self, count: usize, init: u64) -> Vec<SymSignal> {
        (0..count).map(|_| self.signal(init)).collect()
    }
}

/// Per-PE device-side NVSHMEM context, created inside a kernel body.
///
/// Tracks outstanding non-blocking operations so that [`ShmemCtx::quiet`]
/// has real semantics: it blocks until the latest scheduled delivery time.
pub struct ShmemCtx {
    world: ShmemWorld,
    pe: usize,
    /// Completion time of the latest outstanding non-blocking transfer.
    outstanding_until: SimTime,
    /// The machine's fault schedule (fault-free by default).
    faults: Arc<FaultState>,
    /// The machine's transfer-charging layer (routes + link occupancy).
    transport: Transport,
    /// The machine's race/conformance checker, when enabled.
    checker: Option<Arc<Checker>>,
    /// Async-effect stamps of outstanding `nbi` operations, absorbed into
    /// the agent's clock by [`ShmemCtx::quiet`].
    outstanding: Vec<AsyncClock>,
    /// Retry policy for [`ShmemCtx::putmem_signal_reliable`]; `None` is the
    /// legacy fixed policy (4 signal latencies, doubling, unbounded).
    backoff: Option<BackoffPolicy>,
}

/// Retry-backoff policy for [`ShmemCtx::putmem_signal_reliable`].
///
/// The default (`BackoffPolicy::default()`, also what a fresh context uses)
/// reproduces the historical hard-coded behavior exactly: first backoff of
/// four signal latencies, doubling every retry, no cap, unlimited attempts,
/// no jitter — existing fault-recovery timings are bit-identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BackoffPolicy {
    /// First backoff duration; `None` = four signal latencies.
    pub base: Option<SimDur>,
    /// Upper bound on any single backoff; `None` = uncapped doubling.
    pub cap: Option<SimDur>,
    /// Give up (panic with an attributed `retries exhausted` diagnostic)
    /// after this many total attempts; `None` = retry forever.
    pub max_attempts: Option<u32>,
    /// Deterministic jitter seed. When set, each backoff is stretched into
    /// `[delay/2, delay]` by a SplitMix64 hash of
    /// `(seed, src, dst, attempt)` — the "equal jitter" scheme, but a pure
    /// function of the plan, so runs stay bit-reproducible.
    pub jitter_seed: Option<u64>,
}

impl BackoffPolicy {
    /// Builder: first backoff duration.
    pub fn with_base(mut self, base: SimDur) -> Self {
        self.base = Some(base);
        self
    }

    /// Builder: cap on a single backoff.
    pub fn with_cap(mut self, cap: SimDur) -> Self {
        self.cap = Some(cap);
        self
    }

    /// Builder: maximum total attempts before giving up.
    pub fn with_max_attempts(mut self, n: u32) -> Self {
        self.max_attempts = Some(n);
        self
    }

    /// Builder: deterministic jitter seed.
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }

    /// The delay charged before retry number `attempt + 1`, given the
    /// un-jittered exponential `delay` for this step and the route.
    fn shape(&self, delay: SimDur, src: usize, dst: usize, attempt: u32) -> SimDur {
        let mut d = delay;
        if let Some(cap) = self.cap {
            d = d.min(cap);
        }
        if let Some(seed) = self.jitter_seed {
            let h = sim_des::mix64(
                seed ^ sim_des::mix64(((src as u64) << 40) ^ ((dst as u64) << 20) ^ attempt as u64),
            );
            let half = d.as_nanos() / 2;
            d = sim_des::SimDur(half + h % (half + 1));
        }
        d
    }
}

impl ShmemCtx {
    /// Create the context for the PE owning `ctx`'s device.
    ///
    /// Also declares the agent's wait-for-graph identity as `"pe{n}"`, so
    /// timeout / deadlock diagnoses can name PEs in cycle reports.
    pub fn new(world: &ShmemWorld, ctx: &KernelCtx<'_>) -> ShmemCtx {
        let pe = ctx.device().0;
        ctx.agent().set_identity(format!("pe{pe}"));
        ShmemCtx {
            world: world.clone(),
            pe,
            outstanding_until: SimTime::ZERO,
            faults: world.machine().faults(),
            transport: world.machine().transport().clone(),
            checker: world.machine().checker(),
            outstanding: Vec::new(),
            backoff: None,
        }
    }

    /// Install a retry-backoff policy for [`ShmemCtx::putmem_signal_reliable`]
    /// (see [`BackoffPolicy`]; the default reproduces the legacy constants).
    pub fn set_backoff_policy(&mut self, policy: BackoffPolicy) {
        self.backoff = Some(policy);
    }

    /// The machine's checker, when enabled with `Machine::with_checker`.
    pub fn checker(&self) -> Option<&Arc<Checker>> {
        self.checker.as_ref()
    }

    /// Record an asynchronous put's memory effects (in-flight source read +
    /// delivered destination write) and return the stamp to thread through
    /// the delivery signal. `None` when the checker is disabled.
    #[allow(clippy::too_many_arguments)]
    fn begin_async_put(
        &mut self,
        ctx: &KernelCtx<'_>,
        dst: &Buf,
        dst_off: usize,
        src: &Buf,
        src_off: usize,
        len: usize,
        delivered_at: SimTime,
        label: &str,
    ) -> Option<AsyncClock> {
        let chk = self.checker.as_ref()?;
        let agent = ctx.agent();
        let who = agent.name();
        let stamp = chk.async_begin(agent);
        chk.record_async(
            &stamp,
            &who,
            agent.now(),
            src,
            src_off,
            src_off + len,
            false,
            true,
            label,
        );
        chk.record_async(
            &stamp,
            &who,
            delivered_at,
            dst,
            dst_off,
            dst_off + len,
            true,
            false,
            label,
        );
        self.outstanding.push(stamp.clone());
        Some(stamp)
    }

    /// Record a synchronous (blocking) put's effects under the agent clock.
    fn record_sync_copy(
        &self,
        ctx: &KernelCtx<'_>,
        dst: &Buf,
        dst_range: (usize, usize),
        src: &Buf,
        src_range: (usize, usize),
        label: &str,
    ) {
        if let Some(chk) = &self.checker {
            let agent = ctx.agent();
            chk.record(agent, src, src_range.0, src_range.1, false, label);
            chk.record(agent, dst, dst_range.0, dst_range.1, true, label);
        }
    }

    /// Record a strided transfer's effects element-exactly. A bounding-span
    /// record would overlap the untouched cells *between* the strides and
    /// report false races against concurrent accesses to them (e.g. the
    /// interleaved column exchanges of a 2D halo).
    #[allow(clippy::too_many_arguments)]
    fn record_sync_copy_strided(
        &self,
        ctx: &KernelCtx<'_>,
        dst: &Buf,
        (dst_off, dst_stride): (usize, usize),
        src: &Buf,
        (src_off, src_stride): (usize, usize),
        count: usize,
        label: &str,
    ) {
        if let Some(chk) = &self.checker {
            let agent = ctx.agent();
            if src_stride <= 1 {
                chk.record(agent, src, src_off, src_off + count, false, label);
            } else {
                for k in 0..count {
                    let c = src_off + k * src_stride;
                    chk.record(agent, src, c, c + 1, false, label);
                }
            }
            if dst_stride <= 1 {
                chk.record(agent, dst, dst_off, dst_off + count, true, label);
            } else {
                for k in 0..count {
                    let c = dst_off + k * dst_stride;
                    chk.record(agent, dst, c, c + 1, true, label);
                }
            }
        }
    }

    /// This PE's rank (`nvshmem_my_pe`).
    pub fn my_pe(&self) -> usize {
        self.pe
    }

    /// Number of PEs (`nvshmem_n_pes`).
    pub fn n_pes(&self) -> usize {
        self.world.n_pes()
    }

    /// The world this context belongs to (topology queries, team info).
    pub fn world(&self) -> &ShmemWorld {
        &self.world
    }

    fn check_pe(&self, pe: usize) {
        assert!(
            pe < self.n_pes(),
            "target PE {pe} out of range ({} PEs)",
            self.n_pes()
        );
    }

    fn assert_symmetric(dst: &SymArray, dst_off: usize, len: usize) {
        assert!(
            dst_off + len <= dst.len(),
            "remote write out of range: {}..{} > {} on `{}`",
            dst_off,
            dst_off + len,
            dst.len(),
            dst.name()
        );
    }

    /// Blocking contiguous put: returns after the data is delivered.
    #[allow(clippy::too_many_arguments)]
    pub fn putmem(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        dst: &SymArray,
        dst_off: usize,
        src: &Buf,
        src_off: usize,
        len: usize,
        pe: usize,
    ) {
        self.check_pe(pe);
        Self::assert_symmetric(dst, dst_off, len);
        let bytes = (len * 8) as u64;
        let dur = self.transport.shmem_put(self.pe, pe, bytes, ctx.now());
        ctx.busy(Category::Comm, format!("putmem->pe{pe} {len}el"), dur);
        dst.local(pe).copy_from(dst_off, src, src_off, len);
        self.record_sync_copy(
            ctx,
            dst.local(pe),
            (dst_off, dst_off + len),
            src,
            (src_off, src_off + len),
            "putmem",
        );
    }

    /// Non-blocking contiguous put (`nvshmem_putmem_nbi`): the calling
    /// thread block pays only the issue latency; data lands later. Complete
    /// with [`ShmemCtx::quiet`].
    #[allow(clippy::too_many_arguments)]
    pub fn putmem_nbi(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        dst: &SymArray,
        dst_off: usize,
        src: &Buf,
        src_off: usize,
        len: usize,
        pe: usize,
    ) {
        self.check_pe(pe);
        Self::assert_symmetric(dst, dst_off, len);
        let bytes = (len * 8) as u64;
        let issue = ctx.cost().shmem_signal(); // issue overhead ≈ one device op
        let delivery = self.transport.shmem_put(self.pe, pe, bytes, ctx.now());
        ctx.busy(Category::Comm, format!("putmem_nbi->pe{pe} {len}el"), issue);
        let remaining = delivery.saturating_sub(issue);
        let done_at = ctx.now() + remaining;
        self.begin_async_put(
            ctx,
            dst.local(pe),
            dst_off,
            src,
            src_off,
            len,
            done_at,
            "putmem_nbi",
        );
        let dst_buf = dst.local(pe).clone();
        let src_buf = src.clone();
        let agent = ctx.agent_mut();
        agent.schedule_call(remaining, move || {
            dst_buf.copy_from(dst_off, &src_buf, src_off, len);
        });
        if done_at > self.outstanding_until {
            self.outstanding_until = done_at;
        }
    }

    /// Composite put + remote signal (`nvshmemx_putmem_signal_nbi_block`):
    /// issues the transfer, and when the payload is delivered the signal on
    /// the destination PE is updated — the waiter observes data-then-flag.
    ///
    /// Subject to the machine's [`FaultState`]: a delivery falling inside a
    /// drop window is silently lost (the issue cost is still charged), and
    /// link-degradation windows stretch the delivery time. Fault-tolerant
    /// protocols should use [`ShmemCtx::putmem_signal_reliable`].
    #[allow(clippy::too_many_arguments)]
    pub fn putmem_signal_nbi(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        dst: &SymArray,
        dst_off: usize,
        src: &Buf,
        src_off: usize,
        len: usize,
        sig: &SymSignal,
        sig_op: SignalOp,
        sig_val: u64,
        pe: usize,
    ) {
        self.putmem_signal_inner(
            ctx, dst, dst_off, src, src_off, len, sig, sig_op, sig_val, pe,
        );
    }

    /// Shared body of the drop-prone put-with-signal paths. Returns `false`
    /// when the delivery was dropped by the fault schedule.
    #[allow(clippy::too_many_arguments)]
    fn putmem_signal_inner(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        dst: &SymArray,
        dst_off: usize,
        src: &Buf,
        src_off: usize,
        len: usize,
        sig: &SymSignal,
        sig_op: SignalOp,
        sig_val: u64,
        pe: usize,
    ) -> bool {
        self.check_pe(pe);
        Self::assert_symmetric(dst, dst_off, len);
        let bytes = (len * 8) as u64;
        let issue = ctx.cost().shmem_signal();
        if self.faults.is_active() && self.faults.should_drop(self.pe, pe) {
            // Lost doorbell: the sender pays the issue latency but neither
            // the payload nor the signal ever lands.
            ctx.busy(
                Category::Comm,
                format!("putmem_signal_nbi->pe{pe} {len}el (dropped)"),
                issue,
            );
            return false;
        }
        let delivery =
            self.transport
                .put_signal_delivery(&self.faults, self.pe, pe, bytes, ctx.now(), false);
        ctx.busy(
            Category::Comm,
            format!("putmem_signal_nbi->pe{pe} {len}el"),
            issue,
        );
        let remaining = delivery.saturating_sub(issue);
        let done_at = ctx.now() + remaining;
        let stamp = self.begin_async_put(
            ctx,
            dst.local(pe),
            dst_off,
            src,
            src_off,
            len,
            done_at,
            "putmem_signal_nbi",
        );
        let dst_buf = dst.local(pe).clone();
        let src_buf = src.clone();
        let flag = sig.flag(pe);
        let agent = ctx.agent_mut();
        agent.schedule_call(remaining, move || {
            dst_buf.copy_from(dst_off, &src_buf, src_off, len);
        });
        match stamp {
            // Carry the async-effect clock on the signal so the waiter
            // happens-after the delivered payload, not just the issue.
            Some(s) => agent.schedule_signal_with_stamp(flag, sig_op, sig_val, remaining, s),
            None => agent.schedule_signal(flag, sig_op, sig_val, remaining),
        }
        if done_at > self.outstanding_until {
            self.outstanding_until = done_at;
        }
        true
    }

    /// Retrying put + signal for fault-tolerant protocols: on a dropped
    /// delivery the sender backs off exponentially and re-issues until the
    /// delivery lands, shaped by the context's [`BackoffPolicy`] (base, cap,
    /// max attempts, deterministic seeded jitter). Returns the number of
    /// attempts (1 on a healthy route); each backoff span in the trace
    /// carries the attempt number. Deterministic: drop windows are
    /// attempt-counted and the jitter is a hash of the route and attempt,
    /// so the retry sequence is a pure function of the fault plan.
    ///
    /// When the policy bounds `max_attempts` and the route keeps dropping,
    /// the sender panics with a structured `retries exhausted` message —
    /// surfacing as an attributed `SimError::AgentPanic`, never a hang.
    #[allow(clippy::too_many_arguments)]
    pub fn putmem_signal_reliable(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        dst: &SymArray,
        dst_off: usize,
        src: &Buf,
        src_off: usize,
        len: usize,
        sig: &SymSignal,
        sig_op: SignalOp,
        sig_val: u64,
        pe: usize,
    ) -> u32 {
        let policy = self.backoff.clone().unwrap_or_default();
        let mut attempts = 1u32;
        let mut backoff = policy.base.unwrap_or(ctx.cost().shmem_signal() * 4);
        loop {
            if self.putmem_signal_inner(
                ctx, dst, dst_off, src, src_off, len, sig, sig_op, sig_val, pe,
            ) {
                return attempts;
            }
            if let Some(max) = policy.max_attempts {
                if attempts >= max {
                    panic!(
                        "retries exhausted: put_signal pe{} -> pe{pe} dropped {max} times \
                         (policy max_attempts = {max})",
                        self.pe
                    );
                }
            }
            let delay = policy.shape(backoff, self.pe, pe, attempts);
            ctx.busy(
                Category::Comm,
                format!("put_retry_backoff->pe{pe} attempt {attempts}"),
                delay,
            );
            backoff = backoff * 2;
            attempts += 1;
        }
    }

    /// Block-cooperative composite put + signal
    /// (`nvshmemx_putmem_signal_block`): the whole thread block drives the
    /// transfer, improving effective bandwidth over the single-thread
    /// variant (§5.3.2's granularity dimension).
    #[allow(clippy::too_many_arguments)]
    pub fn putmem_signal_block(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        dst: &SymArray,
        dst_off: usize,
        src: &Buf,
        src_off: usize,
        len: usize,
        sig: &SymSignal,
        sig_op: SignalOp,
        sig_val: u64,
        pe: usize,
    ) {
        self.check_pe(pe);
        Self::assert_symmetric(dst, dst_off, len);
        let bytes = (len * 8) as u64;
        let issue = ctx.cost().shmem_signal();
        let delivery =
            self.transport
                .put_signal_delivery(&self.faults, self.pe, pe, bytes, ctx.now(), true);
        ctx.busy(
            Category::Comm,
            format!("putmem_signal_block->pe{pe} {len}el"),
            issue,
        );
        let remaining = delivery.saturating_sub(issue);
        let done_at = ctx.now() + remaining;
        let stamp = self.begin_async_put(
            ctx,
            dst.local(pe),
            dst_off,
            src,
            src_off,
            len,
            done_at,
            "putmem_signal_block",
        );
        let dst_buf = dst.local(pe).clone();
        let src_buf = src.clone();
        let flag = sig.flag(pe);
        let agent = ctx.agent_mut();
        agent.schedule_call(remaining, move || {
            dst_buf.copy_from(dst_off, &src_buf, src_off, len);
        });
        match stamp {
            Some(s) => agent.schedule_signal_with_stamp(flag, sig_op, sig_val, remaining, s),
            None => agent.schedule_signal(flag, sig_op, sig_val, remaining),
        }
        if done_at > self.outstanding_until {
            self.outstanding_until = done_at;
        }
    }

    /// Mapped single-element specialization (§5.3.2): `count` contiguous
    /// elements transferred as parallel `nvshmem_<T>_p` calls issued by up
    /// to `threads` GPU threads. Blocking; order with `quiet` not needed.
    #[allow(clippy::too_many_arguments)]
    pub fn put_mapped(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        dst: &SymArray,
        dst_off: usize,
        src: &Buf,
        src_off: usize,
        len: usize,
        threads: u64,
        pe: usize,
    ) {
        self.check_pe(pe);
        Self::assert_symmetric(dst, dst_off, len);
        let dur = self
            .transport
            .shmem_p_mapped(self.pe, pe, len as u64, threads, ctx.now());
        ctx.busy(Category::Comm, format!("p_mapped->pe{pe} {len}el"), dur);
        dst.local(pe).copy_from(dst_off, src, src_off, len);
        self.record_sync_copy(
            ctx,
            dst.local(pe),
            (dst_off, dst_off + len),
            src,
            (src_off, src_off + len),
            "p_mapped",
        );
    }

    /// Remote atomic signal update (`nvshmemx_signal_op`).
    pub fn signal_op(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        sig: &SymSignal,
        op: SignalOp,
        value: u64,
        pe: usize,
    ) {
        self.check_pe(pe);
        let dur = self.transport.shmem_signal(self.pe, pe, ctx.now());
        ctx.busy(Category::Comm, format!("signal_op->pe{pe}"), dur);
        // The update lands after the NVLink signal latency.
        let flag = sig.flag(pe);
        ctx.agent_mut()
            .schedule_signal(flag, op, value, SimDur::ZERO);
    }

    /// Wait until this PE's copy of the signal satisfies `cmp value`
    /// (`nvshmem_signal_wait_until`). Charges the polling granularity.
    pub fn signal_wait_until(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        sig: &SymSignal,
        cmp: Cmp,
        value: u64,
    ) {
        let flag = sig.flag(self.pe);
        let poll = ctx.cost().shmem_poll();
        let agent = ctx.agent_mut();
        let start = agent.now();
        agent.wait_flag(flag, cmp, value);
        agent.advance(poll);
        let end = agent.now();
        agent.record(
            Category::Sync,
            format!("signal_wait {cmp:?} {value}"),
            start,
            end,
        );
    }

    /// Deadline-bounded signal wait: like [`ShmemCtx::signal_wait_until`]
    /// but gives up at the virtual-time `deadline`, resuming at exactly that
    /// instant with `Err`. The building block of interruptible waits in
    /// fault-tolerant protocols (poll for recovery notices between slices).
    pub fn signal_wait_until_deadline(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        sig: &SymSignal,
        cmp: Cmp,
        value: u64,
        deadline: SimTime,
    ) -> Result<(), WaitTimedOut> {
        let flag = sig.flag(self.pe);
        let poll = ctx.cost().shmem_poll();
        let agent = ctx.agent_mut();
        let start = agent.now();
        let r = agent.wait_flag_until(flag, cmp, value, deadline);
        if r.is_ok() {
            agent.advance(poll);
        }
        let end = agent.now();
        agent.record(
            Category::Sync,
            format!("signal_wait {cmp:?} {value}"),
            start,
            end,
        );
        r
    }

    /// Signal wait that declares the PE expected to deliver the signal — a
    /// wait-for-graph edge. On deadlock/timeout the engine reports the full
    /// cycle of PEs instead of a flat blocked list.
    pub fn signal_wait_from(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        sig: &SymSignal,
        cmp: Cmp,
        value: u64,
        from_pe: usize,
    ) {
        let flag = sig.flag(self.pe);
        let poll = ctx.cost().shmem_poll();
        let agent = ctx.agent_mut();
        let start = agent.now();
        agent.wait_flag_from(flag, cmp, value, format!("pe{from_pe}"));
        agent.advance(poll);
        let end = agent.now();
        agent.record(
            Category::Sync,
            format!("signal_wait {cmp:?} {value} from pe{from_pe}"),
            start,
            end,
        );
    }

    /// Read this PE's copy of a signal without waiting.
    pub fn signal_fetch(&self, ctx: &KernelCtx<'_>, sig: &SymSignal) -> u64 {
        ctx.agent().flag_value(sig.flag(self.pe))
    }

    /// Strided put (`nvshmem_<T>_iput`): `count` elements, gathering every
    /// `src_stride`-th element locally and scattering every `dst_stride`-th
    /// element remotely. Blocking; per-element issue overhead dominates.
    #[allow(clippy::too_many_arguments)]
    pub fn iput(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        dst: &SymArray,
        dst_off: usize,
        dst_stride: usize,
        src: &Buf,
        src_off: usize,
        src_stride: usize,
        count: usize,
        pe: usize,
    ) {
        self.check_pe(pe);
        if count == 0 {
            return;
        }
        assert!(
            dst_off + (count - 1) * dst_stride < dst.len(),
            "iput dst out of range on `{}`",
            dst.name()
        );
        let dur = self
            .transport
            .shmem_iput(self.pe, pe, count as u64, 8, ctx.now());
        ctx.busy(Category::Comm, format!("iput->pe{pe} {count}el"), dur);
        dst.local(pe)
            .copy_strided_from(dst_off, dst_stride, src, src_off, src_stride, count);
        self.record_sync_copy_strided(
            ctx,
            dst.local(pe),
            (dst_off, dst_stride),
            src,
            (src_off, src_stride),
            count,
            "iput",
        );
    }

    /// Strided get (`nvshmem_<T>_iget`): gather `count` elements from the
    /// remote PE's copy of `src` into a local buffer. Blocking (gets cannot
    /// be deferred — the caller uses the data next).
    #[allow(clippy::too_many_arguments)]
    pub fn iget(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        dst: &Buf,
        dst_off: usize,
        dst_stride: usize,
        src: &SymArray,
        src_off: usize,
        src_stride: usize,
        count: usize,
        pe: usize,
    ) {
        self.check_pe(pe);
        if count == 0 {
            return;
        }
        assert!(
            src_off + (count - 1) * src_stride < src.len(),
            "iget src out of range on `{}`",
            src.name()
        );
        let dur = self
            .transport
            .shmem_iput(pe, self.pe, count as u64, 8, ctx.now());
        ctx.busy(Category::Comm, format!("iget<-pe{pe} {count}el"), dur);
        dst.copy_strided_from(
            dst_off,
            dst_stride,
            src.local(pe),
            src_off,
            src_stride,
            count,
        );
        self.record_sync_copy_strided(
            ctx,
            dst,
            (dst_off, dst_stride),
            src.local(pe),
            (src_off, src_stride),
            count,
            "iget",
        );
    }

    /// Single-element remote store (`nvshmem_double_p`). Non-blocking in
    /// effect: value lands after the store latency; order with `quiet`.
    pub fn p(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        dst: &SymArray,
        dst_idx: usize,
        value: f64,
        pe: usize,
    ) {
        self.check_pe(pe);
        Self::assert_symmetric(dst, dst_idx, 1);
        let issue = ctx.cost().shmem_signal();
        let delivery = self.transport.shmem_p(self.pe, pe, ctx.now());
        ctx.busy(Category::Comm, format!("p->pe{pe}"), issue);
        let remaining = delivery.saturating_sub(issue);
        let done_at = ctx.now() + remaining;
        if let Some(chk) = &self.checker {
            let agent = ctx.agent();
            let stamp = chk.async_begin(agent);
            chk.record_async(
                &stamp,
                &agent.name(),
                done_at,
                dst.local(pe),
                dst_idx,
                dst_idx + 1,
                true,
                false,
                "p",
            );
            self.outstanding.push(stamp);
        }
        let dst_buf = dst.local(pe).clone();
        let agent = ctx.agent_mut();
        agent.schedule_call(remaining, move || dst_buf.set(dst_idx, value));
        if done_at > self.outstanding_until {
            self.outstanding_until = done_at;
        }
    }

    /// Complete all outstanding non-blocking operations (`nvshmem_quiet`).
    pub fn quiet(&mut self, ctx: &mut KernelCtx<'_>) {
        let now = ctx.now();
        let wait = self.outstanding_until.saturating_since(now);
        let dur = wait + ctx.cost().shmem_quiet();
        ctx.busy(Category::Sync, "quiet", dur);
        // Completion edge: the caller happens-after every outstanding
        // effect, so reusing an nbi source buffer is now race-free.
        if let Some(chk) = &self.checker {
            chk.absorb(ctx.agent(), &self.outstanding);
        }
        self.outstanding.clear();
    }

    /// Order (but do not complete) outstanding operations (`nvshmem_fence`).
    pub fn fence(&mut self, ctx: &mut KernelCtx<'_>) {
        let dur = ctx.cost().shmem_quiet();
        ctx.busy(Category::Sync, "fence", dur);
    }

    /// Barrier across all PEs (`nvshmem_barrier_all`, device-side). Exactly
    /// one agent per PE must call this per round.
    pub fn barrier_all(&mut self, ctx: &mut KernelCtx<'_>) {
        // A barrier also implies quiet.
        self.quiet(ctx);
        let barrier = self.world.device_barrier;
        let cost = ctx.cost().shmem_signal() * 2;
        let agent = ctx.agent_mut();
        let start = agent.now();
        agent.barrier(barrier);
        agent.advance(cost);
        let end = agent.now();
        agent.record(Category::Sync, "shmem barrier_all", start, end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{BlockGroup, CostModel, ExecMode};
    use sim_des::us;

    fn setup(n: usize) -> (Machine, ShmemWorld) {
        let m = Machine::new(n, CostModel::a100_hgx(), ExecMode::Full);
        let w = ShmemWorld::init(&m);
        (m, w)
    }

    /// Run `body(pe)` as a one-block cooperative kernel on every PE.
    fn run_on_all_pes(
        m: &Machine,
        body: impl Fn(usize, &mut KernelCtx<'_>) + Send + Sync + 'static,
    ) {
        let body = Arc::new(body);
        for pe in 0..m.num_devices() {
            let body = Arc::clone(&body);
            m.spawn_host(format!("rank{pe}"), move |host| {
                let b = Arc::clone(&body);
                let k = host.launch_cooperative(
                    DevId(pe),
                    "test",
                    1024,
                    vec![BlockGroup::new("g", 1, move |kc| b(pe, kc))],
                );
                host.wait_cooperative(&k);
            });
        }
    }

    #[test]
    fn symmetric_malloc_one_buffer_per_pe() {
        let (_m, w) = setup(4);
        let a = w.malloc("halo", 128);
        assert_eq!(a.n_pes(), 4);
        assert_eq!(a.len(), 128);
        for pe in 0..4 {
            assert!(a.local(pe).place().is_symmetric());
            assert_eq!(a.local(pe).place().device(), Some(DevId(pe)));
        }
    }

    #[test]
    fn blocking_put_delivers_immediately() {
        let (m, w) = setup(2);
        let arr = w.malloc("a", 16);
        let probe = arr.clone();
        let w2 = w.clone();
        run_on_all_pes(&m, move |pe, k| {
            let mut sh = ShmemCtx::new(&w2, k);
            if pe == 0 {
                let src = k.machine().alloc(DevId(0), "src", 16);
                src.fill(5.0);
                sh.putmem(k, &probe, 0, &src, 0, 16, 1);
                // Blocking: data visible to us right after the call.
                assert_eq!(probe.local(1).get(15), 5.0);
            }
        });
        m.run().unwrap();
        assert_eq!(arr.local(1).get(0), 5.0);
    }

    #[test]
    fn put_signal_orders_data_before_flag() {
        let (m, w) = setup(2);
        let arr = w.malloc("halo", 64);
        let sig = w.signal(0);
        let w2 = w.clone();
        let arr2 = arr.clone();
        run_on_all_pes(&m, move |pe, k| {
            let mut sh = ShmemCtx::new(&w2, k);
            if pe == 0 {
                let src = k.machine().alloc(DevId(0), "src", 64);
                src.fill(3.25);
                sh.putmem_signal_nbi(k, &arr2, 0, &src, 0, 64, &sig, SignalOp::Set, 1, 1);
                // Non-blocking: remote data NOT yet visible at issue time.
                assert_eq!(arr2.local(1).get(0), 0.0);
            } else {
                sh.signal_wait_until(k, &sig, Cmp::Ge, 1);
                // After the signal, the payload must be fully visible.
                assert_eq!(arr2.local(1).get(63), 3.25);
            }
        });
        m.run().unwrap();
    }

    #[test]
    fn quiet_completes_outstanding_puts() {
        let (m, w) = setup(2);
        let arr = w.malloc("a", 1 << 16); // 512 KiB: measurable wire time
        let w2 = w.clone();
        let arr2 = arr.clone();
        run_on_all_pes(&m, move |pe, k| {
            let mut sh = ShmemCtx::new(&w2, k);
            if pe == 0 {
                let src = k.machine().alloc(DevId(0), "src", 1 << 16);
                src.fill(1.0);
                let t0 = k.now();
                sh.putmem_nbi(k, &arr2, 0, &src, 0, 1 << 16, 1);
                let issue_elapsed = k.now().since(t0);
                // The nbi call returns long before the wire time.
                assert!(issue_elapsed < us(2.0));
                sh.quiet(k);
                // After quiet, the data is delivered.
                assert_eq!(arr2.local(1).get((1 << 16) - 1), 1.0);
                let total = k.now().since(t0);
                let wire = k.cost().shmem_put((1u64 << 16) * 8);
                assert!(total >= wire, "quiet must cover delivery: {total} < {wire}");
            }
        });
        m.run().unwrap();
    }

    #[test]
    fn iput_scatters_strided() {
        let (m, w) = setup(2);
        // Remote "matrix" of 4 rows x 8 cols; write its column 2.
        let arr = w.malloc("mat", 32);
        let w2 = w.clone();
        let arr2 = arr.clone();
        run_on_all_pes(&m, move |pe, k| {
            let mut sh = ShmemCtx::new(&w2, k);
            if pe == 0 {
                let src = k.machine().alloc(DevId(0), "col", 4);
                src.write_slice(0, &[1.0, 2.0, 3.0, 4.0]);
                sh.iput(k, &arr2, 2, 8, &src, 0, 1, 4, 1);
            }
        });
        m.run().unwrap();
        let remote = arr.local(1);
        assert_eq!(remote.get(2), 1.0);
        assert_eq!(remote.get(10), 2.0);
        assert_eq!(remote.get(18), 3.0);
        assert_eq!(remote.get(26), 4.0);
        assert_eq!(remote.get(3), 0.0);
    }

    #[test]
    fn iget_gathers_remote_column() {
        let (m, w) = setup(2);
        // PE 1 holds a 4x8 "matrix"; PE 0 gathers its column 2.
        let arr = w.malloc("mat", 32);
        arr.local(1).with_mut(|d| {
            for (i, v) in d.iter_mut().enumerate() {
                *v = i as f64;
            }
        });
        let w2 = w.clone();
        let arr2 = arr.clone();
        run_on_all_pes(&m, move |pe, k| {
            if pe == 0 {
                let mut sh = ShmemCtx::new(&w2, k);
                let dst = k.machine().alloc(DevId(0), "col", 4);
                sh.iget(k, &dst, 0, 1, &arr2, 2, 8, 4, 1);
                assert_eq!(dst.to_vec(), vec![2.0, 10.0, 18.0, 26.0]);
            }
        });
        m.run().unwrap();
    }

    #[test]
    fn block_put_faster_than_thread_put_for_large_messages() {
        let c = CostModel::a100_hgx();
        let big = (1u64 << 21) * 8;
        assert!(c.shmem_put_block(big) < c.shmem_put(big));
        // Latency-dominated small messages: no meaningful difference.
        let small_diff =
            c.shmem_put(64).as_nanos() as i64 - c.shmem_put_block(64).as_nanos() as i64;
        assert!(small_diff.abs() < 100);
    }

    #[test]
    fn put_mapped_moves_data_and_charges_waves() {
        let (m, w) = setup(2);
        let arr = w.malloc("a", 4096);
        let w2 = w.clone();
        let arr2 = arr.clone();
        run_on_all_pes(&m, move |pe, k| {
            if pe == 0 {
                let mut sh = ShmemCtx::new(&w2, k);
                let src = k.machine().alloc(DevId(0), "src", 4096);
                src.fill(2.0);
                let t0 = k.now();
                sh.put_mapped(k, &arr2, 0, &src, 0, 4096, 1024, 1);
                // 4096 elements / 1024 threads = 4 waves of p-latency.
                let elapsed = k.now().since(t0);
                assert!(elapsed >= k.cost().shmem_p() * 4);
                assert_eq!(arr2.local(1).get(4095), 2.0);
            }
        });
        m.run().unwrap();
    }

    #[test]
    fn single_element_p_then_quiet() {
        let (m, w) = setup(2);
        let arr = w.malloc("cell", 4);
        let w2 = w.clone();
        let arr2 = arr.clone();
        run_on_all_pes(&m, move |pe, k| {
            let mut sh = ShmemCtx::new(&w2, k);
            if pe == 1 {
                sh.p(k, &arr2, 3, 9.5, 0);
                sh.quiet(k);
                assert_eq!(arr2.local(0).get(3), 9.5);
            }
        });
        m.run().unwrap();
    }

    #[test]
    fn signal_op_remote_add() {
        let (m, w) = setup(3);
        let sig = w.signal(0);
        let w2 = w.clone();
        let sig2 = sig.clone();
        run_on_all_pes(&m, move |pe, k| {
            let mut sh = ShmemCtx::new(&w2, k);
            if pe != 0 {
                sh.signal_op(k, &sig2, SignalOp::Add, 1, 0);
            } else {
                sh.signal_wait_until(k, &sig2, Cmp::Ge, 2);
                assert_eq!(sh.signal_fetch(k, &sig2), 2);
            }
        });
        m.run().unwrap();
    }

    #[test]
    fn barrier_all_synchronizes_pes() {
        let (m, w) = setup(4);
        let w2 = w.clone();
        run_on_all_pes(&m, move |pe, k| {
            let mut sh = ShmemCtx::new(&w2, k);
            k.busy(Category::Compute, "skew", us(5.0 * (pe + 1) as f64));
            sh.barrier_all(k);
            // All PEs released at (or after) the slowest arrival: 20 µs.
            assert!(k.now().as_micros_f64() >= 20.0);
        });
        m.run().unwrap();
    }

    #[test]
    fn out_of_range_pe_panics() {
        let (m, w) = setup(2);
        let sig = w.signal(0);
        let w2 = w.clone();
        run_on_all_pes(&m, move |pe, k| {
            if pe == 0 {
                let mut sh = ShmemCtx::new(&w2, k);
                sh.signal_op(k, &sig, SignalOp::Set, 1, 7); // bad PE
            }
        });
        match m.run() {
            Err(sim_des::SimError::AgentPanic { message, .. }) => {
                assert!(message.contains("out of range"), "{message}");
            }
            other => panic!("expected panic, got {other:?}"),
        }
    }

    #[test]
    fn remote_write_bounds_checked() {
        let (m, w) = setup(2);
        let arr = w.malloc("a", 8);
        let w2 = w.clone();
        run_on_all_pes(&m, move |pe, k| {
            if pe == 0 {
                let mut sh = ShmemCtx::new(&w2, k);
                let src = k.machine().alloc(DevId(0), "src", 16);
                sh.putmem(k, &arr, 0, &src, 0, 16, 1); // too long
            }
        });
        assert!(matches!(m.run(), Err(sim_des::SimError::AgentPanic { .. })));
    }

    #[test]
    fn lost_signal_protocol_deadlocks() {
        // Failure injection: PE1 waits for a signal PE0 never sends. The
        // engine must catch this as a deadlock, not hang.
        let (m, w) = setup(2);
        let sig = w.signal(0);
        let w2 = w.clone();
        run_on_all_pes(&m, move |pe, k| {
            let mut sh = ShmemCtx::new(&w2, k);
            if pe == 1 {
                sh.signal_wait_until(k, &sig, Cmp::Ge, 1);
            }
        });
        assert!(matches!(m.run(), Err(sim_des::SimError::Deadlock { .. })));
    }

    #[test]
    fn device_initiated_beats_host_staged_latency() {
        // The core premise of the paper in miniature: a device-initiated
        // put+signal round trip is much cheaper than host-staged stream
        // choreography for the same payload.
        let payload = 256usize; // one small halo row

        // Device-initiated.
        let (m1, w1) = setup(2);
        let arr = w1.malloc("halo", payload);
        let sig = w1.signal(0);
        let w1c = w1.clone();
        run_on_all_pes(&m1, move |pe, k| {
            let mut sh = ShmemCtx::new(&w1c, k);
            if pe == 0 {
                let src = k.machine().alloc(DevId(0), "src", payload);
                sh.putmem_signal_nbi(k, &arr, 0, &src, 0, payload, &sig, SignalOp::Set, 1, 1);
            } else {
                sh.signal_wait_until(k, &sig, Cmp::Ge, 1);
            }
        });
        let t_dev = m1.run().unwrap();

        // Host-staged: launch kernel, sync, memcpy p2p, sync, launch, sync.
        let m2 = Machine::new(2, CostModel::a100_hgx(), ExecMode::Full);
        let src = m2.alloc(DevId(0), "src", payload);
        let dst = m2.alloc(DevId(1), "dst", payload);
        m2.spawn_host("rank0", move |host| {
            let s = host.create_stream(DevId(0), "s");
            host.launch(&s, "produce", |k| k.busy(Category::Compute, "w", us(0.1)));
            host.sync_stream(&s);
            host.memcpy_async(&s, &dst, 0, &src, 0, payload);
            host.sync_stream(&s);
            host.launch(&s, "consume", |k| k.busy(Category::Compute, "w", us(0.1)));
            host.sync_stream(&s);
        });
        let t_host = m2.run().unwrap();

        assert!(
            t_dev.as_nanos() * 2 < t_host.as_nanos(),
            "device path {t_dev} should be >2x faster than host path {t_host}"
        );
    }

    #[test]
    fn backoff_shape_caps_and_jitters_deterministically() {
        let plain = BackoffPolicy::default();
        // No cap, no jitter: pass-through.
        assert_eq!(plain.shape(us(8.0), 0, 1, 1), us(8.0));
        // Cap clamps the exponential.
        let capped = BackoffPolicy::default().with_cap(us(3.0));
        assert_eq!(capped.shape(us(8.0), 0, 1, 1), us(3.0));
        assert_eq!(capped.shape(us(2.0), 0, 1, 1), us(2.0));
        // Equal jitter lands in [d/2, d], is a pure function of
        // (seed, src, dst, attempt), and varies across attempts.
        let jit = BackoffPolicy::default().with_jitter_seed(0xfeed);
        let d = us(8.0);
        let shaped: Vec<SimDur> = (1..=4).map(|a| jit.shape(d, 0, 1, a)).collect();
        for s in &shaped {
            assert!(
                *s >= SimDur(d.as_nanos() / 2) && *s <= d,
                "{s:?} outside [d/2, d]"
            );
        }
        assert_eq!(
            shaped,
            (1..=4).map(|a| jit.shape(d, 0, 1, a)).collect::<Vec<_>>()
        );
        assert!(
            shaped.windows(2).any(|w| w[0] != w[1]),
            "jitter should vary across attempts: {shaped:?}"
        );
        // Different routes draw different jitter.
        assert_ne!(jit.shape(d, 0, 1, 1), jit.shape(d, 1, 0, 1));
    }

    #[test]
    fn reliable_put_retries_surface_attempts_in_trace() {
        let (m, w) = setup(2);
        m.set_fault_plan(sim_des::FaultPlan::new().with_drop(sim_des::DropFault {
            from: 0,
            to: 1,
            first_attempt: 1,
            count: 2,
        }));
        let arr = w.malloc("a", 8);
        let sig = w.signal(0);
        let w2 = w.clone();
        let attempts = Arc::new(sim_des::lock::Mutex::new(0u32));
        let attempts2 = Arc::clone(&attempts);
        run_on_all_pes(&m, move |pe, k| {
            let mut sh = ShmemCtx::new(&w2, k);
            if pe == 0 {
                sh.set_backoff_policy(
                    BackoffPolicy::default()
                        .with_base(us(1.0))
                        .with_cap(us(2.0))
                        .with_jitter_seed(7),
                );
                let src = k.machine().alloc(DevId(0), "src", 8);
                src.fill(2.0);
                *attempts2.lock() =
                    sh.putmem_signal_reliable(k, &arr, 0, &src, 0, 8, &sig, SignalOp::Set, 1, 1);
            } else {
                sh.signal_wait_until(k, &sig, Cmp::Ge, 1);
                assert_eq!(arr.local(1).get(7), 2.0);
            }
        });
        m.run().unwrap();
        assert_eq!(*attempts.lock(), 3, "two drops then success");
        // The trace names each backoff span with its attempt number.
        let trace = m.trace();
        let labels: Vec<String> = trace
            .spans()
            .iter()
            .map(|s| trace.resolve(s.label).to_string())
            .filter(|l| l.starts_with("put_retry_backoff"))
            .collect();
        assert_eq!(
            labels,
            [
                "put_retry_backoff->pe1 attempt 1",
                "put_retry_backoff->pe1 attempt 2"
            ]
        );
    }

    #[test]
    fn reliable_put_with_jitter_is_bit_deterministic() {
        let run = || {
            let (m, w) = setup(2);
            m.set_fault_plan(sim_des::FaultPlan::new().with_drop(sim_des::DropFault {
                from: 0,
                to: 1,
                first_attempt: 1,
                count: 3,
            }));
            let arr = w.malloc("a", 8);
            let sig = w.signal(0);
            let w2 = w.clone();
            run_on_all_pes(&m, move |pe, k| {
                let mut sh = ShmemCtx::new(&w2, k);
                if pe == 0 {
                    sh.set_backoff_policy(
                        BackoffPolicy::default()
                            .with_base(us(2.0))
                            .with_jitter_seed(42),
                    );
                    let src = k.machine().alloc(DevId(0), "src", 8);
                    sh.putmem_signal_reliable(k, &arr, 0, &src, 0, 8, &sig, SignalOp::Set, 1, 1);
                } else {
                    sh.signal_wait_until(k, &sig, Cmp::Ge, 1);
                }
            });
            m.run().unwrap()
        };
        assert_eq!(
            run(),
            run(),
            "same plan + seed must give identical end time"
        );
    }

    #[test]
    fn reliable_put_exhaustion_panics_with_attribution() {
        let (m, w) = setup(2);
        m.set_fault_plan(sim_des::FaultPlan::new().with_drop(sim_des::DropFault {
            from: 0,
            to: 1,
            first_attempt: 1,
            count: 100,
        }));
        let arr = w.malloc("a", 8);
        let sig = w.signal(0);
        let w2 = w.clone();
        run_on_all_pes(&m, move |pe, k| {
            let mut sh = ShmemCtx::new(&w2, k);
            if pe == 0 {
                sh.set_backoff_policy(BackoffPolicy::default().with_max_attempts(3));
                let src = k.machine().alloc(DevId(0), "src", 8);
                sh.putmem_signal_reliable(k, &arr, 0, &src, 0, 8, &sig, SignalOp::Set, 1, 1);
            }
            // pe1 does not wait: exhaustion must abort the run by itself.
        });
        match m.run() {
            Err(sim_des::SimError::AgentPanic { message, .. }) => {
                assert!(
                    message.contains("retries exhausted")
                        && message.contains("pe0 -> pe1")
                        && message.contains("max_attempts = 3"),
                    "unexpected message: {message}"
                );
            }
            other => panic!("expected AgentPanic, got {other:?}"),
        }
    }
}
