//! Satellite property test for the chaos engine: every seeded fault plan
//! either completes bit-identically to the fault-free baseline (or with a
//! documented degraded quorum) or yields an *attributed* timeout /
//! diagnostic — never a silent divergence, an unattributed hang, or an
//! unbounded recovery.

use cpufree_bench::chaos::{
    baseline, chaos_sweep, chaos_sweep_jobs, degraded_plans, run_degraded_schedule, run_schedule,
    ChaosWorkload, CHAOS_HORIZON_US, CHAOS_ITERS, CHAOS_NODES,
};
use gpu_sim::TopologyKind;
use sim_des::{us, ChaosOutcome, FaultPlan, SimTime};

/// 64 seeds x 2 topologies on the fault-tolerant Jacobi runner: no fault
/// plan drawn from the generator may ever produce a violation outcome.
/// Every run either matches the baseline bit-for-bit or names its fault.
#[test]
fn seeded_fault_plans_never_diverge_silently() {
    let topologies = [TopologyKind::NvlinkAllToAll, TopologyKind::PcieTree];
    for topo in topologies {
        let base = baseline(ChaosWorkload::Jacobi, topo);
        for seed in 0..64 {
            let plan = FaultPlan::from_seed(
                seed,
                CHAOS_NODES,
                SimTime::ZERO + us(CHAOS_HORIZON_US),
                CHAOS_ITERS,
            );
            let outcome = run_schedule(ChaosWorkload::Jacobi, topo, &plan, &base);
            assert!(
                !outcome.is_violation(),
                "seed {seed} on {} violated a recovery invariant: {}",
                topo.name(),
                outcome.label(),
            );
            match &outcome {
                ChaosOutcome::CompletedIdentical
                | ChaosOutcome::CompletedDegraded { .. }
                | ChaosOutcome::AttributedTimeout { .. }
                | ChaosOutcome::AttributedDiagnostic { .. } => {}
                other => panic!(
                    "seed {seed} on {}: unexpected outcome {}",
                    topo.name(),
                    other.label()
                ),
            }
        }
    }
}

/// Degraded modes hold on every preset: Jacobi and CG complete under a
/// single-PE crash (healed quorum collectives, documented membership) and
/// a single hard link kill (transport rerouting, bit-identical result) on
/// all four topology presets.
#[test]
fn degraded_modes_hold_across_all_topologies() {
    for topo in TopologyKind::presets() {
        for workload in ChaosWorkload::ALL {
            for (name, plan) in degraded_plans() {
                let outcome = run_degraded_schedule(workload, topo, &plan);
                match (&outcome, name) {
                    // Node 2 dies: the surviving quorum must be exactly the
                    // other three PEs, and the run must say so.
                    (ChaosOutcome::CompletedDegraded { quorum }, "degraded-crash") => {
                        assert_eq!(
                            quorum,
                            &[0, 1, 3],
                            "{} {name} on {}: wrong quorum",
                            workload.name(),
                            topo.name()
                        );
                    }
                    // A killed link is healed by rerouting alone — no
                    // protocol change, so the result stays bit-identical.
                    (ChaosOutcome::CompletedIdentical, "degraded-linkkill") => {}
                    (other, _) => panic!(
                        "{} {name} on {}: unexpected outcome {}",
                        workload.name(),
                        topo.name(),
                        other.label()
                    ),
                }
            }
        }
    }
}

/// The same seed budget explores the same schedules and classifies them
/// identically: two sweeps render byte-for-byte the same report.
#[test]
fn chaos_sweep_is_deterministic() {
    let a = chaos_sweep(3, false).expect("sweep").render();
    let b = chaos_sweep(3, false).expect("sweep").render();
    assert_eq!(a, b, "same seed budget must render identical reports");
    assert!(a.contains("schedules explored"));
}

/// Parallelism is invisible in the output: the sweep renders the same
/// bytes whether the cases ran on one worker or raced across eight.
/// (Only identity is asserted — never wall clock; CI boxes may be 1-core.)
#[test]
fn chaos_report_is_byte_identical_across_worker_counts() {
    let reference = chaos_sweep_jobs(3, false, 1).expect("sweep").render();
    for jobs in [2usize, 8] {
        let report = chaos_sweep_jobs(3, false, jobs).expect("sweep").render();
        assert_eq!(
            reference, report,
            "report diverged between 1 and {jobs} workers"
        );
    }
    assert!(reference.contains("schedules explored"));
}

/// Degenerate sweep inputs are rejected up front — a sweep that explores
/// nothing must never masquerade as a clean gate.
#[test]
fn degenerate_sweep_inputs_error_cleanly() {
    let zero_seeds = chaos_sweep_jobs(0, false, 4);
    assert!(zero_seeds.is_err(), "seeds=0 must be an error");
    assert!(zero_seeds.unwrap_err().contains("seed"));
    let zero_jobs = chaos_sweep_jobs(3, false, 0);
    assert!(zero_jobs.is_err(), "jobs=0 must be an error");
    assert!(zero_jobs.unwrap_err().contains("jobs 0"));
}
