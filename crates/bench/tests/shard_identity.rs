//! Property suite for the conservative sharded engine: the shard count is
//! an execution detail, never an observable.
//!
//! Every assertion here is on virtual quantities — end times, event
//! counts, checksums, rendered reports — and **never** on wall clock, so
//! the suite is byte-stable on any host at any load.

use cpufree_bench::sharded::{ring_allreduce, ring_allreduce_plain, RingRun};
use gpu_sim::TopologyKind;
use sim_des::{us, Cmp, ShardedEngine, SignalOp};

const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const AGENTS: usize = 16;

/// Every topology preset, old and new — the cross-preset conformance
/// sweep. 16 agents occupy two fat-tree leaves, two dragonfly groups and
/// two rail-optimized nodes, so cross-shard lookahead genuinely crosses
/// the cluster fabrics' switch and rail links.
fn topologies() -> Vec<TopologyKind> {
    TopologyKind::presets()
}

/// Render the differential report for one `(topology, seed)` case: the
/// canonical line every engine configuration must reproduce byte for byte.
fn case_report(kind: TopologyKind, seed: u64, run: &RingRun) -> String {
    format!("{} seed={seed}: {}\n", kind.name(), run.report())
}

/// The full serial report over every case — the oracle string.
fn serial_report() -> String {
    let mut out = String::new();
    for kind in topologies() {
        for seed in SEEDS {
            let run = ring_allreduce_plain(kind, AGENTS, seed);
            out.push_str(&case_report(kind, seed, &run));
        }
    }
    out
}

/// The same report produced by the sharded engine at a given shard count.
fn sharded_report(shards: usize) -> String {
    let mut out = String::new();
    for kind in topologies() {
        for seed in SEEDS {
            let (run, _) = ring_allreduce(kind, AGENTS, seed, shards);
            out.push_str(&case_report(kind, seed, &run));
        }
    }
    out
}

/// 8 seeds x every topology preset: the sharded differential report is
/// byte-identical to the serial oracle at shard counts 1, 2, 4 and 8 —
/// end times, events processed, and numeric checksums all included.
#[test]
fn sharded_reports_are_byte_identical_to_serial() {
    let oracle = serial_report();
    assert!(!oracle.is_empty());
    for shards in SHARD_COUNTS {
        let got = sharded_report(shards);
        assert_eq!(
            oracle, got,
            "shards={shards} produced a different differential report"
        );
    }
}

/// The event counter specifically: queue pops summed over shards equal the
/// serial engine's pops on every case (same unit, same total — throughput
/// comparisons between the engines are apples to apples).
#[test]
fn events_processed_matches_serial_exactly() {
    for kind in topologies() {
        for seed in SEEDS.iter().take(3) {
            let serial = ring_allreduce_plain(kind, AGENTS, *seed);
            for shards in SHARD_COUNTS {
                let (sharded, cross) = ring_allreduce(kind, AGENTS, *seed, shards);
                assert_eq!(serial.events, sharded.events, "{kind:?} shards={shards}");
                if shards == 1 {
                    assert_eq!(cross, 0, "single shard must never use the mailbox");
                } else {
                    assert!(cross > 0, "{kind:?} shards={shards}: ring never crossed");
                }
            }
        }
    }
}

/// A cross-shard deadlock renders one canonical report at every shard
/// count: same virtual time, same sorted blocked-agent lines with global
/// flag numbering, regardless of where the agents were placed.
#[test]
fn cross_shard_deadlock_report_is_canonical() {
    fn deadlock_report(shards: usize) -> String {
        let mut eng = ShardedEngine::new(shards, us(1.0));
        // Two waiters on flags nobody signals, placed on the extreme
        // shards; a third agent does real work first so the deadlock time
        // is nonzero.
        let fa = eng.flag_on(0, 0);
        let fb = eng.flag_on(shards - 1, 0);
        let fc = eng.flag_on(shards / 2, 0);
        eng.spawn_on(0, "alpha", move |ctx, _| {
            ctx.wait_flag(fa.local(), Cmp::Ge, 1);
        });
        eng.spawn_on(shards - 1, "omega", move |ctx, _| {
            ctx.wait_flag(fb.local(), Cmp::Ge, 3);
        });
        eng.spawn_on(shards / 2, "worker", move |ctx, port| {
            ctx.advance(us(7.0));
            port.send(ctx, fc, SignalOp::Set, 1, us(1.0));
            ctx.wait_flag(fc.local(), Cmp::Ge, 2);
        });
        eng.run().expect_err("must deadlock").to_string()
    }
    let base = deadlock_report(1);
    assert!(base.contains("deadlock"), "got: {base}");
    for shards in [2, 4, 8] {
        assert_eq!(base, deadlock_report(shards), "shards={shards}");
    }
}

/// Sharded runs are reproducible run-to-run (no wall-clock leakage into
/// virtual results) even when the host interleaves worker threads
/// differently.
#[test]
fn sharded_runs_are_reproducible() {
    let (a, _) = ring_allreduce(TopologyKind::NvlinkRing, AGENTS, 99, 4);
    for _ in 0..3 {
        let (b, _) = ring_allreduce(TopologyKind::NvlinkRing, AGENTS, 99, 4);
        assert_eq!(a, b);
    }
}

/// Different seeds genuinely change the workload (the identity above is
/// not vacuous): checksums and end times move with the seed.
#[test]
fn seeds_are_not_degenerate() {
    let a = ring_allreduce_plain(TopologyKind::NvlinkRing, AGENTS, 1);
    let b = ring_allreduce_plain(TopologyKind::NvlinkRing, AGENTS, 2);
    assert_ne!(a.checksum, b.checksum);
    assert_ne!(a.end_ns, b.end_ns);
}
