//! Quarantine zone for anything that needs the real network.
//!
//! Tier-1 must be clean on an offline machine: every test in the workspace
//! runs against the deterministic simulator, never the outside world. Checks
//! that genuinely need connectivity (e.g. validating the committed
//! `BENCH_figures.json` against external plotting tooling, or fetching
//! reference traces) belong here, double-gated:
//!
//! * behind the `online` cargo feature, so offline builds do not even
//!   compile them, and
//! * behind `#[ignore]`, so an online build still skips them unless
//!   `-- --ignored` is passed explicitly.
//!
//! Run with:
//!
//! ```text
//! cargo test -p cpufree-bench --features online --test online -- --ignored
//! ```

#![cfg(feature = "online")]

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Connectivity canary: anything else in this file is meaningless without
/// an outbound route, so check that first and fail with a clear message.
#[test]
#[ignore = "reaches the real network; run with --features online -- --ignored"]
fn outbound_connectivity() {
    let addr = "index.crates.io:443"
        .to_socket_addrs()
        .expect("DNS resolution failed — offline? run without --features online")
        .next()
        .expect("no address for index.crates.io");
    TcpStream::connect_timeout(&addr, Duration::from_secs(10))
        .expect("no outbound route — offline? run without --features online");
}
