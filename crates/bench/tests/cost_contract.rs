//! Property suite for the static cost predictor: the contract that
//! `figures -- cost` gates in CI, asserted directly from the library so a
//! regression fails `cargo test` even when the ledger is not regenerated.
//!
//! Over the whole corpus x persistent-stage x GPU-count x topology-preset
//! sweep (both contended and uncontended fabrics):
//!
//! * on uncontended fabrics the prediction equals the simulated virtual
//!   time exactly (`predicted == simulated`);
//! * on contended fabrics the prediction **never under-estimates** and
//!   stays within the documented 10% bound;
//! * the recurrence base itself reproduces the DES virtual time (the
//!   margin is pure conservatism, not error compensation);
//! * both the steady-state extrapolation path and the full-walk path are
//!   exercised, as is at least one genuinely contended fabric.
//!
//! Everything here is virtual time, so the suite is deterministic on any
//! host at any load.

use cpufree_bench::cost::cost_sweep;

#[test]
fn predictor_contract_holds_over_corpus_and_presets() {
    let sweep = cost_sweep();

    // The sweep covers the full cross product: 4 program/stage combos x
    // 4 GPU counts x 7 presets.
    assert_eq!(sweep.rows.len(), 4 * 4 * 7, "sweep lost cells");

    let violations = sweep.violations();
    assert!(
        violations.is_empty(),
        "cost-predictor contract violated:\n{}",
        violations.join("\n")
    );

    let mut saw_contended = false;
    let mut saw_extrapolated = false;
    let mut saw_full_walk = false;
    for row in &sweep.rows {
        // Never an under-estimate, contended or not (violation() already
        // checks this; restate it so the property reads on its own).
        assert!(
            row.predicted >= row.simulated,
            "{}/{} @{}gpus on {}: under-estimate {} < {}",
            row.program,
            row.stage,
            row.gpus,
            row.fabric,
            row.predicted,
            row.simulated
        );
        // The base recurrence mirrors the engine's (time, seq) event
        // order, so it must land on the simulated time exactly even when
        // links are shared; the margin only ever adds on top.
        assert_eq!(
            row.base, row.simulated,
            "{}/{} @{}gpus on {}: recurrence base diverged from DES",
            row.program, row.stage, row.gpus, row.fabric
        );
        assert_eq!(row.predicted, row.base + row.margin, "total != base+margin");
        saw_contended |= row.contended;
        saw_extrapolated |= row.extrapolated;
        saw_full_walk |= !row.extrapolated;
    }
    assert!(saw_contended, "no contended fabric in the sweep");
    assert!(
        saw_extrapolated,
        "steady-state extrapolation path not taken"
    );
    assert!(saw_full_walk, "full-walk path not taken");

    // Per-preset ledgers back the top-kernel report: line items must sum
    // to a non-zero busy total on the heaviest configuration.
    assert_eq!(sweep.ledgers.len(), 7, "one ledger per preset");
    for (fabric, report) in &sweep.ledgers {
        assert!(
            !report.kernels.is_empty(),
            "{fabric}: empty per-kernel ledger"
        );
        let busy: u64 = report.kernels.iter().map(|k| k.busy.as_nanos()).sum();
        assert!(busy > 0, "{fabric}: ledger carries no cost");
    }
}
