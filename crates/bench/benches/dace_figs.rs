//! Criterion wrappers over the DaCe figure experiments (Fig 6.3a/b):
//! transform + lower + simulate each backend at 4 GPUs.

use criterion::{criterion_group, criterion_main, Criterion};
use dace_sim::lower::{run_discrete, run_persistent};
use dace_sim::programs::{Jacobi1dSetup, Jacobi2dSetup};
use dace_sim::transform::{gpu_transform, to_cpu_free};
use gpu_sim::ExecMode;

fn fig6_3a(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_3a_dace_jacobi1d");
    g.bench_function("baseline_mpi", |b| {
        let setup = Jacobi1dSetup::new(1 << 20, 5, 4);
        let mut sdfg = setup.sdfg.clone();
        gpu_transform(&mut sdfg);
        b.iter(|| {
            run_discrete(
                &sdfg,
                4,
                &setup.user_bindings(),
                setup.tsteps,
                ExecMode::TimingOnly,
                &|pe, a| setup.init_local(pe, a),
            )
            .unwrap()
            .total
        })
    });
    g.bench_function("cpu_free", |b| {
        let setup = Jacobi1dSetup::new(1 << 20, 5, 4);
        let mut sdfg = setup.sdfg.clone();
        to_cpu_free(&mut sdfg).unwrap();
        b.iter(|| {
            run_persistent(
                &sdfg,
                4,
                &setup.user_bindings(),
                setup.tsteps,
                ExecMode::TimingOnly,
                &|pe, a| setup.init_local(pe, a),
            )
            .unwrap()
            .total
        })
    });
    g.finish();
}

fn fig6_3b(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_3b_dace_jacobi2d");
    g.bench_function("baseline_mpi", |b| {
        let setup = Jacobi2dSetup::new(1400, 1400, 5, 4);
        let mut sdfg = setup.sdfg.clone();
        gpu_transform(&mut sdfg);
        b.iter(|| {
            run_discrete(
                &sdfg,
                4,
                &setup.user_bindings(),
                setup.tsteps,
                ExecMode::TimingOnly,
                &|pe, a| setup.init_local(pe, a),
            )
            .unwrap()
            .total
        })
    });
    g.bench_function("cpu_free", |b| {
        let setup = Jacobi2dSetup::new(1400, 1400, 5, 4);
        let mut sdfg = setup.sdfg.clone();
        to_cpu_free(&mut sdfg).unwrap();
        b.iter(|| {
            run_persistent(
                &sdfg,
                4,
                &setup.user_bindings(),
                setup.tsteps,
                ExecMode::TimingOnly,
                &|pe, a| setup.init_local(pe, a),
            )
            .unwrap()
            .total
        })
    });
    g.finish();
}

fn transforms(c: &mut Criterion) {
    c.bench_function("transform/to_cpu_free_jacobi2d", |b| {
        let setup = Jacobi2dSetup::new(512, 512, 10, 8);
        b.iter(|| {
            let mut sdfg = setup.sdfg.clone();
            to_cpu_free(&mut sdfg).unwrap();
            sdfg
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig6_3a, fig6_3b, transforms
}
criterion_main!(benches);
