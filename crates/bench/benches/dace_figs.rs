//! Wall-clock wrappers over the DaCe figure experiments (Fig 6.3a/b):
//! transform + lower + simulate each backend at 4 GPUs.

use cpufree_bench::harness::Harness;
use dace_sim::lower::{run_discrete, run_persistent};
use dace_sim::programs::{Jacobi1dSetup, Jacobi2dSetup};
use dace_sim::transform::{gpu_transform, to_cpu_free};
use gpu_sim::ExecMode;

fn main() {
    let h = Harness::new(10);

    {
        let setup = Jacobi1dSetup::new(1 << 20, 5, 4);
        let mut sdfg = setup.sdfg.clone();
        gpu_transform(&mut sdfg);
        h.bench("fig6_3a_dace_jacobi1d/baseline_mpi", || {
            run_discrete(
                &sdfg,
                4,
                &setup.user_bindings(),
                setup.tsteps,
                ExecMode::TimingOnly,
                &|pe, a| setup.init_local(pe, a),
            )
            .unwrap()
            .total
        });
        let mut sdfg = setup.sdfg.clone();
        to_cpu_free(&mut sdfg).unwrap();
        h.bench("fig6_3a_dace_jacobi1d/cpu_free", || {
            run_persistent(
                &sdfg,
                4,
                &setup.user_bindings(),
                setup.tsteps,
                ExecMode::TimingOnly,
                &|pe, a| setup.init_local(pe, a),
            )
            .unwrap()
            .total
        });
    }

    {
        let setup = Jacobi2dSetup::new(1400, 1400, 5, 4);
        let mut sdfg = setup.sdfg.clone();
        gpu_transform(&mut sdfg);
        h.bench("fig6_3b_dace_jacobi2d/baseline_mpi", || {
            run_discrete(
                &sdfg,
                4,
                &setup.user_bindings(),
                setup.tsteps,
                ExecMode::TimingOnly,
                &|pe, a| setup.init_local(pe, a),
            )
            .unwrap()
            .total
        });
        let mut sdfg = setup.sdfg.clone();
        to_cpu_free(&mut sdfg).unwrap();
        h.bench("fig6_3b_dace_jacobi2d/cpu_free", || {
            run_persistent(
                &sdfg,
                4,
                &setup.user_bindings(),
                setup.tsteps,
                ExecMode::TimingOnly,
                &|pe, a| setup.init_local(pe, a),
            )
            .unwrap()
            .total
        });
    }

    h.bench("transform/to_cpu_free_jacobi2d", || {
        let setup = Jacobi2dSetup::new(512, 512, 10, 8);
        let mut sdfg = setup.sdfg.clone();
        to_cpu_free(&mut sdfg).unwrap();
        sdfg
    });
}
