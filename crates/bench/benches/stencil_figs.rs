//! Wall-clock wrappers over the stencil figure experiments (Fig 2.2, 6.1,
//! 6.2). Each bench point simulates one variant at 4 GPUs with a reduced
//! iteration count; the `figures` binary produces the full paper tables.

use cpufree_bench::harness::Harness;
use cpufree_bench::{strong3d, weak2d, weak3d};
use stencil_lab::Variant;

const BENCH_ITERS: u64 = 10;

fn main() {
    let h = Harness::new(10);

    for v in [Variant::BaselineOverlap, Variant::CpuFree] {
        let cfg = weak2d(256, 4, BENCH_ITERS).without_compute();
        h.bench(&format!("fig2_2_no_compute_2d_256/{}", v.label()), || {
            v.run(&cfg).total
        });
    }

    for (name, base) in [
        ("small_256", 256usize),
        ("medium_2048", 2048),
        ("large_8192", 8192),
    ] {
        let mut variants = Variant::paper_set().to_vec();
        if base == 8192 {
            variants.push(Variant::CpuFreePerks);
        }
        for v in variants {
            let cfg = weak2d(base, 4, BENCH_ITERS);
            h.bench(&format!("fig6_1_weak2d_{name}/{}", v.label()), || {
                v.run(&cfg).total
            });
        }
    }

    for v in Variant::paper_set() {
        let cfg = weak3d(256, 256, 256, 4, BENCH_ITERS);
        h.bench(&format!("fig6_2_weak3d_256/{}", v.label()), || {
            v.run(&cfg).total
        });
    }
    for v in [Variant::BaselineNvshmem, Variant::CpuFree] {
        let cfg = strong3d(512, 512, 514, 8, BENCH_ITERS);
        h.bench(&format!("fig6_2_strong3d_512/{}", v.label()), || {
            v.run(&cfg).total
        });
    }

    for v in [
        Variant::CpuFree,
        Variant::CpuFreeDual,
        Variant::CpuFreeFixedSplit,
    ] {
        let cfg = weak2d(2048, 4, BENCH_ITERS);
        h.bench(&format!("ablation_designs/{}", v.label()), || {
            v.run(&cfg).total
        });
    }
}
