//! Criterion wrappers over the stencil figure experiments (Fig 2.2, 6.1,
//! 6.2). Each bench point simulates one variant at 4 GPUs with a reduced
//! iteration count; the `figures` binary produces the full paper tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cpufree_bench::{strong3d, weak2d, weak3d};
use stencil_lab::Variant;

const BENCH_ITERS: u64 = 10;

fn fig2_2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_2_no_compute_2d_256");
    for v in [Variant::BaselineOverlap, Variant::CpuFree] {
        g.bench_with_input(BenchmarkId::from_parameter(v.label()), &v, |b, &v| {
            let cfg = weak2d(256, 4, BENCH_ITERS).without_compute();
            b.iter(|| v.run(&cfg).total)
        });
    }
    g.finish();
}

fn fig6_1(c: &mut Criterion) {
    for (name, base) in [("small_256", 256usize), ("medium_2048", 2048), ("large_8192", 8192)] {
        let mut g = c.benchmark_group(format!("fig6_1_weak2d_{name}"));
        let mut variants = Variant::paper_set().to_vec();
        if base == 8192 {
            variants.push(Variant::CpuFreePerks);
        }
        for v in variants {
            g.bench_with_input(BenchmarkId::from_parameter(v.label()), &v, |b, &v| {
                let cfg = weak2d(base, 4, BENCH_ITERS);
                b.iter(|| v.run(&cfg).total)
            });
        }
        g.finish();
    }
}

fn fig6_2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_2_weak3d_256");
    for v in Variant::paper_set() {
        g.bench_with_input(BenchmarkId::from_parameter(v.label()), &v, |b, &v| {
            let cfg = weak3d(256, 256, 256, 4, BENCH_ITERS);
            b.iter(|| v.run(&cfg).total)
        });
    }
    g.finish();

    let mut g = c.benchmark_group("fig6_2_strong3d_512");
    for v in [Variant::BaselineNvshmem, Variant::CpuFree] {
        g.bench_with_input(BenchmarkId::from_parameter(v.label()), &v, |b, &v| {
            let cfg = strong3d(512, 512, 514, 8, BENCH_ITERS);
            b.iter(|| v.run(&cfg).total)
        });
    }
    g.finish();
}

fn ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_designs");
    for v in [Variant::CpuFree, Variant::CpuFreeDual, Variant::CpuFreeFixedSplit] {
        g.bench_with_input(BenchmarkId::from_parameter(v.label()), &v, |b, &v| {
            let cfg = weak2d(2048, 4, BENCH_ITERS);
            b.iter(|| v.run(&cfg).total)
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig2_2, fig6_1, fig6_2, ablations
}
criterion_main!(benches);
