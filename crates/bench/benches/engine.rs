//! Microbenchmarks of the simulation substrate itself: how fast the
//! deterministic engine executes agent handoffs, signals and barriers.
//! These bound how large a figure sweep is practical.

use criterion::{criterion_group, criterion_main, Criterion};
use sim_des::{ns, Cmp, Engine, SignalOp};

fn engine_handoffs(c: &mut Criterion) {
    c.bench_function("engine/advance_1000", |b| {
        b.iter(|| {
            let engine = Engine::new();
            engine.set_trace_enabled(false);
            engine.spawn("a", |ctx| {
                for _ in 0..1000 {
                    ctx.advance(ns(100));
                }
            });
            engine.run().unwrap()
        })
    });
}

fn engine_pingpong(c: &mut Criterion) {
    c.bench_function("engine/signal_pingpong_500", |b| {
        b.iter(|| {
            let engine = Engine::new();
            engine.set_trace_enabled(false);
            let f1 = engine.flag(0);
            let f2 = engine.flag(0);
            engine.spawn("a", move |ctx| {
                for i in 1..=500u64 {
                    ctx.signal(f1, SignalOp::Set, i);
                    ctx.wait_flag(f2, Cmp::Ge, i);
                }
            });
            engine.spawn("b", move |ctx| {
                for i in 1..=500u64 {
                    ctx.wait_flag(f1, Cmp::Ge, i);
                    ctx.signal(f2, SignalOp::Set, i);
                }
            });
            engine.run().unwrap()
        })
    });
}

fn engine_barrier(c: &mut Criterion) {
    c.bench_function("engine/barrier_8x100", |b| {
        b.iter(|| {
            let engine = Engine::new();
            engine.set_trace_enabled(false);
            let bar = engine.barrier(8);
            for i in 0..8 {
                engine.spawn(format!("w{i}"), move |ctx| {
                    for _ in 0..100 {
                        ctx.advance(ns(50));
                        ctx.barrier(bar);
                    }
                });
            }
            engine.run().unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = engine_handoffs, engine_pingpong, engine_barrier
}
criterion_main!(benches);
