//! Microbenchmarks of the simulation substrate itself: how fast the
//! deterministic engine executes agent handoffs, signals and barriers.
//! These bound how large a figure sweep is practical.

use cpufree_bench::harness::Harness;
use cpufree_bench::sharded::{ring_allreduce, sharded_barrier};
use gpu_sim::TopologyKind;
use sim_des::{ns, Category, Cmp, Engine, SignalOp};

fn main() {
    let h = Harness::new(20);

    h.bench("engine/advance_1000", || {
        let engine = Engine::new();
        engine.set_trace_enabled(false);
        engine.spawn("a", |ctx| {
            for _ in 0..1000 {
                ctx.advance(ns(100));
            }
        });
        engine.run().unwrap()
    });

    h.bench("engine/signal_pingpong_500", || {
        let engine = Engine::new();
        engine.set_trace_enabled(false);
        let f1 = engine.flag(0);
        let f2 = engine.flag(0);
        engine.spawn("a", move |ctx| {
            for i in 1..=500u64 {
                ctx.signal(f1, SignalOp::Set, i);
                ctx.wait_flag(f2, Cmp::Ge, i);
            }
        });
        engine.spawn("b", move |ctx| {
            for i in 1..=500u64 {
                ctx.wait_flag(f1, Cmp::Ge, i);
                ctx.signal(f2, SignalOp::Set, i);
            }
        });
        engine.run().unwrap()
    });

    h.bench("engine/barrier_8x100", || {
        let engine = Engine::new();
        engine.set_trace_enabled(false);
        let bar = engine.barrier(8);
        for i in 0..8 {
            engine.spawn(format!("w{i}"), move |ctx| {
                for _ in 0..100 {
                    ctx.advance(ns(50));
                    ctx.barrier(bar);
                }
            });
        }
        engine.run().unwrap()
    });

    // The allocation-free hot path: every span records two interned u32
    // symbols instead of two heap strings, so a trace-heavy run costs no
    // per-span allocation after the first label.
    h.bench("engine/trace_busy_4x1000", || {
        let engine = Engine::new();
        for a in 0..4u64 {
            engine.spawn(format!("agent{a}"), move |ctx| {
                let label = ctx.intern("phase");
                for _ in 0..1000 {
                    ctx.busy(Category::Compute, label, ns(100));
                }
            });
        }
        engine.run().unwrap()
    });

    // The inter-run driver: whole simulations fanned out on the pool. On a
    // multi-core box this scales with the worker count; results are
    // position-stable so the outputs are identical at every thread count.
    for jobs in [1usize, sim_des::default_jobs()] {
        h.bench(&format!("batch/pingpong_16@jobs{jobs}"), || {
            sim_des::par_map(jobs, (0..16u64).collect(), |_| {
                let engine = Engine::new();
                engine.set_trace_enabled(false);
                let f1 = engine.flag(0);
                let f2 = engine.flag(0);
                engine.spawn("a", move |ctx| {
                    for i in 1..=250u64 {
                        ctx.signal(f1, SignalOp::Set, i);
                        ctx.wait_flag(f2, Cmp::Ge, i);
                    }
                });
                engine.spawn("b", move |ctx| {
                    for i in 1..=250u64 {
                        ctx.wait_flag(f1, Cmp::Ge, i);
                        ctx.signal(f2, SignalOp::Set, i);
                    }
                });
                engine.run().unwrap()
            })
        });
    }

    // The intra-run engine: one simulation partitioned across shard worker
    // threads under the conservative safe-horizon protocol. Virtual
    // results are bit-identical at every shard count (asserted inside the
    // workloads); only the wall clock may move.
    let shard_counts = [1usize, 2, 4];
    for &shards in &shard_counts {
        h.bench(&format!("engine/sharded_ring@shards{shards}"), || {
            ring_allreduce(TopologyKind::NvlinkRing, 16, 3, shards)
        });
    }
    for &shards in &shard_counts {
        h.bench(&format!("engine/sharded_barrier@shards{shards}"), || {
            sharded_barrier(32, 4, 25, shards)
        });
    }
}
