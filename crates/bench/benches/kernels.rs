//! Wall-clock throughput of the *functional* kernels (the real arithmetic
//! executed in `ExecMode::Full`): the 2D/3D Jacobi sweeps.

use cpufree_bench::harness::Harness;
use stencil_lab::grid;

fn main() {
    let h = Harness::new(20);

    let nx = 2048;
    let ny = 2048;
    let a = grid::init2d(nx, ny);
    let mut b = a.clone();
    h.bench("kernel_sweep2d_2048", || {
        grid::sweep2d_rows(&a, &mut b, nx, (1, ny - 2));
        b[nx + 1]
    });

    let (nx, ny, nz) = (128, 128, 128);
    let a = grid::init3d(nx, ny, nz);
    let mut b = a.clone();
    h.bench("kernel_sweep3d_128", || {
        grid::sweep3d_planes(&a, &mut b, nx, ny, (1, nz - 2));
        b[nx * ny + nx + 1]
    });
}
