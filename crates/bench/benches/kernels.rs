//! Wall-clock throughput of the *functional* kernels (the real arithmetic
//! executed in `ExecMode::Full`): the rayon-parallel 2D/3D Jacobi sweeps.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stencil_lab::grid;

fn sweep2d(c: &mut Criterion) {
    let nx = 2048;
    let ny = 2048;
    let a = grid::init2d(nx, ny);
    let mut b = a.clone();
    let mut g = c.benchmark_group("kernel_sweep2d_2048");
    g.throughput(Throughput::Elements(((nx - 2) * (ny - 2)) as u64));
    g.bench_function("rayon", |bench| {
        bench.iter(|| {
            grid::sweep2d_rows(&a, &mut b, nx, (1, ny - 2));
            b[nx + 1]
        })
    });
    g.finish();
}

fn sweep3d(c: &mut Criterion) {
    let (nx, ny, nz) = (128, 128, 128);
    let a = grid::init3d(nx, ny, nz);
    let mut b = a.clone();
    let mut g = c.benchmark_group("kernel_sweep3d_128");
    g.throughput(Throughput::Elements(
        ((nx - 2) * (ny - 2) * (nz - 2)) as u64,
    ));
    g.bench_function("rayon", |bench| {
        bench.iter(|| {
            grid::sweep3d_planes(&a, &mut b, nx, ny, (1, nz - 2));
            b[nx * ny + nx + 1]
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = sweep2d, sweep3d
}
criterion_main!(benches);
