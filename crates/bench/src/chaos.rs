//! Deterministic chaos engine — the sweep driver.
//!
//! [`sim_des::chaos`] holds the pure-data half of the engine (the outcome
//! taxonomy, the hand-rolled fault-plan JSON, the ddmin shrinker). This
//! module can see the workloads, so it owns the other half: enumerate fault
//! schedules ([`FaultPlan::from_seed`] seeds crossed with every
//! [`TopologyKind`] preset and both fault-tolerant workloads), run each
//! schedule with the happens-before checker enabled, and classify every
//! outcome against the **recovery invariants**:
//!
//! 1. a completed run must reproduce the fault-free baseline bit for bit
//!    (or, for degraded-mode schedules, the documented quorum result);
//! 2. recovery must stay within [`RECOVERY_BUDGET_MULT`]× the fault-free
//!    baseline's virtual time;
//! 3. every non-completion must be *attributed* — a timeout/deadlock with a
//!    wait-for graph, or a diagnostic naming the cause.
//!
//! Any violation is shrunk ([`sim_des::chaos::shrink`]) to a minimal
//! reproducer and serialized as a single JSON file that
//! `figures chaos-replay <path>` re-runs. The sweep itself is bit
//! deterministic: the same seed budget renders a byte-identical report.

use cpufree_solvers::{CgFtConfig, PoissonProblem};
use sim_des::chaos::{
    atoms, classify_error, plan_from_json, plan_to_json, shrink, string_field, ChaosOutcome,
};
use sim_des::{us, CrashFault, DropFault, FaultPlan, LinkFault, SimTime, StragglerFault};
use stencil_lab::{DegradedConfig, FtConfig, StencilConfig};

use gpu_sim::{CostModel, ExecMode, Topology, TopologyKind};
use sim_des::SimDur;

/// Nodes (PEs / GPUs) in every chaos schedule.
pub const CHAOS_NODES: usize = 4;
/// Solver iterations per chaos run (small on purpose: the sweep runs
/// hundreds of schedules in `Full` mode with the checker on).
pub const CHAOS_ITERS: u64 = 10;
/// Virtual-time horizon handed to [`FaultPlan::from_seed`], microseconds.
pub const CHAOS_HORIZON_US: f64 = 400.0;
/// Default seed budget of the sweep (`figures chaos` accepts `--seeds N`).
/// 64 seeds × 4 topologies × 2 workloads = 512 seeded schedules, plus the
/// degraded-mode cases and the seeded violation demo.
pub const DEFAULT_SEED_BUDGET: u64 = 64;
/// Recovery-time budget: a recovered run may take at most this multiple of
/// the fault-free fault-tolerant baseline's virtual time before it counts
/// as an `UnboundedRecovery` violation.
pub const RECOVERY_BUDGET_MULT: f64 = 10.0;

/// The fault-tolerant workloads the engine drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosWorkload {
    /// 2D5pt Jacobi under the checkpoint/restart FT protocol.
    Jacobi,
    /// Distributed CG under the checkpoint/restart FT protocol.
    Cg,
}

impl ChaosWorkload {
    /// Both workloads, in report order.
    pub const ALL: [ChaosWorkload; 2] = [ChaosWorkload::Jacobi, ChaosWorkload::Cg];

    /// Stable name used in reports and reproducer files.
    pub fn name(self) -> &'static str {
        match self {
            ChaosWorkload::Jacobi => "jacobi",
            ChaosWorkload::Cg => "cg",
        }
    }

    /// Inverse of [`ChaosWorkload::name`].
    pub fn from_name(name: &str) -> Option<ChaosWorkload> {
        ChaosWorkload::ALL.into_iter().find(|w| w.name() == name)
    }
}

/// Inverse of [`TopologyKind::name`] (reproducer files store the name).
/// Resolves every preset plus the tiny [`fabric_chaos_kinds`] instances
/// the fabric-kill fixtures run on.
pub fn topology_from_name(name: &str) -> Option<TopologyKind> {
    TopologyKind::presets()
        .into_iter()
        .chain(fabric_chaos_kinds())
        .find(|k| k.name() == name)
}

/// Cluster-fabric instances scaled down to [`CHAOS_NODES`] devices: the
/// same fat-tree / dragonfly link machinery as the full presets (switch
/// uplinks, gateway routers, global links) at a size the chaos runners
/// can sweep. Not presets — they exist for the fabric degraded cases.
pub fn fabric_chaos_kinds() -> Vec<TopologyKind> {
    vec![
        // Two leaves x two GPUs, two spines: the smallest Clos with a
        // distinct up/down link per (leaf, spine) pair.
        TopologyKind::FatTree { gpus: 4, radix: 4 },
        // Four single-router single-GPU groups: every cross-GPU route
        // crosses exactly one global link.
        TopologyKind::Dragonfly {
            groups: 4,
            routers_per_group: 1,
            gpus_per_router: 1,
        },
    ]
}

/// The Jacobi problem every chaos schedule runs (tiny, `Full` mode, checker
/// on): 64×62 grid, [`CHAOS_ITERS`] iterations, [`CHAOS_NODES`] PEs.
pub fn jacobi_config(topo: TopologyKind) -> StencilConfig {
    let mut cfg = StencilConfig::square2d(64, CHAOS_ITERS, CHAOS_NODES)
        .with_topology(topo)
        .with_check();
    cfg.ny = 62; // 15 interior layers per PE
    cfg
}

/// The CG problem every chaos schedule runs (tiny, `Full` mode, checker on).
pub fn cg_problem(topo: TopologyKind) -> PoissonProblem {
    PoissonProblem::new(64, 62, CHAOS_ITERS, CHAOS_NODES)
        .with_topology(topo)
        .with_check()
}

/// Fault-free reference measurements for one (workload, topology) cell.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// Virtual completion time of the fault-free fault-tolerant run.
    pub total: SimDur,
    /// Result fingerprint: the Jacobi field checksum, or the CG
    /// `final_rho` bits.
    pub fingerprint: u64,
}

/// Run the fault-free fault-tolerant baseline for a (workload, topology)
/// cell. Panics if the baseline itself fails — nothing downstream is
/// meaningful then.
pub fn baseline(workload: ChaosWorkload, topo: TopologyKind) -> Baseline {
    match workload {
        ChaosWorkload::Jacobi => {
            let ex =
                stencil_lab::run_cpu_free_ft(&FtConfig::new(jacobi_config(topo), FaultPlan::new()))
                    .expect("fault-free jacobi baseline failed");
            assert_eq!(ex.exec.max_err, Some(0.0), "jacobi baseline diverged");
            Baseline {
                total: ex.exec.total,
                fingerprint: ex.exec.checksum,
            }
        }
        ChaosWorkload::Cg => {
            let prob = cg_problem(topo);
            let ex = cpufree_solvers::run_cpu_free_ft(
                &CgFtConfig::new(prob.clone(), FaultPlan::new()),
                ExecMode::Full,
            )
            .expect("fault-free CG baseline failed");
            assert_eq!(ex.result.verify(&prob), 0.0, "CG baseline diverged");
            Baseline {
                total: ex.result.total,
                fingerprint: ex.result.final_rho.to_bits(),
            }
        }
    }
}

fn budget_of(base: &Baseline) -> SimDur {
    SimDur((base.total.as_nanos() as f64 * RECOVERY_BUDGET_MULT) as u64)
}

fn classify_completion(
    total: SimDur,
    base: &Baseline,
    identical: bool,
    divergence: String,
) -> ChaosOutcome {
    if !identical {
        ChaosOutcome::SilentDivergence { detail: divergence }
    } else if total > budget_of(base) {
        ChaosOutcome::UnboundedRecovery {
            detail: format!(
                "total {total} exceeds {RECOVERY_BUDGET_MULT}x baseline {} (budget {})",
                base.total,
                budget_of(base)
            ),
        }
    } else {
        ChaosOutcome::CompletedIdentical
    }
}

fn checker_outcome(report: &gpu_sim::CheckReport) -> Option<ChaosOutcome> {
    if report.clean() {
        None
    } else {
        Some(ChaosOutcome::AttributedDiagnostic {
            detail: format!(
                "checker raised {} diagnostic(s); first: {}",
                report.diagnostics.len(),
                report.diagnostics[0]
            ),
        })
    }
}

/// Run one fault schedule through a workload's fault-tolerant runner and
/// classify the outcome against the recovery invariants. Deterministic:
/// the same `(workload, topo, plan)` always yields the same outcome.
pub fn run_schedule(
    workload: ChaosWorkload,
    topo: TopologyKind,
    plan: &FaultPlan,
    base: &Baseline,
) -> ChaosOutcome {
    match workload {
        ChaosWorkload::Jacobi => {
            match stencil_lab::run_cpu_free_ft(&FtConfig::new(jacobi_config(topo), plan.clone())) {
                Ok(ex) => {
                    if let Some(out) = ex.exec.check.as_ref().and_then(checker_outcome) {
                        return out;
                    }
                    let identical =
                        ex.exec.checksum == base.fingerprint && ex.exec.max_err == Some(0.0);
                    classify_completion(
                        ex.exec.total,
                        base,
                        identical,
                        format!(
                            "checksum {:#018x} vs baseline {:#018x}, max_err {:?}",
                            ex.exec.checksum, base.fingerprint, ex.exec.max_err
                        ),
                    )
                }
                Err(e) => classify_error(&e),
            }
        }
        ChaosWorkload::Cg => {
            let prob = cg_problem(topo);
            match cpufree_solvers::run_cpu_free_ft(
                &CgFtConfig::new(prob.clone(), plan.clone()),
                ExecMode::Full,
            ) {
                Ok(ex) => {
                    if let Some(out) = ex.result.check.as_ref().and_then(checker_outcome) {
                        return out;
                    }
                    let err = ex.result.verify(&prob);
                    let identical = ex.result.final_rho.to_bits() == base.fingerprint && err == 0.0;
                    classify_completion(
                        ex.result.total,
                        base,
                        identical,
                        format!(
                            "final_rho bits {:#018x} vs baseline {:#018x}, verify err {err:e}",
                            ex.result.final_rho.to_bits(),
                            base.fingerprint
                        ),
                    )
                }
                Err(e) => classify_error(&e),
            }
        }
    }
}

/// Run one schedule through a workload's **degraded-mode** runner (no
/// checkpoint/restart: link kills reroute, a crashed PE drops out and the
/// surviving quorum completes) and classify against the degraded oracles.
pub fn run_degraded_schedule(
    workload: ChaosWorkload,
    topo: TopologyKind,
    plan: &FaultPlan,
) -> ChaosOutcome {
    match workload {
        ChaosWorkload::Jacobi => {
            let base = StencilConfig::square2d(32, 8, CHAOS_NODES).with_topology(topo);
            match stencil_lab::run_cpu_free_degraded(&DegradedConfig::new(base, plan.clone())) {
                Ok(ex) => degraded_outcome(
                    ex.quorum.clone(),
                    ex.max_err == Some(0.0),
                    format!("degraded max_err {:?} (quorum {:?})", ex.max_err, ex.quorum),
                ),
                Err(e) => classify_error(&e),
            }
        }
        ChaosWorkload::Cg => {
            let prob = PoissonProblem::new(18, 18, 8, CHAOS_NODES).with_topology(topo);
            match cpufree_solvers::run_cpu_free_degraded(&prob, plan, ExecMode::Full, None) {
                Ok(ex) => {
                    let err = ex.verify(&prob, plan);
                    degraded_outcome(
                        ex.quorum.clone(),
                        err == 0.0,
                        format!("degraded verify err {err:e} (quorum {:?})", ex.quorum),
                    )
                }
                Err(e) => classify_error(&e),
            }
        }
    }
}

fn degraded_outcome(quorum: Vec<usize>, exact: bool, divergence: String) -> ChaosOutcome {
    if !exact {
        ChaosOutcome::SilentDivergence { detail: divergence }
    } else if quorum.len() == CHAOS_NODES {
        ChaosOutcome::CompletedIdentical
    } else {
        ChaosOutcome::CompletedDegraded { quorum }
    }
}

// ---------------------------------------------------------------------------
// The sweep
// ---------------------------------------------------------------------------

/// One classified schedule of the sweep.
#[derive(Debug, Clone)]
pub struct ChaosCase {
    /// Stable case id (also the reproducer file stem for violations).
    pub id: String,
    /// The workload driven.
    pub workload: ChaosWorkload,
    /// The topology preset.
    pub topology: TopologyKind,
    /// The fault schedule.
    pub plan: FaultPlan,
    /// The classified outcome.
    pub outcome: ChaosOutcome,
}

/// The seeded-violation demonstration: a deliberately unreasonable fault
/// plan that breaks the bounded-recovery invariant, shrunk to a minimal
/// reproducer and replayed from its JSON serialization.
#[derive(Debug, Clone)]
pub struct ShrinkDemo {
    /// Workload / topology the demo runs on.
    pub workload: ChaosWorkload,
    /// Topology preset of the demo.
    pub topology: TopologyKind,
    /// The injected plan.
    pub original: FaultPlan,
    /// Its classification (expected: `VIOLATION:unbounded-recovery`).
    pub original_outcome: ChaosOutcome,
    /// The ddmin-minimized, window-tightened plan.
    pub shrunk: FaultPlan,
    /// The minimized plan's classification (must match the original label).
    pub shrunk_outcome: ChaosOutcome,
    /// Oracle invocations the shrinker spent.
    pub oracle_runs: usize,
    /// The reproducer JSON of the minimized plan.
    pub reproducer: String,
    /// Outcome of re-running the schedule parsed back from `reproducer`.
    pub replay_outcome: ChaosOutcome,
}

impl ShrinkDemo {
    /// True when the shrunk plan and its JSON replay reproduce the original
    /// violation label.
    pub fn reproduced(&self) -> bool {
        self.shrunk_outcome.label() == self.original_outcome.label()
            && self.replay_outcome.label() == self.original_outcome.label()
    }
}

/// Everything `figures chaos` reports.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Seed budget the sweep ran with.
    pub seeds: u64,
    /// Every classified schedule, in deterministic order.
    pub cases: Vec<ChaosCase>,
    /// The seeded-violation demo (absent when skipped).
    pub demo: Option<ShrinkDemo>,
}

impl ChaosReport {
    /// Sweep cases that violated a recovery invariant (the seeded demo is
    /// tracked separately and intentionally violates).
    pub fn violations(&self) -> Vec<&ChaosCase> {
        self.cases
            .iter()
            .filter(|c| c.outcome.is_violation())
            .collect()
    }

    /// True when the sweep is clean and the demo (if run) reproduced.
    pub fn ok(&self) -> bool {
        self.violations().is_empty() && self.demo.as_ref().is_none_or(ShrinkDemo::reproduced)
    }

    /// Render the full deterministic report (byte-identical across runs
    /// with the same seed budget).
    pub fn render(&self) -> String {
        let mut s = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(s, "deterministic chaos sweep");
        let _ = writeln!(
            s,
            "nodes={CHAOS_NODES} iterations={CHAOS_ITERS} horizon={CHAOS_HORIZON_US}us \
             seeds={} budget={RECOVERY_BUDGET_MULT}x",
            self.seeds
        );
        let _ = writeln!(s, "schedules explored: {}", self.cases.len());
        let _ = writeln!(s);

        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for c in &self.cases {
            match counts.iter_mut().find(|(l, _)| *l == c.outcome.label()) {
                Some((_, n)) => *n += 1,
                None => counts.push((c.outcome.label(), 1)),
            }
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let _ = writeln!(s, "outcome counts:");
        for (label, n) in &counts {
            let _ = writeln!(s, "  {label:<32} {n}");
        }
        let _ = writeln!(s);

        let _ = writeln!(s, "per-case outcomes:");
        for c in &self.cases {
            let _ = writeln!(s, "  {:<44} {}", c.id, outcome_line(&c.outcome));
        }
        let _ = writeln!(s);

        let violations = self.violations();
        if violations.is_empty() {
            let _ = writeln!(s, "violations: none");
        } else {
            let _ = writeln!(s, "violations ({}):", violations.len());
            for c in &violations {
                let _ = writeln!(s, "  {:<44} {}", c.id, outcome_line(&c.outcome));
                let _ = writeln!(s, "    plan: {}", describe_plan(&c.plan));
            }
        }
        let _ = writeln!(s);

        match &self.demo {
            None => {
                let _ = writeln!(s, "seeded violation demo: skipped");
            }
            Some(d) => {
                let _ = writeln!(
                    s,
                    "seeded violation demo ({} @ {}):",
                    d.workload.name(),
                    d.topology.name()
                );
                let _ = writeln!(
                    s,
                    "  injected : {} fault(s) -> {}",
                    atoms(&d.original).len(),
                    outcome_line(&d.original_outcome)
                );
                let _ = writeln!(
                    s,
                    "  shrunk   : {} fault(s) after {} oracle runs -> {}",
                    atoms(&d.shrunk).len(),
                    d.oracle_runs,
                    outcome_line(&d.shrunk_outcome)
                );
                let _ = writeln!(s, "  minimal plan: {}", describe_plan(&d.shrunk));
                let _ = writeln!(
                    s,
                    "  replayed from JSON -> {}",
                    outcome_line(&d.replay_outcome)
                );
                let _ = writeln!(
                    s,
                    "  reproduced: {} (minimal plan and JSON replay match the original label)",
                    d.reproduced()
                );
            }
        }
        s
    }
}

/// One-line rendering of an outcome: the label, plus the detail for
/// anything but a plain identical completion.
pub fn outcome_line(outcome: &ChaosOutcome) -> String {
    match outcome {
        ChaosOutcome::CompletedIdentical => outcome.label().to_string(),
        ChaosOutcome::CompletedDegraded { quorum } => {
            format!("{} quorum={quorum:?}", outcome.label())
        }
        ChaosOutcome::AttributedTimeout { detail }
        | ChaosOutcome::AttributedDiagnostic { detail }
        | ChaosOutcome::SilentDivergence { detail }
        | ChaosOutcome::UnattributedHang { detail }
        | ChaosOutcome::UnboundedRecovery { detail } => {
            format!("{} ({detail})", outcome.label())
        }
    }
}

/// Compact human-readable fault list of a plan (report rendering).
pub fn describe_plan(plan: &FaultPlan) -> String {
    let mut parts = Vec::new();
    for l in &plan.links {
        if l.is_kill() {
            parts.push(format!(
                "kill link {}-{} from {}",
                l.a,
                l.b,
                l.from.as_nanos()
            ));
        } else {
            parts.push(format!(
                "degrade link {}-{} [{}, {})ns lat x{} bw x{}",
                l.a,
                l.b,
                l.from.as_nanos(),
                l.until.as_nanos(),
                l.latency_mult,
                l.bandwidth_mult
            ));
        }
    }
    for d in &plan.drops {
        parts.push(format!(
            "drop {}->{} attempts {}..{}",
            d.from,
            d.to,
            d.first_attempt,
            d.first_attempt + d.count
        ));
    }
    for c in &plan.crashes {
        parts.push(format!("crash node {} @ iter {}", c.node, c.at_iteration));
    }
    for f in &plan.stragglers {
        parts.push(format!(
            "straggle node {} [{}, {})ns x{}",
            f.node,
            f.from.as_nanos(),
            f.until.as_nanos(),
            f.compute_mult
        ));
    }
    if parts.is_empty() {
        "(no faults)".to_string()
    } else {
        parts.join("; ")
    }
}

/// The degraded-mode schedules appended to every (workload, topology) cell:
/// a single-PE crash (quorum completion over healed collectives) and a
/// single-link kill (transport reroutes; result stays bit-identical).
pub fn degraded_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "degraded-crash",
            FaultPlan::new().with_crash(CrashFault {
                node: 2,
                at_iteration: 4,
            }),
        ),
        (
            "degraded-linkkill",
            FaultPlan::new().with_link(LinkFault::kill(1, 2, SimTime::ZERO + us(10.0))),
        ),
    ]
}

/// The fabric-level degraded cases: kill one *named* physical link of a
/// cluster fabric — a fat-tree switch uplink, a dragonfly global link —
/// and demand the degraded runners complete bit-identically over healed
/// relay routes. [`Topology::pairs_crossing`] translates the link name
/// into the pair kill set the fault machinery understands, so these
/// cases stay correct if fabric routing ever changes.
pub fn fabric_degraded_cases() -> Vec<(&'static str, TopologyKind, FaultPlan)> {
    let cost = CostModel::a100_hgx();
    let kinds = fabric_chaos_kinds();
    let named = [
        // Leaf 0's uplink to spine 1: severs the ECMP-hashed pairs
        // {0,3} and {1,2} — the cross-leaf pairs ring traffic actually
        // rides — and healed relays bounce through the other spine.
        (kinds[0], "degraded-switchkill", "ft.l0>s1"),
        // The only global link between groups 0 and 1: severs pair
        // {0,1}; healed relays route through a third group.
        (kinds[1], "degraded-globalkill", "df.gl0-1"),
    ];
    named
        .into_iter()
        .map(|(kind, label, link)| {
            let topo = Topology::build(kind, CHAOS_NODES, &cost);
            let mut plan = FaultPlan::new();
            for (a, b) in topo.pairs_crossing(link) {
                plan = plan.with_link(LinkFault::kill(a, b, SimTime::ZERO + us(10.0)));
            }
            assert!(
                !plan.links.is_empty(),
                "fabric case {label}: link {link} carries no pairs"
            );
            (label, kind, plan)
        })
        .collect()
}

/// One enumerated-but-not-yet-run schedule of the sweep. Specs are built
/// serially in deterministic case order; only the (pure, independent)
/// simulations fan out across workers.
struct CaseSpec {
    id: String,
    workload: ChaosWorkload,
    topology: TopologyKind,
    plan: FaultPlan,
    /// `Some` for seeded checkpoint/restart schedules (classified against
    /// the cell baseline), `None` for degraded-mode schedules.
    base: Option<Baseline>,
}

/// Fault-free baselines for every (workload, topology) cell, computed on
/// `jobs` workers in deterministic cell order.
pub fn baselines_jobs(jobs: usize) -> Vec<((ChaosWorkload, TopologyKind), Baseline)> {
    let cells: Vec<(ChaosWorkload, TopologyKind)> = ChaosWorkload::ALL
        .into_iter()
        .flat_map(|w| {
            TopologyKind::node_presets()
                .into_iter()
                .map(move |t| (w, t))
        })
        .collect();
    let bases = sim_des::par_map(jobs, cells.clone(), |(w, t)| baseline(w, t));
    cells.into_iter().zip(bases).collect()
}

/// Run the full sweep: `seeds` seeded schedules plus the degraded-mode
/// schedules for every (workload, topology) cell. Pure — writes nothing.
/// Uses [`sim_des::default_jobs`] workers.
pub fn chaos_sweep_cases(seeds: u64) -> Vec<ChaosCase> {
    chaos_sweep_cases_jobs(seeds, sim_des::default_jobs())
}

/// [`chaos_sweep_cases`] on an explicit worker count. The case list and
/// every outcome are independent of `jobs`: specs are enumerated serially
/// in deterministic order, each schedule is a self-contained simulation,
/// and [`sim_des::par_map`] collects results by input position — so the
/// rendered report is byte-identical at every thread count.
pub fn chaos_sweep_cases_jobs(seeds: u64, jobs: usize) -> Vec<ChaosCase> {
    let horizon = SimTime::ZERO + us(CHAOS_HORIZON_US);
    let bases = baselines_jobs(jobs);
    let mut specs = Vec::new();
    for workload in ChaosWorkload::ALL {
        for topo in TopologyKind::node_presets() {
            let base = bases
                .iter()
                .find(|((w, t), _)| *w == workload && *t == topo)
                .map(|(_, b)| b.clone())
                .expect("baseline cell missing");
            for seed in 0..seeds {
                specs.push(CaseSpec {
                    id: format!("{}_{}_seed{seed}", workload.name(), topo.name()),
                    workload,
                    topology: topo,
                    plan: FaultPlan::from_seed(seed, CHAOS_NODES, horizon, CHAOS_ITERS),
                    base: Some(base.clone()),
                });
            }
            for (label, plan) in degraded_plans() {
                specs.push(CaseSpec {
                    id: format!("{}_{}_{label}", workload.name(), topo.name()),
                    workload,
                    topology: topo,
                    plan,
                    base: None,
                });
            }
        }
        // Cluster fabrics: dedicated named-link kill cases (the seeded
        // budget stays on the node presets so the sweep size is unchanged).
        for (label, kind, plan) in fabric_degraded_cases() {
            specs.push(CaseSpec {
                id: format!("{}_{}_{label}", workload.name(), kind.name()),
                workload,
                topology: kind,
                plan,
                base: None,
            });
        }
    }
    sim_des::par_map(jobs, specs, |spec| {
        let outcome = match &spec.base {
            Some(base) => run_schedule(spec.workload, spec.topology, &spec.plan, base),
            None => run_degraded_schedule(spec.workload, spec.topology, &spec.plan),
        };
        ChaosCase {
            id: spec.id,
            workload: spec.workload,
            topology: spec.topology,
            plan: spec.plan,
            outcome,
        }
    })
}

/// The deliberately unreasonable plan of the seeded violation demo: a
/// whole-run extreme link degradation (blows the bounded-recovery budget)
/// plus two noise faults the shrinker must discard.
pub fn seeded_violation_plan() -> FaultPlan {
    FaultPlan::new()
        .with_link(LinkFault {
            a: 0,
            b: 1,
            from: SimTime::ZERO,
            until: SimTime::ZERO + us(100_000.0),
            latency_mult: 500.0,
            bandwidth_mult: 0.01,
        })
        .with_drop(DropFault {
            from: 2,
            to: 3,
            first_attempt: 2,
            count: 2,
        })
        .with_straggler(StragglerFault {
            node: 3,
            from: SimTime::ZERO,
            until: SimTime::ZERO + us(50.0),
            compute_mult: 2.0,
        })
}

/// Run the seeded-violation demo: classify [`seeded_violation_plan`],
/// shrink it to a minimal reproducer with the same outcome label, and
/// replay the reproducer from its JSON serialization.
pub fn shrink_demo() -> ShrinkDemo {
    let workload = ChaosWorkload::Jacobi;
    let topo = TopologyKind::NvlinkAllToAll;
    let base = baseline(workload, topo);
    let original = seeded_violation_plan();
    let original_outcome = run_schedule(workload, topo, &original, &base);
    let target = original_outcome.label();
    let mut oracle_runs = 0usize;
    let shrunk = shrink(&original, &mut |candidate| {
        oracle_runs += 1;
        run_schedule(workload, topo, candidate, &base).label() == target
    });
    let shrunk_outcome = run_schedule(workload, topo, &shrunk, &base);
    let reproducer = reproducer_json(workload, topo, &shrunk);
    let replay_outcome = match reproducer_parse(&reproducer) {
        Ok((w, t, plan)) => run_schedule(w, t, &plan, &baseline(w, t)),
        Err(e) => ChaosOutcome::UnattributedHang {
            detail: format!("reproducer failed to parse: {e}"),
        },
    };
    ShrinkDemo {
        workload,
        topology: topo,
        original,
        original_outcome,
        shrunk,
        shrunk_outcome,
        oracle_runs,
        reproducer,
        replay_outcome,
    }
}

/// Run the complete chaos engine: the sweep plus (when `with_demo`) the
/// seeded-violation shrink demo. Uses [`sim_des::default_jobs`] workers.
///
/// # Errors
/// A degenerate budget (`seeds == 0`) is an error, not an empty report: a
/// sweep that explores nothing must never read as a clean gate.
pub fn chaos_sweep(seeds: u64, with_demo: bool) -> Result<ChaosReport, String> {
    chaos_sweep_jobs(seeds, with_demo, sim_des::default_jobs())
}

/// [`chaos_sweep`] on an explicit worker count. `jobs == 0` is rejected
/// like a zero seed budget (the caller asked for a sweep that cannot run).
pub fn chaos_sweep_jobs(seeds: u64, with_demo: bool, jobs: usize) -> Result<ChaosReport, String> {
    if seeds == 0 {
        return Err(format!(
            "chaos sweep needs a nonzero seed budget (got --seeds 0); \
             the default is {DEFAULT_SEED_BUDGET}"
        ));
    }
    if jobs == 0 {
        return Err("chaos sweep needs at least one worker (got --jobs 0)".to_string());
    }
    Ok(ChaosReport {
        seeds,
        cases: chaos_sweep_cases_jobs(seeds, jobs),
        demo: with_demo.then(shrink_demo),
    })
}

// ---------------------------------------------------------------------------
// Reproducer files
// ---------------------------------------------------------------------------

/// Serialize a replayable reproducer: the plan JSON with `workload` and
/// `topology` tags in the same object ([`plan_from_json`] ignores them).
pub fn reproducer_json(workload: ChaosWorkload, topo: TopologyKind, plan: &FaultPlan) -> String {
    let body = plan_to_json(plan);
    format!(
        "{{\n  \"workload\": \"{}\",\n  \"topology\": \"{}\",\n{}",
        workload.name(),
        topo.name(),
        &body[2..]
    )
}

/// Serialize a reproducer that replays through the **degraded-mode**
/// runner (no checkpoint/restart): [`reproducer_json`] plus a
/// `"mode": "degraded"` tag that [`replay`] dispatches on.
pub fn degraded_reproducer_json(
    workload: ChaosWorkload,
    topo: TopologyKind,
    plan: &FaultPlan,
) -> String {
    let body = plan_to_json(plan);
    format!(
        "{{\n  \"workload\": \"{}\",\n  \"topology\": \"{}\",\n  \"mode\": \"degraded\",\n{}",
        workload.name(),
        topo.name(),
        &body[2..]
    )
}

/// Parse a reproducer file back into its schedule.
pub fn reproducer_parse(s: &str) -> Result<(ChaosWorkload, TopologyKind, FaultPlan), String> {
    let w = string_field(s, "workload")?.ok_or("missing \"workload\"")?;
    let workload =
        ChaosWorkload::from_name(&w).ok_or_else(|| format!("unknown workload \"{w}\""))?;
    let t = string_field(s, "topology")?.ok_or("missing \"topology\"")?;
    let topo = topology_from_name(&t).ok_or_else(|| format!("unknown topology \"{t}\""))?;
    let plan = plan_from_json(s)?;
    Ok((workload, topo, plan))
}

/// Replay a reproducer document: re-run its schedule under the recovery
/// oracles and return the (workload, topology, outcome) triple. Documents
/// tagged `"mode": "degraded"` replay through the degraded-mode runner.
pub fn replay(document: &str) -> Result<(ChaosWorkload, TopologyKind, ChaosOutcome), String> {
    let (workload, topo, plan) = reproducer_parse(document)?;
    let degraded = matches!(string_field(document, "mode")?.as_deref(), Some("degraded"));
    let outcome = if degraded {
        run_degraded_schedule(workload, topo, &plan)
    } else {
        let base = baseline(workload, topo);
        run_schedule(workload, topo, &plan, &base)
    };
    Ok((workload, topo, outcome))
}

/// Virtual completion time of a degraded run, `None` when it errors.
/// The shrink signature of the fabric fixtures compares this against the
/// fault-free time: label alone would let ddmin collapse a *recoverable*
/// kill all the way to the empty plan (every subset also completes
/// identically); demanding a perturbed virtual time keeps the kill that
/// actually forces the healed route.
fn degraded_total(workload: ChaosWorkload, topo: TopologyKind, plan: &FaultPlan) -> Option<SimDur> {
    match workload {
        ChaosWorkload::Jacobi => {
            let base = StencilConfig::square2d(32, 8, CHAOS_NODES).with_topology(topo);
            stencil_lab::run_cpu_free_degraded(&DegradedConfig::new(base, plan.clone()))
                .ok()
                .map(|ex| ex.total)
        }
        ChaosWorkload::Cg => {
            let prob = PoissonProblem::new(18, 18, 8, CHAOS_NODES).with_topology(topo);
            cpufree_solvers::run_cpu_free_degraded(&prob, plan, ExecMode::Full, None)
                .ok()
                .map(|ex| ex.total)
        }
    }
}

/// The committed fabric-kill reproducer fixtures
/// (`crates/bench/fixtures/chaos/<label>.json`): each
/// [`fabric_degraded_cases`] plan shrunk to a minimal fault set that
/// still completes identically *with a perturbed virtual time* — proof
/// the kill was live and the healed relay engaged — serialized as a
/// degraded-mode reproducer document.
pub fn fabric_fixture_docs() -> Vec<(&'static str, String)> {
    let workload = ChaosWorkload::Jacobi;
    fabric_degraded_cases()
        .into_iter()
        .map(|(label, kind, plan)| {
            let clean = degraded_total(workload, kind, &FaultPlan::new());
            let signature = |p: &FaultPlan| {
                (
                    run_degraded_schedule(workload, kind, p).label(),
                    degraded_total(workload, kind, p) != clean,
                )
            };
            let target = signature(&plan);
            assert!(
                target.1,
                "fabric case {label}: kill did not perturb the degraded run"
            );
            let shrunk = shrink(&plan, &mut |candidate| signature(candidate) == target);
            (label, degraded_reproducer_json(workload, kind, &shrunk))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducer_round_trips() {
        let plan = seeded_violation_plan();
        let doc = reproducer_json(ChaosWorkload::Cg, TopologyKind::PcieTree, &plan);
        let (w, t, back) = reproducer_parse(&doc).expect("parse");
        assert_eq!(w, ChaosWorkload::Cg);
        assert_eq!(t, TopologyKind::PcieTree);
        assert_eq!(back, plan);
    }

    #[test]
    fn reproducer_rejects_unknown_tags() {
        let plan = FaultPlan::new();
        let doc = reproducer_json(ChaosWorkload::Jacobi, TopologyKind::TwoNode, &plan)
            .replace("jacobi", "fortran");
        assert!(reproducer_parse(&doc)
            .unwrap_err()
            .contains("unknown workload"));
        let doc2 = plan_to_json(&plan);
        assert!(reproducer_parse(&doc2).unwrap_err().contains("workload"));
    }

    #[test]
    fn describe_plan_covers_every_fault_class() {
        let plan = seeded_violation_plan()
            .with_link(LinkFault::kill(0, 3, SimTime(7)))
            .with_crash(CrashFault {
                node: 1,
                at_iteration: 2,
            });
        let text = describe_plan(&plan);
        for needle in [
            "degrade link 0-1",
            "kill link 0-3",
            "drop 2->3",
            "crash node 1",
            "straggle node 3",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
        assert_eq!(describe_plan(&FaultPlan::new()), "(no faults)");
    }

    #[test]
    fn degraded_schedules_complete_with_documented_quorum() {
        // One topology here (all four are covered by the sweep and the
        // degraded crate tests); both workloads, both degraded plans.
        let plans = degraded_plans();
        for workload in ChaosWorkload::ALL {
            let crash = run_degraded_schedule(workload, TopologyKind::NvlinkRing, &plans[0].1);
            assert_eq!(
                crash,
                ChaosOutcome::CompletedDegraded {
                    quorum: vec![0, 1, 3]
                },
                "{} crash case",
                workload.name()
            );
            let kill = run_degraded_schedule(workload, TopologyKind::NvlinkRing, &plans[1].1);
            assert_eq!(
                kill,
                ChaosOutcome::CompletedIdentical,
                "{} kill case",
                workload.name()
            );
        }
    }

    #[test]
    fn fabric_kills_heal_to_identical_completion() {
        // Both workloads, both fabric cases: killing a named switch
        // uplink / global link must reroute over healed relays and
        // reproduce the fault-free result bit for bit (full quorum).
        for workload in ChaosWorkload::ALL {
            for (label, kind, plan) in fabric_degraded_cases() {
                let out = run_degraded_schedule(workload, kind, &plan);
                assert_eq!(
                    out,
                    ChaosOutcome::CompletedIdentical,
                    "{}_{}_{label}",
                    workload.name(),
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn fabric_kill_fixtures_are_current_and_replay() {
        // The committed reproducers must match what this tree generates
        // (set UPDATE_FIXTURES=1 to regenerate) and must replay through
        // the degraded-mode dispatch to a healed identical completion.
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/chaos");
        let docs = fabric_fixture_docs();
        assert_eq!(docs.len(), fabric_degraded_cases().len());
        for (label, json) in &docs {
            let path = format!("{dir}/{label}.json");
            if std::env::var_os("UPDATE_FIXTURES").is_some() {
                std::fs::write(&path, json).expect("write fixture");
            }
            let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!("missing fixture {path} ({e}); rerun with UPDATE_FIXTURES=1")
            });
            assert_eq!(
                &committed, json,
                "stale fixture {path}; rerun with UPDATE_FIXTURES=1"
            );
            let (w, t, outcome) = replay(json).expect("fixture replays");
            assert_eq!(w, ChaosWorkload::Jacobi, "{label}");
            assert!(t.is_cluster(), "{label} should replay on a cluster fabric");
            assert_eq!(outcome, ChaosOutcome::CompletedIdentical, "{label}");
        }
    }

    #[test]
    fn seeded_schedule_classifies_identically_twice() {
        let base = baseline(ChaosWorkload::Jacobi, TopologyKind::PcieTree);
        let plan = FaultPlan::from_seed(
            3,
            CHAOS_NODES,
            SimTime::ZERO + us(CHAOS_HORIZON_US),
            CHAOS_ITERS,
        );
        let a = run_schedule(ChaosWorkload::Jacobi, TopologyKind::PcieTree, &plan, &base);
        let b = run_schedule(ChaosWorkload::Jacobi, TopologyKind::PcieTree, &plan, &base);
        assert_eq!(a, b);
        assert!(!a.is_violation(), "seeded schedule must recover: {a:?}");
    }
}
