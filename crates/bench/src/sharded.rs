//! Intra-run sharded-engine workloads: the measurement and identity
//! harness for [`sim_des::ShardedEngine`].
//!
//! Two workloads live here:
//!
//! * **Topology-partitioned ring allreduce** ([`ring_allreduce`]): `n`
//!   agents on a GPU interconnect preset run the classic `n-1`-round ring
//!   reduction with flow control, one agent per device, partitioned into
//!   shards by [`gpu_sim::Topology::partition_hints`] with the conservative
//!   lookahead from [`gpu_sim::Transport::shard_lookahead`]. Every message
//!   delay is derived from the *topology* (signal overhead + route
//!   forwarding latency), never from the partition, so the virtual
//!   schedule — end time, event count, and the allreduce checksum — is
//!   identical at every shard count and identical to the same protocol run
//!   on a single serial [`sim_des::Engine`] ([`ring_allreduce_plain`], the
//!   differential oracle).
//! * **Hierarchical barrier storm** ([`sharded_barrier`]): fixed groups of
//!   agents combine through group-local barriers plus cross-shard
//!   release/combine messages with constant delays — the pure
//!   synchronization-rate stressor for the windowed coordinator.
//!
//! The property suite (`tests/shard_identity.rs`) and `figures -- des_core`
//! both consume these; identity is always asserted on virtual quantities,
//! never on wall clock.

use gpu_sim::{CostModel, Topology, TopologyKind};
use sim_des::{mix64, ns, Cmp, Engine, ShardedEngine, SignalOp, SimDur};

/// Identity signature of one ring-allreduce run: every field is a pure
/// function of `(kind, agents, seed)` — independent of shard count and of
/// which engine (serial or sharded) executed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingRun {
    /// Virtual end time, nanoseconds.
    pub end_ns: u64,
    /// Engine events processed (queue pops, summed over shards).
    pub events: u64,
    /// The reduced total — wrapping sum of all seeded inputs, verified
    /// identical on every agent before this struct is built.
    pub checksum: u64,
}

impl RingRun {
    /// Canonical one-line report, byte-comparable across engines and
    /// shard counts.
    pub fn report(&self) -> String {
        format!(
            "end_ns={} events={} checksum={:#018x}",
            self.end_ns, self.events, self.checksum
        )
    }
}

/// Seeded input value of agent `i`.
fn input(seed: u64, i: usize) -> u64 {
    mix64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) % 1_000_003
}

/// Per-round compute jitter of agent `i` in round `r` — deterministic in
/// `(seed, i, r)` so perturbation comes from data, not the host.
fn jitter(seed: u64, i: usize, r: u64) -> SimDur {
    ns(200 + mix64(seed ^ ((i as u64) << 32) ^ r) % 800)
}

/// Message delays of agent `i` on `topo`: software signal overhead plus the
/// forwarding latency of the route actually crossed. Purely topological —
/// the same at every shard count.
fn delays(topo: &Topology, cost: &CostModel, i: usize, n: usize) -> (SimDur, SimDur) {
    let succ = (i + 1) % n;
    let pred = (i + n - 1) % n;
    let to_succ = cost.shmem_signal() + topo.route_forward_latency(i, succ);
    let to_pred = cost.shmem_signal() + topo.route_forward_latency(i, pred);
    (to_succ, to_pred)
}

/// Run the `n-1`-round ring allreduce on a [`ShardedEngine`] partitioned by
/// the topology's hints. Returns the identity signature plus the number of
/// cross-shard messages delivered (diagnostic; varies with the partition).
///
/// Panics if any agent's reduced total disagrees with the host-computed
/// expectation — the numeric oracle for the conservative protocol.
pub fn ring_allreduce(
    kind: TopologyKind,
    agents: usize,
    seed: u64,
    shards: usize,
) -> (RingRun, u64) {
    assert!(agents >= 2, "ring needs at least two agents");
    let cost = CostModel::a100_hgx();
    let topo = Topology::build(kind, agents, &cost);
    let plan = topo.partition_hints(shards);
    let look = topo.partition_lookahead(&plan, cost.shmem_signal());

    let mut eng = ShardedEngine::new(shards, look);
    eng.set_trace_enabled(false);
    // Global allocation order fixed by agent index: data, seq, ack, result.
    let mut data = Vec::with_capacity(agents);
    let mut seq = Vec::with_capacity(agents);
    let mut ack = Vec::with_capacity(agents);
    let mut result = Vec::with_capacity(agents);
    for &shard in plan.iter().take(agents) {
        data.push(eng.flag_on(shard, 0));
        seq.push(eng.flag_on(shard, 0));
        ack.push(eng.flag_on(shard, 0));
        result.push(eng.flag_on(shard, 0));
    }
    for i in 0..agents {
        let succ = (i + 1) % agents;
        let pred = (i + agents - 1) % agents;
        let (d_succ, d_pred) = delays(&topo, &cost, i, agents);
        let (my_data, my_seq, my_ack, my_result) = (data[i], seq[i], ack[i], result[i]);
        let (succ_data, succ_seq) = (data[succ], seq[succ]);
        let pred_ack = ack[pred];
        eng.spawn_on(plan[i], format!("pe{i}"), move |ctx, port| {
            let mut carry = input(seed, i);
            let mut sum = carry;
            let rounds = (agents - 1) as u64;
            for r in 1..=rounds {
                // Flow control: successor consumed our previous payload.
                ctx.wait_flag(my_ack.local(), Cmp::Ge, r - 1);
                ctx.advance(jitter(seed, i, r));
                // Payload then sequence bump, same arrival time: the
                // per-sender send order keeps Set-before-Add on delivery.
                port.send(ctx, succ_data, SignalOp::Set, carry, d_succ);
                port.send(ctx, succ_seq, SignalOp::Add, 1, d_succ);
                ctx.wait_flag(my_seq.local(), Cmp::Ge, r);
                let got = ctx.flag_value(my_data.local());
                sum = sum.wrapping_add(got);
                carry = got;
                port.send(ctx, pred_ack, SignalOp::Add, 1, d_pred);
            }
            ctx.signal(my_result.local(), SignalOp::Set, sum);
        });
    }
    let end = eng.run().expect("sharded ring allreduce");
    let expected = (0..agents).fold(0u64, |acc, i| acc.wrapping_add(input(seed, i)));
    for (i, &r) in result.iter().enumerate() {
        assert_eq!(
            eng.flag_value(r),
            expected,
            "agent {i} reduced a different total (shards={shards})"
        );
    }
    (
        RingRun {
            end_ns: end.as_nanos(),
            events: eng.events_processed(),
            checksum: expected,
        },
        eng.cross_messages(),
    )
}

/// The identical protocol on a single serial [`Engine`]: the differential
/// oracle every sharded run must match bit-for-bit.
pub fn ring_allreduce_plain(kind: TopologyKind, agents: usize, seed: u64) -> RingRun {
    assert!(agents >= 2, "ring needs at least two agents");
    let cost = CostModel::a100_hgx();
    let topo = Topology::build(kind, agents, &cost);

    let eng = Engine::new();
    eng.set_trace_enabled(false);
    let mut data = Vec::with_capacity(agents);
    let mut seq = Vec::with_capacity(agents);
    let mut ack = Vec::with_capacity(agents);
    let mut result = Vec::with_capacity(agents);
    for _ in 0..agents {
        data.push(eng.flag(0));
        seq.push(eng.flag(0));
        ack.push(eng.flag(0));
        result.push(eng.flag(0));
    }
    for i in 0..agents {
        let succ = (i + 1) % agents;
        let pred = (i + agents - 1) % agents;
        let (d_succ, d_pred) = delays(&topo, &cost, i, agents);
        let (my_data, my_seq, my_ack, my_result) = (data[i], seq[i], ack[i], result[i]);
        let (succ_data, succ_seq) = (data[succ], seq[succ]);
        let pred_ack = ack[pred];
        eng.spawn(format!("pe{i}"), move |ctx| {
            let mut carry = input(seed, i);
            let mut sum = carry;
            let rounds = (agents - 1) as u64;
            for r in 1..=rounds {
                ctx.wait_flag(my_ack, Cmp::Ge, r - 1);
                ctx.advance(jitter(seed, i, r));
                ctx.schedule_signal(succ_data, SignalOp::Set, carry, d_succ);
                ctx.schedule_signal(succ_seq, SignalOp::Add, 1, d_succ);
                ctx.wait_flag(my_seq, Cmp::Ge, r);
                let got = ctx.flag_value(my_data);
                sum = sum.wrapping_add(got);
                carry = got;
                ctx.schedule_signal(pred_ack, SignalOp::Add, 1, d_pred);
            }
            ctx.signal(my_result, SignalOp::Set, sum);
        });
    }
    let end = eng.run().expect("serial ring allreduce");
    let expected = (0..agents).fold(0u64, |acc, i| acc.wrapping_add(input(seed, i)));
    for (i, &r) in result.iter().enumerate() {
        assert_eq!(eng.flag_value(r), expected, "agent {i} (serial) diverged");
    }
    RingRun {
        end_ns: end.as_nanos(),
        events: eng.events_processed(),
        checksum: expected,
    }
}

/// Hierarchical barrier storm: `agents` agents in fixed groups of
/// `group_size`, `rounds` rounds of group-local barrier → leader combine on
/// a central flag → root broadcast release, all cross-group messages at a
/// constant 500 ns delay. Groups are placed whole onto shards (contiguous
/// chunks), so the virtual schedule is a pure function of
/// `(agents, group_size, rounds)` — identical at every shard count that
/// keeps groups intact (`shards * group_size <= agents`, shards a divisor
/// of the group count).
///
/// Returns `(end_ns, events)`.
pub fn sharded_barrier(agents: usize, group_size: usize, rounds: u64, shards: usize) -> (u64, u64) {
    assert!(
        agents.is_multiple_of(group_size),
        "groups must tile the agents"
    );
    let groups = agents / group_size;
    assert!(
        groups.is_multiple_of(shards),
        "shards must evenly split the {groups} groups"
    );
    let hop = ns(500);
    let mut eng = ShardedEngine::new(shards, hop);
    eng.set_trace_enabled(false);
    let shard_of_group = |g: usize| g * shards / groups;

    let central = eng.flag_on(0, 0);
    let bars: Vec<_> = (0..groups)
        .map(|g| eng.barrier_on(shard_of_group(g), group_size))
        .collect();
    let releases: Vec<_> = (0..groups)
        .map(|g| eng.flag_on(shard_of_group(g), 0))
        .collect();

    for i in 0..agents {
        let g = i / group_size;
        let (bar, release) = (bars[g], releases[g]);
        let leader = i % group_size == 0;
        eng.spawn_on(shard_of_group(g), format!("w{i}"), move |ctx, port| {
            for r in 1..=rounds {
                ctx.advance(ns(50 + ((i as u64) * 7) % 90));
                ctx.barrier(bar);
                if leader {
                    port.send(ctx, central, SignalOp::Add, 1, hop);
                }
                ctx.wait_flag(release.local(), Cmp::Ge, r);
            }
        });
    }
    eng.spawn_on(0, "root", move |ctx, port| {
        for r in 1..=rounds {
            ctx.wait_flag(central.local(), Cmp::Ge, groups as u64 * r);
            for &rel in &releases {
                port.send(ctx, rel, SignalOp::Set, r, hop);
            }
        }
    });
    let end = eng.run().expect("sharded barrier storm");
    (end.as_nanos(), eng.events_processed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_allreduce_matches_serial_at_every_shard_count() {
        let serial = ring_allreduce_plain(TopologyKind::NvlinkRing, 8, 42);
        for shards in [1, 2, 4, 8] {
            let (sharded, _) = ring_allreduce(TopologyKind::NvlinkRing, 8, 42, shards);
            assert_eq!(serial, sharded, "shards={shards}");
        }
    }

    #[test]
    fn ring_checksum_is_the_seeded_total() {
        let run = ring_allreduce_plain(TopologyKind::NvlinkAllToAll, 4, 7);
        let expected = (0..4).fold(0u64, |acc, i| acc.wrapping_add(input(7, i)));
        assert_eq!(run.checksum, expected);
    }

    #[test]
    fn barrier_storm_is_shard_count_invariant() {
        let base = sharded_barrier(32, 4, 5, 1);
        for shards in [2, 4, 8] {
            assert_eq!(base, sharded_barrier(32, 4, 5, shards), "shards={shards}");
        }
    }
}
