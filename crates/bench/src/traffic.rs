//! AI traffic-pattern suite over the cluster-scale fabrics.
//!
//! Models the communication of one training step for the three standard
//! parallelism strategies as put schedules charged directly through
//! [`gpu_sim::Transport`] — no per-GPU agents, so the sweep scales to the
//! full 64–72 GPU fabrics while the shared NIC/switch/rail links still
//! genuinely queue ([`sim_des::Resource`] serialization):
//!
//! * **data-parallel** — one ring allreduce of a gradient bucket over all
//!   GPUs in the fabric's ring embedding (reduce-scatter + all-gather,
//!   `2(n-1)` rounds of `bucket/n` chunks);
//! * **tensor-parallel** — per-layer activation allreduces rung
//!   *within each physical node* (the Megatron-style TP group), stressing
//!   intra-node links and leaf-level oversubscription;
//! * **pipeline-parallel** — microbatched stage-to-stage activation
//!   handoffs between consecutive node groups (GPU `i` of stage `s` feeds
//!   GPU `i` of stage `s+1`), which pipelines across the fabric's
//!   inter-node links.
//!
//! Everything is issued in deterministic order at per-GPU virtual clocks,
//! so every row — makespans and per-link utilization stats alike — is
//! byte-stable across machines and worker counts. `figures -- traffic`
//! writes the committed `BENCH_traffic.json`; CI regenerates and diffs it.

use gpu_sim::{CostModel, Topology, TopologyKind, Transport};
use sim_des::{SimDur, SimTime};

/// Gradient bucket all-reduced by the data-parallel step.
const GRAD_BYTES: u64 = 256 << 20;
/// Activation slice all-reduced per layer by the tensor-parallel step.
const ACT_TP_BYTES: u64 = 32 << 20;
/// Transformer layers per tensor-parallel step.
const TP_LAYERS: usize = 4;
/// Activation tensor handed between pipeline stages per microbatch.
const ACT_PP_BYTES: u64 = 64 << 20;
/// Microbatches in flight per pipeline-parallel step.
const PP_MICROBATCHES: usize = 8;

/// The parallelism patterns swept, in report order.
pub const PATTERNS: [&str; 3] = ["data-parallel", "tensor-parallel", "pipeline-parallel"];

/// One row of the traffic sweep: a (fabric, pattern) cell's virtual
/// makespan plus link-utilization stats.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficRow {
    /// Fabric preset name (e.g. `fat-tree-64r16`).
    pub fabric: String,
    /// GPUs driven (the fabric's full capacity).
    pub gpus: usize,
    /// Parallelism pattern (one of [`PATTERNS`]).
    pub pattern: &'static str,
    /// Virtual time until the last transfer drains.
    pub makespan: SimDur,
    /// The link with the most busy (serialization) time.
    pub busiest_link: String,
    /// Busy time on that link.
    pub busiest_busy: SimDur,
    /// `busiest_busy / makespan` — 1.0 means the link never idled.
    pub utilization: f64,
    /// Total transfers charged across all links.
    pub reservations: u64,
    /// Total time transfers spent queued behind busy links.
    pub queued: SimDur,
}

/// Ring allreduce over `ring` (device ids in ring order): `2(m-1)` rounds
/// of `chunk`-byte sends to the ring-right neighbor. Each round, every
/// device issues its send at its current clock (ascending ring position,
/// so link reservations are made in deterministic order) and the round
/// completes at each device when its receive from the left arrives.
fn ring_allreduce(t: &Transport, ring: &[usize], chunk: u64, clocks: &mut [SimTime]) {
    let m = ring.len();
    if m < 2 {
        return;
    }
    let mut arrive = vec![SimTime::ZERO; m];
    for _round in 0..2 * (m - 1) {
        for p in 0..m {
            let src = ring[p];
            let dst = ring[(p + 1) % m];
            let dur = t.shmem_put(src, dst, chunk, clocks[src]);
            arrive[(p + 1) % m] = clocks[src] + dur;
        }
        for (p, &d) in ring.iter().enumerate() {
            clocks[d] = clocks[d].max(arrive[p]);
        }
    }
}

/// One data-parallel step: ring allreduce of the gradient bucket over all
/// GPUs in the topology's ring embedding.
fn data_parallel(t: &Transport, clocks: &mut [SimTime]) {
    let ring = t.topology().ring_order().to_vec();
    let chunk = (GRAD_BYTES / ring.len() as u64).max(1);
    ring_allreduce(t, &ring, chunk, clocks);
}

/// One tensor-parallel step: per-layer activation allreduces within each
/// physical node group. Groups use disjoint endpoint links, so their
/// rings overlap in virtual time; layers serialize through the clocks.
fn tensor_parallel(t: &Transport, clocks: &mut [SimTime]) {
    let groups = t.topology().node_groups();
    for _layer in 0..TP_LAYERS {
        for group in &groups {
            let chunk = (ACT_TP_BYTES / group.len().max(1) as u64).max(1);
            ring_allreduce(t, group, chunk, clocks);
        }
    }
}

/// One pipeline-parallel step: stage `s` = node group `s`; each
/// microbatch flows through every stage boundary, GPU `i` of a stage
/// feeding GPU `i` of the next. Per-GPU clocks make later microbatches
/// pipeline behind earlier ones without an explicit schedule.
fn pipeline_parallel(t: &Transport, clocks: &mut [SimTime]) {
    let stages = t.topology().node_groups();
    if stages.len() < 2 {
        // Single node: degenerate pipeline, hand activations around the
        // ring instead so the pattern still exercises the fabric.
        let ring = t.topology().ring_order().to_vec();
        for _mb in 0..PP_MICROBATCHES {
            for p in 0..ring.len() {
                let src = ring[p];
                let dst = ring[(p + 1) % ring.len()];
                let dur = t.shmem_put(src, dst, ACT_PP_BYTES, clocks[src]);
                clocks[dst] = clocks[dst].max(clocks[src] + dur);
            }
        }
        return;
    }
    for _mb in 0..PP_MICROBATCHES {
        for boundary in stages.windows(2) {
            for (&src, &dst) in boundary[0].iter().zip(boundary[1].iter()) {
                let dur = t.shmem_put(src, dst, ACT_PP_BYTES, clocks[src]);
                clocks[dst] = clocks[dst].max(clocks[src] + dur);
            }
        }
    }
}

/// Run one (fabric, pattern) cell on fresh link state and collect stats.
fn run_cell(kind: TopologyKind, pattern: &'static str) -> TrafficRow {
    let n = kind
        .capacity()
        .expect("traffic sweep runs cluster fabrics at full capacity");
    let cost = CostModel::a100_hgx();
    let topo = Topology::build(kind, n, &cost);
    let t = Transport::new(topo, cost);
    let mut clocks = vec![SimTime::ZERO; n];
    match pattern {
        "data-parallel" => data_parallel(&t, &mut clocks),
        "tensor-parallel" => tensor_parallel(&t, &mut clocks),
        "pipeline-parallel" => pipeline_parallel(&t, &mut clocks),
        other => panic!("unknown traffic pattern {other}"),
    }
    let makespan = clocks
        .iter()
        .map(|c| c.since(SimTime::ZERO))
        .max()
        .unwrap_or(SimDur::ZERO);
    let mut busiest_link = String::new();
    let mut busiest_busy = SimDur::ZERO;
    let mut reservations = 0u64;
    let mut queued = SimDur::ZERO;
    for link in t.topology().links() {
        let s = link.stats();
        reservations += s.reservations;
        queued += s.queued;
        if s.busy > busiest_busy {
            busiest_busy = s.busy;
            busiest_link = link.name().to_string();
        }
    }
    let utilization = if makespan > SimDur::ZERO {
        busiest_busy.as_nanos() as f64 / makespan.as_nanos() as f64
    } else {
        0.0
    };
    TrafficRow {
        fabric: kind.name(),
        gpus: n,
        pattern,
        makespan,
        busiest_link,
        busiest_busy,
        utilization,
        reservations,
        queued,
    }
}

/// The full sweep — every cluster fabric at capacity, every pattern — on
/// [`sim_des::default_jobs`] workers.
pub fn traffic_rows() -> Vec<TrafficRow> {
    traffic_rows_jobs(sim_des::default_jobs())
}

/// [`traffic_rows`] on an explicit worker count. Cells are independent
/// (fresh topology and link state each) and results come back in
/// deterministic cell order, so the rows are identical at every `jobs`.
pub fn traffic_rows_jobs(jobs: usize) -> Vec<TrafficRow> {
    let cells: Vec<(TopologyKind, &'static str)> = TopologyKind::cluster_presets()
        .into_iter()
        .flat_map(|kind| PATTERNS.into_iter().map(move |p| (kind, p)))
        .collect();
    sim_des::par_map(jobs, cells, |(kind, pattern)| run_cell(kind, pattern))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_every_fabric_and_pattern() {
        let rows = traffic_rows_jobs(2);
        assert_eq!(rows.len(), 3 * PATTERNS.len());
        for kind in TopologyKind::cluster_presets() {
            for p in PATTERNS {
                assert!(
                    rows.iter()
                        .any(|r| r.fabric == kind.name() && r.pattern == p),
                    "missing cell {} x {p}",
                    kind.name()
                );
            }
        }
        for r in &rows {
            assert!(
                r.makespan > SimDur::ZERO,
                "{}/{}: empty makespan",
                r.fabric,
                r.pattern
            );
            assert!(
                r.reservations > 0,
                "{}/{}: no transfers",
                r.fabric,
                r.pattern
            );
            assert!(!r.busiest_link.is_empty(), "{}/{}", r.fabric, r.pattern);
            assert!(
                r.utilization > 0.0 && r.utilization <= 1.0 + 1e-9,
                "{}/{}: utilization {} out of range",
                r.fabric,
                r.pattern,
                r.utilization
            );
        }
    }

    #[test]
    fn rows_are_identical_at_every_worker_count() {
        let a = traffic_rows_jobs(1);
        let b = traffic_rows_jobs(4);
        assert_eq!(a, b);
    }

    #[test]
    fn tensor_parallel_stays_inside_nodes() {
        // TP traffic never crosses fat-tree spines: every charged link is
        // an endpoint NIC, never an up/down switch link.
        let kind = TopologyKind::FatTree {
            gpus: 64,
            radix: 16,
        };
        let cost = CostModel::a100_hgx();
        let topo = Topology::build(kind, 64, &cost);
        let t = Transport::new(topo, cost);
        let mut clocks = vec![SimTime::ZERO; 64];
        tensor_parallel(&t, &mut clocks);
        for link in t.topology().links() {
            let crossed = link.stats().reservations > 0;
            let is_switch = link.name().contains('>');
            assert!(
                !(crossed && is_switch),
                "TP traffic crossed switch link {}",
                link.name()
            );
        }
    }

    #[test]
    fn pipeline_parallel_pipelines_microbatches() {
        // With per-GPU clocks, M microbatches through S stages must beat
        // the fully serial M*S schedule: the makespan is bounded by
        // (M + S - 2) boundary hops, not M * (S - 1).
        let kind = TopologyKind::RailOptimized {
            nodes: 8,
            gpus_per_node: 8,
            rails: 4,
        };
        let cost = CostModel::a100_hgx();
        let topo = Topology::build(kind, 64, &cost);
        let t = Transport::new(topo.clone(), cost.clone());
        let mut clocks = vec![SimTime::ZERO; 64];
        pipeline_parallel(&t, &mut clocks);
        let makespan = clocks.iter().map(|c| c.since(SimTime::ZERO)).max().unwrap();
        // One uncontended boundary hop, measured on fresh state.
        let fresh = Transport::new(Topology::build(kind, 64, &cost), cost);
        let hop = fresh.shmem_put(0, 8, ACT_PP_BYTES, SimTime::ZERO);
        let stages = 8u64;
        let serial = hop * (PP_MICROBATCHES as u64 * (stages - 1));
        assert!(
            makespan < serial,
            "no pipelining: makespan {makespan:?} >= serial bound {serial:?}"
        );
    }
}
