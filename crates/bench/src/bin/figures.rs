//! Regenerate the paper's figures as text tables.
//!
//! ```text
//! cargo run -p cpufree-bench --release --bin figures            # everything
//! cargo run -p cpufree-bench --release --bin figures -- fig6_1  # one figure
//! ```

use cpufree_bench::*;

fn print_points(rows: &[Point]) {
    println!(
        "{:<24} {:>5} {:>14} {:>14} {:>14} {:>14} {:>9}",
        "variant", "gpus", "per-iter", "comm", "sync", "exposed-comm", "overlap%"
    );
    for p in rows {
        println!(
            "{:<24} {:>5} {:>14} {:>14} {:>14} {:>14} {:>8.1}%",
            p.series,
            p.gpus,
            format!("{}", p.per_iter),
            format!("{}", p.comm),
            format!("{}", p.sync),
            format!("{}", p.exposed_comm),
            p.overlap * 100.0
        );
    }
}

fn print_speedups(rows: &[Point], ours: &str, baselines: &[&str]) {
    println!("\nspeedups of `{ours}` at each GPU count (paper formula):");
    let gpus: Vec<usize> = {
        let mut g: Vec<usize> = rows.iter().map(|p| p.gpus).collect();
        g.sort_unstable();
        g.dedup();
        g
    };
    for g in gpus {
        let our = rows
            .iter()
            .find(|p| p.gpus == g && p.series == ours)
            .expect("missing our series");
        let mut parts = Vec::new();
        for b in baselines {
            if let Some(base) = rows.iter().find(|p| p.gpus == g && p.series == *b) {
                parts.push(format!(
                    "{:.1}% vs {}",
                    speedup_pct(base.per_iter, our.per_iter),
                    b
                ));
            }
        }
        println!("  {g} GPUs: {}", parts.join(", "));
    }
}

fn fig2_1() {
    println!("== Fig 2.1b — activity timeline, CPU-controlled vs CPU-Free ==");
    println!("{}", fig2_1_timeline(4, 100));
}

fn fig2_2() {
    println!("== Fig 2.2a — pure communication+synchronization overhead (no compute) ==");
    let rows = fig2_2a();
    print_points(&rows);
    print_speedups(&rows, "CPU-Free", &["Baseline Copy Overlap"]);

    println!("\n== Fig 2.2b — communication overlap ratio and total time (small domain) ==");
    let rows = fig2_2b();
    print_points(&rows);
    for p in rows.iter().filter(|p| p.gpus == 8) {
        let comm_frac = (p.comm + p.sync).as_nanos() as f64 / p.total.as_nanos() as f64 * 100.0
            / GPU_COUNTS.len() as f64
            * GPU_COUNTS.len() as f64;
        println!(
            "  {}: comm+sync = {:.0}% of execution, {:.0}% overlapped",
            p.series,
            comm_frac.min(100.0 * p.gpus as f64),
            p.overlap * 100.0
        );
    }
}

fn fig5_1() {
    println!("== Fig 5.1b — DaCe MPI Jacobi 2D communication profile ==");
    println!("{}", fig5_1_timeline(4));
}

fn fig6_1_print() {
    println!("== Fig 6.1 — 2D Jacobi weak scaling (per-iteration time) ==");
    for (label, rows) in fig6_1() {
        println!("\n-- domain {label} --");
        print_points(&rows);
        print_speedups(
            &rows,
            "CPU-Free",
            &["Baseline NVSHMEM", "Baseline Copy Overlap"],
        );
        if label.starts_with("large") {
            print_speedups(&rows, "CPU-Free (PERKS)", &["Baseline NVSHMEM", "CPU-Free"]);
        }
    }
}

fn fig6_2_print() {
    println!("== Fig 6.2 — 3D Jacobi weak + strong scaling ==");
    for (label, rows) in fig6_2() {
        println!("\n-- {label} --");
        print_points(&rows);
        print_speedups(
            &rows,
            "CPU-Free",
            &["Baseline NVSHMEM", "Baseline Copy Overlap"],
        );
    }
}

fn print_dace(rows: &[DacePoint]) {
    println!(
        "{:>5} {:>14} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "gpus", "base total", "base comm", "free total", "free comm", "improve%", "comm-impr%"
    );
    for p in rows {
        println!(
            "{:>5} {:>14} {:>14} {:>14} {:>14} {:>11.1}% {:>11.1}%",
            p.gpus,
            format!("{}", p.baseline_total),
            format!("{}", p.baseline_comm),
            format!("{}", p.cpufree_total),
            format!("{}", p.cpufree_comm),
            p.improvement_pct,
            p.comm_improvement_pct
        );
    }
}

fn fig6_3_print() {
    println!("== Fig 6.3a — DaCe Jacobi 1D: MPI baseline vs CPU-Free ==");
    print_dace(&fig6_3a());
    println!("\n== Fig 6.3b — DaCe Jacobi 2D: MPI baseline vs CPU-Free ==");
    print_dace(&fig6_3b());
}

fn ablations() {
    println!("== Ablation — §4.1.2 proportional TB split vs fixed split (flat 3D domain) ==");
    print_points(&ablation_tb_split());
    println!("\n== Ablation — single persistent kernel vs dual co-resident kernels ==");
    print_points(&ablation_dual_kernel());
    println!("\n== Ablation — §5.3.2 put granularity: single-thread vs block-cooperative ==");
    println!(
        "{:<26} {:>14} {:>14} {:>9}",
        "workload", "thread", "block", "gain"
    );
    for (label, thread, block) in ablation_put_granularity() {
        println!(
            "{:<26} {:>14} {:>14} {:>8.1}%",
            label,
            format!("{}", thread),
            format!("{}", block),
            speedup_pct(thread, block)
        );
    }
}

fn sensitivity() {
    println!("== Sensitivity — NVLink vs PCIe-only interconnect (small 2D, 8 GPUs) ==");
    print_points(&sensitivity_interconnect());
    println!("(the CPU-Free advantage persists on slow links: it is a control-path effect)");
}

fn grid2d() {
    println!("== Extension — handwritten 2D grid decomposition (strided E/W iput) ==");
    println!(
        "{:>5} {:>14} {:>14} {:>9}",
        "gpus", "baseline", "cpu-free", "speedup"
    );
    for (n, base, free, s) in grid2d_comparison() {
        println!(
            "{:>5} {:>14} {:>14} {:>8.1}%",
            n,
            format!("{}", base),
            format!("{}", free),
            s
        );
    }
}

fn breakdown() {
    println!("== Overhead anatomy — small 2D domain, 8 GPUs, no compute (per iteration) ==");
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "variant", "per-iter", "launch", "api", "sync", "comm"
    );
    for r in overhead_breakdown() {
        println!(
            "{:<24} {:>12} {:>12} {:>12} {:>12} {:>12}",
            r.series,
            format!("{}", r.per_iter),
            format!("{}", r.launch),
            format!("{}", r.api),
            format!("{}", r.sync),
            format!("{}", r.comm),
        );
    }
    println!("(launch/api are raw sums over all ranks; sync/comm are trace-union times)");
}

fn cg() {
    println!("== Extension — distributed Conjugate Gradient (CPU-Free vs CPU-controlled) ==");
    print_dace(&cg_comparison());
}

fn faults() {
    println!("== Robustness — fault-injected CPU-Free runs: recovery overhead ==");
    println!(
        "{:<8} {:<22} {:>14} {:>10} {:>9} {:>8} {:>13}",
        "workload", "scenario", "total", "overhead", "rollbacks", "retries", "bit-identical"
    );
    for r in fault_recovery_overhead() {
        println!(
            "{:<8} {:<22} {:>14} {:>9.1}% {:>9} {:>8} {:>13}",
            r.workload,
            r.scenario,
            r.total.to_string(),
            r.overhead_pct,
            r.rollbacks,
            r.retries,
            r.bit_identical
        );
    }
    println!("(every recovered run reproduces the fault-free result bit for bit;");
    println!(" overhead is virtual time vs. the fault-free fault-tolerant run)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty();
    let want = |name: &str| all || args.iter().any(|a| a == name);
    if want("fig2_1") {
        fig2_1();
        println!();
    }
    if want("fig2_2") || want("fig2_2a") || want("fig2_2b") {
        fig2_2();
        println!();
    }
    if want("fig5_1") {
        fig5_1();
        println!();
    }
    if want("fig6_1") {
        fig6_1_print();
        println!();
    }
    if want("fig6_2") {
        fig6_2_print();
        println!();
    }
    if want("fig6_3") || want("fig6_3a") || want("fig6_3b") {
        fig6_3_print();
        println!();
    }
    if want("ablations") {
        ablations();
        println!();
    }
    if want("cg") {
        cg();
        println!();
    }
    if want("faults") {
        faults();
        println!();
    }
    if want("breakdown") {
        breakdown();
        println!();
    }
    if want("sensitivity") {
        sensitivity();
        println!();
    }
    if want("grid2d") {
        grid2d();
        println!();
    }
}
