//! Regenerate the paper's figures as text tables.
//!
//! ```text
//! cargo run -p cpufree-bench --release --bin figures            # everything
//! cargo run -p cpufree-bench --release --bin figures -- fig6_1  # one figure
//! cargo run -p cpufree-bench --release --bin figures -- --json  # + BENCH_*.json
//! ```
//!
//! With `--json`, every point-based figure also lands in a
//! `BENCH_<figure>.json` file in the working directory (plain arrays of
//! objects, times in nanoseconds) for external plotting.

use cpufree_bench::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Set once in `main` when `--json` is passed.
static JSON: AtomicBool = AtomicBool::new(false);

/// Every `(figure, body)` written this run, in emission order — folded into
/// the aggregate `BENCH_figures.json` at the end of a full `--json` run.
static COLLECTED: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn points_json(rows: &[Point]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|p| {
            format!(
                "{{\"series\":\"{}\",\"gpus\":{},\"per_iter_ns\":{},\"comm_ns\":{},\
                 \"sync_ns\":{},\"exposed_comm_ns\":{},\"overlap\":{:.6},\"total_ns\":{}}}",
                json_escape(&p.series),
                p.gpus,
                p.per_iter.as_nanos(),
                p.comm.as_nanos(),
                p.sync.as_nanos(),
                p.exposed_comm.as_nanos(),
                p.overlap,
                p.total.as_nanos()
            )
        })
        .collect();
    format!("[\n  {}\n]\n", items.join(",\n  "))
}

fn dace_json(rows: &[DacePoint]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|p| {
            format!(
                "{{\"gpus\":{},\"baseline_total_ns\":{},\"baseline_comm_ns\":{},\
                 \"cpufree_total_ns\":{},\"cpufree_comm_ns\":{},\
                 \"improvement_pct\":{:.3},\"comm_improvement_pct\":{:.3}}}",
                p.gpus,
                p.baseline_total.as_nanos(),
                p.baseline_comm.as_nanos(),
                p.cpufree_total.as_nanos(),
                p.cpufree_comm.as_nanos(),
                p.improvement_pct,
                p.comm_improvement_pct
            )
        })
        .collect();
    format!("[\n  {}\n]\n", items.join(",\n  "))
}

fn topo_json(rows: &[TopoRow]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"topology\":\"{}\",\"pairs\":{},\"per_transfer_ns\":{},\"makespan_ns\":{}}}",
                r.topology,
                r.pairs,
                r.per_transfer.as_nanos(),
                r.makespan.as_nanos()
            )
        })
        .collect();
    format!("[\n  {}\n]\n", items.join(",\n  "))
}

fn write_json(name: &str, body: String) {
    if !JSON.load(Ordering::Relaxed) {
        return;
    }
    // Figure labels carry spaces and `/` (e.g. "weak scaling 256^3/GPU");
    // flatten to a filesystem- and JSON-key-safe slug.
    let slug: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let path = format!("BENCH_{slug}.json");
    std::fs::write(&path, &body).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("[wrote {path}]");
    COLLECTED.lock().unwrap().push((slug, body));
}

/// Fold every figure emitted this run into one `BENCH_figures.json` keyed by
/// figure slug. All embedded data is virtual-time (nanoseconds from the
/// deterministic engine), so regenerating the file is byte-identical — CI
/// diffs it against the committed copy.
fn write_aggregate_json() {
    let collected = COLLECTED.lock().unwrap();
    let items: Vec<String> = collected
        .iter()
        .map(|(name, body)| format!("  \"{name}\": {}", body.trim_end().replace('\n', "\n  ")))
        .collect();
    let path = "BENCH_figures.json";
    std::fs::write(path, format!("{{\n{}\n}}\n", items.join(",\n")))
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("[wrote {path}]");
}

fn print_points(rows: &[Point]) {
    println!(
        "{:<24} {:>5} {:>14} {:>14} {:>14} {:>14} {:>9}",
        "variant", "gpus", "per-iter", "comm", "sync", "exposed-comm", "overlap%"
    );
    for p in rows {
        println!(
            "{:<24} {:>5} {:>14} {:>14} {:>14} {:>14} {:>8.1}%",
            p.series,
            p.gpus,
            format!("{}", p.per_iter),
            format!("{}", p.comm),
            format!("{}", p.sync),
            format!("{}", p.exposed_comm),
            p.overlap * 100.0
        );
    }
}

fn print_speedups(rows: &[Point], ours: &str, baselines: &[&str]) {
    println!("\nspeedups of `{ours}` at each GPU count (paper formula):");
    let gpus: Vec<usize> = {
        let mut g: Vec<usize> = rows.iter().map(|p| p.gpus).collect();
        g.sort_unstable();
        g.dedup();
        g
    };
    for g in gpus {
        let our = rows
            .iter()
            .find(|p| p.gpus == g && p.series == ours)
            .expect("missing our series");
        let mut parts = Vec::new();
        for b in baselines {
            if let Some(base) = rows.iter().find(|p| p.gpus == g && p.series == *b) {
                parts.push(format!(
                    "{:.1}% vs {}",
                    speedup_pct(base.per_iter, our.per_iter),
                    b
                ));
            }
        }
        println!("  {g} GPUs: {}", parts.join(", "));
    }
}

fn fig2_1() {
    println!("== Fig 2.1b — activity timeline, CPU-controlled vs CPU-Free ==");
    println!("{}", fig2_1_timeline(4, 100));
}

fn fig2_2() {
    println!("== Fig 2.2a — pure communication+synchronization overhead (no compute) ==");
    let rows = fig2_2a();
    print_points(&rows);
    write_json("fig2_2a", points_json(&rows));
    print_speedups(&rows, "CPU-Free", &["Baseline Copy Overlap"]);

    println!("\n== Fig 2.2b — communication overlap ratio and total time (small domain) ==");
    let rows = fig2_2b();
    print_points(&rows);
    write_json("fig2_2b", points_json(&rows));
    for p in rows.iter().filter(|p| p.gpus == 8) {
        let comm_frac = (p.comm + p.sync).as_nanos() as f64 / p.total.as_nanos() as f64 * 100.0
            / GPU_COUNTS.len() as f64
            * GPU_COUNTS.len() as f64;
        println!(
            "  {}: comm+sync = {:.0}% of execution, {:.0}% overlapped",
            p.series,
            comm_frac.min(100.0 * p.gpus as f64),
            p.overlap * 100.0
        );
    }
}

fn fig5_1() {
    println!("== Fig 5.1b — DaCe MPI Jacobi 2D communication profile ==");
    println!("{}", fig5_1_timeline(4));
}

fn fig6_1_print() {
    println!("== Fig 6.1 — 2D Jacobi weak scaling (per-iteration time) ==");
    for (label, rows) in fig6_1() {
        println!("\n-- domain {label} --");
        print_points(&rows);
        write_json(&format!("fig6_1_{label}"), points_json(&rows));
        print_speedups(
            &rows,
            "CPU-Free",
            &["Baseline NVSHMEM", "Baseline Copy Overlap"],
        );
        if label.starts_with("large") {
            print_speedups(&rows, "CPU-Free (PERKS)", &["Baseline NVSHMEM", "CPU-Free"]);
        }
    }
}

fn fig6_2_print() {
    println!("== Fig 6.2 — 3D Jacobi weak + strong scaling ==");
    for (label, rows) in fig6_2() {
        println!("\n-- {label} --");
        print_points(&rows);
        write_json(&format!("fig6_2_{label}"), points_json(&rows));
        print_speedups(
            &rows,
            "CPU-Free",
            &["Baseline NVSHMEM", "Baseline Copy Overlap"],
        );
    }
}

fn print_dace(rows: &[DacePoint]) {
    println!(
        "{:>5} {:>14} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "gpus", "base total", "base comm", "free total", "free comm", "improve%", "comm-impr%"
    );
    for p in rows {
        println!(
            "{:>5} {:>14} {:>14} {:>14} {:>14} {:>11.1}% {:>11.1}%",
            p.gpus,
            format!("{}", p.baseline_total),
            format!("{}", p.baseline_comm),
            format!("{}", p.cpufree_total),
            format!("{}", p.cpufree_comm),
            p.improvement_pct,
            p.comm_improvement_pct
        );
    }
}

fn fig6_3_print() {
    println!("== Fig 6.3a — DaCe Jacobi 1D: MPI baseline vs CPU-Free ==");
    let a = fig6_3a();
    print_dace(&a);
    write_json("fig6_3a", dace_json(&a));
    println!("\n== Fig 6.3b — DaCe Jacobi 2D: MPI baseline vs CPU-Free ==");
    let b = fig6_3b();
    print_dace(&b);
    write_json("fig6_3b", dace_json(&b));
}

fn ablations() {
    println!("== Ablation — §4.1.2 proportional TB split vs fixed split (flat 3D domain) ==");
    print_points(&ablation_tb_split());
    println!("\n== Ablation — single persistent kernel vs dual co-resident kernels ==");
    print_points(&ablation_dual_kernel());
    println!("\n== Ablation — §5.3.2 put granularity: single-thread vs block-cooperative ==");
    println!(
        "{:<26} {:>14} {:>14} {:>9}",
        "workload", "thread", "block", "gain"
    );
    for (label, thread, block) in ablation_put_granularity() {
        println!(
            "{:<26} {:>14} {:>14} {:>8.1}%",
            label,
            format!("{}", thread),
            format!("{}", block),
            speedup_pct(thread, block)
        );
    }
}

fn sensitivity() {
    println!("== Sensitivity — NVLink vs PCIe-only interconnect (small 2D, 8 GPUs) ==");
    let rows = sensitivity_interconnect();
    print_points(&rows);
    write_json("sensitivity", points_json(&rows));
    println!("(the CPU-Free advantage persists on slow links: it is a control-path effect)");
}

fn topo(jobs: usize) {
    println!("== Topology — shared-hop contention under concurrent cross-partition puts ==");
    let rows = topo_contention_jobs(jobs);
    println!(
        "{:<20} {:>6} {:>14} {:>14} {:>9}",
        "topology", "pairs", "per-transfer", "makespan", "slowdown"
    );
    for r in &rows {
        let base = rows
            .iter()
            .find(|b| b.topology == r.topology && b.pairs == 1)
            .expect("pairs=1 row");
        let slowdown = r.makespan.as_nanos() as f64 / base.makespan.as_nanos() as f64;
        println!(
            "{:<20} {:>6} {:>14} {:>14} {:>8.2}x",
            r.topology,
            r.pairs,
            format!("{}", r.per_transfer),
            format!("{}", r.makespan),
            slowdown
        );
    }
    write_json("topo", topo_json(&rows));
    println!("(dedicated links stay flat; shared hops — PCIe bridges, ring arcs, the");
    println!(" two-node NIC — queue concurrent pairs and stretch the makespan)");
}

fn grid2d() {
    println!("== Extension — handwritten 2D grid decomposition (strided E/W iput) ==");
    println!(
        "{:>5} {:>14} {:>14} {:>9}",
        "gpus", "baseline", "cpu-free", "speedup"
    );
    for (n, base, free, s) in grid2d_comparison() {
        println!(
            "{:>5} {:>14} {:>14} {:>8.1}%",
            n,
            format!("{}", base),
            format!("{}", free),
            s
        );
    }
}

fn breakdown() {
    println!("== Overhead anatomy — small 2D domain, 8 GPUs, no compute (per iteration) ==");
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "variant", "per-iter", "launch", "api", "sync", "comm"
    );
    for r in overhead_breakdown() {
        println!(
            "{:<24} {:>12} {:>12} {:>12} {:>12} {:>12}",
            r.series,
            format!("{}", r.per_iter),
            format!("{}", r.launch),
            format!("{}", r.api),
            format!("{}", r.sync),
            format!("{}", r.comm),
        );
    }
    println!("(launch/api are raw sums over all ranks; sync/comm are trace-union times)");
}

fn cg() {
    println!("== Extension — distributed Conjugate Gradient (CPU-Free vs CPU-controlled) ==");
    print_dace(&cg_comparison());
}

fn faults() {
    println!("== Robustness — fault-injected CPU-Free runs: recovery overhead ==");
    println!(
        "{:<8} {:<22} {:>14} {:>10} {:>9} {:>8} {:>13}",
        "workload", "scenario", "total", "overhead", "rollbacks", "retries", "bit-identical"
    );
    for r in fault_recovery_overhead() {
        println!(
            "{:<8} {:<22} {:>14} {:>9.1}% {:>9} {:>8} {:>13}",
            r.workload,
            r.scenario,
            r.total.to_string(),
            r.overhead_pct,
            r.rollbacks,
            r.retries,
            r.bit_identical
        );
    }
    println!("(every recovered run reproduces the fault-free result bit for bit;");
    println!(" overhead is virtual time vs. the fault-free fault-tolerant run)");
}

fn check() {
    println!("== Correctness tooling — happens-before checker overhead ==");
    println!(
        "{:<28} {:>10} {:>10} {:>12} {:>12} {:>9} {:>7} {:>13}",
        "workload",
        "hb-events",
        "accesses",
        "wall off",
        "wall on",
        "factor",
        "clean",
        "bit-identical"
    );
    for r in check_overhead() {
        let factor = r.wall_on.as_secs_f64() / r.wall_off.as_secs_f64().max(1e-9);
        println!(
            "{:<28} {:>10} {:>10} {:>12} {:>12} {:>8.2}x {:>7} {:>13}",
            r.workload,
            r.events,
            r.accesses,
            format!("{:.2?}", r.wall_off),
            format!("{:.2?}", r.wall_on),
            factor,
            r.clean,
            r.bit_identical
        );
    }
    println!("(the checker never charges virtual time: totals and numerics are identical;");
    println!(" the factor is host wall clock, paid only when a run opts in)");
}

/// `figures chaos [--seeds N]`: run the deterministic chaos engine — the
/// full fault-schedule sweep plus the seeded-violation shrink demo. Writes
/// the byte-deterministic report to `target/chaos_report/report.txt` and a
/// replayable reproducer JSON for the demo and for every violating case,
/// then exits nonzero unless the sweep is clean and the demo reproduced.
fn chaos(seeds: u64, jobs: usize) -> i32 {
    use cpufree_bench::chaos::*;
    // The worker count goes to stderr: stdout must be byte-identical at
    // every `--jobs`, so re-run diffs can't be fooled by the echo.
    eprintln!("[chaos sweep on {jobs} workers]");
    println!("== Deterministic chaos sweep — {seeds} seeds x 4 topologies x 2 workloads ==");
    let report = match chaos_sweep_jobs(seeds, true, jobs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chaos sweep rejected: {e}");
            return 2;
        }
    };
    let dir = std::path::Path::new("target/chaos_report");
    std::fs::create_dir_all(dir).expect("create target/chaos_report");
    let path = dir.join("report.txt");
    std::fs::write(&path, report.render())
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));

    // Reproducers: every violating sweep case, plus the demo's injected and
    // minimized plans.
    for case in report.violations() {
        let p = dir.join(format!("repro_{}.json", case.id));
        let doc = reproducer_json(case.workload, case.topology, &case.plan);
        std::fs::write(&p, doc).unwrap_or_else(|e| panic!("writing {}: {e}", p.display()));
        println!("[wrote {}]", p.display());
    }
    if let Some(demo) = &report.demo {
        let p = dir.join("repro_seeded_violation.json");
        let doc = reproducer_json(demo.workload, demo.topology, &demo.original);
        std::fs::write(&p, doc).unwrap_or_else(|e| panic!("writing {}: {e}", p.display()));
        let p = dir.join("repro_seeded_violation_minimal.json");
        std::fs::write(&p, &demo.reproducer)
            .unwrap_or_else(|e| panic!("writing {}: {e}", p.display()));
        println!("[wrote {}]", p.display());
    }

    // Console summary: the outcome counts and demo section of the report.
    let text = report.render();
    let per_case = text.find("per-case outcomes:").unwrap_or(0);
    let tail = text.find("violations").unwrap_or(text.len());
    print!("{}", &text[..per_case]);
    print!("{}", &text[tail..]);
    println!("[wrote {}]", path.display());

    write_json(
        "chaos",
        format!(
            "{{\n  \"seeds\": {seeds},\n  \"schedules\": {},\n  \"violations\": {},\n  \
             \"demo_reproduced\": {}\n}}\n",
            report.cases.len(),
            report.violations().len(),
            report.demo.as_ref().is_some_and(|d| d.reproduced())
        ),
    );
    if report.ok() {
        0
    } else {
        eprintln!("chaos sweep FAILED — see {}", path.display());
        1
    }
}

/// `figures chaos-replay <path>`: re-run one reproducer file under the
/// recovery oracles and print its classification.
fn chaos_replay(path: &str) -> i32 {
    use cpufree_bench::chaos::{outcome_line, replay};
    let doc = match std::fs::read_to_string(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("reading {path}: {e}");
            return 1;
        }
    };
    match replay(&doc) {
        Ok((workload, topo, outcome)) => {
            println!(
                "{} @ {} -> {}",
                workload.name(),
                topo.name(),
                outcome_line(&outcome)
            );
            0
        }
        Err(e) => {
            eprintln!("replaying {path}: {e}");
            1
        }
    }
}

/// `figures verify`: run the static protocol verifier over every shipped
/// program at every pipeline stage and GPU count. Writes the full report to
/// `target/verify_report/report.txt` and exits nonzero on any diagnostic,
/// so CI can gate on it and keep the report as an artifact.
fn verify(jobs: usize) -> i32 {
    // Worker count on stderr only — stdout stays byte-identical at every
    // `--jobs` (parallelism must be invisible in the report).
    eprintln!("[verify corpus on {jobs} workers]");
    println!("== Static protocol verification — shipped programs, all stages ==");
    let reports = verify_corpus_jobs(jobs);
    let mut dirty = 0usize;
    let mut full = String::new();
    for r in &reports {
        let status = if r.clean() {
            "clean".into()
        } else {
            dirty += 1;
            format!("{} diagnostic(s)", r.diags.len())
        };
        println!("  {:<36} {status}", r.program);
        use std::fmt::Write as _;
        let _ = writeln!(full, "{r}");
    }
    let dir = std::path::Path::new("target/verify_report");
    std::fs::create_dir_all(dir).expect("create target/verify_report");
    let path = dir.join("report.txt");
    std::fs::write(&path, full).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!(
        "\n{} program/stage/gpu-count combinations, {dirty} with diagnostics",
        reports.len()
    );
    println!("[wrote {}]", path.display());
    if dirty > 0 {
        eprintln!("verification FAILED — see {}", path.display());
        1
    } else {
        0
    }
}

/// Deterministic half of `BENCH_des_core.json` — virtual end times and
/// event counts from the engine. Byte-stable across machines and thread
/// counts, so CI regenerates it and diffs against the committed file.
fn des_core_deterministic_json(rows: &[DesCoreRow]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\":\"{}\",\"end_ns\":{},\"events\":{}}}",
                r.name, r.end_ns, r.events
            )
        })
        .collect();
    format!("  \"deterministic\": [\n{}\n  ]", items.join(",\n"))
}

/// `figures des_core [--check] [--shards N]`: run the DES-core
/// micro-benchmarks, including the serial-vs-sharded 64-agent ring
/// allreduce at `N` intra-run shards. Without `--check`, writes
/// `BENCH_des_core.json` (deterministic block + measured events/sec
/// snapshot). With `--check`, regenerates the deterministic block and
/// requires the committed file to contain it byte for byte — the
/// wall-clock half is never diffed. The deterministic block is identical
/// at every `--shards` (asserted inside [`des_core_rows_with`]), so the
/// gate holds no matter which shard count CI picks.
fn des_core(check: bool, shards: usize) -> i32 {
    // Shard count on stderr: the deterministic stdout table must not vary
    // with `--shards` in its gated columns.
    eprintln!("[des_core sharded workloads on {shards} shards]");
    println!("== DES core — engine hot-path throughput ==");
    let rows = des_core_rows_with(shards);
    println!(
        "{:<28} {:>14} {:>10} {:>12} {:>14}",
        "workload", "virtual end", "events", "wall", "events/sec"
    );
    for r in &rows {
        println!(
            "{:<28} {:>12}ns {:>10} {:>12} {:>14.0}",
            r.name,
            r.end_ns,
            r.events,
            format!("{:.2?}", r.wall),
            r.events_per_sec()
        );
    }
    let det = des_core_deterministic_json(&rows);
    let path = "BENCH_des_core.json";
    if check {
        let committed = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("reading {path}: {e}");
                return 1;
            }
        };
        if committed.contains(&det) {
            println!("[{path} deterministic block is current]");
            0
        } else {
            eprintln!(
                "{path} is stale: the committed deterministic block differs from the \
                 regenerated engine results.\nexpected block:\n{det}\n\
                 Regenerate with `cargo run -p cpufree-bench --release --bin figures -- des_core`."
            );
            1
        }
    } else {
        let measured: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"name\":\"{}\",\"wall_ns\":{},\"events_per_sec\":{:.0}}}",
                    r.name,
                    r.wall.as_nanos(),
                    r.events_per_sec()
                )
            })
            .collect();
        let body = format!(
            "{{\n{det},\n  \"measured\": [\n{}\n  ]\n}}\n",
            measured.join(",\n")
        );
        std::fs::write(path, body).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("[wrote {path}]");
        0
    }
}

/// `BENCH_traffic.json` body — the AI traffic-pattern sweep over the
/// cluster fabrics. Every field is virtual-time-derived, so the whole
/// file is deterministic and CI diffs it byte for byte.
fn traffic_json(rows: &[cpufree_bench::traffic::TrafficRow]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"fabric\":\"{}\",\"gpus\":{},\"pattern\":\"{}\",\"makespan_ns\":{},\
                 \"busiest_link\":\"{}\",\"busiest_busy_ns\":{},\"utilization\":{:.4},\
                 \"reservations\":{},\"queued_ns\":{}}}",
                r.fabric,
                r.gpus,
                r.pattern,
                r.makespan.as_nanos(),
                r.busiest_link,
                r.busiest_busy.as_nanos(),
                r.utilization,
                r.reservations,
                r.queued.as_nanos()
            )
        })
        .collect();
    format!("{{\n  \"traffic\": [\n{}\n  ]\n}}\n", items.join(",\n"))
}

/// `figures traffic [--check]`: sweep one data-parallel, tensor-parallel,
/// and pipeline-parallel training step over the 64-GPU fat-tree, 72-GPU
/// dragonfly, and 64-GPU rail-optimized fabrics at full capacity.
/// Without `--check`, writes `BENCH_traffic.json`. With `--check`,
/// regenerates the sweep and requires the committed file to match byte
/// for byte — the sweep is pure virtual time, so the whole file is
/// deterministic (unlike `BENCH_des_core.json`, which carries a
/// wall-clock snapshot half).
fn traffic(check: bool, jobs: usize) -> i32 {
    eprintln!("[traffic sweep on {jobs} workers]");
    println!("== AI traffic patterns — cluster fabrics at capacity ==");
    let rows = cpufree_bench::traffic::traffic_rows_jobs(jobs);
    println!(
        "{:<24} {:>5} {:<18} {:>13} {:<18} {:>8} {:>8}",
        "fabric", "gpus", "pattern", "makespan", "busiest link", "util", "xfers"
    );
    for r in &rows {
        println!(
            "{:<24} {:>5} {:<18} {:>11.1}us {:<18} {:>8.3} {:>8}",
            r.fabric,
            r.gpus,
            r.pattern,
            r.makespan.as_micros_f64(),
            r.busiest_link,
            r.utilization,
            r.reservations
        );
    }
    let body = traffic_json(&rows);
    let path = "BENCH_traffic.json";
    if check {
        let committed = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("reading {path}: {e}");
                return 1;
            }
        };
        if committed == body {
            println!("[{path} is current]");
            0
        } else {
            eprintln!(
                "{path} is stale: the committed sweep differs from the regenerated one.\n\
                 Regenerate with `cargo run -p cpufree-bench --release --bin figures -- traffic`."
            );
            1
        }
    } else {
        std::fs::write(path, body).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("[wrote {path}]");
        0
    }
}

/// `BENCH_cost.json` body — the static-predictor-vs-DES sweep over the
/// program corpus and every topology preset. Both sides are pure virtual
/// time, so the whole file is deterministic and CI diffs it byte for byte.
fn cost_json(rows: &[cpufree_bench::cost::CostRow]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"program\":\"{}\",\"stage\":\"{}\",\"gpus\":{},\"fabric\":\"{}\",\
                 \"predicted_ns\":{},\"base_ns\":{},\"margin_ns\":{},\"simulated_ns\":{},\
                 \"rel_err\":{:.6},\"contended\":{},\"extrapolated\":{}}}",
                r.program,
                r.stage,
                r.gpus,
                r.fabric,
                r.predicted.as_nanos(),
                r.base.as_nanos(),
                r.margin.as_nanos(),
                r.simulated.as_nanos(),
                r.rel_err,
                r.contended,
                r.extrapolated
            )
        })
        .collect();
    format!("{{\n  \"cost\": [\n{}\n  ]\n}}\n", items.join(",\n"))
}

/// `figures cost [--check]`: predict every (corpus program × persistent
/// stage × GPU count × topology preset) cell statically and validate it
/// against the timing-only DES run — exact on uncontended fabrics, a
/// never-underestimating ≤10% bound on contended ones. Without `--check`,
/// writes `BENCH_cost.json`. With `--check`, regenerates the sweep and
/// requires the committed ledger to match byte for byte. On any contract
/// violation or stale ledger, the full sweep lands in
/// `target/cost_report/report.txt` for the CI artifact and the exit code
/// is nonzero.
fn cost(check: bool, jobs: usize) -> i32 {
    use std::fmt::Write as _;
    eprintln!("[cost sweep on {jobs} workers]");
    println!("== Static cost prediction vs DES — corpus x presets ==");
    let sweep = cpufree_bench::cost::cost_sweep_jobs(jobs);
    let mut table = String::new();
    let _ = writeln!(
        table,
        "{:<9} {:<15} {:>5} {:<24} {:>13} {:>13} {:>8} {:<5}",
        "program", "stage", "gpus", "fabric", "predicted", "simulated", "err%", "mode"
    );
    for r in &sweep.rows {
        let _ = writeln!(
            table,
            "{:<9} {:<15} {:>5} {:<24} {:>11.2}us {:>11.2}us {:>7.2}% {:<5}",
            r.program,
            r.stage,
            r.gpus,
            r.fabric,
            r.predicted.as_micros_f64(),
            r.simulated.as_micros_f64(),
            r.rel_err * 100.0,
            match (r.contended, r.extrapolated) {
                (true, true) => "C+S",
                (true, false) => "C",
                (false, true) => "S",
                (false, false) => "-",
            }
        );
    }
    print!("{table}");
    println!("(err% is prediction vs simulation; C = contended fabric, S = steady-state shortcut)");

    let mut tops = String::new();
    let _ = writeln!(
        tops,
        "\ntop-3 kernels per preset (jacobi2d/cpu_free @8gpus ledger):"
    );
    for (fabric, report) in &sweep.ledgers {
        let _ = writeln!(tops, "  {fabric}:");
        for k in report.top_kernels(3) {
            let _ = writeln!(
                tops,
                "    {:<28} x{:<6} {:>11.2}us",
                k.label,
                k.count,
                k.busy.as_micros_f64()
            );
        }
    }
    print!("{tops}");

    let violations = sweep.violations();
    let body = cost_json(&sweep.rows);
    let write_report = |extra: &str| {
        let dir = std::path::Path::new("target/cost_report");
        std::fs::create_dir_all(dir).expect("create target/cost_report");
        let path = dir.join("report.txt");
        let mut full = table.clone();
        full.push_str(&tops);
        full.push_str(extra);
        std::fs::write(&path, full).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("[wrote {}]", path.display());
    };
    if !violations.is_empty() {
        let mut extra = String::from("\npredictor contract violations:\n");
        for v in &violations {
            let _ = writeln!(extra, "  {v}");
        }
        write_report(&extra);
        eprintln!(
            "cost sweep FAILED — {} contract violation(s)",
            violations.len()
        );
        for v in &violations {
            eprintln!("  {v}");
        }
        return 1;
    }
    let path = "BENCH_cost.json";
    if check {
        let committed = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("reading {path}: {e}");
                write_report(&format!("\nreading {path}: {e}\n"));
                return 1;
            }
        };
        if committed == body {
            println!("[{path} is current]");
            0
        } else {
            write_report("\nstale BENCH_cost.json: regenerated ledger differs\n");
            eprintln!(
                "{path} is stale: the committed ledger differs from the regenerated one.\n\
                 Regenerate with `cargo run -p cpufree-bench --release --bin figures -- cost`."
            );
            1
        }
    } else {
        std::fs::write(path, body).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("[wrote {path}]");
        0
    }
}

/// Parse the value of `--<name> N` out of `args`, removing both tokens.
/// A missing flag yields `default`; a present flag with a missing,
/// non-numeric, or (when `reject_zero`) zero value exits 2 — degenerate
/// sweep inputs must fail loudly, not silently fall back.
fn parse_flag(args: &mut Vec<String>, name: &str, default: u64, reject_zero: bool) -> u64 {
    let flag = format!("--{name}");
    let Some(i) = args.iter().position(|a| *a == flag) else {
        return default;
    };
    let value = args.get(i + 1).cloned();
    match value.as_deref().map(str::parse::<u64>) {
        Some(Ok(v)) if !(reject_zero && v == 0) => {
            args.drain(i..=i + 1);
            v
        }
        _ => {
            eprintln!(
                "invalid value for {flag}: {} (expected a positive integer)",
                value.as_deref().unwrap_or("<missing>")
            );
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--json") {
        args.remove(i);
        JSON.store(true, Ordering::Relaxed);
    }
    // Validate the SIM_DES_JOBS override before anything calls
    // `default_jobs()` (which would panic): garbage exits 2 like any other
    // malformed worker-count input.
    if let Err(e) = sim_des::env_jobs() {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let jobs = parse_flag(&mut args, "jobs", sim_des::default_jobs() as u64, true) as usize;
    // `verify`, `chaos`, `chaos-replay`, and `des_core --check` are gates,
    // not figures: run them alone and propagate their exit status.
    if args.iter().any(|a| a == "verify") {
        std::process::exit(verify(jobs));
    }
    if let Some(i) = args.iter().position(|a| a == "chaos-replay") {
        let Some(path) = args.get(i + 1) else {
            eprintln!("usage: figures chaos-replay <reproducer.json>");
            std::process::exit(2);
        };
        std::process::exit(chaos_replay(path));
    }
    if args.iter().any(|a| a == "chaos") {
        let seeds = parse_flag(
            &mut args,
            "seeds",
            cpufree_bench::chaos::DEFAULT_SEED_BUDGET,
            true,
        );
        std::process::exit(chaos(seeds, jobs));
    }
    if args.iter().any(|a| a == "des_core") {
        let check = args.iter().any(|a| a == "--check");
        let shards = parse_flag(&mut args, "shards", 4, true) as usize;
        std::process::exit(des_core(check, shards));
    }
    if args.iter().any(|a| a == "traffic") {
        let check = args.iter().any(|a| a == "--check");
        std::process::exit(traffic(check, jobs));
    }
    if args.iter().any(|a| a == "cost") {
        // Strict parsing, like `--jobs`/`--seeds`: anything beyond
        // `cost [--check]` is a mistake and must fail loudly (exit 2),
        // not silently run a full default sweep.
        let check = args.iter().any(|a| a == "--check");
        let stray: Vec<&String> = args
            .iter()
            .filter(|a| *a != "cost" && *a != "--check")
            .collect();
        if !stray.is_empty() {
            eprintln!(
                "unrecognized argument(s) for cost: {}\nusage: figures cost [--check] [--jobs N]",
                stray
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            std::process::exit(2);
        }
        std::process::exit(cost(check, jobs));
    }
    let all = args.is_empty();
    let want = |name: &str| all || args.iter().any(|a| a == name);
    if want("fig2_1") {
        fig2_1();
        println!();
    }
    if want("fig2_2") || want("fig2_2a") || want("fig2_2b") {
        fig2_2();
        println!();
    }
    if want("fig5_1") {
        fig5_1();
        println!();
    }
    if want("fig6_1") {
        fig6_1_print();
        println!();
    }
    if want("fig6_2") {
        fig6_2_print();
        println!();
    }
    if want("fig6_3") || want("fig6_3a") || want("fig6_3b") {
        fig6_3_print();
        println!();
    }
    if want("ablations") {
        ablations();
        println!();
    }
    if want("cg") {
        cg();
        println!();
    }
    if want("faults") {
        faults();
        println!();
    }
    if want("breakdown") {
        breakdown();
        println!();
    }
    if want("sensitivity") {
        sensitivity();
        println!();
    }
    if want("topo") {
        topo(jobs);
        println!();
    }
    if want("grid2d") {
        grid2d();
        println!();
    }
    if want("check") {
        check();
        println!();
    }
    if all && JSON.load(Ordering::Relaxed) {
        write_aggregate_json();
    }
}
