//! Static cost-predictor validation sweep and the `BENCH_cost.json`
//! ledger behind `figures -- cost`.
//!
//! Every cell of (corpus program × persistent stage × GPU count × topology
//! preset) is both **predicted** ([`dace_sim::predict_cost`]) and
//! **simulated** ([`dace_sim::lower::run_persistent_on`], timing-only), and
//! the sweep asserts the predictor's contract:
//!
//! * on uncontended fabrics (`!report.contended`) the prediction equals
//!   the simulated virtual time **exactly**;
//! * on contended fabrics it never underestimates and stays within the
//!   documented 10% bound.
//!
//! Both sides are pure virtual time, so the whole row set is deterministic
//! and CI diffs the emitted `BENCH_cost.json` byte for byte.

use dace_sim::cost::CostReport;
use dace_sim::predict_cost;
use dace_sim::programs::{Jacobi1dSetup, Jacobi2dSetup};
use dace_sim::transform::{
    gpu_persistent_kernel, gpu_transform, mpi_to_nvshmem_with, nvshmem_array, to_cpu_free,
    PutGranularity,
};
use dace_sim::{Bindings, Sdfg};
use gpu_sim::{ExecMode, TopologyKind};
use sim_des::SimDur;

use crate::GPU_COUNTS;

/// One validated sweep cell: prediction vs simulation for a (program,
/// stage, GPU count, fabric) combination.
#[derive(Debug, Clone)]
pub struct CostRow {
    /// Corpus program (`jacobi1d` / `jacobi2d`).
    pub program: &'static str,
    /// Pipeline stage (`cpu_free` single-thread puts, `cpu_free_block`
    /// block-cooperative puts).
    pub stage: &'static str,
    /// GPU count.
    pub gpus: usize,
    /// Topology preset name.
    pub fabric: String,
    /// Predicted total (`base + margin`).
    pub predicted: SimDur,
    /// Contention-ordered recurrence value (exact when `!contended`).
    pub base: SimDur,
    /// Conservative shared-link surcharge.
    pub margin: SimDur,
    /// DES ground truth (timing-only persistent run).
    pub simulated: SimDur,
    /// `(predicted - simulated) / simulated`.
    pub rel_err: f64,
    /// Any link shared between two ordered PE pairs?
    pub contended: bool,
    /// Steady-state shortcut taken?
    pub extrapolated: bool,
}

impl CostRow {
    /// The predictor's contract for this cell; `None` when it holds.
    pub fn violation(&self) -> Option<String> {
        let id = format!(
            "{}/{} @{}gpus on {}",
            self.program, self.stage, self.gpus, self.fabric
        );
        if !self.contended && self.predicted != self.simulated {
            return Some(format!(
                "{id}: expected exact on uncontended fabric, predicted {} vs simulated {}",
                self.predicted, self.simulated
            ));
        }
        if self.predicted < self.simulated {
            return Some(format!(
                "{id}: prediction under-estimates ({} < {})",
                self.predicted, self.simulated
            ));
        }
        if self.rel_err > 0.10 {
            return Some(format!(
                "{id}: relative error {:.4} exceeds the 10% bound",
                self.rel_err
            ));
        }
        None
    }
}

/// The sweep result: rows in deterministic emission order plus, per
/// fabric, the ledger of the heaviest configuration (largest GPU count of
/// `jacobi2d/cpu_free`) for the top-kernel report.
pub struct CostSweep {
    /// All validated cells.
    pub rows: Vec<CostRow>,
    /// `(fabric, report)` per preset for the top-kernels table.
    pub ledgers: Vec<(String, CostReport)>,
}

impl CostSweep {
    /// Every contract violation across the sweep (empty on success).
    pub fn violations(&self) -> Vec<String> {
        self.rows.iter().filter_map(CostRow::violation).collect()
    }
}

/// Corpus cell descriptors: mirrors `verify_corpus_jobs`'s sizes; the 1D
/// program runs long enough (50 steps) to exercise the steady-state
/// extrapolation path, the 2D program short enough (5 steps) to exercise
/// the full walk.
fn programs() -> Vec<(&'static str, &'static str)> {
    vec![
        ("jacobi1d", "cpu_free"),
        ("jacobi1d", "cpu_free_block"),
        ("jacobi2d", "cpu_free"),
        ("jacobi2d", "cpu_free_block"),
    ]
}

fn build(program: &str, stage: &str, gpus: usize) -> (Sdfg, Bindings, u64) {
    let (frontend, user, tsteps): (Sdfg, Bindings, u64) = match program {
        "jacobi1d" => {
            let s = Jacobi1dSetup::new(64, 50, gpus);
            (s.sdfg.clone(), s.user_bindings(), 50)
        }
        _ => {
            let s = Jacobi2dSetup::new(8, 8, 5, gpus);
            (s.sdfg.clone(), s.user_bindings(), 5)
        }
    };
    let mut sdfg = frontend;
    match stage {
        "cpu_free" => to_cpu_free(&mut sdfg).expect("to_cpu_free"),
        _ => {
            gpu_transform(&mut sdfg);
            mpi_to_nvshmem_with(&mut sdfg, PutGranularity::Block).expect("mpi_to_nvshmem");
            nvshmem_array(&mut sdfg);
            gpu_persistent_kernel(&mut sdfg).expect("gpu_persistent_kernel");
        }
    }
    (sdfg, user, tsteps)
}

/// Run the full prediction-vs-simulation sweep on `jobs` workers. Row
/// order is independent of the worker count (cells are mapped in
/// deterministic order), so the emitted JSON is byte-stable.
pub fn cost_sweep_jobs(jobs: usize) -> CostSweep {
    let presets = TopologyKind::presets();
    let mut cells: Vec<(&'static str, &'static str, usize, TopologyKind)> = Vec::new();
    for (program, stage) in programs() {
        for &gpus in &GPU_COUNTS {
            for &kind in &presets {
                cells.push((program, stage, gpus, kind));
            }
        }
    }
    let rows = sim_des::par_map(jobs, cells, |(program, stage, gpus, kind)| {
        let (sdfg, user, tsteps) = build(program, stage, gpus);
        let report = predict_cost(&sdfg, gpus, &user, kind).expect("predict_cost");
        let simulated = dace_sim::lower::run_persistent_on(
            &sdfg,
            gpus,
            &user,
            tsteps,
            kind,
            ExecMode::TimingOnly,
            &|_, _| vec![],
        )
        .expect("persistent run")
        .total;
        CostRow {
            program,
            stage,
            gpus,
            fabric: kind.name(),
            predicted: report.total,
            base: report.base,
            margin: report.margin,
            simulated,
            rel_err: report.rel_err(simulated),
            contended: report.contended,
            extrapolated: report.extrapolated,
        }
    });
    // Top-kernel ledgers: the heaviest corpus configuration per fabric.
    let top_gpus = *GPU_COUNTS.last().expect("non-empty GPU_COUNTS");
    let ledgers = sim_des::par_map(jobs, presets, |kind| {
        let (sdfg, user, _) = build("jacobi2d", "cpu_free", top_gpus);
        let report = predict_cost(&sdfg, top_gpus, &user, kind).expect("predict_cost");
        (kind.name(), report)
    });
    CostSweep { rows, ledgers }
}

/// [`cost_sweep_jobs`] on the default worker count.
pub fn cost_sweep() -> CostSweep {
    cost_sweep_jobs(sim_des::default_jobs())
}
