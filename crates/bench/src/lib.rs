//! # cpufree-bench — the paper's evaluation, regenerated
//!
//! One experiment function per figure of the paper. Each returns structured
//! rows that the `figures` binary prints as tables (and EXPERIMENTS.md
//! records against the paper's reported values). Criterion benches in
//! `benches/` wrap the same functions.
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Fig 2.1b (Nsight timeline, CPU-controlled) | [`fig2_1_timeline`] |
//! | Fig 2.2a (pure comm+sync overhead) | [`fig2_2a`] |
//! | Fig 2.2b (overlap ratio + total time) | [`fig2_2b`] |
//! | Fig 5.1b (DaCe MPI timeline) | [`fig5_1_timeline`] |
//! | Fig 6.1 (2D weak scaling, 3 domain sizes) | [`fig6_1`] |
//! | Fig 6.2 (3D weak / no-compute / strong) | [`fig6_2`] |
//! | Fig 6.3a (DaCe Jacobi 1D) | [`fig6_3a`] |
//! | Fig 6.3b (DaCe Jacobi 2D) | [`fig6_3b`] |

#![warn(missing_docs)]

pub mod chaos;
pub mod cost;
pub mod sharded;
pub mod traffic;

use dace_sim::lower::{run_discrete, run_persistent};
use dace_sim::programs::{Jacobi1dSetup, Jacobi2dSetup};
use dace_sim::transform::{gpu_transform, to_cpu_free};
use gpu_sim::ExecMode;
use sim_des::SimDur;
use stencil_lab::{StencilConfig, Variant};

/// GPU counts swept in every scaling figure.
pub const GPU_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Iterations per measured run (deterministic simulator: no repetitions
/// needed; the paper reports the minimum of 5 runs on real hardware).
pub const ITERS: u64 = 50;

/// One measured data point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Series label (variant name).
    pub series: String,
    /// GPU count.
    pub gpus: usize,
    /// Per-iteration execution time.
    pub per_iter: SimDur,
    /// Union time of communication transfers.
    pub comm: SimDur,
    /// Union time of synchronization waits.
    pub sync: SimDur,
    /// Communication+synchronization time NOT hidden by compute.
    pub exposed_comm: SimDur,
    /// Fraction of comm+sync hidden under compute (0..1).
    pub overlap: f64,
    /// End-to-end time of the run.
    pub total: SimDur,
}

fn point(series: &str, gpus: usize, ex: &stencil_lab::Executed) -> Point {
    Point {
        series: series.to_string(),
        gpus,
        per_iter: ex.stats.per_iter,
        comm: ex.stats.comm_busy,
        sync: ex.stats.sync_busy,
        exposed_comm: ex.stats.exposed_comm,
        overlap: ex.stats.comm_overlap_ratio,
        total: ex.total,
    }
}

/// Weak-scaling 2D config: the slab axis grows with the GPU count so the
/// per-GPU load stays constant (the paper alternates axes; slab-axis growth
/// is the equivalent for a 1D decomposition).
pub fn weak2d(base: usize, gpus: usize, iters: u64) -> StencilConfig {
    let interior = base - 2;
    StencilConfig {
        nx: base,
        ny: interior * gpus + 2,
        nz: 1,
        iterations: iters,
        n_gpus: gpus,
        exec: ExecMode::TimingOnly,
        no_compute: false,
        threads_per_block: 1024,
        cost: None,
        topology: None,
        jitter: None,
        check: false,
    }
}

/// Weak-scaling 3D config (z grows with GPUs).
pub fn weak3d(nx: usize, ny: usize, base_z: usize, gpus: usize, iters: u64) -> StencilConfig {
    let interior = base_z - 2;
    StencilConfig {
        nx,
        ny,
        nz: interior * gpus + 2,
        iterations: iters,
        n_gpus: gpus,
        exec: ExecMode::TimingOnly,
        no_compute: false,
        threads_per_block: 1024,
        cost: None,
        topology: None,
        jitter: None,
        check: false,
    }
}

/// Strong-scaling 3D config (constant global domain).
pub fn strong3d(nx: usize, ny: usize, nz: usize, gpus: usize, iters: u64) -> StencilConfig {
    StencilConfig {
        nx,
        ny,
        nz,
        iterations: iters,
        n_gpus: gpus,
        exec: ExecMode::TimingOnly,
        no_compute: false,
        threads_per_block: 1024,
        cost: None,
        topology: None,
        jitter: None,
        check: false,
    }
}

/// Fig 2.1b: render the CPU-controlled overlap stencil's activity timeline
/// (the simulator's stand-in for the Nsight screenshot), next to the
/// CPU-Free timeline for contrast.
pub fn fig2_1_timeline(gpus: usize, width: usize) -> String {
    let cfg = weak2d(256, gpus, 4);
    let base = Variant::BaselineOverlap.run(&cfg);
    let free = Variant::CpuFree.run(&cfg);
    format!(
        "=== Baseline Copy Overlap, {gpus} GPUs, 256^2/GPU, 4 iterations (total {}) ===\n{}\n\
         === CPU-Free, same workload (total {}) ===\n{}",
        base.total,
        base.trace.render_timeline(width),
        free.total,
        free.trace.render_timeline(width),
    )
}

/// Fig 5.1b analog: the DaCe MPI Jacobi 2D communication profile (stream
/// syncs + staging copies dominating; little overlap) vs the CPU-Free
/// lowering of the same program.
pub fn fig5_1_timeline(gpus: usize) -> String {
    let setup = Jacobi2dSetup::new(256, 256, 3, gpus);
    let mut base = setup.sdfg.clone();
    gpu_transform(&mut base);
    let b = run_discrete(
        &base,
        gpus,
        &setup.user_bindings(),
        setup.tsteps,
        ExecMode::TimingOnly,
        &|pe, a| setup.init_local(pe, a),
    )
    .expect("fig5.1 baseline");
    let mut free = setup.sdfg.clone();
    to_cpu_free(&mut free).expect("fig5.1 transform");
    let c = run_persistent(
        &free,
        gpus,
        &setup.user_bindings(),
        setup.tsteps,
        ExecMode::TimingOnly,
        &|pe, a| setup.init_local(pe, a),
    )
    .expect("fig5.1 cpufree");
    format!(
        "DaCe Jacobi 2D, {gpus} GPUs, 3 time steps, 256^2/rank\n\
         MPI baseline : total {:>12}, comm {:>12}, sync {:>12}, overlap {:>5.1}%\n\
         CPU-Free     : total {:>12}, comm {:>12}, sync {:>12}, overlap {:>5.1}%",
        format!("{}", b.total),
        format!("{}", b.stats.comm_busy),
        format!("{}", b.stats.sync_busy),
        b.stats.comm_overlap_ratio * 100.0,
        format!("{}", c.total),
        format!("{}", c.stats.comm_busy),
        format!("{}", c.stats.sync_busy),
        c.stats.comm_overlap_ratio * 100.0,
    )
}

/// Fig 2.2a: communication and synchronization overheads with **no
/// computation**, per iteration, CPU-controlled overlap baseline vs
/// CPU-Free, across GPU counts.
pub fn fig2_2a() -> Vec<Point> {
    let mut rows = Vec::new();
    for &g in &GPU_COUNTS {
        let cfg = weak2d(256, g, ITERS).without_compute();
        for v in [Variant::BaselineOverlap, Variant::CpuFree] {
            let ex = v.run(&cfg);
            rows.push(point(v.label(), g, &ex));
        }
    }
    rows
}

/// Fig 2.2b: communication overlap ratio % and total execution time in the
/// small domain, with compute enabled.
pub fn fig2_2b() -> Vec<Point> {
    let mut rows = Vec::new();
    for &g in &GPU_COUNTS {
        let cfg = weak2d(256, g, ITERS);
        for v in [Variant::BaselineOverlap, Variant::CpuFree] {
            let ex = v.run(&cfg);
            rows.push(point(v.label(), g, &ex));
        }
    }
    rows
}

/// Fig 6.1: weak scaling of the 2D Jacobi stencil, small (256²), medium
/// (2048²) and large (8192²) per-GPU domains, all paper variants (+ PERKS
/// on the large domain).
pub fn fig6_1() -> Vec<(String, Vec<Point>)> {
    let mut out = Vec::new();
    for (label, base) in [
        ("small 256^2", 256usize),
        ("medium 2048^2", 2048),
        ("large 8192^2", 8192),
    ] {
        let mut rows = Vec::new();
        for &g in &GPU_COUNTS {
            let cfg = weak2d(base, g, ITERS);
            for v in Variant::paper_set() {
                let ex = v.run(&cfg);
                rows.push(point(v.label(), g, &ex));
            }
            if base == 8192 {
                let ex = Variant::CpuFreePerks.run(&cfg);
                rows.push(point(Variant::CpuFreePerks.label(), g, &ex));
            }
        }
        out.push((label.to_string(), rows));
    }
    out
}

/// Fig 6.2: 3D Jacobi — weak scaling (256³/GPU), the same without compute,
/// and strong scaling on a constant 512³ domain (with its own no-compute
/// series showing the synchronization overheads).
pub fn fig6_2() -> Vec<(String, Vec<Point>)> {
    let mut out = Vec::new();

    let mut weak = Vec::new();
    for &g in &GPU_COUNTS {
        let cfg = weak3d(256, 256, 256, g, ITERS);
        for v in Variant::paper_set() {
            let ex = v.run(&cfg);
            weak.push(point(v.label(), g, &ex));
        }
    }
    out.push(("weak scaling 256^3/GPU".to_string(), weak));

    let mut nocompute = Vec::new();
    for &g in &GPU_COUNTS {
        let cfg = weak3d(256, 256, 256, g, ITERS).without_compute();
        for v in Variant::paper_set() {
            let ex = v.run(&cfg);
            nocompute.push(point(v.label(), g, &ex));
        }
    }
    out.push(("weak scaling, no compute".to_string(), nocompute));

    let mut strong = Vec::new();
    for &g in &GPU_COUNTS {
        let cfg = strong3d(512, 512, 514, g, ITERS);
        for v in Variant::paper_set() {
            let ex = v.run(&cfg);
            strong.push(point(v.label(), g, &ex));
        }
    }
    out.push(("strong scaling 512^3 total".to_string(), strong));

    let mut strong_nc = Vec::new();
    for &g in &GPU_COUNTS {
        let cfg = strong3d(512, 512, 514, g, ITERS).without_compute();
        for v in Variant::paper_set() {
            let ex = v.run(&cfg);
            strong_nc.push(point(v.label(), g, &ex));
        }
    }
    out.push(("strong scaling, no compute".to_string(), strong_nc));
    out
}

/// One DaCe comparison data point.
#[derive(Debug, Clone)]
pub struct DacePoint {
    /// GPU count.
    pub gpus: usize,
    /// Baseline (MPI, discrete) total time.
    pub baseline_total: SimDur,
    /// Baseline communication+sync busy time.
    pub baseline_comm: SimDur,
    /// CPU-Free total time.
    pub cpufree_total: SimDur,
    /// CPU-Free communication+sync busy time.
    pub cpufree_comm: SimDur,
    /// Total-time improvement % (paper's speedup formula).
    pub improvement_pct: f64,
    /// Communication latency improvement %.
    pub comm_improvement_pct: f64,
}

fn dace_point(gpus: usize, b: &dace_sim::Lowered, c: &dace_sim::Lowered) -> DacePoint {
    let imp = |base: SimDur, ours: SimDur| {
        if base.as_nanos() == 0 {
            0.0
        } else {
            (base.as_nanos() as f64 - ours.as_nanos() as f64) / base.as_nanos() as f64 * 100.0
        }
    };
    let bc = b.stats.comm_busy + b.stats.sync_busy;
    let cc = c.stats.comm_busy + c.stats.sync_busy;
    DacePoint {
        gpus,
        baseline_total: b.total,
        baseline_comm: bc,
        cpufree_total: c.total,
        cpufree_comm: cc,
        improvement_pct: imp(b.total, c.total),
        comm_improvement_pct: imp(bc, cc),
    }
}

/// Fig 6.3a: DaCe Jacobi 1D — discrete MPI baseline vs generated CPU-Free,
/// weak scaling (per-GPU chunk constant, device-saturating).
pub fn fig6_3a() -> Vec<DacePoint> {
    let chunk = 8 << 20; // ~8M elements per GPU: saturates the device
    let tsteps = 10u64;
    let mut rows = Vec::new();
    for &g in &GPU_COUNTS {
        let setup = Jacobi1dSetup::new(chunk, tsteps, g);
        let mut base = setup.sdfg.clone();
        gpu_transform(&mut base);
        let b = run_discrete(
            &base,
            g,
            &setup.user_bindings(),
            tsteps,
            ExecMode::TimingOnly,
            &|pe, a| setup.init_local(pe, a),
        )
        .expect("fig6.3a baseline");
        let mut free = setup.sdfg.clone();
        to_cpu_free(&mut free).expect("fig6.3a transform");
        let c = run_persistent(
            &free,
            g,
            &setup.user_bindings(),
            tsteps,
            ExecMode::TimingOnly,
            &|pe, a| setup.init_local(pe, a),
        )
        .expect("fig6.3a cpufree");
        rows.push(dace_point(g, &b, &c));
    }
    rows
}

/// Fig 6.3b: DaCe Jacobi 2D — four neighbors, strided east/west columns.
pub fn fig6_3b() -> Vec<DacePoint> {
    let (rows_per_pe, cols_per_pe) = (1400, 1400);
    let tsteps = 10u64;
    let mut out = Vec::new();
    for &g in &GPU_COUNTS {
        let setup = Jacobi2dSetup::new(rows_per_pe, cols_per_pe, tsteps, g);
        let mut base = setup.sdfg.clone();
        gpu_transform(&mut base);
        let b = run_discrete(
            &base,
            g,
            &setup.user_bindings(),
            tsteps,
            ExecMode::TimingOnly,
            &|pe, a| setup.init_local(pe, a),
        )
        .expect("fig6.3b baseline");
        let mut free = setup.sdfg.clone();
        to_cpu_free(&mut free).expect("fig6.3b transform");
        let c = run_persistent(
            &free,
            g,
            &setup.user_bindings(),
            tsteps,
            ExecMode::TimingOnly,
            &|pe, a| setup.init_local(pe, a),
        )
        .expect("fig6.3b cpufree");
        out.push(dace_point(g, &b, &c));
    }
    out
}

/// Ablation: §4.1.2 proportional TB allocation vs the naive fixed split,
/// on an unbalanced 3D domain (the case the paper says needs it).
pub fn ablation_tb_split() -> Vec<Point> {
    let mut rows = Vec::new();
    for &g in &GPU_COUNTS[1..] {
        // Flat, wide 3D domain: big boundary planes, few layers per GPU.
        let cfg = weak3d(1024, 1024, 18, g, ITERS);
        for v in [Variant::CpuFree, Variant::CpuFreeFixedSplit] {
            let ex = v.run(&cfg);
            rows.push(point(v.label(), g, &ex));
        }
    }
    rows
}

/// Ablation: single-kernel vs dual co-resident kernel design (§4).
pub fn ablation_dual_kernel() -> Vec<Point> {
    let mut rows = Vec::new();
    for &g in &GPU_COUNTS {
        let cfg = weak2d(2048, g, ITERS);
        for v in [Variant::CpuFree, Variant::CpuFreeDual] {
            let ex = v.run(&cfg);
            rows.push(point(v.label(), g, &ex));
        }
    }
    rows
}

/// Ablation (§5.3.2): transfer granularity of contiguous puts —
/// single-thread `putmem_signal_nbi` vs block-cooperative
/// `putmem_signal_block`.
///
/// Two regimes: (a) the DaCe Jacobi 2D rows (11 KB, latency-dominated —
/// the paper's configuration, where granularity is irrelevant) and (b) a
/// bandwidth-bound 3D-style plane ping-pong (2 MB per message, where the
/// cooperative transfer's higher effective bandwidth shows).
pub fn ablation_put_granularity() -> Vec<(String, SimDur, SimDur)> {
    use cpufree_core::launch_cpu_free;
    use dace_sim::transform::{
        gpu_persistent_kernel, mpi_to_nvshmem_with, nvshmem_array, PutGranularity,
    };
    use gpu_sim::{BlockGroup, CostModel, Machine};
    use nvshmem_sim::{ShmemCtx, ShmemWorld};
    use sim_des::{Cmp, SignalOp};

    let mut rows = Vec::new();

    // (a) DaCe Jacobi 2D at 4 GPUs.
    let setup = Jacobi2dSetup::new(1400, 1400, 10, 4);
    let run_dace = |gran: PutGranularity| {
        let mut sdfg = setup.sdfg.clone();
        gpu_transform(&mut sdfg);
        mpi_to_nvshmem_with(&mut sdfg, gran).unwrap();
        nvshmem_array(&mut sdfg);
        gpu_persistent_kernel(&mut sdfg).unwrap();
        run_persistent(
            &sdfg,
            4,
            &setup.user_bindings(),
            10,
            ExecMode::TimingOnly,
            &|pe, a| setup.init_local(pe, a),
        )
        .unwrap()
        .total
    };
    rows.push((
        "dace 2D rows (11 KB)".to_string(),
        run_dace(PutGranularity::SingleThread),
        run_dace(PutGranularity::Block),
    ));

    // (b) bandwidth-bound plane ping-pong: 512x512 f64 plane, 2 PEs.
    let plane = 512 * 512usize;
    let pingpong = |block: bool| -> SimDur {
        let machine = Machine::new(2, CostModel::a100_hgx(), ExecMode::TimingOnly);
        let world = ShmemWorld::init(&machine);
        let halo = world.malloc("plane", plane);
        let sig = world.signal(0);
        let end = launch_cpu_free(&machine, "pingpong", 1024, move |pe| {
            let world = world.clone();
            let halo = halo.clone();
            let sig = sig.clone();
            vec![BlockGroup::new("g", 1, move |k| {
                let mut sh = ShmemCtx::new(&world, k);
                let other = 1 - pe;
                for t in 1..=20u64 {
                    let src = halo.local(pe).clone();
                    if block {
                        sh.putmem_signal_block(
                            k,
                            &halo,
                            0,
                            &src,
                            0,
                            plane,
                            &sig,
                            SignalOp::Set,
                            t,
                            other,
                        );
                    } else {
                        sh.putmem_signal_nbi(
                            k,
                            &halo,
                            0,
                            &src,
                            0,
                            plane,
                            &sig,
                            SignalOp::Set,
                            t,
                            other,
                        );
                    }
                    sh.signal_wait_until(k, &sig, Cmp::Ge, t);
                }
            })]
        })
        .unwrap();
        end.since(sim_des::SimTime::ZERO)
    };
    rows.push((
        "plane ping-pong (2 MB)".to_string(),
        pingpong(false),
        pingpong(true),
    ));
    rows
}

/// Extension experiment: distributed Conjugate Gradient (2 allreduces + 1
/// halo exchange per iteration) — CPU-Free vs CPU-controlled.
pub fn cg_comparison() -> Vec<DacePoint> {
    use cpufree_solvers::{run_baseline as cg_base, run_cpu_free as cg_free, PoissonProblem};
    let mut rows = Vec::new();
    for &g in &GPU_COUNTS {
        let prob = PoissonProblem::new(1026, 128 * g + 2, ITERS, g);
        let b = cg_base(&prob, ExecMode::TimingOnly);
        let c = cg_free(&prob, ExecMode::TimingOnly);
        let imp = |base: SimDur, ours: SimDur| {
            (base.as_nanos() as f64 - ours.as_nanos() as f64) / base.as_nanos() as f64 * 100.0
        };
        let bc = b.stats.comm_busy + b.stats.sync_busy;
        let cc = c.stats.comm_busy + c.stats.sync_busy;
        rows.push(DacePoint {
            gpus: g,
            baseline_total: b.total,
            baseline_comm: bc,
            cpufree_total: c.total,
            cpufree_comm: cc,
            improvement_pct: imp(b.total, c.total),
            comm_improvement_pct: imp(bc, cc),
        });
    }
    rows
}

/// Interconnect sensitivity: the same small-domain comparison on the
/// default NVLink node and on a PCIe-only node. Shows which part of the
/// CPU-Free advantage comes from the control path (survives slow links)
/// and which from fast device-initiated transfers.
pub fn sensitivity_interconnect() -> Vec<Point> {
    use gpu_sim::CostModel;
    let mut rows = Vec::new();
    for (label, cost) in [
        ("nvlink", CostModel::a100_hgx()),
        ("pcie-only", CostModel::pcie_only()),
    ] {
        for v in [Variant::BaselineNvshmem, Variant::CpuFree] {
            let cfg = weak2d(256, 8, ITERS).with_cost(cost.clone());
            let ex = v.run(&cfg);
            rows.push(point(&format!("{} [{label}]", v.label()), 8, &ex));
        }
    }
    rows
}

/// One row of the topology contention sweep.
#[derive(Debug, Clone)]
pub struct TopoRow {
    /// Topology preset name.
    pub topology: String,
    /// Concurrent cross-partition pairs driving traffic.
    pub pairs: usize,
    /// Mean time per transfer on the busiest pair.
    pub per_transfer: SimDur,
    /// Virtual time until the last transfer drains.
    pub makespan: SimDur,
}

/// Topology sweep: `pairs` concurrent cross-partition P2P streams
/// (device `i` -> `i + n/2`) each push a burst of large transfers through
/// [`gpu_sim::Transport`]. Dedicated-link topologies (NVLink all-to-all)
/// stay flat as pairs are added; routed topologies with shared hops
/// (PCIe host bridges, ring arcs, the two-node NIC) queue and slow down.
pub fn topo_contention() -> Vec<TopoRow> {
    topo_contention_jobs(sim_des::default_jobs())
}

/// [`topo_contention`] on an explicit worker count: the (topology, pairs)
/// cells are independent (fresh link state each), so they fan out across
/// `jobs` workers; rows come back in deterministic cell order regardless
/// of completion order.
pub fn topo_contention_jobs(jobs: usize) -> Vec<TopoRow> {
    use gpu_sim::{CostModel, DevId, Topology, TopologyKind, Transport};
    use sim_des::SimTime;
    const N: usize = 8;
    const BYTES: u64 = 64 << 20;
    const REPS: u64 = 4;
    let cost = CostModel::a100_hgx();
    let cells: Vec<(TopologyKind, usize)> = TopologyKind::node_presets()
        .into_iter()
        .flat_map(|kind| [1usize, 2, 4].into_iter().map(move |pairs| (kind, pairs)))
        .collect();
    sim_des::par_map(jobs, cells, |(kind, pairs)| {
        // Fresh link state per cell: the sweep measures queueing within
        // one traffic pattern, not across cells.
        let topo = Topology::build(kind, N, &cost);
        let t = Transport::new(topo, cost.clone());
        let mut makespan = SimDur::ZERO;
        for i in 0..pairs {
            let mut now = SimTime::ZERO;
            for _ in 0..REPS {
                let dur = t.p2p(DevId(i), DevId(i + N / 2), BYTES, now);
                now += dur;
            }
            makespan = makespan.max(now.since(SimTime::ZERO));
        }
        TopoRow {
            topology: kind.name(),
            pairs,
            per_transfer: makespan / REPS,
            makespan,
        }
    })
}

/// Extension: the handwritten 2D **grid**-decomposed stencil (four
/// neighbors, strided east/west `iput`) — CPU-Free vs discrete baseline.
pub fn grid2d_comparison() -> Vec<(usize, SimDur, SimDur, f64)> {
    use stencil_lab::{run_grid2d_baseline, run_grid2d_cpu_free, Grid2DConfig};
    let mut rows = Vec::new();
    for (pgrid, n) in [((1usize, 2usize), 2usize), ((2, 2), 4), ((2, 4), 8)] {
        let cfg = Grid2DConfig::new(512, 512, pgrid, ITERS).timing_only();
        let free = run_grid2d_cpu_free(&cfg);
        let base = run_grid2d_baseline(&cfg);
        rows.push((
            n,
            base.total,
            free.total,
            speedup_pct(base.total, free.total),
        ));
    }
    rows
}

/// One row of the per-variant overhead breakdown.
#[derive(Debug, Clone)]
pub struct BreakdownRow {
    /// Variant label.
    pub series: String,
    /// Per-iteration total time.
    pub per_iter: SimDur,
    /// Kernel-launch latency per iteration (host + device start).
    pub launch: SimDur,
    /// Host API overhead per iteration.
    pub api: SimDur,
    /// Synchronization busy time per iteration (per device on average).
    pub sync: SimDur,
    /// Communication busy time per iteration (per device on average).
    pub comm: SimDur,
}

/// Where each variant's time goes on the communication-bound small domain
/// (8 GPUs, no compute) — the anatomy behind Fig 2.2a.
pub fn overhead_breakdown() -> Vec<BreakdownRow> {
    let cfg = weak2d(256, 8, ITERS).without_compute();
    let mut rows = Vec::new();
    let mut variants = Variant::paper_set().to_vec();
    variants.push(Variant::CpuFreeDual);
    for v in variants {
        let ex = v.run(&cfg);
        let per = |d: SimDur| d / ITERS;
        rows.push(BreakdownRow {
            series: v.label().to_string(),
            per_iter: ex.stats.per_iter,
            launch: per(ex.stats.launch_total),
            api: per(ex.stats.api_total),
            sync: per(ex.stats.sync_busy),
            comm: per(ex.stats.comm_busy),
        });
    }
    rows
}

/// One row of the fault-injection / recovery-overhead experiment.
#[derive(Debug, Clone)]
pub struct FaultRow {
    /// Workload label (`jacobi` or `cg`).
    pub workload: String,
    /// Fault scenario label.
    pub scenario: String,
    /// End-to-end virtual time of the fault-injected run.
    pub total: SimDur,
    /// Recovery overhead vs. the fault-free FT run, in percent.
    pub overhead_pct: f64,
    /// Rollback rounds performed.
    pub rollbacks: u64,
    /// Extra put attempts spent on dropped deliveries.
    pub retries: u64,
    /// Whether the result matched the fault-free run bit for bit.
    pub bit_identical: bool,
}

/// Recovery overhead of the fault-tolerant CPU-Free runners: Jacobi and CG
/// under transient link degradation, dropped signal deliveries, and an
/// agent crash with checkpoint/restart — each verified bit-identical to the
/// fault-free run, with the virtual-time cost of recovery reported.
pub fn fault_recovery_overhead() -> Vec<FaultRow> {
    use cpufree_solvers::{run_cpu_free_ft as run_cg_ft, CgFtConfig, PoissonProblem};
    use gpu_sim::{CrashFault, DropFault, FaultPlan, LinkFault};
    use sim_des::{us, SimTime};
    use stencil_lab::{run_cpu_free_ft as run_jacobi_ft, FtConfig};

    let scenarios = |horizon: f64| {
        [
            ("fault-free", FaultPlan::new()),
            (
                "link degraded 0-1",
                FaultPlan::new().with_link(LinkFault {
                    a: 0,
                    b: 1,
                    from: SimTime::ZERO,
                    until: SimTime::ZERO + us(horizon),
                    latency_mult: 5.0,
                    bandwidth_mult: 0.25,
                }),
            ),
            (
                "dropped signals 1->2",
                FaultPlan::new().with_drop(DropFault {
                    from: 1,
                    to: 2,
                    first_attempt: 3,
                    count: 2,
                }),
            ),
            (
                "crash node 2 @ iter 6",
                FaultPlan::new().with_crash(CrashFault {
                    node: 2,
                    at_iteration: 6,
                }),
            ),
        ]
    };
    let mut rows = Vec::new();

    // Jacobi (2D5pt, 4 PEs, Full mode so bit-identity is checked on data).
    let base = StencilConfig {
        nx: 64,
        ny: 62,
        nz: 1,
        iterations: 10,
        n_gpus: 4,
        exec: ExecMode::Full,
        no_compute: false,
        threads_per_block: 1024,
        cost: None,
        topology: None,
        jitter: None,
        check: false,
    };
    let clean = run_jacobi_ft(&FtConfig::new(base.clone(), FaultPlan::new()))
        .expect("fault-free jacobi FT run failed");
    for (name, plan) in scenarios(400.0) {
        let ex = run_jacobi_ft(&FtConfig::new(base.clone(), plan))
            .expect("jacobi FT run failed to recover");
        rows.push(FaultRow {
            workload: "jacobi".into(),
            scenario: name.into(),
            total: ex.exec.total,
            overhead_pct: overhead_pct(clean.exec.total, ex.exec.total),
            rollbacks: ex.rollbacks,
            retries: ex.retries,
            bit_identical: ex.exec.checksum == clean.exec.checksum && ex.exec.max_err == Some(0.0),
        });
    }

    // CG (2D Poisson, 4 PEs).
    let prob = PoissonProblem::new(64, 62, 10, 4);
    let cg_clean = run_cg_ft(
        &CgFtConfig::new(prob.clone(), FaultPlan::new()),
        ExecMode::Full,
    )
    .expect("fault-free CG FT run failed");
    for (name, plan) in scenarios(400.0) {
        let ex = run_cg_ft(&CgFtConfig::new(prob.clone(), plan), ExecMode::Full)
            .expect("CG FT run failed to recover");
        rows.push(FaultRow {
            workload: "cg".into(),
            scenario: name.into(),
            total: ex.result.total,
            overhead_pct: overhead_pct(cg_clean.result.total, ex.result.total),
            rollbacks: ex.rollbacks,
            retries: ex.retries,
            bit_identical: ex.result.final_rho.to_bits() == cg_clean.result.final_rho.to_bits()
                && ex.result.verify(&prob) == 0.0,
        });
    }
    rows
}

fn overhead_pct(clean: SimDur, faulted: SimDur) -> f64 {
    (faulted.as_nanos() as f64 / clean.as_nanos() as f64 - 1.0) * 100.0
}

/// One row of the checker-overhead table: the same workload run with the
/// happens-before checker off and on. The checker charges no virtual time
/// (by construction — it only observes), so the cost is host wall clock.
#[derive(Debug, Clone)]
pub struct CheckRow {
    /// Workload label.
    pub workload: String,
    /// Host wall clock of the unchecked run.
    pub wall_off: std::time::Duration,
    /// Host wall clock of the checked run.
    pub wall_on: std::time::Duration,
    /// Happens-before events recorded by the checked run.
    pub events: usize,
    /// Memory accesses race-checked.
    pub accesses: usize,
    /// The checked run raised no diagnostics.
    pub clean: bool,
    /// Virtual time and numerics are identical with the checker on.
    pub bit_identical: bool,
}

/// Correctness-tooling overhead: rerun Jacobi and CG with
/// [`Machine::with_checker`](gpu_sim::Machine::with_checker) enabled and
/// compare host wall clock against the unchecked run, asserting virtual
/// time and numerics are untouched.
pub fn check_overhead() -> Vec<CheckRow> {
    use std::time::Instant;
    let mut rows = Vec::new();
    {
        let cfg = StencilConfig::square2d(66, 20, 4);
        let t0 = Instant::now();
        let off = Variant::CpuFree.run(&cfg);
        let wall_off = t0.elapsed();
        let t1 = Instant::now();
        let on = Variant::CpuFree.run(&cfg.clone().with_check());
        let wall_on = t1.elapsed();
        let report = on.check.as_ref().expect("checker enabled");
        rows.push(CheckRow {
            workload: "jacobi2d 66x66 x20, 4 GPUs".into(),
            wall_off,
            wall_on,
            events: report.events,
            accesses: report.accesses,
            clean: report.clean(),
            bit_identical: on.total == off.total && on.checksum == off.checksum,
        });
    }
    {
        let prob = cpufree_solvers::PoissonProblem::new(34, 34, 15, 4);
        let t0 = Instant::now();
        let off = cpufree_solvers::run_cpu_free(&prob, ExecMode::Full);
        let wall_off = t0.elapsed();
        let t1 = Instant::now();
        let on = cpufree_solvers::run_cpu_free(&prob.clone().with_check(), ExecMode::Full);
        let wall_on = t1.elapsed();
        let report = on.check.as_ref().expect("checker enabled");
        rows.push(CheckRow {
            workload: "cg 34x34 x15, 4 PEs".into(),
            wall_off,
            wall_on,
            events: report.events,
            accesses: report.accesses,
            clean: report.clean(),
            bit_identical: on.total == off.total
                && on.final_rho.to_bits() == off.final_rho.to_bits()
                && on.x_owned == off.x_owned,
        });
    }
    rows
}

/// The paper's speedup formula, in percent.
pub fn speedup_pct(baseline: SimDur, ours: SimDur) -> f64 {
    cpufree_core::RunStats::speedup_pct(baseline, ours)
}

/// Statically verify every shipped SDFG program — as the frontend builds
/// it, after `gpu_transform`, and after the full CPU-Free pipeline (both
/// put granularities) — at each GPU count of [`GPU_COUNTS`]. Returns one
/// report per (program, stage, GPU count); a conforming corpus is all
/// clean. The `figures verify` subcommand and the CI `verify` job gate on
/// this.
pub fn verify_corpus() -> Vec<dace_sim::verify::VerifyReport> {
    verify_corpus_jobs(sim_des::default_jobs())
}

/// [`verify_corpus`] on an explicit worker count: each (program, GPU count)
/// cell verifies its four pipeline stages independently on the pool; the
/// flattened report list keeps the serial emission order.
pub fn verify_corpus_jobs(jobs: usize) -> Vec<dace_sim::verify::VerifyReport> {
    use dace_sim::transform::{
        gpu_persistent_kernel, mpi_to_nvshmem_with, nvshmem_array, PutGranularity,
    };
    use dace_sim::verify::{verify_sdfg, VerifyReport};
    use dace_sim::{Bindings, Sdfg};

    fn staged(
        name: &str,
        sdfg: &Sdfg,
        n_pes: usize,
        user: &Bindings,
        stage: &str,
        out: &mut Vec<VerifyReport>,
    ) {
        let mut report = verify_sdfg(sdfg, n_pes, user);
        report.program = format!("{name}/{stage} @{n_pes}gpus");
        out.push(report);
    }

    let cells: Vec<(usize, &'static str)> = GPU_COUNTS
        .iter()
        .flat_map(|&g| [(g, "jacobi1d"), (g, "jacobi2d")])
        .collect();
    let per_cell = sim_des::par_map(jobs, cells, |(g, name)| {
        let (frontend, user): (Sdfg, Bindings) = match name {
            "jacobi1d" => {
                let s = Jacobi1dSetup::new(64, 5, g);
                (s.sdfg.clone(), s.user_bindings())
            }
            _ => {
                let s = Jacobi2dSetup::new(8, 8, 5, g);
                (s.sdfg.clone(), s.user_bindings())
            }
        };
        let mut out = Vec::new();
        staged(name, &frontend, g, &user, "frontend", &mut out);

        let mut gpu = frontend.clone();
        gpu_transform(&mut gpu);
        staged(name, &gpu, g, &user, "gpu", &mut out);

        let mut free = frontend.clone();
        to_cpu_free(&mut free).expect("pipeline");
        staged(name, &free, g, &user, "cpu_free", &mut out);

        let mut block = frontend.clone();
        gpu_transform(&mut block);
        mpi_to_nvshmem_with(&mut block, PutGranularity::Block).expect("mpi_to_nvshmem");
        nvshmem_array(&mut block);
        gpu_persistent_kernel(&mut block).expect("gpu_persistent_kernel");
        staged(name, &block, g, &user, "cpu_free_block", &mut out);
        out
    });
    per_cell.into_iter().flatten().collect()
}

/// One row of the DES-core micro-benchmark (`figures des_core`).
///
/// `end_ns` and `events` come from the deterministic engine and are
/// CI-gated against the committed `BENCH_des_core.json`; `wall` is host
/// wall clock and is recorded as a snapshot only (the events/sec
/// trajectory), never diffed.
#[derive(Debug, Clone)]
pub struct DesCoreRow {
    /// Workload name.
    pub name: &'static str,
    /// Virtual end time of the run, nanoseconds (deterministic).
    pub end_ns: u64,
    /// Engine events processed (deterministic).
    pub events: u64,
    /// Host wall clock of the run (measured).
    pub wall: std::time::Duration,
}

impl DesCoreRow {
    /// Measured engine throughput, events per host second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// [`des_core_rows_with`] at the default intra-run shard count (4).
pub fn des_core_rows() -> Vec<DesCoreRow> {
    des_core_rows_with(4)
}

/// The DES hot-path workloads behind the committed events/sec trajectory:
/// a two-agent signal ping-pong (pure handoff cost), a trace-heavy busy
/// loop (the interned-label span path), an 8-agent barrier storm, a batch
/// of whole simulations on the [`sim_des::par_map`] pool, and a 64-agent
/// topology-partitioned ring allreduce run both serially and on a
/// [`sim_des::ShardedEngine`] with `shards` partitions.
///
/// The two ring rows are asserted bit-identical in `end_ns`/`events` at
/// every shard count before returning (the `@sharded` row's deterministic
/// block entry is therefore independent of `shards` — only its measured
/// wall clock varies), so the committed deterministic block diffs clean no
/// matter which `--shards` CI runs with.
pub fn des_core_rows_with(shards: usize) -> Vec<DesCoreRow> {
    use sim_des::{ns, Category, Cmp, Engine, SignalOp};
    use std::time::Instant;

    fn timed(name: &'static str, f: impl Fn() -> (u64, u64)) -> DesCoreRow {
        let _ = f(); // warmup
        let t0 = Instant::now();
        let (end_ns, events) = f();
        DesCoreRow {
            name,
            end_ns,
            events,
            wall: t0.elapsed(),
        }
    }

    let rows = vec![
        timed("pingpong_2x2000", || {
            let engine = Engine::new();
            engine.set_trace_enabled(false);
            let f1 = engine.flag(0);
            let f2 = engine.flag(0);
            engine.spawn("a", move |ctx| {
                for i in 1..=2000u64 {
                    ctx.signal(f1, SignalOp::Set, i);
                    ctx.wait_flag(f2, Cmp::Ge, i);
                }
            });
            engine.spawn("b", move |ctx| {
                for i in 1..=2000u64 {
                    ctx.wait_flag(f1, Cmp::Ge, i);
                    ctx.signal(f2, SignalOp::Set, i);
                }
            });
            let end = engine.run().expect("pingpong run");
            (end.as_nanos(), engine.events_processed())
        }),
        timed("trace_busy_4x1000", || {
            let engine = Engine::new();
            for a in 0..4u64 {
                engine.spawn(format!("agent{a}"), move |ctx| {
                    let label = ctx.intern("phase");
                    for _ in 0..1000 {
                        ctx.busy(Category::Compute, label, ns(100));
                    }
                });
            }
            let end = engine.run().expect("trace_busy run");
            (end.as_nanos(), engine.events_processed())
        }),
        timed("barrier_8x200", || {
            let engine = Engine::new();
            engine.set_trace_enabled(false);
            let bar = engine.barrier(8);
            for i in 0..8 {
                engine.spawn(format!("w{i}"), move |ctx| {
                    for _ in 0..200 {
                        ctx.advance(ns(50));
                        ctx.barrier(bar);
                    }
                });
            }
            let end = engine.run().expect("barrier run");
            (end.as_nanos(), engine.events_processed())
        }),
        timed("batch_8x_pingpong_2x200", || {
            let runs = sim_des::par_map(sim_des::default_jobs(), (0..8u64).collect(), |_| {
                let engine = Engine::new();
                engine.set_trace_enabled(false);
                let f1 = engine.flag(0);
                let f2 = engine.flag(0);
                engine.spawn("a", move |ctx| {
                    for i in 1..=200u64 {
                        ctx.signal(f1, SignalOp::Set, i);
                        ctx.wait_flag(f2, Cmp::Ge, i);
                    }
                });
                engine.spawn("b", move |ctx| {
                    for i in 1..=200u64 {
                        ctx.wait_flag(f1, Cmp::Ge, i);
                        ctx.signal(f2, SignalOp::Set, i);
                    }
                });
                let end = engine.run().expect("batch pingpong run");
                (end.as_nanos(), engine.events_processed())
            });
            let end = runs.iter().map(|(e, _)| *e).max().unwrap_or(0);
            let events = runs.iter().map(|(_, n)| *n).sum();
            (end, events)
        }),
        timed("ring_allreduce_64x63@serial", || {
            let run = sharded::ring_allreduce_plain(gpu_sim::TopologyKind::NvlinkRing, 64, 1);
            (run.end_ns, run.events)
        }),
        timed("ring_allreduce_64x63@sharded", move || {
            let (run, _) =
                sharded::ring_allreduce(gpu_sim::TopologyKind::NvlinkRing, 64, 1, shards);
            (run.end_ns, run.events)
        }),
    ];
    // The sharded ring must be indistinguishable from the serial oracle in
    // every deterministic quantity — the whole point of the conservative
    // engine. Checked here so `figures -- des_core` can never publish a
    // diverged pair.
    let serial = &rows[rows.len() - 2];
    let sharded_row = &rows[rows.len() - 1];
    assert_eq!(
        (serial.end_ns, serial.events),
        (sharded_row.end_ns, sharded_row.events),
        "sharded ring diverged from serial at shards={shards}"
    );
    rows
}

/// Minimal wall-clock micro-bench harness (std-only; the workspace builds
/// offline, so the `benches/` binaries use this instead of criterion).
pub mod harness {
    use std::time::Instant;

    /// Runs closures repeatedly and prints min/median wall-clock times.
    pub struct Harness {
        samples: usize,
    }

    impl Harness {
        /// A harness taking `samples` timed samples per benchmark.
        pub fn new(samples: usize) -> Self {
            Harness {
                samples: samples.max(1),
            }
        }

        /// Time `f` (one warmup + `samples` measured runs) and print a row.
        /// The closure's return value is consumed to keep it live.
        pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) {
            let _ = f(); // warmup
            let mut times: Vec<u128> = (0..self.samples)
                .map(|_| {
                    let t0 = Instant::now();
                    let out = f();
                    let dt = t0.elapsed().as_nanos();
                    drop(out);
                    dt
                })
                .collect();
            times.sort_unstable();
            let min = times[0];
            let median = times[times.len() / 2];
            println!(
                "{name:<44} min {:>12}  median {:>12}",
                fmt_ns(min),
                fmt_ns(median)
            );
        }
    }

    fn fmt_ns(ns: u128) -> String {
        if ns >= 1_000_000_000 {
            format!("{:.3} s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            format!("{:.3} ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            format!("{:.3} us", ns as f64 / 1e3)
        } else {
            format!("{ns} ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak2d_scales_slab_axis() {
        let c1 = weak2d(256, 1, 10);
        let c8 = weak2d(256, 8, 10);
        assert_eq!(c1.ny, 256);
        assert_eq!(c8.ny, 254 * 8 + 2);
        assert_eq!(c8.nx, 256);
    }

    #[test]
    fn fig2_2a_cpu_free_dominates() {
        let rows = fig2_2a();
        for g in GPU_COUNTS {
            if g == 1 {
                continue;
            }
            let base = rows
                .iter()
                .find(|p| p.gpus == g && p.series.contains("Overlap"))
                .unwrap();
            let free = rows
                .iter()
                .find(|p| p.gpus == g && p.series.contains("CPU-Free"))
                .unwrap();
            assert!(
                free.per_iter.as_nanos() * 3 < base.per_iter.as_nanos(),
                "at {g} GPUs: {} vs {}",
                free.per_iter,
                base.per_iter
            );
        }
    }
}
