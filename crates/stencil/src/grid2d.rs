//! 2D **grid** decomposition of the 2D5pt Jacobi stencil — the handwritten
//! counterpart of the DaCe Jacobi-2D benchmark: every PE has up to four
//! neighbors, north/south halos are contiguous rows (put-with-signal) and
//! west/east halos are **strided columns** exchanged with `iput` + manual
//! signal (§5.3.1's no-combined-variant path), all device-initiated.
//!
//! Design note: unlike the slab solver's independent per-direction comm
//! groups, the boundary ring here is computed by ONE comm group per PE.
//! With four directions the corner-adjacent points of each strip read TWO
//! halos (e.g. point (1,1) reads both the north halo row and the west halo
//! column), so independent per-direction groups would need extra
//! cross-group ordering to keep a neighbor's next-iteration overwrite from
//! racing a sibling group's read. A single ring group preserves the
//! §4.1.1 semaphore flow-control argument unchanged: every signal a PE
//! sends certifies that it has consumed ALL the halos feeding that ring.

use crate::config::Workload;
use crate::grid;
use cpufree_core::{launch_cpu_free, RunStats, TbAllocation};
use gpu_sim::{BlockGroup, CostModel, DevId, ExecMode, KernelCtx, Machine};
use nvshmem_sim::{ShmemCtx, ShmemWorld, SymArray, SymSignal};
use sim_des::{Category, Cmp, SignalOp, SimDur, SimTime};
use std::sync::Arc;

/// Configuration of a 2D-grid-decomposed stencil experiment.
#[derive(Debug, Clone)]
pub struct Grid2DConfig {
    /// Interior rows per PE.
    pub rows: usize,
    /// Interior columns per PE.
    pub cols: usize,
    /// Process grid (PE rows × PE columns); `pr * pc` PEs total.
    pub pgrid: (usize, usize),
    /// Time steps.
    pub iterations: u64,
    /// Functional or timing-only execution.
    pub exec: ExecMode,
}

impl Grid2DConfig {
    /// Construct and validate.
    pub fn new(rows: usize, cols: usize, pgrid: (usize, usize), iterations: u64) -> Grid2DConfig {
        assert!(rows >= 2 && cols >= 2, "each PE needs a 2x2 interior");
        assert!(pgrid.0 >= 1 && pgrid.1 >= 1);
        Grid2DConfig {
            rows,
            cols,
            pgrid,
            iterations,
            exec: ExecMode::Full,
        }
    }

    /// Builder-style: timing-only execution.
    pub fn timing_only(mut self) -> Self {
        self.exec = ExecMode::TimingOnly;
        self
    }

    /// Number of PEs.
    pub fn n_pes(&self) -> usize {
        self.pgrid.0 * self.pgrid.1
    }

    /// Global grid extents (rows, cols) including the fixed boundary.
    pub fn global(&self) -> (usize, usize) {
        (self.pgrid.0 * self.rows + 2, self.pgrid.1 * self.cols + 2)
    }

    fn coords(&self, pe: usize) -> (usize, usize) {
        (pe / self.pgrid.1, pe % self.pgrid.1)
    }
}

/// The four neighbor directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    North,
    South,
    West,
    East,
}

struct Neighbors {
    north: Option<usize>,
    south: Option<usize>,
    west: Option<usize>,
    east: Option<usize>,
}

fn neighbors(cfg: &Grid2DConfig, pe: usize) -> Neighbors {
    let (pr, pc) = cfg.pgrid;
    let (i, j) = cfg.coords(pe);
    Neighbors {
        north: (i > 0).then(|| pe - pc),
        south: (i + 1 < pr).then(|| pe + pc),
        west: (j > 0).then(|| pe - 1),
        east: (j + 1 < pc).then(|| pe + 1),
    }
}

/// Result of a grid-decomposed run.
#[derive(Debug)]
pub struct Grid2DRun {
    /// End-to-end virtual time.
    pub total: SimDur,
    /// Trace-derived measurements.
    pub stats: RunStats,
    /// Max abs deviation from the sequential reference (`None` when
    /// timing-only).
    pub max_err: Option<f64>,
}

struct Dom {
    cfg: Grid2DConfig,
    machine: Machine,
    world: ShmemWorld,
    gen: [SymArray; 2],
    sig: [SymSignal; 4], // indexed by Dir as written below
}

impl Dom {
    fn sig_of(&self, d: Dir) -> &SymSignal {
        &self.sig[match d {
            Dir::North => 0,
            Dir::South => 1,
            Dir::West => 2,
            Dir::East => 3,
        }]
    }

    fn new(cfg: &Grid2DConfig) -> Dom {
        let machine = Machine::new(cfg.n_pes(), CostModel::a100_hgx(), cfg.exec);
        let world = ShmemWorld::init(&machine);
        let w = cfg.cols + 2;
        let len = (cfg.rows + 2) * w;
        let gen = [world.malloc("g2d.a", len), world.malloc("g2d.b", len)];
        let sig = [
            world.signal(0),
            world.signal(0),
            world.signal(0),
            world.signal(0),
        ];
        let dom = Dom {
            cfg: cfg.clone(),
            machine,
            world,
            gen,
            sig,
        };
        dom.initialize();
        dom
    }

    fn initialize(&self) {
        if self.cfg.exec == ExecMode::TimingOnly {
            return;
        }
        let (gr, gc) = self.cfg.global();
        let init = grid::init2d(gc, gr);
        let w = self.cfg.cols + 2;
        for pe in 0..self.cfg.n_pes() {
            let (pi, pj) = self.cfg.coords(pe);
            let mut local = vec![0.0; (self.cfg.rows + 2) * w];
            for i in 0..self.cfg.rows + 2 {
                for j in 0..w {
                    local[i * w + j] = init[(pi * self.cfg.rows + i) * gc + pj * self.cfg.cols + j];
                }
            }
            for g in &self.gen {
                g.local(pe).write_slice(0, &local);
            }
        }
    }

    fn read_gen(&self, t: u64) -> &SymArray {
        &self.gen[((t + 1) % 2) as usize]
    }

    fn write_gen(&self, t: u64) -> &SymArray {
        &self.gen[(t % 2) as usize]
    }

    fn verify(&self) -> f64 {
        let (gr, gc) = self.cfg.global();
        let reference = grid::reference2d(gc, gr, self.cfg.iterations);
        let w = self.cfg.cols + 2;
        let finals = &self.gen[(self.cfg.iterations % 2) as usize];
        let mut worst = 0.0f64;
        for pe in 0..self.cfg.n_pes() {
            let (pi, pj) = self.cfg.coords(pe);
            let local = finals.local(pe).to_vec();
            for i in 1..=self.cfg.rows {
                for j in 1..=self.cfg.cols {
                    let gidx = (pi * self.cfg.rows + i) * gc + pj * self.cfg.cols + j;
                    worst = worst.max((local[i * w + j] - reference[gidx]).abs());
                }
            }
        }
        worst
    }

    fn collect(&self, end: SimTime) -> Grid2DRun {
        let total = end.since(SimTime::ZERO);
        let stats = RunStats::from_trace(&self.machine.trace(), total, self.cfg.iterations);
        let max_err = (self.cfg.exec == ExecMode::Full).then(|| self.verify());
        Grid2DRun {
            total,
            stats,
            max_err,
        }
    }
}

/// The device-side halo exchange + ring compute of one iteration.
#[allow(clippy::too_many_arguments)]
fn ring_iteration(
    k: &mut KernelCtx<'_>,
    sh: &mut ShmemCtx,
    dom: &Dom,
    pe: usize,
    nb: &Neighbors,
    wload: &Workload,
    ring_frac: f64,
    t: u64,
) {
    let (rows, cols) = (dom.cfg.rows, dom.cfg.cols);
    let w = cols + 2;
    // ① Wait for every existing neighbor's halo of the previous step.
    if nb.north.is_some() {
        sh.signal_wait_until(k, dom.sig_of(Dir::North), Cmp::Ge, t - 1);
    }
    if nb.south.is_some() {
        sh.signal_wait_until(k, dom.sig_of(Dir::South), Cmp::Ge, t - 1);
    }
    if nb.west.is_some() {
        sh.signal_wait_until(k, dom.sig_of(Dir::West), Cmp::Ge, t - 1);
    }
    if nb.east.is_some() {
        sh.signal_wait_until(k, dom.sig_of(Dir::East), Cmp::Ge, t - 1);
    }
    // ② Compute the boundary ring.
    let ring_points = (2 * cols + 2 * rows.saturating_sub(2)) as u64;
    let read = dom.read_gen(t).local(pe).clone();
    let write = dom.write_gen(t).local(pe).clone();
    let dur = wload.sweep_dur(k.cost(), ring_points, ring_frac.max(0.01), 1.0, 1.0);
    if dur > SimDur::ZERO {
        k.busy(Category::Compute, "ring", dur);
    }
    if k.exec_mode() == ExecMode::Full {
        read.with(|src| {
            write.with_mut(|dst| {
                grid::sweep2d_rect(src, dst, w, (1, 1), (1, cols));
                grid::sweep2d_rect(src, dst, w, (rows, rows), (1, cols));
                grid::sweep2d_rect(src, dst, w, (2, rows - 1), (1, 1));
                grid::sweep2d_rect(src, dst, w, (2, rows - 1), (cols, cols));
            })
        });
    }
    // ③ Commit halos to the neighbors and signal.
    let wg = dom.write_gen(t);
    if let Some(n) = nb.north {
        // My row 1 -> north's south halo (row rows+1); I am its SOUTH side.
        sh.putmem_signal_nbi(
            k,
            wg,
            (rows + 1) * w + 1,
            wg.local(pe),
            w + 1,
            cols,
            dom.sig_of(Dir::South),
            SignalOp::Set,
            t,
            n,
        );
    }
    if let Some(s) = nb.south {
        sh.putmem_signal_nbi(
            k,
            wg,
            1,
            wg.local(pe),
            rows * w + 1,
            cols,
            dom.sig_of(Dir::North),
            SignalOp::Set,
            t,
            s,
        );
    }
    if let Some(west) = nb.west {
        // Strided column: iput + quiet + manual signal (§5.3.1).
        sh.iput(k, wg, w + (cols + 1), w, wg.local(pe), w + 1, w, rows, west);
        sh.quiet(k);
        sh.signal_op(k, dom.sig_of(Dir::East), SignalOp::Set, t, west);
    }
    if let Some(east) = nb.east {
        sh.iput(k, wg, w, w, wg.local(pe), w + cols, w, rows, east);
        sh.quiet(k);
        sh.signal_op(k, dom.sig_of(Dir::West), SignalOp::Set, t, east);
    }
}

/// CPU-Free 2D-grid-decomposed Jacobi: one persistent kernel per PE with a
/// boundary-ring comm group and an inner group.
pub fn run_grid2d_cpu_free(cfg: &Grid2DConfig) -> Grid2DRun {
    let dom = Arc::new(Dom::new(cfg));
    let tb_total = dom.machine.spec().sm_count as u64;
    let dom_l = Arc::clone(&dom);
    let end = launch_cpu_free(&dom.machine.clone(), "grid2d", 1024, move |pe| {
        let dom = Arc::clone(&dom_l);
        let cfg = dom.cfg.clone();
        let nb = neighbors(&cfg, pe);
        let wload = Workload::jacobi2d(cfg.cols + 2, cfg.rows, false);
        let ring_points = (2 * cfg.cols + 2 * cfg.rows.saturating_sub(2)) as u64;
        let inner_points = (cfg.rows * cfg.cols) as u64 - ring_points;
        let alloc = TbAllocation::proportional(tb_total, inner_points, ring_points / 2);
        let ring_frac = 2.0 * alloc.boundary_fraction();
        let inner_frac = alloc.inner_fraction();
        let dom_ring = Arc::clone(&dom);
        let dom_inner = Arc::clone(&dom);
        vec![
            BlockGroup::new("ring", 2 * alloc.boundary_tbs, move |k| {
                let world = dom_ring.world.clone();
                let mut sh = ShmemCtx::new(&world, k);
                let wload = wload;
                for t in 1..=dom_ring.cfg.iterations {
                    ring_iteration(k, &mut sh, &dom_ring, pe, &nb, &wload, ring_frac, t);
                    k.grid_sync();
                }
            }),
            BlockGroup::new("inner", alloc.inner_tbs, move |k| {
                let cfg = dom_inner.cfg.clone();
                let w = cfg.cols + 2;
                let wload = Workload::jacobi2d(w, cfg.rows, false);
                for t in 1..=cfg.iterations {
                    let read = dom_inner.read_gen(t).local(pe).clone();
                    let write = dom_inner.write_gen(t).local(pe).clone();
                    let dur =
                        wload.sweep_dur(k.cost(), inner_points, inner_frac.max(0.01), 1.0, 1.0);
                    if dur > SimDur::ZERO {
                        k.busy(Category::Compute, "inner", dur);
                    }
                    if k.exec_mode() == ExecMode::Full {
                        grid::sweep2d_rect_buf(
                            &read,
                            &write,
                            w,
                            (2, cfg.rows - 1),
                            (2, cfg.cols - 1),
                        );
                    }
                    k.grid_sync();
                }
            }),
        ]
    })
    .expect("grid2d cpu-free run failed");
    dom.collect(end)
}

/// CPU-controlled comparison: the same exchange in discrete kernels — one
/// compute+put kernel and one wait kernel per time step, host-launched.
pub fn run_grid2d_baseline(cfg: &Grid2DConfig) -> Grid2DRun {
    let dom = Arc::new(Dom::new(cfg));
    let n = cfg.n_pes();
    for pe in 0..n {
        let dom = Arc::clone(&dom);
        dom.machine
            .clone()
            .spawn_host(format!("rank{pe}"), move |host| {
                let stream = host.create_stream(DevId(pe), "comp");
                let cfg = dom.cfg.clone();
                let nb = Arc::new(neighbors(&cfg, pe));
                let w = cfg.cols + 2;
                let wload = Workload::jacobi2d(w, cfg.rows, false);
                let ring_points = (2 * cfg.cols + 2 * cfg.rows.saturating_sub(2)) as u64;
                let inner_points = (cfg.rows * cfg.cols) as u64 - ring_points;
                for t in 1..=cfg.iterations {
                    let dom2 = Arc::clone(&dom);
                    let nb2 = Arc::clone(&nb);
                    host.launch(&stream, "jacobi_grid", move |k| {
                        let world = dom2.world.clone();
                        let mut sh = ShmemCtx::new(&world, k);
                        // Boundary ring + puts (whole device, discrete).
                        ring_iteration(k, &mut sh, &dom2, pe, &nb2, &wload, 1.0, t);
                        // Inner region.
                        let pen = k.cost().discrete_cache_penalty;
                        let dur = wload.sweep_dur(k.cost(), inner_points, 1.0, 1.0, pen);
                        if dur > SimDur::ZERO {
                            k.busy(Category::Compute, "inner", dur);
                        }
                        if k.exec_mode() == ExecMode::Full {
                            let read = dom2.read_gen(t).local(pe).clone();
                            let write = dom2.write_gen(t).local(pe).clone();
                            grid::sweep2d_rect_buf(
                                &read,
                                &write,
                                w,
                                (2, cfg.rows - 1),
                                (2, cfg.cols - 1),
                            );
                        }
                    });
                    host.sync_stream(&stream);
                }
            });
    }
    let end = dom.machine.run().expect("grid2d baseline run failed");
    dom.collect(end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbors_of_grid_positions() {
        let cfg = Grid2DConfig::new(4, 4, (2, 3), 1);
        let nb0 = neighbors(&cfg, 0); // top-left
        assert_eq!(
            (nb0.north, nb0.south, nb0.west, nb0.east),
            (None, Some(3), None, Some(1))
        );
        let nb4 = neighbors(&cfg, 4); // bottom-middle
        assert_eq!(
            (nb4.north, nb4.south, nb4.west, nb4.east),
            (Some(1), None, Some(3), Some(5))
        );
    }

    #[test]
    fn cpu_free_grid2d_exact_2x2() {
        let cfg = Grid2DConfig::new(6, 7, (2, 2), 8);
        let out = run_grid2d_cpu_free(&cfg);
        assert_eq!(out.max_err, Some(0.0));
    }

    #[test]
    fn cpu_free_grid2d_exact_rectangular() {
        for pgrid in [(1usize, 2usize), (2, 1), (2, 4), (3, 2)] {
            let cfg = Grid2DConfig::new(5, 4, pgrid, 6);
            let out = run_grid2d_cpu_free(&cfg);
            assert_eq!(out.max_err, Some(0.0), "pgrid {pgrid:?}");
        }
    }

    #[test]
    fn baseline_grid2d_exact() {
        let cfg = Grid2DConfig::new(6, 6, (2, 2), 7);
        let out = run_grid2d_baseline(&cfg);
        assert_eq!(out.max_err, Some(0.0));
    }

    #[test]
    fn single_pe_grid2d() {
        let cfg = Grid2DConfig::new(8, 8, (1, 1), 5);
        let out = run_grid2d_cpu_free(&cfg);
        assert_eq!(out.max_err, Some(0.0));
    }

    #[test]
    fn cpu_free_beats_baseline_grid2d() {
        let cfg = Grid2DConfig::new(64, 64, (2, 2), 30).timing_only();
        let free = run_grid2d_cpu_free(&cfg);
        let base = run_grid2d_baseline(&cfg);
        assert!(
            free.total < base.total,
            "cpu-free {} vs baseline {}",
            free.total,
            base.total
        );
    }

    #[test]
    fn odd_even_iterations_grid2d() {
        for iters in [1u64, 2, 3] {
            let cfg = Grid2DConfig::new(4, 5, (2, 2), iters);
            let out = run_grid2d_cpu_free(&cfg);
            assert_eq!(out.max_err, Some(0.0), "iters {iters}");
        }
    }
}
