//! All code variants of §6.1.1, behind one dispatch enum.

pub mod baselines;
pub mod cpufree;

use crate::config::StencilConfig;
use crate::domain::Executed;

/// The code variants compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Baseline Copy: host memcpy halo exchange, no explicit overlap.
    BaselineCopy,
    /// Baseline Copy Overlap: boundary computed in a concurrent stream.
    BaselineOverlap,
    /// Baseline P2P: device direct load/store comm, host synchronization.
    BaselineP2P,
    /// Baseline NVSHMEM: device NVSHMEM comm in CPU-launched discrete
    /// kernels, plus a dedicated sync kernel.
    BaselineNvshmem,
    /// CPU-Free (§4): persistent kernel, TB specialization, device sync.
    CpuFree,
    /// CPU-Free with the PERKS cached inner kernel.
    CpuFreePerks,
    /// Ablation: CPU-Free with two co-resident kernels (alternative design).
    CpuFreeDual,
    /// Ablation: CPU-Free with a naive fixed 1-block boundary split.
    CpuFreeFixedSplit,
}

impl Variant {
    /// Display name matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Variant::BaselineCopy => "Baseline Copy",
            Variant::BaselineOverlap => "Baseline Copy Overlap",
            Variant::BaselineP2P => "Baseline P2P",
            Variant::BaselineNvshmem => "Baseline NVSHMEM",
            Variant::CpuFree => "CPU-Free",
            Variant::CpuFreePerks => "CPU-Free (PERKS)",
            Variant::CpuFreeDual => "CPU-Free (dual kernel)",
            Variant::CpuFreeFixedSplit => "CPU-Free (fixed split)",
        }
    }

    /// The variants plotted in Fig 6.1/6.2.
    pub fn paper_set() -> [Variant; 5] {
        [
            Variant::BaselineCopy,
            Variant::BaselineOverlap,
            Variant::BaselineP2P,
            Variant::BaselineNvshmem,
            Variant::CpuFree,
        ]
    }

    /// Run the variant on a configuration.
    pub fn run(self, cfg: &StencilConfig) -> Executed {
        match self {
            Variant::BaselineCopy => baselines::run_copy(cfg),
            Variant::BaselineOverlap => baselines::run_overlap(cfg),
            Variant::BaselineP2P => baselines::run_p2p(cfg),
            Variant::BaselineNvshmem => baselines::run_nvshmem(cfg),
            Variant::CpuFree => cpufree::run_cpu_free(cfg),
            Variant::CpuFreePerks => cpufree::run_cpu_free_perks(cfg),
            Variant::CpuFreeDual => cpufree::run_cpu_free_dual(cfg),
            Variant::CpuFreeFixedSplit => cpufree::run_cpu_free_fixed_split(cfg),
        }
    }
}
