//! The four CPU-controlled baselines from NVIDIA's multi-GPU programming
//! models repository, as characterized in §6.1.1 — dimension-agnostic
//! (2D5pt rows / 3D7pt planes both flow through [`Domain`]):
//!
//! * **Baseline Copy** — host-driven `cudaMemcpyAsync` halo exchange, no
//!   explicit boundary overlap;
//! * **Baseline Copy Overlap** — boundary layers computed in a separate
//!   stream concurrently with the inner domain;
//! * **Baseline P2P** — GPU-initiated direct load/store communication, but
//!   host-managed synchronization;
//! * **Baseline NVSHMEM** — device-side NVSHMEM communication in discrete
//!   kernels plus a dedicated per-iteration synchronization kernel, all
//!   launched by the CPU every time step.

use crate::config::StencilConfig;
use crate::domain::{compute_phase, Domain, Executed};
use gpu_sim::DevId;
use nvshmem_sim::ShmemCtx;
use sim_des::{Cmp, SignalOp};
use std::sync::Arc;

/// Baseline Copy: kernel over the whole chunk, then host-side async copies
/// of the boundary layers, then a host barrier. Fully serialized control
/// path.
pub fn run_copy(cfg: &StencilConfig) -> Executed {
    let dom = Arc::new(Domain::new(cfg));
    let n = cfg.n_gpus;
    let bar = dom.machine.barrier(n);
    for pe in 0..n {
        let d = Arc::clone(&dom);
        dom.machine.spawn_host(format!("rank{pe}"), move |host| {
            let dev = DevId(pe);
            let comp = host.create_stream(dev, "comp");
            let comm = host.create_stream(dev, "comm");
            let w = d.workload(pe);
            let layers = d.layers(pe);
            let le = d.layer_elems();
            for t in 1..=d.cfg.iterations {
                let geo = Arc::clone(&d.geo);
                let read = d.read_gen(t).local(pe).clone();
                let write = d.write_gen(t).local(pe).clone();
                host.launch(&comp, "jacobi", move |k| {
                    let pen = k.cost().discrete_cache_penalty;
                    compute_phase(k, &w, w.total_points(), 1.0, 1.0, pen, "sweep", || {
                        geo.sweep(&read, &write, (1, layers));
                    });
                });
                host.sync_stream(&comp);
                let wg = d.write_gen(t);
                if pe > 0 {
                    host.memcpy_async(
                        &comm,
                        wg.local(pe - 1),
                        d.high_halo_off(pe - 1),
                        wg.local(pe),
                        d.first_layer_off(),
                        le,
                    );
                }
                if pe + 1 < n {
                    host.memcpy_async(
                        &comm,
                        wg.local(pe + 1),
                        d.low_halo_off(),
                        wg.local(pe),
                        d.last_layer_off(pe),
                        le,
                    );
                }
                host.sync_stream(&comm);
                host.host_barrier(bar, n);
            }
        });
    }
    let end = dom.machine.run().expect("baseline copy run failed");
    Executed::collect(&dom, end)
}

/// Baseline Copy Overlap: boundary layers in a `comm` stream concurrent
/// with the inner-domain kernel in a `comp` stream — the same explicit
/// overlap the CPU-Free version performs, but orchestrated by the host.
pub fn run_overlap(cfg: &StencilConfig) -> Executed {
    let dom = Arc::new(Domain::new(cfg));
    let n = cfg.n_gpus;
    let bar = dom.machine.barrier(n);
    for pe in 0..n {
        let d = Arc::clone(&dom);
        dom.machine.spawn_host(format!("rank{pe}"), move |host| {
            let dev = DevId(pe);
            let comp = host.create_stream(dev, "comp");
            let comm = host.create_stream(dev, "comm");
            let w = d.workload(pe);
            let layers = d.layers(pe);
            let le = d.layer_elems();
            let total = w.total_points() as f64;
            let inner_frac = (w.inner_points() as f64 / total).max(0.05);
            let bound_frac = ((2 * w.boundary_points()) as f64 / total).max(0.05);
            for t in 1..=d.cfg.iterations {
                let geo = Arc::clone(&d.geo);
                let read = d.read_gen(t).local(pe).clone();
                let write = d.write_gen(t).local(pe).clone();
                host.launch(&comp, "jacobi_inner", move |k| {
                    let pen = k.cost().discrete_cache_penalty;
                    compute_phase(
                        k,
                        &w,
                        w.inner_points(),
                        inner_frac,
                        1.0,
                        pen,
                        "inner",
                        || {
                            geo.sweep(&read, &write, (2, layers - 1));
                        },
                    );
                });
                let geo = Arc::clone(&d.geo);
                let read = d.read_gen(t).local(pe).clone();
                let write = d.write_gen(t).local(pe).clone();
                host.launch(&comm, "jacobi_boundary", move |k| {
                    let pen = k.cost().discrete_cache_penalty;
                    compute_phase(
                        k,
                        &w,
                        2 * w.boundary_points(),
                        bound_frac,
                        1.0,
                        pen,
                        "boundary",
                        || {
                            geo.sweep(&read, &write, (1, 1));
                            geo.sweep(&read, &write, (layers, layers));
                        },
                    );
                });
                let wg = d.write_gen(t);
                if pe > 0 {
                    host.memcpy_async(
                        &comm,
                        wg.local(pe - 1),
                        d.high_halo_off(pe - 1),
                        wg.local(pe),
                        d.first_layer_off(),
                        le,
                    );
                }
                if pe + 1 < n {
                    host.memcpy_async(
                        &comm,
                        wg.local(pe + 1),
                        d.low_halo_off(),
                        wg.local(pe),
                        d.last_layer_off(pe),
                        le,
                    );
                }
                host.sync_stream(&comm);
                host.sync_stream(&comp);
                host.host_barrier(bar, n);
            }
        });
    }
    let end = dom.machine.run().expect("baseline overlap run failed");
    Executed::collect(&dom, end)
}

/// Baseline P2P: one kernel per iteration that computes and writes its
/// boundary layers straight into the neighbors' halos with direct peer
/// stores — GPU-initiated data movement, CPU-managed synchronization.
pub fn run_p2p(cfg: &StencilConfig) -> Executed {
    let dom = Arc::new(Domain::new(cfg));
    let n = cfg.n_gpus;
    let bar = dom.machine.barrier(n);
    for pe in 0..n {
        let d = Arc::clone(&dom);
        dom.machine.spawn_host(format!("rank{pe}"), move |host| {
            let dev = DevId(pe);
            let comp = host.create_stream(dev, "comp");
            let w = d.workload(pe);
            let layers = d.layers(pe);
            let le = d.layer_elems();
            for t in 1..=d.cfg.iterations {
                let d2 = Arc::clone(&d);
                host.launch(&comp, "jacobi_p2p", move |k| {
                    let geo = Arc::clone(&d2.geo);
                    let read = d2.read_gen(t).local(pe).clone();
                    let write = d2.write_gen(t).local(pe).clone();
                    // Boundary layers first so their stores can be issued.
                    let pen = k.cost().discrete_cache_penalty;
                    compute_phase(
                        k,
                        &w,
                        2 * w.boundary_points(),
                        1.0,
                        1.0,
                        pen,
                        "boundary",
                        || {
                            geo.sweep(&read, &write, (1, 1));
                            geo.sweep(&read, &write, (layers, layers));
                        },
                    );
                    let wg = d2.write_gen(t);
                    if pe > 0 {
                        k.p2p_copy(
                            wg.local(pe - 1),
                            d2.high_halo_off(pe - 1),
                            wg.local(pe),
                            d2.first_layer_off(),
                            le,
                            "halo st -> low",
                        );
                    }
                    if pe + 1 < n {
                        k.p2p_copy(
                            wg.local(pe + 1),
                            d2.low_halo_off(),
                            wg.local(pe),
                            d2.last_layer_off(pe),
                            le,
                            "halo st -> high",
                        );
                    }
                    let geo = Arc::clone(&d2.geo);
                    let read = d2.read_gen(t).local(pe).clone();
                    let write = d2.write_gen(t).local(pe).clone();
                    compute_phase(k, &w, w.inner_points(), 1.0, 1.0, pen, "inner", || {
                        geo.sweep(&read, &write, (2, layers - 1));
                    });
                });
                host.sync_stream(&comp);
                host.host_barrier(bar, n);
            }
        });
    }
    let end = dom.machine.run().expect("baseline p2p run failed");
    Executed::collect(&dom, end)
}

/// Baseline NVSHMEM: discrete kernels use the same put-with-signal family
/// as the CPU-Free version, plus a dedicated synchronization kernel waiting
/// on neighbor signals — but the CPU still launches both every time step.
pub fn run_nvshmem(cfg: &StencilConfig) -> Executed {
    let dom = Arc::new(Domain::new(cfg));
    let n = cfg.n_gpus;
    for pe in 0..n {
        let d = Arc::clone(&dom);
        dom.machine.spawn_host(format!("rank{pe}"), move |host| {
            let dev = DevId(pe);
            let comp = host.create_stream(dev, "comp");
            let w = d.workload(pe);
            let layers = d.layers(pe);
            let le = d.layer_elems();
            for t in 1..=d.cfg.iterations {
                let d2 = Arc::clone(&d);
                host.launch(&comp, "jacobi_shmem", move |k| {
                    let world = d2.world.clone();
                    let mut sh = ShmemCtx::new(&world, k);
                    let geo = Arc::clone(&d2.geo);
                    let read = d2.read_gen(t).local(pe).clone();
                    let write = d2.write_gen(t).local(pe).clone();
                    let pen = k.cost().discrete_cache_penalty;
                    compute_phase(
                        k,
                        &w,
                        2 * w.boundary_points(),
                        1.0,
                        1.0,
                        pen,
                        "boundary",
                        || {
                            geo.sweep(&read, &write, (1, 1));
                            geo.sweep(&read, &write, (layers, layers));
                        },
                    );
                    let wg = d2.write_gen(t);
                    if pe > 0 {
                        sh.putmem_signal_nbi(
                            k,
                            wg,
                            d2.high_halo_off(pe - 1),
                            wg.local(pe),
                            d2.first_layer_off(),
                            le,
                            &d2.sig_from_high,
                            SignalOp::Set,
                            t,
                            pe - 1,
                        );
                    }
                    if pe + 1 < n {
                        sh.putmem_signal_nbi(
                            k,
                            wg,
                            d2.low_halo_off(),
                            wg.local(pe),
                            d2.last_layer_off(pe),
                            le,
                            &d2.sig_from_low,
                            SignalOp::Set,
                            t,
                            pe + 1,
                        );
                    }
                    let geo = Arc::clone(&d2.geo);
                    let read = d2.read_gen(t).local(pe).clone();
                    let write = d2.write_gen(t).local(pe).clone();
                    compute_phase(k, &w, w.inner_points(), 1.0, 1.0, pen, "inner", || {
                        geo.sweep(&read, &write, (2, layers - 1));
                    });
                });
                let d2 = Arc::clone(&d);
                host.launch(&comp, "neighbor_sync", move |k| {
                    let world = d2.world.clone();
                    let mut sh = ShmemCtx::new(&world, k);
                    if pe > 0 {
                        sh.signal_wait_until(k, &d2.sig_from_low, Cmp::Ge, t);
                    }
                    if pe + 1 < n {
                        sh.signal_wait_until(k, &d2.sig_from_high, Cmp::Ge, t);
                    }
                });
                host.sync_stream(&comp);
            }
        });
    }
    let end = dom.machine.run().expect("baseline nvshmem run failed");
    Executed::collect(&dom, end)
}
