//! CPU-Free Jacobi (§4): one persistent cooperative kernel per device with
//! specialized thread blocks — two communication groups handling the
//! boundary layers and the halo semaphore protocol, the rest computing the
//! inner domain — plus the PERKS-cached variant and the two-kernel
//! "alternative design" ablation. Dimension-agnostic: 2D rows and 3D planes
//! both flow through [`Domain`].

use crate::config::StencilConfig;
use crate::domain::{compute_phase, Domain, Executed};
use cpufree_core::{launch_cpu_free, launch_cpu_free_dual, LocalRendezvous, TbAllocation};
use gpu_sim::{BlockGroup, KernelCtx};
use nvshmem_sim::ShmemCtx;
use sim_des::{Cmp, SignalOp};
use std::sync::Arc;

/// Tuning of the persistent kernel's compute model.
#[derive(Debug, Clone, Copy)]
struct PersistentTuning {
    /// Scale on read traffic (PERKS caching: `1 - cached_fraction`).
    read_scale: f64,
    /// Software-tiling multiplier (1.0 when PERKS provides the tiling).
    penalty: f64,
}

/// CPU-Free: the paper's primary design.
pub fn run_cpu_free(cfg: &StencilConfig) -> Executed {
    run_persistent(cfg, false)
}

/// CPU-Free with the PERKS inner kernel: intermediate results cached in
/// registers/shared memory across iterations (reads of the cached fraction
/// skip global memory; halo layers stay uncached), and PERKS' own tiling
/// removes the software-tiling penalty.
pub fn run_cpu_free_perks(cfg: &StencilConfig) -> Executed {
    run_persistent(cfg, true)
}

/// Ablation: CPU-Free with the naive Listing-4.1 block split (exactly one
/// block per boundary group) instead of the §4.1.2 proportional formula.
pub fn run_cpu_free_fixed_split(cfg: &StencilConfig) -> Executed {
    run_persistent_with(cfg, false, SplitPolicy::FixedTwo)
}

/// How thread blocks are divided between boundary and inner groups.
#[derive(Debug, Clone, Copy)]
enum SplitPolicy {
    Proportional,
    FixedTwo,
}

impl SplitPolicy {
    fn allocate(self, tb_total: u64, inner: u64, boundary: u64) -> TbAllocation {
        match self {
            SplitPolicy::Proportional => TbAllocation::proportional(tb_total, inner, boundary),
            SplitPolicy::FixedTwo => TbAllocation::fixed_two(tb_total),
        }
    }
}

fn tuning(dom: &Domain, pe: usize, perks: bool, tb_total: u64) -> PersistentTuning {
    let cost = dom.machine.cost();
    let w = dom.workload(pe);
    if perks {
        PersistentTuning {
            read_scale: 1.0 - cost.perks_cached_fraction,
            penalty: 1.0,
        }
    } else {
        let threads = tb_total * dom.cfg.threads_per_block as u64;
        let ppt = w.total_points() as f64 / threads as f64;
        PersistentTuning {
            read_scale: 1.0,
            penalty: if ppt > cost.tiling_threshold_ppt {
                cost.tiling_penalty
            } else {
                1.0
            },
        }
    }
}

fn run_persistent(cfg: &StencilConfig, perks: bool) -> Executed {
    run_persistent_with(cfg, perks, SplitPolicy::Proportional)
}

fn run_persistent_with(cfg: &StencilConfig, perks: bool, split: SplitPolicy) -> Executed {
    let dom = Arc::new(Domain::new(cfg));
    let n = cfg.n_gpus;
    // One 1024-thread block per SM (shared-memory bound, as in the paper).
    let tb_total = dom.machine.spec().sm_count as u64;
    let dom_l = Arc::clone(&dom);
    let end = launch_cpu_free(
        &dom.machine.clone(),
        if perks { "cpufree_perks" } else { "cpufree" },
        cfg.threads_per_block,
        move |pe| build_groups(Arc::clone(&dom_l), pe, n, tb_total, perks, split),
    )
    .expect("cpu-free run failed");
    Executed::collect(&dom, end)
}

/// Build the three specialized block groups of one PE's persistent kernel.
fn build_groups(
    dom: Arc<Domain>,
    pe: usize,
    n: usize,
    tb_total: u64,
    perks: bool,
    split: SplitPolicy,
) -> Vec<BlockGroup> {
    let w = dom.workload(pe);
    let alloc = split.allocate(tb_total, w.inner_points(), w.boundary_points());
    let tune = tuning(&dom, pe, perks, tb_total);
    let b_frac = alloc.boundary_fraction();
    let i_frac = alloc.inner_fraction();

    let d_top = Arc::clone(&dom);
    let comm_low = BlockGroup::new("comm_low", alloc.boundary_tbs, move |k| {
        comm_group_body(k, &d_top, pe, n, Side::Low, b_frac, tune, Epilogue::Single);
    });
    let d_bot = Arc::clone(&dom);
    let comm_high = BlockGroup::new("comm_high", alloc.boundary_tbs, move |k| {
        comm_group_body(k, &d_bot, pe, n, Side::High, b_frac, tune, Epilogue::Single);
    });
    let d_in = Arc::clone(&dom);
    let inner = BlockGroup::new("inner", alloc.inner_tbs, move |k| {
        inner_group_body(k, &d_in, pe, i_frac, tune, None);
    });
    vec![comm_low, comm_high, inner]
}

/// Which neighbor a communication group talks to.
#[derive(Clone, Copy, PartialEq)]
enum Side {
    /// pe-1: owns my low halo; I compute/ship my FIRST owned layer.
    Low,
    /// pe+1: owns my high halo; I compute/ship my LAST owned layer.
    High,
}

/// How a comm group ends each iteration.
#[derive(Clone, Copy)]
enum Epilogue {
    /// Single-kernel design: one grid sync joins comm and inner groups.
    Single,
    /// Dual-kernel design, non-rendezvous group: two grid syncs bracket the
    /// other comm group's rendezvous with the compute kernel.
    DualPassive,
    /// Dual-kernel design, rendezvous-owning group: grid sync, rendezvous
    /// with the compute kernel, second grid sync.
    DualRendezvous(LocalRendezvous),
}

/// Listing 4.1's boundary thread block: ① wait for the neighbor's halo,
/// ② compute the boundary layer, ③ commit it to the neighbor's halo with
/// ④ a signal, then ⑤ join the grid barrier.
#[allow(clippy::too_many_arguments)]
fn comm_group_body(
    k: &mut KernelCtx<'_>,
    dom: &Domain,
    pe: usize,
    n: usize,
    side: Side,
    fraction: f64,
    tune: PersistentTuning,
    epilogue: Epilogue,
) {
    let world = dom.world.clone();
    let mut sh = ShmemCtx::new(&world, k);
    let le = dom.layer_elems();
    let layers = dom.layers(pe);
    let w = dom.workload(pe);
    let neighbor = match side {
        Side::Low if pe > 0 => Some(pe - 1),
        Side::High if pe + 1 < n => Some(pe + 1),
        _ => None,
    };
    let my_layer = match side {
        Side::Low => 1,
        Side::High => layers,
    };
    let checker = k.machine().checker();
    for t in 1..=dom.cfg.iterations {
        // ① Wait until the halo for this iteration's READ generation has
        // been committed by the neighbor (its put of iteration t-1).
        if neighbor.is_some() {
            let sig = match side {
                Side::Low => &dom.sig_from_low,
                Side::High => &dom.sig_from_high,
            };
            sh.signal_wait_until(k, sig, Cmp::Ge, t - 1);
        }
        // Conformance: one group per PE reports the committed iteration so
        // the checker can bound neighbor skew (must never exceed 1).
        if side == Side::Low {
            if let Some(chk) = &checker {
                chk.iteration(pe, t, &k.agent().name(), k.now());
            }
        }
        // ② Compute the boundary layer using the halo values.
        let geo = Arc::clone(&dom.geo);
        let read = dom.read_gen(t).local(pe).clone();
        let write = dom.write_gen(t).local(pe).clone();
        // Race detector: the boundary sweep reads the halo-adjacent band
        // (incl. the remotely-written halo layer) and writes its own layer.
        k.check_read(
            &read,
            (my_layer - 1) * le,
            (my_layer + 2) * le,
            "boundary read",
        );
        k.check_write(&write, my_layer * le, (my_layer + 1) * le, "boundary write");
        compute_phase(
            k,
            &w,
            w.boundary_points(),
            fraction.max(0.01),
            1.0, // halo-adjacent layers are excluded from PERKS caching
            tune.penalty,
            "boundary",
            || geo.sweep(&read, &write, (my_layer, my_layer)),
        );
        // ③+④ Commit the new layer into the neighbor's halo and signal.
        if let Some(nb) = neighbor {
            let wg = dom.write_gen(t);
            let (dst_off, sig) = match side {
                Side::Low => (dom.high_halo_off(nb), &dom.sig_from_high),
                Side::High => (dom.low_halo_off(), &dom.sig_from_low),
            };
            let src_off = match side {
                Side::Low => dom.first_layer_off(),
                Side::High => dom.last_layer_off(pe),
            };
            sh.putmem_signal_nbi(
                k,
                wg,
                dst_off,
                wg.local(pe),
                src_off,
                le,
                sig,
                SignalOp::Set,
                t,
                nb,
            );
        }
        // ⑤ Synchronize before the next time step.
        match epilogue {
            Epilogue::Single => k.grid_sync(),
            Epilogue::DualPassive => {
                k.grid_sync();
                k.grid_sync();
            }
            Epilogue::DualRendezvous(rv) => {
                // First barrier: both boundary layers committed. Rendezvous:
                // the inner kernel finished this step. Second barrier:
                // release the passive comm group past the rendezvous.
                k.grid_sync();
                rv.sync_as_a(k, t);
                k.grid_sync();
            }
        }
    }
}

/// The inner-domain block group: pure compute, one sync point per step
/// (grid sync in the single-kernel design, rendezvous in the dual design).
fn inner_group_body(
    k: &mut KernelCtx<'_>,
    dom: &Domain,
    pe: usize,
    fraction: f64,
    tune: PersistentTuning,
    rendezvous: Option<LocalRendezvous>,
) {
    let layers = dom.layers(pe);
    let w = dom.workload(pe);
    let le = dom.layer_elems();
    for t in 1..=dom.cfg.iterations {
        let geo = Arc::clone(&dom.geo);
        let read = dom.read_gen(t).local(pe).clone();
        let write = dom.write_gen(t).local(pe).clone();
        if w.inner_points() > 0 {
            // Inner sweep: reads owned layers 1..=layers, writes 2..layers-1.
            k.check_read(&read, le, (layers + 1) * le, "inner read");
            k.check_write(&write, 2 * le, layers * le, "inner write");
        }
        compute_phase(
            k,
            &w,
            w.inner_points(),
            fraction.max(0.01),
            tune.read_scale,
            tune.penalty,
            "inner",
            || geo.sweep(&read, &write, (2, layers - 1)),
        );
        match rendezvous {
            None => k.grid_sync(),
            Some(rv) => rv.sync_as_b(k, t),
        }
    }
}

/// The §4 "alternative design": two co-resident persistent kernels per
/// device — boundary/communication and inner compute — in separate streams,
/// synchronized once per iteration through local device flags. Requires the
/// extra sync point between the local stream pair that the paper notes.
pub fn run_cpu_free_dual(cfg: &StencilConfig) -> Executed {
    let dom = Arc::new(Domain::new(cfg));
    let n = cfg.n_gpus;
    let tb_total = dom.machine.spec().sm_count as u64;
    let dom_a = Arc::clone(&dom);
    let dom_b = Arc::clone(&dom);
    let end = launch_cpu_free_dual(
        &dom.machine.clone(),
        "cpufree_dual",
        cfg.threads_per_block,
        move |pe, rv| {
            let dom = Arc::clone(&dom_a);
            let w = dom.workload(pe);
            let alloc = TbAllocation::proportional(tb_total, w.inner_points(), w.boundary_points());
            let tune = tuning(&dom, pe, false, tb_total);
            let b_frac = alloc.boundary_fraction();
            let d_low = Arc::clone(&dom);
            let d_high = Arc::clone(&dom);
            vec![
                BlockGroup::new("comm_low", alloc.boundary_tbs, move |k| {
                    comm_group_body(
                        k,
                        &d_low,
                        pe,
                        n,
                        Side::Low,
                        b_frac,
                        tune,
                        Epilogue::DualPassive,
                    );
                }),
                BlockGroup::new("comm_high", alloc.boundary_tbs, move |k| {
                    comm_group_body(
                        k,
                        &d_high,
                        pe,
                        n,
                        Side::High,
                        b_frac,
                        tune,
                        Epilogue::DualRendezvous(rv),
                    );
                }),
            ]
        },
        move |pe, rv| {
            let dom = Arc::clone(&dom_b);
            let w = dom.workload(pe);
            let alloc = TbAllocation::proportional(tb_total, w.inner_points(), w.boundary_points());
            let tune = tuning(&dom, pe, false, tb_total);
            let i_frac = alloc.inner_fraction();
            let d_in = Arc::clone(&dom);
            vec![BlockGroup::new("inner", alloc.inner_tbs, move |k| {
                inner_group_body(k, &d_in, pe, i_frac, tune, Some(rv));
            })]
        },
    )
    .expect("cpu-free dual run failed");
    Executed::collect(&dom, end)
}
