//! Experiment configuration, slab decomposition, and per-variant workload
//! arithmetic (points, bytes, flops, fractions).

use gpu_sim::{CostModel, ExecMode, TopologyKind};
use sim_des::SimDur;

/// Configuration of one stencil experiment.
#[derive(Debug, Clone)]
pub struct StencilConfig {
    /// Global X extent (columns), including the fixed boundary.
    pub nx: usize,
    /// Global Y extent (rows), including the fixed boundary.
    pub ny: usize,
    /// Global Z extent for 3D runs (planes), including the boundary.
    /// `1` selects the 2D5pt kernel.
    pub nz: usize,
    /// Time steps.
    pub iterations: u64,
    /// Number of GPUs (slab partitions along the last axis).
    pub n_gpus: usize,
    /// Functional or timing-only kernels.
    pub exec: ExecMode,
    /// Zero out compute costs/work: the paper's "no compute" experiments
    /// (Fig 2.2a, Fig 6.2 middle) isolating communication + synchronization.
    pub no_compute: bool,
    /// Threads per block for persistent launches.
    pub threads_per_block: u32,
    /// Cost model override (`None` = A100 HGX defaults).
    pub cost: Option<CostModel>,
    /// Interconnect topology override (`None` = the cost model's own).
    pub topology: Option<TopologyKind>,
    /// Seed for deterministic wake-order jitter (schedule perturbation);
    /// `None` = the engine's canonical order.
    pub jitter: Option<u64>,
    /// Enable the happens-before race detector / conformance checker.
    pub check: bool,
}

impl StencilConfig {
    /// A 2D5pt configuration over an `n × n` grid.
    pub fn square2d(n: usize, iterations: u64, n_gpus: usize) -> StencilConfig {
        StencilConfig {
            nx: n,
            ny: n,
            nz: 1,
            iterations,
            n_gpus,
            exec: ExecMode::Full,
            no_compute: false,
            threads_per_block: 1024,
            cost: None,
            topology: None,
            jitter: None,
            check: false,
        }
    }

    /// A 3D7pt configuration over an `nx × ny × nz` grid.
    pub fn cube3d(
        nx: usize,
        ny: usize,
        nz: usize,
        iterations: u64,
        n_gpus: usize,
    ) -> StencilConfig {
        StencilConfig {
            nx,
            ny,
            nz,
            iterations,
            n_gpus,
            exec: ExecMode::Full,
            no_compute: false,
            threads_per_block: 1024,
            cost: None,
            topology: None,
            jitter: None,
            check: false,
        }
    }

    /// Builder-style: timing-only execution (large sweeps).
    pub fn timing_only(mut self) -> Self {
        self.exec = ExecMode::TimingOnly;
        self
    }

    /// Builder-style: disable compute (pure communication experiments).
    pub fn without_compute(mut self) -> Self {
        self.no_compute = true;
        self.exec = ExecMode::TimingOnly;
        self
    }

    /// Builder-style: override the cost model (e.g. `CostModel::pcie_only()`).
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = Some(cost);
        self
    }

    /// Builder-style: run on a different interconnect topology
    /// (e.g. `TopologyKind::NvlinkRing`).
    pub fn with_topology(mut self, topology: TopologyKind) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Builder-style: perturb the wake order of simultaneously-woken agents
    /// with a deterministic seed (schedule-robustness testing).
    pub fn with_jitter(mut self, seed: u64) -> Self {
        self.jitter = Some(seed);
        self
    }

    /// Builder-style: enable the happens-before / conformance checker.
    pub fn with_check(mut self) -> Self {
        self.check = true;
        self
    }

    /// True when this is a 3D experiment.
    pub fn is_3d(&self) -> bool {
        self.nz > 1
    }

    /// Decomposition along the slab axis (Y in 2D, Z in 3D).
    pub fn slab(&self) -> Slab {
        let axis = if self.is_3d() { self.nz } else { self.ny };
        assert!(axis >= 3, "slab axis must have an interior");
        Slab::new(axis - 2, self.n_gpus)
    }

    /// Elements in one halo layer (a row in 2D, a plane in 3D).
    pub fn halo_elems(&self) -> usize {
        if self.is_3d() {
            self.nx * self.ny
        } else {
            self.nx
        }
    }

    /// Points in one layer of owned cells along the slab axis.
    pub fn layer_points(&self) -> u64 {
        self.halo_elems() as u64
    }

    /// Sanity checks; call before running a variant.
    pub fn validate(&self) {
        assert!(self.nx >= 3 && self.ny >= 3, "grid too small");
        if self.is_3d() {
            assert!(self.nz >= 3, "3D grid too small");
        }
        assert!(self.n_gpus >= 1, "need at least one GPU");
        let interior = if self.is_3d() {
            self.nz - 2
        } else {
            self.ny - 2
        };
        assert!(
            interior >= 2 * self.n_gpus,
            "each GPU needs at least 2 interior layers ({} interior / {} GPUs)",
            interior,
            self.n_gpus
        );
    }
}

/// 1D slab decomposition of `interior` layers over `n` parts.
///
/// Layers are distributed as evenly as possible; the first `interior % n`
/// parts get one extra layer.
#[derive(Debug, Clone, Copy)]
pub struct Slab {
    /// Interior layer count being distributed.
    pub interior: usize,
    /// Number of parts (GPUs).
    pub n: usize,
}

impl Slab {
    /// Create a decomposition.
    pub fn new(interior: usize, n: usize) -> Slab {
        assert!(
            n >= 1 && interior >= n,
            "cannot split {interior} layers over {n} parts"
        );
        Slab { interior, n }
    }

    /// Number of layers owned by part `pe`.
    pub fn layers(&self, pe: usize) -> usize {
        self.interior / self.n + usize::from(pe < self.interior % self.n)
    }

    /// First interior-layer index (0-based) owned by `pe`.
    pub fn start(&self, pe: usize) -> usize {
        pe * (self.interior / self.n) + pe.min(self.interior % self.n)
    }

    /// The largest per-part layer count (symmetric allocations are sized
    /// for the largest part).
    pub fn max_layers(&self) -> usize {
        self.layers(0)
    }
}

/// Per-PE workload arithmetic shared by all variants.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Elements per layer (nx in 2D, nx*ny in 3D).
    pub layer: u64,
    /// Owned layers on this PE.
    pub layers: u64,
    /// Bytes of global-memory traffic per point (post-cache).
    pub bytes_per_point: f64,
    /// Floating-point operations per point.
    pub flops_per_point: f64,
    /// Disable compute entirely (paper's "no compute" runs).
    pub no_compute: bool,
}

impl Workload {
    /// 2D5pt Jacobi: ~1 cached read + 1 write per point, 6 flops.
    pub fn jacobi2d(nx: usize, layers: usize, no_compute: bool) -> Workload {
        Workload {
            layer: nx as u64,
            layers: layers as u64,
            bytes_per_point: 16.0,
            flops_per_point: 6.0,
            no_compute,
        }
    }

    /// 3D7pt Jacobi: ~1 cached read + 1 write per point, 8 flops.
    pub fn jacobi3d(nx: usize, ny: usize, layers: usize, no_compute: bool) -> Workload {
        Workload {
            layer: (nx * ny) as u64,
            layers: layers as u64,
            bytes_per_point: 16.0,
            flops_per_point: 8.0,
            no_compute,
        }
    }

    /// Total points on this PE.
    pub fn total_points(&self) -> u64 {
        self.layer * self.layers
    }

    /// Points in ONE boundary region (first or last layer).
    pub fn boundary_points(&self) -> u64 {
        self.layer
    }

    /// Points in the inner region (all layers but the two boundary ones;
    /// zero when the chunk is ≤ 2 layers).
    pub fn inner_points(&self) -> u64 {
        self.total_points().saturating_sub(2 * self.layer)
    }

    /// Roofline duration of sweeping `points` using `fraction` of the device.
    ///
    /// `read_scale` scales the read traffic (PERKS caching); `penalty`
    /// multiplies the result (software-tiling inefficiency).
    pub fn sweep_dur(
        &self,
        cost: &CostModel,
        points: u64,
        fraction: f64,
        read_scale: f64,
        penalty: f64,
    ) -> SimDur {
        if self.no_compute || points == 0 {
            return SimDur::ZERO;
        }
        // bytes_per_point = 8 read + 8 write; scale only the read half.
        let write_b = 8.0;
        let read_b = (self.bytes_per_point - write_b) * read_scale;
        let bytes = (points as f64 * (read_b + write_b)).ceil() as u64;
        let flops = (points as f64 * self.flops_per_point).ceil() as u64;
        let base = cost.sweep(bytes, flops, fraction);
        base * penalty
    }

    /// True when the chunk oversaturates the co-resident thread capacity —
    /// the regime where cooperative kernels pay the tiling penalty.
    pub fn oversaturates(&self, coresident_threads: u64) -> bool {
        self.total_points() > coresident_threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_distributes_evenly() {
        let s = Slab::new(254, 8);
        let total: usize = (0..8).map(|p| s.layers(p)).sum();
        assert_eq!(total, 254);
        // 254 = 8*31 + 6: first six parts get 32.
        assert_eq!(s.layers(0), 32);
        assert_eq!(s.layers(5), 32);
        assert_eq!(s.layers(6), 31);
        assert_eq!(s.start(0), 0);
        assert_eq!(s.start(1), 32);
        assert_eq!(s.start(7), 254 - 31);
        assert_eq!(s.max_layers(), 32);
    }

    #[test]
    fn slab_contiguity() {
        for n in 1..=8 {
            let s = Slab::new(100, n);
            let mut expected = 0;
            for pe in 0..n {
                assert_eq!(s.start(pe), expected);
                expected += s.layers(pe);
            }
            assert_eq!(expected, 100);
        }
    }

    #[test]
    fn workload_partitions() {
        let w = Workload::jacobi2d(256, 30, false);
        assert_eq!(w.total_points(), 256 * 30);
        assert_eq!(w.boundary_points(), 256);
        assert_eq!(w.inner_points(), 256 * 28);
    }

    #[test]
    fn tiny_chunk_inner_is_zero() {
        let w = Workload::jacobi2d(256, 2, false);
        assert_eq!(w.inner_points(), 0);
    }

    #[test]
    fn no_compute_zeroes_sweep() {
        let w = Workload::jacobi2d(256, 30, true);
        let c = CostModel::a100_hgx();
        assert_eq!(
            w.sweep_dur(&c, w.total_points(), 1.0, 1.0, 1.0),
            SimDur::ZERO
        );
    }

    #[test]
    fn perks_read_scale_reduces_time() {
        let w = Workload::jacobi2d(8192, 1024, false);
        let c = CostModel::a100_hgx();
        let plain = w.sweep_dur(&c, w.total_points(), 1.0, 1.0, 1.0);
        let perks = w.sweep_dur(
            &c,
            w.total_points(),
            1.0,
            1.0 - c.perks_cached_fraction,
            1.0,
        );
        assert!(perks < plain);
        let ratio = perks.as_nanos() as f64 / plain.as_nanos() as f64;
        // (8 write + 8*(1-cached) read) / 16 bytes.
        let expected = (8.0 + 8.0 * (1.0 - c.perks_cached_fraction)) / 16.0;
        assert!((ratio - expected).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn tiling_penalty_multiplies() {
        let w = Workload::jacobi2d(8192, 1024, false);
        let c = CostModel::a100_hgx();
        let plain = w.sweep_dur(&c, w.total_points(), 1.0, 1.0, 1.0);
        let tiled = w.sweep_dur(&c, w.total_points(), 1.0, 1.0, c.tiling_penalty);
        let ratio = tiled.as_nanos() as f64 / plain.as_nanos() as f64;
        assert!((ratio - c.tiling_penalty).abs() < 0.01);
    }

    #[test]
    fn oversaturation_threshold() {
        let w = Workload::jacobi2d(8192, 1024, false); // 8.4M points
        assert!(w.oversaturates(108 * 1024));
        let small = Workload::jacobi2d(256, 30, false);
        assert!(!small.oversaturates(108 * 1024));
    }

    #[test]
    fn config_validation() {
        let cfg = StencilConfig::square2d(256, 10, 8);
        cfg.validate();
        assert!(!cfg.is_3d());
        assert_eq!(cfg.halo_elems(), 256);
        let cfg3 = StencilConfig::cube3d(64, 64, 64, 10, 4);
        cfg3.validate();
        assert!(cfg3.is_3d());
        assert_eq!(cfg3.halo_elems(), 64 * 64);
    }

    #[test]
    #[should_panic(expected = "at least 2 interior layers")]
    fn too_many_gpus_rejected() {
        StencilConfig::square2d(8, 1, 8).validate();
    }
}
