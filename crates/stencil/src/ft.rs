//! Fault-tolerant CPU-Free Jacobi: the persistent kernel of
//! `variants::cpufree` hardened with iteration-granular checkpoint/restart,
//! retrying puts, interruptible waits, and a watchdog — all driven by a
//! deterministic [`FaultPlan`].
//!
//! # Protocol
//!
//! One block group per PE runs the whole sweep (boundary + inner in one
//! pass — bitwise identical to the split-group variant, since every written
//! point depends only on the read generation). Each iteration `t`:
//!
//! 1. **Recovery check** — if any PE announced a rollback (the `recover`
//!    signal moved past the locally handled count), join the recovery.
//! 2. **Checkpoint** — at every `checkpoint_every`-iteration boundary, all
//!    PEs rendezvous (interruptibly, so a concurrent rollback can still
//!    recruit them), drain in-flight deliveries (`quiet`), and snapshot
//!    **both** ping-pong generations to host memory. Restoring both arrays
//!    later reproduces the exact byte state at the top of iteration
//!    `k0 + 1`, which makes bit-identical recovery an induction argument.
//! 3. **Crash** — if the fault plan crashes this PE here, device state is
//!    scrubbed (NaN), a reboot cost is charged, and the rollback is
//!    announced to every PE.
//! 4. **Halo waits** — deadline-sliced so a waiting PE polls for recovery
//!    notices between slices; a lost signal can never hang the PE.
//! 5. **Sweep** — compute time is stretched by any active straggler window.
//! 6. **Halo puts** — [`ShmemCtx::putmem_signal_reliable`] retries dropped
//!    deliveries with exponential backoff.
//! 7. **Heartbeat** — for the watchdog.
//!
//! **Recovery** (entered by every PE, crashed or not): `quiet` → barrier A
//! (after which nothing is in flight machine-wide) → restore both
//! generations + reset own halo-in signals to `k0` → barrier B → resume at
//! iteration `k0 + 1`. Because restored state equals the original byte
//! state and sweeps are deterministic, every re-sent message is
//! byte-identical to the original run: recovered results match fault-free
//! results bit for bit.

use crate::config::StencilConfig;
use crate::domain::{compute_phase, Domain, Executed};
use cpufree_core::{launch_cpu_free, spawn_watchdog, WatchdogSpec};
use gpu_sim::{BlockGroup, ExecMode, FaultPlan, KernelCtx};
use nvshmem_sim::{ShmemCtx, SymSignal};
use sim_des::lock::Mutex;
use sim_des::{ms, us, Barrier, Category, Cmp, SignalOp, SimDur, SimError};
use std::sync::Arc;

/// Configuration of a fault-tolerant run.
#[derive(Clone)]
pub struct FtConfig {
    /// The underlying stencil problem.
    pub base: StencilConfig,
    /// The deterministic fault schedule (empty plan = fault-free).
    pub plan: FaultPlan,
    /// Checkpoint every this many iterations (>= 1).
    pub checkpoint_every: u64,
    /// Deadline slice for interruptible waits (recovery-notice poll period).
    pub poll: SimDur,
    /// Watchdog stall-detection window.
    pub watchdog_interval: SimDur,
}

impl FtConfig {
    /// Defaults: checkpoint every 4 iterations, 50 µs poll slices, 10 ms
    /// watchdog window.
    pub fn new(base: StencilConfig, plan: FaultPlan) -> FtConfig {
        FtConfig {
            base,
            plan,
            checkpoint_every: 4,
            poll: us(50.0),
            watchdog_interval: ms(10.0),
        }
    }
}

/// Outcome of a fault-tolerant run.
#[derive(Debug, Clone)]
pub struct FtExecuted {
    /// The usual measurements (total time, stats, max_err, checksum).
    pub exec: Executed,
    /// Rollback rounds performed (summed over PEs / number of PEs).
    pub rollbacks: u64,
    /// Extra put attempts spent on dropped deliveries (all PEs).
    pub retries: u64,
    /// Checkpoints taken (per PE).
    pub checkpoints: u64,
}

#[derive(Default)]
struct FtCounters {
    rollback_rounds: u64, // summed over PEs
    retries: u64,
    checkpoints: u64, // max over PEs (identical on all, by lockstep)
}

/// Run the fault-tolerant CPU-Free stencil under `cfg.plan`.
///
/// Returns `Err` only for unrecoverable outcomes — a watchdog-diagnosed
/// stall surfaces as [`SimError::Timeout`] naming the stuck PE and the
/// wait-for cycle. All faults covered by the plan classes are recovered
/// transparently, with the overhead visible in `exec.total`.
pub fn run_cpu_free_ft(cfg: &FtConfig) -> Result<FtExecuted, SimError> {
    assert!(cfg.checkpoint_every >= 1, "checkpoint_every must be >= 1");
    let dom = Arc::new(Domain::new(&cfg.base));
    dom.machine.set_fault_plan(cfg.plan.clone());
    let n = cfg.base.n_gpus;

    // FT control plane: rollback announcements, rendezvous barriers,
    // heartbeats, completion flag.
    let recover: SymSignal = dom.world.signal(0);
    let cp_barrier: Barrier = dom.machine.barrier(n);
    let rec_barrier_a: Barrier = dom.machine.barrier(n);
    let rec_barrier_b: Barrier = dom.machine.barrier(n);
    let done_barrier: Barrier = dom.machine.barrier(n);
    let heartbeats: Vec<_> = (0..n).map(|_| dom.machine.flag(0)).collect();
    let ft_done = dom.machine.flag(0);
    let counters = Arc::new(Mutex::new(FtCounters::default()));

    spawn_watchdog(
        &dom.machine,
        WatchdogSpec {
            heartbeats: heartbeats
                .iter()
                .enumerate()
                .map(|(pe, f)| (format!("pe{pe}"), *f))
                .collect(),
            done: ft_done,
            target: n as u64,
            interval: cfg.watchdog_interval,
        },
    );

    let dom_l = Arc::clone(&dom);
    let cfg_l = cfg.clone();
    let counters_l = Arc::clone(&counters);
    let end = launch_cpu_free(
        &dom.machine.clone(),
        "cpufree_ft",
        cfg.base.threads_per_block,
        move |pe| {
            let dom = Arc::clone(&dom_l);
            let cfg = cfg_l.clone();
            let recover = recover.clone();
            let hb = heartbeats[pe];
            let counters = Arc::clone(&counters_l);
            vec![BlockGroup::new("ft", 1, move |k| {
                let local = pe_body(
                    k,
                    &dom,
                    &cfg,
                    pe,
                    n,
                    &recover,
                    cp_barrier,
                    rec_barrier_a,
                    rec_barrier_b,
                    done_barrier,
                    hb,
                );
                let mut g = counters.lock();
                g.rollback_rounds += local.rollbacks;
                g.retries += local.retries;
                g.checkpoints = g.checkpoints.max(local.checkpoints);
                k.agent_mut().signal(ft_done, SignalOp::Add, 1);
            })]
        },
    )?;

    let exec = Executed::collect(&dom, end);
    let g = counters.lock();
    Ok(FtExecuted {
        exec,
        rollbacks: g.rollback_rounds / n as u64,
        retries: g.retries,
        checkpoints: g.checkpoints,
    })
}

struct PeOutcome {
    rollbacks: u64,
    retries: u64,
    checkpoints: u64,
}

/// Everything one PE does: the hardened persistent loop.
#[allow(clippy::too_many_arguments)]
fn pe_body(
    k: &mut KernelCtx<'_>,
    dom: &Domain,
    cfg: &FtConfig,
    pe: usize,
    n: usize,
    recover: &SymSignal,
    cp_barrier: Barrier,
    rec_barrier_a: Barrier,
    rec_barrier_b: Barrier,
    done_barrier: Barrier,
    heartbeat: sim_des::Flag,
) -> PeOutcome {
    let world = dom.world.clone();
    let mut sh = ShmemCtx::new(&world, k);
    let faults = dom.machine.faults();
    let le = dom.layer_elems();
    let layers = dom.layers(pe);
    let w = dom.workload(pe);
    let iters = dom.cfg.iterations;
    let cp = cfg.checkpoint_every;
    let poll = cfg.poll;
    let crash_at = faults.crash_iteration(pe);

    let mut t: u64 = 1;
    let mut handled: u64 = 0; // rollback announcements consumed
    let mut k0: u64 = 0; // iteration the last checkpoint captured
    let mut last_cp: Option<u64> = None;
    let mut snap: Option<(Vec<f64>, Vec<f64>)> = None;
    let mut crashed = false;
    let mut out = PeOutcome {
        rollbacks: 0,
        retries: 0,
        checkpoints: 0,
    };

    // Restore from the checkpoint: quiet -> A -> restore + flag reset -> B.
    // Closures can't borrow everything mutably, so this is a macro-shaped
    // helper invoked from every interruptible point.
    macro_rules! do_recovery {
        () => {{
            // Drain own in-flight deliveries; once every PE is past
            // barrier A, nothing stale is in flight machine-wide.
            sh.quiet(k);
            k.agent_mut().barrier(rec_barrier_a);
            // Restore BOTH generations: the exact byte state at the top of
            // iteration k0 + 1 (including halos and global boundary rows).
            if let Some((g0, g1)) = &snap {
                dom.gen[0].local(pe).write_slice(0, g0);
                dom.gen[1].local(pe).write_slice(0, g1);
            }
            let bytes = 2 * (dom.gen[0].local(pe).len() * 8) as u64;
            let dur = k
                .machine()
                .transport()
                .host_copy(k.device(), bytes, k.now());
            k.busy(Category::Api, "ft.restore", dur);
            // Reset own halo-in signals to k0: the snapshot already holds
            // the neighbors' iteration-k0 halos, and any later (stale)
            // value must not satisfy a post-rollback wait early.
            k.agent_mut()
                .signal(dom.sig_from_low.flag(pe), SignalOp::Set, k0);
            k.agent_mut()
                .signal(dom.sig_from_high.flag(pe), SignalOp::Set, k0);
            k.agent_mut().barrier(rec_barrier_b);
            handled += 1;
            out.rollbacks += 1;
            t = k0 + 1;
        }};
    }

    'outer: loop {
        'iter: while t <= iters {
            // ① Join any announced rollback before doing new work.
            if sh.signal_fetch(k, recover) > handled {
                do_recovery!();
                continue 'iter;
            }

            // ② Checkpoint at every cp-iteration boundary (incl. t = 1:
            // the initial state, so a crash before the first boundary is
            // recoverable). Interruptible rendezvous: engine barriers keep
            // no round memory and timed-out arrivals are withdrawn, so
            // mixing with a concurrent rollback is safe.
            if (t - 1).is_multiple_of(cp) && last_cp != Some(t - 1) {
                sh.quiet(k); // halos of iteration t-1 land before the barrier releases
                loop {
                    if sh.signal_fetch(k, recover) > handled {
                        do_recovery!();
                        continue 'iter;
                    }
                    let deadline = k.now() + poll;
                    if k.agent_mut().barrier_until(cp_barrier, deadline).is_ok() {
                        break;
                    }
                }
                let bytes = 2 * (dom.gen[0].local(pe).len() * 8) as u64;
                let dur = k
                    .machine()
                    .transport()
                    .host_copy(k.device(), bytes, k.now());
                k.busy(Category::Api, "ft.checkpoint", dur);
                snap = Some((dom.gen[0].local(pe).to_vec(), dom.gen[1].local(pe).to_vec()));
                k0 = t - 1;
                last_cp = Some(k0);
                out.checkpoints += 1;
            }

            // ③ Scheduled crash: scrub device state, reboot, announce the
            // rollback to every PE, then join the recovery ourselves.
            if !crashed && crash_at == Some(t) {
                crashed = true;
                if k.exec_mode() == ExecMode::Full {
                    dom.gen[0].local(pe).fill(f64::NAN);
                    dom.gen[1].local(pe).fill(f64::NAN);
                }
                k.busy(Category::Api, "ft.reboot", us(500.0));
                for q in 0..n {
                    sh.signal_op(k, recover, SignalOp::Add, 1, q);
                }
                do_recovery!();
                continue 'iter;
            }

            // ④ Halo waits, deadline-sliced so lost signals cannot hang us.
            if pe > 0 {
                loop {
                    if sh.signal_fetch(k, recover) > handled {
                        do_recovery!();
                        continue 'iter;
                    }
                    let deadline = k.now() + poll;
                    if sh
                        .signal_wait_until_deadline(k, &dom.sig_from_low, Cmp::Ge, t - 1, deadline)
                        .is_ok()
                    {
                        break;
                    }
                }
            }
            if pe + 1 < n {
                loop {
                    if sh.signal_fetch(k, recover) > handled {
                        do_recovery!();
                        continue 'iter;
                    }
                    let deadline = k.now() + poll;
                    if sh
                        .signal_wait_until_deadline(k, &dom.sig_from_high, Cmp::Ge, t - 1, deadline)
                        .is_ok()
                    {
                        break;
                    }
                }
            }

            // ⑤ One full sweep (boundary + inner at once — same numerics as
            // the split-group kernel), stretched by straggler windows.
            let straggle = faults.compute_mult(pe, k.now());
            let geo = Arc::clone(&dom.geo);
            let read = dom.read_gen(t).local(pe).clone();
            let write = dom.write_gen(t).local(pe).clone();
            compute_phase(
                k,
                &w,
                w.total_points(),
                1.0,
                1.0,
                straggle,
                "ft.sweep",
                || geo.sweep(&read, &write, (1, layers)),
            );

            // ⑥ Commit boundary layers to the neighbors' halos, reliably.
            let wg = dom.write_gen(t);
            if pe > 0 {
                out.retries += (sh.putmem_signal_reliable(
                    k,
                    wg,
                    dom.high_halo_off(pe - 1),
                    wg.local(pe),
                    dom.first_layer_off(),
                    le,
                    &dom.sig_from_high,
                    SignalOp::Set,
                    t,
                    pe - 1,
                ) - 1) as u64;
            }
            if pe + 1 < n {
                out.retries += (sh.putmem_signal_reliable(
                    k,
                    wg,
                    dom.low_halo_off(),
                    wg.local(pe),
                    dom.last_layer_off(pe),
                    le,
                    &dom.sig_from_low,
                    SignalOp::Set,
                    t,
                    pe + 1,
                ) - 1) as u64;
            }
            k.grid_sync();

            // ⑦ Progress heartbeat for the watchdog.
            k.agent_mut().signal(heartbeat, SignalOp::Add, 1);
            t += 1;
        }

        // Final rendezvous — interruptible, so PEs that already finished
        // can still be recruited into a late rollback and redo the tail.
        loop {
            if sh.signal_fetch(k, recover) > handled {
                do_recovery!();
                continue 'outer;
            }
            let deadline = k.now() + poll;
            if k.agent_mut().barrier_until(done_barrier, deadline).is_ok() {
                break 'outer;
            }
        }
    }
    out
}
