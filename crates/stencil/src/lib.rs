//! # stencil-lab — the paper's stencil workloads on the simulated node
//!
//! Implements 2D5pt and 3D7pt iterative Jacobi solvers in every code
//! variant the paper evaluates (§6.1.1):
//!
//! | Variant | Communication | Synchronization | Kernels |
//! |---|---|---|---|
//! | Baseline Copy | host `cudaMemcpyAsync` | host barrier | discrete |
//! | Baseline Copy Overlap | host `cudaMemcpyAsync` | host barrier | discrete, split streams |
//! | Baseline P2P | device ld/st | host barrier | discrete |
//! | Baseline NVSHMEM | device put+signal | device signal waits, host launches | discrete + sync kernel |
//! | CPU-Free | device put+signal | fully device-side | persistent |
//! | CPU-Free (PERKS) | device put+signal | fully device-side | persistent, cached |
//!
//! All variants run the *identical numerical problem* and, in
//! [`gpu_sim::ExecMode::Full`], are verified bitwise against a sequential
//! reference ([`Domain::verify`]). Large-domain sweeps run in
//! `TimingOnly` mode with the same protocol.

#![warn(missing_docs)]

pub mod config;
pub mod degraded;
pub mod domain;
pub mod ft;
pub mod geometry;
pub mod grid;
pub mod grid2d;
pub mod variants;

pub use config::{Slab, StencilConfig, Workload};
pub use degraded::{degraded_reference, run_cpu_free_degraded, DegradedConfig, DegradedExecuted};
pub use domain::{Domain, Executed};
pub use ft::{run_cpu_free_ft, FtConfig, FtExecuted};
pub use geometry::{Geo2D, Geo3D, Geometry};
pub use grid2d::{run_grid2d_baseline, run_grid2d_cpu_free, Grid2DConfig, Grid2DRun};
pub use variants::Variant;
