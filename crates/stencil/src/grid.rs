//! Functional grid math: initialization, Jacobi sweeps (2D5pt / 3D7pt),
//! sequential reference solvers, gather and comparison utilities.
//!
//! Every sweep uses the *identical* floating-point expression — in the same
//! association order — so a multi-GPU run is bitwise-equal to the
//! single-array reference regardless of execution interleaving (Jacobi
//! updates read only the previous generation).

use gpu_sim::Buf;
use std::f64::consts::PI;

/// The 2D5pt update for one point, shared by kernels and reference.
#[inline(always)]
fn update2d(up: f64, down: f64, left: f64, right: f64) -> f64 {
    ((up + down) + (left + right)) * 0.25
}

/// The 3D7pt update for one point, shared by kernels and reference.
#[inline(always)]
fn update3d(zm: f64, zp: f64, ym: f64, yp: f64, xm: f64, xp: f64) -> f64 {
    ((zm + zp) + ((ym + yp) + (xm + xp))) * (1.0 / 6.0)
}

/// Initial condition of the 2D Laplace problem: top edge follows a sine
/// profile, the other edges and the interior are zero.
pub fn init2d(nx: usize, ny: usize) -> Vec<f64> {
    let mut g = vec![0.0; nx * ny];
    for (x, v) in g.iter_mut().enumerate().take(nx) {
        *v = (PI * x as f64 / (nx - 1) as f64).sin();
    }
    g
}

/// Initial condition of the 3D Laplace problem: the z=0 face follows a 2D
/// sine product, everything else is zero.
pub fn init3d(nx: usize, ny: usize, nz: usize) -> Vec<f64> {
    let mut g = vec![0.0; nx * ny * nz];
    for y in 0..ny {
        for x in 0..nx {
            g[y * nx + x] =
                (PI * x as f64 / (nx - 1) as f64).sin() * (PI * y as f64 / (ny - 1) as f64).sin();
        }
    }
    let _ = nz;
    g
}

/// Sweep rows `rows.0 ..= rows.1` (slice-local indices) of a 2D row-major
/// grid with row stride `nx`: `dst` gets the 5-point update of `src`.
/// Columns 0 and nx-1 are left untouched (fixed boundary).
pub fn sweep2d_rows(src: &[f64], dst: &mut [f64], nx: usize, rows: (usize, usize)) {
    let (lo, hi) = rows;
    if hi < lo {
        return;
    }
    debug_assert!(lo >= 1 && (hi + 2) * nx <= src.len());
    let run = |r: usize, row: &mut [f64]| {
        for x in 1..nx - 1 {
            row[x] = update2d(
                src[(r - 1) * nx + x],
                src[(r + 1) * nx + x],
                src[r * nx + x - 1],
                src[r * nx + x + 1],
            );
        }
    };
    dst[lo * nx..(hi + 1) * nx]
        .chunks_mut(nx)
        .enumerate()
        .for_each(|(i, row)| run(lo + i, row));
}

/// Sweep an arbitrary rectangle: rows `rows.0..=rows.1`, columns
/// `cols.0..=cols.1` (slice-local indices, stride `nx`). Used by the 2D
/// grid-decomposed solver whose boundary ring is four partial strips.
pub fn sweep2d_rect(
    src: &[f64],
    dst: &mut [f64],
    nx: usize,
    rows: (usize, usize),
    cols: (usize, usize),
) {
    if rows.1 < rows.0 || cols.1 < cols.0 {
        return;
    }
    debug_assert!(rows.0 >= 1 && cols.0 >= 1 && cols.1 + 1 < nx);
    debug_assert!((rows.1 + 2) * nx <= src.len());
    for r in rows.0..=rows.1 {
        for x in cols.0..=cols.1 {
            dst[r * nx + x] = update2d(
                src[(r - 1) * nx + x],
                src[(r + 1) * nx + x],
                src[r * nx + x - 1],
                src[r * nx + x + 1],
            );
        }
    }
}

/// [`sweep2d_rect`] between two device buffers.
pub fn sweep2d_rect_buf(a: &Buf, b: &Buf, nx: usize, rows: (usize, usize), cols: (usize, usize)) {
    if rows.1 < rows.0 || cols.1 < cols.0 {
        return;
    }
    a.with(|src| b.with_mut(|dst| sweep2d_rect(src, dst, nx, rows, cols)));
}

/// [`sweep2d_rows`] between two device buffers.
pub fn sweep2d_buf(a: &Buf, b: &Buf, nx: usize, rows: (usize, usize)) {
    if rows.1 < rows.0 {
        return;
    }
    a.with(|src| b.with_mut(|dst| sweep2d_rows(src, dst, nx, rows)));
}

/// Sweep planes `planes.0 ..= planes.1` (slice-local indices) of a 3D
/// row-major grid (x fastest): `dst` gets the 7-point update of `src`.
/// Face cells (x/y extremes) are left untouched.
pub fn sweep3d_planes(src: &[f64], dst: &mut [f64], nx: usize, ny: usize, planes: (usize, usize)) {
    let (lo, hi) = planes;
    if hi < lo {
        return;
    }
    let plane = nx * ny;
    debug_assert!(lo >= 1 && (hi + 2) * plane <= src.len());
    let run = |z: usize, dplane: &mut [f64]| {
        for y in 1..ny - 1 {
            for x in 1..nx - 1 {
                let c = y * nx + x;
                dplane[c] = update3d(
                    src[(z - 1) * plane + c],
                    src[(z + 1) * plane + c],
                    src[z * plane + c - nx],
                    src[z * plane + c + nx],
                    src[z * plane + c - 1],
                    src[z * plane + c + 1],
                );
            }
        }
    };
    dst[lo * plane..(hi + 1) * plane]
        .chunks_mut(plane)
        .enumerate()
        .for_each(|(i, dplane)| run(lo + i, dplane));
}

/// [`sweep3d_planes`] between two device buffers.
pub fn sweep3d_buf(a: &Buf, b: &Buf, nx: usize, ny: usize, planes: (usize, usize)) {
    if planes.1 < planes.0 {
        return;
    }
    a.with(|src| b.with_mut(|dst| sweep3d_planes(src, dst, nx, ny, planes)));
}

/// Sequential 2D reference: run `iterations` Jacobi steps on the full grid,
/// returning the final generation.
pub fn reference2d(nx: usize, ny: usize, iterations: u64) -> Vec<f64> {
    let mut a = init2d(nx, ny);
    let mut b = a.clone();
    for _ in 0..iterations {
        sweep2d_rows(&a, &mut b, nx, (1, ny - 2));
        std::mem::swap(&mut a, &mut b);
    }
    a
}

/// Sequential 3D reference.
pub fn reference3d(nx: usize, ny: usize, nz: usize, iterations: u64) -> Vec<f64> {
    let mut a = init3d(nx, ny, nz);
    let mut b = a.clone();
    for _ in 0..iterations {
        sweep3d_planes(&a, &mut b, nx, ny, (1, nz - 2));
        std::mem::swap(&mut a, &mut b);
    }
    a
}

/// Maximum absolute difference between two grids.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init2d_has_sine_top_edge() {
        let g = init2d(5, 4);
        assert_eq!(g[0], 0.0);
        assert!((g[2] - 1.0).abs() < 1e-12); // sin(pi/2)
        assert_eq!(g[5], 0.0); // row 1 interior
    }

    #[test]
    fn one_sweep_averages_neighbors() {
        // 3x3 grid: single interior point = mean of its 4 neighbors.
        let mut a = vec![0.0; 9];
        a[1] = 4.0; // up
        a[3] = 8.0; // left
        let mut b = a.clone();
        sweep2d_rows(&a, &mut b, 3, (1, 1));
        assert_eq!(b[4], (4.0 + 8.0) * 0.25);
    }

    #[test]
    fn sweep_preserves_boundary() {
        let a = init2d(8, 8);
        let mut b = a.clone();
        sweep2d_rows(&a, &mut b, 8, (1, 6));
        for x in 0..8 {
            assert_eq!(b[x], a[x], "top row fixed");
            assert_eq!(b[7 * 8 + x], a[7 * 8 + x], "bottom row fixed");
        }
        for r in 0..8 {
            assert_eq!(b[r * 8], a[r * 8], "left col fixed");
            assert_eq!(b[r * 8 + 7], a[r * 8 + 7], "right col fixed");
        }
    }

    #[test]
    fn parallel_and_serial_sweeps_agree() {
        // Grid big enough to trip the parallel path.
        let nx = 512;
        let ny = 128;
        let a = init2d(nx, ny);
        let mut b_par = a.clone();
        sweep2d_rows(&a, &mut b_par, nx, (1, ny - 2)); // 65024 pts: parallel
        let mut b_ser = a.clone();
        for r in 1..=ny - 2 {
            sweep2d_rows(&a, &mut b_ser, nx, (r, r)); // 512 pts each: serial
        }
        assert_eq!(b_par, b_ser);
    }

    #[test]
    fn jacobi_converges_toward_harmonic() {
        // After many iterations the center approaches the analytic harmonic
        // solution's qualitative behavior: positive, below the top BC max.
        let n = 17;
        let g = reference2d(n, n, 2000);
        let center = g[(n / 2) * n + n / 2];
        assert!(center > 0.0 && center < 1.0, "center {center}");
        // Residual shrinks: one more sweep barely changes the field.
        let mut next = g.clone();
        sweep2d_rows(&g, &mut next, n, (1, n - 2));
        assert!(max_abs_diff(&g, &next) < 1e-3);
    }

    #[test]
    fn sweep3d_single_point() {
        // 3x3x3: center = mean of 6 neighbors.
        let mut a = vec![0.0; 27];
        a[4] = 6.0; // z=0 face, y=1,x=1 (zm neighbor)
        let mut b = a.clone();
        sweep3d_planes(&a, &mut b, 3, 3, (1, 1));
        assert!((b[13] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sweep3d_parallel_serial_agree() {
        let (nx, ny, nz) = (32, 32, 40);
        let a = init3d(nx, ny, nz);
        let mut b_par = a.clone();
        sweep3d_planes(&a, &mut b_par, nx, ny, (1, nz - 2));
        let mut b_ser = a.clone();
        for z in 1..=nz - 2 {
            sweep3d_planes(&a, &mut b_ser, nx, ny, (z, z));
        }
        assert_eq!(b_par, b_ser);
    }

    #[test]
    fn reference3d_keeps_faces_fixed() {
        let g = reference3d(8, 8, 8, 5);
        let init = init3d(8, 8, 8);
        // z=0 face unchanged.
        assert_eq!(&g[..64], &init[..64]);
    }

    #[test]
    fn empty_ranges_are_noops() {
        let a = init2d(8, 8);
        let mut b = a.clone();
        sweep2d_rows(&a, &mut b, 8, (3, 2));
        assert_eq!(a, b);
    }
}
