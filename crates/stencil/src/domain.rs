//! The distributed stencil domain: slab-decomposed ping-pong grids with
//! halo layers, the §4.1.1 halo signals, initialization, extraction,
//! gathering and verification — dimension-agnostic via [`Geometry`].

use crate::config::{Slab, StencilConfig, Workload};
use crate::geometry::{geometry_of, Geometry};
use crate::grid;
use cpufree_core::RunStats;
use gpu_sim::{CostModel, ExecMode, KernelCtx, Machine};
use nvshmem_sim::{ShmemWorld, SymArray, SymSignal};
use sim_des::{Category, SimDur, SimTime};
use std::sync::Arc;

/// The distributed domain: two generations of slab-local grids (one halo
/// layer each side) plus the per-PE halo signal cells.
pub struct Domain {
    /// The experiment configuration.
    pub cfg: StencilConfig,
    /// Stencil dimensionality specifics.
    pub geo: Arc<dyn Geometry>,
    /// Slab decomposition of the interior layers.
    pub slab: Slab,
    /// The simulated node.
    pub machine: Machine,
    /// NVSHMEM world (PE numbering + symmetric heap).
    pub world: ShmemWorld,
    /// Ping-pong generations; iteration `t` (1-based) reads
    /// `gen[(t+1)%2]` and writes `gen[t%2]`.
    pub gen: [SymArray; 2],
    /// Signal set by the LOW neighbor (pe-1) when it commits my low halo.
    pub sig_from_low: SymSignal,
    /// Signal set by the HIGH neighbor (pe+1) when it commits my high halo.
    pub sig_from_high: SymSignal,
}

impl Domain {
    /// Allocate and initialize the domain on a fresh machine with the
    /// default A100 cost model.
    pub fn new(cfg: &StencilConfig) -> Domain {
        let mut cost = cfg.cost.clone().unwrap_or_else(CostModel::a100_hgx);
        if let Some(topology) = cfg.topology {
            cost.topology = topology;
        }
        let machine = Machine::new(cfg.n_gpus, cost, cfg.exec);
        Domain::on_machine(cfg, machine)
    }

    /// Allocate on an existing machine (custom cost models in benches).
    pub fn on_machine(cfg: &StencilConfig, machine: Machine) -> Domain {
        cfg.validate();
        if cfg.check {
            machine.enable_checker();
        }
        if let Some(seed) = cfg.jitter {
            machine.set_wake_jitter(seed);
        }
        let geo = geometry_of(cfg);
        let slab = cfg.slab();
        let world = ShmemWorld::init(&machine);
        let local_len = (slab.max_layers() + 2) * geo.layer_elems();
        let gen = [
            world.malloc("grid.a", local_len),
            world.malloc("grid.b", local_len),
        ];
        let dom = Domain {
            cfg: cfg.clone(),
            geo,
            slab,
            machine,
            sig_from_low: world.signal(0),
            sig_from_high: world.signal(0),
            world,
            gen,
        };
        dom.initialize();
        dom
    }

    /// Fill both generations of every PE from the global initial condition.
    fn initialize(&self) {
        if self.cfg.exec == ExecMode::TimingOnly {
            // Buffers are virtual; skip building the (possibly huge) init.
            return;
        }
        let le = self.geo.layer_elems();
        let init = self.geo.init();
        for pe in 0..self.cfg.n_gpus {
            let start = self.slab.start(pe);
            let layers = self.layers(pe);
            // Local layer l (0..layers+2) maps to global layer start + l.
            let src = &init[start * le..(start + layers + 2) * le];
            for g in &self.gen {
                g.local(pe).write_slice(0, src);
            }
        }
    }

    /// Number of owned interior layers on `pe`.
    pub fn layers(&self, pe: usize) -> usize {
        self.slab.layers(pe)
    }

    /// Elements per layer.
    pub fn layer_elems(&self) -> usize {
        self.geo.layer_elems()
    }

    /// The per-PE workload arithmetic.
    pub fn workload(&self, pe: usize) -> Workload {
        self.geo.workload(self.layers(pe), self.cfg.no_compute)
    }

    /// Element offset of the first owned layer.
    pub fn first_layer_off(&self) -> usize {
        self.layer_elems()
    }

    /// Element offset of the last owned layer on `pe`.
    pub fn last_layer_off(&self, pe: usize) -> usize {
        self.layers(pe) * self.layer_elems()
    }

    /// Element offset of `pe`'s LOW halo layer (written by pe-1).
    pub fn low_halo_off(&self) -> usize {
        0
    }

    /// Element offset of `pe`'s HIGH halo layer (written by pe+1).
    pub fn high_halo_off(&self, pe: usize) -> usize {
        (self.layers(pe) + 1) * self.layer_elems()
    }

    /// The generation read at iteration `t` (1-based).
    pub fn read_gen(&self, t: u64) -> &SymArray {
        &self.gen[((t + 1) % 2) as usize]
    }

    /// The generation written at iteration `t` (1-based).
    pub fn write_gen(&self, t: u64) -> &SymArray {
        &self.gen[(t % 2) as usize]
    }

    /// The generation holding the final field after all iterations.
    pub fn final_gen(&self) -> &SymArray {
        &self.gen[(self.cfg.iterations % 2) as usize]
    }

    /// Extract each PE's owned interior layers from the final generation.
    pub fn extract_owned(&self) -> Vec<Vec<f64>> {
        let le = self.layer_elems();
        (0..self.cfg.n_gpus)
            .map(|pe| {
                let layers = self.layers(pe);
                let mut out = vec![0.0; layers * le];
                self.final_gen().local(pe).read_slice(le, &mut out);
                out
            })
            .collect()
    }

    /// Assemble the full global grid from owned regions + fixed boundary.
    pub fn gather(&self) -> Vec<f64> {
        let le = self.layer_elems();
        let mut full = self.geo.init();
        for (pe, owned) in self.extract_owned().iter().enumerate() {
            let start = self.slab.start(pe);
            full[(start + 1) * le..(start + 1 + self.layers(pe)) * le].copy_from_slice(owned);
        }
        full
    }

    /// Max abs deviation of the multi-GPU result from the sequential
    /// reference (only meaningful in [`ExecMode::Full`]).
    pub fn verify(&self) -> f64 {
        assert_eq!(
            self.cfg.exec,
            ExecMode::Full,
            "verification requires ExecMode::Full"
        );
        let reference = self.geo.reference(self.cfg.iterations);
        grid::max_abs_diff(&self.gather(), &reference)
    }
}

/// Outcome of one variant run.
#[derive(Debug, Clone)]
pub struct Executed {
    /// End-to-end virtual time.
    pub total: SimDur,
    /// Trace-derived measurements.
    pub stats: RunStats,
    /// Deviation from the sequential reference (`None` in timing-only runs).
    pub max_err: Option<f64>,
    /// Order-sensitive checksum of the final field (determinism tests).
    pub checksum: u64,
    /// The full span trace (timeline rendering, custom analyses).
    pub trace: sim_des::Trace,
    /// Checker report (`None` unless the config enabled `check`).
    pub check: Option<gpu_sim::CheckReport>,
}

impl Executed {
    /// Collect results after `machine.run()` returned `end`.
    pub fn collect(dom: &Domain, end: SimTime) -> Executed {
        let total = end.since(SimTime::ZERO);
        let trace = dom.machine.trace();
        let stats = RunStats::from_trace(&trace, total, dom.cfg.iterations);
        let max_err = (dom.cfg.exec == ExecMode::Full && !dom.cfg.no_compute).then(|| dom.verify());
        let mut checksum = 0u64;
        for pe in 0..dom.cfg.n_gpus {
            checksum = checksum
                .wrapping_mul(1_000_003)
                .wrapping_add(dom.final_gen().local(pe).checksum());
        }
        Executed {
            total,
            stats,
            max_err,
            checksum,
            trace,
            check: dom.machine.checker().map(|c| c.report()),
        }
    }

    /// Per-iteration time.
    pub fn per_iter(&self) -> SimDur {
        self.stats.per_iter
    }
}

/// Charge a compute phase and run the functional sweep when appropriate.
///
/// `points` at `fraction` of the device; `read_scale` models PERKS caching;
/// `penalty` models cooperative software tiling.
#[allow(clippy::too_many_arguments)]
pub fn compute_phase(
    k: &mut KernelCtx<'_>,
    w: &Workload,
    points: u64,
    fraction: f64,
    read_scale: f64,
    penalty: f64,
    label: &str,
    sweep: impl FnOnce(),
) {
    let dur = w.sweep_dur(k.cost(), points, fraction, read_scale, penalty);
    if dur > SimDur::ZERO {
        k.busy(Category::Compute, label, dur);
    }
    if k.exec_mode() == ExecMode::Full && !w.no_compute {
        sweep();
    }
}
