//! Geometry abstraction: everything that differs between the 2D5pt and
//! 3D7pt Jacobi stencils, behind one trait so the variant implementations
//! (baselines, CPU-Free, PERKS) are written once.
//!
//! A "layer" is the unit of slab decomposition and halo exchange: a row in
//! 2D, a plane in 3D.

use crate::config::{StencilConfig, Workload};
use crate::grid;
use gpu_sim::Buf;

/// The dimensional specifics of a stencil problem.
pub trait Geometry: Send + Sync {
    /// Elements in one layer (row / plane).
    fn layer_elems(&self) -> usize;
    /// Number of layers along the decomposed axis, including both boundary
    /// layers.
    fn axis(&self) -> usize;
    /// The full global initial condition.
    fn init(&self) -> Vec<f64>;
    /// The sequential reference field after `iterations` steps.
    fn reference(&self, iterations: u64) -> Vec<f64>;
    /// Apply one Jacobi update to local layers `range.0..=range.1` of a
    /// slab-local grid (layer 0 is the low halo).
    fn sweep(&self, a: &Buf, b: &Buf, range: (usize, usize));
    /// Per-PE workload arithmetic for `layers` owned layers.
    fn workload(&self, layers: usize, no_compute: bool) -> Workload;
    /// Short name for traces ("2d5pt" / "3d7pt").
    fn name(&self) -> &'static str;
}

/// 2D5pt Jacobi over an `nx × ny` grid, decomposed along Y.
#[derive(Debug, Clone, Copy)]
pub struct Geo2D {
    /// Columns (fastest axis).
    pub nx: usize,
    /// Rows (decomposed axis).
    pub ny: usize,
}

impl Geometry for Geo2D {
    fn layer_elems(&self) -> usize {
        self.nx
    }

    fn axis(&self) -> usize {
        self.ny
    }

    fn init(&self) -> Vec<f64> {
        grid::init2d(self.nx, self.ny)
    }

    fn reference(&self, iterations: u64) -> Vec<f64> {
        grid::reference2d(self.nx, self.ny, iterations)
    }

    fn sweep(&self, a: &Buf, b: &Buf, range: (usize, usize)) {
        grid::sweep2d_buf(a, b, self.nx, range);
    }

    fn workload(&self, layers: usize, no_compute: bool) -> Workload {
        Workload::jacobi2d(self.nx, layers, no_compute)
    }

    fn name(&self) -> &'static str {
        "2d5pt"
    }
}

/// 3D7pt Jacobi over an `nx × ny × nz` grid, decomposed along Z.
#[derive(Debug, Clone, Copy)]
pub struct Geo3D {
    /// X extent (fastest axis).
    pub nx: usize,
    /// Y extent.
    pub ny: usize,
    /// Z extent (decomposed axis).
    pub nz: usize,
}

impl Geometry for Geo3D {
    fn layer_elems(&self) -> usize {
        self.nx * self.ny
    }

    fn axis(&self) -> usize {
        self.nz
    }

    fn init(&self) -> Vec<f64> {
        grid::init3d(self.nx, self.ny, self.nz)
    }

    fn reference(&self, iterations: u64) -> Vec<f64> {
        grid::reference3d(self.nx, self.ny, self.nz, iterations)
    }

    fn sweep(&self, a: &Buf, b: &Buf, range: (usize, usize)) {
        grid::sweep3d_buf(a, b, self.nx, self.ny, range);
    }

    fn workload(&self, layers: usize, no_compute: bool) -> Workload {
        Workload::jacobi3d(self.nx, self.ny, layers, no_compute)
    }

    fn name(&self) -> &'static str {
        "3d7pt"
    }
}

/// Select the geometry described by a configuration.
pub fn geometry_of(cfg: &StencilConfig) -> std::sync::Arc<dyn Geometry> {
    if cfg.is_3d() {
        std::sync::Arc::new(Geo3D {
            nx: cfg.nx,
            ny: cfg.ny,
            nz: cfg.nz,
        })
    } else {
        std::sync::Arc::new(Geo2D {
            nx: cfg.nx,
            ny: cfg.ny,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Place;

    #[test]
    fn geo2d_properties() {
        let g = Geo2D { nx: 16, ny: 32 };
        assert_eq!(g.layer_elems(), 16);
        assert_eq!(g.axis(), 32);
        assert_eq!(g.init().len(), 512);
        assert_eq!(g.name(), "2d5pt");
    }

    #[test]
    fn geo3d_properties() {
        let g = Geo3D {
            nx: 8,
            ny: 8,
            nz: 16,
        };
        assert_eq!(g.layer_elems(), 64);
        assert_eq!(g.axis(), 16);
        assert_eq!(g.init().len(), 1024);
        assert_eq!(g.name(), "3d7pt");
    }

    #[test]
    fn geometry_of_dispatches_on_nz() {
        let cfg2 = StencilConfig::square2d(16, 1, 2);
        assert_eq!(geometry_of(&cfg2).name(), "2d5pt");
        let cfg3 = StencilConfig::cube3d(8, 8, 16, 1, 2);
        assert_eq!(geometry_of(&cfg3).name(), "3d7pt");
    }

    #[test]
    fn sweep_via_trait_matches_direct() {
        let g = Geo2D { nx: 8, ny: 8 };
        let init = g.init();
        let a = Buf::new(Place::Host, "a", 64);
        let b = Buf::new(Place::Host, "b", 64);
        a.write_slice(0, &init);
        b.write_slice(0, &init);
        g.sweep(&a, &b, (1, 6));
        let mut direct = init.clone();
        grid::sweep2d_rows(&init, &mut direct, 8, (1, 6));
        assert_eq!(b.to_vec(), direct);
    }
}
