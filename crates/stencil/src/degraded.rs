//! Degraded-mode CPU-Free Jacobi: instead of rolling back to a checkpoint
//! (see [`crate::ft`]), the surviving quorum **keeps going** when a PE
//! crashes or a link dies — the chaos engine's graceful-degradation path.
//!
//! # Model
//!
//! * A [`sim_des::CrashFault`] is a *permanent* death at the start of
//!   iteration `d`: the PE completed iterations `1..d` and pushed its
//!   iteration-`d-1` halos, then stops forever. Membership is
//!   plan-derived ([`gpu_sim::alive_at`] — "oracle membership"): every
//!   survivor independently computes the same death schedule from the
//!   shared fault plan, so no failure detector or agreement protocol is
//!   simulated, and runs stay bit-deterministic.
//! * Survivors **freeze the halo** a dead neighbor last committed: at the
//!   neighbor's death iteration the newest halo layer is copied into the
//!   other ping-pong generation, so every later sweep reads the
//!   iteration-`d-1` boundary values. The dead PE's slab stays at its
//!   last completed state; the global problem degrades into independent
//!   sub-problems separated by frozen internal boundaries.
//! * A **killed link** ([`sim_des::LinkFault::kill`]) between survivors
//!   needs no protocol change at all: the transport reroutes every
//!   delivery over surviving pairs (see [`gpu_sim::HealedRoutes`]), so
//!   results are bit-identical to the fault-free run — only virtual time
//!   changes. An unroutable partition surfaces as an attributed panic.
//! * After the sweep loop the quorum proves the healed collectives work:
//!   every survivor joins an [`nvshmem_sim::allreduce_scalar_quorum`] of
//!   its local field sum and receives the identical total plus the
//!   deterministic contribution report.
//!
//! The oracle for all of this is [`degraded_reference`]: a sequential
//! full-grid sweep in which a dead PE's layers simply stop updating.
//! Survivor slabs must match it **bit for bit** on every topology preset.

use crate::config::StencilConfig;
use crate::domain::{compute_phase, Domain};
use crate::geometry::geometry_of;
use cpufree_core::launch_cpu_free;
use gpu_sim::{alive_at, BlockGroup, Buf, ExecMode, FaultPlan, KernelCtx, Place};
use nvshmem_sim::{allreduce_scalar_quorum, AllreduceWs, BackoffPolicy, ReduceOp, ShmemCtx};
use sim_des::lock::Mutex;
use sim_des::{Category, Cmp, SignalOp, SimDur, SimError, SimTime};
use std::sync::Arc;

/// Configuration of a degraded-mode run.
#[derive(Clone)]
pub struct DegradedConfig {
    /// The underlying stencil problem.
    pub base: StencilConfig,
    /// The deterministic fault schedule (empty plan = fault-free).
    pub plan: FaultPlan,
    /// Retry-backoff policy for the reliable halo puts (`None` = default).
    pub backoff: Option<BackoffPolicy>,
}

impl DegradedConfig {
    /// Degraded run of `base` under `plan` with the default backoff.
    pub fn new(base: StencilConfig, plan: FaultPlan) -> DegradedConfig {
        DegradedConfig {
            base,
            plan,
            backoff: None,
        }
    }
}

/// A quorum allreduce result: the reduced value plus the contribution
/// report (ascending member ids).
type Agreement = (f64, Vec<usize>);

/// Outcome of a degraded-mode run.
#[derive(Debug, Clone)]
pub struct DegradedExecuted {
    /// End-to-end virtual time.
    pub total: SimDur,
    /// The surviving quorum (ascending PE ids) — the PEs whose results
    /// are verified and checksummed.
    pub quorum: Vec<usize>,
    /// Max abs deviation of the survivors' slabs from the sequential
    /// [`degraded_reference`] (`None` in timing-only / no-compute runs).
    /// Bit-identical degradation means exactly `0.0`.
    pub max_err: Option<f64>,
    /// Order-sensitive checksum over the survivors' final slabs.
    pub checksum: u64,
    /// The healed quorum allreduce of the survivors' local field sums:
    /// the reduced value plus the contribution report, identical on every
    /// member (`None` in timing-only / no-compute runs).
    pub agreed: Option<Agreement>,
    /// Extra put attempts spent on dropped deliveries (all PEs).
    pub retries: u64,
    /// Link pairs dead by the end of the run (transfers between them were
    /// rerouted).
    pub dead_pairs: Vec<(usize, usize)>,
}

/// Run the CPU-Free stencil in degraded mode under `cfg.plan`.
///
/// Crashed PEs drop out permanently; survivors complete all iterations
/// with frozen halos at the death boundaries and verify against
/// [`degraded_reference`]. Killed links are rerouted transparently.
pub fn run_cpu_free_degraded(cfg: &DegradedConfig) -> Result<DegradedExecuted, SimError> {
    let dom = Arc::new(Domain::new(&cfg.base));
    dom.machine.set_fault_plan(cfg.plan.clone());
    let n = cfg.base.n_gpus;
    let iters = cfg.base.iterations;
    let quorum = alive_at(&cfg.plan, n, iters);
    let ws = AllreduceWs::new_ring(&dom.world);

    let retries = Arc::new(Mutex::new(0u64));
    let agreed: Arc<Mutex<Vec<Option<Agreement>>>> = Arc::new(Mutex::new(vec![None; n]));

    let dom_l = Arc::clone(&dom);
    let cfg_l = cfg.clone();
    let quorum_l = quorum.clone();
    let retries_l = Arc::clone(&retries);
    let agreed_l = Arc::clone(&agreed);
    let end = launch_cpu_free(
        &dom.machine.clone(),
        "cpufree_degraded",
        cfg.base.threads_per_block,
        move |pe| {
            let dom = Arc::clone(&dom_l);
            let cfg = cfg_l.clone();
            let quorum = quorum_l.clone();
            let mut ws = ws.clone();
            let retries = Arc::clone(&retries_l);
            let agreed = Arc::clone(&agreed_l);
            vec![BlockGroup::new("degraded", 1, move |k| {
                let r = pe_body(k, &dom, &cfg, pe, n);
                *retries.lock() += r;
                // Survivors prove the healed collective: quorum allreduce
                // of the local field sum, bitwise identical everywhere.
                if quorum.contains(&pe) {
                    let mut sh = ShmemCtx::new(&dom.world, k);
                    if let Some(policy) = &cfg.backoff {
                        sh.set_backoff_policy(policy.clone());
                    }
                    let value = local_field_sum(&dom, pe);
                    let mut extra = 0u64;
                    let res = allreduce_scalar_quorum(
                        &mut sh,
                        k,
                        &mut ws,
                        value,
                        ReduceOp::Sum,
                        &quorum,
                        &mut extra,
                    );
                    *retries.lock() += extra;
                    agreed.lock()[pe] = Some(res);
                }
            })]
        },
    )?;

    let total = end.since(SimTime::ZERO);
    let functional = cfg.base.exec == ExecMode::Full && !cfg.base.no_compute;
    let max_err = functional.then(|| verify_degraded(&dom, &cfg.plan, &quorum));
    let mut checksum = 0u64;
    for &pe in &quorum {
        checksum = checksum
            .wrapping_mul(1_000_003)
            .wrapping_add(dom.final_gen().local(pe).checksum());
    }
    let agreed_all = agreed.lock();
    let agreed_result = quorum.first().and_then(|&pe| agreed_all[pe].clone());
    // Every member must have received the *bitwise* identical reduction
    // and report (compared through the bit pattern — exactness, not ≈).
    let bits = |r: &Option<(f64, Vec<usize>)>| r.as_ref().map(|(v, m)| (v.to_bits(), m.clone()));
    for &pe in &quorum {
        assert_eq!(
            bits(&agreed_all[pe]),
            bits(&agreed_result),
            "quorum allreduce diverged on pe{pe}"
        );
    }
    let dead_pairs = dom.machine.faults().dead_pairs(end);
    let retries = *retries.lock();
    Ok(DegradedExecuted {
        total,
        quorum,
        max_err,
        checksum,
        agreed: if functional { agreed_result } else { None },
        retries,
        dead_pairs,
    })
}

/// One PE's degraded persistent loop; returns its retry count.
fn pe_body(k: &mut KernelCtx<'_>, dom: &Domain, cfg: &DegradedConfig, pe: usize, n: usize) -> u64 {
    let world = dom.world.clone();
    let mut sh = ShmemCtx::new(&world, k);
    if let Some(policy) = &cfg.backoff {
        sh.set_backoff_policy(policy.clone());
    }
    let faults = dom.machine.faults();
    let le = dom.layer_elems();
    let layers = dom.layers(pe);
    let w = dom.workload(pe);
    let iters = dom.cfg.iterations;
    // Death schedule — mine and my neighbors', derived from the shared
    // plan (oracle membership).
    let my_death = faults.crash_iteration(pe).map(|d| d.max(1));
    let death_low = (pe > 0)
        .then(|| faults.crash_iteration(pe - 1).map(|d| d.max(1)))
        .flatten();
    let death_high = (pe + 1 < n)
        .then(|| faults.crash_iteration(pe + 1).map(|d| d.max(1)))
        .flatten();
    let mut retries = 0u64;

    for t in 1..=iters {
        // ① Scheduled death: drain in-flight puts (an nbi put reads its
        // source at delivery time — the final halos must leave intact),
        // scrub the slab (nobody may read it — the boundary values
        // survivors need already live in their halos) and stop forever.
        if my_death == Some(t) {
            sh.quiet(k);
            if k.exec_mode() == ExecMode::Full {
                dom.gen[0].local(pe).fill(f64::NAN);
                dom.gen[1].local(pe).fill(f64::NAN);
            }
            k.busy(Category::Api, "degraded.die", sim_des::us(1.0));
            return retries;
        }

        // ② Halo waits, clamped at a dead neighbor's last commit. The
        // `from` identity keeps any hang attributable to a wait-for edge.
        if pe > 0 {
            let target = death_low.map_or(t - 1, |d| (t - 1).min(d - 1));
            sh.signal_wait_from(k, &dom.sig_from_low, Cmp::Ge, target, pe - 1);
        }
        if pe + 1 < n {
            let target = death_high.map_or(t - 1, |d| (t - 1).min(d - 1));
            sh.signal_wait_from(k, &dom.sig_from_high, Cmp::Ge, target, pe + 1);
        }

        // ③ Freeze a dying neighbor's halo: at its death iteration the
        // newest halo (generation d-1, just waited for in this iteration's
        // read generation) is copied into the other generation, so both
        // ping-pong halves carry the final boundary forever after.
        if k.exec_mode() == ExecMode::Full {
            if death_low == Some(t) {
                let mut row = vec![0.0; le];
                dom.read_gen(t)
                    .local(pe)
                    .read_slice(dom.low_halo_off(), &mut row);
                dom.write_gen(t)
                    .local(pe)
                    .write_slice(dom.low_halo_off(), &row);
            }
            if death_high == Some(t) {
                let mut row = vec![0.0; le];
                dom.read_gen(t)
                    .local(pe)
                    .read_slice(dom.high_halo_off(pe), &mut row);
                dom.write_gen(t)
                    .local(pe)
                    .write_slice(dom.high_halo_off(pe), &row);
            }
        }

        // ④ One full sweep, stretched by straggler windows.
        let straggle = faults.compute_mult(pe, k.now());
        let geo = Arc::clone(&dom.geo);
        let read = dom.read_gen(t).local(pe).clone();
        let write = dom.write_gen(t).local(pe).clone();
        compute_phase(
            k,
            &w,
            w.total_points(),
            1.0,
            1.0,
            straggle,
            "degraded.sweep",
            || geo.sweep(&read, &write, (1, layers)),
        );

        // ⑤ Commit boundary layers to *living* neighbors' halos, reliably.
        // (Transfers over a killed link reroute inside the transport.)
        let wg = dom.write_gen(t);
        if pe > 0 && death_low.is_none_or(|d| t < d) {
            retries += (sh.putmem_signal_reliable(
                k,
                wg,
                dom.high_halo_off(pe - 1),
                wg.local(pe),
                dom.first_layer_off(),
                le,
                &dom.sig_from_high,
                SignalOp::Set,
                t,
                pe - 1,
            ) - 1) as u64;
        }
        if pe + 1 < n && death_high.is_none_or(|d| t < d) {
            retries += (sh.putmem_signal_reliable(
                k,
                wg,
                dom.low_halo_off(),
                wg.local(pe),
                dom.last_layer_off(pe),
                le,
                &dom.sig_from_low,
                SignalOp::Set,
                t,
                pe + 1,
            ) - 1) as u64;
        }
        k.grid_sync();
    }
    retries
}

/// Deterministic sum of `pe`'s owned interior (ascending element order) —
/// the value each survivor contributes to the final quorum allreduce.
fn local_field_sum(dom: &Domain, pe: usize) -> f64 {
    if dom.cfg.exec != ExecMode::Full || dom.cfg.no_compute {
        return 0.0;
    }
    let le = dom.layer_elems();
    let mut owned = vec![0.0; dom.layers(pe) * le];
    dom.final_gen().local(pe).read_slice(le, &mut owned);
    owned.iter().fold(0.0, |acc, v| acc + v)
}

/// The sequential oracle for degraded runs: a full-grid ping-pong sweep in
/// which layers owned by a PE dead at iteration `t` (per [`alive_at`])
/// simply stop updating — frozen at their last completed generation, just
/// like the distributed frozen halos. Returns the final full grid.
pub fn degraded_reference(cfg: &StencilConfig, plan: &FaultPlan) -> Vec<f64> {
    let geo = geometry_of(cfg);
    let slab = cfg.slab();
    let n = cfg.n_gpus;
    let mut cur = geo.init();
    let len = cur.len();
    for t in 1..=cfg.iterations {
        let a = Buf::new(Place::Host, "degraded.ref.a", len);
        let b = Buf::new(Place::Host, "degraded.ref.b", len);
        a.write_slice(0, &cur);
        b.write_slice(0, &cur); // dead + boundary layers carry forward
        for pe in alive_at(plan, n, t) {
            let start = slab.start(pe);
            geo.sweep(&a, &b, (start + 1, start + slab.layers(pe)));
        }
        cur = b.to_vec();
    }
    cur
}

/// Max abs deviation of the survivors' owned slabs from
/// [`degraded_reference`] — `0.0` when degradation is bit-exact.
fn verify_degraded(dom: &Domain, plan: &FaultPlan, quorum: &[usize]) -> f64 {
    let reference = degraded_reference(&dom.cfg, plan);
    let le = dom.layer_elems();
    let mut max = 0.0f64;
    for &pe in quorum {
        let layers = dom.layers(pe);
        let start = dom.slab.start(pe);
        let mut owned = vec![0.0; layers * le];
        dom.final_gen().local(pe).read_slice(le, &mut owned);
        let want = &reference[(start + 1) * le..(start + 1 + layers) * le];
        for (got, want) in owned.iter().zip(want) {
            max = max.max((got - want).abs());
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::TopologyKind;
    use sim_des::{CrashFault, LinkFault, StragglerFault};

    fn base(kind: TopologyKind) -> StencilConfig {
        StencilConfig::square2d(32, 8, 4).with_topology(kind)
    }

    #[test]
    fn fault_free_degraded_matches_plain_reference() {
        let cfg = DegradedConfig::new(base(TopologyKind::NvlinkAllToAll), FaultPlan::new());
        let out = run_cpu_free_degraded(&cfg).unwrap();
        assert_eq!(out.quorum, vec![0, 1, 2, 3]);
        assert_eq!(out.max_err, Some(0.0));
        // With nobody dead the degraded reference IS the plain reference.
        let geo = geometry_of(&cfg.base);
        assert_eq!(
            degraded_reference(&cfg.base, &cfg.plan),
            geo.reference(cfg.base.iterations)
        );
        let (sum, report) = out.agreed.unwrap();
        assert_eq!(report, vec![0, 1, 2, 3]);
        assert!(sum.is_finite());
    }

    #[test]
    fn single_pe_crash_survivors_match_degraded_reference_on_all_presets() {
        let plan = FaultPlan::new().with_crash(CrashFault {
            node: 2,
            at_iteration: 4,
        });
        let mut checksums = Vec::new();
        for kind in TopologyKind::presets() {
            let cfg = DegradedConfig::new(base(kind), plan.clone());
            let out = run_cpu_free_degraded(&cfg).unwrap();
            assert_eq!(out.quorum, vec![0, 1, 3], "{}", kind.name());
            assert_eq!(out.max_err, Some(0.0), "{}", kind.name());
            let (_, report) = out.agreed.clone().unwrap();
            assert_eq!(report, vec![0, 1, 3], "{}", kind.name());
            checksums.push(out.checksum);
        }
        // Survivor results are topology-invariant (bit-identical).
        assert!(checksums.windows(2).all(|w| w[0] == w[1]), "{checksums:?}");
    }

    #[test]
    fn single_link_kill_is_bit_identical_to_fault_free() {
        for kind in TopologyKind::presets() {
            let clean =
                run_cpu_free_degraded(&DegradedConfig::new(base(kind), FaultPlan::new())).unwrap();
            // Kill the link between the two middle neighbors mid-run.
            let plan = FaultPlan::new().with_link(LinkFault::kill(
                1,
                2,
                SimTime::ZERO + sim_des::us(10.0),
            ));
            let out = run_cpu_free_degraded(&DegradedConfig::new(base(kind), plan)).unwrap();
            assert_eq!(out.quorum, vec![0, 1, 2, 3], "{}", kind.name());
            assert_eq!(out.max_err, Some(0.0), "{}", kind.name());
            assert_eq!(out.checksum, clean.checksum, "{}", kind.name());
            assert_eq!(out.dead_pairs, vec![(1, 2)], "{}", kind.name());
            // Rerouting costs time, never correctness.
            assert!(out.total >= clean.total, "{}", kind.name());
        }
    }

    #[test]
    fn crash_plus_straggler_still_verifies() {
        let plan = FaultPlan::new()
            .with_crash(CrashFault {
                node: 0,
                at_iteration: 3,
            })
            .with_straggler(StragglerFault {
                node: 1,
                from: SimTime(0),
                until: SimTime(u64::MAX),
                compute_mult: 3.0,
            });
        let cfg = DegradedConfig::new(base(TopologyKind::PcieTree), plan);
        let out = run_cpu_free_degraded(&cfg).unwrap();
        assert_eq!(out.quorum, vec![1, 2, 3]);
        assert_eq!(out.max_err, Some(0.0));
    }

    #[test]
    fn degraded_run_is_deterministic() {
        let plan = FaultPlan::new().with_crash(CrashFault {
            node: 1,
            at_iteration: 2,
        });
        let run = || {
            let cfg = DegradedConfig::new(base(TopologyKind::NvlinkRing), plan.clone());
            let out = run_cpu_free_degraded(&cfg).unwrap();
            (out.total, out.checksum, out.agreed.clone())
        };
        assert_eq!(run(), run());
    }
}
