//! Cross-variant correctness and shape tests for the stencil workloads.

use sim_des::SimDur;
use stencil_lab::{StencilConfig, Variant};

/// A small fully-verifiable 2D configuration.
fn small2d(n_gpus: usize) -> StencilConfig {
    StencilConfig::square2d(34, 9, n_gpus)
}

/// A small fully-verifiable 3D configuration.
fn small3d(n_gpus: usize) -> StencilConfig {
    StencilConfig::cube3d(18, 18, 18, 8, n_gpus)
}

#[test]
fn all_variants_produce_exact_2d_results() {
    for v in [
        Variant::BaselineCopy,
        Variant::BaselineOverlap,
        Variant::BaselineP2P,
        Variant::BaselineNvshmem,
        Variant::CpuFree,
        Variant::CpuFreePerks,
        Variant::CpuFreeDual,
        Variant::CpuFreeFixedSplit,
    ] {
        let out = v.run(&small2d(4));
        assert_eq!(
            out.max_err,
            Some(0.0),
            "{} deviates from the reference",
            v.label()
        );
    }
}

#[test]
fn all_variants_produce_exact_3d_results() {
    for v in [
        Variant::BaselineCopy,
        Variant::BaselineOverlap,
        Variant::BaselineP2P,
        Variant::BaselineNvshmem,
        Variant::CpuFree,
        Variant::CpuFreePerks,
        Variant::CpuFreeDual,
    ] {
        let out = v.run(&small3d(3));
        assert_eq!(
            out.max_err,
            Some(0.0),
            "{} deviates from the reference (3D)",
            v.label()
        );
    }
}

#[test]
fn variants_agree_on_single_gpu_too() {
    for v in [Variant::BaselineCopy, Variant::CpuFree] {
        let out = v.run(&small2d(1));
        assert_eq!(out.max_err, Some(0.0), "{}", v.label());
    }
}

#[test]
fn odd_and_even_iteration_counts_verify() {
    for iters in [1u64, 2, 5, 6] {
        let mut cfg = small2d(4);
        cfg.iterations = iters;
        let out = Variant::CpuFree.run(&cfg);
        assert_eq!(out.max_err, Some(0.0), "iters={iters}");
    }
}

#[test]
fn uneven_slab_split_verifies() {
    // 32 interior rows over 5 GPUs: 7,7,6,6,6.
    let cfg = StencilConfig::square2d(34, 6, 5);
    for v in [Variant::BaselineNvshmem, Variant::CpuFree] {
        let out = v.run(&cfg);
        assert_eq!(out.max_err, Some(0.0), "{}", v.label());
    }
}

#[test]
fn cpu_free_beats_cpu_controlled_on_small_domains() {
    let cfg = small2d(4).timing_only();
    let base = Variant::BaselineOverlap.run(&cfg);
    let free = Variant::CpuFree.run(&cfg);
    assert!(
        free.total.as_nanos() * 2 < base.total.as_nanos(),
        "CPU-Free {} should be far below Baseline Overlap {}",
        free.total,
        base.total
    );
}

#[test]
fn nvshmem_baseline_between_copy_and_cpu_free() {
    let cfg = small2d(4).timing_only();
    let copy = Variant::BaselineCopy.run(&cfg);
    let nvshmem = Variant::BaselineNvshmem.run(&cfg);
    let free = Variant::CpuFree.run(&cfg);
    assert!(nvshmem.total < copy.total, "NVSHMEM beats Copy");
    assert!(free.total < nvshmem.total, "CPU-Free beats NVSHMEM");
}

#[test]
fn timing_only_matches_full_mode_time() {
    let full = Variant::CpuFree.run(&small2d(4));
    let timing = Variant::CpuFree.run(&small2d(4).timing_only());
    assert_eq!(
        full.total, timing.total,
        "exec mode must not affect virtual time"
    );
}

#[test]
fn no_compute_strips_compute_from_trace() {
    let cfg = small2d(4).without_compute();
    let out = Variant::CpuFree.run(&cfg);
    assert_eq!(out.stats.compute_busy, SimDur::ZERO);
    assert!(out.total.as_nanos() > 0);
}

#[test]
fn determinism_across_repeated_runs() {
    for v in [Variant::BaselineOverlap, Variant::CpuFree] {
        let a = v.run(&small2d(4));
        let b = v.run(&small2d(4));
        assert_eq!(a.total, b.total, "{}", v.label());
        assert_eq!(a.checksum, b.checksum, "{}", v.label());
    }
}

#[test]
fn dual_design_performance_close_to_single() {
    // The paper observed no significant difference between the designs.
    let cfg = small2d(4).timing_only();
    let single = Variant::CpuFree.run(&cfg);
    let dual = Variant::CpuFreeDual.run(&cfg);
    let ratio = dual.total.as_nanos() as f64 / single.total.as_nanos() as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "dual/single per-iteration ratio out of range: {ratio}"
    );
}

#[test]
fn overlap_ratio_higher_for_cpu_free() {
    // Fig 2.2b: CPU-Free hides almost all communication; the overlap
    // baseline struggles. Use a medium-ish grid so compute exists.
    let cfg = StencilConfig::square2d(130, 20, 4).timing_only();
    let base = Variant::BaselineOverlap.run(&cfg);
    let free = Variant::CpuFree.run(&cfg);
    assert!(
        free.stats.comm_overlap_ratio >= base.stats.comm_overlap_ratio,
        "cpu-free overlap {} < baseline overlap {}",
        free.stats.comm_overlap_ratio,
        base.stats.comm_overlap_ratio
    );
}

#[test]
fn perks_faster_on_saturated_domains() {
    // Oversaturated per-GPU chunk: PERKS avoids the tiling penalty and
    // cuts read traffic.
    let cfg = StencilConfig::square2d(2050, 4, 2).timing_only();
    let plain = Variant::CpuFree.run(&cfg);
    let perks = Variant::CpuFreePerks.run(&cfg);
    assert!(
        perks.total < plain.total,
        "PERKS {} should beat plain CPU-Free {}",
        perks.total,
        plain.total
    );
}
