//! # gpu-sim — a deterministic multi-GPU node simulator
//!
//! Models the hardware/runtime substrate of the CPU-Free paper's testbed —
//! an NVIDIA HGX node with A100 GPUs connected all-to-all over NVLink — on
//! top of the `sim-des` virtual-time engine:
//!
//! * **Devices** with SM counts and co-residency limits ([`DeviceSpec`]);
//! * **Streams** — in-order operation queues with concurrent execution
//!   across streams ([`Stream`]);
//! * a **host runtime** whose every call charges calibrated CUDA API
//!   latencies ([`HostCtx`]): kernel launches, async memcpys, events, stream
//!   synchronization, host barriers;
//! * **cooperative (persistent) kernels** with `grid.sync()` and the
//!   cooperative-launch co-residency check ([`HostCtx::launch_cooperative`]);
//! * **memory** as real `f64` buffers ([`Buf`]) so workloads are verifiable,
//!   with time charged separately through the [`CostModel`];
//! * UVA-style **peer load/store** from inside kernels
//!   ([`KernelCtx::p2p_copy`]);
//! * an **interconnect topology** — routed, shared links with serialized
//!   bandwidth, so concurrent transfers on a common hop queue
//!   ([`Topology`], [`Transport`], [`TopologyKind`]).
//!
//! Timing and function are decoupled: [`ExecMode::TimingOnly`] elides
//! arithmetic but preserves the exact protocol, for large-domain sweeps.

#![warn(missing_docs)]

mod check;
mod cost;
mod device;
mod host;
mod kernel;
mod machine;
mod mem;
pub mod resilience;
mod stream;
mod topo;

pub use check::{CheckReport, Checker};
pub use cost::CostModel;
pub use device::DeviceSpec;
pub use host::HostCtx;
pub use kernel::{BlockGroup, CoopKernel, GridInfo, KernelBody, KernelCtx};
pub use machine::{ExecMode, Machine};
pub use mem::{Buf, DevId, Place};
pub use resilience::{alive_at, format_quorum, HealedRoutes, PartitionedNetwork};
pub use sim_des::{
    CrashFault, DiagKind, Diagnostic, DropFault, FaultPlan, FaultState, LinkFault, StragglerFault,
};
pub use stream::Stream;
pub use topo::{Endpoint, Link, LinkClocks, Topology, TopologyKind, Transport};

#[cfg(test)]
mod tests {
    use super::*;
    use sim_des::{us, Category, SignalOp};

    fn machine(n: usize) -> Machine {
        Machine::new(n, CostModel::a100_hgx(), ExecMode::Full)
    }

    #[test]
    fn empty_machine_runs() {
        let m = machine(1);
        assert_eq!(m.run().unwrap().as_nanos(), 0);
    }

    #[test]
    fn discrete_kernel_charges_launch_and_compute() {
        let m = machine(1);
        let cost = m.cost().clone();
        m.spawn_host("rank0", move |host| {
            let s = host.create_stream(DevId(0), "s");
            host.launch(&s, "k", |k| {
                k.busy(Category::Compute, "work", us(10.0));
            });
            host.sync_stream(&s);
        });
        let end = m.run().unwrap();
        // stream create + host launch + device start + work + sync.
        let expected = cost.api_call()
            + cost.kernel_launch_host()
            + cost.kernel_launch_device()
            + us(10.0)
            + cost.stream_sync();
        assert_eq!(
            end.as_nanos(),
            (sim_des::SimTime::ZERO + expected).as_nanos()
        );
    }

    #[test]
    fn streams_execute_in_order() {
        let m = machine(1);
        let buf = m.alloc(DevId(0), "b", 4);
        let b1 = buf.clone();
        let b2 = buf.clone();
        m.spawn_host("rank0", move |host| {
            let s = host.create_stream(DevId(0), "s");
            host.launch(&s, "first", move |k| {
                k.compute("w", 0, 0, 1.0, || b1.set(0, 1.0));
                k.busy(Category::Compute, "pad", us(5.0));
            });
            host.launch(&s, "second", move |k| {
                // Must observe the first kernel's write.
                k.compute("r", 0, 0, 1.0, || {
                    assert_eq!(b2.get(0), 1.0);
                    b2.set(1, 2.0);
                });
            });
            host.sync_stream(&s);
        });
        m.run().unwrap();
        assert_eq!(buf.get(1), 2.0);
    }

    #[test]
    fn concurrent_streams_overlap() {
        let m = machine(1);
        m.spawn_host("rank0", move |host| {
            let s1 = host.create_stream(DevId(0), "a");
            let s2 = host.create_stream(DevId(0), "b");
            host.launch(&s1, "k1", |k| k.busy(Category::Compute, "w", us(100.0)));
            host.launch(&s2, "k2", |k| k.busy(Category::Compute, "w", us(100.0)));
            host.sync_stream(&s1);
            host.sync_stream(&s2);
        });
        let end = m.run().unwrap();
        // If the kernels serialized this would exceed 200 µs.
        assert!(
            end.as_micros_f64() < 150.0,
            "streams failed to overlap: {end}"
        );
    }

    #[test]
    fn memcpy_moves_data_and_charges_bandwidth() {
        let m = machine(2);
        let src = m.alloc(DevId(0), "src", 1024);
        let dst = m.alloc(DevId(1), "dst", 1024);
        src.fill(3.5);
        let (s2, d2) = (src.clone(), dst.clone());
        m.spawn_host("rank0", move |host| {
            let s = host.create_stream(DevId(0), "s");
            host.memcpy_async(&s, &d2, 0, &s2, 0, 1024);
            host.sync_stream(&s);
        });
        let end = m.run().unwrap();
        assert_eq!(dst.get(1023), 3.5);
        let cost = CostModel::a100_hgx();
        assert!(end.as_nanos() >= cost.p2p_copy(8192).as_nanos());
    }

    #[test]
    fn events_order_across_streams() {
        let m = machine(1);
        let buf = m.alloc(DevId(0), "b", 1);
        let flag = m.flag(0);
        let b1 = buf.clone();
        let b2 = buf.clone();
        m.spawn_host("rank0", move |host| {
            let producer = host.create_stream(DevId(0), "prod");
            let consumer = host.create_stream(DevId(0), "cons");
            host.launch(&producer, "produce", move |k| {
                k.busy(Category::Compute, "w", us(50.0));
                k.compute("store", 0, 0, 1.0, || b1.set(0, 7.0));
            });
            host.record_event(&producer, flag, 1);
            host.wait_event(&consumer, flag, 1);
            host.launch(&consumer, "consume", move |k| {
                k.compute("load", 0, 0, 1.0, || assert_eq!(b2.get(0), 7.0));
            });
            host.sync_stream(&consumer);
        });
        m.run().unwrap();
    }

    #[test]
    fn cooperative_kernel_grid_sync_lockstep() {
        let m = machine(1);
        let probe = m.flag(0);
        m.spawn_host("rank0", move |host| {
            let k = host.launch_cooperative(
                DevId(0),
                "persistent",
                1024,
                vec![
                    BlockGroup::new("fast", 1, move |k| {
                        for _ in 0..3 {
                            k.busy(Category::Compute, "w", us(1.0));
                            k.grid_sync();
                        }
                    }),
                    BlockGroup::new("slow", 1, move |k| {
                        for _ in 0..3 {
                            k.busy(Category::Compute, "w", us(10.0));
                            k.grid_sync();
                        }
                    }),
                ],
            );
            host.wait_cooperative(&k);
            host.agent_mut().signal(probe, SignalOp::Set, 1);
        });
        let end = m.run().unwrap();
        // Slow group dominates each of three rounds (10 µs) + overheads.
        assert!(end.as_micros_f64() >= 30.0);
        assert!(end.as_micros_f64() < 60.0);
        assert_eq!(m.engine().flag_value(probe), 1);
    }

    #[test]
    fn cooperative_launch_rejects_oversubscription() {
        let m = machine(1);
        m.spawn_host("rank0", move |host| {
            let res = host.try_launch_cooperative(
                DevId(0),
                "too_big",
                1024,
                vec![BlockGroup::new("g", 100_000, |_k| {})],
            );
            let err = res.err().expect("oversubscription must be rejected");
            assert!(err.contains("co-residency"), "{err}");
        });
        m.run().unwrap();
    }

    #[test]
    fn p2p_copy_inside_kernel() {
        let m = machine(2);
        let a = m.alloc(DevId(0), "a", 8);
        let b = m.alloc(DevId(1), "b", 8);
        a.fill(1.25);
        let (a2, b2) = (a.clone(), b.clone());
        m.spawn_host("rank0", move |host| {
            let k = host.launch_cooperative(
                DevId(0),
                "pusher",
                1024,
                vec![BlockGroup::new("g", 1, move |k| {
                    k.p2p_copy(&b2, 0, &a2, 0, 8, "push to gpu1");
                })],
            );
            host.wait_cooperative(&k);
        });
        m.run().unwrap();
        assert_eq!(b.get(7), 1.25);
    }

    #[test]
    fn timing_only_skips_arithmetic_same_time() {
        fn run(mode: ExecMode) -> (u64, f64) {
            let m = Machine::new(1, CostModel::a100_hgx(), mode);
            let buf = m.alloc(DevId(0), "b", 4);
            let b = buf.clone();
            m.spawn_host("rank0", move |host| {
                let s = host.create_stream(DevId(0), "s");
                host.launch(&s, "k", move |k| {
                    k.compute("w", 1 << 20, 0, 1.0, || b.set(0, 42.0));
                });
                host.sync_stream(&s);
            });
            let end = m.run().unwrap();
            (end.as_nanos(), buf.get(0))
        }
        let (t_full, v_full) = run(ExecMode::Full);
        let (t_timing, v_timing) = run(ExecMode::TimingOnly);
        assert_eq!(t_full, t_timing, "modes must charge identical time");
        assert_eq!(v_full, 42.0);
        assert_eq!(v_timing, 0.0, "timing-only must not run arithmetic");
    }

    #[test]
    fn host_barrier_synchronizes_ranks() {
        let m = machine(2);
        let bar = m.barrier(2);
        for rank in 0..2usize {
            m.spawn_host(format!("rank{rank}"), move |host| {
                host.agent_mut().advance(us(10.0 * (rank + 1) as f64));
                host.host_barrier(bar, 2);
                // Both released at the slower rank's arrival (20 µs) + barrier.
                assert!(host.now().as_micros_f64() >= 20.0);
            });
        }
        m.run().unwrap();
    }

    #[test]
    fn device_bounds_checked() {
        let m = machine(2);
        let r =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.alloc(DevId(5), "x", 1)));
        assert!(r.is_err());
    }

    #[test]
    fn determinism_across_runs() {
        fn once() -> u64 {
            let m = machine(4);
            let bufs: Vec<Buf> = m.devices().map(|d| m.alloc(d, "b", 64)).collect();
            for rank in 0..4usize {
                let my = bufs[rank].clone();
                let peer = bufs[(rank + 1) % 4].clone();
                m.spawn_host(format!("rank{rank}"), move |host| {
                    let dev = DevId(rank);
                    let s = host.create_stream(dev, "s");
                    for i in 0..5 {
                        let (my, peer) = (my.clone(), peer.clone());
                        host.launch(&s, format!("k{i}"), move |k| {
                            k.compute("w", 4096, 0, 1.0, || {
                                let v = my.get(0) + 1.0;
                                my.set(0, v);
                            });
                            k.p2p_copy(&peer, 1, &my, 0, 1, "share");
                        });
                        host.sync_stream(&s);
                    }
                });
            }
            let end = m.run().unwrap();
            let mut h = end.as_nanos();
            for b in &bufs {
                h = h.wrapping_mul(31).wrapping_add(b.checksum());
            }
            h
        }
        assert_eq!(once(), once());
    }

    #[test]
    fn trace_contains_expected_categories() {
        let m = machine(1);
        m.spawn_host("rank0", move |host| {
            let s = host.create_stream(DevId(0), "s");
            host.launch(&s, "k", |k| k.busy(Category::Compute, "w", us(3.0)));
            host.sync_stream(&s);
        });
        m.run().unwrap();
        let t = m.trace();
        assert!(t.total(Category::Launch).as_nanos() > 0);
        assert!(t.total(Category::Compute).as_nanos() > 0);
        assert!(t.total(Category::Sync).as_nanos() > 0);
        assert!(t.total(Category::Api).as_nanos() > 0);
    }
}
