//! Simulated memory: device global memory, host memory, symmetric-heap
//! allocations.
//!
//! All buffers hold `f64` elements (the element type of every workload in
//! the paper). Data is real — `ExecMode::Full` runs actual arithmetic on it —
//! but *time* is charged separately through the cost model, so functional
//! content and performance accounting stay decoupled.

use sim_des::lock::Mutex;
use std::fmt;
use std::sync::Arc;

/// Identifies a device within one machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DevId(pub usize);

impl fmt::Display for DevId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// Where a buffer physically lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Place {
    /// Pageable/pinned host memory.
    Host,
    /// Ordinary device global memory.
    Device(DevId),
    /// Device global memory on the NVSHMEM symmetric heap (PGAS-addressable).
    Symmetric(DevId),
}

impl Place {
    /// The owning device, if any.
    pub fn device(self) -> Option<DevId> {
        match self {
            Place::Host => None,
            Place::Device(d) | Place::Symmetric(d) => Some(d),
        }
    }

    /// True for symmetric-heap storage.
    pub fn is_symmetric(self) -> bool {
        matches!(self, Place::Symmetric(_))
    }
}

struct BufInner {
    place: Place,
    name: String,
    /// Element count (authoritative — `data` may be empty for virtual bufs).
    len: usize,
    /// `None` storage = a *virtual* buffer: sized and addressable for cost
    /// accounting, but without backing memory. All functional accesses are
    /// no-ops (reads yield 0). Used by `ExecMode::TimingOnly` so that
    /// paper-scale domains (tens of GB) can be swept without allocating.
    data: Option<Mutex<Vec<f64>>>,
}

/// A handle to a simulated memory buffer (cheaply clonable).
///
/// Direct `read`/`write` methods perform the *functional* access; virtual
/// time must be charged by the caller through the cost model. The layers
/// above (streams, NVSHMEM, the CPU-Free runtime) pair the two correctly.
#[derive(Clone)]
pub struct Buf {
    inner: Arc<BufInner>,
}

impl fmt::Debug for Buf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Buf({} @ {:?}, len {})",
            self.inner.name,
            self.inner.place,
            self.len()
        )
    }
}

impl Buf {
    /// Allocate a zero-initialized buffer.
    pub fn new(place: Place, name: impl Into<String>, len: usize) -> Buf {
        Buf {
            inner: Arc::new(BufInner {
                place,
                name: name.into(),
                len,
                data: Some(Mutex::new(vec![0.0; len])),
            }),
        }
    }

    /// Allocate a *virtual* buffer: correct length and place for cost
    /// accounting, no backing storage, all functional accesses no-ops.
    pub fn new_virtual(place: Place, name: impl Into<String>, len: usize) -> Buf {
        Buf {
            inner: Arc::new(BufInner {
                place,
                name: name.into(),
                len,
                data: None,
            }),
        }
    }

    /// True when this buffer has no backing storage.
    pub fn is_virtual(&self) -> bool {
        self.inner.data.is_none()
    }

    /// Where this buffer lives.
    pub fn place(&self) -> Place {
        self.inner.place
    }

    /// Debug name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Number of f64 elements.
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// True when the buffer has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        (self.len() * std::mem::size_of::<f64>()) as u64
    }

    /// Run a closure with shared access to the data.
    ///
    /// # Panics
    /// On virtual buffers — bulk data access implies functional execution,
    /// which virtual buffers cannot provide.
    pub fn with<R>(&self, f: impl FnOnce(&[f64]) -> R) -> R {
        let d = self
            .inner
            .data
            .as_ref()
            .unwrap_or_else(|| panic!("`{}` is virtual (timing-only)", self.inner.name));
        f(&d.lock())
    }

    /// Run a closure with exclusive access to the data.
    ///
    /// # Panics
    /// On virtual buffers (see [`Buf::with`]).
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut [f64]) -> R) -> R {
        let d = self
            .inner
            .data
            .as_ref()
            .unwrap_or_else(|| panic!("`{}` is virtual (timing-only)", self.inner.name));
        f(&mut d.lock())
    }

    /// Read one element (0.0 on virtual buffers).
    pub fn get(&self, idx: usize) -> f64 {
        debug_assert!(idx < self.inner.len);
        match &self.inner.data {
            Some(d) => d.lock()[idx],
            None => 0.0,
        }
    }

    /// Write one element (no-op on virtual buffers).
    pub fn set(&self, idx: usize, value: f64) {
        debug_assert!(idx < self.inner.len);
        if let Some(d) = &self.inner.data {
            d.lock()[idx] = value;
        }
    }

    /// Copy a contiguous region out (left untouched on virtual buffers).
    pub fn read_slice(&self, offset: usize, out: &mut [f64]) {
        if let Some(d) = &self.inner.data {
            let d = d.lock();
            out.copy_from_slice(&d[offset..offset + out.len()]);
        }
    }

    /// Copy a contiguous region in (no-op on virtual buffers).
    pub fn write_slice(&self, offset: usize, src: &[f64]) {
        debug_assert!(offset + src.len() <= self.inner.len);
        if let Some(d) = &self.inner.data {
            let mut d = d.lock();
            d[offset..offset + src.len()].copy_from_slice(src);
        }
    }

    /// Copy `len` elements from `src[src_off..]` into `self[dst_off..]`.
    ///
    /// Handles `src` and `self` being the same buffer (uses `copy_within`).
    /// A no-op when either side is virtual.
    pub fn copy_from(&self, dst_off: usize, src: &Buf, src_off: usize, len: usize) {
        debug_assert!(dst_off + len <= self.inner.len);
        debug_assert!(src_off + len <= src.inner.len);
        if self.is_virtual() || src.is_virtual() {
            return;
        }
        if Arc::ptr_eq(&self.inner, &src.inner) {
            let mut d = self.inner.data.as_ref().unwrap().lock();
            d.copy_within(src_off..src_off + len, dst_off);
            return;
        }
        let s = src.inner.data.as_ref().unwrap().lock();
        let mut d = self.inner.data.as_ref().unwrap().lock();
        d[dst_off..dst_off + len].copy_from_slice(&s[src_off..src_off + len]);
    }

    /// Strided gather-copy: reads `count` elements from `src` starting at
    /// `src_off` with stride `src_stride`, writing them to `self` starting at
    /// `dst_off` with stride `dst_stride`. This is the functional core of
    /// `nvshmem_iput`/`iget` and `MPI_Type_vector`.
    pub fn copy_strided_from(
        &self,
        dst_off: usize,
        dst_stride: usize,
        src: &Buf,
        src_off: usize,
        src_stride: usize,
        count: usize,
    ) {
        assert!(
            !Arc::ptr_eq(&self.inner, &src.inner),
            "strided self-copy not supported"
        );
        if self.is_virtual() || src.is_virtual() {
            return;
        }
        let s = src.inner.data.as_ref().unwrap().lock();
        let mut d = self.inner.data.as_ref().unwrap().lock();
        for i in 0..count {
            d[dst_off + i * dst_stride] = s[src_off + i * src_stride];
        }
    }

    /// Fill with a value (no-op on virtual buffers).
    pub fn fill(&self, value: f64) {
        if let Some(d) = &self.inner.data {
            d.lock().fill(value);
        }
    }

    /// A deterministic checksum of the contents (0 for virtual buffers).
    pub fn checksum(&self) -> u64 {
        let Some(d) = &self.inner.data else { return 0 };
        let d = d.lock();
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for v in d.iter() {
            h ^= v.to_bits();
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Snapshot the contents into a `Vec` (zeros for virtual buffers).
    pub fn to_vec(&self) -> Vec<f64> {
        match &self.inner.data {
            Some(d) => d.lock().clone(),
            None => vec![0.0; self.inner.len],
        }
    }

    /// True if both handles refer to the same allocation.
    pub fn same_alloc(&self, other: &Buf) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Allocation identity as an opaque key (stable for the buffer's
    /// lifetime; equal iff [`Buf::same_alloc`]). Used by the checker to
    /// key race-detection locations.
    pub fn raw_key(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_zeroed() {
        let b = Buf::new(Place::Device(DevId(0)), "t", 16);
        assert_eq!(b.len(), 16);
        assert_eq!(b.bytes(), 128);
        assert!(b.with(|d| d.iter().all(|&v| v == 0.0)));
    }

    #[test]
    fn slice_round_trip() {
        let b = Buf::new(Place::Host, "t", 8);
        b.write_slice(2, &[1.0, 2.0, 3.0]);
        let mut out = [0.0; 3];
        b.read_slice(2, &mut out);
        assert_eq!(out, [1.0, 2.0, 3.0]);
        assert_eq!(b.get(2), 1.0);
    }

    #[test]
    fn copy_between_buffers() {
        let a = Buf::new(Place::Device(DevId(0)), "a", 8);
        let b = Buf::new(Place::Device(DevId(1)), "b", 8);
        a.write_slice(0, &[9.0; 8]);
        b.copy_from(4, &a, 0, 4);
        assert_eq!(b.get(3), 0.0);
        assert_eq!(b.get(4), 9.0);
    }

    #[test]
    fn copy_within_same_buffer() {
        let a = Buf::new(Place::Host, "a", 8);
        a.write_slice(0, &[1.0, 2.0, 3.0, 4.0, 0.0, 0.0, 0.0, 0.0]);
        a.copy_from(4, &a, 0, 4);
        assert_eq!(a.to_vec(), vec![1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn strided_copy_gathers_columns() {
        // A 3x4 row-major matrix; gather column 1 into a contiguous buffer.
        let m = Buf::new(Place::Device(DevId(0)), "m", 12);
        m.with_mut(|d| {
            for (i, v) in d.iter_mut().enumerate() {
                *v = i as f64;
            }
        });
        let col = Buf::new(Place::Device(DevId(1)), "col", 3);
        col.copy_strided_from(0, 1, &m, 1, 4, 3);
        assert_eq!(col.to_vec(), vec![1.0, 5.0, 9.0]);
    }

    #[test]
    fn checksum_detects_changes() {
        let a = Buf::new(Place::Host, "a", 4);
        let c0 = a.checksum();
        a.set(2, 1.0);
        assert_ne!(a.checksum(), c0);
        a.set(2, 0.0);
        assert_eq!(a.checksum(), c0);
    }

    #[test]
    fn place_accessors() {
        assert_eq!(Place::Device(DevId(3)).device(), Some(DevId(3)));
        assert_eq!(Place::Host.device(), None);
        assert!(Place::Symmetric(DevId(0)).is_symmetric());
        assert!(!Place::Device(DevId(0)).is_symmetric());
    }
}
