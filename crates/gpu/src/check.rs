//! Opt-in correctness checker: happens-before race detection and CPU-Free
//! protocol conformance over a [`Machine`](crate::Machine) run.
//!
//! The checker is a thin machine-level facade over the engine's
//! [`HbTracker`]: it maps [`Buf`] identities to stable location ids and
//! forwards memory effects (kernel reads/writes, put payloads, checkpoint
//! copies) together with the agent's vector clock. Synchronization edges
//! (signals, waits, barriers, spawns) are recorded automatically by the
//! engine once tracking is enabled; only *memory effects* need explicit
//! annotation, via [`Checker::record`] / [`Checker::record_async`] or the
//! `KernelCtx::check_read` / `check_write` convenience hooks.
//!
//! Enable with [`Machine::with_checker`](crate::Machine::with_checker)
//! before spawning hosts. Tier-1 runs never enable it, so the default cost
//! is a skipped `Option` check per machine operation.

use crate::mem::Buf;
use sim_des::lock::Mutex;
use sim_des::{AgentCtx, AsyncClock, BlockedInfo, Diagnostic, HbEvent, HbTracker, SimTime};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Summary of a checked run: diagnostics plus volume counters.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Every diagnostic raised (races, protocol violations); empty = clean.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of happens-before events recorded.
    pub events: usize,
    /// Number of memory accesses race-checked.
    pub accesses: usize,
}

impl CheckReport {
    /// `true` when no diagnostic was raised.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "checker: {} diagnostic(s), {} hb event(s), {} access(es)",
            self.diagnostics.len(),
            self.events,
            self.accesses
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Machine-level handle to the happens-before / conformance tracker.
///
/// Obtained from [`Machine::checker`](crate::Machine::checker) after
/// enabling with [`Machine::with_checker`](crate::Machine::with_checker).
/// All methods are safe to call from any agent thread.
pub struct Checker {
    hb: Arc<HbTracker>,
    /// `Buf` allocation identity -> stable location id (first-seen order).
    locs: Mutex<HashMap<usize, u64>>,
}

impl Checker {
    pub(crate) fn new(hb: Arc<HbTracker>) -> Self {
        Checker {
            hb,
            locs: Mutex::new(HashMap::new()),
        }
    }

    /// The underlying engine-level tracker.
    pub fn hb(&self) -> &Arc<HbTracker> {
        &self.hb
    }

    /// Stable location id for a buffer (allocation identity, not name —
    /// two buffers that share storage share an id).
    fn loc(&self, buf: &Buf) -> u64 {
        let mut g = self.locs.lock();
        let next = g.len() as u64;
        *g.entry(buf.raw_key()).or_insert(next)
    }

    /// Record a synchronous read or write of `buf[lo..hi]` by the calling
    /// agent, stamped with its current vector clock.
    pub fn record(
        &self,
        agent: &AgentCtx,
        buf: &Buf,
        lo: usize,
        hi: usize,
        write: bool,
        label: &str,
    ) {
        let loc = self.loc(buf);
        self.hb.record_access(
            agent.id(),
            &agent.name(),
            agent.now(),
            loc,
            buf.name(),
            lo,
            hi,
            write,
            label,
        );
    }

    /// Begin an asynchronous effect (an `nbi` put): returns the stamp whose
    /// token orders the in-flight accesses. Thread the stamp through to the
    /// delivery signal and absorb it on completion (quiet).
    pub fn async_begin(&self, agent: &AgentCtx) -> AsyncClock {
        self.hb.async_begin(agent.id(), agent.now())
    }

    /// Record a read or write performed *by* an asynchronous effect (DMA),
    /// stamped with the issuing clock plus the effect token. `nbi_src`
    /// marks the in-flight source read of an `nbi` put, so a conflicting
    /// reuse is classified as source-buffer reuse rather than a plain race.
    #[allow(clippy::too_many_arguments)]
    pub fn record_async(
        &self,
        stamp: &AsyncClock,
        who: &str,
        time: SimTime,
        buf: &Buf,
        lo: usize,
        hi: usize,
        write: bool,
        nbi_src: bool,
        label: &str,
    ) {
        let loc = self.loc(buf);
        self.hb.record_access_async(
            stamp,
            who,
            time,
            loc,
            buf.name(),
            lo,
            hi,
            write,
            nbi_src,
            label,
        );
    }

    /// Absorb completed asynchronous effects into the calling agent's clock
    /// (the `quiet` edge): the agent's subsequent accesses happen-after the
    /// absorbed effects.
    pub fn absorb(&self, agent: &AgentCtx, effects: &[AsyncClock]) {
        self.hb.absorb(agent.id(), effects, agent.now());
    }

    /// Report PE `pe` committing iteration `t`; neighboring PEs must never
    /// diverge by more than one iteration under the CPU-Free protocols.
    pub fn iteration(&self, pe: usize, t: u64, who: &str, time: SimTime) {
        self.hb.record_iteration(pe, t, who, time);
    }

    /// Convert still-blocked waits (after a deadlock/timeout) into
    /// lost-signal diagnostics naming both endpoints.
    pub fn note_blocked(&self, blocked: &[BlockedInfo], time: SimTime) {
        for b in blocked {
            self.hb.note_unsatisfied_wait(
                &b.name,
                b.identity.as_deref(),
                &b.blocked_on,
                b.waiting_for.as_deref(),
                time,
            );
        }
    }

    /// Clone of the happens-before event stream, in execution order.
    pub fn events(&self) -> Vec<HbEvent> {
        self.hb.events()
    }

    /// Clone of all diagnostics raised so far.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        self.hb.diagnostics()
    }

    /// `true` when no diagnostic has been raised.
    pub fn is_clean(&self) -> bool {
        self.hb.is_clean()
    }

    /// Snapshot report (normally read after `Machine::run`).
    pub fn report(&self) -> CheckReport {
        CheckReport {
            diagnostics: self.hb.diagnostics(),
            events: self.hb.events().len(),
            accesses: self.hb.access_count(),
        }
    }
}

impl fmt::Debug for Checker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Checker")
            .field("clean", &self.is_clean())
            .finish()
    }
}
