//! Degraded-mode routing and quorum machinery.
//!
//! The chaos engine's graceful-degradation half. Two concerns live here:
//!
//! * **Link-failure rerouting** — when a [`sim_des::LinkFault`] *kills* a
//!   device pair (`bandwidth_mult <= 0`), the direct connection is gone for
//!   good. [`HealedRoutes`] recomputes a route table around the dead pairs:
//!   a transfer between a severed pair is relayed cut-through over
//!   surviving pairs (shortest relay path, deterministic tie-breaking), and
//!   a pair with no surviving relay path at all surfaces a structured
//!   [`PartitionedNetwork`] error. Kills are modeled at *pair* granularity
//!   (the endpoint-pair adjacency dies, e.g. a dead NVLink port pair) —
//!   on shared-hop presets the underlying physical hops keep serving other
//!   pairs' routes.
//! * **Quorum membership** — degraded-mode runners treat a
//!   [`sim_des::CrashFault`] as a *permanent* PE death (no
//!   checkpoint/restart). Because the fault plan is machine-wide shared
//!   configuration, membership at any iteration is a pure function of the
//!   plan ([`alive_at`]): every PE derives the identical member list with
//!   no gossip or agreement protocol. A real system would run a membership
//!   service; here the membership *schedule* is configuration, which keeps
//!   degraded runs bit-deterministic.

use std::collections::VecDeque;
use std::fmt;

use sim_des::FaultPlan;

use crate::topo::Topology;

/// No route — direct or relayed — exists between two PEs: the dead-pair
/// set has cut the network into components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionedNetwork {
    /// The unreachable source PE.
    pub src: usize,
    /// The unreachable destination PE.
    pub dst: usize,
    /// The dead pairs that caused the partition (sorted `(min, max)`).
    pub dead: Vec<(usize, usize)>,
}

impl fmt::Display for PartitionedNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dead: Vec<String> = self.dead.iter().map(|(a, b)| format!("{a}-{b}")).collect();
        write!(
            f,
            "PartitionedNetwork: no surviving route pe{} -> pe{} (dead links: {})",
            self.src,
            self.dst,
            dead.join(", ")
        )
    }
}

impl std::error::Error for PartitionedNetwork {}

/// A surviving link sequence plus the number of intermediate relay
/// devices it passes through (0 on a live pair); `None` when partitioned.
type RelayRoute = Option<(Vec<usize>, usize)>;

/// A route table healed around a set of dead pairs.
///
/// `routes[s][d]` is the surviving link sequence for `s -> d`: the base
/// route when the pair is alive, a relay concatenation otherwise, or
/// `None` when the pair is partitioned.
#[derive(Debug)]
pub struct HealedRoutes {
    routes: Vec<Vec<RelayRoute>>,
    dead: Vec<(usize, usize)>,
}

impl HealedRoutes {
    /// Recompute all-pairs routes around `dead` (sorted `(min, max)`
    /// pairs, as produced by [`sim_des::FaultState::dead_pairs`]).
    ///
    /// Relay paths are shortest in device hops, found by BFS visiting
    /// neighbors in ascending id — fully deterministic, so every agent
    /// derives the same healed table.
    pub fn compute(topo: &Topology, dead: &[(usize, usize)]) -> HealedRoutes {
        let n = topo.n_devices();
        let is_dead = |u: usize, v: usize| dead.binary_search(&(u.min(v), u.max(v))).is_ok();
        let mut routes: Vec<Vec<RelayRoute>> = vec![vec![None; n]; n];
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                if !is_dead(s, d) {
                    routes[s][d] = Some((topo.dev_route(s, d).to_vec(), 0));
                    continue;
                }
                // BFS over surviving pair-adjacencies, ascending neighbor
                // ids for determinism.
                let mut parent: Vec<Option<usize>> = vec![None; n];
                let mut seen = vec![false; n];
                seen[s] = true;
                let mut q = VecDeque::from([s]);
                'bfs: while let Some(u) = q.pop_front() {
                    for v in 0..n {
                        if v == u || seen[v] || is_dead(u, v) {
                            continue;
                        }
                        seen[v] = true;
                        parent[v] = Some(u);
                        if v == d {
                            break 'bfs;
                        }
                        q.push_back(v);
                    }
                }
                if seen[d] {
                    // Reconstruct d -> s, then emit the concatenated link
                    // sequence segment by segment.
                    let mut path = vec![d];
                    while let Some(p) = parent[*path.last().unwrap()] {
                        path.push(p);
                    }
                    path.reverse();
                    let mut links = Vec::new();
                    for w in path.windows(2) {
                        links.extend_from_slice(topo.dev_route(w[0], w[1]));
                    }
                    routes[s][d] = Some((links, path.len() - 2));
                }
            }
        }
        HealedRoutes {
            routes,
            dead: dead.to_vec(),
        }
    }

    /// The surviving link sequence for `src -> dst` plus its relay count
    /// (intermediate devices that store-and-forward the message), or the
    /// partition diagnostic when no path exists.
    pub fn route(&self, src: usize, dst: usize) -> Result<(&[usize], usize), PartitionedNetwork> {
        self.routes[src][dst]
            .as_ref()
            .map(|(links, relays)| (links.as_slice(), *relays))
            .ok_or_else(|| PartitionedNetwork {
                src,
                dst,
                dead: self.dead.clone(),
            })
    }
}

/// The PEs still alive *entering* iteration `t` (1-based), under the
/// degraded-mode reading of [`sim_des::CrashFault`] as permanent death at
/// the start of `at_iteration`. Ascending PE ids — this is the quorum every
/// degraded collective reports.
pub fn alive_at(plan: &FaultPlan, n: usize, t: u64) -> Vec<usize> {
    (0..n)
        .filter(|&pe| {
            plan.crashes
                .iter()
                .filter(|c| c.node == pe)
                .map(|c| c.at_iteration)
                .min()
                .is_none_or(|d| t < d)
        })
        .collect()
}

/// Render a quorum as the stable string used in reports and assertions,
/// e.g. `quorum{0,1,3}`.
pub fn format_quorum(members: &[usize]) -> String {
    let ids: Vec<String> = members.iter().map(|m| m.to_string()).collect();
    format!("quorum{{{}}}", ids.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::topo::TopologyKind;
    use sim_des::{CrashFault, LinkFault, SimTime};

    fn topo(kind: TopologyKind, n: usize) -> std::sync::Arc<Topology> {
        Topology::build(kind, n, &CostModel::a100_hgx())
    }

    #[test]
    fn healed_route_relays_around_dead_pair() {
        let t = topo(TopologyKind::NvlinkAllToAll, 4);
        let healed = HealedRoutes::compute(&t, &[(0, 1)]);
        // Direct 0->1 is dead; the relay goes through the lowest surviving
        // peer (device 2): nvl0>2 then nvl2>1 — two links.
        let (r, relays) = healed.route(0, 1).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(relays, 1);
        // Alive pairs keep their base route.
        assert_eq!(healed.route(2, 3).unwrap().0, t.dev_route(2, 3));
        // The reverse severed direction heals too.
        assert_eq!(healed.route(1, 0).unwrap().0.len(), 2);
    }

    #[test]
    fn two_devices_with_dead_pair_partition() {
        let t = topo(TopologyKind::NvlinkAllToAll, 2);
        let healed = HealedRoutes::compute(&t, &[(0, 1)]);
        let err = healed.route(0, 1).unwrap_err();
        assert_eq!((err.src, err.dst), (0, 1));
        assert!(err.to_string().contains("PartitionedNetwork"));
        assert!(err.to_string().contains("0-1"));
    }

    #[test]
    fn fully_isolated_device_partitions_everywhere() {
        let t = topo(TopologyKind::NvlinkRing, 4);
        // Kill every pair touching device 3.
        let dead = [(0, 3), (1, 3), (2, 3)];
        let healed = HealedRoutes::compute(&t, &dead);
        for peer in 0..3 {
            assert!(healed.route(peer, 3).is_err());
            assert!(healed.route(3, peer).is_err());
        }
        // The surviving triangle still routes.
        assert!(healed.route(0, 2).is_ok());
    }

    #[test]
    fn healing_works_on_every_preset() {
        for kind in TopologyKind::presets() {
            let t = topo(kind, 8);
            let healed = HealedRoutes::compute(&t, &[(2, 5), (0, 7)]);
            for (s, d) in [(2, 5), (5, 2), (0, 7), (7, 0)] {
                let (r, _) = healed
                    .route(s, d)
                    .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
                assert!(!r.is_empty(), "{kind:?} {s}->{d}");
            }
        }
    }

    #[test]
    fn alive_at_derives_quorum_from_plan() {
        let plan = sim_des::FaultPlan::new().with_crash(CrashFault {
            node: 2,
            at_iteration: 5,
        });
        assert_eq!(alive_at(&plan, 4, 4), vec![0, 1, 2, 3]);
        assert_eq!(alive_at(&plan, 4, 5), vec![0, 1, 3]);
        assert_eq!(alive_at(&plan, 4, 100), vec![0, 1, 3]);
        assert_eq!(format_quorum(&alive_at(&plan, 4, 5)), "quorum{0,1,3}");
    }

    #[test]
    fn kill_constructor_round_trips_through_fault_state() {
        let plan = sim_des::FaultPlan::new().with_link(LinkFault::kill(1, 3, SimTime(10)));
        let st = sim_des::FaultState::new(plan);
        assert!(st.has_kills());
        assert!(!st.pair_dead(1, 3, SimTime(9)));
        assert!(st.pair_dead(3, 1, SimTime(10)));
        assert_eq!(st.dead_pairs(SimTime(10)), vec![(1, 3)]);
    }
}
