//! The host-side runtime API — the simulator's `cudaXxx` surface.
//!
//! Every method charges the calibrated host latency of the corresponding
//! CUDA runtime call. This is where CPU-controlled baselines pay their tax:
//! per-iteration kernel launches, stream synchronizations, event choreography
//! and host barriers all flow through here and show up in the trace.

use crate::kernel::{BlockGroup, CoopKernel, GridInfo, KernelCtx};
use crate::machine::Machine;
use crate::mem::{Buf, DevId};
use crate::stream::{stream_agent_main, Stream, StreamOp, StreamShared};
use sim_des::lock::Mutex;
use sim_des::{AgentCtx, Barrier, Category, Cmp, Flag, SignalOp};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Context of one host rank (a CPU thread driving GPUs).
pub struct HostCtx<'a> {
    agent: &'a mut AgentCtx,
    machine: Machine,
}

impl<'a> HostCtx<'a> {
    pub(crate) fn new(agent: &'a mut AgentCtx, machine: Machine) -> Self {
        HostCtx { agent, machine }
    }

    /// The machine this rank belongs to.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &crate::cost::CostModel {
        self.machine.cost()
    }

    /// Current virtual time.
    pub fn now(&self) -> sim_des::SimTime {
        self.agent.now()
    }

    /// Raw agent access (host barrier helpers, custom waits).
    pub fn agent_mut(&mut self) -> &mut AgentCtx {
        self.agent
    }

    /// Create a stream on `dev` (spawns its executor agent).
    pub fn create_stream(&mut self, dev: DevId, name: impl Into<String>) -> Stream {
        let name = name.into();
        let shared = Arc::new(StreamShared {
            dev,
            name: format!("{dev}.{name}"),
            ops: Mutex::new(VecDeque::new()),
            doorbell: self.machine.flag(0),
            completed: self.machine.flag(0),
            enqueued: AtomicU64::new(0),
        });
        self.machine.inner.streams.lock().push(Arc::clone(&shared));
        let agent_name = shared.name.clone();
        self.machine.engine().spawn(
            agent_name,
            stream_agent_main(self.machine.clone(), Arc::clone(&shared)),
        );
        self.agent.busy(
            Category::Api,
            "cudaStreamCreate",
            self.machine.cost().api_call(),
        );
        Stream { shared }
    }

    fn enqueue(&mut self, stream: &Stream, op: StreamOp) {
        stream.shared.ops.lock().push_back(op);
        stream.shared.enqueued.fetch_add(1, Ordering::SeqCst);
        self.agent.signal(stream.shared.doorbell, SignalOp::Add, 1);
    }

    /// Launch a discrete kernel asynchronously on `stream`.
    ///
    /// Charges the host-side launch latency; the device-side start delay is
    /// charged by the stream executor. The body runs when the stream reaches
    /// the operation.
    pub fn launch(
        &mut self,
        stream: &Stream,
        name: impl Into<String>,
        body: impl FnOnce(&mut KernelCtx<'_>) + Send + 'static,
    ) {
        let name = name.into();
        self.agent.busy(
            Category::Launch,
            format!("launch {name}"),
            self.machine.cost().kernel_launch_host(),
        );
        self.enqueue(
            stream,
            StreamOp::Kernel {
                name,
                body: Box::new(body),
            },
        );
    }

    /// Asynchronous memory copy in stream order (`cudaMemcpyAsync`); the
    /// copy kind (PCIe / NVLink P2P / device-local) is inferred from the
    /// buffer locations. The host side charges only the API call; the wire
    /// time is charged by the stream agent through [`crate::Transport`],
    /// queueing on the route's links if they are busy.
    pub fn memcpy_async(
        &mut self,
        stream: &Stream,
        dst: &Buf,
        dst_off: usize,
        src: &Buf,
        src_off: usize,
        len: usize,
    ) {
        assert!(src_off + len <= src.len(), "memcpy src out of range");
        assert!(dst_off + len <= dst.len(), "memcpy dst out of range");
        self.agent.busy(
            Category::Api,
            "cudaMemcpyAsync",
            self.machine.cost().api_call(),
        );
        self.enqueue(
            stream,
            StreamOp::Memcpy {
                dst: dst.clone(),
                dst_off,
                src: src.clone(),
                src_off,
                len,
            },
        );
    }

    /// Record an event in stream order: `flag` is Set to `value` when the
    /// stream reaches this point (`cudaEventRecord`).
    pub fn record_event(&mut self, stream: &Stream, flag: Flag, value: u64) {
        self.agent.busy(
            Category::Api,
            "cudaEventRecord",
            self.machine.cost().event_op(),
        );
        self.enqueue(stream, StreamOp::RecordEvent { flag, value });
    }

    /// Make `stream` wait until `flag >= value` (`cudaStreamWaitEvent`).
    pub fn wait_event(&mut self, stream: &Stream, flag: Flag, value: u64) {
        self.agent.busy(
            Category::Api,
            "cudaStreamWaitEvent",
            self.machine.cost().event_op(),
        );
        self.enqueue(stream, StreamOp::WaitEvent { flag, value });
    }

    /// Block until every operation currently enqueued on `stream` completes
    /// (`cudaStreamSynchronize`).
    pub fn sync_stream(&mut self, stream: &Stream) {
        let target = stream.shared.enqueued.load(Ordering::SeqCst);
        let start = self.agent.now();
        self.agent
            .wait_flag(stream.shared.completed, Cmp::Ge, target);
        self.agent.advance(self.machine.cost().stream_sync());
        let end = self.agent.now();
        self.agent.record(
            Category::Sync,
            format!("cudaStreamSynchronize {}", stream.name()),
            start,
            end,
        );
    }

    /// Block on a host flag (e.g. completion of a cooperative kernel elsewhere).
    pub fn wait_flag<'l>(
        &mut self,
        flag: Flag,
        cmp: Cmp,
        value: u64,
        label: impl Into<sim_des::Label<'l>>,
    ) {
        self.agent
            .wait_flag_traced(flag, cmp, value, Category::Sync, label);
    }

    /// Host-side barrier across `ranks` host threads (OpenMP/MPI barrier).
    pub fn host_barrier(&mut self, barrier: Barrier, ranks: usize) {
        let start = self.agent.now();
        self.agent.barrier(barrier);
        self.agent.advance(self.machine.cost().host_barrier(ranks));
        let end = self.agent.now();
        self.agent
            .record(Category::Sync, "host barrier", start, end);
    }

    /// Launch a **cooperative (persistent) kernel**: all block groups start
    /// together and may use `grid_sync`. Enforces the co-residency limit —
    /// the sum of physical blocks must fit on the device simultaneously
    /// (§4.1.4). Returns a handle to wait on.
    ///
    /// # Panics
    /// If the groups oversubscribe the device for the given block size.
    pub fn launch_cooperative(
        &mut self,
        dev: DevId,
        name: impl Into<String>,
        threads_per_block: u32,
        groups: Vec<BlockGroup>,
    ) -> CoopKernel {
        self.try_launch_cooperative(dev, name, threads_per_block, groups)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`HostCtx::launch_cooperative`].
    pub fn try_launch_cooperative(
        &mut self,
        dev: DevId,
        name: impl Into<String>,
        threads_per_block: u32,
        groups: Vec<BlockGroup>,
    ) -> Result<CoopKernel, String> {
        let name = name.into();
        let total_blocks: u64 = groups.iter().map(|g| g.blocks).sum();
        let cap = self.machine.spec().max_coresident_blocks(threads_per_block);
        if total_blocks == 0 {
            return Err(format!("cooperative launch `{name}`: zero blocks"));
        }
        if total_blocks > cap {
            return Err(format!(
                "cooperative launch `{name}`: {total_blocks} blocks of {threads_per_block} \
                 threads exceed co-residency capacity {cap} on {dev} \
                 (cooperative kernels cannot oversubscribe; tile in software instead)"
            ));
        }
        self.agent.busy(
            Category::Launch,
            format!("coop launch {name}"),
            self.machine.cost().kernel_launch_host(),
        );
        let done = self.machine.flag(0);
        let parties = groups.len() as u64;
        let barrier = self.machine.barrier(groups.len());
        let start_delay = self.machine.cost().kernel_launch_device();
        for (group_index, g) in groups.into_iter().enumerate() {
            let grid = GridInfo {
                barrier,
                group_index,
                group_count: parties as usize,
                blocks_in_group: g.blocks,
                total_blocks,
                threads_per_block,
            };
            let machine = self.machine.clone();
            let body = g.body;
            let kname = name.clone();
            let agent_name = format!("{dev}.{name}.{}", g.name);
            self.machine.engine().spawn(agent_name, move |agent| {
                agent.busy(Category::Launch, format!("kstart {kname}"), start_delay);
                let mut kctx = KernelCtx::cooperative(agent, machine, dev, &kname, grid);
                body(&mut kctx);
                agent.signal(done, SignalOp::Add, 1);
            });
        }
        Ok(CoopKernel { done, parties, dev })
    }

    /// Block until a cooperative kernel finishes (`cudaDeviceSynchronize`-ish).
    pub fn wait_cooperative(&mut self, kernel: &CoopKernel) {
        let start = self.agent.now();
        self.agent.wait_flag(kernel.done, Cmp::Ge, kernel.parties);
        self.agent.advance(self.machine.cost().stream_sync());
        let end = self.agent.now();
        self.agent.record(
            Category::Sync,
            format!("wait coop kernel on {}", kernel.dev),
            start,
            end,
        );
    }
}
