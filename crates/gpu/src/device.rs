//! Static device description: what the co-residency check and occupancy
//! reasoning are based on.

/// Architectural parameters of a simulated GPU.
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
}

impl DeviceSpec {
    /// NVIDIA A100 (SM80): 108 SMs, 2048 threads/SM, 1024 threads/block,
    /// 32 blocks/SM.
    pub fn a100() -> Self {
        DeviceSpec {
            sm_count: 108,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 32,
        }
    }

    /// Maximum number of blocks of `threads_per_block` threads that can be
    /// **co-resident** — the hard cap on cooperative (persistent) launches.
    ///
    /// This is the limitation §4.1.4 of the paper discusses: persistent
    /// kernels cannot oversubscribe, so large domains must be software-tiled.
    pub fn max_coresident_blocks(&self, threads_per_block: u32) -> u64 {
        assert!(
            threads_per_block > 0 && threads_per_block <= self.max_threads_per_block,
            "threads per block {threads_per_block} out of range (max {})",
            self.max_threads_per_block
        );
        let per_sm = (self.max_threads_per_sm / threads_per_block).min(self.max_blocks_per_sm);
        per_sm as u64 * self.sm_count as u64
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        DeviceSpec::a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_coresidency_1024_threads() {
        // 1024-thread blocks: 2 per SM by threads, so 216 — but the paper's
        // configuration statement ("one block of 1024 threads on each SM")
        // refers to the shared-memory-bound stencil config; the architectural
        // cap is 2/SM.
        let s = DeviceSpec::a100();
        assert_eq!(s.max_coresident_blocks(1024), 216);
        assert_eq!(s.max_coresident_blocks(256), 108 * 8);
        assert_eq!(s.max_coresident_blocks(64), 108 * 32); // blocks/SM cap
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_block_rejected() {
        DeviceSpec::a100().max_coresident_blocks(2048);
    }
}
