//! Kernel execution contexts: discrete (stream-scheduled) and cooperative
//! (persistent, grid-synchronizable).

use crate::cost::CostModel;
use crate::machine::{ExecMode, Machine};
use crate::mem::{Buf, DevId};
use sim_des::{AgentCtx, Barrier, Category, SimDur, SimTime};

/// The closure type executed as a kernel body.
pub type KernelBody = Box<dyn FnOnce(&mut KernelCtx<'_>) + Send>;

/// Grid information available inside a cooperative (persistent) kernel.
#[derive(Debug, Clone)]
pub struct GridInfo {
    /// Grid-wide barrier implementing `grid.sync()`.
    pub(crate) barrier: Barrier,
    /// Index of this block group within the kernel (0-based).
    pub group_index: usize,
    /// Total number of block groups (= agents) in the kernel.
    pub group_count: usize,
    /// Physical thread blocks this group stands for.
    pub blocks_in_group: u64,
    /// Total physical thread blocks in the kernel.
    pub total_blocks: u64,
    /// Threads per block of the launch.
    pub threads_per_block: u32,
}

impl GridInfo {
    /// Fraction of the device's execution resources this group owns.
    pub fn resource_fraction(&self) -> f64 {
        self.blocks_in_group as f64 / self.total_blocks as f64
    }
}

/// Execution context handed to kernel bodies.
///
/// In the simulator, "device code" is a Rust closure over this context:
/// compute phases charge roofline time via [`KernelCtx::compute`], persistent
/// kernels synchronize via [`KernelCtx::grid_sync`], and the NVSHMEM device
/// API (crate `nvshmem-sim`) layers on top via [`KernelCtx::agent_mut`].
pub struct KernelCtx<'a> {
    agent: &'a mut AgentCtx,
    machine: Machine,
    dev: DevId,
    name: String,
    grid: Option<GridInfo>,
}

impl<'a> KernelCtx<'a> {
    /// Context for a discrete (stream-scheduled, non-cooperative) kernel.
    pub(crate) fn discrete(
        agent: &'a mut AgentCtx,
        machine: Machine,
        dev: DevId,
        name: &str,
    ) -> Self {
        KernelCtx {
            agent,
            machine,
            dev,
            name: name.to_string(),
            grid: None,
        }
    }

    /// Context for one block group of a cooperative kernel.
    pub(crate) fn cooperative(
        agent: &'a mut AgentCtx,
        machine: Machine,
        dev: DevId,
        name: &str,
        grid: GridInfo,
    ) -> Self {
        KernelCtx {
            agent,
            machine,
            dev,
            name: name.to_string(),
            grid: Some(grid),
        }
    }

    /// The device this kernel runs on.
    pub fn device(&self) -> DevId {
        self.dev
    }

    /// Kernel name (for traces).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The machine (topology, allocation, cost model).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &CostModel {
        self.machine.cost()
    }

    /// Whether buffer arithmetic actually executes.
    pub fn exec_mode(&self) -> ExecMode {
        self.machine.exec_mode()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.agent.now()
    }

    /// Charge virtual time without a trace span.
    pub fn advance(&mut self, dur: SimDur) {
        self.agent.advance(dur);
    }

    /// Charge virtual time with a trace span.
    pub fn busy<'l>(
        &mut self,
        category: Category,
        label: impl Into<sim_des::Label<'l>>,
        dur: SimDur,
    ) {
        self.agent.busy(category, label, dur);
    }

    /// Grid info — panics when called from a discrete kernel.
    pub fn grid(&self) -> &GridInfo {
        self.grid
            .as_ref()
            .expect("grid() called outside a cooperative kernel")
    }

    /// True when this is a cooperative (persistent) kernel.
    pub fn is_cooperative(&self) -> bool {
        self.grid.is_some()
    }

    /// Cooperative-groups grid-wide barrier (`grid.sync()`).
    ///
    /// Blocks until every block group of the kernel arrives, then charges the
    /// barrier cost. Panics in discrete kernels (as CUDA would fail the
    /// cooperative API without a cooperative launch).
    pub fn grid_sync(&mut self) {
        let barrier = self.grid().barrier;
        let cost = self.cost().grid_sync();
        let start = self.agent.now();
        self.agent.barrier(barrier);
        self.agent.advance(cost);
        let end = self.agent.now();
        self.agent.record(Category::Sync, "grid.sync", start, end);
    }

    /// A device compute phase: charges roofline time for moving `bytes` and
    /// executing `flops` on `fraction` of the device, then runs `work` (the
    /// actual arithmetic) if the machine executes functionally.
    pub fn compute<'l>(
        &mut self,
        label: impl Into<sim_des::Label<'l>>,
        bytes: u64,
        flops: u64,
        fraction: f64,
        work: impl FnOnce(),
    ) {
        let dur = self.cost().sweep(bytes, flops, fraction);
        self.busy(Category::Compute, label, dur);
        if self.machine.exec_mode() == ExecMode::Full {
            work();
        }
    }

    /// Direct peer load/store over UVA: synchronously move `len` elements
    /// between devices from within the kernel, charging the routed P2P
    /// cost (the transfer occupies every link on the `src -> dst` route).
    ///
    /// This is the Baseline-P2P communication style: GPU-initiated data
    /// movement, but synchronous with respect to the issuing kernel.
    pub fn p2p_copy<'l>(
        &mut self,
        dst: &Buf,
        dst_off: usize,
        src: &Buf,
        src_off: usize,
        len: usize,
        label: impl Into<sim_des::Label<'l>>,
    ) {
        let bytes = (len * std::mem::size_of::<f64>()) as u64;
        let (dur, _) =
            self.machine
                .transport()
                .memcpy(src.place(), dst.place(), bytes, self.agent.now());
        self.busy(Category::Comm, label, dur);
        dst.copy_from(dst_off, src, src_off, len);
    }

    /// Declare a read of `buf[lo..hi]` to the race detector. No-op unless
    /// the machine's checker is enabled
    /// ([`Machine::with_checker`](crate::Machine::with_checker)).
    pub fn check_read(&mut self, buf: &Buf, lo: usize, hi: usize, label: &str) {
        if let Some(chk) = self.machine.checker() {
            chk.record(self.agent, buf, lo, hi, false, label);
        }
    }

    /// Declare a write of `buf[lo..hi]` to the race detector. No-op unless
    /// the machine's checker is enabled.
    pub fn check_write(&mut self, buf: &Buf, lo: usize, hi: usize, label: &str) {
        if let Some(chk) = self.machine.checker() {
            chk.record(self.agent, buf, lo, hi, true, label);
        }
    }

    /// Escape hatch for higher layers (the NVSHMEM device API) that need raw
    /// agent operations (flag waits, scheduled signals/calls).
    pub fn agent_mut(&mut self) -> &mut AgentCtx {
        self.agent
    }

    /// Shared access to the underlying agent (for `now`, flag reads).
    pub fn agent(&self) -> &AgentCtx {
        self.agent
    }
}

/// Handle to a running cooperative kernel on one device.
pub struct CoopKernel {
    /// Completion counter: each block-group agent adds 1 on return.
    pub(crate) done: sim_des::Flag,
    /// Number of block-group agents.
    pub(crate) parties: u64,
    /// Device the kernel runs on.
    pub(crate) dev: DevId,
}

impl CoopKernel {
    /// The device the kernel occupies.
    pub fn device(&self) -> DevId {
        self.dev
    }
}

/// Specification of one block group in a cooperative launch: `blocks`
/// physical thread blocks that execute `body` in lockstep, represented by a
/// single agent.
pub struct BlockGroup {
    /// Group name, used for the agent/trace name (e.g. `"comm_top"`).
    pub name: String,
    /// Number of physical thread blocks the group stands for.
    pub blocks: u64,
    /// The group's device code.
    pub body: KernelBody,
}

impl BlockGroup {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        blocks: u64,
        body: impl FnOnce(&mut KernelCtx<'_>) + Send + 'static,
    ) -> Self {
        BlockGroup {
            name: name.into(),
            blocks,
            body: Box::new(body),
        }
    }
}
