//! The latency/bandwidth cost model.
//!
//! Every virtual-time charge in the simulator flows through one of these
//! methods. The defaults are calibrated to an NVIDIA A100 (SXM, 108 SMs,
//! ~1.5 TB/s HBM2e) in an HGX node with third-generation NVLink all-to-all
//! (300 GB/s per direction peak, ~235 GB/s effective) and to published
//! microbenchmarks of CUDA launch/synchronization overheads (Zhang et al.,
//! IPDPS'20) and NVSHMEM/GPUDirect latencies. Absolute values are not the
//! point — the *ratios* between host-mediated and device-initiated paths are
//! what reproduce the paper's figures, and the tests in this workspace pin
//! shapes, not constants.

use sim_des::{us, SimDur};

use crate::topo::TopologyKind;

/// Calibrated latencies and bandwidths for the simulated node.
///
/// Fixed per-operation software latencies live here; *wire* time and
/// queueing live in the [`crate::Topology`] selected by
/// [`CostModel::topology`] and are charged through [`crate::Transport`].
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Interconnect graph machines built from this model charge transfers
    /// on. `a100_hgx()` selects the all-to-all NVLink fabric; `pcie_only()`
    /// the shared-bridge PCIe tree.
    pub topology: TopologyKind,
    /// Host-visible latency of an asynchronous kernel launch enqueue (µs).
    pub kernel_launch_host_us: f64,
    /// Device-side delay from enqueue to kernel start (µs).
    pub kernel_launch_device_us: f64,
    /// Generic CUDA runtime API call overhead on the host (µs).
    pub api_call_us: f64,
    /// Host-blocking stream/device synchronize base latency (µs).
    pub stream_sync_us: f64,
    /// cudaEventRecord / cudaStreamWaitEvent overhead (µs).
    pub event_op_us: f64,
    /// One hop of a host-side barrier (MPI/OpenMP); total is `× ⌈log2 n⌉` (µs).
    pub host_barrier_hop_us: f64,
    /// Fixed host-path cost of an MPI send or recv (matching, staging) (µs).
    pub mpi_msg_us: f64,
    /// Extra per-contiguous-chunk cost of an `MPI_Type_vector` pack/unpack (µs).
    pub mpi_vector_chunk_us: f64,
    /// Latency of a host-initiated peer-to-peer DMA over NVLink (µs).
    pub p2p_latency_us: f64,
    /// Effective NVLink bandwidth between any device pair (GB/s).
    pub nvlink_gbps: f64,
    /// PCIe latency host<->device (µs).
    pub pcie_latency_us: f64,
    /// Effective PCIe bandwidth host<->device (GB/s).
    pub pcie_gbps: f64,
    /// Effective bandwidth of one inter-node NIC (GB/s), used by the
    /// two-node topology preset.
    pub nic_gbps: f64,
    /// Forwarding latency of the inter-node NIC hop (µs).
    pub nic_latency_us: f64,
    /// Latency of a device-initiated NVSHMEM put (µs).
    pub shmem_put_us: f64,
    /// Latency of an NVSHMEM signal/atomic operation (µs).
    pub shmem_signal_us: f64,
    /// Per-element overhead of strided `iput`/`iget` transfers (µs).
    pub shmem_iput_elem_us: f64,
    /// Latency of a single-element `nvshmem_<T>_p` store (µs).
    pub shmem_p_us: f64,
    /// `nvshmem_quiet()` / `fence()` ordering cost (µs).
    pub shmem_quiet_us: f64,
    /// Device-side `signal_wait_until` poll granularity (µs).
    pub shmem_poll_us: f64,
    /// Cooperative-groups `grid.sync()` cost (µs).
    pub grid_sync_us: f64,
    /// Effective-bandwidth multiplier when an entire thread block issues a
    /// transfer cooperatively (`nvshmemx_putmem_*_block`) instead of one
    /// thread (§5.3.2).
    pub shmem_block_bw_scale: f64,
    /// Device HBM effective bandwidth (GB/s).
    pub hbm_gbps: f64,
    /// Peak fp64 throughput of the device (GFLOP/s).
    pub fp64_gflops: f64,
    /// Compute-time multiplier for software-tiled persistent kernels on
    /// oversaturated domains (the cooperative-launch limitation, §4.1.4).
    pub tiling_penalty: f64,
    /// Points-per-thread ratio above which the tiling penalty applies.
    /// Shallow oversubscription tiles fine; deep software tiling does not.
    pub tiling_threshold_ppt: f64,
    /// Compute-time multiplier for *discrete* (relaunched-per-iteration)
    /// kernels: caches and shared memory are cold after every relaunch —
    /// the reuse benefit §3.2 item 4 attributes to persistent execution.
    pub discrete_cache_penalty: f64,
    /// Fraction of the per-device domain PERKS can keep in registers/shared
    /// memory across iterations (its reads skip global memory).
    pub perks_cached_fraction: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::a100_hgx()
    }
}

impl CostModel {
    /// The calibration used throughout the paper reproduction: an HGX node
    /// with A100s connected all-to-all by NVLink.
    pub fn a100_hgx() -> Self {
        CostModel {
            topology: TopologyKind::NvlinkAllToAll,
            kernel_launch_host_us: 3.0,
            kernel_launch_device_us: 7.5,
            api_call_us: 1.2,
            stream_sync_us: 11.0,
            event_op_us: 0.9,
            host_barrier_hop_us: 11.0,
            mpi_msg_us: 9.0,
            mpi_vector_chunk_us: 0.35,
            p2p_latency_us: 1.9,
            nvlink_gbps: 235.0,
            pcie_latency_us: 4.5,
            pcie_gbps: 24.0,
            nic_gbps: 25.0,
            nic_latency_us: 2.0,
            shmem_put_us: 2.2,
            shmem_signal_us: 1.3,
            shmem_iput_elem_us: 0.011,
            shmem_p_us: 1.2,
            shmem_quiet_us: 0.8,
            shmem_poll_us: 1.2,
            grid_sync_us: 2.6,
            shmem_block_bw_scale: 1.5,
            hbm_gbps: 1400.0,
            fp64_gflops: 9700.0,
            tiling_penalty: 1.18,
            tiling_threshold_ppt: 8.0,
            discrete_cache_penalty: 1.10,
            perks_cached_fraction: 0.25,
        }
    }

    /// A sensitivity variant: the same node WITHOUT NVLink — all peer
    /// traffic crosses PCIe through the root complex. Used by the
    /// interconnect-sensitivity ablation to show which conclusions depend
    /// on the fast fabric and which on the control path alone.
    pub fn pcie_only() -> Self {
        CostModel {
            topology: TopologyKind::PcieTree,
            nvlink_gbps: 22.0,
            p2p_latency_us: 9.0,
            shmem_put_us: 4.5,
            shmem_signal_us: 2.5,
            shmem_p_us: 3.0,
            ..CostModel::a100_hgx()
        }
    }

    /// Duration of moving `bytes` at `gbps` effective bandwidth. Shared
    /// with the Transport layer so per-link wire time uses the exact same
    /// rounding as the flat per-op formulas; public so static analyses
    /// (e.g. the dace cost predictor) can quote identical wire times.
    #[inline]
    pub fn bw_time(bytes: u64, gbps: f64) -> SimDur {
        // GB/s == bytes/ns.
        SimDur::from_nanos((bytes as f64 / gbps).ceil() as u64)
    }

    /// Host-side cost of enqueueing a kernel launch.
    pub fn kernel_launch_host(&self) -> SimDur {
        us(self.kernel_launch_host_us)
    }

    /// Device-side enqueue-to-start delay of a kernel launch.
    pub fn kernel_launch_device(&self) -> SimDur {
        us(self.kernel_launch_device_us)
    }

    /// Generic host API call overhead.
    pub fn api_call(&self) -> SimDur {
        us(self.api_call_us)
    }

    /// Host-blocking stream/device synchronization latency.
    pub fn stream_sync(&self) -> SimDur {
        us(self.stream_sync_us)
    }

    /// Event record/wait overhead.
    pub fn event_op(&self) -> SimDur {
        us(self.event_op_us)
    }

    /// Host barrier across `ranks` host threads/processes.
    pub fn host_barrier(&self, ranks: usize) -> SimDur {
        let hops = (ranks.max(1) as f64).log2().ceil().max(1.0);
        us(self.host_barrier_hop_us) * hops
    }

    /// Host-path MPI message time for `bytes` (send or recv side).
    pub fn mpi_msg(&self, bytes: u64) -> SimDur {
        us(self.mpi_msg_us) + Self::bw_time(bytes, self.nvlink_gbps)
    }

    /// Extra packing cost of an MPI vector datatype with `chunks` pieces.
    pub fn mpi_vector_pack(&self, chunks: u64) -> SimDur {
        us(self.mpi_vector_chunk_us) * chunks
    }

    /// Host-initiated P2P DMA over NVLink.
    pub fn p2p_copy(&self, bytes: u64) -> SimDur {
        us(self.p2p_latency_us) + Self::bw_time(bytes, self.nvlink_gbps)
    }

    /// PCIe copy (host <-> device).
    pub fn pcie_copy(&self, bytes: u64) -> SimDur {
        us(self.pcie_latency_us) + Self::bw_time(bytes, self.pcie_gbps)
    }

    /// Device-local copy through HBM (device-to-device same GPU).
    pub fn local_copy(&self, bytes: u64) -> SimDur {
        // Read + write the same bytes.
        Self::bw_time(2 * bytes, self.hbm_gbps)
    }

    /// Device-initiated NVSHMEM contiguous put of `bytes`.
    pub fn shmem_put(&self, bytes: u64) -> SimDur {
        us(self.shmem_put_us) + Self::bw_time(bytes, self.nvlink_gbps)
    }

    /// Block-cooperative contiguous put (`nvshmemx_putmem_block`): the whole
    /// thread block drives the transfer, improving effective bandwidth.
    pub fn shmem_put_block(&self, bytes: u64) -> SimDur {
        us(self.shmem_put_us) + Self::bw_time(bytes, self.nvlink_gbps * self.shmem_block_bw_scale)
    }

    /// Mapped single-element puts: `count` `nvshmem_<T>_p` calls issued by
    /// up to `threads` GPU threads in parallel.
    pub fn shmem_p_mapped(&self, count: u64, threads: u64) -> SimDur {
        let waves = count.div_ceil(threads.max(1)).max(1);
        us(self.shmem_p_us) * waves + Self::bw_time(count * 8, self.nvlink_gbps)
    }

    /// Device-initiated NVSHMEM signal (or signal part of put-with-signal).
    pub fn shmem_signal(&self) -> SimDur {
        us(self.shmem_signal_us)
    }

    /// Device-initiated strided `iput`/`iget` of `elems` elements of
    /// `elem_bytes` each: per-element issue overhead dominates.
    pub fn shmem_iput(&self, elems: u64, elem_bytes: u64) -> SimDur {
        us(self.shmem_put_us)
            + us(self.shmem_iput_elem_us) * elems
            + Self::bw_time(elems * elem_bytes, self.nvlink_gbps)
    }

    /// Single-element `nvshmem_<T>_p` remote store.
    pub fn shmem_p(&self) -> SimDur {
        us(self.shmem_p_us)
    }

    /// Memory-ordering `quiet`/`fence`.
    pub fn shmem_quiet(&self) -> SimDur {
        us(self.shmem_quiet_us)
    }

    /// Device-side signal wait poll granularity: the wake-up "rounds up" to
    /// this after the flag is set (models L2 polling latency).
    pub fn shmem_poll(&self) -> SimDur {
        us(self.shmem_poll_us)
    }

    /// Cooperative-groups grid-wide barrier.
    pub fn grid_sync(&self) -> SimDur {
        us(self.grid_sync_us)
    }

    /// Time for a memory-bound device sweep moving `bytes` and executing
    /// `flops`, using `fraction` of the device (0 < fraction ≤ 1).
    ///
    /// The sweep takes the max of its memory time and compute time — the
    /// standard roofline. `fraction` models thread-block specialization:
    /// comm TBs and comp TBs share the device's bandwidth proportionally.
    pub fn sweep(&self, bytes: u64, flops: u64, fraction: f64) -> SimDur {
        let fraction = fraction.clamp(1e-6, 1.0);
        let mem = bytes as f64 / (self.hbm_gbps * fraction); // ns
        let cmp = flops as f64 / (self.fp64_gflops * fraction); // ns
        SimDur::from_nanos(mem.max(cmp).ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_time_scales_linearly() {
        let m = CostModel::a100_hgx();
        let t1 = m.p2p_copy(1 << 20);
        let t2 = m.p2p_copy(1 << 21);
        // Doubling bytes should roughly double the bandwidth part.
        let lat = us(m.p2p_latency_us);
        let bw1 = t1 - lat;
        let bw2 = t2 - lat;
        let ratio = bw2.as_nanos() as f64 / bw1.as_nanos() as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn device_initiated_put_cheaper_than_host_mpi() {
        let m = CostModel::a100_hgx();
        for bytes in [8u64, 1 << 10, 1 << 20] {
            assert!(
                m.shmem_put(bytes) < m.mpi_msg(bytes),
                "device path must beat host path at {bytes} bytes"
            );
        }
    }

    #[test]
    fn strided_iput_has_per_element_overhead() {
        let m = CostModel::a100_hgx();
        let contiguous = m.shmem_put(8 * 1024);
        let strided = m.shmem_iput(1024, 8);
        assert!(strided > contiguous);
    }

    #[test]
    fn host_barrier_grows_logarithmically() {
        let m = CostModel::a100_hgx();
        let hop = us(m.host_barrier_hop_us);
        assert_eq!(m.host_barrier(2), hop);
        assert_eq!(m.host_barrier(4), hop * 2);
        assert_eq!(m.host_barrier(8), hop * 3);
        // 1 rank still pays one hop (the OpenMP barrier exists regardless).
        assert_eq!(m.host_barrier(1), hop);
    }

    #[test]
    fn sweep_is_memory_bound_for_stencils() {
        let m = CostModel::a100_hgx();
        // 2D5pt: ~16 bytes and 5 flops per point => memory-bound.
        let points = 2048u64 * 2048;
        let t_mem = m.sweep(points * 16, 0, 1.0);
        let t_full = m.sweep(points * 16, points * 5, 1.0);
        assert_eq!(t_mem, t_full, "flops hidden under memory time");
    }

    #[test]
    fn sweep_fraction_slows_down_proportionally() {
        let m = CostModel::a100_hgx();
        let full = m.sweep(1 << 30, 0, 1.0);
        let half = m.sweep(1 << 30, 0, 0.5);
        let ratio = half.as_nanos() as f64 / full.as_nanos() as f64;
        assert!((ratio - 2.0).abs() < 0.01);
    }

    #[test]
    fn default_is_a100() {
        let d = CostModel::default();
        let a = CostModel::a100_hgx();
        assert_eq!(format!("{d:?}"), format!("{a:?}"));
    }
}
