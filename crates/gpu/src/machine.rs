//! The simulated multi-GPU node: devices + engine + cost model + teardown.

use crate::check::Checker;
use crate::cost::CostModel;
use crate::device::DeviceSpec;
use crate::host::HostCtx;
use crate::mem::{Buf, DevId, Place};
use crate::stream::StreamShared;
use crate::topo::{Topology, TopologyKind, Transport};
use sim_des::lock::Mutex;
use sim_des::{Barrier, Engine, FaultPlan, FaultState, Flag, SignalOp, SimError, SimTime, Trace};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Whether kernels execute their buffer arithmetic or only charge time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Real arithmetic on real buffers (verifiable results).
    Full,
    /// Control flow, communication and costs only — for large-domain sweeps.
    TimingOnly,
}

pub(crate) struct MachineInner {
    pub(crate) engine: Engine,
    pub(crate) cost: CostModel,
    pub(crate) spec: DeviceSpec,
    pub(crate) num_devices: usize,
    pub(crate) exec_mode: ExecMode,
    pub(crate) streams: Mutex<Vec<Arc<StreamShared>>>,
    pub(crate) host_count: AtomicUsize,
    pub(crate) hosts_done: Flag,
    pub(crate) ran: AtomicBool,
    pub(crate) faults: Mutex<Arc<FaultState>>,
    pub(crate) transport: Transport,
    pub(crate) checker: Mutex<Option<Arc<Checker>>>,
}

/// A simulated multi-GPU node.
///
/// ```
/// use gpu_sim::{Machine, CostModel, ExecMode};
///
/// let machine = Machine::new(4, CostModel::a100_hgx(), ExecMode::Full);
/// machine.spawn_host("rank0", |host| {
///     let dev = gpu_sim::DevId(0);
///     let stream = host.create_stream(dev, "s0");
///     host.launch(&stream, "noop", |_k| {});
///     host.sync_stream(&stream);
/// });
/// let end = machine.run().unwrap();
/// assert!(end.as_nanos() > 0);
/// ```
#[derive(Clone)]
pub struct Machine {
    pub(crate) inner: Arc<MachineInner>,
}

impl Machine {
    /// Create a node with `num_devices` GPUs of the default A100 spec, on
    /// the interconnect selected by `cost.topology`.
    pub fn new(num_devices: usize, cost: CostModel, exec_mode: ExecMode) -> Machine {
        Machine::with_spec(num_devices, DeviceSpec::a100(), cost, exec_mode)
    }

    /// Create a node on an explicit interconnect graph, overriding the
    /// cost model's default `topology` selection.
    pub fn with_topology(
        num_devices: usize,
        mut cost: CostModel,
        topology: TopologyKind,
        exec_mode: ExecMode,
    ) -> Machine {
        cost.topology = topology;
        Machine::new(num_devices, cost, exec_mode)
    }

    /// Create a node with a custom device spec.
    pub fn with_spec(
        num_devices: usize,
        spec: DeviceSpec,
        cost: CostModel,
        exec_mode: ExecMode,
    ) -> Machine {
        assert!(num_devices > 0, "need at least one device");
        let engine = Engine::new();
        let hosts_done = engine.flag(0);
        let topo = Topology::build(cost.topology, num_devices, &cost);
        let transport = Transport::new(topo, cost.clone());
        Machine {
            inner: Arc::new(MachineInner {
                engine,
                cost,
                spec,
                num_devices,
                exec_mode,
                streams: Mutex::new(Vec::new()),
                host_count: AtomicUsize::new(0),
                hosts_done,
                ran: AtomicBool::new(false),
                faults: Mutex::new(FaultState::none()),
                transport,
                checker: Mutex::new(None),
            }),
        }
    }

    /// Install a deterministic fault schedule. Must be called before the
    /// communication contexts are created (i.e. before [`Machine::run`]).
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        *self.inner.faults.lock() = FaultState::new(plan);
    }

    /// Builder form of [`Machine::enable_checker`]:
    /// `Machine::new(..).with_checker()`.
    pub fn with_checker(self) -> Machine {
        self.enable_checker();
        self
    }

    /// Enable the happens-before race detector and protocol conformance
    /// checker. Must be called before spawning hosts so every
    /// synchronization edge is observed. Idempotent; returns the checker.
    ///
    /// Tier-1 runs never enable this — the default cost is one skipped
    /// `Option` check per engine operation.
    pub fn enable_checker(&self) -> Arc<Checker> {
        let mut g = self.inner.checker.lock();
        if let Some(c) = g.as_ref() {
            return Arc::clone(c);
        }
        let c = Arc::new(Checker::new(self.inner.engine.enable_hb()));
        *g = Some(Arc::clone(&c));
        c
    }

    /// The checker, if enabled with [`Machine::with_checker`] /
    /// [`Machine::enable_checker`].
    pub fn checker(&self) -> Option<Arc<Checker>> {
        self.inner.checker.lock().clone()
    }

    /// Seed deterministic jitter on the wake order of simultaneously-woken
    /// agents (multi-waiter signals, barrier releases). Used by the
    /// schedule-perturbation harness: any permutation of a wake batch is a
    /// valid schedule, so checked runs must stay clean and numerics
    /// bit-identical under every seed.
    pub fn set_wake_jitter(&self, seed: u64) {
        self.inner.engine.set_wake_jitter(seed);
    }

    /// The machine's shared fault state (fault-free by default).
    pub fn faults(&self) -> Arc<FaultState> {
        Arc::clone(&self.inner.faults.lock())
    }

    /// The underlying discrete-event engine.
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &CostModel {
        &self.inner.cost
    }

    /// The transfer-charging layer: routes, link occupancy, fault slowdown.
    pub fn transport(&self) -> &Transport {
        &self.inner.transport
    }

    /// The interconnect graph this node was built on.
    pub fn topology(&self) -> &Arc<Topology> {
        self.inner.transport.topology()
    }

    /// Device-to-shard plan for intra-run parallel simulation of this
    /// node's topology (see `Topology::partition_hints`).
    pub fn partition_hints(&self, shards: usize) -> Vec<usize> {
        self.inner.transport.partition_hints(shards)
    }

    /// Conservative cross-shard lookahead for `plan` under this node's
    /// cost model (see `Transport::shard_lookahead`).
    pub fn shard_lookahead(&self, plan: &[usize]) -> sim_des::SimDur {
        self.inner.transport.shard_lookahead(plan)
    }

    /// The device architecture.
    pub fn spec(&self) -> &DeviceSpec {
        &self.inner.spec
    }

    /// Number of GPUs in the node.
    pub fn num_devices(&self) -> usize {
        self.inner.num_devices
    }

    /// All device ids.
    pub fn devices(&self) -> impl Iterator<Item = DevId> {
        (0..self.inner.num_devices).map(DevId)
    }

    /// Functional or timing-only execution.
    pub fn exec_mode(&self) -> ExecMode {
        self.inner.exec_mode
    }

    fn make_buf(&self, place: Place, name: String, len: usize) -> Buf {
        match self.inner.exec_mode {
            // Timing-only runs sweep paper-scale domains (tens of GB);
            // buffers are virtual: sized for cost accounting, storage-free.
            ExecMode::TimingOnly => Buf::new_virtual(place, name, len),
            ExecMode::Full => Buf::new(place, name, len),
        }
    }

    /// Allocate device global memory (virtual in timing-only mode).
    pub fn alloc(&self, dev: DevId, name: impl Into<String>, len: usize) -> Buf {
        self.check_dev(dev);
        self.make_buf(Place::Device(dev), name.into(), len)
    }

    /// Allocate host memory (virtual in timing-only mode).
    pub fn alloc_host(&self, name: impl Into<String>, len: usize) -> Buf {
        self.make_buf(Place::Host, name.into(), len)
    }

    /// Allocate symmetric-heap memory on one device (used by `nvshmem-sim`;
    /// applications normally allocate through that crate's collective API).
    pub fn alloc_symmetric(&self, dev: DevId, name: impl Into<String>, len: usize) -> Buf {
        self.check_dev(dev);
        self.make_buf(Place::Symmetric(dev), name.into(), len)
    }

    fn check_dev(&self, dev: DevId) {
        assert!(
            dev.0 < self.inner.num_devices,
            "device {dev} out of range (node has {})",
            self.inner.num_devices
        );
    }

    /// Allocate an engine flag.
    pub fn flag(&self, init: u64) -> Flag {
        self.inner.engine.flag(init)
    }

    /// Allocate an engine barrier.
    pub fn barrier(&self, parties: usize) -> Barrier {
        self.inner.engine.barrier(parties)
    }

    /// Spawn a host rank (one CPU thread controlling GPUs, as in the
    /// OpenMP/MPI style of NVIDIA's multi-GPU samples).
    pub fn spawn_host<'a, F>(&self, name: impl Into<sim_des::Label<'a>>, f: F)
    where
        F: FnOnce(&mut HostCtx<'_>) + Send + 'static,
    {
        assert!(
            !self.inner.ran.load(Ordering::SeqCst),
            "spawn_host after run()"
        );
        self.inner.host_count.fetch_add(1, Ordering::SeqCst);
        let machine = self.clone();
        let done = self.inner.hosts_done;
        self.inner.engine.spawn(name, move |agent| {
            let mut host = HostCtx::new(agent, machine);
            f(&mut host);
            host.agent_mut().signal(done, SignalOp::Add, 1);
        });
    }

    /// Run the simulation to completion.
    ///
    /// A supervisor agent waits for every host rank to return, then shuts
    /// down all stream agents so the engine can drain.
    pub fn run(&self) -> Result<SimTime, SimError> {
        assert!(
            !self.inner.ran.swap(true, Ordering::SeqCst),
            "Machine::run called twice"
        );
        let machine = self.clone();
        let hosts = self.inner.host_count.load(Ordering::SeqCst) as u64;
        let done = self.inner.hosts_done;
        self.inner.engine.spawn("machine.supervisor", move |ctx| {
            ctx.wait_flag(done, sim_des::Cmp::Ge, hosts);
            let streams = machine.inner.streams.lock().clone();
            for s in streams {
                s.ops.lock().push_back(crate::stream::StreamOp::Shutdown);
                s.enqueued.fetch_add(1, Ordering::SeqCst);
                ctx.signal(s.doorbell, SignalOp::Add, 1);
            }
        });
        let res = self.inner.engine.run();
        if let Err(err) = &res {
            // A deadlocked/timed-out run leaves waits forever unsatisfied:
            // surface each as a lost-signal diagnostic naming both endpoints.
            if matches!(err, SimError::Deadlock { .. } | SimError::Timeout { .. }) {
                if let Some(chk) = self.checker() {
                    chk.note_blocked(&self.inner.engine.blocked_agents(), self.inner.engine.now());
                }
            }
        }
        res
    }

    /// The recorded trace (read after [`Machine::run`]).
    pub fn trace(&self) -> Trace {
        self.inner.engine.trace()
    }

    /// Enable/disable trace recording.
    pub fn set_trace_enabled(&self, enabled: bool) {
        self.inner.engine.set_trace_enabled(enabled);
    }
}
