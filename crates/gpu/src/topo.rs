//! Interconnect topology and the Transport charging layer.
//!
//! The flat [`CostModel`] assumes every transfer gets a dedicated,
//! uncontended wire. This module replaces that assumption with a graph of
//! [`Link`]s: each `(src, dst)` endpoint pair maps to a *route* (an ordered
//! list of links), and every link is a serialized virtual-time resource
//! ([`sim_des::Resource`]) — concurrent transfers crossing the same hop
//! genuinely queue behind each other.
//!
//! Four node shapes are modeled ([`TopologyKind`]):
//!
//! * **NvlinkAllToAll** — the HGX baseline: a dedicated full-duplex NVLink
//!   per ordered device pair. Uncontended charges reproduce the flat model
//!   exactly; queueing appears only when the *same* ordered pair carries
//!   overlapping transfers.
//! * **NvlinkRing** — devices on a bidirectional ring; traffic takes the
//!   shorter arc and pays a forwarding latency per intermediate hop, and
//!   distant pairs contend for the ring segments between them.
//! * **PcieTree** — no fast fabric: each device hangs off a PCIe lane under
//!   a shared host bridge (4 devices per bridge); cross-bridge traffic
//!   funnels through the bridge uplinks, the classic shared-hop bottleneck.
//! * **TwoNode** — two NVLink all-to-all nodes joined by one NIC per node;
//!   every cross-node flow shares the two NICs.
//!
//! All charging flows through [`Transport`]: fixed per-op software latencies
//! still come from the [`CostModel`], but wire time and queueing come from
//! the route. Fault-injected link degradation (`FaultState::link_mult`) is
//! applied in exactly one place, [`Transport::put_signal_delivery`].

use std::collections::HashMap;
use std::sync::Arc;

use sim_des::{us, FaultState, Resource, ResourceStats, SimDur, SimTime};

use crate::cost::CostModel;
use crate::mem::{DevId, Place};
use crate::resilience::{HealedRoutes, PartitionedNetwork};

/// Which interconnect graph a machine charges transfers on.
///
/// The first four are *elastic* node-scale presets: they stretch to any
/// device count. The cluster fabrics (`FatTree`, `Dragonfly`,
/// `RailOptimized`) carry their shape as data — their link graph is built
/// for the declared capacity, and a machine may occupy any prefix of it
/// (`n <= capacity`, devices numbered contiguously).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// Dedicated NVLink per ordered device pair (HGX all-to-all).
    NvlinkAllToAll,
    /// Bidirectional NVLink ring; shorter-arc routing with forwarding hops.
    NvlinkRing,
    /// PCIe tree: per-device lanes under shared host bridges, no fast fabric.
    PcieTree,
    /// Two all-to-all nodes bridged by one NIC link per node.
    TwoNode,
    /// Two-level Clos fabric: `radix/2` GPUs per leaf switch, `radix/2`
    /// spine switches, one up + one down link per (leaf, spine) pair.
    /// Cross-leaf flows hash onto a spine by `(src + dst) % spines`.
    FatTree {
        /// Total GPU ports of the fabric (`gpus % (radix/2) == 0`).
        gpus: usize,
        /// Switch port count; half face down (GPUs), half face up (spines).
        radix: usize,
    },
    /// Dragonfly: GPUs attach to routers, routers within a group are fully
    /// connected locally, and each group pair shares exactly one global
    /// link anchored at gateway router `(a + b) % routers_per_group`.
    Dragonfly {
        /// Number of router groups.
        groups: usize,
        /// Routers per group (local links are all-to-all among them).
        routers_per_group: usize,
        /// GPUs attached to each router.
        gpus_per_router: usize,
    },
    /// Rail-optimized multi-node cluster: NVLink all-to-all within a node,
    /// plus `rails` parallel inter-node networks. GPU `l` of a node rides
    /// rail `l % rails`; same-rail traffic crosses two rail uplinks, and
    /// off-rail destinations pay one extra intra-node NVLink hop.
    RailOptimized {
        /// Number of nodes.
        nodes: usize,
        /// GPUs per node (intra-node NVLink all-to-all).
        gpus_per_node: usize,
        /// Parallel inter-node rail networks (`rails <= gpus_per_node`).
        rails: usize,
    },
}

impl TopologyKind {
    /// The elastic node-scale presets (stretch to any device count).
    pub fn node_presets() -> [TopologyKind; 4] {
        [
            TopologyKind::NvlinkAllToAll,
            TopologyKind::NvlinkRing,
            TopologyKind::PcieTree,
            TopologyKind::TwoNode,
        ]
    }

    /// The cluster-scale reference fabrics swept by `figures -- traffic`:
    /// a 64-GPU fat-tree, a 72-GPU dragonfly, and a 64-GPU rail-optimized
    /// cluster.
    pub fn cluster_presets() -> [TopologyKind; 3] {
        [
            TopologyKind::FatTree {
                gpus: 64,
                radix: 16,
            },
            TopologyKind::Dragonfly {
                groups: 6,
                routers_per_group: 3,
                gpus_per_router: 4,
            },
            TopologyKind::RailOptimized {
                nodes: 8,
                gpus_per_node: 8,
                rails: 4,
            },
        ]
    }

    /// Every preset, node-scale then cluster-scale, in display order —
    /// the single list conformance tests, chaos, and figures sweep.
    /// Adding a `TopologyKind` variant without extending this list (and
    /// the exhaustive matches in [`TopologyKind::family`] and
    /// [`Topology::build`]) fails to compile or fails the cross-preset
    /// harness loudly.
    pub fn presets() -> Vec<TopologyKind> {
        let mut all: Vec<TopologyKind> = TopologyKind::node_presets().to_vec();
        all.extend(TopologyKind::cluster_presets());
        all
    }

    /// Short human-readable name (used by figures, fixtures, and JSON
    /// output). Parameterized fabrics embed their shape, so two differently
    /// sized fat-trees never collide in a report.
    pub fn name(self) -> String {
        match self {
            TopologyKind::FatTree { gpus, radix } => format!("fat-tree-{gpus}r{radix}"),
            TopologyKind::Dragonfly {
                groups,
                routers_per_group,
                gpus_per_router,
            } => format!("dragonfly-{groups}x{routers_per_group}x{gpus_per_router}"),
            TopologyKind::RailOptimized {
                nodes,
                gpus_per_node,
                rails,
            } => format!("rail-optimized-{nodes}x{gpus_per_node}r{rails}"),
            _ => self.family().to_string(),
        }
    }

    /// The preset family, without shape parameters.
    pub fn family(self) -> &'static str {
        match self {
            TopologyKind::NvlinkAllToAll => "nvlink-all-to-all",
            TopologyKind::NvlinkRing => "nvlink-ring",
            TopologyKind::PcieTree => "pcie-tree",
            TopologyKind::TwoNode => "two-node",
            TopologyKind::FatTree { .. } => "fat-tree",
            TopologyKind::Dragonfly { .. } => "dragonfly",
            TopologyKind::RailOptimized { .. } => "rail-optimized",
        }
    }

    /// Declared GPU capacity of a sized cluster fabric; `None` for the
    /// elastic node-scale presets.
    pub fn capacity(self) -> Option<usize> {
        match self {
            TopologyKind::FatTree { gpus, .. } => Some(gpus),
            TopologyKind::Dragonfly {
                groups,
                routers_per_group,
                gpus_per_router,
            } => Some(groups * routers_per_group * gpus_per_router),
            TopologyKind::RailOptimized {
                nodes,
                gpus_per_node,
                ..
            } => Some(nodes * gpus_per_node),
            _ => None,
        }
    }

    /// Whether this is a sized cluster fabric (as opposed to an elastic
    /// node-scale preset).
    pub fn is_cluster(self) -> bool {
        self.capacity().is_some()
    }
}

/// One physical link: a serialized channel with fixed bandwidth.
#[derive(Debug)]
pub struct Link {
    name: String,
    gbps: f64,
    /// Forwarding latency paid when a message *enters* this link from a
    /// previous hop (zero-cost on the first hop of a route).
    hop_latency: SimDur,
    res: Resource,
}

impl Link {
    fn new(name: String, gbps: f64, hop_latency: SimDur) -> Link {
        Link {
            name,
            gbps,
            hop_latency,
            res: Resource::new(),
        }
    }

    /// Link name, e.g. `nvl0>1`, `pcie.lane3`, `pcie.bridge0`, `nic1`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Effective bandwidth of this link (GB/s).
    pub fn gbps(&self) -> f64 {
        self.gbps
    }

    /// Forwarding latency paid when a message enters this link from a
    /// previous hop (zero-cost on the first hop of a route).
    pub fn hop_latency(&self) -> SimDur {
        self.hop_latency
    }

    /// Lifetime occupancy counters (reservations, busy time, queue delay).
    pub fn stats(&self) -> ResourceStats {
        self.res.stats()
    }
}

/// A transfer endpoint: the host, or one device of the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// Host memory (behind the PCIe root).
    Host,
    /// A device's HBM.
    Dev(DevId),
}

impl From<DevId> for Endpoint {
    fn from(d: DevId) -> Endpoint {
        Endpoint::Dev(d)
    }
}

impl From<Place> for Endpoint {
    fn from(p: Place) -> Endpoint {
        match p.device() {
            Some(d) => Endpoint::Dev(d),
            None => Endpoint::Host,
        }
    }
}

/// Devices sharing one PCIe host bridge in the [`TopologyKind::PcieTree`]
/// preset.
const PCIE_DEVICES_PER_BRIDGE: usize = 4;

/// The interconnect graph: links plus per-pair routes.
#[derive(Debug)]
pub struct Topology {
    kind: TopologyKind,
    n_devices: usize,
    links: Vec<Link>,
    /// `dev_routes[src][dst]` = link indices crossed by a `src -> dst`
    /// device transfer (empty when `src == dst`).
    dev_routes: Vec<Vec<Vec<usize>>>,
    /// `host_routes[dev]` = link indices between the host and `dev`.
    host_routes: Vec<Vec<usize>>,
    /// Ring embedding derived from the graph (see [`Topology::ring_order`]).
    ring: Vec<usize>,
    /// `node_of[dev]` = physical node (server) the device sits in —
    /// single-node presets map everything to node 0; hierarchical
    /// collectives derive their intra/inter split from this.
    node_of: Vec<usize>,
}

impl Topology {
    /// Build the link graph for `kind` over `n` devices, calibrated from
    /// `cost` (bandwidths and forwarding latencies).
    #[allow(clippy::needless_range_loop)] // (src, dst) matrix indexing reads best
    pub fn build(kind: TopologyKind, n: usize, cost: &CostModel) -> Arc<Topology> {
        assert!(n >= 1, "topology needs at least one device");
        if let Some(cap) = kind.capacity() {
            assert!(
                n <= cap,
                "{} holds {cap} GPUs but {n} were requested",
                kind.name()
            );
        }
        let mut links = Vec::new();
        let mut dev_routes = vec![vec![Vec::new(); n]; n];
        let mut host_routes = vec![Vec::new(); n];
        let mut node_of = vec![0usize; n];

        // Per-device PCIe lane to the host. Every preset has one; in the
        // PcieTree preset the same lane also carries peer traffic.
        let bridge_hop = us(cost.pcie_latency_us) * 0.25;
        let lane_base = links.len();
        for d in 0..n {
            links.push(Link::new(
                format!("pcie.lane{d}"),
                cost.pcie_gbps,
                bridge_hop,
            ));
            host_routes[d].push(lane_base + d);
        }

        match kind {
            TopologyKind::NvlinkAllToAll => {
                for s in 0..n {
                    for d in 0..n {
                        if s == d {
                            continue;
                        }
                        let idx = links.len();
                        links.push(Link::new(
                            format!("nvl{s}>{d}"),
                            cost.nvlink_gbps,
                            SimDur::ZERO,
                        ));
                        dev_routes[s][d].push(idx);
                    }
                }
            }
            TopologyKind::NvlinkRing => {
                // One shared link per undirected ring edge {i, i+1 mod n};
                // both directions and all pass-through flows contend on it.
                let fwd = us(cost.p2p_latency_us);
                let edge_base = links.len();
                let edges = if n > 1 { n } else { 0 };
                for e in 0..edges {
                    links.push(Link::new(
                        format!("ring{e}>{}", (e + 1) % n),
                        cost.nvlink_gbps,
                        fwd,
                    ));
                }
                for s in 0..n {
                    for d in 0..n {
                        if s == d {
                            continue;
                        }
                        // Shorter arc; ties go clockwise (increasing index).
                        let cw = (d + n - s) % n;
                        let ccw = n - cw;
                        let route = &mut dev_routes[s][d];
                        if cw <= ccw {
                            for h in 0..cw {
                                route.push(edge_base + (s + h) % n);
                            }
                        } else {
                            for h in 0..ccw {
                                route.push(edge_base + (s + n - 1 - h) % n);
                            }
                        }
                    }
                }
            }
            TopologyKind::PcieTree => {
                // lanes (built above) + one shared uplink per bridge; peer
                // traffic crosses its own lane, the bridge uplink(s), and
                // the destination lane.
                let n_bridges = n.div_ceil(PCIE_DEVICES_PER_BRIDGE);
                let bridge_base = links.len();
                for b in 0..n_bridges {
                    links.push(Link::new(
                        format!("pcie.bridge{b}"),
                        cost.pcie_gbps,
                        bridge_hop,
                    ));
                }
                let bridge_of = |d: usize| d / PCIE_DEVICES_PER_BRIDGE;
                for s in 0..n {
                    for d in 0..n {
                        if s == d {
                            continue;
                        }
                        let route = &mut dev_routes[s][d];
                        route.push(lane_base + s);
                        if bridge_of(s) == bridge_of(d) {
                            // P2P through the shared switch under one bridge.
                            route.push(bridge_base + bridge_of(s));
                        } else {
                            route.push(bridge_base + bridge_of(s));
                            route.push(bridge_base + bridge_of(d));
                        }
                        route.push(lane_base + d);
                    }
                }
            }
            TopologyKind::TwoNode => {
                // Node 0 holds devices [0, split); node 1 the rest. Intra-
                // node pairs get dedicated NVLinks; cross-node flows share
                // one NIC per node.
                let split = n.div_ceil(2);
                let nic_hop = us(cost.nic_latency_us);
                let nic0 = links.len();
                links.push(Link::new("nic0".into(), cost.nic_gbps, nic_hop));
                let nic1 = links.len();
                links.push(Link::new("nic1".into(), cost.nic_gbps, nic_hop));
                let node = |d: usize| usize::from(d >= split);
                for (d, slot) in node_of.iter_mut().enumerate() {
                    *slot = node(d);
                }
                for s in 0..n {
                    for d in 0..n {
                        if s == d {
                            continue;
                        }
                        if node(s) == node(d) {
                            let idx = links.len();
                            links.push(Link::new(
                                format!("nvl{s}>{d}"),
                                cost.nvlink_gbps,
                                SimDur::ZERO,
                            ));
                            dev_routes[s][d].push(idx);
                        } else {
                            let (a, b) = if node(s) == 0 {
                                (nic0, nic1)
                            } else {
                                (nic1, nic0)
                            };
                            dev_routes[s][d].push(a);
                            dev_routes[s][d].push(b);
                        }
                    }
                }
            }
            TopologyKind::FatTree { gpus, radix } => {
                // Two-level Clos: radix/2 GPUs under each leaf, radix/2
                // spines, one up + one down link per (leaf, spine) pair —
                // a 1:1 (non-blocking) fabric whose congestion comes from
                // deterministic spine hashing and endpoint NICs, not from
                // undersized uplinks.
                assert!(
                    radix >= 4 && radix % 2 == 0,
                    "fat-tree radix must be even, >= 4"
                );
                let per_leaf = radix / 2;
                assert!(
                    gpus % per_leaf == 0,
                    "fat-tree: {gpus} GPUs not divisible by {per_leaf} per leaf"
                );
                let leaves = gpus / per_leaf;
                let spines = radix / 2;
                let nic_hop = us(cost.nic_latency_us);
                // Endpoint NICs for the occupied prefix only; the switch
                // fabric is built for the full declared shape so link
                // numbering is occupancy-independent.
                let nic_base = links.len();
                for d in 0..n {
                    links.push(Link::new(format!("ft.nic{d}"), cost.nic_gbps, nic_hop));
                }
                let up_base = links.len();
                for l in 0..leaves {
                    for s in 0..spines {
                        links.push(Link::new(format!("ft.l{l}>s{s}"), cost.nic_gbps, nic_hop));
                    }
                }
                let down_base = links.len();
                for s in 0..spines {
                    for l in 0..leaves {
                        links.push(Link::new(format!("ft.s{s}>l{l}"), cost.nic_gbps, nic_hop));
                    }
                }
                let leaf_of = |d: usize| d / per_leaf;
                for (d, slot) in node_of.iter_mut().enumerate() {
                    *slot = leaf_of(d);
                }
                for s in 0..n {
                    for d in 0..n {
                        if s == d {
                            continue;
                        }
                        let route = &mut dev_routes[s][d];
                        route.push(nic_base + s);
                        let (ls, ld) = (leaf_of(s), leaf_of(d));
                        if ls != ld {
                            // Deterministic ECMP hash, symmetric in (s, d)
                            // so forward and return paths share a spine.
                            let spine = (s + d) % spines;
                            route.push(up_base + ls * spines + spine);
                            route.push(down_base + spine * leaves + ld);
                        }
                        route.push(nic_base + d);
                    }
                }
            }
            TopologyKind::Dragonfly {
                groups,
                routers_per_group,
                gpus_per_router,
            } => {
                assert!(groups >= 1 && routers_per_group >= 1 && gpus_per_router >= 1);
                let nic_hop = us(cost.nic_latency_us);
                let nic_base = links.len();
                for d in 0..n {
                    links.push(Link::new(format!("df.nic{d}"), cost.nic_gbps, nic_hop));
                }
                // Local links: one shared bidirectional channel per
                // unordered router pair within a group.
                let mut local = HashMap::new();
                for g in 0..groups {
                    for a in 0..routers_per_group {
                        for b in (a + 1)..routers_per_group {
                            local.insert((g, a, b), links.len());
                            links.push(Link::new(
                                format!("df.g{g}.r{a}-r{b}"),
                                cost.nic_gbps,
                                nic_hop,
                            ));
                        }
                    }
                }
                let local_link = |g: usize, a: usize, b: usize| local[&(g, a.min(b), a.max(b))];
                // Global links: exactly one per unordered group pair,
                // anchored at gateway router (a + b) % routers_per_group
                // in both groups.
                let mut global = HashMap::new();
                for a in 0..groups {
                    for b in (a + 1)..groups {
                        global.insert((a, b), links.len());
                        links.push(Link::new(format!("df.gl{a}-{b}"), cost.nic_gbps, nic_hop));
                    }
                }
                let router_of = |d: usize| d / gpus_per_router;
                let group_of = |d: usize| router_of(d) / routers_per_group;
                for (d, slot) in node_of.iter_mut().enumerate() {
                    *slot = router_of(d);
                }
                for s in 0..n {
                    for d in 0..n {
                        if s == d {
                            continue;
                        }
                        let route = &mut dev_routes[s][d];
                        route.push(nic_base + s);
                        let (rs, rd) = (router_of(s), router_of(d));
                        let (gs, gd) = (group_of(s), group_of(d));
                        let (lrs, lrd) = (rs % routers_per_group, rd % routers_per_group);
                        if gs == gd {
                            if rs != rd {
                                route.push(local_link(gs, lrs, lrd));
                            }
                        } else {
                            // Minimal routing: hop to the gateway router,
                            // cross the single global link, hop to the
                            // destination router.
                            let gw = (gs + gd) % routers_per_group;
                            if lrs != gw {
                                route.push(local_link(gs, lrs, gw));
                            }
                            route.push(global[&(gs.min(gd), gs.max(gd))]);
                            if lrd != gw {
                                route.push(local_link(gd, gw, lrd));
                            }
                        }
                        route.push(nic_base + d);
                    }
                }
            }
            TopologyKind::RailOptimized {
                nodes,
                gpus_per_node,
                rails,
            } => {
                assert!(nodes >= 1 && gpus_per_node >= 1);
                assert!(
                    (1..=gpus_per_node).contains(&rails),
                    "rail count must be in 1..=gpus_per_node"
                );
                let nic_hop = us(cost.nic_latency_us);
                // One shared uplink per (node, rail): every GPU of the node
                // on that rail funnels its inter-node traffic through it.
                let rail_base = links.len();
                for nd in 0..nodes {
                    for r in 0..rails {
                        links.push(Link::new(
                            format!("rail.n{nd}.r{r}"),
                            cost.nic_gbps,
                            nic_hop,
                        ));
                    }
                }
                let node = |d: usize| d / gpus_per_node;
                for (d, slot) in node_of.iter_mut().enumerate() {
                    *slot = node(d);
                }
                // Intra-node NVLink all-to-all (occupied devices only).
                let mut nvl = HashMap::new();
                for s in 0..n {
                    for d in 0..n {
                        if s != d && node(s) == node(d) {
                            nvl.insert((s, d), links.len());
                            links.push(Link::new(
                                format!("nvl{s}>{d}"),
                                cost.nvlink_gbps,
                                SimDur::ZERO,
                            ));
                        }
                    }
                }
                for s in 0..n {
                    for d in 0..n {
                        if s == d {
                            continue;
                        }
                        let route = &mut dev_routes[s][d];
                        if node(s) == node(d) {
                            route.push(nvl[&(s, d)]);
                            continue;
                        }
                        // The sender rides its own rail; traffic lands on
                        // the same rail of the destination node and pays
                        // one NVLink hop if the target GPU sits off-rail.
                        let rail = (s % gpus_per_node) % rails;
                        route.push(rail_base + node(s) * rails + rail);
                        route.push(rail_base + node(d) * rails + rail);
                        if (d % gpus_per_node) % rails != rail {
                            // Representative rail owner on the destination
                            // node: the lowest-indexed GPU attached to it.
                            let owner = node(d) * gpus_per_node + rail;
                            if owner < n && owner != d {
                                route.push(nvl[&(owner, d)]);
                            }
                        }
                    }
                }
            }
        }

        let mut topo = Topology {
            kind,
            n_devices: n,
            links,
            dev_routes,
            host_routes,
            ring: Vec::new(),
            node_of,
        };
        topo.ring = topo.derive_ring();
        Arc::new(topo)
    }

    /// Greedy nearest-neighbor ring embedding: start at device 0, repeatedly
    /// append the unvisited device with the shortest route (ties broken by
    /// index). For every preset this yields the natural `0..n` order, but it
    /// is *derived* from the route table, not assumed — collectives consume
    /// this instead of hardcoded rank arithmetic.
    fn derive_ring(&self) -> Vec<usize> {
        let n = self.n_devices;
        let mut order = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut cur = 0usize;
        visited[0] = true;
        order.push(0);
        for _ in 1..n {
            let next = (0..n)
                .filter(|&d| !visited[d])
                .min_by_key(|&d| (self.dev_routes[cur][d].len(), d))
                .expect("unvisited device exists");
            visited[next] = true;
            order.push(next);
            cur = next;
        }
        order
    }

    /// Which preset this graph was built from.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of devices in the graph.
    pub fn n_devices(&self) -> usize {
        self.n_devices
    }

    /// All links (for occupancy stats and diagnostics).
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The ring embedding: a permutation of `0..n` in which consecutive
    /// entries are route-nearest neighbors. Ring collectives send to
    /// `order[(pos + 1) % n]`.
    pub fn ring_order(&self) -> &[usize] {
        &self.ring
    }

    /// Position of `pe` in [`Topology::ring_order`].
    pub fn ring_position(&self, pe: usize) -> usize {
        self.ring
            .iter()
            .position(|&p| p == pe)
            .expect("pe in ring order")
    }

    /// Number of links a `src -> dst` device transfer crosses.
    pub fn route_hops(&self, src: usize, dst: usize) -> usize {
        self.dev_routes[src][dst].len()
    }

    /// Assign each device to one of `shards` partitions for intra-run
    /// parallel simulation: contiguous chunks of [`Topology::ring_order`],
    /// so ring neighbors stay co-located and only chunk-boundary traffic
    /// crosses shards. `plan[dev]` is the shard of device `dev`.
    ///
    /// The plan depends only on the topology and the shard count — never
    /// on wall-clock state — so a given `(topology, shards)` pair always
    /// partitions identically.
    pub fn partition_hints(&self, shards: usize) -> Vec<usize> {
        assert!(shards >= 1, "need at least one shard");
        let n = self.n_devices;
        let mut plan = vec![0usize; n];
        for (pos, &dev) in self.ring.iter().enumerate() {
            plan[dev] = (pos * shards / n).min(shards - 1);
        }
        plan
    }

    /// Virtual-time forwarding latency of the base `src -> dst` route: the
    /// sum of per-hop latencies after the first hop (the first hop of a
    /// route is charged no `hop_latency`, matching the transfer cost
    /// model). Zero for `src == dst` and for direct single-link routes.
    pub fn route_forward_latency(&self, src: usize, dst: usize) -> SimDur {
        self.dev_routes[src][dst]
            .iter()
            .skip(1)
            .map(|&idx| self.links[idx].hop_latency)
            .sum()
    }

    /// Conservative lookahead for a partition `plan`: the smallest
    /// virtual-time cost of any cross-shard device interaction, computed
    /// as `base` (software send overhead, always paid) plus the minimum
    /// route-forwarding latency over all cross-shard pairs. When no pair
    /// crosses shards (one shard, or a single device) the base alone is
    /// returned.
    ///
    /// Any cross-shard message modeled on this topology takes at least
    /// this long, so a sharded engine windowed on it never delivers into
    /// the past ([`sim_des::ShardedEngine`] asserts exactly that).
    pub fn partition_lookahead(&self, plan: &[usize], base: SimDur) -> SimDur {
        assert_eq!(plan.len(), self.n_devices, "plan covers every device");
        let mut min_cross: Option<SimDur> = None;
        for src in 0..self.n_devices {
            for dst in 0..self.n_devices {
                if src == dst || plan[src] == plan[dst] {
                    continue;
                }
                let fwd = self.route_forward_latency(src, dst);
                min_cross = Some(match min_cross {
                    Some(m) if m <= fwd => m,
                    _ => fwd,
                });
            }
        }
        base + min_cross.unwrap_or(SimDur::ZERO)
    }

    /// PEs ordered by route distance from `root` (root first, ties by
    /// index): the order in which a topology-aware broadcast fans out.
    pub fn bcast_order(&self, root: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.n_devices).collect();
        order.sort_by_key(|&d| {
            if d == root {
                (0, d)
            } else {
                (1 + self.dev_routes[root][d].len(), d)
            }
        });
        order
    }

    /// The ring embedding restricted to `members` (ascending PE ids): the
    /// base ring with every non-member spliced out. This is how collectives
    /// *heal* around crashed PEs — survivors keep their relative ring
    /// positions, so the healed order is identical on every member.
    pub fn ring_order_among(&self, members: &[usize]) -> Vec<usize> {
        self.ring
            .iter()
            .copied()
            .filter(|p| members.contains(p))
            .collect()
    }

    /// The physical node (server / leaf / router) device `dev` sits in.
    /// Single-node presets put every device on node 0.
    pub fn node_of(&self, dev: usize) -> usize {
        self.node_of[dev]
    }

    /// Devices grouped by physical node, ascending node index. Every group
    /// is a contiguous ascending device range (guaranteed by construction
    /// for every preset — hierarchical collectives rely on it to exchange
    /// whole node slices as one contiguous put).
    pub fn node_groups(&self) -> Vec<Vec<usize>> {
        let nodes = self.node_of.iter().copied().max().unwrap_or(0) + 1;
        let mut groups = vec![Vec::new(); nodes];
        for (d, &nd) in self.node_of.iter().enumerate() {
            groups[nd].push(d);
        }
        groups.retain(|g| !g.is_empty());
        groups
    }

    /// Unordered device pairs whose base route (in either direction)
    /// crosses the named link: the pair kill set a fabric-level fault
    /// ("kill switch uplink `ft.l0>s0`") translates to for the pairwise
    /// fault machinery. Panics on an unknown link name — a chaos case
    /// naming a link that does not exist is a bug, not an empty fault.
    pub fn pairs_crossing(&self, link_name: &str) -> Vec<(usize, usize)> {
        let idx = self
            .links
            .iter()
            .position(|l| l.name() == link_name)
            .unwrap_or_else(|| panic!("no link named {link_name:?} in {}", self.kind.name()));
        let mut pairs = Vec::new();
        for s in 0..self.n_devices {
            for d in (s + 1)..self.n_devices {
                if self.dev_routes[s][d].contains(&idx) || self.dev_routes[d][s].contains(&idx) {
                    pairs.push((s, d));
                }
            }
        }
        pairs
    }

    /// The base (fault-free) device route `src -> dst`.
    pub(crate) fn dev_route(&self, src: usize, dst: usize) -> &[usize] {
        &self.dev_routes[src][dst]
    }

    /// Read-only view of the fault-free device route `src -> dst` as link
    /// indices into [`Topology::links`] (empty when `src == dst`). Static
    /// analyses use this to enumerate route sharing without reserving
    /// anything on the real links.
    pub fn route_links(&self, src: usize, dst: usize) -> &[usize] {
        &self.dev_routes[src][dst]
    }

    /// A fresh occupancy mirror over this topology's links, with every
    /// mirrored clock at `SimTime::ZERO` (see [`LinkClocks`]).
    pub fn clocks(&self) -> LinkClocks {
        LinkClocks {
            busy: vec![SimTime::ZERO; self.links.len()],
        }
    }

    fn route(&self, src: Endpoint, dst: Endpoint) -> &[usize] {
        match (src, dst) {
            (Endpoint::Dev(s), Endpoint::Dev(d)) if s != d => &self.dev_routes[s.0][d.0],
            (Endpoint::Host, Endpoint::Dev(d)) | (Endpoint::Dev(d), Endpoint::Host) => {
                &self.host_routes[d.0]
            }
            _ => &[],
        }
    }
}

/// A side-effect-free mirror of per-link occupancy: one scalar
/// `busy_until` clock per link, replicating the FCFS semantics of the real
/// [`sim_des::Resource`]s without reserving anything on them.
///
/// [`Transport::charge`] *reserves* — calling it moves real link state and
/// perturbs any concurrently simulated run. A `LinkClocks` instance lets a
/// static analysis (the dace cost predictor) replay the exact cut-through
/// charging arithmetic of [`Transport::charge_scaled`] — same wire
/// rounding via [`CostModel::bw_time`], same head advancement, same
/// queue-behind-earlier-traffic clamp — against private state.
#[derive(Debug, Clone)]
pub struct LinkClocks {
    /// `busy[i]` mirrors link *i*'s `Resource` busy-until clock.
    busy: Vec<SimTime>,
}

impl LinkClocks {
    /// Quote the fault-free cut-through wire time of moving `bytes` from
    /// device `src` to device `dst` starting at `now`, advancing the
    /// mirrored clocks exactly as the real transport would advance the
    /// link resources. Zero for `src == dst` (empty route).
    pub fn charge_dev(
        &mut self,
        topo: &Topology,
        src: usize,
        dst: usize,
        bytes: u64,
        now: SimTime,
        bw_scale: f64,
    ) -> SimDur {
        let mut head = now;
        let mut finish = now;
        for (i, &idx) in topo.route_links(src, dst).iter().enumerate() {
            let link = &topo.links[idx];
            if i > 0 {
                head += link.hop_latency;
            }
            let wire = CostModel::bw_time(bytes, link.gbps * bw_scale);
            // Resource::reserve: start at max(arrival, busy_until), occupy
            // for the serialization time, push busy_until to the end.
            let start = head.max(self.busy[idx]);
            let end = start + wire;
            self.busy[idx] = end;
            head = start;
            finish = end;
        }
        finish.since(now)
    }

    /// The mirrored busy-until clock of link `idx` (indices as in
    /// [`Topology::links`]).
    pub fn busy_until(&self, idx: usize) -> SimTime {
        self.busy[idx]
    }
}

/// Healed route tables keyed by the active dead-pair set, computed once
/// per set per machine and shared.
type HealedCache = sim_des::lock::Mutex<HashMap<Vec<(usize, usize)>, Arc<HealedRoutes>>>;

/// The single charging API for all inter-endpoint transfers.
///
/// Combines the [`Topology`] (routes, queueing) with the [`CostModel`]
/// (fixed software latencies). Cheap to clone: the graph is shared.
#[derive(Debug, Clone)]
pub struct Transport {
    topo: Arc<Topology>,
    cost: CostModel,
    /// Healed route tables keyed by the active dead-pair set (see
    /// [`crate::resilience`]); shared across clones so each table is
    /// computed once per machine.
    healed: Arc<HealedCache>,
    /// Completion time of the last put-with-signal delivery per
    /// `(src, dst)` route. Deliveries on one route complete in issue order
    /// (RDMA per-connection FIFO): without the clamp, a short put issued
    /// behind a long degraded-window put could overtake it, letting a
    /// `Set`-signal waiter observe a *later* iteration's flag before the
    /// *earlier* iteration's payload has landed. Shared across clones like
    /// link occupancy.
    fifo: Arc<sim_des::lock::Mutex<HashMap<(usize, usize), SimTime>>>,
}

impl Transport {
    /// Pair a topology with its cost calibration.
    pub fn new(topo: Arc<Topology>, cost: CostModel) -> Transport {
        Transport {
            topo,
            cost,
            healed: Arc::new(sim_des::lock::Mutex::new(HashMap::new())),
            fifo: Arc::new(sim_des::lock::Mutex::new(HashMap::new())),
        }
    }

    /// The underlying graph.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// The cost calibration (fixed latencies, compute roofline).
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Partition the devices into `shards` regions for intra-run parallel
    /// simulation (see [`Topology::partition_hints`]).
    pub fn partition_hints(&self, shards: usize) -> Vec<usize> {
        self.topo.partition_hints(shards)
    }

    /// Conservative lookahead for `plan` under this transport's cost
    /// model: the signal software overhead (always paid by a cross-device
    /// signal delivery) plus the minimum cross-shard route-forwarding
    /// latency (see [`Topology::partition_lookahead`]).
    pub fn shard_lookahead(&self, plan: &[usize]) -> SimDur {
        self.topo
            .partition_lookahead(plan, self.cost.shmem_signal())
    }

    /// Wire time of moving `bytes` from `src` to `dst` starting at `now`,
    /// reserving every link on the route and queueing behind earlier
    /// traffic on shared hops.
    ///
    /// Cut-through model: the message head advances to hop *k+1* after
    /// paying that link's forwarding latency and waiting for it to drain;
    /// each link is occupied for its own serialization time. Fixed per-op
    /// latencies (put/MPI/DMA issue costs) are *not* included — the typed
    /// wrappers below layer those on top.
    pub fn charge(&self, src: Endpoint, dst: Endpoint, bytes: u64, now: SimTime) -> SimDur {
        self.charge_scaled(src, dst, bytes, now, 1.0, 1.0)
    }

    /// [`Transport::charge`] with a bandwidth multiplier (`bw_scale`, e.g.
    /// block-cooperative puts) and a fault slowdown (`inv_bw`, stretches
    /// each hop's serialization time).
    pub fn charge_scaled(
        &self,
        src: Endpoint,
        dst: Endpoint,
        bytes: u64,
        now: SimTime,
        bw_scale: f64,
        inv_bw: f64,
    ) -> SimDur {
        self.charge_route(self.topo.route(src, dst), bytes, now, bw_scale, inv_bw)
    }

    /// The cut-through charging core over an explicit link sequence (the
    /// base route, or a healed route relayed through intermediate devices).
    fn charge_route(
        &self,
        route: &[usize],
        bytes: u64,
        now: SimTime,
        bw_scale: f64,
        inv_bw: f64,
    ) -> SimDur {
        let mut head = now;
        let mut finish = now;
        for (i, &idx) in route.iter().enumerate() {
            let link = &self.topo.links[idx];
            if i > 0 {
                head += link.hop_latency;
            }
            let wire = CostModel::bw_time(bytes, link.gbps * bw_scale) * inv_bw;
            let r = link.res.reserve(head, wire);
            head = r.start;
            finish = r.end;
        }
        finish.since(now)
    }

    /// Dispatch a `memcpyAsync` between two places: label + duration.
    pub fn memcpy(
        &self,
        src: Place,
        dst: Place,
        bytes: u64,
        now: SimTime,
    ) -> (SimDur, &'static str) {
        let (s, d) = (Endpoint::from(src), Endpoint::from(dst));
        match (s, d) {
            (Endpoint::Host, _) | (_, Endpoint::Host) => (
                us(self.cost.pcie_latency_us) + self.charge(s, d, bytes, now),
                "memcpy pcie",
            ),
            (Endpoint::Dev(a), Endpoint::Dev(b)) if a == b => {
                (self.cost.local_copy(bytes), "memcpy local")
            }
            _ => (
                us(self.cost.p2p_latency_us) + self.charge(s, d, bytes, now),
                "memcpy p2p",
            ),
        }
    }

    /// Host-initiated peer-to-peer DMA between two devices.
    pub fn p2p(&self, src: DevId, dst: DevId, bytes: u64, now: SimTime) -> SimDur {
        if src == dst {
            return self.cost.local_copy(bytes);
        }
        us(self.cost.p2p_latency_us) + self.charge(src.into(), dst.into(), bytes, now)
    }

    /// Host <-> device staging copy (checkpoints, pinned-buffer staging).
    pub fn host_copy(&self, dev: DevId, bytes: u64, now: SimTime) -> SimDur {
        us(self.cost.pcie_latency_us) + self.charge(Endpoint::Host, dev.into(), bytes, now)
    }

    /// Device-initiated contiguous put of `bytes` from PE `src` to PE `dst`.
    pub fn shmem_put(&self, src: usize, dst: usize, bytes: u64, now: SimTime) -> SimDur {
        us(self.cost.shmem_put_us) + self.dev_charge(src, dst, bytes, now, 1.0, 1.0)
    }

    /// Block-cooperative contiguous put (`nvshmemx_putmem_block`).
    pub fn shmem_put_block(&self, src: usize, dst: usize, bytes: u64, now: SimTime) -> SimDur {
        us(self.cost.shmem_put_us)
            + self.dev_charge(src, dst, bytes, now, self.cost.shmem_block_bw_scale, 1.0)
    }

    /// Mapped single-element puts: `count` `nvshmem_<T>_p` calls issued by
    /// up to `threads` GPU threads in parallel.
    pub fn shmem_p_mapped(
        &self,
        src: usize,
        dst: usize,
        count: u64,
        threads: u64,
        now: SimTime,
    ) -> SimDur {
        let waves = count.div_ceil(threads.max(1)).max(1);
        us(self.cost.shmem_p_us) * waves + self.dev_charge(src, dst, count * 8, now, 1.0, 1.0)
    }

    /// Strided `iput`/`iget` of `elems` elements of `elem_bytes` each.
    pub fn shmem_iput(
        &self,
        src: usize,
        dst: usize,
        elems: u64,
        elem_bytes: u64,
        now: SimTime,
    ) -> SimDur {
        us(self.cost.shmem_put_us)
            + us(self.cost.shmem_iput_elem_us) * elems
            + self.dev_charge(src, dst, elems * elem_bytes, now, 1.0, 1.0)
    }

    /// Single-element `nvshmem_<T>_p` remote store. Carries no measurable
    /// payload, but still rides the route: it queues behind bulk transfers
    /// in flight on the same links.
    pub fn shmem_p(&self, src: usize, dst: usize, now: SimTime) -> SimDur {
        us(self.cost.shmem_p_us) + self.dev_charge(src, dst, 0, now, 1.0, 1.0)
    }

    /// Device-initiated signal (or the signal half of put-with-signal),
    /// ordered behind route traffic like [`Transport::shmem_p`].
    pub fn shmem_signal(&self, src: usize, dst: usize, now: SimTime) -> SimDur {
        us(self.cost.shmem_signal_us) + self.dev_charge(src, dst, 0, now, 1.0, 1.0)
    }

    /// Host-path MPI message time for `bytes` between two PEs' devices.
    pub fn mpi_msg(&self, src: usize, dst: usize, bytes: u64, now: SimTime) -> SimDur {
        us(self.cost.mpi_msg_us) + self.dev_charge(src, dst, bytes, now, 1.0, 1.0)
    }

    /// Delivery cost of a put-with-signal from PE `src` to PE `dst` — the
    /// ONE place fault link degradation (`FaultState::link_mult`) is
    /// applied. `block` selects the block-cooperative bandwidth scale.
    ///
    /// An active link fault stretches the put issue latency and every
    /// hop's serialization time by the bandwidth multiplier (degraded links
    /// stay occupied longer, so contention compounds, as it should) and the
    /// signal by the latency multiplier.
    pub fn put_signal_delivery(
        &self,
        faults: &FaultState,
        src: usize,
        dst: usize,
        bytes: u64,
        now: SimTime,
        block: bool,
    ) -> SimDur {
        match self.try_put_signal_delivery(faults, src, dst, bytes, now, block) {
            Ok(d) => d,
            Err(p) => panic!("{p}"),
        }
    }

    /// [`Transport::put_signal_delivery`] surfacing network partitions as
    /// an error instead of a panic. When a hard link failure
    /// ([`sim_des::LinkFault::is_kill`]) has severed the direct `src <-> dst`
    /// connection, the transfer is **rerouted** over the healed route table
    /// for the active dead-pair set — relayed cut-through over surviving
    /// pairs — and only a fully partitioned network is an error.
    pub fn try_put_signal_delivery(
        &self,
        faults: &FaultState,
        src: usize,
        dst: usize,
        bytes: u64,
        now: SimTime,
        block: bool,
    ) -> Result<SimDur, PartitionedNetwork> {
        let (lat_mult, inv_bw) = if faults.is_active() {
            faults.link_mult(src, dst, now)
        } else {
            (1.0, 1.0)
        };
        let bw_scale = if block {
            self.cost.shmem_block_bw_scale
        } else {
            1.0
        };
        let wire = if src != dst && faults.has_kills() && faults.pair_dead(src, dst, now) {
            let healed = self.healed_routes(&faults.dead_pairs(now));
            let (route, relays) = healed.route(src, dst)?;
            // Each intermediate device store-and-forwards the message:
            // it pays a peer-forwarding latency on top of the wire time.
            us(self.cost.p2p_latency_us) * relays as u64
                + self.charge_route(route, bytes, now, bw_scale, inv_bw)
        } else {
            self.dev_charge(src, dst, bytes, now, bw_scale, inv_bw)
        };
        let raw =
            us(self.cost.shmem_put_us) * inv_bw + wire + us(self.cost.shmem_signal_us) * lat_mult;
        // Per-route FIFO: clamp so this delivery never completes before an
        // earlier one on the same route. A no-op unless a fault window
        // actually reordered completions, so fault-free timings are
        // untouched.
        let mut fifo = self.fifo.lock();
        let done = (now + raw).max(fifo.get(&(src, dst)).copied().unwrap_or(SimTime::ZERO));
        fifo.insert((src, dst), done);
        Ok(done.since(now))
    }

    /// Whether `src` can currently reach `dst` (directly or rerouted),
    /// and over how many links. Runners consult this before relying on a
    /// neighbor so partitions surface as structured diagnostics.
    pub fn route_status(
        &self,
        faults: &FaultState,
        src: usize,
        dst: usize,
        now: SimTime,
    ) -> Result<usize, PartitionedNetwork> {
        if src == dst || !faults.has_kills() || !faults.pair_dead(src, dst, now) {
            return Ok(self.topo.route_hops(src, dst));
        }
        let healed = self.healed_routes(&faults.dead_pairs(now));
        healed.route(src, dst).map(|(r, _)| r.len())
    }

    /// The healed route table for a dead-pair set (computed once per set
    /// per machine, then shared).
    fn healed_routes(&self, dead: &[(usize, usize)]) -> Arc<HealedRoutes> {
        let mut cache = self.healed.lock();
        if let Some(t) = cache.get(dead) {
            return Arc::clone(t);
        }
        let t = Arc::new(HealedRoutes::compute(&self.topo, dead));
        cache.insert(dead.to_vec(), Arc::clone(&t));
        t
    }

    fn dev_charge(
        &self,
        src: usize,
        dst: usize,
        bytes: u64,
        now: SimTime,
        bw_scale: f64,
        inv_bw: f64,
    ) -> SimDur {
        self.charge_scaled(
            Endpoint::Dev(DevId(src)),
            Endpoint::Dev(DevId(dst)),
            bytes,
            now,
            bw_scale,
            inv_bw,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transport(kind: TopologyKind, n: usize) -> Transport {
        let cost = CostModel::a100_hgx();
        Transport::new(Topology::build(kind, n, &cost), cost)
    }

    #[test]
    fn all_to_all_uncontended_matches_flat_model() {
        let c = CostModel::a100_hgx();
        let now = SimTime(12345);
        for bytes in [0u64, 8, 4096, 1 << 20] {
            // Fresh graph per size: charges reserve the links, so repeats on
            // one pair at the same instant would (correctly) queue.
            let t = transport(TopologyKind::NvlinkAllToAll, 8);
            assert_eq!(t.shmem_put(0, 5, bytes, now), c.shmem_put(bytes));
            assert_eq!(
                t.shmem_put_block(1, 2, bytes, now),
                c.shmem_put_block(bytes)
            );
            assert_eq!(t.p2p(DevId(3), DevId(4), bytes, now), c.p2p_copy(bytes));
            assert_eq!(t.host_copy(DevId(6), bytes, now), c.pcie_copy(bytes));
        }
        let t = transport(TopologyKind::NvlinkAllToAll, 8);
        assert_eq!(t.shmem_iput(0, 1, 1024, 8, now), c.shmem_iput(1024, 8));
        assert_eq!(
            t.shmem_p_mapped(2, 3, 256, 1024, now),
            c.shmem_p_mapped(256, 1024)
        );
    }

    fn p2p_usize(t: &Transport, s: usize, d: usize, bytes: u64, now: SimTime) -> SimDur {
        t.p2p(DevId(s), DevId(d), bytes, now)
    }

    #[test]
    fn all_to_all_distinct_pairs_do_not_contend() {
        let t = transport(TopologyKind::NvlinkAllToAll, 8);
        let now = SimTime(0);
        let solo = t.shmem_put(0, 1, 1 << 22, now);
        // Other pairs — including the reverse direction — firing at the
        // same instant see no queueing: every ordered pair has its own link.
        t.shmem_put(2, 3, 1 << 22, now);
        t.shmem_put(4, 5, 1 << 22, now);
        assert_eq!(t.shmem_put(1, 0, 1 << 22, now), solo);
    }

    #[test]
    fn same_pair_overlap_queues() {
        let t = transport(TopologyKind::NvlinkAllToAll, 4);
        let now = SimTime(0);
        let first = t.shmem_put(0, 1, 1 << 22, now);
        let second = t.shmem_put(0, 1, 1 << 22, now);
        // The second transfer waits for the first to drain the link.
        let c = CostModel::a100_hgx();
        let wire = c.shmem_put(1 << 22) - c.shmem_put(0);
        assert_eq!(second, first + wire);
    }

    #[test]
    fn pcie_tree_shares_bridge_uplinks() {
        let t = transport(TopologyKind::PcieTree, 8);
        let now = SimTime(0);
        // Cross-bridge pairs (0->4) and (1->5) share both bridge uplinks.
        let solo = p2p_usize(&t, 0, 4, 1 << 22, now);
        let contended = p2p_usize(&t, 1, 5, 1 << 22, now);
        assert!(
            contended > solo,
            "second cross-bridge flow must queue: {contended} vs {solo}"
        );
    }

    #[test]
    fn pcie_same_bridge_pairs_contend_on_switch() {
        let t = transport(TopologyKind::PcieTree, 8);
        let now = SimTime(0);
        // Same-bridge disjoint pairs share only the local bridge switch.
        let a = p2p_usize(&t, 0, 1, 1 << 22, now);
        let b = p2p_usize(&t, 2, 3, 1 << 22, now);
        assert!(b > a, "bridge switch is a shared hop under one bridge");
    }

    #[test]
    fn ring_distant_pairs_cost_more_than_neighbors() {
        let t = transport(TopologyKind::NvlinkRing, 8);
        let near = t.shmem_put(0, 1, 1 << 20, SimTime(0));
        let far = t.shmem_put(2, 6, 1 << 20, SimTime(0));
        assert!(far > near, "multi-hop ring route must cost more");
        assert_eq!(t.topology().route_hops(2, 6), 4);
        assert_eq!(t.topology().route_hops(0, 7), 1, "wraparound is one hop");
    }

    #[test]
    fn two_node_cross_traffic_funnels_through_nics() {
        let t = transport(TopologyKind::TwoNode, 8);
        let now = SimTime(0);
        let intra = t.shmem_put(0, 1, 1 << 20, now);
        let cross = t.shmem_put(0, 4, 1 << 20, now);
        assert!(cross > intra * 2, "NIC path is slower than NVLink");
        let again = t.shmem_put(1, 5, 1 << 20, now);
        assert!(again > cross, "all cross-node flows share the NICs");
    }

    #[test]
    fn ring_order_is_natural_for_all_presets() {
        for kind in TopologyKind::presets() {
            for n in [1usize, 2, 4, 8] {
                let cost = CostModel::a100_hgx();
                let topo = Topology::build(kind, n, &cost);
                assert_eq!(
                    topo.ring_order(),
                    (0..n).collect::<Vec<_>>().as_slice(),
                    "{kind:?} n={n}"
                );
            }
        }
    }

    #[test]
    fn bcast_order_puts_near_devices_first() {
        let cost = CostModel::a100_hgx();
        let topo = Topology::build(TopologyKind::TwoNode, 8, &cost);
        let order = topo.bcast_order(0);
        assert_eq!(order[0], 0);
        let cross_pos = order.iter().position(|&d| d == 4).unwrap();
        for intra in 1..4 {
            let p = order.iter().position(|&d| d == intra).unwrap();
            assert!(p < cross_pos, "intra-node device {intra} before cross-node");
        }
    }

    #[test]
    fn pairs_crossing_names_the_fabric_kill_set() {
        let cost = CostModel::a100_hgx();
        let ft = Topology::build(TopologyKind::FatTree { gpus: 4, radix: 4 }, 4, &cost);
        // ECMP hash (s + d) % spines: spine 0 carries {0,2} and {1,3},
        // spine 1 the other two cross-leaf pairs.
        assert_eq!(ft.pairs_crossing("ft.l0>s0"), vec![(0, 2), (1, 3)]);
        assert_eq!(ft.pairs_crossing("ft.l0>s1"), vec![(0, 3), (1, 2)]);
        let df = Topology::build(
            TopologyKind::Dragonfly {
                groups: 4,
                routers_per_group: 1,
                gpus_per_router: 1,
            },
            4,
            &cost,
        );
        assert_eq!(df.pairs_crossing("df.gl0-1"), vec![(0, 1)]);
    }

    #[test]
    fn all_routes_exist_and_signal_rides_route() {
        for kind in TopologyKind::presets() {
            let t = transport(kind, 8);
            for s in 0..8 {
                for d in 0..8 {
                    if s != d {
                        assert!(t.topology().route_hops(s, d) >= 1, "{kind:?} {s}->{d}");
                    }
                }
            }
            // A zero-byte signal behind a bulk put on the same route queues.
            let now = SimTime(0);
            let put = t.shmem_put(0, 1, 1 << 22, now);
            let sig = t.shmem_signal(0, 1, now);
            let c = CostModel::a100_hgx();
            let wire_nvl = c.shmem_put(1 << 22) - c.shmem_put(0);
            assert!(
                sig >= wire_nvl,
                "{kind:?}: signal must not overtake the put ({sig} vs {put})"
            );
        }
    }

    #[test]
    fn killed_pair_reroutes_and_partition_surfaces() {
        use sim_des::{FaultPlan, LinkFault};
        let c = CostModel::a100_hgx();
        let bytes = 1 << 20;
        // 4 devices: killing {0,1} reroutes over a 2-link relay.
        let t = transport(TopologyKind::NvlinkAllToAll, 4);
        let st =
            sim_des::FaultState::new(FaultPlan::new().with_link(LinkFault::kill(0, 1, SimTime(0))));
        let healed = t
            .try_put_signal_delivery(&st, 0, 1, bytes, SimTime(0), false)
            .unwrap();
        assert!(
            healed > c.shmem_put(bytes) + c.shmem_signal(),
            "relayed route must cost more than the direct link"
        );
        assert_eq!(t.route_status(&st, 0, 1, SimTime(0)).unwrap(), 2);
        // Other pairs are untouched — exact flat-model equality holds.
        assert_eq!(
            t.try_put_signal_delivery(&st, 2, 3, bytes, SimTime(0), false)
                .unwrap(),
            c.shmem_put(bytes) + c.shmem_signal()
        );
        // Before the kill activates, the direct route still serves.
        let st_late = sim_des::FaultState::new(FaultPlan::new().with_link(LinkFault::kill(
            0,
            1,
            SimTime(1000),
        )));
        assert_eq!(
            t.route_status(&st_late, 0, 1, SimTime(0)).unwrap(),
            t.topology().route_hops(0, 1)
        );
        // 2 devices: killing the only pair partitions the network.
        let t2 = transport(TopologyKind::NvlinkAllToAll, 2);
        let st2 =
            sim_des::FaultState::new(FaultPlan::new().with_link(LinkFault::kill(0, 1, SimTime(0))));
        let err = t2
            .try_put_signal_delivery(&st2, 0, 1, bytes, SimTime(0), false)
            .unwrap_err();
        assert!(err.to_string().contains("PartitionedNetwork"));
        assert!(t2.route_status(&st2, 1, 0, SimTime(0)).is_err());
    }

    #[test]
    fn faulted_delivery_matches_flat_formula_uncontended() {
        let t = transport(TopologyKind::NvlinkAllToAll, 4);
        let c = CostModel::a100_hgx();
        let healthy = FaultState::none();
        let bytes = 1 << 20;
        let dur = t.put_signal_delivery(&healthy, 0, 1, bytes, SimTime(0), false);
        assert_eq!(dur, c.shmem_put(bytes) + c.shmem_signal());
        let dur_b = t.put_signal_delivery(&healthy, 2, 3, bytes, SimTime(0), true);
        assert_eq!(dur_b, c.shmem_put_block(bytes) + c.shmem_signal());
    }

    #[test]
    fn partition_hints_are_contiguous_ring_chunks() {
        for kind in TopologyKind::presets() {
            let t = transport(kind, 8);
            let topo = t.topology();
            for shards in [1, 2, 4, 8] {
                let plan = topo.partition_hints(shards);
                assert_eq!(plan.len(), 8);
                // Walking the ring order, shard ids are non-decreasing:
                // chunks are contiguous in ring position.
                let along_ring: Vec<usize> = topo.ring_order().iter().map(|&d| plan[d]).collect();
                assert!(
                    along_ring.windows(2).all(|w| w[0] <= w[1]),
                    "{kind:?} shards={shards}: non-contiguous plan {along_ring:?}"
                );
                assert!(plan.iter().all(|&s| s < shards));
                // Every shard gets at least one device when shards <= n.
                for s in 0..shards {
                    assert!(plan.contains(&s), "{kind:?}: shard {s} empty");
                }
            }
        }
    }

    #[test]
    fn forward_latency_skips_the_first_hop() {
        // All-to-all: every device pair is one direct link — no forwarding.
        let aa = transport(TopologyKind::NvlinkAllToAll, 8);
        assert_eq!(aa.topology().route_forward_latency(0, 5), SimDur::ZERO);
        assert_eq!(aa.topology().route_forward_latency(3, 3), SimDur::ZERO);
        // PCIe tree: multi-hop routes pay latency for every hop after the
        // first, consistent with the transfer-charge model.
        let pt = transport(TopologyKind::PcieTree, 8);
        let topo = pt.topology();
        let (mut multi, mut zero) = (0, 0);
        for s in 0..8 {
            for d in 0..8 {
                if s == d {
                    continue;
                }
                let fwd = topo.route_forward_latency(s, d);
                if topo.route_hops(s, d) > 1 {
                    assert!(!fwd.is_zero(), "{s}->{d} multi-hop but free");
                    multi += 1;
                } else {
                    assert!(fwd.is_zero());
                    zero += 1;
                }
            }
        }
        assert!(multi > 0, "pcie tree should have multi-hop routes");
        let _ = zero;
    }

    #[test]
    fn shard_lookahead_is_positive_and_monotone_in_base() {
        for kind in TopologyKind::presets() {
            let t = transport(kind, 8);
            let c = CostModel::a100_hgx();
            for shards in [1, 2, 4] {
                let plan = t.partition_hints(shards);
                let look = t.shard_lookahead(&plan);
                assert!(
                    look >= c.shmem_signal() && !look.is_zero(),
                    "{kind:?} shards={shards}: lookahead {look} below base"
                );
            }
            // One shard has no cross pairs: lookahead is exactly the base.
            let single = t.partition_hints(1);
            assert_eq!(t.shard_lookahead(&single), c.shmem_signal());
        }
    }

    #[test]
    fn fat_tree_cross_leaf_flows_share_spine_links() {
        let kind = TopologyKind::FatTree {
            gpus: 64,
            radix: 16,
        };
        let t = transport(kind, 64);
        let now = SimTime(0);
        // 0 -> 8 and 16 -> 24 hash onto the same spine ((s + d) % 8 == 0)
        // but touch disjoint leaves: only if they shared a spine link would
        // they queue — they use different up/down links, so they must not.
        let solo = t.shmem_put(0, 8, 1 << 22, now);
        assert_eq!(t.shmem_put(16, 24, 1 << 22, now), solo);
        // Two flows out of the SAME leaf hashed onto the same spine share
        // that leaf's uplink and queue.
        let t = transport(kind, 64);
        let a = t.shmem_put(0, 8, 1 << 22, now);
        let b = t.shmem_put(1, 15, 1 << 22, now); // (1+15) % 8 == 0 too
        assert!(b > a, "same leaf + same spine hash must queue: {b} vs {a}");
        // Intra-leaf traffic never touches the spine layer.
        assert_eq!(t.topology().route_hops(0, 7), 2);
        assert_eq!(t.topology().route_hops(0, 8), 4);
    }

    #[test]
    fn dragonfly_single_global_link_is_the_bottleneck() {
        let kind = TopologyKind::Dragonfly {
            groups: 6,
            routers_per_group: 3,
            gpus_per_router: 4,
        };
        let t = transport(kind, 72);
        let now = SimTime(0);
        // Group 0 holds devices 0..12, group 1 holds 12..24. Distinct
        // device pairs crossing the same group pair share the one global
        // link and queue behind each other.
        let first = t.shmem_put(0, 12, 1 << 22, now);
        let second = t.shmem_put(4, 16, 1 << 22, now);
        assert!(
            second > first,
            "both flows cross the single g0-g1 global link: {second} vs {first}"
        );
        // Same-router and same-group routes stay off the global layer.
        assert_eq!(t.topology().route_hops(0, 1), 2);
        assert_eq!(t.topology().route_hops(0, 4), 3);
        // Cross-group routes touch at most gateway + global + gateway.
        for (s, d) in [(0usize, 12usize), (0, 23), (11, 70)] {
            let hops = t.topology().route_hops(s, d);
            assert!((3..=5).contains(&hops), "{s}->{d}: {hops} hops");
        }
    }

    #[test]
    fn rail_optimized_same_rail_skips_the_nvlink_hop() {
        let kind = TopologyKind::RailOptimized {
            nodes: 8,
            gpus_per_node: 8,
            rails: 4,
        };
        let t = transport(kind, 64);
        let topo = t.topology();
        // GPU 1 (rail 1) to GPU 9 (node 1, local 1, rail 1): rail-aligned,
        // two rail links. GPU 1 to GPU 8 (rail 0): lands on node 1's rail-1
        // owner (GPU 9) and pays one NVLink hop to reach GPU 8.
        assert_eq!(topo.route_hops(1, 9), 2);
        assert_eq!(topo.route_hops(1, 8), 3);
        assert_eq!(topo.route_hops(0, 1), 1, "intra-node stays on NVLink");
        // Cross-node flows on the same (node, rail) pair share the uplink.
        let now = SimTime(0);
        let a = t.shmem_put(1, 9, 1 << 22, now);
        let b = t.shmem_put(5, 13, 1 << 22, now); // local 5 -> rail 1 too
        assert!(b > a, "rail.n0.r1 is shared: {b} vs {a}");
        // Different rails out of the same node do not contend.
        let t = transport(kind, 64);
        let solo = t.shmem_put(1, 9, 1 << 22, now);
        assert_eq!(t.shmem_put(2, 10, 1 << 22, now), solo);
    }

    #[test]
    #[should_panic(expected = "holds 64 GPUs")]
    fn cluster_capacity_is_enforced() {
        let cost = CostModel::a100_hgx();
        Topology::build(
            TopologyKind::FatTree {
                gpus: 64,
                radix: 16,
            },
            65,
            &cost,
        );
    }

    #[test]
    fn node_groups_are_contiguous_and_match_the_fabric() {
        for kind in TopologyKind::presets() {
            let n = kind.capacity().unwrap_or(8);
            let cost = CostModel::a100_hgx();
            let topo = Topology::build(kind, n, &cost);
            let groups = topo.node_groups();
            // Groups partition 0..n into contiguous ascending ranges.
            let flat: Vec<usize> = groups.iter().flatten().copied().collect();
            assert_eq!(flat, (0..n).collect::<Vec<_>>(), "{}", kind.name());
            for g in &groups {
                assert!(g.windows(2).all(|w| w[1] == w[0] + 1), "{}", kind.name());
            }
            let expect = match kind {
                TopologyKind::TwoNode => 2,
                TopologyKind::FatTree { gpus, radix } => gpus / (radix / 2),
                TopologyKind::Dragonfly {
                    groups: g,
                    routers_per_group,
                    ..
                } => g * routers_per_group,
                TopologyKind::RailOptimized { nodes, .. } => nodes,
                _ => 1,
            };
            assert_eq!(groups.len(), expect, "{}", kind.name());
            for (d, g) in (0..n).map(|d| (d, topo.node_of(d))) {
                assert!(groups[g].contains(&d));
            }
        }
    }

    #[test]
    fn preset_names_are_unique_and_round_trip_by_family() {
        let presets = TopologyKind::presets();
        let names: Vec<String> = presets.iter().map(|k| k.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            names.len(),
            "duplicate preset names: {names:?}"
        );
        for k in &presets {
            assert!(k.name().starts_with(k.family()), "{}", k.name());
            assert_eq!(k.is_cluster(), k.capacity().is_some());
        }
    }
}
